package experiments

import (
	"fmt"

	"superfast/internal/assembly"
	"superfast/internal/core"
	"superfast/internal/stats"
)

func init() {
	register("ablation-quant", runAblationQuant)
	register("ablation-erscorr", runAblationErsCorr)
	register("ablation-remeasure", runAblationRemeasure)
	register("ablation-window", runAblationWindow)
}

// ablationStrategies is the compact strategy set the ablations compare.
func ablationStrategies(cfg Config) []assembly.Assembler {
	return []assembly.Assembler{
		baseline(cfg),
		assembly.Optimal{Window: cfg.Window},
		assembly.Ranked{Kind: assembly.LWLRank, Window: cfg.Window},
		assembly.Ranked{Kind: assembly.STRRank, Window: cfg.Window},
		core.BatchAssembler{K: cfg.MedWindow},
	}
}

func improvementTable(title string, variants []string, results [][]StrategyOutcome) *stats.Table {
	t := &stats.Table{Title: title, Headers: append([]string{"Method"}, variants...)}
	if len(results) == 0 || len(results[0]) == 0 {
		return t
	}
	for i := range results[0] {
		if results[0][i].Name == baselineName {
			continue
		}
		row := []string{results[0][i].Name}
		for v := range results {
			base := results[v][0]
			row = append(row, stats.FmtPct(stats.Improvement(base.MeanPgm, results[v][i].MeanPgm)))
		}
		t.AddRow(row...)
	}
	return t
}

// runAblationQuant removes the ISPP quantization grid: with continuous
// latencies, rank ties disappear and the rank-equality distances (Equation
// 1) lose their information, while the latency-based optimal search is
// unaffected. This justifies modeling the discrete program steps visible in
// the paper's Fig. 9.
func runAblationQuant(cfg Config) (*Result, error) {
	strategies := ablationStrategies(cfg)
	withQ, err := SweepStrategies(cfg, strategies)
	if err != nil {
		return nil, err
	}
	noQ := cfg
	noQ.PV.PgmStep = 0
	without, err := SweepStrategies(noQ, strategies)
	if err != nil {
		return nil, err
	}
	t := improvementTable("Ablation — ISPP quantization (PGM improvement %)",
		[]string{"quantized", "continuous"}, [][]StrategyOutcome{withQ, without})
	return &Result{ID: "ablation-quant", Tables: []*stats.Table{t}}, nil
}

// runAblationErsCorr removes the erase↔program quality correlation: without
// it, organizing superblocks by program similarity no longer shrinks the
// extra erase latency, which is the mechanism behind Table V's erase column.
func runAblationErsCorr(cfg Config) (*Result, error) {
	strategies := []assembly.Assembler{
		baseline(cfg),
		assembly.Optimal{Window: cfg.Window},
		core.BatchAssembler{K: cfg.MedWindow},
	}
	with, err := SweepStrategies(cfg, strategies)
	if err != nil {
		return nil, err
	}
	decoupled := cfg
	decoupled.PV.ErsCorrCoeff = 0
	decoupled.PV.ErsSpikeSlope = 0
	decoupled.PV.ErsSpikeMax = 0
	without, err := SweepStrategies(decoupled, strategies)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:   "Ablation — erase↔program correlation (ERS improvement %)",
		Headers: []string{"Method", "correlated", "decoupled"},
	}
	for i := range with {
		if with[i].Name == baselineName {
			continue
		}
		t.AddRow(with[i].Name,
			stats.FmtPct(stats.Improvement(with[0].MeanErs, with[i].MeanErs)),
			stats.FmtPct(stats.Improvement(without[0].MeanErs, without[i].MeanErs)))
	}
	return &Result{ID: "ablation-erscorr", Tables: []*stats.Table{t}}, nil
}

// runAblationRemeasure scores every strategy on an independent second
// characterization pass instead of its own training pass. The local-optimal
// search loses the selection bias of optimizing over measurement noise; the
// rank/eigen schemes barely move — evidence that QSTR-MED's gains are not a
// measurement artifact.
func runAblationRemeasure(cfg Config) (*Result, error) {
	strategies := ablationStrategies(cfg)
	onTrain, err := SweepStrategies(cfg, strategies)
	if err != nil {
		return nil, err
	}
	re := cfg
	re.Remeasure = true
	reOut, err := SweepStrategies(re, strategies)
	if err != nil {
		return nil, err
	}
	t := improvementTable("Ablation — scoring on the training pass vs an independent re-measurement (PGM improvement %)",
		[]string{"same pass (paper)", "re-measured"}, [][]StrategyOutcome{onTrain, reOut})
	return &Result{ID: "ablation-remeasure", Tables: []*stats.Table{t}}, nil
}

// runAblationWindow sweeps the QSTR-MED candidate window K, the analog of
// Table II for the proposed scheme: larger K checks more candidates per
// lane (cost grows linearly, not exponentially as for the window searches).
func runAblationWindow(cfg Config) (*Result, error) {
	ks := []int{1, 2, 4, 8}
	strategies := []assembly.Assembler{baseline(cfg)}
	for _, k := range ks {
		strategies = append(strategies, core.BatchAssembler{K: k})
	}
	out, err := SweepStrategies(cfg, strategies)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:   "Ablation — QSTR-MED candidate window K",
		Headers: []string{"Method", "Extra PGM", "Imp. %", "Checks/SB"},
	}
	base := out[0]
	for _, o := range out[1:] {
		perSB := 0.0
		if o.Superblocks > 0 {
			perSB = float64(o.PairChecks) / float64(o.Superblocks)
		}
		t.AddRow(o.Name, stats.FmtUS(o.MeanPgm)+" µs",
			stats.FmtPct(stats.Improvement(base.MeanPgm, o.MeanPgm)),
			fmt.Sprintf("%.1f", perSB))
	}
	return &Result{ID: "ablation-window", Tables: []*stats.Table{t}}, nil
}
