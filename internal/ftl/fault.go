package ftl

import (
	"sort"

	"superfast/internal/flash"
	"superfast/internal/prng"
)

// MarkBadBlocks injects a deterministic bad-block storm: up to n blocks
// drawn (seed-reproducibly) from the sealed superblocks are marked bad in
// the array. A sealed member keeps serving reads — MarkBad only fails
// programs and erases — so data stays reachable; the block is retired
// through the normal path when garbage collection next erases it and the
// multi-plane erase reports the member failed. Open superblocks and free
// blocks are never picked: a bad block in the program path would fail host
// writes outright, which is a different fault than a storm of dying blocks.
// Returns the blocks actually marked (fewer than n when the device holds
// fewer sealed members). Callers must serialize with other FTL use (the
// concurrent front end's WithFTL).
func (f *FTL) MarkBadBlocks(n int, seed uint64) ([]flash.BlockAddr, error) {
	if n <= 0 {
		return nil, nil
	}
	ids := make([]int, 0, len(f.sbs))
	for id, sb := range f.sbs {
		if sb.sealed {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	var pool []flash.BlockAddr
	for _, id := range ids {
		for _, m := range f.sbs[id].members {
			if !f.arr.IsBad(m) {
				pool = append(pool, m)
			}
		}
	}
	if len(pool) == 0 {
		return nil, nil
	}
	if n > len(pool) {
		n = len(pool)
	}
	perm := prng.New(seed, 7001).Perm(len(pool))
	marked := make([]flash.BlockAddr, 0, n)
	for _, pi := range perm[:n] {
		if err := f.arr.MarkBad(pool[pi]); err != nil {
			return marked, err
		}
		marked = append(marked, pool[pi])
	}
	return marked, nil
}
