# Tier-1 gate: everything a change must pass before it lands. `make check`
# vets, builds and runs the full test suite under the race detector — the
# concurrent device front end and the parallel experiment sweep
# (`go run ./cmd/sbsim -all -quick -parallel 4`) are only trustworthy
# race-clean.

GO ?= go

# Statement-coverage floor for `make cover`, over ./internal/... (the mains
# in cmd/ and examples/ are driven by the verify recipe, not unit tests).
COVER_MIN ?= 85

.PHONY: check build test race bench cover

check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Runs every root benchmark, including BenchmarkTelemetryOverhead — the
# disabled/enabled pair showing the nil-sink fast path's cost.
bench:
	$(GO) test -bench . -benchtime 1x -run XXX .

cover:
	$(GO) test -count=1 -coverprofile=cover.out ./internal/...
	@$(GO) tool cover -func=cover.out | awk -v min=$(COVER_MIN) '\
		/^total:/ { sub(/%/, "", $$3); total = $$3 } \
		END { \
			printf "total statement coverage: %.1f%% (floor %d%%)\n", total, min; \
			if (total + 0 < min) { print "coverage below floor"; exit 1 } \
		}'
