package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"superfast/internal/ssd"
)

// scanTrace is the line-scanning core shared by every trace parser: it skips
// blank lines and '#' comments, splits the rest on commas with each field
// trimmed, tracks 1-based line numbers for error reporting, and tolerates
// long lines (up to 1 MiB). fn is called once per data line; its error stops
// the scan.
func scanTrace(r io.Reader, fn func(line int, fields []string) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		for i := range fields {
			fields[i] = strings.TrimSpace(fields[i])
		}
		if err := fn(line, fields); err != nil {
			return err
		}
	}
	return sc.Err()
}

// parseSimpleLine decodes one "op,lpn" record (op: w/r/t).
func parseSimpleLine(line int, fields []string, pageLen int) (ssd.Request, error) {
	if len(fields) != 2 {
		return ssd.Request{}, fmt.Errorf("workload: trace line %d: want \"op,lpn\", got %d fields", line, len(fields))
	}
	lpn, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return ssd.Request{}, fmt.Errorf("workload: trace line %d: %v", line, err)
	}
	switch fields[0] {
	case "w":
		return ssd.Request{Kind: ssd.OpWrite, LPN: lpn, Data: fill(lpn, pageLen)}, nil
	case "r":
		return ssd.Request{Kind: ssd.OpRead, LPN: lpn}, nil
	case "t":
		return ssd.Request{Kind: ssd.OpTrim, LPN: lpn}, nil
	}
	return ssd.Request{}, fmt.Errorf("workload: trace line %d: unknown op %q", line, fields[0])
}

// msrParser accumulates requests from MSR-Cambridge records. It carries the
// first-arrival rebase state across lines.
type msrParser struct {
	pageSize int
	maxLPN   int64
	first    float64
	out      []ssd.Request
}

func newMSRParser(pageSize int, maxLPN int64) (*msrParser, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("workload: page size %d", pageSize)
	}
	if maxLPN <= 0 {
		return nil, fmt.Errorf("workload: maxLPN %d", maxLPN)
	}
	return &msrParser{pageSize: pageSize, maxLPN: maxLPN, first: -1}, nil
}

// line decodes one "Timestamp,Hostname,DiskNumber,Type,Offset,Size,..."
// record and appends one request per page the record covers.
func (p *msrParser) line(line int, fields []string) error {
	if len(fields) < 6 {
		return fmt.Errorf("workload: msr line %d: %d fields, want ≥6", line, len(fields))
	}
	ts, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return fmt.Errorf("workload: msr line %d timestamp: %v", line, err)
	}
	// FILETIME ticks are 100 ns; plain timestamps are seconds.
	arrivalUS := ts * 1e6
	if ts > 1e14 {
		arrivalUS = ts / 10
	}
	if p.first < 0 {
		p.first = arrivalUS
	}
	arrivalUS -= p.first

	var kind ssd.OpKind
	switch strings.ToLower(fields[3]) {
	case "read", "r":
		kind = ssd.OpRead
	case "write", "w":
		kind = ssd.OpWrite
	default:
		return fmt.Errorf("workload: msr line %d: unknown type %q", line, fields[3])
	}
	offset, err := strconv.ParseInt(fields[4], 10, 64)
	if err != nil || offset < 0 {
		return fmt.Errorf("workload: msr line %d offset: %v", line, fields[4])
	}
	size, err := strconv.ParseInt(fields[5], 10, 64)
	if err != nil || size <= 0 {
		return fmt.Errorf("workload: msr line %d size: %v", line, fields[5])
	}
	firstPage := offset / int64(p.pageSize)
	lastPage := (offset + size - 1) / int64(p.pageSize)
	for pg := firstPage; pg <= lastPage; pg++ {
		lpn := pg % p.maxLPN
		req := ssd.Request{Kind: kind, LPN: lpn, Arrival: arrivalUS}
		if kind == ssd.OpWrite {
			req.Data = fill(lpn, 16)
		}
		p.out = append(p.out, req)
	}
	return nil
}

// ParseTraceAuto parses a trace whose format is detected from its first data
// line: 2 fields is the simple "op,lpn" CSV (see ParseTrace), 6 or more is an
// MSR-Cambridge block trace (see ParseMSRTrace). Returns the detected format
// name ("simple" or "msr") alongside the requests. pageSize doubles as the
// simple format's payload length and the MSR format's byte→page divisor;
// maxLPN only constrains MSR traces.
func ParseTraceAuto(r io.Reader, pageSize int, maxLPN int64) ([]ssd.Request, string, error) {
	format := ""
	var simple []ssd.Request
	var msr *msrParser
	err := scanTrace(r, func(line int, fields []string) error {
		if format == "" {
			switch {
			case len(fields) == 2:
				format = "simple"
			case len(fields) >= 6:
				format = "msr"
				var err error
				msr, err = newMSRParser(pageSize, maxLPN)
				if err != nil {
					return err
				}
			default:
				return fmt.Errorf("workload: trace line %d: %d fields, want 2 (op,lpn) or ≥6 (MSR)", line, len(fields))
			}
		}
		if format == "simple" {
			req, err := parseSimpleLine(line, fields, pageSize)
			if err != nil {
				return err
			}
			simple = append(simple, req)
			return nil
		}
		return msr.line(line, fields)
	})
	if err != nil {
		return nil, format, err
	}
	if format == "msr" {
		return msr.out, format, nil
	}
	return simple, "simple", nil
}
