// Command benchjson converts `go test -bench` output into a machine-readable
// JSON report while passing the original text through unchanged, so piping
// through it keeps the benchstat-compatible stream:
//
//	go test -bench . -benchmem -run XXX . | benchjson -o BENCH.json
//
// The report records ns/op, B/op, allocs/op and any custom metrics
// (ReportMetric pairs) per benchmark, plus the run's goos/goarch/pkg/cpu
// header — the raw material for tracking a performance trajectory across
// changes without scraping text.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one result line of a bench run.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64           `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write the JSON report to FILE (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: need -o FILE")
		os.Exit(2)
	}

	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	w := bufio.NewWriter(os.Stdout)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(w, line) // pass the benchstat-compatible text through
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	w.Flush()
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBench decodes one result line: a name, an iteration count, then
// value/unit pairs ("123 ns/op", "7 allocs/op", custom ReportMetric units).
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}
