// Package testbed describes the paper's exact hardware platform (Tables III
// and IV): four SMI SM2259XT SATA controllers driving eight NAND packages —
// four double-die (DDP) and four quad-die (QDP) — across channels and chip
// enables, with the per-package block ranges the authors characterized. It
// maps that physical inventory onto the simulator's flat chip space so
// experiments can be run against the faithful configuration.
package testbed

import (
	"fmt"

	"superfast/internal/chamber"
	"superfast/internal/flash"
)

// PackageKind distinguishes die stacking.
type PackageKind int

// Package kinds.
const (
	DDP PackageKind = iota // double-die package (2 chip enables)
	QDP                    // quad-die package (4 chip enables)
)

func (k PackageKind) String() string {
	if k == DDP {
		return "DDP"
	}
	return "QDP"
}

// Dies returns the number of dies (chip enables) in a package of this kind.
func (k PackageKind) Dies() int {
	if k == DDP {
		return 2
	}
	return 4
}

// Package is one NAND package on the testbed.
type Package struct {
	Name       string
	Kind       PackageKind
	Controller int // SM2259XT index
	Channel    int
	BlockLo    int // first characterized block (inclusive)
	BlockHi    int // last characterized block (inclusive)
}

// Dies returns the package's die count.
func (p Package) Dies() int { return p.Kind.Dies() }

// Testbed is a set of packages with a mapping onto simulator chips.
type Testbed struct {
	Packages []Package
}

// Paper returns the configuration of Table IV: two DDP and two QDP packages
// per block-range group, 24 chips total, characterized over the first 1,600
// blocks (group 1) and the last 1,600 blocks (group 2).
func Paper() Testbed {
	return Testbed{Packages: []Package{
		{Name: "DDP #1-1", Kind: DDP, Controller: 0, Channel: 0, BlockLo: 4, BlockHi: 1603},
		{Name: "DDP #1-2", Kind: DDP, Controller: 0, Channel: 2, BlockLo: 1604, BlockHi: 3275},
		{Name: "DDP #2-1", Kind: DDP, Controller: 1, Channel: 0, BlockLo: 4, BlockHi: 1603},
		{Name: "DDP #2-2", Kind: DDP, Controller: 1, Channel: 2, BlockLo: 1604, BlockHi: 3275},
		{Name: "QDP #1-1", Kind: QDP, Controller: 2, Channel: 0, BlockLo: 4, BlockHi: 1603},
		{Name: "QDP #1-2", Kind: QDP, Controller: 2, Channel: 2, BlockLo: 1604, BlockHi: 3203},
		{Name: "QDP #2-1", Kind: QDP, Controller: 3, Channel: 0, BlockLo: 4, BlockHi: 1603},
		{Name: "QDP #2-2", Kind: QDP, Controller: 3, Channel: 2, BlockLo: 1604, BlockHi: 3203},
	}}
}

// Validate checks the inventory for consistency.
func (t Testbed) Validate() error {
	if len(t.Packages) == 0 {
		return fmt.Errorf("testbed: no packages")
	}
	seen := map[string]bool{}
	for _, p := range t.Packages {
		if p.Name == "" {
			return fmt.Errorf("testbed: unnamed package")
		}
		if seen[p.Name] {
			return fmt.Errorf("testbed: duplicate package %q", p.Name)
		}
		seen[p.Name] = true
		if p.BlockHi < p.BlockLo || p.BlockLo < 0 {
			return fmt.Errorf("testbed: package %q has block range [%d, %d]", p.Name, p.BlockLo, p.BlockHi)
		}
		if p.Kind != DDP && p.Kind != QDP {
			return fmt.Errorf("testbed: package %q has unknown kind", p.Name)
		}
	}
	return nil
}

// Chips returns the total die count — the simulator chip count.
func (t Testbed) Chips() int {
	n := 0
	for _, p := range t.Packages {
		n += p.Dies()
	}
	return n
}

// Die identifies one die of one package, with its simulator chip id.
type Die struct {
	Package Package
	CE      int // chip enable within the package
	Chip    int // flat simulator chip index
}

// Dies enumerates every die in inventory order.
func (t Testbed) Dies() []Die {
	var out []Die
	chip := 0
	for _, p := range t.Packages {
		for ce := 0; ce < p.Dies(); ce++ {
			out = append(out, Die{Package: p, CE: ce, Chip: chip})
			chip++
		}
	}
	return out
}

// Geometry builds the flash geometry covering the testbed: one simulator
// chip per die, block space large enough for the highest characterized
// block, and the paper's 96-layer × 4-string TLC blocks.
func (t Testbed) Geometry(planes int) flash.Geometry {
	maxBlock := 0
	for _, p := range t.Packages {
		if p.BlockHi > maxBlock {
			maxBlock = p.BlockHi
		}
	}
	return flash.Geometry{
		Chips:          t.Chips(),
		PlanesPerChip:  planes,
		BlocksPerPlane: maxBlock + 1,
		Layers:         96,
		Strings:        4,
		PageSize:       16 * 1024,
		SpareSize:      2 * 1024,
	}
}

// MeasurementGroup is a set of dies characterized over a common block range
// (the paper's two chip groups, §VI-A).
type MeasurementGroup struct {
	Dies    []Die
	BlockLo int
	BlockHi int // inclusive
}

// Blocks returns the group's block indices.
func (g MeasurementGroup) Blocks() []int {
	return chamber.BlockRange(g.BlockLo, g.BlockHi+1)
}

// Groups partitions the dies by their package block ranges: all dies that
// share a characterization range measure together. The common range of a
// group is the intersection of its packages' ranges.
func (t Testbed) Groups() []MeasurementGroup {
	byRange := map[[2]int]*MeasurementGroup{}
	var order [][2]int
	for _, d := range t.Dies() {
		key := [2]int{d.Package.BlockLo, d.Package.BlockHi}
		grp := byRange[key]
		if grp == nil {
			grp = &MeasurementGroup{BlockLo: d.Package.BlockLo, BlockHi: d.Package.BlockHi}
			byRange[key] = grp
			order = append(order, key)
		}
		grp.Dies = append(grp.Dies, d)
	}
	out := make([]MeasurementGroup, 0, len(byRange))
	for _, key := range order {
		out = append(out, *byRange[key])
	}
	return out
}

// LaneGroups converts a measurement group into chamber lane groups of the
// given size over the dies' plane-0 lanes, keeping dies of distinct
// packages together where possible (cross-chip variation is the target).
func (g MeasurementGroup) LaneGroups(geo flash.Geometry, size int) []chamber.LaneGroup {
	if size <= 0 {
		return nil
	}
	lanes := make([]int, len(g.Dies))
	for i, d := range g.Dies {
		lanes[i] = d.Chip * geo.PlanesPerChip
	}
	var groups []chamber.LaneGroup
	for i := 0; i+size <= len(lanes); i += size {
		groups = append(groups, chamber.LaneGroup{Lanes: append([]int(nil), lanes[i:i+size]...)})
	}
	return groups
}
