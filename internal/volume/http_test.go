package volume

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"superfast/internal/ftl"
	"superfast/internal/server"
)

func TestVolumeHTTP(t *testing.T) {
	v, _ := startCluster(t, 3, server.Config{}, Config{Stripe: 2})
	p, _ := startProxy(t, v)
	ts := httptest.NewServer(Routes(v, p, nil))
	defer ts.Close()

	for lpn := int64(0); lpn < 8; lpn++ {
		if _, err := v.Write(lpn, pageData(lpn, 0), ftl.HintNone); err != nil {
			t.Fatal(err)
		}
	}

	// /metrics: merged exposition with cluster counters and per-backend
	// labeled series.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"vol_writes_total 8",
		"vol_backends_active 3",
		"vol_write_latency_us{quantile=\"0.99\"}",
		"vol_backend_srv_accepted{backend=\"0\"",
		"vol_backend_up{backend=\"2\"",
		"vol_space_lpns",
		"vol_replicas 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /cluster: full JSON snapshot, decodable, with per-backend entries.
	resp, err = http.Get(ts.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var snap ClusterSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode /cluster: %v", err)
	}
	resp.Body.Close()
	if snap.Capacity != v.Space() || len(snap.Backends) != 3 {
		t.Fatalf("cluster snapshot capacity %d backends %d", snap.Capacity, len(snap.Backends))
	}
	if snap.Volume.Writes != 8 {
		t.Fatalf("cluster volume counters %+v", snap.Volume)
	}

	// Rebalance endpoints drive live add/remove.
	nb := startBackend(t, server.Config{})
	resp, err = http.PostForm(ts.URL+"/rebalance/add", url.Values{"addr": {nb.addr}})
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "\"backend\": 3") {
		t.Fatalf("add: %d %q", resp.StatusCode, body)
	}
	resp, err = http.PostForm(ts.URL+"/rebalance/remove", url.Values{"backend": {"0"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove: %d", resp.StatusCode)
	}
	for lpn := int64(0); lpn < 8; lpn++ {
		r, err := v.Read(lpn)
		if err != nil || r.Status != server.StatusOK {
			t.Fatalf("read %d after HTTP rebalance: %v %v", lpn, err, r.Status)
		}
	}

	// Error paths: wrong method, bad arguments, conflicting ops.
	for _, tc := range []struct {
		path string
		form url.Values
		code int
		get  bool
	}{
		{path: "/rebalance/add", get: true, code: http.StatusMethodNotAllowed},
		{path: "/rebalance/remove", get: true, code: http.StatusMethodNotAllowed},
		{path: "/rebalance/add", form: url.Values{}, code: http.StatusBadRequest},
		{path: "/rebalance/add", form: url.Values{"addr": {"127.0.0.1:1"}}, code: http.StatusConflict},
		{path: "/rebalance/remove", form: url.Values{"backend": {"zap"}}, code: http.StatusBadRequest},
		{path: "/rebalance/remove", form: url.Values{"backend": {"0"}}, code: http.StatusConflict}, // already removed
	} {
		var resp *http.Response
		var err error
		if tc.get {
			resp, err = http.Get(ts.URL + tc.path)
		} else {
			resp, err = http.PostForm(ts.URL+tc.path, tc.form)
		}
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s %v: status %d, want %d", tc.path, tc.form, resp.StatusCode, tc.code)
		}
	}
}
