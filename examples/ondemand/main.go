// Ondemand: drive the QSTR-MED runtime scheme directly — gather similarity
// data while programming blocks, then assemble fast and slow superblocks on
// demand and show that host-class data gets the fast ones (§V-C/V-D).
package main

import (
	"fmt"
	"log"

	"superfast/internal/core"
	"superfast/internal/flash"
	"superfast/internal/pv"
	"superfast/internal/stats"
)

func main() {
	geo := flash.Geometry{
		Chips:          4,
		PlanesPerChip:  1,
		BlocksPerPlane: 24,
		Layers:         48,
		Strings:        4,
		PageSize:       16 * 1024,
		SpareSize:      2 * 1024,
	}
	params := pv.DefaultParams()
	params.Layers = geo.Layers
	params.Strings = geo.Strings
	arr, err := flash.NewArray(geo, pv.New(params), flash.DefaultECC())
	if err != nil {
		log.Fatal(err)
	}
	scheme, err := core.NewScheme(geo, 4)
	if err != nil {
		log.Fatal(err)
	}

	// Gathering (§V-B): program every block once through the normal write
	// path; the scheme accumulates each block's program-latency sum and
	// eigen sequence from the latencies the flash reports.
	fmt.Println("gathering: programming every block once...")
	for lane := 0; lane < geo.Lanes(); lane++ {
		chip, plane := geo.LaneChipPlane(lane)
		for b := 0; b < geo.BlocksPerPlane; b++ {
			addr := flash.BlockAddr{Chip: chip, Plane: plane, Block: b}
			for wl := 0; wl < geo.LWLsPerBlock(); wl++ {
				lat, err := arr.Program(addr, wl, nil)
				if err != nil {
					log.Fatal(err)
				}
				if err := scheme.NoteProgram(addr, wl, lat); err != nil {
					log.Fatal(err)
				}
			}
			// The block is reclaimed and returns to the free pool with its
			// gathered metadata.
			if _, err := arr.Erase(addr); err != nil {
				log.Fatal(err)
			}
			if err := scheme.AddFree(addr); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Assembling (§V-C): fast superblocks for host data, slow ones for GC.
	fmt.Println("\non-demand assembly (function-based placement):")
	measure := func(members []flash.BlockAddr) (pgmSum, extra float64) {
		// Program one full pass through the superblock to observe its
		// multi-plane latency and extra latency.
		for wl := 0; wl < geo.LWLsPerBlock(); wl++ {
			res, err := arr.ProgramMulti(members, wl, nil)
			if err != nil {
				log.Fatal(err)
			}
			pgmSum += res.Latency
			extra += res.Extra
		}
		return pgmSum, extra
	}
	for _, class := range []core.WriteClass{core.HostWrite, core.GCWrite} {
		speed := core.SpeedFor(class)
		members, err := scheme.Assemble(speed)
		if err != nil {
			log.Fatal(err)
		}
		total, extra := measure(members)
		fmt.Printf("  %-5s data → %s superblock %v\n", class, speed, members)
		fmt.Printf("         program latency %s µs, extra latency %s µs\n",
			stats.FmtUS(total), stats.FmtUS(extra))
	}
	fmt.Printf("\nsimilarity checks so far: %d (12 per superblock: 3 other lanes × K=4)\n",
		scheme.PairChecks())
}
