// Recovery: the resilience features working together — superblock RAID
// reconstructs an uncorrectable page, a checkpoint carries the FTL's RAM
// state (mapping tables + QSTR-MED metadata) across a power cycle, and the
// restored device keeps serving.
package main

import (
	"fmt"
	"log"

	"superfast/internal/flash"
	"superfast/internal/ftl"
	"superfast/internal/pv"
)

func main() {
	geo := flash.Geometry{
		Chips:          4,
		PlanesPerChip:  1,
		BlocksPerPlane: 16,
		Layers:         24,
		Strings:        4,
		PageSize:       4096,
		SpareSize:      256,
	}
	params := pv.DefaultParams()
	params.Layers = geo.Layers
	params.Strings = geo.Strings
	arr, err := flash.NewArray(geo, pv.New(params), flash.DefaultECC())
	if err != nil {
		log.Fatal(err)
	}
	cfg := ftl.DefaultConfig()
	cfg.Overprovision = 0.25
	cfg.RAID = true // one lane of parity per superblock
	f, err := ftl.New(arr, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("RAID device: %d logical pages (one of %d lanes holds parity)\n",
		f.Capacity(), geo.Lanes())
	for lpn := int64(0); lpn < 300; lpn++ {
		if _, err := f.Write(lpn, []byte(fmt.Sprintf("record-%d", lpn))); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := f.Flush(); err != nil {
		log.Fatal(err)
	}

	// A page goes bad: ECC gives up, parity brings it back.
	addr, lwl, typ, _ := f.Locate(42)
	if err := arr.InjectCorruption(flash.PageAddr{BlockAddr: addr, LWL: lwl, Type: typ}); err != nil {
		log.Fatal(err)
	}
	r, err := f.Read(42)
	if err != nil {
		log.Fatalf("reconstruction failed: %v", err)
	}
	fmt.Printf("page 42 went uncorrectable; reconstructed from parity: %q (repairs: %d)\n",
		r.Data, f.Stats().RAIDRepairs)

	// Power cycle: checkpoint the FTL RAM state, drop the FTL, restore.
	snap, err := f.Checkpoint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %d bytes (mapping + superblock table + QSTR-MED metadata)\n", len(snap))
	g, err := ftl.Restore(arr, cfg, snap)
	if err != nil {
		log.Fatal(err)
	}
	r, err = g.Read(299)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after power cycle: page 299 = %q\n", r.Data)
	if err := g.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	// The restored device keeps absorbing writes (GC included).
	for i := int64(0); i < 2*g.Capacity(); i++ {
		if _, err := g.Write(i%300, []byte("rewritten")); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("post-restore churn: WAF %.2f, GC runs %d, invariants hold\n",
		g.Stats().WAF(), g.Stats().GCRuns)

	// Unclean power loss: no checkpoint survives. Rebuild the mapping by
	// scanning the spare-area tags on flash.
	h, err := ftl.RecoverByScan(arr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	r, err = h.Read(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after UNCLEAN power loss, scan recovery: page 7 = %q\n", r.Data)
	if err := h.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("scan-recovered FTL invariants hold")
}
