// Package core implements QSTR-MED, the paper's contribution (§V): a
// practical process-variation check scheme that organizes superblocks with
// minimal extra latency at runtime.
//
// The scheme has three components:
//
//   - Gathering (§V-B): while a block's word-lines are programmed in the
//     normal write path, accumulate the block program latency (LTN SUM) and,
//     per physical word-line layer, mark the fastest half of the strings
//     with bit 0 to build the block's eigen sequence. Only open blocks carry
//     a latency table; completed blocks keep just (sum, eigen).
//
//   - Assembling (§V-C): per lane, a sorted program-latency list. A fast
//     superblock takes the globally fastest head block as the reference and,
//     from every other lane, the head-K candidates; one XOR + popcount
//     similarity check per candidate picks the most similar block. A slow
//     superblock does the same from the tail. With four lanes and K = 4
//     that is 12 pair checks instead of STR-MED's 1,536 — the 99.22%
//     computing-overhead reduction of §VI-B2.
//
//   - Allocating (§V-D): function-based placement routes host writes to
//     fast superblocks and garbage-collection writes to slow superblocks.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"superfast/internal/assembly"
	"superfast/internal/flash"
	"superfast/internal/profile"
)

// Speed classifies a superblock request.
type Speed int

// Superblock speed classes.
const (
	Fast Speed = iota
	Slow
)

func (s Speed) String() string {
	if s == Fast {
		return "FAST"
	}
	return "SLOW"
}

// WriteClass describes the origin of written data for the function-based
// placement policy.
type WriteClass int

// Write classes.
const (
	HostWrite WriteClass = iota
	GCWrite
)

func (c WriteClass) String() string {
	if c == HostWrite {
		return "host"
	}
	return "gc"
}

// SpeedFor is the function-based placement policy (§V-D): host writes go to
// fast superblocks, garbage-collection writes to slow superblocks.
func SpeedFor(c WriteClass) Speed {
	if c == HostWrite {
		return Fast
	}
	return Slow
}

// Errors returned by the scheme.
var (
	ErrLaneEmpty  = errors.New("core: a lane has no free blocks")
	ErrNotFree    = errors.New("core: block is not in the free pool")
	ErrDoubleFree = errors.New("core: block already in the free pool")
)

// blockInfo is the per-block metadata QSTR-MED persists: 4 bytes of block
// program latency plus one eigen bit per logical word-line (Equation 2).
type blockInfo struct {
	known   bool
	retired bool
	pgmSum  float64
	eigen   profile.Eigen
}

// gather is the latency table of one open block. It exists only while the
// block is being programmed (§V-B: "only for open blocks").
type gather struct {
	sum      float64
	row      []float64 // latencies of the current layer's strings
	rowFill  int
	eigen    profile.Eigen
	nextLWL  int
	complete bool
}

type laneState struct {
	free profile.SortedList
	info map[int]*blockInfo
}

// Scheme is the runtime QSTR-MED state for one flash array.
type Scheme struct {
	geo   flash.Geometry
	k     int
	lanes []laneState
	open  map[flash.BlockAddr]*gather

	pairChecks int
	assembled  int

	// Gathering tables cycle with every block open/close; pooling them (and
	// copying the finished eigen into the block's persistent metadata rather
	// than handing the gatherer's buffer away) keeps the per-P/E-cycle
	// gathering path allocation-free.
	gatherPool []*gather
	order      []int // markSlowHalf scratch
}

// NewScheme creates a QSTR-MED instance for the given geometry. k is the
// candidate window per lane (the paper uses 4).
func NewScheme(geo flash.Geometry, k int) (*Scheme, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: candidate window must be positive, got %d", k)
	}
	s := &Scheme{
		geo:   geo,
		k:     k,
		lanes: make([]laneState, geo.Lanes()),
		open:  make(map[flash.BlockAddr]*gather),
	}
	for i := range s.lanes {
		s.lanes[i].info = make(map[int]*blockInfo)
	}
	return s, nil
}

// K returns the candidate window size.
func (s *Scheme) K() int { return s.k }

// PairChecks returns the cumulative number of similarity checks performed.
func (s *Scheme) PairChecks() int { return s.pairChecks }

// Assembled returns the number of superblocks assembled so far.
func (s *Scheme) Assembled() int { return s.assembled }

func (s *Scheme) lane(addr flash.BlockAddr) *laneState {
	return &s.lanes[addr.Lane(s.geo)]
}

func (s *Scheme) info(addr flash.BlockAddr) *blockInfo {
	ls := s.lane(addr)
	bi := ls.info[addr.Block]
	if bi == nil {
		bi = &blockInfo{}
		ls.info[addr.Block] = bi
	}
	return bi
}

// sortKey orders free blocks: characterized blocks by program latency,
// uncharacterized blocks after them (cold start) by block index.
func (s *Scheme) sortKey(addr flash.BlockAddr) float64 {
	bi := s.info(addr)
	if bi.known {
		return bi.pgmSum
	}
	return math.MaxFloat64 / 2
}

// ErrRetired reports an attempt to free a retired (bad) block.
var ErrRetired = errors.New("core: block is retired")

// Retire permanently removes a block from circulation (bad block). If the
// block is currently free it leaves the pool; it can never be freed again.
func (s *Scheme) Retire(addr flash.BlockAddr) error {
	if addr.Lane(s.geo) < 0 || addr.Lane(s.geo) >= len(s.lanes) ||
		addr.Block < 0 || addr.Block >= s.geo.BlocksPerPlane {
		return fmt.Errorf("core: %v out of range", addr)
	}
	s.info(addr).retired = true
	s.lane(addr).free.Remove(addr.Block)
	return nil
}

// Retired reports whether a block has been retired.
func (s *Scheme) Retired(addr flash.BlockAddr) bool { return s.info(addr).retired }

// AddFree returns a block to the free pool of its lane, keyed by its last
// gathered program latency. Blocks never characterized sort after all
// characterized blocks.
func (s *Scheme) AddFree(addr flash.BlockAddr) error {
	if addr.Lane(s.geo) < 0 || addr.Lane(s.geo) >= len(s.lanes) ||
		addr.Block < 0 || addr.Block >= s.geo.BlocksPerPlane {
		return fmt.Errorf("core: %v out of range", addr)
	}
	if s.info(addr).retired {
		return fmt.Errorf("%w: %v", ErrRetired, addr)
	}
	ls := s.lane(addr)
	for i := 0; i < ls.free.Len(); i++ {
		if ls.free.At(i).Block == addr.Block {
			return fmt.Errorf("%w: %v", ErrDoubleFree, addr)
		}
	}
	ls.free.Insert(addr.Block, s.sortKey(addr))
	return nil
}

// RemoveFree drops a block from its lane's free pool if present (recovery
// paths use it when a scan finds the block holding live data). It reports
// whether the block was in the pool.
func (s *Scheme) RemoveFree(addr flash.BlockAddr) bool {
	if addr.Lane(s.geo) < 0 || addr.Lane(s.geo) >= len(s.lanes) {
		return false
	}
	return s.lane(addr).free.Remove(addr.Block)
}

// FreeCount returns the minimum number of free blocks over all lanes — the
// number of superblocks that can still be assembled.
func (s *Scheme) FreeCount() int {
	min := math.MaxInt
	for i := range s.lanes {
		if n := s.lanes[i].free.Len(); n < min {
			min = n
		}
	}
	if min == math.MaxInt {
		return 0
	}
	return min
}

// NoteProgram is the gathering hook (§V-B): the FTL calls it for every
// word-line program with the observed latency. When the block's last
// word-line completes, the block's (sum, eigen) metadata is stored for the
// next time the block is freed.
func (s *Scheme) NoteProgram(addr flash.BlockAddr, lwl int, latency float64) error {
	nWL := s.geo.LWLsPerBlock()
	if lwl < 0 || lwl >= nWL {
		return fmt.Errorf("core: word-line %d out of range", lwl)
	}
	g := s.open[addr]
	if g == nil {
		if lwl != 0 {
			// Mid-block visibility (e.g. the scheme was attached late):
			// skip gathering for this pass; the block keeps its old info.
			return nil
		}
		g = s.newGather(nWL)
		s.open[addr] = g
	}
	if lwl != g.nextLWL {
		// Out-of-order observation: abandon this gathering pass.
		delete(s.open, addr)
		s.gatherPool = append(s.gatherPool, g)
		return nil
	}
	g.sum += latency
	_, str := s.geo.LayerString(lwl)
	g.row[str] = latency
	g.rowFill++
	g.nextLWL++
	if g.rowFill == s.geo.Strings {
		layer := lwl / s.geo.Strings
		s.markSlowHalf(&g.eigen, g.row, layer, s.geo.Strings)
		g.rowFill = 0
	}
	if g.nextLWL == nWL {
		bi := s.info(addr)
		bi.known = true
		bi.pgmSum = g.sum
		// Copy rather than adopt the gatherer's eigen buffer: the block's
		// metadata outlives the gathering pass, and the pass's table goes
		// back to the pool for the next open block.
		bi.eigen.CopyFrom(g.eigen)
		delete(s.open, addr)
		s.gatherPool = append(s.gatherPool, g)
	}
	return nil
}

// newGather returns a cleared latency table, reusing a pooled one when
// available.
func (s *Scheme) newGather(nWL int) *gather {
	if n := len(s.gatherPool); n > 0 {
		g := s.gatherPool[n-1]
		s.gatherPool = s.gatherPool[:n-1]
		g.sum = 0
		g.rowFill = 0
		g.nextLWL = 0
		g.complete = false
		g.eigen.Reset(nWL)
		return g
	}
	return &gather{
		row:   make([]float64, s.geo.Strings),
		eigen: profile.NewEigenBuilder(nWL),
	}
}

// markSlowHalf sets eigen bit 1 for the slower half of the strings on one
// layer, bit 0 for the fastest half; ties resolve to the earlier string.
// The ordering is a stable insertion sort over scheme-owned scratch — the
// row is Strings wide (4 in the paper's geometry), where insertion sort
// beats sort.SliceStable and, unlike it, does not allocate a closure and
// swapper per call.
func (s *Scheme) markSlowHalf(e *profile.Eigen, row []float64, layer, strings int) {
	fast := strings / 2
	if fast == 0 {
		fast = 1
	}
	if cap(s.order) < strings {
		s.order = make([]int, strings)
	}
	order := s.order[:strings]
	for i := range order {
		order[i] = i
	}
	// Insertion sort ascending by (latency, string index): identical total
	// order to the previous stable sort with its explicit index tie-break.
	for i := 1; i < strings; i++ {
		v := order[i]
		j := i - 1
		for j >= 0 && (row[order[j]] > row[v] || (row[order[j]] == row[v] && order[j] > v)) {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = v
	}
	for i := fast; i < strings; i++ {
		e.SetBit(layer*strings + order[i])
	}
}

// Seed installs externally characterized metadata for a block (for example
// from a factory characterization pass), without going through NoteProgram.
func (s *Scheme) Seed(addr flash.BlockAddr, pgmSum float64, eigen profile.Eigen) {
	bi := s.info(addr)
	bi.known = true
	bi.pgmSum = pgmSum
	bi.eigen = eigen
}

// Known reports whether the block has gathered metadata.
func (s *Scheme) Known(addr flash.BlockAddr) bool { return s.info(addr).known }

// addrOf rebuilds a BlockAddr from a lane index and block index.
func (s *Scheme) addrOf(lane, block int) flash.BlockAddr {
	return flash.BlockAddr{
		Chip:  lane / s.geo.PlanesPerChip,
		Plane: lane % s.geo.PlanesPerChip,
		Block: block,
	}
}

// Assemble builds one superblock of the requested speed on demand (§V-C)
// and removes its members from the free pools.
func (s *Scheme) Assemble(speed Speed) ([]flash.BlockAddr, error) {
	return s.AssembleInto(nil, speed)
}

// AssembleInto is Assemble appending the members into dst (usually a
// recycled, zero-length slice), so steady-state assembly reuses storage
// from collected superblocks instead of allocating.
func (s *Scheme) AssembleInto(dst []flash.BlockAddr, speed Speed) ([]flash.BlockAddr, error) {
	nl := len(s.lanes)
	for i := range s.lanes {
		if s.lanes[i].free.Len() == 0 {
			return nil, fmt.Errorf("%w: lane %d", ErrLaneEmpty, i)
		}
	}
	// Step 1: the reference block is the fastest (or slowest) end block
	// over all lanes.
	refLane := -1
	var refEntry profile.Entry
	for i := range s.lanes {
		var e profile.Entry
		if speed == Fast {
			e = s.lanes[i].free.At(0)
		} else {
			e = s.lanes[i].free.At(s.lanes[i].free.Len() - 1)
		}
		better := refLane == -1 ||
			(speed == Fast && e.Key < refEntry.Key) ||
			(speed == Slow && e.Key > refEntry.Key)
		if better {
			refLane, refEntry = i, e
		}
	}
	refAddr := s.addrOf(refLane, refEntry.Block)
	refInfo := s.info(refAddr)

	members := dst[:0]
	for j := 0; j < nl; j++ {
		members = append(members, flash.BlockAddr{})
	}
	members[refLane] = refAddr
	// Step 2: per other lane, one similarity check against each of the K
	// end candidates; take the most similar (ties: the faster/slower one,
	// i.e. the first in end order). Candidates are read in place via At —
	// the same window and order Head/Tail used to copy out.
	for i := range s.lanes {
		if i == refLane {
			continue
		}
		free := &s.lanes[i].free
		k := s.k
		if k > free.Len() {
			k = free.Len()
		}
		candAt := func(ci int) profile.Entry {
			if speed == Fast {
				return free.At(ci) // fastest first
			}
			return free.At(free.Len() - 1 - ci) // slowest first
		}
		best := 0
		bestDist := math.MaxInt
		for ci := 0; ci < k; ci++ {
			cInfo := s.info(s.addrOf(i, candAt(ci).Block))
			d := 0
			if refInfo.known && cInfo.known {
				s.pairChecks++
				d = refInfo.eigen.Distance(cInfo.eigen)
			}
			if d < bestDist {
				bestDist = d
				best = ci
			}
		}
		members[i] = s.addrOf(i, candAt(best).Block)
	}
	for _, m := range members {
		if !s.lane(m).free.Remove(m.Block) {
			return nil, fmt.Errorf("%w: %v", ErrNotFree, m)
		}
	}
	s.assembled++
	return members, nil
}

// AssembleArbitrary builds a superblock by letting sel choose one entry from
// each lane's free list (entries are ordered fastest-known first). It
// bypasses the similarity check; the FTL's baseline organizers (sequential,
// random) are built on it.
func (s *Scheme) AssembleArbitrary(sel func(entries []profile.Entry) int) ([]flash.BlockAddr, error) {
	return s.AssembleArbitraryInto(nil, sel)
}

// AssembleArbitraryInto is AssembleArbitrary appending into dst (usually a
// recycled slice). sel receives the lane's live sorted list — a read-only
// view, not the copy Head used to make, which made the baseline organizers
// O(blocks) allocations per assembly.
func (s *Scheme) AssembleArbitraryInto(dst []flash.BlockAddr, sel func(entries []profile.Entry) int) ([]flash.BlockAddr, error) {
	for i := range s.lanes {
		if s.lanes[i].free.Len() == 0 {
			return nil, fmt.Errorf("%w: lane %d", ErrLaneEmpty, i)
		}
	}
	members := dst[:0]
	for range s.lanes {
		members = append(members, flash.BlockAddr{})
	}
	for i := range s.lanes {
		entries := s.lanes[i].free.Entries()
		k := sel(entries)
		if k < 0 || k >= len(entries) {
			return nil, fmt.Errorf("core: selector returned %d for %d entries", k, len(entries))
		}
		members[i] = s.addrOf(i, entries[k].Block)
		if !s.lanes[i].free.Remove(entries[k].Block) {
			return nil, fmt.Errorf("%w: %v", ErrNotFree, members[i])
		}
	}
	s.assembled++
	return members, nil
}

// MemoryFootprintBytes evaluates the paper's Equation 2: per block, a 4-byte
// program-latency sum plus one bit per logical word-line.
func MemoryFootprintBytes(geo flash.Geometry) int {
	perBlock := 4 + (geo.LWLsPerBlock()+7)/8
	return geo.TotalBlocks() * perBlock
}

// BatchAssembler adapts QSTR-MED to the characterization experiments: it
// implements assembly.Assembler by repeatedly assembling fast superblocks on
// demand until the lanes are exhausted, so it can be compared head-to-head
// with the offline strategies of Tables I and V.
type BatchAssembler struct {
	K int
}

// Name implements assembly.Assembler.
func (b BatchAssembler) Name() string { return fmt.Sprintf("QSTR-MED (%d)", b.K) }

// Assemble implements assembly.Assembler.
func (b BatchAssembler) Assemble(lanes []assembly.Lane) (assembly.Result, error) {
	if len(lanes) == 0 || len(lanes[0].Blocks) == 0 {
		return assembly.Result{}, assembly.ErrLaneShape
	}
	if b.K <= 0 {
		return assembly.Result{}, fmt.Errorf("core: candidate window must be positive, got %d", b.K)
	}
	n := len(lanes[0].Blocks)
	type cand struct {
		idx    int // index into Lane.Blocks
		pgmSum float64
		eigen  profile.Eigen
	}
	pools := make([][]cand, len(lanes))
	for i, l := range lanes {
		if len(l.Blocks) != n {
			return assembly.Result{}, assembly.ErrLaneShape
		}
		pool := make([]cand, n)
		for j, blk := range l.Blocks {
			pool[j] = cand{idx: j, pgmSum: blk.PgmSum, eigen: profile.EigenFromProfile(blk)}
		}
		sort.SliceStable(pool, func(a, b int) bool { return pool[a].pgmSum < pool[b].pgmSum })
		pools[i] = pool
	}
	res := assembly.Result{Superblocks: make([][]int, 0, n)}
	for len(pools[0]) > 0 {
		// Reference: globally fastest head.
		refLane := 0
		for i := range pools {
			if pools[i][0].pgmSum < pools[refLane][0].pgmSum {
				refLane = i
			}
		}
		ref := pools[refLane][0]
		members := make([]int, len(lanes))
		members[refLane] = ref.idx
		pools[refLane] = pools[refLane][1:]
		for i := range pools {
			if i == refLane {
				continue
			}
			k := b.K
			if k > len(pools[i]) {
				k = len(pools[i])
			}
			best, bestDist := 0, math.MaxInt
			for ci := 0; ci < k; ci++ {
				res.PairChecks++
				res.Combos++
				if d := ref.eigen.Distance(pools[i][ci].eigen); d < bestDist {
					bestDist = d
					best = ci
				}
			}
			members[i] = pools[i][best].idx
			pools[i] = append(pools[i][:best], pools[i][best+1:]...)
		}
		res.Superblocks = append(res.Superblocks, members)
	}
	return res, nil
}
