package superfast_test

import (
	"testing"

	"superfast/internal/flash"
	"superfast/internal/pv"
	"superfast/internal/ssd"
)

// TestFTLChurnAllocFree pins BenchmarkFTLChurn's steady state at zero heap
// allocations per host write. Payload buffers circulate in a closed loop —
// writes move them from the recycle pool into flash pages, erases hand them
// back — so the fill pass must store real payloads (a nil fill leaves blocks
// that return fewer buffers than churn consumes and the pool keeps bottoming
// out), and two overwrite passes let the circulation ratchet up to
// self-sufficiency. After that a churning write (including the GC it
// triggers) must not allocate: journal entries, spare-area tags,
// open-superblock state, GC cursors and payload buffers all come back from
// erased blocks or the pools. AllocsPerRun averages over the whole run, so
// occasional pool-slice growth shows up as a fraction and the truncated
// result stays 0 only if the hot path is genuinely recycled.
func TestFTLChurnAllocFree(t *testing.T) {
	g := flash.TestGeometry()
	g.BlocksPerPlane = 12
	g.Layers = 12
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr := flash.MustNewArray(g, pv.New(p), flash.DefaultECC())
	cfg := ssd.DefaultConfig()
	cfg.FTL.Overprovision = 0.25
	dev, err := ssd.New(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("bench")
	if err := dev.FillSequential(func(int64) []byte { return payload }); err != nil {
		t.Fatal(err)
	}
	capacity := dev.FTL().Capacity()
	i := 0
	churn := func() {
		if _, err := dev.Submit(ssd.Request{
			Kind: ssd.OpWrite, LPN: int64(i*2654435761) % capacity, Data: payload,
		}); err != nil {
			t.Fatal(err)
		}
		i++
	}
	// Warm: two full overwrite passes populate the arenas via GC erases.
	for n := 0; n < 2*int(capacity); n++ {
		churn()
	}
	if n := testing.AllocsPerRun(500, churn); n > 0 {
		t.Errorf("steady-state churn write allocates %.2f objects/op, want 0", n)
	}
	if err := dev.FTL().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
