package ftl

import (
	"errors"
	"testing"

	"superfast/internal/flash"
	"superfast/internal/prng"
)

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	arr := testArray(t)
	cfg := testConfig()
	f, err := New(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := fillAndChurn(t, f, 0.8, 101)
	snap, err := f.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// "Power cycle": the array (NAND) retains data; FTL RAM state is gone.
	g, err := Restore(arr, cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// All data readable after restore.
	src := prng.New(5)
	for i := 0; i < 200; i++ {
		lpn := int64(src.Intn(int(g.Capacity())))
		r, err := g.Read(lpn)
		if err != nil {
			t.Fatalf("lpn %d: %v", lpn, err)
		}
		if string(r.Data) != string(payload(lpn, gen[lpn])) {
			t.Fatalf("lpn %d corrupted across power cycle", lpn)
		}
	}
	// The restored FTL keeps working: more churn, GC, integrity.
	for i := 0; i < int(g.Capacity()); i++ {
		lpn := int64(src.Intn(int(g.Capacity())))
		gen[lpn]++
		if _, err := g.Write(lpn, payload(lpn, gen[lpn])); err != nil {
			t.Fatalf("post-restore write: %v", err)
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		lpn := int64(src.Intn(int(g.Capacity())))
		r, err := g.Read(lpn)
		if err != nil {
			t.Fatalf("post-restore read lpn %d: %v", lpn, err)
		}
		if string(r.Data) != string(payload(lpn, gen[lpn])) {
			t.Fatalf("lpn %d corrupted after post-restore churn", lpn)
		}
	}
}

func TestCheckpointPreservesStatsAndScheme(t *testing.T) {
	arr := testArray(t)
	cfg := testConfig()
	f, err := New(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillAndChurn(t, f, 0.5, 103)
	wantStats := f.Stats()
	snap, err := f.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Restore(arr, cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Stats()
	// Checkpoint itself flushes, so flush counters may advance by the
	// flush inside Checkpoint; everything else carries over.
	if got.HostWrites != wantStats.HostWrites || got.GCWrites != wantStats.GCWrites {
		t.Fatalf("stats lost: %+v vs %+v", got, wantStats)
	}
	// Gathered block metadata survives the power cycle.
	known := 0
	geo := g.Geometry()
	for lane := 0; lane < geo.Lanes(); lane++ {
		chip, plane := geo.LaneChipPlane(lane)
		for b := 0; b < geo.BlocksPerPlane; b++ {
			if g.Scheme().Known(flash.BlockAddr{Chip: chip, Plane: plane, Block: b}) {
				known++
			}
		}
	}
	if known == 0 {
		t.Fatal("gathered metadata lost across the checkpoint")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	arr := testArray(t)
	cfg := testConfig()
	if _, err := Restore(arr, cfg, []byte("nonsense")); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("garbage checkpoint: got %v, want ErrCheckpointCorrupt", err)
	}
}

// TestRestoreRejectsTornCheckpoint models a power cut that lands mid-way
// through writing the checkpoint image: every strict prefix of a valid
// checkpoint must fail with the typed ErrCheckpointCorrupt — never a stray
// gob decode error, never a mis-restored FTL — and the device must still be
// recoverable by the OOB scan fallback.
func TestRestoreRejectsTornCheckpoint(t *testing.T) {
	arr := testArray(t)
	cfg := testConfig()
	f, err := New(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := fillAndChurn(t, f, 0.6, 107)
	snap, err := f.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 3, checkpointHeaderLen - 1, checkpointHeaderLen, checkpointHeaderLen + 1, len(snap) / 2, len(snap) - 1} {
		if _, err := Restore(arr, cfg, snap[:cut]); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("cut at %d/%d bytes: got %v, want ErrCheckpointCorrupt", cut, len(snap), err)
		}
	}
	// A flipped bit inside the body is caught by the checksum.
	flipped := append([]byte(nil), snap...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := Restore(arr, cfg, flipped); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("bit flip: got %v, want ErrCheckpointCorrupt", err)
	}
	// The torn checkpoint is not the end of the device: the OOB scan
	// rebuilds the mapping from flash alone.
	g, err := RecoverByScan(arr, cfg)
	if err != nil {
		t.Fatalf("scan fallback: %v", err)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	src := prng.New(7)
	for i := 0; i < 100; i++ {
		lpn := int64(src.Intn(int(g.Capacity())))
		r, err := g.Read(lpn)
		if err != nil {
			t.Fatalf("lpn %d after scan recovery: %v", lpn, err)
		}
		if string(r.Data) != string(payload(lpn, gen[lpn])) {
			t.Fatalf("lpn %d corrupted after scan recovery", lpn)
		}
	}
	// And the intact image still restores.
	if _, err := Restore(arr, cfg, snap); err != nil {
		t.Fatalf("intact checkpoint after torn attempts: %v", err)
	}
}
