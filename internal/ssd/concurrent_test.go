package ssd

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"superfast/internal/flash"
	"superfast/internal/pv"
	"superfast/internal/telemetry"
)

func concurrentDevice(t testing.TB) *ConcurrentDevice {
	t.Helper()
	return concurrentDeviceCfg(t, nil)
}

func concurrentDeviceCfg(t testing.TB, tweak func(*Config)) *ConcurrentDevice {
	t.Helper()
	g := flash.TestGeometry()
	g.BlocksPerPlane = 12
	g.Layers = 12
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr := flash.MustNewArray(g, pv.New(p), flash.DefaultECC())
	cfg := DefaultConfig()
	cfg.FTL.Overprovision = 0.25
	if tweak != nil {
		tweak(&cfg)
	}
	d, err := NewConcurrent(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// replayTickets drives reqs through the device with the given number of
// submitter goroutines, using pre-reserved tickets to pin the trace order.
func replayTickets(t testing.TB, d *ConcurrentDevice, reqs []Request, depth int) []Completion {
	t.Helper()
	first := d.ReserveBatch(len(reqs))
	out := make([]Completion, len(reqs))
	var next int64 = -1
	var wg sync.WaitGroup
	var errOnce sync.Once
	var firstErr error
	for w := 0; w < depth; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&next, 1)
				if i >= int64(len(reqs)) {
					return
				}
				c, err := d.SubmitTicket(first+uint64(i), reqs[i])
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					continue
				}
				out[i] = c
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	return out
}

func TestConcurrentWriteReadTrim(t *testing.T) {
	d := concurrentDevice(t)
	w, err := d.Submit(Request{Kind: OpWrite, LPN: 1, Data: []byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	if w.Latency < 0 {
		t.Fatalf("latency %v", w.Latency)
	}
	r, err := d.Submit(Request{Kind: OpRead, LPN: 1})
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Data) != "hello" {
		t.Fatalf("read %q", r.Data)
	}
	if _, err := d.Submit(Request{Kind: OpTrim, LPN: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(Request{Kind: OpRead, LPN: 1}); err == nil {
		t.Fatal("read after trim should fail")
	}
	if _, err := d.Submit(Request{Kind: OpKind(9)}); err == nil {
		t.Fatal("unknown op should fail")
	}
	s := d.Stats()
	if s.Writes != 1 || s.Reads != 1 || s.Trims != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func readTrace(d *ConcurrentDevice, n int) []Request {
	base := d.Now() + 1000
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Kind: OpRead, LPN: int64(i), Arrival: base + float64(i)}
	}
	return reqs
}

func TestConcurrentDepthIndependence(t *testing.T) {
	// The same stamped trace replayed at depth 1 and depth 8 must yield
	// bit-identical completions and merged statistics: tickets pin the FTL
	// order and dispatch order pins every chip schedule.
	run := func(depth int) ([]Completion, Stats, telemetry.DigestSnapshot) {
		d := concurrentDeviceCfg(t, func(cfg *Config) { cfg.RetainLatencies = true })
		if err := d.FillSequential(nil); err != nil {
			t.Fatal(err)
		}
		comps := replayTickets(t, d, readTrace(d, 48), depth)
		return comps, d.Stats(), d.LatencyDigest()
	}
	c1, s1, d1 := run(1)
	c8, s8, d8 := run(8)
	if !reflect.DeepEqual(c1, c8) {
		t.Fatal("depth-8 completions differ from depth-1")
	}
	if !reflect.DeepEqual(s1, s8) {
		t.Fatalf("depth-8 stats differ from depth-1:\n%+v\n%+v", s1, s8)
	}
	// The streaming digest consumes observations in ticket order (reorder
	// buffer), so even the P² marker state must be depth-independent.
	if d1 != d8 {
		t.Fatalf("depth-8 latency digest differs from depth-1:\n%+v\n%+v", d1, d8)
	}
}

func TestConcurrentMatchesSerialPerChip(t *testing.T) {
	// On a stamped read-only trace submitted in order, the concurrent front
	// end reduces to the serial Device's per-chip model: same per-chip busy
	// schedules, so the same completion times.
	cd := concurrentDevice(t)
	if err := cd.FillSequential(nil); err != nil {
		t.Fatal(err)
	}
	sd := perChipDevice(t)
	if err := sd.FillSequential(nil); err != nil {
		t.Fatal(err)
	}
	base := cd.Now()
	if n := sd.Now(); n > base {
		base = n
	}
	base += 1000
	for i := 0; i < 24; i++ {
		req := Request{Kind: OpRead, LPN: int64(i), Arrival: base + float64(i)*2}
		cc, err := cd.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := sd.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		if cc.Finish != sc.Finish || cc.Latency != sc.Latency {
			t.Fatalf("read %d: concurrent %+v vs serial per-chip %+v", i, cc, sc)
		}
	}
}

func TestConcurrentReadThroughputAtLeast2x(t *testing.T) {
	// Acceptance: a burst of same-instant reads spread over the chips must
	// finish at least 2× faster through the sharded front end than through
	// the serialized Device.
	sd := testDevice(t)
	if err := sd.FillSequential(nil); err != nil {
		t.Fatal(err)
	}
	base := sd.Now() + 1000
	var serialFinish float64
	const n = 64
	for i := 0; i < n; i++ {
		c, err := sd.Submit(Request{Kind: OpRead, LPN: int64(i), Arrival: base})
		if err != nil {
			t.Fatal(err)
		}
		if c.Finish > serialFinish {
			serialFinish = c.Finish
		}
	}
	serialSpan := serialFinish - base

	cd := concurrentDevice(t)
	if err := cd.FillSequential(nil); err != nil {
		t.Fatal(err)
	}
	cbase := cd.Now() + 1000
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Kind: OpRead, LPN: int64(i), Arrival: cbase}
	}
	comps := replayTickets(t, cd, reqs, 8)
	var concFinish float64
	for _, c := range comps {
		if c.Finish > concFinish {
			concFinish = c.Finish
		}
	}
	concSpan := concFinish - cbase
	if concSpan <= 0 {
		t.Fatalf("concurrent span %v", concSpan)
	}
	if serialSpan < 2*concSpan {
		t.Fatalf("concurrent front end span %v µs vs serialized %v µs: want ≥2× speedup", concSpan, serialSpan)
	}
}

func TestConcurrentDeviceRace(t *testing.T) {
	// Many goroutines hammer plain Submit while others poll Stats and
	// ChipStats; run under -race this is the data-race canary.
	d := concurrentDevice(t)
	if err := d.FillSequential(nil); err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 32
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				lpn := int64((w*perWorker + i) % 64)
				var err error
				if i%3 == 0 {
					_, err = d.Submit(Request{Kind: OpWrite, LPN: lpn, Data: []byte{byte(w), byte(i)}})
				} else {
					_, err = d.Submit(Request{Kind: OpRead, LPN: lpn})
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var pollers sync.WaitGroup
	for p := 0; p < 2; p++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = d.Stats()
					_ = d.ChipStats()
					_ = d.Now()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	pollers.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	s := d.Stats()
	if got := int(s.Requests); got < workers*perWorker {
		t.Fatalf("requests %d, want at least %d", got, workers*perWorker)
	}
	if err := d.FTL().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentBatchCoalescesWrites(t *testing.T) {
	// A batch of adjacent-LPN writes spanning exactly one super word line
	// coalesces: one buffer flush, every member sharing the flush's finish.
	d := concurrentDevice(t)
	g := d.FTL().Geometry()
	n := g.Lanes() * flash.PagesPerLWL
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Kind: OpWrite, LPN: int64(i), Data: []byte{byte(i)}, Arrival: 100}
	}
	comps, err := d.SubmitBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.FTL().Stats().Flushes; got != 1 {
		t.Fatalf("flushes = %d, want 1 (one coalesced super-WL program)", got)
	}
	for i, c := range comps {
		if c.Finish != comps[0].Finish {
			t.Fatalf("member %d finish %v differs from run finish %v", i, c.Finish, comps[0].Finish)
		}
	}
}

func TestConcurrentBatchCoalescesReads(t *testing.T) {
	// Adjacent-LPN reads in one batch become a multi-plane range read: the
	// members share one finish, data stays correct, and the run costs less
	// than the same reads issued one by one.
	fillPayload := func(lpn int64) []byte { return []byte{byte(lpn), byte(lpn >> 8)} }

	d := concurrentDevice(t)
	if err := d.FillSequential(fillPayload); err != nil {
		t.Fatal(err)
	}
	base := d.Now() + 1000
	n := 8
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Kind: OpRead, LPN: int64(i), Arrival: base}
	}
	comps, err := d.SubmitBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	var batchSpan float64
	for i, c := range comps {
		want := fillPayload(int64(i))
		if string(c.Data) != string(want) {
			t.Fatalf("read %d returned %v, want %v", i, c.Data, want)
		}
		if c.Finish != comps[0].Finish {
			t.Fatalf("member %d finish %v differs from run finish %v", i, c.Finish, comps[0].Finish)
		}
		if s := c.Finish - base; s > batchSpan {
			batchSpan = s
		}
	}

	single := concurrentDevice(t)
	if err := single.FillSequential(fillPayload); err != nil {
		t.Fatal(err)
	}
	sbase := single.Now() + 1000
	var singleFinish float64
	for i := 0; i < n; i++ {
		c, err := single.Submit(Request{Kind: OpRead, LPN: int64(i), Arrival: sbase})
		if err != nil {
			t.Fatal(err)
		}
		if c.Finish > singleFinish {
			singleFinish = c.Finish
		}
	}
	if singleSpan := singleFinish - sbase; batchSpan >= singleSpan {
		t.Fatalf("coalesced batch span %v should beat one-by-one span %v", batchSpan, singleSpan)
	}
}

func TestConcurrentStatsMergeOrder(t *testing.T) {
	// Latencies must come back in arrival order no matter which worker
	// finished first: submit a stamped trace at depth 8 and compare the
	// merged Latencies against the per-completion latencies in trace order.
	d := concurrentDeviceCfg(t, func(cfg *Config) { cfg.RetainLatencies = true })
	if err := d.FillSequential(nil); err != nil {
		t.Fatal(err)
	}
	fillCount := len(d.Stats().Latencies)
	reqs := readTrace(d, 32)
	comps := replayTickets(t, d, reqs, 8)
	lat := d.Stats().Latencies[fillCount:]
	if len(lat) != len(comps) {
		t.Fatalf("got %d latencies for %d completions", len(lat), len(comps))
	}
	for i, c := range comps {
		if lat[i] != c.Latency {
			t.Fatalf("latency %d = %v, want %v (arrival order)", i, lat[i], c.Latency)
		}
	}
}

func TestConcurrentFillSequential(t *testing.T) {
	d := concurrentDevice(t)
	if err := d.FillSequential(func(lpn int64) []byte { return []byte{byte(lpn)} }); err != nil {
		t.Fatal(err)
	}
	r, err := d.Submit(Request{Kind: OpRead, LPN: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Data) != 1 || r.Data[0] != 5 {
		t.Fatalf("read %v", r.Data)
	}
	if err := d.FTL().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	cs := d.ChipStats()
	if len(cs) != d.FTL().Geometry().Chips {
		t.Fatalf("chip stats for %d chips", len(cs))
	}
	for _, c := range cs {
		if c.Ops == 0 || c.Busy <= 0 {
			t.Fatalf("chip %d idle after fill: %+v", c.Chip, c)
		}
	}
}

func TestNewConcurrentValidation(t *testing.T) {
	g := flash.TestGeometry()
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr := flash.MustNewArray(g, pv.New(p), flash.DefaultECC())
	cfg := DefaultConfig()
	cfg.BusMBps = 0
	if _, err := NewConcurrent(arr, cfg); err == nil {
		t.Fatal("zero bandwidth should fail")
	}
}
