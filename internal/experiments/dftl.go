package experiments

import (
	"fmt"

	"superfast/internal/flash"
	"superfast/internal/pv"
	"superfast/internal/ssd"
	"superfast/internal/stats"
	"superfast/internal/workload"
)

func init() {
	register("dftl", runDFTL)
}

// runDFTL measures the cost of demand-paged mapping (the DFTL design every
// RAM-constrained controller uses): translation-cache hit rate and host
// write latency across cache sizes, under skewed and uniform traffic. Skew
// keeps the hot translation pages resident; uniform traffic thrashes small
// caches.
func runDFTL(cfg Config) (*Result, error) {
	g, p := deviceGeometry(cfg)
	t := &stats.Table{
		Title:   "DFTL translation cache — hit rate and write latency",
		Headers: []string{"Cache pages", "Workload", "Hit rate", "Writebacks", "Mean write µs"},
	}
	type wl struct {
		name string
		gen  func(capacity int64) workload.Generator
	}
	// Reuse is safe against the serial Device: it copies payloads at submit
	// entry (CopyRecycle), so one scratch buffer serves each run.
	workloads := []wl{
		{"hot/cold 80/20", func(c int64) workload.Generator {
			return &workload.HotCold{Space: c, Count: c, HotFrac: 0.8, HotSpace: 0.2, PageLen: 32, Seed: cfg.Seed + 17, Reuse: true}
		}},
		{"uniform", func(c int64) workload.Generator {
			return &workload.Uniform{Space: c, Count: c, PageLen: 32, Seed: cfg.Seed + 19, Reuse: true}
		}},
	}
	for _, cachePages := range []int{0, 2, 8, 32} {
		for _, w := range workloads {
			arr, err := flash.NewArray(g, pv.New(p), flash.DefaultECC())
			if err != nil {
				return nil, err
			}
			dcfg := ssd.DefaultConfig()
			dcfg.FTL.Overprovision = 0.25
			dcfg.FTL.MapCachePages = cachePages
			dev, err := ssd.New(arr, dcfg)
			if err != nil {
				return nil, err
			}
			dev.SetAttribution(cfg.Attr)
			capacity := dev.FTL().Capacity()
			if err := dev.FillSequential(nil); err != nil {
				return nil, err
			}
			cs, err := workload.Run(dev, w.gen(capacity))
			if err != nil {
				return nil, err
			}
			var lats []float64
			for _, c := range cs {
				lats = append(lats, c.Service)
			}
			sm := stats.Summarize(lats)
			mc := dev.FTL().MapCacheStats()
			label := fmt.Sprintf("%d", cachePages)
			hit := "n/a (RAM)"
			if cachePages > 0 {
				hit = stats.FmtPct(mc.HitRate())
			}
			if cachePages == 0 {
				label = "all-in-RAM"
			}
			t.AddRow(label, w.name, hit, fmt.Sprintf("%d", mc.Writebacks), stats.FmtUS(sm.Mean))
		}
	}
	text := "skewed traffic keeps hot translation pages resident; uniform traffic thrashes small caches\nand pays a translation read per host op plus dirty writebacks\n"
	return &Result{ID: "dftl", Tables: []*stats.Table{t}, Text: text}, nil
}
