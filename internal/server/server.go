package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"superfast/internal/ftl"
	"superfast/internal/ssd"
	"superfast/internal/telemetry"
)

// Config parameterizes the block service.
type Config struct {
	// MaxInFlight caps requests between admission and response across all
	// connections (default 256). Beyond it, connection readers stall — the
	// socket stops being read, and TCP backpressure reaches the client.
	MaxInFlight int
	// MaxPerConn caps one connection's in-flight requests (default 64). It
	// also bounds the per-connection response buffer, so server memory is
	// O(conns × MaxPerConn), never O(queued requests).
	MaxPerConn int
	// Deadline bounds a request's admission wait (0 = wait forever). A
	// request that cannot be admitted in time is answered StatusDeadline.
	Deadline time.Duration
	// Sequenced selects deterministic replay mode: every data request must
	// carry FlagSequenced and a Seq ticket, and the server admits tickets
	// into the device in global Seq order — a multi-connection replay then
	// produces bit-identical completions to a single-submitter run. The
	// ticket space must be dense (every Seq in 0..N submitted exactly once);
	// rejected tickets are retired with an empty device submission so the
	// chain cannot wedge.
	Sequenced bool
	// Pace delays each successful response by Pace wall-clock microseconds
	// per simulated microsecond of its latency (1.0 ≈ real device timing,
	// 0 = respond immediately). The admission slot is held through the
	// delay, so paced queue depths behave like a real device's.
	Pace float64
	// Metrics optionally mirrors the server counters into a telemetry
	// registry: srv.conns, srv.conns_total, srv.accepted, srv.responses,
	// srv.rejected, srv.inflight, srv.bytes_in, srv.bytes_out.
	Metrics *telemetry.Metrics
	// Ledger optionally collects per-hop timing records for traced requests
	// (frames carrying FlagTrace with a nonzero trace ID): the wall-clock
	// admission wait plus the device's queue/GC/service split of each
	// completion. Wire the same ledger into the device with SetLedger to also
	// capture GC-step attribution.
	Ledger *telemetry.Ledger
	// Tenants declares per-connection namespaces: tenant i+1 owns an
	// isolated slice of the LPN space, Pages logical pages starting where
	// tenant i's slice ends. A frame carrying the tenant extension is
	// validated against its namespace and rebased into the flat device
	// space; frames without the extension see the flat space unchanged
	// (plain v1 interop). The server advertises TenantCap when at least one
	// tenant is configured. Misconfigured tenants (non-positive Pages, or a
	// total exceeding the device capacity) fail Serve.
	Tenants []Tenant
	// EnableFaults accepts OpFault frames (JSON fault-injection commands —
	// bad-block storms, chip dropouts, power cuts, process death) and
	// advertises FaultCap. Off by default: fault injection is a test/
	// campaign surface, never something to expose to real traffic.
	EnableFaults bool
	// OnFaultDie is invoked (from a handler goroutine, after the response
	// is enqueued) when a "die" fault arrives. The CLI wires its shutdown
	// path here so a campaign can kill one backend mid-workload. Nil
	// rejects "die" faults.
	OnFaultDie func()
}

// Tenant declares one namespace for Config.Tenants.
type Tenant struct {
	// Name labels the tenant in STAT output and telemetry.
	Name string
	// Pages is the namespace size in logical pages (must be positive).
	Pages int64
	// Quota caps the tenant two ways: at most Quota requests in flight
	// through admission (wall clock), and — via the device's SetTenantQuota
	// virtual-time pacing — at most Quota chips kept busy on average on the
	// simulated clock. 0 = no cap, no shaping.
	Quota int
}

// Server is the TCP block service over one ConcurrentDevice.
type Server struct {
	dev *ssd.ConcurrentDevice
	cfg Config
	adm *admission
	// seqBase rebases the wire's dense 0-based Seq tickets onto the device's
	// ticket space, which may have advanced before the server existed (warm
	// fill). Captured once at construction.
	seqBase uint64
	// tenants holds the resolved namespace table (base offsets are the
	// running sum of earlier tenants' Pages). capPayload is the PING
	// capability token list. cfgErr carries a tenant misconfiguration from
	// New to Serve.
	tenants    []tenantState
	capPayload []byte
	cfgErr     error
	dieOnce    sync.Once

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	connWG   sync.WaitGroup

	connsNow   atomic.Int64
	connsEver  atomic.Uint64
	accepted   atomic.Uint64
	responses  atomic.Uint64
	rejected   atomic.Uint64
	bytesIn    atomic.Uint64
	bytesOut   atomic.Uint64
	pacedSlept atomic.Uint64 // total paced wall-µs, for RecorderColumns

	met *serverMetrics
}

// tenantState is one resolved namespace plus its serving counters.
type tenantState struct {
	name  string
	base  int64 // first device LPN of the namespace
	pages int64

	accepted atomic.Uint64
	rejected atomic.Uint64

	// optional telemetry mirrors (srv.tenant.<name>.*)
	mAccepted *telemetry.Counter
	mRejected *telemetry.Counter
	mInflight *telemetry.Gauge
}

// serverMetrics caches the optional telemetry mirrors.
type serverMetrics struct {
	conns     *telemetry.Gauge
	connsEver *telemetry.Counter
	accepted  *telemetry.Counter
	responses *telemetry.Counter
	rejected  *telemetry.Counter
	bytesIn   *telemetry.Counter
	bytesOut  *telemetry.Counter
}

// New builds a server over the device. The device must outlive the server;
// the server never closes it.
func New(dev *ssd.ConcurrentDevice, cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.MaxPerConn <= 0 {
		cfg.MaxPerConn = 64
	}
	s := &Server{
		dev:   dev,
		cfg:   cfg,
		adm:   newAdmission(cfg.MaxInFlight),
		conns: make(map[net.Conn]struct{}),
	}
	if cfg.Sequenced {
		s.seqBase = dev.NextTicket()
	}
	if m := cfg.Metrics; m != nil {
		s.met = &serverMetrics{
			conns:     m.Gauge("srv.conns"),
			connsEver: m.Counter("srv.conns_total"),
			accepted:  m.Counter("srv.accepted"),
			responses: m.Counter("srv.responses"),
			rejected:  m.Counter("srv.rejected"),
			bytesIn:   m.Counter("srv.bytes_in"),
			bytesOut:  m.Counter("srv.bytes_out"),
		}
		s.adm.gauge = m.Gauge("srv.inflight")
	}
	s.initTenants()
	caps := TraceCap
	if len(s.tenants) > 0 {
		caps += " " + TenantCap
	}
	if cfg.EnableFaults {
		caps += " " + FaultCap
	}
	s.capPayload = []byte(caps)
	return s
}

// initTenants resolves Config.Tenants into the namespace table, registers
// the per-tenant admission caps and device service quotas, and records any
// misconfiguration for Serve to report.
func (s *Server) initTenants() {
	if len(s.cfg.Tenants) == 0 {
		return
	}
	capacity := s.dev.FTL().Capacity()
	var base int64
	caps := make([]int, len(s.cfg.Tenants))
	s.tenants = make([]tenantState, len(s.cfg.Tenants))
	for i, t := range s.cfg.Tenants {
		if t.Pages <= 0 {
			s.cfgErr = fmt.Errorf("server: tenant %d (%q) has %d pages", i+1, t.Name, t.Pages)
			return
		}
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("tenant-%d", i+1)
		}
		ts := &s.tenants[i]
		ts.name, ts.base, ts.pages = name, base, t.Pages
		if m := s.cfg.Metrics; m != nil {
			ts.mAccepted = m.Counter("srv.tenant." + name + ".accepted")
			ts.mRejected = m.Counter("srv.tenant." + name + ".rejected")
			ts.mInflight = m.Gauge("srv.tenant." + name + ".inflight")
		}
		caps[i] = t.Quota
		if t.Quota > 0 {
			s.dev.SetTenantQuota(i+1, t.Quota)
		}
		base += t.Pages
	}
	if base > capacity {
		s.cfgErr = fmt.Errorf("server: tenants claim %d pages, device has %d", base, capacity)
		return
	}
	s.adm.setTenantCaps(caps)
	for i := range s.tenants {
		s.adm.tenGauge[i] = s.tenants[i].mInflight
	}
}

// RecorderColumns returns the serving-layer columns the server can
// contribute to a flight recorder (see ssd.SetRecorderExtra): open
// connections, admission in-flight, accepted and rejected totals. Serving
// columns sample live wall-clock state, so unlike the device columns they
// are not byte-deterministic across runs.
func RecorderColumns() []string {
	return []string{"srv_conns", "srv_inflight", "srv_accepted", "srv_rejected"}
}

// RecorderSampler returns the fill function matching RecorderColumns.
func (s *Server) RecorderSampler() func(vals []float64) {
	return func(vals []float64) {
		vals[0] = float64(s.connsNow.Load())
		vals[1] = float64(s.adm.load())
		vals[2] = float64(s.accepted.Load())
		vals[3] = float64(s.rejected.Load())
	}
}

// Stats returns the serving-layer counters.
func (s *Server) Stats() ServerStats {
	st := ServerStats{
		Conns:     s.connsNow.Load(),
		ConnsEver: s.connsEver.Load(),
		Accepted:  s.accepted.Load(),
		Responses: s.responses.Load(),
		Rejected:  s.rejected.Load(),
		InFlight:  int64(s.adm.load()),
		BytesIn:   s.bytesIn.Load(),
		BytesOut:  s.bytesOut.Load(),
	}
	for i := range s.tenants {
		t := &s.tenants[i]
		st.Tenants = append(st.Tenants, TenantStats{
			Name:     t.name,
			Pages:    t.pages,
			Quota:    s.cfg.Tenants[i].Quota,
			Accepted: t.accepted.Load(),
			Rejected: t.rejected.Load(),
		})
	}
	return st
}

// ListenAndServe listens on addr and serves until Shutdown. The second
// return of Listen-style helpers is not needed here; use Serve with your own
// listener to learn the bound address first.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown closes it. It returns nil
// after a graceful shutdown and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	if s.cfgErr != nil {
		ln.Close()
		return s.cfgErr
	}
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.startConn(nc)
	}
}

// startConn registers nc and launches its reader/writer pair.
func (s *Server) startConn(nc net.Conn) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.conns[nc] = struct{}{}
	s.connWG.Add(1)
	s.mu.Unlock()
	s.connsNow.Add(1)
	s.connsEver.Add(1)
	if s.met != nil {
		s.met.conns.Add(1)
		s.met.connsEver.Inc()
	}
	c := &conn{
		srv: s,
		nc:  nc,
		out: make(chan Response, s.cfg.MaxPerConn+8),
	}
	c.cond = sync.NewCond(&c.lmu)
	go c.run()
}

// forgetConn unregisters nc after its goroutines exit.
func (s *Server) forgetConn(nc net.Conn) {
	s.mu.Lock()
	delete(s.conns, nc)
	s.mu.Unlock()
	s.connsNow.Add(-1)
	if s.met != nil {
		s.met.conns.Add(-1)
	}
	s.connWG.Done()
}

// Shutdown gracefully drains the server: stop accepting, stop reading
// request frames, answer everything already read (in-flight requests run to
// completion, unadmitted ones get StatusRejected), flush the responses, then
// close the connections. If ctx expires first the remaining connections are
// closed forcibly and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for nc := range s.conns {
		conns = append(conns, nc)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.adm.drain()
	// Kick every reader out of its blocking frame read; readers see the
	// deadline error with draining set and switch to their drain path.
	for _, nc := range conns {
		nc.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for nc := range s.conns {
			nc.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// conn is one client connection: a reader goroutine decoding frames and
// admitting requests, a writer goroutine encoding responses, and a bounded
// set of in-flight handler goroutines between them.
type conn struct {
	srv *Server
	nc  net.Conn
	out chan Response

	lmu      sync.Mutex
	cond     *sync.Cond
	inFlight int // local in-flight, capped at MaxPerConn

	handlers sync.WaitGroup
}

// run executes the connection lifecycle: writer in the background, reader in
// the foreground, then the drain-and-close sequence.
func (c *conn) run() {
	defer c.srv.forgetConn(c.nc)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		c.writer()
	}()
	c.reader()
	// Every accepted frame either responded already or has a handler in
	// flight; wait for them, then let the writer flush and exit.
	c.handlers.Wait()
	close(c.out)
	<-writerDone
	// Graceful TCP teardown: FIN our side, then drain whatever the client
	// had in flight toward us so the close cannot RST responses still
	// sitting in the client's receive buffer.
	if tc, ok := c.nc.(*net.TCPConn); ok {
		tc.CloseWrite()
		c.nc.SetReadDeadline(time.Now().Add(time.Second))
		buf := make([]byte, 4096)
		for {
			if _, err := c.nc.Read(buf); err != nil {
				break
			}
		}
	}
	c.nc.Close()
}

// reader decodes frames and dispatches them until the client closes its
// side, a protocol error occurs, or shutdown kicks it out.
func (c *conn) reader() {
	s := c.srv
	br := bufio.NewReaderSize(c.nc, 64<<10)
	for {
		f, n, err := ReadFrame(br)
		s.addBytesIn(uint64(n))
		if err != nil {
			return
		}
		s.addAccepted()
		switch f.Op {
		case OpPing:
			// The payload advertises capability tokens; v1 clients ignore
			// PING payloads, new ones learn which extensions are accepted.
			c.respond(Response{Status: StatusOK, ID: f.ID, Payload: s.capPayload})
		case OpStat:
			c.respond(s.statResponse(f.ID))
		case OpFlush:
			// Pipeline barrier: stall this connection's reads until its
			// in-flight requests have responded, then acknowledge.
			c.waitIdle()
			c.respond(Response{Status: StatusOK, ID: f.ID})
		case OpFault:
			if !s.cfg.EnableFaults {
				c.respond(Response{
					Status: StatusBadRequest, ID: f.ID,
					Payload: []byte("fault injection disabled"),
				})
				continue
			}
			// Handled inline on the reader: fault application must be
			// ordered against this connection's later frames (a campaign
			// injects, then immediately sends the traffic that should see
			// the fault).
			c.respond(s.handleFault(f))
		case OpRead, OpWrite, OpTrim:
			if f.Sequenced() != s.cfg.Sequenced {
				c.respond(Response{
					Status: StatusBadRequest, ID: f.ID,
					Payload: []byte(fmt.Sprintf("sequenced flag %v but server sequenced=%v", f.Sequenced(), s.cfg.Sequenced)),
				})
				continue
			}
			if msg, ok := s.rebaseTenant(&f); !ok {
				s.rejected.Add(1)
				if s.met != nil {
					s.met.rejected.Inc()
				}
				if s.cfg.Sequenced {
					// The rejected ticket still occupies a position in the
					// dense replay chain: retire it at admission and at the
					// device so later tickets cannot wedge behind it.
					s.adm.retire(f.Seq)
					go s.dev.SubmitBatchTicket(s.seqBase+f.Seq, nil)
				}
				c.respond(Response{Status: StatusBadRequest, ID: f.ID, Payload: []byte(msg)})
				continue
			}
			c.acquireLocal()
			var deadline time.Time
			if s.cfg.Deadline > 0 {
				deadline = time.Now().Add(s.cfg.Deadline)
			}
			traced := s.cfg.Ledger != nil && f.Traced() && f.Trace != 0
			var admStart time.Time
			if traced {
				admStart = time.Now()
			}
			aerr := s.adm.acquire(f.Seq, s.cfg.Sequenced, deadline, int(f.Tenant))
			if traced {
				st := StatusOK
				if aerr == errDeadline {
					st = StatusDeadline
				} else if aerr != nil {
					st = StatusRejected
				}
				s.cfg.Ledger.Record(telemetry.HopRecord{
					Trace: f.Trace, Hop: telemetry.HopAdmission, Parent: f.ParentHop,
					Leg: f.Leg, Seq: f.Seq, LPN: f.LPN, Status: byte(st),
					SimTS: -1, WallNS: time.Since(admStart).Nanoseconds(),
				})
			}
			if aerr != nil {
				c.releaseLocal()
				s.rejected.Add(1)
				if s.met != nil {
					s.met.rejected.Inc()
				}
				if t := s.tenant(f.Tenant); t != nil {
					t.rejected.Add(1)
					if t.mRejected != nil {
						t.mRejected.Inc()
					}
				}
				if s.cfg.Sequenced {
					// Retire the ticket at the device so later tickets are
					// not deadlocked behind the rejected one. Asynchronously:
					// the empty submission itself waits for all earlier
					// tickets, which may still be unread behind this frame on
					// this very socket — retiring inline would wedge the
					// reader. If the chain never completes (a client died
					// mid-replay), the goroutine parks until process exit.
					go s.dev.SubmitBatchTicket(s.seqBase+f.Seq, nil)
				}
				status := StatusRejected
				if aerr == errDeadline {
					status = StatusDeadline
				}
				c.respond(Response{Status: status, ID: f.ID, Payload: []byte(aerr.Error())})
				continue
			}
			if t := s.tenant(f.Tenant); t != nil {
				t.accepted.Add(1)
				if t.mAccepted != nil {
					t.mAccepted.Inc()
				}
			}
			c.handlers.Add(1)
			go c.handle(f)
		}
	}
}

// tenant resolves a wire tenant id (1-based, 0 = untenanted) to its state,
// nil when untenanted or unknown.
func (s *Server) tenant(id uint16) *tenantState {
	if id == 0 || int(id) > len(s.tenants) {
		return nil
	}
	return &s.tenants[id-1]
}

// rebaseTenant validates a data frame against its namespace and rebases its
// LPN into the flat device space. Returns ok=false with a client-facing
// message when the tenant is unknown, the server has no tenants configured,
// or the LPN falls outside the namespace. Untenanted frames pass through
// unchanged — but only when the server is not partitioned into tenants:
// mixing flat-space and namespaced writers would alias LPNs.
func (s *Server) rebaseTenant(f *Frame) (string, bool) {
	if !f.Tenanted() {
		if len(s.tenants) > 0 {
			return "server requires tenant extension", false
		}
		return "", true
	}
	t := s.tenant(f.Tenant)
	if t == nil {
		return fmt.Sprintf("unknown tenant %d", f.Tenant), false
	}
	if f.LPN < 0 || f.LPN >= t.pages {
		t.rejected.Add(1)
		if t.mRejected != nil {
			t.mRejected.Inc()
		}
		return fmt.Sprintf("lpn %d outside namespace %q (%d pages)", f.LPN, t.name, t.pages), false
	}
	f.LPN += t.base
	return "", true
}

// handle submits one admitted request to the device and responds.
func (c *conn) handle(f Frame) {
	defer c.handlers.Done()
	s := c.srv
	req := ssd.Request{LPN: f.LPN, Arrival: f.Arrival, Trace: f.Trace, Tenant: int(f.Tenant)}
	switch f.Op {
	case OpRead:
		req.Kind = ssd.OpRead
	case OpWrite:
		req.Kind = ssd.OpWrite
		req.Data = f.Payload
		req.Hint = ftl.Hint(f.Hint)
	case OpTrim:
		req.Kind = ssd.OpTrim
	}
	var comp ssd.Completion
	var err error
	if s.cfg.Sequenced {
		comp, err = s.dev.SubmitTicket(s.seqBase+f.Seq, req)
	} else {
		comp, err = s.dev.Submit(req)
	}
	resp := Response{ID: f.ID}
	if s.cfg.Ledger != nil && f.Traced() && f.Trace != 0 {
		s.recordDeviceHops(f, comp, err)
	}
	if err != nil {
		resp.Status = StatusFor(err)
		resp.Payload = []byte(err.Error())
	} else {
		resp.Latency = comp.Latency
		if f.Op == OpRead {
			resp.Payload = comp.Data
		}
		if s.cfg.Pace > 0 {
			us := comp.Latency * s.cfg.Pace
			s.pacedSlept.Add(uint64(us))
			time.Sleep(time.Duration(us * float64(time.Microsecond)))
		}
	}
	c.respond(resp)
	s.adm.release(int(f.Tenant))
	c.releaseLocal()
}

// recordDeviceHops splits one completion into the ledger's device hops:
// queue (time between arrival and service start), gc (the blocking-GC share
// of service, writes only), and service (the rest). The three durations sum
// exactly to Completion.Latency — the simulated latency the client observes
// in the response — which the hop-accounting test pins.
func (s *Server) recordDeviceHops(f Frame, comp ssd.Completion, err error) {
	led := s.cfg.Ledger
	base := telemetry.HopRecord{
		Trace: f.Trace, Parent: f.ParentHop, Leg: f.Leg, Seq: f.Seq, LPN: f.LPN,
	}
	if err != nil {
		// Nothing was serviced; one service record carries the error status.
		r := base
		r.Hop = telemetry.HopService
		r.Status = byte(StatusFor(err))
		r.SimTS = -1
		led.Record(r)
		return
	}
	// GCTime is part of Service by construction; clamp anyway so the three
	// hops always sum to Latency even if a model change breaks the invariant.
	gc := comp.GCTime
	if gc > comp.Service {
		gc = comp.Service
	}
	q := base
	q.Hop = telemetry.HopQueue
	q.SimTS = comp.Start - comp.Wait
	q.SimUS = comp.Wait
	led.Record(q)
	if f.Op == OpWrite {
		// Recorded even at zero so every traced write answers "how much GC
		// blocked me" — the cluster breakdown then always covers the hop.
		g := base
		g.Hop = telemetry.HopGC
		g.SimTS = comp.Start
		g.SimUS = gc
		led.Record(g)
	}
	sv := base
	sv.Hop = telemetry.HopService
	sv.SimTS = comp.Start + gc
	sv.SimUS = comp.Service - gc
	led.Record(sv)
}

// writer encodes responses in completion order. After a write error it keeps
// draining the channel (discarding) so handlers can never block on a dead
// connection.
func (c *conn) writer() {
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	var buf []byte
	var dead bool
	for r := range c.out {
		if dead {
			continue
		}
		var err error
		buf, err = AppendResponse(buf[:0], r)
		if err != nil {
			// Unencodable response (oversized payload): degrade to an
			// internal error so the client still gets an answer for the ID.
			buf, _ = AppendResponse(buf[:0], Response{
				Status: StatusInternal, ID: r.ID, Payload: []byte(err.Error()),
			})
		}
		if _, err := bw.Write(buf); err != nil {
			dead = true
			continue
		}
		c.srv.addBytesOut(uint64(len(buf)))
		if len(c.out) == 0 {
			if err := bw.Flush(); err != nil {
				dead = true
			}
		}
	}
	if !dead {
		bw.Flush()
	}
}

// respond enqueues one response and counts it.
func (c *conn) respond(r Response) {
	c.srv.responses.Add(1)
	if c.srv.met != nil {
		c.srv.met.responses.Inc()
	}
	c.out <- r
}

// acquireLocal blocks while the connection is at its in-flight cap —
// stalling the reader, which stops draining the socket.
func (c *conn) acquireLocal() {
	c.lmu.Lock()
	for c.inFlight >= c.srv.cfg.MaxPerConn {
		c.cond.Wait()
	}
	c.inFlight++
	c.lmu.Unlock()
}

func (c *conn) releaseLocal() {
	c.lmu.Lock()
	c.inFlight--
	c.cond.Broadcast()
	c.lmu.Unlock()
}

// waitIdle blocks until the connection has no request in flight.
func (c *conn) waitIdle() {
	c.lmu.Lock()
	for c.inFlight > 0 {
		c.cond.Wait()
	}
	c.lmu.Unlock()
}

// statResponse snapshots the device, FTL and server counters. FTL state is
// read under the device's FTL-stage lock, so STAT is safe while submissions
// are in flight.
func (s *Server) statResponse(id uint64) Response {
	var snap StatSnapshot
	snap.Device = s.dev.Stats()
	s.dev.WithFTL(func(f *ftl.FTL) {
		snap.Capacity = f.Capacity()
		snap.PageSize = f.Geometry().PageSize
		snap.FTL = f.Stats()
	})
	snap.WAF = snap.FTL.WAF()
	snap.Chips = s.dev.ChipStats()
	snap.Server = s.Stats()
	payload, err := json.Marshal(snap)
	if err != nil {
		return Response{Status: StatusInternal, ID: id, Payload: []byte(err.Error())}
	}
	return Response{Status: StatusOK, ID: id, Payload: payload}
}

func (s *Server) addBytesIn(n uint64) {
	s.bytesIn.Add(n)
	if s.met != nil {
		s.met.bytesIn.Add(n)
	}
}

func (s *Server) addBytesOut(n uint64) {
	s.bytesOut.Add(n)
	if s.met != nil {
		s.met.bytesOut.Add(n)
	}
}

func (s *Server) addAccepted() {
	s.accepted.Add(1)
	if s.met != nil {
		s.met.accepted.Inc()
	}
}
