package workload

import (
	"reflect"
	"sync/atomic"
	"testing"

	"superfast/internal/flash"
	"superfast/internal/pv"
	"superfast/internal/ssd"
)

func concurrentDevice(t testing.TB) *ssd.ConcurrentDevice {
	t.Helper()
	g := flash.TestGeometry()
	g.BlocksPerPlane = 12
	g.Layers = 12
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr := flash.MustNewArray(g, pv.New(p), flash.DefaultECC())
	cfg := ssd.DefaultConfig()
	cfg.FTL.Overprovision = 0.25
	d, err := ssd.NewConcurrent(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func TestCollect(t *testing.T) {
	reqs := Collect(&Sequential{N: 5, PageLen: 8})
	if len(reqs) != 5 {
		t.Fatalf("got %d requests", len(reqs))
	}
	for i, req := range reqs {
		if req.Kind != ssd.OpWrite || req.LPN != int64(i) {
			t.Fatalf("request %d = %+v", i, req)
		}
	}
}

func TestRunConcurrentDepthIndependence(t *testing.T) {
	// A paced mixed trace replayed at depth 1 and depth 4 must produce
	// identical completions: tickets pin the trace order regardless of how
	// many goroutines keep the queue full.
	trace := Collect(&Paced{
		Gen:       &Mixed{Space: 64, Count: 200, ReadFrac: 0.5, PageLen: 8, Seed: 7},
		MeanGapUS: 50,
		Seed:      7,
	})
	run := func(depth int) []ssd.Completion {
		d := concurrentDevice(t)
		out, err := RunConcurrent(d, trace, depth)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	c1 := run(1)
	c4 := run(4)
	if !reflect.DeepEqual(c1, c4) {
		t.Fatal("depth-4 completions differ from depth-1")
	}
	if len(c1) != len(trace) {
		t.Fatalf("got %d completions for %d requests", len(c1), len(trace))
	}
}

func TestRunConcurrentErrorKeepsDeviceUsable(t *testing.T) {
	// A failing request mid-trace must not wedge the ticket sequence: the
	// error is reported, the rest of the trace is still driven through, and
	// the device accepts new submissions afterwards.
	d := concurrentDevice(t)
	reqs := []ssd.Request{
		{Kind: ssd.OpWrite, LPN: 0, Data: []byte("a")},
		{Kind: ssd.OpRead, LPN: 999999}, // never written: unmapped read
		{Kind: ssd.OpWrite, LPN: 1, Data: []byte("b")},
	}
	if _, err := RunConcurrent(d, reqs, 2); err == nil {
		t.Fatal("unmapped read should surface an error")
	}
	c, err := d.Submit(ssd.Request{Kind: ssd.OpRead, LPN: 1})
	if err != nil {
		t.Fatal(err)
	}
	if string(c.Data) != "b" {
		t.Fatalf("read %q after failed trace", c.Data)
	}
}

func TestRunConcurrentEmpty(t *testing.T) {
	d := concurrentDevice(t)
	out, err := RunConcurrent(d, nil, 8)
	if err != nil || out != nil {
		t.Fatalf("empty trace: %v, %v", out, err)
	}
}

func TestPrepareForReplay(t *testing.T) {
	reqs := []ssd.Request{
		{Kind: ssd.OpRead, LPN: 3, Arrival: 100},
		{Kind: ssd.OpWrite, LPN: 4, Data: []byte("x"), Arrival: 110},
		{Kind: ssd.OpRead, LPN: 4, Arrival: 120},
		{Kind: ssd.OpRead, LPN: 3, Arrival: 130},
	}
	out, idx := PrepareForReplay(reqs)
	if len(out) != 5 {
		t.Fatalf("got %d requests, want 5 (one priming write)", len(out))
	}
	if out[0].Kind != ssd.OpWrite || out[0].LPN != 3 || out[0].Arrival != 100 {
		t.Fatalf("priming write wrong: %+v", out[0])
	}
	if want := []int{1, 2, 3, 4}; !reflect.DeepEqual(idx, want) {
		t.Fatalf("index map %v, want %v", idx, want)
	}
	// The prepared trace must replay cleanly on a fresh device.
	d := concurrentDevice(t)
	if _, err := RunConcurrent(d, out, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunConcurrentFuncStreams(t *testing.T) {
	// The streaming form must visit every request exactly once with the same
	// completion the materializing form returns — and combined with the
	// device's latency digest it replaces the completion slice entirely.
	trace := Collect(&Paced{
		Gen:       &Mixed{Space: 64, Count: 150, ReadFrac: 0.5, PageLen: 8, Seed: 11},
		MeanGapUS: 50,
		Seed:      11,
	})
	d := concurrentDevice(t)
	want, err := RunConcurrent(d, trace, 4)
	if err != nil {
		t.Fatal(err)
	}

	s := concurrentDevice(t)
	got := make([]ssd.Completion, len(trace))
	seen := make([]int32, len(trace))
	if err := RunConcurrentFunc(s, trace, 4, func(i int, c ssd.Completion) {
		atomic.AddInt32(&seen[i], 1)
		got[i] = c
	}); err != nil {
		t.Fatal(err)
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("request %d delivered %d times", i, n)
		}
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("streamed completions differ from materialized ones")
	}
	if d.LatencyDigest() != s.LatencyDigest() {
		t.Fatal("latency digests differ between the two forms")
	}
}

func TestRunConcurrentFuncNilSink(t *testing.T) {
	// fn == nil drives the trace purely for its side effects; aggregates come
	// from the streaming digest instead of a completion slice.
	trace := Collect(&Sequential{N: 32, PageLen: 8})
	d := concurrentDevice(t)
	if err := RunConcurrentFunc(d, trace, 4, nil); err != nil {
		t.Fatal(err)
	}
	if got := d.LatencyDigest().N; got != 32 {
		t.Fatalf("digest n = %d, want 32", got)
	}
}

func TestRunConcurrentFuncErrorSkipsCallback(t *testing.T) {
	d := concurrentDevice(t)
	reqs := []ssd.Request{
		{Kind: ssd.OpWrite, LPN: 0, Data: []byte("a")},
		{Kind: ssd.OpRead, LPN: 999999}, // unmapped
		{Kind: ssd.OpWrite, LPN: 1, Data: []byte("b")},
	}
	var calls int32
	err := RunConcurrentFunc(d, reqs, 1, func(i int, c ssd.Completion) {
		atomic.AddInt32(&calls, 1)
		if i == 1 {
			t.Error("callback invoked for the failed request")
		}
	})
	if err == nil {
		t.Fatal("unmapped read should surface an error")
	}
	if calls != 2 {
		t.Fatalf("callback ran %d times, want 2 (successes only)", calls)
	}
}
