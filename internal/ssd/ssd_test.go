package ssd

import (
	"testing"

	"superfast/internal/flash"
	"superfast/internal/pv"
)

func testDevice(t testing.TB) *Device {
	t.Helper()
	return testDeviceCfg(t, nil)
}

func testDeviceCfg(t testing.TB, tweak func(*Config)) *Device {
	t.Helper()
	g := flash.TestGeometry()
	g.BlocksPerPlane = 12
	g.Layers = 12
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr, err := flash.NewArray(g, pv.New(p), flash.DefaultECC())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.FTL.Overprovision = 0.25
	if tweak != nil {
		tweak(&cfg)
	}
	d, err := New(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	g := flash.TestGeometry()
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr := flash.MustNewArray(g, pv.New(p), flash.DefaultECC())
	cfg := DefaultConfig()
	cfg.BusMBps = 0
	if _, err := New(arr, cfg); err == nil {
		t.Fatal("zero bandwidth should fail")
	}
}

func TestWriteReadRequest(t *testing.T) {
	d := testDevice(t)
	w, err := d.Submit(Request{Kind: OpWrite, LPN: 1, Data: []byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	if w.Latency < 0 {
		t.Fatalf("latency %v", w.Latency)
	}
	r, err := d.Submit(Request{Kind: OpRead, LPN: 1})
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Data) != "hello" {
		t.Fatalf("read %q", r.Data)
	}
}

func TestTrimRequest(t *testing.T) {
	d := testDevice(t)
	if _, err := d.Submit(Request{Kind: OpWrite, LPN: 2, Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(Request{Kind: OpTrim, LPN: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(Request{Kind: OpRead, LPN: 2}); err == nil {
		t.Fatal("read after trim should fail")
	}
}

func TestUnknownOp(t *testing.T) {
	d := testDevice(t)
	if _, err := d.Submit(Request{Kind: OpKind(9)}); err == nil {
		t.Fatal("unknown op should fail")
	}
}

func TestQueueingDelay(t *testing.T) {
	d := testDevice(t)
	// Two requests arriving at the same instant: the second waits for the
	// first to finish.
	a, err := d.Submit(Request{Kind: OpWrite, LPN: 0, Data: []byte("a"), Arrival: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Submit(Request{Kind: OpWrite, LPN: 1, Data: []byte("b"), Arrival: 10})
	if err != nil {
		t.Fatal(err)
	}
	if b.Start < a.Finish {
		t.Fatalf("second request started at %v before first finished at %v", b.Start, a.Finish)
	}
	if b.Wait <= 0 {
		t.Fatalf("second request should have queued, wait = %v", b.Wait)
	}
}

func TestClockAdvances(t *testing.T) {
	d := testDevice(t)
	if _, err := d.Submit(Request{Kind: OpWrite, LPN: 0, Data: []byte("x"), Arrival: 500}); err != nil {
		t.Fatal(err)
	}
	if d.Now() < 500 {
		t.Fatalf("clock %v should be at least the arrival time", d.Now())
	}
}

func TestStatsCounting(t *testing.T) {
	d := testDevice(t)
	if _, err := d.Submit(Request{Kind: OpWrite, LPN: 0, Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(Request{Kind: OpRead, LPN: 0}); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Requests != 2 || s.Writes != 1 || s.Reads != 1 {
		t.Fatalf("stats %+v", s)
	}
	if len(s.Latencies) != 2 {
		t.Fatalf("latencies %v", s.Latencies)
	}
}

func TestFillSequential(t *testing.T) {
	d := testDevice(t)
	if err := d.FillSequential(func(lpn int64) []byte { return []byte{byte(lpn)} }); err != nil {
		t.Fatal(err)
	}
	r, err := d.Submit(Request{Kind: OpRead, LPN: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Data) != 1 || r.Data[0] != 5 {
		t.Fatalf("read %v", r.Data)
	}
	if err := d.FTL().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFlushLatencySpikes(t *testing.T) {
	// Most writes buffer quickly; every (lanes × 3)-th write triggers a
	// multi-plane program whose latency dominates.
	d := testDevice(t)
	perWL := d.FTL().Geometry().Lanes() * flash.PagesPerLWL
	var flushLat, bufLat float64
	for i := 0; i < perWL*3; i++ {
		c, err := d.Submit(Request{Kind: OpWrite, LPN: int64(i), Data: []byte("x")})
		if err != nil {
			t.Fatal(err)
		}
		if (i+1)%perWL == 0 {
			flushLat += c.Service
		} else {
			bufLat += c.Service
		}
	}
	if flushLat <= bufLat {
		t.Fatalf("flush writes (%v) should cost more than buffered writes (%v)", flushLat, bufLat)
	}
}

func TestOpKindString(t *testing.T) {
	if OpWrite.String() != "write" || OpRead.String() != "read" || OpTrim.String() != "trim" {
		t.Fatal("op names wrong")
	}
	if OpKind(7).String() != "OpKind(7)" {
		t.Fatal("unknown op formatting wrong")
	}
}

func TestPageSize(t *testing.T) {
	d := testDevice(t)
	if d.PageSize() != d.FTL().Geometry().PageSize {
		t.Fatal("PageSize mismatch")
	}
}

func perChipDevice(t testing.TB) *Device {
	t.Helper()
	g := flash.TestGeometry()
	g.BlocksPerPlane = 12
	g.Layers = 12
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr := flash.MustNewArray(g, pv.New(p), flash.DefaultECC())
	cfg := DefaultConfig()
	cfg.FTL.Overprovision = 0.25
	cfg.Queue = PerChip
	d, err := New(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPerChipReadsOverlap(t *testing.T) {
	// Two reads hitting different chips at the same arrival time should
	// overlap under the per-chip model but serialize under the default.
	prepare := func(d *Device) (lpnA, lpnB int64) {
		if err := d.FillSequential(nil); err != nil {
			t.Fatal(err)
		}
		// LPNs stripe lane-major with 3 pages per lane; the test geometry
		// has 2 planes per chip, so LPN 0 is on chip 0 and LPN 6 (lane 2)
		// on chip 1.
		return 0, 6
	}
	serial := testDevice(t)
	a, b := prepare(serial)
	c1, err := serial.Submit(Request{Kind: OpRead, LPN: a, Arrival: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := serial.Submit(Request{Kind: OpRead, LPN: b, Arrival: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	serialSpan := c2.Finish - 1e9

	par := perChipDevice(t)
	a, b = prepare(par)
	p1, err := par.Submit(Request{Kind: OpRead, LPN: a, Arrival: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := par.Submit(Request{Kind: OpRead, LPN: b, Arrival: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	parSpan := p2.Finish - 1e9
	if p1.Finish <= 1e9 {
		t.Fatalf("read finished before arrival: %v", p1.Finish)
	}
	if parSpan >= serialSpan {
		t.Fatalf("per-chip span (%v) should beat serialized span (%v)", parSpan, serialSpan)
	}
	if c1.Latency <= 0 {
		t.Fatal("serialized latency missing")
	}
}

func TestPerChipSameChipSerializes(t *testing.T) {
	d := perChipDevice(t)
	if err := d.FillSequential(nil); err != nil {
		t.Fatal(err)
	}
	// Two reads of the same LPN hit the same chip: the second queues.
	c1, err := d.Submit(Request{Kind: OpRead, LPN: 0, Arrival: 2e9})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := d.Submit(Request{Kind: OpRead, LPN: 0, Arrival: 2e9})
	if err != nil {
		t.Fatal(err)
	}
	if c2.Finish <= c1.Finish {
		t.Fatalf("same-chip reads should serialize: %v vs %v", c2.Finish, c1.Finish)
	}
}

func TestPerChipArrivalZeroIsNow(t *testing.T) {
	// Regression: an unstamped request (Arrival 0) under the per-chip model
	// used to be scheduled at absolute time zero, so its reported latency
	// spanned the whole simulated history instead of its own flash work.
	d := perChipDevice(t)
	if err := d.FillSequential(nil); err != nil {
		t.Fatal(err)
	}
	before := d.Now()
	if before <= 0 {
		t.Fatal("fill should have advanced the clock")
	}
	c, err := d.Submit(Request{Kind: OpRead, LPN: 0})
	if err != nil {
		t.Fatal(err)
	}
	if c.Start < before {
		t.Fatalf("unstamped read started at %v, before the clock %v", c.Start, before)
	}
	if c.Wait != 0 {
		t.Fatalf("unstamped read should not report queueing, wait = %v", c.Wait)
	}
	if c.Latency <= 0 || c.Latency >= before {
		t.Fatalf("latency %v should cover only this read's flash work (clock was %v)", c.Latency, before)
	}
}

func TestQueueModelString(t *testing.T) {
	if Serialized.String() != "serialized" || PerChip.String() != "per-chip" {
		t.Fatal("queue model names wrong")
	}
}
