package experiments

import (
	"reflect"
	"strings"
	"testing"

	"superfast/internal/assembly"
	"superfast/internal/core"
	"superfast/internal/telemetry"
)

func TestConfigValidate(t *testing.T) {
	if err := QuickConfig().Validate(); err != nil {
		t.Fatalf("quick config invalid: %v", err)
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero lanes per group", func(c *Config) { c.LanesPerGroup = 0 }},
		{"too many blocks", func(c *Config) { c.BlocksPerLane = c.Geometry.BlocksPerPlane + 1 }},
		{"zero window", func(c *Config) { c.Window = 0 }},
		{"no pe steps", func(c *Config) { c.PESteps = nil }},
		{"zero bins", func(c *Config) { c.HistBins = 0 }},
		{"geometry mismatch", func(c *Config) { c.PV.Layers++ }},
	}
	for _, tc := range cases {
		c := QuickConfig()
		tc.mutate(&c)
		if c.Validate() == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", QuickConfig()); err == nil {
		t.Fatal("unknown id should fail")
	}
}

func TestIDsRegistered(t *testing.T) {
	ids := IDs()
	want := []string{"table1", "table2", "table5", "fig5", "fig6", "fig12",
		"fig13", "fig14", "fig15", "overhead-compute", "overhead-space",
		"ftl-host", "read-hints", "sim-throughput", "table34", "retention", "raid-overhead", "ncq", "gc-policy", "temperature", "load-sweep", "dftl",
		"ablation-quant", "ablation-erscorr", "ablation-remeasure", "ablation-window", "ablation-global"}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
}

func TestAllExperimentsRunQuick(t *testing.T) {
	cfg := QuickConfig()
	cfg.BlocksPerLane = 32 // keep the full suite fast
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, cfg)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if res.ID != id {
				t.Errorf("result id = %q", res.ID)
			}
			out := res.String()
			if len(out) < 40 {
				t.Errorf("%s: suspiciously short output:\n%s", id, out)
			}
		})
	}
}

func TestTable5Ordering(t *testing.T) {
	cfg := QuickConfig()
	out, err := SweepStrategies(cfg, table5Strategies(cfg))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]StrategyOutcome{}
	for _, o := range out {
		byName[o.Name] = o
	}
	random := byName["RANDOM"]
	// The load-bearing shape of Table V: every scheme beats random on both
	// metrics, and the similarity schemes beat sequential.
	for _, name := range []string{"SEQUENTIAL", "OPTIMAL (4)", "QSTR-MED (4)", "STR-MED (4)"} {
		o, ok := byName[name]
		if !ok {
			t.Fatalf("missing %q in %v", name, out)
		}
		if o.MeanPgm >= random.MeanPgm {
			t.Errorf("%s extra PGM %v should beat random %v", name, o.MeanPgm, random.MeanPgm)
		}
		if o.MeanErs >= random.MeanErs {
			t.Errorf("%s extra ERS %v should beat random %v", name, o.MeanErs, random.MeanErs)
		}
	}
	seq := byName["SEQUENTIAL"]
	for _, name := range []string{"OPTIMAL (4)", "QSTR-MED (4)", "STR-MED (4)"} {
		if byName[name].MeanPgm >= seq.MeanPgm {
			t.Errorf("%s should beat sequential on extra PGM", name)
		}
	}
}

func TestSweepDeterministic(t *testing.T) {
	cfg := QuickConfig()
	cfg.BlocksPerLane = 16
	strategies := []assembly.Assembler{baseline(cfg), core.BatchAssembler{K: 4}}
	a, err := SweepStrategies(cfg, strategies)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SweepStrategies(cfg, strategies)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].MeanPgm != b[i].MeanPgm || a[i].MeanErs != b[i].MeanErs {
			t.Fatalf("sweep not deterministic for %s", a[i].Name)
		}
	}
}

func TestOverheadComputeReduction(t *testing.T) {
	cfg := QuickConfig()
	res, err := Run("overhead-compute", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "QSTR-MED reduces similarity checks by 9") {
		t.Fatalf("expected ≥90%% reduction, got: %s", res.Text)
	}
}

func TestOverheadSpacePaperNumbers(t *testing.T) {
	res, err := Run("overhead-space", QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	if !strings.Contains(out, "52") {
		t.Fatalf("paper's 52 bytes/block missing:\n%s", out)
	}
	if !strings.Contains(out, "6.50 MB") {
		t.Fatalf("paper's 6.5 MB for a 1 TB SSD missing:\n%s", out)
	}
}

func TestFig15SeriesShape(t *testing.T) {
	cfg := QuickConfig()
	cfg.BlocksPerLane = 16
	cfg.PESteps = []int{0, 1000, 3000}
	res, err := Run("fig15", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("want 2 series blocks, got %d", len(res.Series))
	}
	for _, sb := range res.Series {
		for _, s := range sb.Series {
			if len(s.X) != 3 {
				t.Fatalf("series %s has %d points, want 3", s.Name, len(s.X))
			}
		}
	}
}

func TestFig13HistogramsShiftLeft(t *testing.T) {
	cfg := QuickConfig()
	res, err := Run("fig13", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "RANDOM") || !strings.Contains(res.Text, "QSTR-MED") {
		t.Fatalf("histogram output incomplete:\n%s", res.Text)
	}
}

func TestAblationErsCorrKillsEraseGains(t *testing.T) {
	cfg := QuickConfig()
	decoupled := cfg
	decoupled.PV.ErsCorrCoeff = 0
	decoupled.PV.ErsSpikeSlope = 0
	decoupled.PV.ErsSpikeMax = 0
	strategies := []assembly.Assembler{baseline(cfg), core.BatchAssembler{K: 4}}
	with, err := SweepStrategies(cfg, strategies)
	if err != nil {
		t.Fatal(err)
	}
	without, err := SweepStrategies(decoupled, strategies)
	if err != nil {
		t.Fatal(err)
	}
	gainWith := with[0].MeanErs - with[1].MeanErs
	gainWithout := without[0].MeanErs - without[1].MeanErs
	if gainWith <= 0 {
		t.Fatalf("correlated model should show erase gains, got %v", gainWith)
	}
	if gainWithout > gainWith/2 {
		t.Fatalf("decoupled erase gains (%v) should collapse versus correlated (%v)", gainWithout, gainWith)
	}
}

func TestParallelSweepDeterministic(t *testing.T) {
	cfg := QuickConfig()
	cfg.BlocksPerLane = 24
	cfg.Parallel = 4
	strategies := []assembly.Assembler{baseline(cfg), core.BatchAssembler{K: 4}}
	a, err := SweepStrategies(cfg, strategies)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SweepStrategies(cfg, strategies)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].MeanPgm != b[i].MeanPgm || a[i].MeanErs != b[i].MeanErs {
			t.Fatalf("parallel sweep not deterministic for %s", a[i].Name)
		}
	}
	// Equivalent to serial: the parallel tasks replay the serial jitter
	// stream via nonce offsets, so the means match exactly.
	cfg.Parallel = 0
	serial, err := SweepStrategies(cfg, strategies)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].MeanPgm != serial[i].MeanPgm || a[i].MeanErs != serial[i].MeanErs {
			t.Fatalf("%s: parallel mean %v/%v differs from serial %v/%v",
				a[i].Name, a[i].MeanPgm, a[i].MeanErs, serial[i].MeanPgm, serial[i].MeanErs)
		}
	}
}

func TestSweepSerialParallelIdentical(t *testing.T) {
	// Regression: parallel tasks used to seed their jitter streams from the
	// P/E cycle *value* (len(PESteps)*gi + pe), so any change to the step
	// values changed the stream and parallel results diverged from serial.
	// Each task now fast-forwards the one serial stream by its dense task
	// index, making serial and parallel outcomes byte-identical.
	cfg := QuickConfig()
	cfg.BlocksPerLane = 16
	cfg.PESteps = []int{0, 200, 400}
	strategies := []assembly.Assembler{baseline(cfg), core.BatchAssembler{K: 4}}
	serialCfg := cfg
	serialCfg.Parallel = 0
	serial, err := SweepStrategies(serialCfg, strategies)
	if err != nil {
		t.Fatal(err)
	}
	parCfg := cfg
	parCfg.Parallel = 4
	par, err := SweepStrategies(parCfg, strategies)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("parallel sweep differs from serial:\nserial: %+v\nparallel: %+v", serial, par)
	}
}

func TestSweepParallelRace(t *testing.T) {
	// Data-race canary for the parallel sweep path; meaningful under -race.
	cfg := QuickConfig()
	cfg.BlocksPerLane = 16
	cfg.Parallel = 4
	if _, err := SweepStrategies(cfg, []assembly.Assembler{core.BatchAssembler{K: 4}}); err != nil {
		t.Fatal(err)
	}
}

func TestEveryExperimentHasDescription(t *testing.T) {
	for _, id := range IDs() {
		if Describe(id) == "" {
			t.Errorf("experiment %q has no description", id)
		}
	}
}

func TestSweepMetricsParallelMatchesSerial(t *testing.T) {
	// The sweep merges task outcomes in serial task order even when the
	// tasks themselves ran concurrently, so every metric — including the
	// order-sensitive P² digest state — must match the serial run exactly.
	run := func(parallel int) []telemetry.Value {
		cfg := QuickConfig()
		cfg.BlocksPerLane = 16
		cfg.Parallel = parallel
		m := telemetry.New()
		cfg.Metrics = m
		if _, err := SweepStrategies(cfg, []assembly.Assembler{baseline(cfg), core.BatchAssembler{K: 4}}); err != nil {
			t.Fatal(err)
		}
		return m.Snapshot()
	}
	serial := run(0)
	parallel := run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("sweep metrics differ:\nserial   %+v\nparallel %+v", serial, parallel)
	}
	byName := map[string]telemetry.Value{}
	for _, v := range serial {
		byName[v.Name] = v
	}
	if byName["sweep.tasks"].Value == 0 || byName["sweep.superblocks"].Value == 0 {
		t.Fatalf("sweep counters empty: %+v", serial)
	}
	if byName["sweep.extra_pgm_us.n"].Value == 0 {
		t.Fatal("extra-PGM digest saw no observations")
	}
}
