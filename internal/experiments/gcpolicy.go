package experiments

import (
	"fmt"

	"superfast/internal/flash"
	"superfast/internal/ftl"
	"superfast/internal/prng"
	"superfast/internal/pv"
	"superfast/internal/ssd"
	"superfast/internal/stats"
)

func init() {
	register("gc-policy", runGCPolicy)
}

// runGCPolicy compares GC victim-selection policies (greedy, cost-benefit,
// FIFO — the design space of the paper's cited GC literature) under skewed
// host traffic: write amplification, GC work and host latency.
func runGCPolicy(cfg Config) (*Result, error) {
	g, p := deviceGeometry(cfg)
	t := &stats.Table{
		Title:   "GC victim policies under 90/10 hot/cold churn",
		Headers: []string{"Policy", "WAF", "GC runs", "GC moves", "Mean write µs", "P99 µs"},
	}
	for _, pol := range []ftl.VictimPolicy{ftl.Greedy, ftl.CostBenefit, ftl.FIFO} {
		arr, err := flash.NewArray(g, pv.New(p), flash.DefaultECC())
		if err != nil {
			return nil, err
		}
		dcfg := ssd.DefaultConfig()
		dcfg.FTL.Overprovision = 0.25
		dcfg.FTL.Victim = pol
		dev, err := ssd.New(arr, dcfg)
		if err != nil {
			return nil, err
		}
		dev.SetAttribution(cfg.Attr)
		capacity := dev.FTL().Capacity()
		if err := dev.FillSequential(nil); err != nil {
			return nil, err
		}
		src := prng.New(cfg.Seed, 0x6c9)
		hot := capacity / 10
		lats := make([]float64, 0, 3*capacity)
		// One payload for the whole churn: the serial Device copies it at
		// submit entry, so sharing the buffer across writes is safe.
		data := []byte("w")
		for i := int64(0); i < 3*capacity; i++ {
			lpn := int64(src.Intn(int(hot)))
			if src.Float64() < 0.1 {
				lpn = hot + int64(src.Intn(int(capacity-hot)))
			}
			c, err := dev.Submit(ssd.Request{Kind: ssd.OpWrite, LPN: lpn, Data: data})
			if err != nil {
				return nil, err
			}
			lats = append(lats, c.Service)
		}
		sm := stats.Summarize(lats)
		fst := dev.FTL().Stats()
		t.AddRow(pol.String(), fmt.Sprintf("%.3f", fst.WAF()),
			fmt.Sprintf("%d", fst.GCRuns), fmt.Sprintf("%d", fst.GCWrites),
			stats.FmtUS(sm.Mean), stats.FmtUS(sm.P99))
	}
	text := "greedy and cost-benefit avoid copying live hot data; FIFO relocates indiscriminately\n"
	return &Result{ID: "gc-policy", Tables: []*stats.Table{t}, Text: text}, nil
}
