package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestExceeds(t *testing.T) {
	cases := []struct {
		name          string
		old, new, tol float64
		want          bool
	}{
		{"within tolerance", 100, 110, 0.25, false},
		{"past tolerance", 100, 130, 0.25, true},
		{"improvement never trips", 100, 10, 0.0, false},
		{"equal at zero tolerance", 100, 100, 0.0, false},
		{"negative tolerance skips", 100, 1000, -1, false},
		{"zero stays zero", 0, 0, 0.0, false},
		{"zero to nonzero trips", 0, 1, 0.25, true},
	}
	for _, c := range cases {
		if got := exceeds(c.old, c.new, c.tol); got != c.want {
			t.Errorf("%s: exceeds(%v, %v, %v) = %v, want %v", c.name, c.old, c.new, c.tol, got, c.want)
		}
	}
}

func writeReport(t *testing.T, dir, name string, rep Report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCompareAllocRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkChurn", Iterations: 1000, NsPerOp: 1500, BytesPerOp: 39, AllocsPerOp: 0},
	}})

	// Same speed, but the benchmark started allocating: -alloc-tol 0 must
	// fail the comparison even though ns/op is fine.
	newPath := writeReport(t, dir, "new.json", Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkChurn", Iterations: 1000, NsPerOp: 1500, BytesPerOp: 55, AllocsPerOp: 1},
	}})
	if code := runCompare(oldPath, newPath, Tolerances{Ns: 0.25, Allocs: 0, Bytes: 0.25}); code != 1 {
		t.Errorf("alloc regression: exit code %d, want 1", code)
	}
	// A negative tolerance disables that metric's check (bytes also grew
	// 39 → 55 here, so it must be skipped too for the compare to pass).
	if code := runCompare(oldPath, newPath, Tolerances{Ns: 0.25, Allocs: -1, Bytes: -1}); code != 0 {
		t.Errorf("alloc check disabled: exit code %d, want 0", code)
	}

	// Identical report passes under the strictest tolerances.
	if code := runCompare(oldPath, oldPath, Tolerances{Ns: 0, Allocs: 0, Bytes: 0}); code != 0 {
		t.Errorf("self-compare: exit code %d, want 0", code)
	}

	// Bytes-only regression past its tolerance also fails.
	bytesPath := writeReport(t, dir, "bytes.json", Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkChurn", Iterations: 1000, NsPerOp: 1500, BytesPerOp: 80, AllocsPerOp: 0},
	}})
	if code := runCompare(oldPath, bytesPath, Tolerances{Ns: 0.25, Allocs: 0, Bytes: 0.25}); code != 1 {
		t.Errorf("bytes regression: exit code %d, want 1", code)
	}

	// Benchmarks present in only one report never fail the comparison.
	grownPath := writeReport(t, dir, "grown.json", Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkChurn", Iterations: 1000, NsPerOp: 1500, BytesPerOp: 39, AllocsPerOp: 0},
		{Name: "BenchmarkNew", Iterations: 10, NsPerOp: 9e6, BytesPerOp: 1 << 20, AllocsPerOp: 12345},
	}})
	if code := runCompare(oldPath, grownPath, Tolerances{Ns: 0, Allocs: 0, Bytes: 0}); code != 0 {
		t.Errorf("suite growth: exit code %d, want 0", code)
	}
}

func TestParseBenchWithBenchmem(t *testing.T) {
	b, ok := parseBench("BenchmarkFTLChurn-8   \t  712345\t      1562 ns/op\t      39 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("parseBench failed")
	}
	if b.NsPerOp != 1562 || b.BytesPerOp != 39 || b.AllocsPerOp != 0 {
		t.Errorf("parsed %+v", b)
	}
}
