package flash

import (
	"errors"
	"testing"

	"superfast/internal/pv"
)

// programOne erases block 0 of the chip and programs LWL 0, returning the
// LowerPage address for reading back.
func programOne(t *testing.T, a *Array, chip int) PageAddr {
	t.Helper()
	addr := BlockAddr{Chip: chip}
	if _, err := a.Erase(addr); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Program(addr, 0, [][]byte{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	return PageAddr{BlockAddr: addr, LWL: 0, Type: pv.LSB}
}

func TestFailNextReadsCountdown(t *testing.T) {
	a := testArray(t)
	p := programOne(t, a, 0)
	if err := a.FailNextReads(0, 2); err != nil {
		t.Fatal(err)
	}
	if got := a.PendingReadFailures(0); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}
	for i := 0; i < 2; i++ {
		if _, err := a.Read(p); !errors.Is(err, ErrUncorrectable) {
			t.Fatalf("read %d: got %v, want ErrUncorrectable", i, err)
		}
	}
	if _, err := a.Read(p); err != nil {
		t.Fatalf("read after burst drained: %v", err)
	}
	if got := a.PendingReadFailures(0); got != 0 {
		t.Fatalf("pending after drain = %d", got)
	}
}

func TestFailNextReadsIsPerChip(t *testing.T) {
	a := testArray(t)
	p0 := programOne(t, a, 0)
	p1 := programOne(t, a, 1)
	if err := a.FailNextReads(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Read(p0); err != nil {
		t.Fatalf("chip 0 should be unaffected: %v", err)
	}
	if _, err := a.Read(p1); !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("chip 1: got %v, want ErrUncorrectable", err)
	}
}

func TestFailNextReadsDisarm(t *testing.T) {
	a := testArray(t)
	p := programOne(t, a, 0)
	if err := a.FailNextReads(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := a.FailNextReads(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Read(p); err != nil {
		t.Fatalf("disarmed chip should read clean: %v", err)
	}
	if err := a.FailNextReads(99, 1); err == nil {
		t.Fatal("out-of-range chip should be rejected")
	}
}

func TestChipReadFailureDropAndRevive(t *testing.T) {
	a := testArray(t)
	p0 := programOne(t, a, 0)
	p1 := programOne(t, a, 1)
	if err := a.SetChipReadFailure(0, true); err != nil {
		t.Fatal(err)
	}
	if !a.ChipReadFailure(0) || a.ChipReadFailure(1) {
		t.Fatal("dropout flag wrong")
	}
	if _, err := a.Read(p0); !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("down chip read: got %v, want ErrUncorrectable", err)
	}
	if _, err := a.Read(p1); err != nil {
		t.Fatalf("healthy chip read: %v", err)
	}
	// Writes and erases on the down chip still work: only sensing fails.
	addr := BlockAddr{Chip: 0, Block: 1}
	if _, err := a.Erase(addr); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Program(addr, 0, nil); err != nil {
		t.Fatalf("program on read-dropped chip: %v", err)
	}
	if err := a.SetChipReadFailure(0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Read(p0); err != nil {
		t.Fatalf("revived chip read: %v", err)
	}
}

func TestChipReadFailureReviveWithoutDropIsNoop(t *testing.T) {
	a := testArray(t)
	if err := a.SetChipReadFailure(0, false); err != nil {
		t.Fatal(err)
	}
	if a.ChipReadFailure(0) {
		t.Fatal("chip should not be down")
	}
	if err := a.SetChipReadFailure(-1, true); err == nil {
		t.Fatal("out-of-range chip should be rejected")
	}
}
