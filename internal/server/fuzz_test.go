package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzDecodeFrame feeds arbitrary bytes to the request-frame decoder: it must
// never panic, never allocate beyond the validated payload bound, reject
// truncated and oversized lengths with the right error class, and round-trip
// whatever it accepts.
func FuzzDecodeFrame(f *testing.F) {
	valid, _ := AppendFrame(nil, Frame{Op: OpWrite, ID: 7, LPN: 42, Payload: []byte("seed page")})
	f.Add(valid)
	f.Add(valid[:3])               // truncated length prefix
	f.Add(valid[:len(valid)-2])    // truncated body
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 1}) // hostile oversized length
	f.Add([]byte{0, 0, 0, 36, 1, 99, 0, 0})     // bad opcode
	short, _ := AppendFrame(nil, Frame{Op: OpPing, ID: 1})
	f.Add(short)
	seq, _ := AppendFrame(nil, Frame{Op: OpRead, ID: 2, LPN: 3, Flags: FlagSequenced, Seq: 9, Arrival: 1.5})
	f.Add(seq)

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrame(b)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v consumed %d bytes", err, n)
			}
			// A hostile length prefix must be classified before any payload
			// allocation could happen.
			if len(b) >= 4 {
				if l := int(binary.BigEndian.Uint32(b)); l > reqHeaderLen+MaxPayload && !errors.Is(err, ErrFrameSize) {
					t.Fatalf("oversized length %d not ErrFrameSize: %v", l, err)
				}
			}
			return
		}
		if n < 4+reqHeaderLen || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if fr.Op < OpRead || fr.Op > OpPing {
			t.Fatalf("accepted invalid opcode %d", fr.Op)
		}
		if len(fr.Payload) > MaxPayload {
			t.Fatalf("accepted payload of %d bytes", len(fr.Payload))
		}
		if len(fr.Payload) > 0 && fr.Op != OpWrite {
			t.Fatalf("accepted %v with payload", fr.Op)
		}
		// Accepted frames re-encode to the exact bytes consumed.
		re, err := AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("round trip mismatch:\n in %x\nout %x", b[:n], re)
		}
	})
}

// FuzzDecodeResponse gives the response decoder the same treatment.
func FuzzDecodeResponse(f *testing.F) {
	ok, _ := AppendResponse(nil, Response{Status: StatusOK, ID: 1, Latency: 12.5, Payload: []byte("data")})
	f.Add(ok)
	rej, _ := AppendResponse(nil, Response{Status: StatusRejected, ID: 2})
	f.Add(rej)
	f.Add(ok[:2])
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 0})

	f.Fuzz(func(t *testing.T, b []byte) {
		r, n, err := DecodeResponse(b)
		if err != nil {
			return
		}
		if n < 4+respHeaderLen || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if r.Status > StatusInternal {
			t.Fatalf("accepted invalid status %d", r.Status)
		}
		re, err := AppendResponse(nil, r)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("round trip mismatch:\n in %x\nout %x", b[:n], re)
		}
	})
}
