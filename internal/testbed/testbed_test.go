package testbed

import (
	"testing"
)

func TestPaperInventory(t *testing.T) {
	tb := Paper()
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table IV: 4 DDP packages (2 dies) + 4 QDP packages (4 dies) = 24
	// chips, matching §VI-A's "24 3D NAND flash memory chips".
	if got := tb.Chips(); got != 24 {
		t.Fatalf("Chips = %d, want 24", got)
	}
	if len(tb.Packages) != 8 {
		t.Fatalf("%d packages, want 8", len(tb.Packages))
	}
	ddp, qdp := 0, 0
	for _, p := range tb.Packages {
		switch p.Kind {
		case DDP:
			ddp++
			if p.Dies() != 2 {
				t.Errorf("%s: DDP should have 2 dies", p.Name)
			}
		case QDP:
			qdp++
			if p.Dies() != 4 {
				t.Errorf("%s: QDP should have 4 dies", p.Name)
			}
		}
	}
	if ddp != 4 || qdp != 4 {
		t.Fatalf("ddp=%d qdp=%d, want 4/4", ddp, qdp)
	}
}

func TestDiesFlatMapping(t *testing.T) {
	tb := Paper()
	dies := tb.Dies()
	if len(dies) != 24 {
		t.Fatalf("%d dies", len(dies))
	}
	for i, d := range dies {
		if d.Chip != i {
			t.Fatalf("die %d has chip id %d", i, d.Chip)
		}
	}
	// First package's dies come first.
	if dies[0].Package.Name != "DDP #1-1" || dies[0].CE != 0 || dies[1].CE != 1 {
		t.Fatalf("unexpected die order: %+v", dies[:2])
	}
}

func TestGeometryCoversBlockRanges(t *testing.T) {
	tb := Paper()
	g := tb.Geometry(1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Chips != 24 {
		t.Fatalf("Chips = %d", g.Chips)
	}
	if g.BlocksPerPlane != 3276 { // highest BlockHi is 3275
		t.Fatalf("BlocksPerPlane = %d, want 3276", g.BlocksPerPlane)
	}
	if g.LWLsPerBlock() != 384 {
		t.Fatalf("LWLs = %d", g.LWLsPerBlock())
	}
}

func TestGroupsByBlockRange(t *testing.T) {
	tb := Paper()
	groups := tb.Groups()
	// Table IV has three distinct ranges: 4..1603 (12 dies),
	// 1604..3275 (DDP group 2, 4 dies), 1604..3203 (QDP group 2, 8 dies).
	if len(groups) != 3 {
		t.Fatalf("%d groups, want 3", len(groups))
	}
	sizes := map[int]int{}
	for _, g := range groups {
		sizes[len(g.Dies)]++
		if g.BlockHi < g.BlockLo {
			t.Fatalf("bad range %d..%d", g.BlockLo, g.BlockHi)
		}
		blocks := g.Blocks()
		if len(blocks) != g.BlockHi-g.BlockLo+1 {
			t.Fatalf("Blocks() length %d", len(blocks))
		}
		if blocks[0] != g.BlockLo {
			t.Fatalf("Blocks() starts at %d", blocks[0])
		}
	}
	if sizes[12] != 1 || sizes[4] != 1 || sizes[8] != 1 {
		t.Fatalf("group sizes wrong: %v", sizes)
	}
}

func TestLaneGroups(t *testing.T) {
	tb := Paper()
	geo := tb.Geometry(2)
	groups := tb.Groups()
	var big MeasurementGroup
	for _, g := range groups {
		if len(g.Dies) == 12 {
			big = g
		}
	}
	lg := big.LaneGroups(geo, 4)
	if len(lg) != 3 {
		t.Fatalf("%d lane groups from 12 dies, want 3", len(lg))
	}
	for _, grp := range lg {
		if len(grp.Lanes) != 4 {
			t.Fatalf("lane group size %d", len(grp.Lanes))
		}
		for _, lane := range grp.Lanes {
			if lane%geo.PlanesPerChip != 0 {
				t.Fatalf("lane %d is not a plane-0 lane", lane)
			}
		}
	}
	if got := big.LaneGroups(geo, 0); got != nil {
		t.Fatal("size 0 should yield nil")
	}
}

func TestValidateRejectsBadInventory(t *testing.T) {
	cases := []Testbed{
		{},
		{Packages: []Package{{Name: "", Kind: DDP, BlockHi: 1}}},
		{Packages: []Package{{Name: "a", Kind: DDP, BlockLo: 5, BlockHi: 1}}},
		{Packages: []Package{{Name: "a", Kind: DDP, BlockHi: 1}, {Name: "a", Kind: DDP, BlockHi: 1}}},
		{Packages: []Package{{Name: "a", Kind: PackageKind(9), BlockHi: 1}}},
	}
	for i, tb := range cases {
		if tb.Validate() == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestKindString(t *testing.T) {
	if DDP.String() != "DDP" || QDP.String() != "QDP" {
		t.Fatal("kind names wrong")
	}
}
