package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"superfast/internal/flash"
	"superfast/internal/pv"
	"superfast/internal/ssd"
)

// raidDevice builds a device with RAID parity and one plane per chip, so a
// whole-chip read failure is one lost lane and reconstructable from parity.
func raidDevice(t testing.TB) *ssd.ConcurrentDevice {
	t.Helper()
	g := flash.TestGeometry()
	g.PlanesPerChip = 1
	g.BlocksPerPlane = 24
	g.Layers = 12
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr := flash.MustNewArray(g, pv.New(p), flash.DefaultECC())
	cfg := ssd.DefaultConfig()
	cfg.FTL.Overprovision = 0.25
	cfg.FTL.RAID = true
	d, err := ssd.NewConcurrent(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func tenantFrame(op Op, id uint64, tenant uint16, lpn int64, payload []byte) Frame {
	return Frame{Op: op, ID: id, Flags: FlagTenant, Tenant: tenant, LPN: lpn, Payload: payload}
}

func TestPingAdvertisesCaps(t *testing.T) {
	dev := testDevice(t)
	_, addr := startServer(t, dev, Config{})
	c := dialRaw(t, addr)
	r := c.call(Frame{Op: OpPing, ID: 1})
	if got := string(r.Payload); got != TraceCap {
		t.Fatalf("plain server caps = %q, want %q", got, TraceCap)
	}

	dev2 := testDevice(t)
	_, addr2 := startServer(t, dev2, Config{
		Tenants:      []Tenant{{Name: "a", Pages: 64}},
		EnableFaults: true,
	})
	c2 := dialRaw(t, addr2)
	r2 := c2.call(Frame{Op: OpPing, ID: 1})
	caps := strings.Fields(string(r2.Payload))
	want := map[string]bool{TraceCap: true, TenantCap: true, FaultCap: true}
	if len(caps) != len(want) {
		t.Fatalf("caps = %q, want %v", caps, want)
	}
	for _, tok := range caps {
		if !want[tok] {
			t.Fatalf("unexpected capability %q in %q", tok, caps)
		}
	}
}

func TestTenantNamespaceIsolation(t *testing.T) {
	dev := testDevice(t)
	srv, addr := startServer(t, dev, Config{
		Tenants: []Tenant{{Name: "quiet", Pages: 64}, {Name: "noisy", Pages: 64}},
	})
	c := dialRaw(t, addr)

	// Both tenants write their own LPN 0; the namespaces must not alias.
	pg1 := bytes.Repeat([]byte("Q"), 32)
	pg2 := bytes.Repeat([]byte("N"), 32)
	if r := c.call(tenantFrame(OpWrite, 1, 1, 0, pg1)); r.Status != StatusOK {
		t.Fatalf("tenant 1 write: %+v", r)
	}
	if r := c.call(tenantFrame(OpWrite, 2, 2, 0, pg2)); r.Status != StatusOK {
		t.Fatalf("tenant 2 write: %+v", r)
	}
	r1 := c.call(tenantFrame(OpRead, 3, 1, 0, nil))
	r2 := c.call(tenantFrame(OpRead, 4, 2, 0, nil))
	if r1.Status != StatusOK || !bytes.Equal(r1.Payload[:len(pg1)], pg1) {
		t.Fatalf("tenant 1 read back: %+v", r1)
	}
	if r2.Status != StatusOK || !bytes.Equal(r2.Payload[:len(pg2)], pg2) {
		t.Fatalf("tenant 2 read back: %+v", r2)
	}

	// A partitioned server refuses flat-space frames and bad namespaces.
	if r := c.call(Frame{Op: OpWrite, ID: 5, LPN: 0, Payload: pg1}); r.Status != StatusBadRequest {
		t.Fatalf("untenanted frame: %v, want StatusBadRequest", r.Status)
	}
	if r := c.call(tenantFrame(OpRead, 6, 3, 0, nil)); r.Status != StatusBadRequest {
		t.Fatalf("unknown tenant: %v, want StatusBadRequest", r.Status)
	}
	if r := c.call(tenantFrame(OpRead, 7, 1, 64, nil)); r.Status != StatusBadRequest {
		t.Fatalf("lpn outside namespace: %v, want StatusBadRequest", r.Status)
	}

	st := srv.Stats()
	if len(st.Tenants) != 2 {
		t.Fatalf("tenant stats = %+v", st.Tenants)
	}
	if st.Tenants[0].Name != "quiet" || st.Tenants[0].Accepted != 2 || st.Tenants[0].Rejected != 1 {
		t.Fatalf("tenant 1 stats = %+v", st.Tenants[0])
	}
	if st.Tenants[1].Name != "noisy" || st.Tenants[1].Accepted != 2 {
		t.Fatalf("tenant 2 stats = %+v", st.Tenants[1])
	}
}

func TestServeFailsOnTenantMisconfig(t *testing.T) {
	cases := []struct {
		name    string
		tenants []Tenant
	}{
		{"non-positive pages", []Tenant{{Pages: 0}}},
		{"over capacity", []Tenant{{Pages: 1 << 40}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dev := testDevice(t)
			srv := New(dev, Config{Tenants: tc.tenants})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			if err := srv.Serve(ln); err == nil {
				t.Fatal("Serve accepted a misconfigured tenant table")
			}
		})
	}
}

func TestFaultRejectedWhenDisabled(t *testing.T) {
	dev := testDevice(t)
	_, addr := startServer(t, dev, Config{})
	c := dialRaw(t, addr)
	r := c.call(Frame{Op: OpFault, ID: 1, Payload: []byte(`{"kind":"chip-dropout","chip":0}`)})
	if r.Status != StatusBadRequest {
		t.Fatalf("fault on plain server: %v, want StatusBadRequest", r.Status)
	}
}

func TestFaultBadPayloads(t *testing.T) {
	dev := testDevice(t)
	_, addr := startServer(t, dev, Config{EnableFaults: true})
	c := dialRaw(t, addr)
	for i, payload := range []string{
		`{"kind":"no-such-fault"}`,
		`{"kind":"chip-dropout","bogus":1}`, // unknown field
		`not json`,
		`{"kind":"chip-dropout","chip":99}`, // chip out of range
		`{"kind":"die"}`,                    // OnFaultDie not armed
	} {
		r := c.call(Frame{Op: OpFault, ID: uint64(i + 1), Payload: []byte(payload)})
		if r.Status != StatusBadRequest {
			t.Fatalf("payload %q: %v, want StatusBadRequest", payload, r.Status)
		}
	}
}

// faultCall sends one fault command and decodes the report.
func faultCall(t *testing.T, c *rawConn, id uint64, req FaultRequest) FaultReport {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := c.call(Frame{Op: OpFault, ID: id, Payload: payload})
	if r.Status != StatusOK {
		t.Fatalf("fault %+v: %v %s", req, r.Status, r.Payload)
	}
	var rep FaultReport
	if err := json.Unmarshal(r.Payload, &rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

// fillPages writes n distinct pages so reads are served from flash, not the
// write buffer, and superblocks seal. Returns the payload generator.
func fillPages(t *testing.T, c *rawConn, n int64, pageSize int) func(lpn int64) []byte {
	t.Helper()
	gen := func(lpn int64) []byte {
		p := make([]byte, pageSize)
		copy(p, fmt.Sprintf("page-%d", lpn))
		return p
	}
	for lpn := int64(0); lpn < n; lpn++ {
		if r := c.call(Frame{Op: OpWrite, ID: uint64(1000 + lpn), LPN: lpn, Payload: gen(lpn)}); r.Status != StatusOK {
			t.Fatalf("fill lpn %d: %+v", lpn, r)
		}
	}
	return gen
}

func TestFaultChipFailuresRecoverThroughRAID(t *testing.T) {
	dev := raidDevice(t)
	_, addr := startServer(t, dev, Config{EnableFaults: true})
	c := dialRaw(t, addr)
	pageSize := dev.FTL().Geometry().PageSize
	n := dev.FTL().Capacity() / 2
	gen := fillPages(t, c, n, pageSize)

	// A transient read-error burst: the next reads fail ECC, RAID
	// reconstructs, the host still sees its data.
	faultCall(t, c, 1, FaultRequest{Kind: "chip-read-errors", Chip: 0, Count: 2})
	repairsBefore := mustStat(t, c).FTL.RAIDRepairs
	for lpn := int64(0); lpn < n; lpn++ {
		r := c.call(Frame{Op: OpRead, ID: uint64(5000 + lpn), LPN: lpn})
		if r.Status != StatusOK || !bytes.Equal(r.Payload, gen(lpn)) {
			t.Fatalf("read lpn %d during burst: %v", lpn, r.Status)
		}
	}
	if got := mustStat(t, c).FTL.RAIDRepairs; got <= repairsBefore {
		t.Fatalf("RAIDRepairs = %d, want > %d (burst must have forced reconstruction)", got, repairsBefore)
	}

	// A chip dropout: every read on the chip fails until revived; with one
	// plane per chip that is one lost lane, still under the parity budget.
	faultCall(t, c, 2, FaultRequest{Kind: "chip-dropout", Chip: 1})
	for lpn := int64(0); lpn < n; lpn++ {
		r := c.call(Frame{Op: OpRead, ID: uint64(9000 + lpn), LPN: lpn})
		if r.Status != StatusOK || !bytes.Equal(r.Payload, gen(lpn)) {
			t.Fatalf("read lpn %d during dropout: %v", lpn, r.Status)
		}
	}
	faultCall(t, c, 3, FaultRequest{Kind: "chip-revive", Chip: 1})
	if dev.FTL().Array().ChipReadFailure(1) {
		t.Fatal("chip still down after revive")
	}
}

func TestFaultBadBlockStormKeepsDataReadable(t *testing.T) {
	dev := raidDevice(t)
	_, addr := startServer(t, dev, Config{EnableFaults: true})
	c := dialRaw(t, addr)
	pageSize := dev.FTL().Geometry().PageSize
	n := dev.FTL().Capacity() / 2
	gen := fillPages(t, c, n, pageSize)

	rep := faultCall(t, c, 1, FaultRequest{Kind: "bad-blocks", Count: 4, Seed: 42})
	if rep.Marked != 4 {
		t.Fatalf("marked %d blocks, want 4", rep.Marked)
	}
	for lpn := int64(0); lpn < n; lpn++ {
		r := c.call(Frame{Op: OpRead, ID: uint64(5000 + lpn), LPN: lpn})
		if r.Status != StatusOK || !bytes.Equal(r.Payload, gen(lpn)) {
			t.Fatalf("read lpn %d after storm: %v", lpn, r.Status)
		}
	}
}

func TestFaultPowerCutRestoresData(t *testing.T) {
	dev := testDevice(t)
	_, addr := startServer(t, dev, Config{EnableFaults: true})
	c := dialRaw(t, addr)
	pageSize := dev.FTL().Geometry().PageSize
	n := dev.FTL().Capacity() / 4
	gen := fillPages(t, c, n, pageSize)

	rep := faultCall(t, c, 1, FaultRequest{Kind: "power-cut", RecoverUS: 5000})
	if rep.CutAt <= 0 || rep.RecoveredAt != rep.CutAt+5000 || rep.CheckpointBytes <= 0 {
		t.Fatalf("power-cut report = %+v", rep)
	}
	for lpn := int64(0); lpn < n; lpn++ {
		r := c.call(Frame{Op: OpRead, ID: uint64(5000 + lpn), LPN: lpn})
		if r.Status != StatusOK || !bytes.Equal(r.Payload, gen(lpn)) {
			t.Fatalf("read lpn %d after power cut: %v", lpn, r.Status)
		}
	}
}

func TestFaultDieInvokesCallback(t *testing.T) {
	dev := testDevice(t)
	died := make(chan struct{})
	_, addr := startServer(t, dev, Config{
		EnableFaults: true,
		OnFaultDie:   func() { close(died) },
	})
	c := dialRaw(t, addr)
	faultCall(t, c, 1, FaultRequest{Kind: "die"})
	select {
	case <-died:
	case <-time.After(5 * time.Second):
		t.Fatal("die fault never invoked OnFaultDie")
	}
}

func mustStat(t *testing.T, c *rawConn) StatSnapshot {
	t.Helper()
	r := c.call(Frame{Op: OpStat, ID: 999999})
	if r.Status != StatusOK {
		t.Fatalf("stat: %v", r.Status)
	}
	var snap StatSnapshot
	if err := json.Unmarshal(r.Payload, &snap); err != nil {
		t.Fatal(err)
	}
	return snap
}
