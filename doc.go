// Package superfast reproduces "Are Superpages Super-fast? Distilling Flash
// Blocks to Unify Flash Pages of a Superpage in an SSD" (HPCA 2024): a
// process-variation NAND flash model, the paper's eight superblock
// organization strategies, the QSTR-MED runtime scheme, and a superblock
// FTL + SSD simulator that exercises it end-to-end.
//
// The public surface lives in the commands (cmd/sbsim, cmd/characterize,
// cmd/ftlsim, cmd/calibrate) and the runnable examples (examples/...); the
// library packages are under internal/. See README.md for a map and
// EXPERIMENTS.md for paper-versus-measured results.
package superfast
