package experiments

import (
	"fmt"

	"superfast/internal/stats"
	"superfast/internal/testbed"
)

func init() {
	register("table34", runTable34)
}

// runTable34 renders the simulated equivalents of the paper's Tables III
// (hardware platform) and IV (NAND testing settings): what the paper's
// parts list maps to in this reproduction, and the exact package/channel/
// chip-enable/block-range inventory the measurement groups are built from.
func runTable34(cfg Config) (*Result, error) {
	t3 := &stats.Table{
		Title:   "Table III — hardware and software platforms (paper → simulated equivalent)",
		Headers: []string{"Item", "Paper part", "This reproduction"},
	}
	t3.AddRow("SSD Controller", "SMI SM2259XT SATA 3.0 × 4", "internal/ssd device model (550 MB/s bus)")
	t3.AddRow("NAND Flash", "SKH H25BFT8B3M8R (DDP) × 4, H25BFT8D4M8R (QDP) × 4", "internal/pv + internal/flash (calibrated model)")
	t3.AddRow("Chamber", "KSON TS-F5T-150", "internal/chamber (P/E cycling + HTDR bake)")
	t3.AddRow("Visual Analysis", "TIBICO Spotfire 6.5.0", "internal/stats text/CSV renderers")

	tb := testbed.Paper()
	t4 := &stats.Table{
		Title:   "Table IV — testing settings of NAND flash memory",
		Headers: []string{"PKG", "CH", "CE", "# of CHIP", "Block Range", "Sim chips"},
	}
	dies := tb.Dies()
	for _, p := range tb.Packages {
		ces := ""
		chips := ""
		for _, d := range dies {
			if d.Package.Name != p.Name {
				continue
			}
			if ces != "" {
				ces += "/"
				chips += ","
			}
			ces += fmt.Sprintf("%d", d.CE)
			chips += fmt.Sprintf("%d", d.Chip)
		}
		t4.AddRow(p.Name, fmt.Sprintf("%d", p.Channel), ces,
			fmt.Sprintf("%d", p.Dies()),
			fmt.Sprintf("%d..%d", p.BlockLo, p.BlockHi), chips)
	}
	groups := tb.Groups()
	text := fmt.Sprintf("%d chips in %d measurement groups (by shared block range); geometry: %d blocks/plane, 96 layers × 4 strings\n",
		tb.Chips(), len(groups), tb.Geometry(1).BlocksPerPlane)
	return &Result{ID: "table34", Tables: []*stats.Table{t3, t4}, Text: text}, nil
}
