package ftl

import (
	"testing"

	"superfast/internal/pv"
)

func TestHotnessCountersAndDecay(t *testing.T) {
	h := newHotness(10, 8, 4)
	if h.hot(3) {
		t.Fatal("fresh page should be cold")
	}
	for i := 0; i < 4; i++ {
		h.note(3)
	}
	if !h.hot(3) {
		t.Fatal("page written 4 times should be hot")
	}
	// Counters saturate at 15.
	for i := 0; i < 30; i++ {
		h.note(3)
	}
	if h.get(3) > 15 {
		t.Fatalf("counter overflowed: %d", h.get(3))
	}
	// Nibble isolation: neighbors don't leak.
	if h.get(2) != 0 {
		t.Fatalf("neighbor counter leaked: %d", h.get(2))
	}
	// Decay halves counters.
	before := h.get(3)
	h.decay()
	if got := h.get(3); got != before/2 {
		t.Fatalf("decay %d -> %d, want %d", before, got, before/2)
	}
}

func TestHotnessDecayTriggersByWrites(t *testing.T) {
	h := newHotness(4, 4, 4)
	for i := 0; i < 4; i++ {
		h.note(1)
	}
	// The 4th write triggered a decay: count = (4 >> 1) = 2.
	if got := h.get(1); got != 2 {
		t.Fatalf("count after decay = %d, want 2", got)
	}
}

func TestHotnessFootprint(t *testing.T) {
	h := newHotness(1000, 0, 0)
	if h.footprintBytes() != 500 {
		t.Fatalf("footprint %d, want 500 (4 bits per page)", h.footprintBytes())
	}
}

func TestAutoHintSteersHotPagesToLSB(t *testing.T) {
	cfg := testConfig()
	cfg.AutoHint = true
	f := newFTL(t, cfg)
	capacity := f.Capacity()
	// Interleave 1:3 hot:cold, like the read-hints experiment but without
	// explicit hints — the detector must discover the hot set. Total volume
	// stays under capacity so GC relocation doesn't disturb placements.
	hotN := capacity / 32
	cold := hotN
	for round := 0; round < 6; round++ {
		for lpn := int64(0); lpn < hotN; lpn++ {
			if _, err := f.Write(lpn, payload(lpn, round)); err != nil {
				t.Fatal(err)
			}
			for j := 0; j < 3; j++ {
				if _, err := f.Write(cold, payload(cold, 0)); err != nil {
					t.Fatal(err)
				}
				cold++
			}
		}
	}
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	lsb := 0
	for lpn := int64(0); lpn < hotN; lpn++ {
		if f.PageTypeOf(lpn) == pv.LSB {
			lsb++
		}
	}
	frac := float64(lsb) / float64(hotN)
	if frac < 0.6 {
		t.Fatalf("only %.0f%% of detected-hot pages on LSB, want > 60%%", frac*100)
	}
}
