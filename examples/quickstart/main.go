// Quickstart: build a small process-variation NAND array, characterize its
// blocks, and compare random superblock organization against the paper's
// QSTR-MED scheme on extra program/erase latency.
package main

import (
	"fmt"
	"log"

	"superfast/internal/assembly"
	"superfast/internal/chamber"
	"superfast/internal/core"
	"superfast/internal/flash"
	"superfast/internal/pv"
	"superfast/internal/stats"
)

func main() {
	// Four chips, one plane each, 96-layer TLC blocks — one superblock
	// spans one block from every chip.
	geo := flash.Geometry{
		Chips:          4,
		PlanesPerChip:  1,
		BlocksPerPlane: 120,
		Layers:         96,
		Strings:        4,
		PageSize:       16 * 1024,
		SpareSize:      2 * 1024,
	}
	params := pv.DefaultParams() // calibrated against the paper's Fig. 5/6
	params.Layers = geo.Layers
	params.Strings = geo.Strings
	arr, err := flash.NewArray(geo, pv.New(params), flash.DefaultECC())
	if err != nil {
		log.Fatal(err)
	}

	// Characterize every block the way the paper's testbed does.
	tb := chamber.New(arr)
	group := chamber.GroupLanes(geo, 4)[0]
	lanes, err := tb.MeasureGroup(group, chamber.BlockRange(0, geo.BlocksPerPlane), 0, true)
	if err != nil {
		log.Fatal(err)
	}

	// Organize superblocks two ways and score them.
	for _, org := range []assembly.Assembler{
		assembly.Random{Seed: 42},
		core.BatchAssembler{K: 4}, // QSTR-MED
	} {
		res, err := org.Assemble(lanes)
		if err != nil {
			log.Fatal(err)
		}
		m, err := assembly.Evaluate(lanes, res.Superblocks)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s extra program latency %12s µs   extra erase latency %8s µs   similarity checks %d\n",
			org.Name(), stats.FmtUS(m.MeanPgm), stats.FmtUS(m.MeanErs), res.PairChecks)
	}

	fmt.Println()
	fmt.Println("QSTR-MED metadata footprint (Equation 2):",
		core.MemoryFootprintBytes(geo), "bytes for", geo.TotalBlocks(), "blocks")
}
