package workload

import (
	"fmt"
	"strings"
	"testing"

	"superfast/internal/flash"
	"superfast/internal/ftl"
	"superfast/internal/pv"
	"superfast/internal/ssd"
)

func testDevice(t testing.TB) *ssd.Device {
	t.Helper()
	g := flash.TestGeometry()
	g.BlocksPerPlane = 12
	g.Layers = 12
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr := flash.MustNewArray(g, pv.New(p), flash.DefaultECC())
	cfg := ssd.DefaultConfig()
	cfg.FTL.Overprovision = 0.25
	d, err := ssd.New(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSequentialGenerator(t *testing.T) {
	g := &Sequential{N: 5, PageLen: 8}
	var lpns []int64
	for {
		req, ok := g.Next()
		if !ok {
			break
		}
		if req.Kind != ssd.OpWrite {
			t.Fatal("sequential should write")
		}
		lpns = append(lpns, req.LPN)
	}
	if len(lpns) != 5 {
		t.Fatalf("got %d ops", len(lpns))
	}
	for i, lpn := range lpns {
		if lpn != int64(i) {
			t.Fatalf("op %d: lpn %d", i, lpn)
		}
	}
}

func TestUniformGeneratorBounds(t *testing.T) {
	g := &Uniform{Space: 100, Count: 500, Seed: 1}
	n := 0
	for {
		req, ok := g.Next()
		if !ok {
			break
		}
		if req.LPN < 0 || req.LPN >= 100 {
			t.Fatalf("lpn %d out of space", req.LPN)
		}
		n++
	}
	if n != 500 {
		t.Fatalf("got %d ops, want 500", n)
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := &Uniform{Space: 100, Count: 50, Seed: 7}
	b := &Uniform{Space: 100, Count: 50, Seed: 7}
	for {
		ra, oka := a.Next()
		rb, okb := b.Next()
		if oka != okb {
			t.Fatal("lengths differ")
		}
		if !oka {
			break
		}
		if ra.LPN != rb.LPN {
			t.Fatal("same seed should reproduce")
		}
	}
}

func TestHotColdSkewAndHints(t *testing.T) {
	g := &HotCold{Space: 1000, Count: 4000, HotFrac: 0.8, HotSpace: 0.2, Seed: 3}
	hot, cold := 0, 0
	for {
		req, ok := g.Next()
		if !ok {
			break
		}
		if req.LPN < 200 {
			hot++
			if req.Hint != ftl.HintSmall {
				t.Fatal("hot writes should be small-hinted")
			}
		} else {
			cold++
			if req.Hint != ftl.HintBatch {
				t.Fatal("cold writes should be batch-hinted")
			}
		}
	}
	frac := float64(hot) / float64(hot+cold)
	if frac < 0.75 || frac > 0.85 {
		t.Fatalf("hot fraction = %v, want ≈0.8", frac)
	}
}

func TestMixedReadsAfterWrites(t *testing.T) {
	g := &Mixed{Space: 50, Count: 400, ReadFrac: 0.5, Seed: 9}
	written := map[int64]bool{}
	reads := 0
	for {
		req, ok := g.Next()
		if !ok {
			break
		}
		switch req.Kind {
		case ssd.OpWrite:
			written[req.LPN] = true
		case ssd.OpRead:
			reads++
			if !written[req.LPN] {
				t.Fatalf("read of never-written lpn %d", req.LPN)
			}
		}
	}
	if reads == 0 {
		t.Fatal("mixed workload produced no reads")
	}
}

func TestRunAgainstDevice(t *testing.T) {
	d := testDevice(t)
	cap := d.FTL().Capacity()
	cs, err := Run(d, &Sequential{N: cap / 2, PageLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(cs)) != cap/2 {
		t.Fatalf("got %d completions", len(cs))
	}
	cs, err = Run(d, &Mixed{Space: cap / 2, Count: 500, ReadFrac: 0.3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 500 {
		t.Fatalf("got %d completions", len(cs))
	}
	if err := d.FTL().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestParseTrace(t *testing.T) {
	trace := `# a comment
w,5
r, 5
t,5

w,6
`
	reqs, err := ParseTrace(strings.NewReader(trace), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 4 {
		t.Fatalf("got %d requests", len(reqs))
	}
	if reqs[0].Kind != ssd.OpWrite || reqs[1].Kind != ssd.OpRead || reqs[2].Kind != ssd.OpTrim {
		t.Fatalf("kinds wrong: %+v", reqs)
	}
	if reqs[1].LPN != 5 {
		t.Fatalf("lpn = %d", reqs[1].LPN)
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []string{"x,1", "w", "w,abc"}
	for _, c := range cases {
		if _, err := ParseTrace(strings.NewReader(c), 8); err == nil {
			t.Errorf("trace %q should fail", c)
		}
	}
}

func TestParseMSRTrace(t *testing.T) {
	trace := `# msr sample
128166372003061629,host,0,Write,0,8192,100
128166372003061629,host,0,Read,4096,4096,50
128166372013061629,host,0,Write,1048576,4096,80
`
	reqs, err := ParseMSRTrace(strings.NewReader(trace), 4096, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Record 1: 8192 bytes at 0 → pages 0,1. Record 2: read page 1.
	// Record 3: write page 256.
	if len(reqs) != 4 {
		t.Fatalf("got %d requests: %+v", len(reqs), reqs)
	}
	if reqs[0].Kind != ssd.OpWrite || reqs[0].LPN != 0 {
		t.Fatalf("req0 %+v", reqs[0])
	}
	if reqs[1].LPN != 1 {
		t.Fatalf("req1 %+v", reqs[1])
	}
	if reqs[2].Kind != ssd.OpRead || reqs[2].LPN != 1 {
		t.Fatalf("req2 %+v", reqs[2])
	}
	if reqs[3].LPN != 256 {
		t.Fatalf("req3 %+v", reqs[3])
	}
	// Arrivals rebase to 0; the third record is 1e7 ticks (1 s) later.
	if reqs[0].Arrival != 0 {
		t.Fatalf("first arrival %v", reqs[0].Arrival)
	}
	if got := reqs[3].Arrival; got < 0.9e6 || got > 1.1e6 {
		t.Fatalf("third record arrival %v µs, want ≈1e6", got)
	}
}

func TestParseMSRTraceSecondsAndFolding(t *testing.T) {
	trace := "0.5,h,0,read,8192000,4096,1\n"
	reqs, err := ParseMSRTrace(strings.NewReader(trace), 4096, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1 {
		t.Fatalf("got %d", len(reqs))
	}
	// Page 2000 folds into LPN space 100 → 0.
	if reqs[0].LPN != 0 {
		t.Fatalf("folded lpn %d", reqs[0].LPN)
	}
}

func TestParseMSRTraceErrors(t *testing.T) {
	cases := []string{
		"1,h,0,Write,0",         // too few fields
		"x,h,0,Write,0,4096,1",  // bad timestamp
		"1,h,0,Zap,0,4096,1",    // bad type
		"1,h,0,Write,-1,4096,1", // bad offset
		"1,h,0,Write,0,0,1",     // bad size
	}
	for _, c := range cases {
		if _, err := ParseMSRTrace(strings.NewReader(c), 4096, 100); err == nil {
			t.Errorf("trace %q should fail", c)
		}
	}
	if _, err := ParseMSRTrace(strings.NewReader(""), 0, 100); err == nil {
		t.Error("zero page size should fail")
	}
	if _, err := ParseMSRTrace(strings.NewReader(""), 4096, 0); err == nil {
		t.Error("zero maxLPN should fail")
	}
}

func TestReplayPreparedColdReads(t *testing.T) {
	d := testDevice(t)
	capacity := d.FTL().Capacity()
	trace := fmt.Sprintf("1,h,0,Read,%d,4096,1\n2,h,0,Write,0,4096,1\n", 0)
	reqs, err := ParseMSRTrace(strings.NewReader(trace), d.PageSize(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := ReplayPrepared(d, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != len(reqs) {
		t.Fatalf("got %d completions for %d requests", len(cs), len(reqs))
	}
	if err := d.FTL().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPacedArrivalsMonotoneAndMean(t *testing.T) {
	g := &Paced{Gen: &Sequential{N: 4000, PageLen: 8}, MeanGapUS: 50, Seed: 5}
	prev := -1.0
	var last float64
	n := 0
	for {
		req, ok := g.Next()
		if !ok {
			break
		}
		if req.Arrival <= prev {
			t.Fatalf("arrivals must be strictly increasing: %v after %v", req.Arrival, prev)
		}
		prev = req.Arrival
		last = req.Arrival
		n++
	}
	mean := last / float64(n)
	if mean < 40 || mean > 60 {
		t.Fatalf("mean interarrival %v, want ≈50", mean)
	}
}

func TestPacedDefaultGap(t *testing.T) {
	g := &Paced{Gen: &Sequential{N: 2, PageLen: 8}, Seed: 1}
	r1, _ := g.Next()
	r2, _ := g.Next()
	if r2.Arrival <= r1.Arrival {
		t.Fatal("default gap should still space arrivals")
	}
}

func TestPacedDrivesDeviceQueueing(t *testing.T) {
	d := testDevice(t)
	if err := d.FillSequential(nil); err != nil {
		t.Fatal(err)
	}
	base := d.Now()
	g := &Paced{Gen: &Uniform{Space: d.FTL().Capacity(), Count: 50, Seed: 2}, MeanGapUS: 5, Seed: 3}
	// Rebase arrivals onto the current clock.
	for {
		req, ok := g.Next()
		if !ok {
			break
		}
		req.Kind = ssd.OpRead
		req.Data = nil
		req.Arrival += base
		c, err := d.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		if c.Latency < 0 || c.Wait < 0 {
			t.Fatalf("bad completion %+v", c)
		}
	}
}
