package experiments

import "testing"

func TestSimThroughputParallelIdentical(t *testing.T) {
	cfg := QuickConfig()
	cfg.BlocksPerLane = 48
	serial, err := Run("sim-throughput", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 8
	par, err := Run("sim-throughput", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Tables[0].String() != par.Tables[0].String() || serial.Text != par.Text {
		t.Fatalf("parallel output differs:\nserial:\n%s%s\nparallel:\n%s%s",
			serial.Tables[0].String(), serial.Text, par.Tables[0].String(), par.Text)
	}
}
