package experiments

import (
	"fmt"

	"superfast/internal/flash"
	"superfast/internal/prng"
	"superfast/internal/pv"
	"superfast/internal/ssd"
	"superfast/internal/stats"
)

func init() {
	register("gc-preempt", runGCPreempt)
}

// runGCPreempt compares blocking garbage collection against preemptive
// partial GC (bounded relocation steps scheduled into host idle windows)
// under QSTR-MED organization. The same open-loop stamped overwrite trace is
// replayed against both modes: with blocking GC the unlucky write that trips
// the watermark absorbs a whole collection in its latency; with stepping the
// reclamation hides in the inter-arrival gaps. Steady-state WAF must match —
// both modes trigger at the same watermark — so the tail moves while the
// write amplification stays put.
func runGCPreempt(cfg Config) (*Result, error) {
	g, p := deviceGeometry(cfg)
	// Twice the standard experiment capacity: preemptive GC lets the free
	// pool dip below the blocking floor between erases, which acts as a
	// sliver of extra effective overprovisioning. On a larger array that
	// sliver is a negligible OP fraction, so the WAF comparison isolates
	// scheduling rather than pool depth.
	g.BlocksPerPlane *= 2
	newDevice := func(step int) (*ssd.Device, error) {
		arr, err := flash.NewArray(g, pv.New(p), flash.DefaultECC())
		if err != nil {
			return nil, err
		}
		dcfg := ssd.DefaultConfig()
		dcfg.FTL.Overprovision = 0.25
		dcfg.FTL.GCStepPages = step
		dev, err := ssd.New(arr, dcfg)
		if err != nil {
			return nil, err
		}
		dev.SetAttribution(cfg.Attr)
		return dev, err
	}

	// Calibrate the open-loop cadence on a closed-loop blocking run: the
	// stamped replay arrives at 5× the device's mean inter-completion time,
	// leaving idle windows without letting the queue run away.
	cal, err := newDevice(0)
	if err != nil {
		return nil, err
	}
	if err := cal.FillSequential(nil); err != nil {
		return nil, err
	}
	capacity := cal.FTL().Capacity()
	ops := 3 * capacity
	lpns := make([]int64, ops)
	src := prng.New(cfg.Seed, 0x9cb)
	for i := range lpns {
		lpns[i] = int64(src.Intn(int(capacity)))
	}
	calStart := cal.Now()
	for _, lpn := range lpns {
		if _, err := cal.Submit(ssd.Request{Kind: ssd.OpWrite, LPN: lpn, Data: []byte("w")}); err != nil {
			return nil, err
		}
	}
	gap := 5 * (cal.Now() - calStart) / float64(ops)

	t := &stats.Table{
		Title: fmt.Sprintf("Blocking vs preemptive GC, open-loop uniform overwrites (gap %.0f µs)", gap),
		Headers: []string{"GC mode", "WAF", "GC stalls", "GC steps",
			"Mean µs", "P99 µs", "P99.9 µs", "Max µs"},
	}
	var wafs []float64
	for _, mode := range []struct {
		name string
		step int
	}{{"blocking", 0}, {"preemptive (8 pages/step)", 8}} {
		dev, err := newDevice(mode.step)
		if err != nil {
			return nil, err
		}
		if err := dev.FillSequential(nil); err != nil {
			return nil, err
		}
		base := dev.Now() + gap
		lats := make([]float64, 0, ops)
		for i, lpn := range lpns {
			c, err := dev.Submit(ssd.Request{
				Kind: ssd.OpWrite, LPN: lpn, Data: []byte("w"),
				Arrival: base + float64(i)*gap,
			})
			if err != nil {
				return nil, err
			}
			lats = append(lats, c.Latency)
		}
		sm := stats.Summarize(lats)
		fst := dev.FTL().Stats()
		wafs = append(wafs, fst.WAF())
		t.AddRow(mode.name, fmt.Sprintf("%.3f", fst.WAF()),
			fmt.Sprintf("%d", fst.GCStalls), fmt.Sprintf("%d", fst.GCSteps),
			stats.FmtUS(sm.Mean), stats.FmtUS(sm.P99), stats.FmtUS(sm.P999),
			stats.FmtUS(sm.Max))
	}
	text := fmt.Sprintf("same watermark, same victims: WAF %.3f vs %.3f; "+
		"the collections move out of the unlucky writes into the idle windows\n",
		wafs[0], wafs[1])
	return &Result{ID: "gc-preempt", Tables: []*stats.Table{t}, Text: text}, nil
}
