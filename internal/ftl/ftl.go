// Package ftl implements a superblock-based page-mapping flash translation
// layer on top of the simulated NAND array: logical-to-physical mapping,
// super-word-line write buffering (one multi-plane program fills the same
// word-line of every member block), greedy garbage collection, and the
// QSTR-MED integration the paper describes — gathering per-word-line program
// latencies in the write path, assembling fast/slow superblocks on demand,
// and routing host writes to fast superblocks and GC traffic to slow ones
// (function-based placement, §V-D).
package ftl

import (
	"errors"
	"fmt"

	"superfast/internal/core"
	"superfast/internal/flash"
	"superfast/internal/prng"
	"superfast/internal/profile"
	"superfast/internal/pv"
	"superfast/internal/telemetry"
)

// Errors returned by the FTL.
var (
	ErrUnmapped    = errors.New("ftl: logical page not mapped")
	ErrOutOfRange  = errors.New("ftl: logical page out of range")
	ErrDeviceFull  = errors.New("ftl: no reclaimable space left")
	ErrPayloadSize = errors.New("ftl: payload exceeds page size")
)

// Organizer selects how free blocks are grouped into superblocks.
type Organizer int

// Organizer kinds. QSTRMed is the paper's scheme; the others are baselines
// for end-to-end comparisons.
const (
	QSTRMed       Organizer = iota // similarity check + on-demand fast/slow assembly
	SequentialOrg                  // lowest free block index on every lane
	RandomOrg                      // arbitrary free block per lane
)

func (o Organizer) String() string {
	switch o {
	case QSTRMed:
		return "qstr-med"
	case SequentialOrg:
		return "sequential"
	case RandomOrg:
		return "random"
	}
	return fmt.Sprintf("Organizer(%d)", int(o))
}

// Hint classifies a host write for page-type-aware placement inside the
// super-word-line (§V-D: small random data to high-speed superpages, large
// batch data to slower superpages).
type Hint int

// Write hints.
const (
	HintNone  Hint = iota
	HintSmall      // prefer fast (LSB) page slots
	HintBatch      // prefer slow (MSB) page slots
)

// VictimPolicy selects how GC chooses its victim superblock.
type VictimPolicy int

// Victim policies.
const (
	// Greedy takes the superblock with the fewest valid pages — optimal for
	// uniform traffic, prone to moving hot data on skewed traffic.
	Greedy VictimPolicy = iota
	// CostBenefit weighs reclaimed space against copy cost and age
	// ((1−u)·age / 2u): old, mostly-invalid superblocks win, so hot data
	// gets time to invalidate itself before it is copied.
	CostBenefit
	// FIFO collects superblocks in sealing order regardless of contents.
	FIFO
)

func (p VictimPolicy) String() string {
	switch p {
	case Greedy:
		return "greedy"
	case CostBenefit:
		return "cost-benefit"
	case FIFO:
		return "fifo"
	}
	return fmt.Sprintf("VictimPolicy(%d)", int(p))
}

// Config parameterizes the FTL.
type Config struct {
	Overprovision float64   // fraction of pages withheld from the logical space
	GCThreshold   int       // run GC when assemblable superblocks drop to this count
	K             int       // QSTR-MED candidate window
	Organizer     Organizer // superblock organization policy
	Seed          uint64    // randomness for RandomOrg
	// WearLambda biases GC victim selection away from worn-out superblocks:
	// the victim score is validPages + WearLambda × meanPE, so heavily
	// cycled blocks rest while fresher ones absorb erases. Zero disables
	// wear-aware selection (pure greedy).
	WearLambda float64
	// RAID dedicates one rotating lane of every superblock to parity pages;
	// a page whose ECC fails even after retries is reconstructed from its
	// super-word-line peers. Costs 1/lanes of the capacity.
	RAID bool
	// AutoHint turns on write-frequency detection (§V-D: the scheme
	// "detects the types of written data"): unhinted host writes to pages
	// rewritten often are placed like HintSmall writes (fast LSB
	// superpages) automatically.
	AutoHint bool
	// Victim selects the GC victim policy (default Greedy).
	Victim VictimPolicy
	// MapCachePages enables DFTL-style cached mapping: only this many
	// translation pages stay in RAM; misses cost MapReadUS and dirty
	// evictions MapProgramUS of extra latency. Zero keeps the whole table
	// in RAM (no charge).
	MapCachePages int
	MapReadUS     float64
	MapProgramUS  float64
	// GCStepPages enables preemptive partial GC: a GCStep relocates at most
	// this many valid pages (the erase is its own step) so the device can
	// interleave host traffic with reclamation. Zero keeps the classic
	// blocking behavior — the write path collects whole superblocks inline
	// whenever the free pool drops below GCThreshold.
	GCStepPages int
	// GCSoftThreshold is the free-pool watermark (assemblable superblocks)
	// at which incremental GC steps start in preemptive mode. It must sit at
	// or above GCThreshold, the hard floor maybeGC refills to when the pool
	// runs dry, so ensureFree can never fail spuriously. Zero defaults to
	// GCThreshold — the same trigger point as blocking GC, which keeps the
	// steady-state free level (and therefore the effective overprovisioning
	// and WAF) identical to blocking mode. Raising it starts reclamation
	// earlier at the cost of holding more superblocks free. Ignored in
	// blocking mode.
	GCSoftThreshold int
}

// DefaultConfig returns a typical configuration: 12% overprovisioning,
// GC at two free superblocks, the paper's K = 4 candidate window.
func DefaultConfig() Config {
	return Config{
		Overprovision: 0.12, GCThreshold: 2, K: 4, Organizer: QSTRMed, Seed: 1,
		MapReadUS: 60, MapProgramUS: 1700,
	}
}

// Stats aggregates FTL activity.
type Stats struct {
	HostWrites   uint64 // pages written by the host
	HostReads    uint64
	GCWrites     uint64 // pages relocated by garbage collection
	GCRuns       uint64
	// GCLatency is the flash time spent inside garbage collection (victim
	// reads, relocation flushes, erases) — the share of FlushLatency/
	// EraseLatency/ReadLatency that host requests should not be charged for.
	GCLatency float64
	// GCSteps counts preemptive partial-GC steps (GCStep calls that did
	// work). Zero in blocking mode.
	GCSteps uint64
	// GCStalls counts blocking collections forced at the hard GCThreshold
	// floor — in preemptive mode, the times incremental stepping could not
	// keep up and a host write absorbed a full collection.
	GCStalls uint64
	// GCStarved counts the times GC was needed (free pool below the
	// threshold being enforced) but no reclaimable victim existed — every
	// sealed superblock 100% valid. The device then runs degraded; without
	// this counter that state was silent.
	GCStarved uint64
	Flushes      uint64  // multi-plane super-word-line programs
	Erases       uint64  // superblock erases
	BadBlocks    uint64  // blocks retired after erase failure
	PatrolReads  uint64  // pages scanned by Patrol
	Refreshes    uint64  // pages relocated because their error count neared the ECC limit
	FlushLatency float64 // µs spent in multi-plane programs
	EraseLatency float64 // µs spent in multi-plane erases
	ReadLatency  float64
	ExtraPgm     float64 // extra latency accumulated across programs
	ExtraErs     float64
	// ExtraEWMA is an exponentially weighted moving average of per-command
	// extra latency (α = 1/8) across multi-plane programs and erases — the
	// "how straggly is the device right now" signal the flight recorder
	// samples.
	ExtraEWMA   float64
	RAIDRepairs uint64 // pages reconstructed from parity
}

// extraEWMAAlpha weights the newest multi-plane command's extra latency in
// Stats.ExtraEWMA.
const extraEWMAAlpha = 1.0 / 8

// WAF returns the write amplification factor.
func (s Stats) WAF() float64 {
	if s.HostWrites == 0 {
		return 1
	}
	return float64(s.HostWrites+s.GCWrites) / float64(s.HostWrites)
}

type superblock struct {
	id       int
	members  []flash.BlockAddr
	speed    core.Speed
	valid    int
	sealed   bool
	sealedAt uint64 // flush sequence number at sealing time
}

type openState struct {
	sb     *superblock
	nextWL int
	parity int        // parity member index, -1 without RAID
	data   [][][]byte // pending payloads, [member][pageType]
	lpns   [][]int64  // pending LPNs, -1 = empty slot
	seqs   [][]uint64 // write sequence per pending slot
	fill   int
}

// dataSlots returns the number of user-data slots per super word-line.
func (st *openState) dataSlots() int {
	n := len(st.sb.members)
	if st.parity >= 0 {
		n--
	}
	return n * flash.PagesPerLWL
}

// FlashOp records one chip-level flash operation the FTL issued, for
// device-level timing models that schedule per-chip occupancy.
type FlashOp struct {
	Chip int
	Dur  float64 // µs the chip is busy
	Kind byte    // 'r' read, 'p' program, 'e' erase
	GC   bool    // issued inside garbage collection (victim reads, relocation
	// programs, erases, patrol refreshes) — the attribution device tracers
	// need to tell a GC pause from host work on the same chip
}

// FTL is the flash translation layer. Not safe for concurrent use.
type FTL struct {
	arr    *flash.Array
	geo    flash.Geometry
	cfg    Config
	scheme *core.Scheme

	l2p    []int64 // LPN → PPN, -1 unmapped
	p2l    []int64 // PPN → LPN, -1 invalid
	sbs    map[int]*superblock
	bySB   map[flash.BlockAddr]*superblock
	open   map[core.Speed]*openState
	logLen int64

	nextSBID int
	stats    Stats
	rng      *prng.Source
	journal  bool
	ops      []FlashOp // journal of chip ops since the last TakeOps
	gcDepth  int       // >0 while executing GC (collect / patrol refresh)
	// gcq holds the in-flight garbage collections: victims pulled out of the
	// superblock table with a resume cursor each. Non-empty between partial
	// GC steps, and after a collection failed mid-relocation — the cursor is
	// what makes the error path crash-consistent instead of orphaning the
	// victim.
	gcq    []*gcState
	softGC int // free-pool watermark where incremental GC starts
	hot      *hotness  // write-frequency detector (AutoHint)
	mcache   *mapCache // DFTL translation cache (nil = full table in RAM)
	writeSeq uint64    // global write sequence for spare-area tags
	met      *ftlMetrics
	attr     *telemetry.Attribution
	attrKeys []telemetry.BlockKey // scratch for recordAttr, reused across calls
	gcObs    func(GCEvent)        // observer for completed GC work, nil = off

	// Hot-path arenas. A page write used to allocate its payload copy, its
	// spare-area tag, and — across a P/E cycle — fresh open-superblock
	// buffers, superblock records and GC cursors, all of which die at the
	// next erase. Instead, the array's erase hook (SetRecycler) hands tag
	// and payload buffers back, seals recycle openStates, and completed
	// collections recycle superblocks and cursors, so steady-state churn
	// reuses the same arena instead of feeding the garbage collector.
	own       PayloadOwnership
	bufPool   [][]byte      // erased payload buffers (CopyRecycle only)
	tagPool   [][]byte      // erased spare-area tag buffers
	statePool []*openState  // openStates recycled at seal
	sbPool    []*superblock // superblock records recycled after their erase
	gcPool    []*gcState    // collection cursors recycled at completion
	flushPages [][][]byte   // flush scratch: per-member page table
	flushOOBs  [][][]byte   // flush scratch: per-member OOB rows (reused)
	flushLats  []float64    // per-member latency scratch (programMultiOOB)
	opsBuf     [2][]FlashOp // double-buffered journal slabs for CollectOps
	opsCur     int
}

// PayloadOwnership selects what the FTL does with the payload slice a write
// hands it. The choice is per front end: it changes who may reuse buffers,
// never the stored bytes or any latency.
type PayloadOwnership int

const (
	// CopyAlways copies every payload into a fresh buffer — safe against any
	// caller, the historical default for direct FTL users.
	CopyAlways PayloadOwnership = iota
	// CopyRecycle copies payloads into buffers recycled from erased blocks.
	// Requires that no caller holds a reference to previously read page data
	// across subsequent writes (an erase may hand the buffer to a new write):
	// the serial ssd.Device qualifies because every read it serves copies
	// into the completion before the next request runs.
	CopyRecycle
	// BorrowHost stores the caller's slice directly (zero copy). The caller
	// transfers ownership and must never mutate the buffer afterwards.
	// Erased payload buffers are NOT recycled in this mode, so completions
	// that alias flash pages stay stable; only tag buffers (FTL-internal)
	// are reused. ssd.ConcurrentDevice qualifies: each request's payload is
	// decoded or built fresh per submission.
	BorrowHost
)

// SetPayloadOwnership switches the write-path payload policy. Call while no
// operation is in flight and no previously returned read data is retained.
func (f *FTL) SetPayloadOwnership(o PayloadOwnership) { f.own = o }

// recycle is the array's erase hook: buffers the erased block held come back
// to the arenas instead of the garbage collector. Tag buffers are always
// FTL-owned; payload buffers only in CopyRecycle mode (see BorrowHost).
func (f *FTL) recycle(buf []byte, oob bool) {
	if oob {
		if len(buf) == tagBytes {
			f.tagPool = append(f.tagPool, buf)
		}
		return
	}
	if f.own == CopyRecycle {
		f.bufPool = append(f.bufPool, buf)
	}
}

// payloadSlab is how many payload buffers one cold-pool refill carves from a
// single slab allocation in CopyRecycle mode. Like the tag pool, the payload
// pool starts empty and only erases feed it, so a fresh device's first
// overwrite pass would otherwise pay one malloc per page written.
const payloadSlab = 32

// takePayload returns the buffer to store for an incoming page write under
// the ownership policy. Empty payloads stay nil, preserving the zero-transfer
// semantics of metadata-only writes.
func (f *FTL) takePayload(data []byte) []byte {
	if len(data) == 0 {
		return nil
	}
	if f.own == BorrowHost {
		return data
	}
	if f.own == CopyRecycle {
		for n := len(f.bufPool); n > 0; n = len(f.bufPool) {
			buf := f.bufPool[n-1]
			f.bufPool = f.bufPool[:n-1]
			if cap(buf) < len(data) {
				continue // wrong-sized stray; drop it
			}
			buf = buf[:len(data)]
			copy(buf, data)
			return buf
		}
		// Cold pool: refill from a slab sized to this write. Full slice
		// expressions cap every cut so no buffer can grow into its
		// neighbor; same-sized writes (the common case — hosts write
		// whole pages) drain the refill before the next slab.
		sz := len(data)
		slab := make([]byte, sz*payloadSlab)
		for i := 1; i < payloadSlab; i++ {
			f.bufPool = append(f.bufPool, slab[i*sz:(i+1)*sz:(i+1)*sz])
		}
		buf := slab[0:sz:sz]
		copy(buf, data)
		return buf
	}
	return append([]byte(nil), data...)
}

// GCEvent reports one completed unit of garbage-collection work to the
// observer installed with SetGCObserver: either one preemptive GCStep
// (Blocking false) or one blocking refill that stalled a host write
// (Blocking true, with the moves and latency summed over the collections the
// refill ran). Events fire synchronously from the FTL's single-threaded
// call context, so the observer needs no locking against the FTL itself.
type GCEvent struct {
	Moves    int     // valid pages relocated
	Erased   bool    // a deferred multi-plane erase ran (steps only)
	Latency  float64 // µs of flash work issued
	Blocking bool    // the work stalled a host write (collectUntil path)
}

// SetGCObserver wires (or, with nil, unwires) a callback invoked after each
// unit of GC work. Device front ends use it to attach page-relocation counts
// to their latency ledgers. Call while no operation is in flight.
func (f *FTL) SetGCObserver(fn func(GCEvent)) { f.gcObs = fn }

// ftlMetrics caches the registry counters the FTL hot paths bump, so a
// wired registry costs one atomic add per event and an unwired one costs a
// single nil check.
type ftlMetrics struct {
	hostWrites   *telemetry.Counter
	hostReads    *telemetry.Counter
	gcWrites     *telemetry.Counter
	gcRuns       *telemetry.Counter
	gcSteps      *telemetry.Counter
	gcStalls     *telemetry.Counter
	gcStarved    *telemetry.Gauge
	flushes      *telemetry.Counter
	erases       *telemetry.Counter
	assembleFast *telemetry.Counter
	assembleSlow *telemetry.Counter
}

// SetMetrics wires (or, with nil, unwires) a telemetry registry into the
// FTL: host/GC write and read counts, flushes, erases, GC runs, and
// superblock assemblies by speed class are counted live under the "ftl."
// prefix. Call while no operation is in flight.
func (f *FTL) SetMetrics(m *telemetry.Metrics) {
	if m == nil {
		f.met = nil
		return
	}
	f.met = &ftlMetrics{
		hostWrites:   m.Counter("ftl.writes.host"),
		hostReads:    m.Counter("ftl.reads.host"),
		gcWrites:     m.Counter("ftl.writes.gc"),
		gcRuns:       m.Counter("ftl.gc.runs"),
		gcSteps:      m.Counter("ftl.gc.steps"),
		gcStalls:     m.Counter("ftl.gc.stalls"),
		gcStarved:    m.Gauge("ftl.gc.starved"),
		flushes:      m.Counter("ftl.flushes"),
		erases:       m.Counter("ftl.erases"),
		assembleFast: m.Counter("ftl.assemble.fast"),
		assembleSlow: m.Counter("ftl.assemble.slow"),
	}
}

// SetAttribution wires (or, with nil, unwires) a straggler attribution table:
// every multi-plane program and erase reports its member blocks and
// per-member latencies, so the table can charge the extra latency (max − min)
// to the slowest member. Call while no operation is in flight. The FTL
// records under its own serialized execution, so with a deterministic request
// order the table's report is byte-identical across runs.
func (f *FTL) SetAttribution(a *telemetry.Attribution) { f.attr = a }

// recordAttr reports one multi-plane command to the attribution table. The
// member-key scratch slice is reused so the disabled path costs one nil check
// and the enabled path does not allocate per command.
func (f *FTL) recordAttr(kind byte, fast bool, members []flash.BlockAddr, lats []float64) {
	if f.attr == nil {
		return
	}
	if cap(f.attrKeys) < len(members) {
		f.attrKeys = make([]telemetry.BlockKey, len(members))
	}
	keys := f.attrKeys[:len(members)]
	for i, m := range members {
		keys[i] = telemetry.BlockKey{Chip: m.Chip, Plane: m.Plane, Block: m.Block}
	}
	f.attr.Record(kind, f.gcDepth > 0, fast, keys, lats)
}

// New builds an FTL over the array. All blocks start free.
func New(arr *flash.Array, cfg Config) (*FTL, error) {
	geo := arr.Geometry()
	if cfg.Overprovision < 0 || cfg.Overprovision >= 0.9 {
		return nil, fmt.Errorf("ftl: overprovision %v out of range [0, 0.9)", cfg.Overprovision)
	}
	if cfg.GCThreshold < 1 {
		return nil, fmt.Errorf("ftl: GC threshold must be at least 1, got %d", cfg.GCThreshold)
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("ftl: K must be positive, got %d", cfg.K)
	}
	if cfg.GCStepPages < 0 {
		return nil, fmt.Errorf("ftl: GC step pages must be non-negative, got %d", cfg.GCStepPages)
	}
	softGC := cfg.GCSoftThreshold
	if softGC == 0 {
		softGC = cfg.GCThreshold
	}
	if softGC < cfg.GCThreshold {
		return nil, fmt.Errorf("ftl: GC soft threshold %d below hard threshold %d", softGC, cfg.GCThreshold)
	}
	scheme, err := core.NewScheme(geo, cfg.K)
	if err != nil {
		return nil, err
	}
	totalPages := geo.TotalBlocks() * geo.PagesPerBlock()
	if cfg.RAID && geo.Lanes() < 2 {
		return nil, fmt.Errorf("ftl: RAID needs at least 2 lanes")
	}
	dataFrac := 1.0
	if cfg.RAID {
		dataFrac = float64(geo.Lanes()-1) / float64(geo.Lanes())
	}
	logLen := int64(float64(totalPages) * dataFrac * (1 - cfg.Overprovision))
	f := &FTL{
		arr:    arr,
		geo:    geo,
		cfg:    cfg,
		scheme: scheme,
		l2p:    make([]int64, logLen),
		p2l:    make([]int64, totalPages),
		sbs:    make(map[int]*superblock),
		bySB:   make(map[flash.BlockAddr]*superblock),
		open:   make(map[core.Speed]*openState),
		logLen: logLen,
		rng:    prng.New(cfg.Seed, 0xf71),
		softGC: softGC,
	}
	if cfg.AutoHint {
		f.hot = newHotness(logLen, uint64(4*logLen), 3)
	}
	if cfg.MapCachePages > 0 {
		f.mcache = newMapCache(cfg.MapCachePages)
	}
	for i := range f.l2p {
		f.l2p[i] = -1
	}
	for i := range f.p2l {
		f.p2l[i] = -1
	}
	for lane := 0; lane < geo.Lanes(); lane++ {
		chip, plane := geo.LaneChipPlane(lane)
		for b := 0; b < geo.BlocksPerPlane; b++ {
			if err := scheme.AddFree(flash.BlockAddr{Chip: chip, Plane: plane, Block: b}); err != nil {
				return nil, err
			}
		}
	}
	// Every buffer the FTL programs is built fresh per flush (host data is
	// copied into the write buffer on entry, parity and OOB tags are
	// assembled in flush) and released right after, so the array can keep
	// the slices instead of copying them again. The erase hook closes the
	// loop: buffers a dying block held feed the write path's arenas.
	arr.SetBorrowPayloads(true)
	arr.SetRecycler(f.recycle)
	return f, nil
}

// Capacity returns the number of logical pages the FTL exposes.
func (f *FTL) Capacity() int64 { return f.logLen }

// Geometry returns the geometry of the underlying array.
func (f *FTL) Geometry() flash.Geometry { return f.geo }

// Array returns the underlying flash array (for reliability inspection).
func (f *FTL) Array() *flash.Array { return f.arr }

// WearSummary reports the spread of erase counts across all blocks — the
// wear-leveling view of the device.
type WearSummary struct {
	MinPE   int
	MaxPE   int
	MeanPE  float64
	Retired int
}

// Wear computes the current wear summary.
func (f *FTL) Wear() WearSummary {
	w := WearSummary{MinPE: int(^uint(0) >> 1)}
	total := 0
	n := 0
	for lane := 0; lane < f.geo.Lanes(); lane++ {
		chip, plane := f.geo.LaneChipPlane(lane)
		for b := 0; b < f.geo.BlocksPerPlane; b++ {
			addr := flash.BlockAddr{Chip: chip, Plane: plane, Block: b}
			pe, err := f.arr.PECycles(addr)
			if err != nil {
				continue
			}
			if f.scheme.Retired(addr) {
				w.Retired++
				continue
			}
			if pe < w.MinPE {
				w.MinPE = pe
			}
			if pe > w.MaxPE {
				w.MaxPE = pe
			}
			total += pe
			n++
		}
	}
	if n == 0 {
		w.MinPE = 0
		return w
	}
	w.MeanPE = float64(total) / float64(n)
	return w
}

// Stats returns a copy of the accumulated statistics.
func (f *FTL) Stats() Stats { return f.stats }

// EnableOpJournal turns on chip-level operation recording for TakeOps.
// Off by default so direct FTL users don't accumulate an undrained journal.
func (f *FTL) EnableOpJournal() { f.journal = true }

// TakeOps drains and returns the chip-level operations issued since the
// previous call. Device timing models use it to schedule per-chip busy time.
func (f *FTL) TakeOps() []FlashOp {
	ops := f.ops
	f.ops = nil
	return ops
}

// CollectOps runs fn with a clean operation journal and returns exactly the
// chip-level operations fn issued. Device front-ends use it to tie journal
// entries to one request: unlike bare TakeOps bracketing, operations left
// behind by an earlier failed call can never leak into the next request's
// schedule. fn's error is returned alongside whatever operations were
// journalled before it failed. Recording must be enabled with
// EnableOpJournal for ops to be collected.
//
// The journal alternates between two FTL-owned slabs, so the returned slice
// stays valid until the caller's second-next CollectOps — device front ends
// consume it before dispatching the next request, which keeps the per-request
// schedule allocation-free.
func (f *FTL) CollectOps(fn func() error) ([]FlashOp, error) {
	f.opsCur ^= 1
	f.ops = f.opsBuf[f.opsCur][:0]
	err := fn()
	ops := f.ops
	f.opsBuf[f.opsCur] = ops // keep any growth for the next round
	f.ops = nil
	return ops, err
}

func (f *FTL) noteOp(chip int, dur float64, kind byte) {
	if !f.journal {
		return
	}
	f.ops = append(f.ops, FlashOp{Chip: chip, Dur: dur, Kind: kind, GC: f.gcDepth > 0})
}

// Scheme returns the underlying QSTR-MED instance (also used by the
// baseline organizers for free-pool bookkeeping).
func (f *FTL) Scheme() *core.Scheme { return f.scheme }

// OpenFill returns the number of buffered pages pending in the open
// superblock of the given speed class, or 0 when none is open — the assembly
// pool levels the flight recorder samples.
func (f *FTL) OpenFill(speed core.Speed) int {
	if st := f.open[speed]; st != nil {
		return st.fill
	}
	return 0
}

// ppn computes the flat physical page number of a block page.
func (f *FTL) ppn(addr flash.BlockAddr, lwl int, typ pv.PageType) int64 {
	blockIdx := addr.Lane(f.geo)*f.geo.BlocksPerPlane + addr.Block
	return int64(blockIdx*f.geo.PagesPerBlock() + lwl*flash.PagesPerLWL + int(typ))
}

// ppnLocate inverts ppn.
func (f *FTL) ppnLocate(ppn int64) (addr flash.BlockAddr, lwl int, typ pv.PageType) {
	pages := int64(f.geo.PagesPerBlock())
	blockIdx := int(ppn / pages)
	in := int(ppn % pages)
	lane := blockIdx / f.geo.BlocksPerPlane
	chip, plane := f.geo.LaneChipPlane(lane)
	return flash.BlockAddr{Chip: chip, Plane: plane, Block: blockIdx % f.geo.BlocksPerPlane},
		in / flash.PagesPerLWL, pv.PageType(in % flash.PagesPerLWL)
}

// assembleSuperblock obtains a new superblock of the requested speed from
// the configured organizer.
func (f *FTL) assembleSuperblock(speed core.Speed) (*superblock, error) {
	// Superblock records cycle: collected victims come back through the
	// pool, so the member slice assembled into is recycled storage too.
	var sb *superblock
	if n := len(f.sbPool); n > 0 {
		sb = f.sbPool[n-1]
		f.sbPool = f.sbPool[:n-1]
	} else {
		sb = &superblock{}
	}
	var members []flash.BlockAddr
	var err error
	dst := sb.members[:0]
	switch f.cfg.Organizer {
	case QSTRMed:
		members, err = f.scheme.AssembleInto(dst, speed)
	case SequentialOrg:
		members, err = f.assembleZip(dst, false)
	case RandomOrg:
		members, err = f.assembleZip(dst, true)
	default:
		return nil, fmt.Errorf("ftl: unknown organizer %v", f.cfg.Organizer)
	}
	if err != nil {
		f.sbPool = append(f.sbPool, sb)
		return nil, err
	}
	if f.met != nil {
		if speed == core.Fast {
			f.met.assembleFast.Inc()
		} else {
			f.met.assembleSlow.Inc()
		}
	}
	*sb = superblock{id: f.nextSBID, members: members, speed: speed}
	f.nextSBID++
	f.sbs[sb.id] = sb
	for _, m := range members {
		f.bySB[m] = sb
	}
	return sb, nil
}

// assembleZip implements the baseline organizers through the scheme's free
// pools: sequential pairs the lowest free block index of every lane (the
// organization common in shipping SSDs); random takes an arbitrary free
// block per lane.
func (f *FTL) assembleZip(dst []flash.BlockAddr, random bool) ([]flash.BlockAddr, error) {
	return f.scheme.AssembleArbitraryInto(dst, func(entries []profile.Entry) int {
		if random {
			return f.rng.Intn(len(entries))
		}
		min := 0
		for i, e := range entries {
			if e.Block < entries[min].Block {
				min = i
			}
		}
		return min
	})
}

// openFor returns the open superblock state for a speed class, assembling a
// fresh superblock if needed (running GC first when free blocks are low).
func (f *FTL) openFor(speed core.Speed) (*openState, error) {
	if st := f.open[speed]; st != nil {
		return st, nil
	}
	if err := f.ensureFree(speed); err != nil {
		return nil, err
	}
	sb, err := f.assembleSuperblock(speed)
	if err != nil {
		return nil, err
	}
	st := f.newOpenState(sb)
	f.open[speed] = st
	return st, nil
}

// newOpenState returns a cleared buffer state for a freshly assembled (or,
// for RecoverByScan, rediscovered) superblock, reusing a state recycled at
// seal time when one of the right shape is available.
func (f *FTL) newOpenState(sb *superblock) *openState {
	nl := len(sb.members)
	if n := len(f.statePool); n > 0 && len(f.statePool[n-1].data) == nl {
		st := f.statePool[n-1]
		f.statePool = f.statePool[:n-1]
		st.sb = sb
		st.nextWL = 0
		st.parity = f.parityLane(sb.id, nl)
		st.fill = 0
		for i := 0; i < nl; i++ {
			for t := 0; t < flash.PagesPerLWL; t++ {
				st.data[i][t] = nil
				st.lpns[i][t] = -1
				st.seqs[i][t] = 0
			}
		}
		return st
	}
	st := &openState{sb: sb, parity: f.parityLane(sb.id, nl), data: make([][][]byte, nl),
		lpns: make([][]int64, nl), seqs: make([][]uint64, nl)}
	for i := 0; i < nl; i++ {
		st.data[i] = make([][]byte, flash.PagesPerLWL)
		st.lpns[i] = make([]int64, flash.PagesPerLWL)
		st.seqs[i] = make([]uint64, flash.PagesPerLWL)
		for t := range st.lpns[i] {
			st.lpns[i][t] = -1
		}
	}
	return st
}

// slotFor picks the next free buffer slot honoring the placement hint:
// small-hinted data prefers LSB (fast) slots, batch-hinted data MSB (slow)
// slots; otherwise slots fill lane-major in page-type order. The parity
// lane (RAID) never takes user data.
func (st *openState) slotFor(hint Hint) (lane, typ int, ok bool) {
	typeOrder := [][]int{
		HintNone:  {0, 1, 2},
		HintSmall: {0, 1, 2},
		HintBatch: {2, 1, 0},
	}[hint]
	if hint == HintSmall || hint == HintBatch {
		// Scan type-major so hinted writes take every preferred slot first.
		for _, t := range typeOrder {
			for l := range st.lpns {
				if l == st.parity {
					continue
				}
				if st.lpns[l][t] == -1 {
					return l, t, true
				}
			}
		}
		return 0, 0, false
	}
	for l := range st.lpns {
		if l == st.parity {
			continue
		}
		for t := 0; t < flash.PagesPerLWL; t++ {
			if st.lpns[l][t] == -1 {
				return l, t, true
			}
		}
	}
	return 0, 0, false
}

// WriteResult reports one host or GC page write.
type WriteResult struct {
	Latency float64 // µs of flash work triggered by this write (HostLatency + GCLatency)
	// HostLatency is the share of Latency the host request itself caused:
	// mapping-cache charges plus the super-word-line flush it triggered.
	HostLatency float64
	// GCLatency is the share of Latency spent in garbage collection the write
	// tripped (blocking collections at the hard watermark). Zero when GC did
	// not run; device front ends account it separately from host service time.
	GCLatency float64
	Flushed   bool    // a super-word-line program was issued
	GCMoves   int     // pages relocated by GC triggered from this write
	ExtraPgm  float64 // extra latency of the flush's multi-plane program
}

// Write stores one logical page with default placement.
func (f *FTL) Write(lpn int64, data []byte) (WriteResult, error) {
	return f.WriteHinted(lpn, data, HintNone)
}

// WriteHinted stores one logical page with a placement hint.
func (f *FTL) WriteHinted(lpn int64, data []byte, hint Hint) (WriteResult, error) {
	if lpn < 0 || lpn >= f.logLen {
		return WriteResult{}, fmt.Errorf("%w: %d", ErrOutOfRange, lpn)
	}
	if len(data) > f.geo.PageSize {
		return WriteResult{}, fmt.Errorf("%w: %d > %d", ErrPayloadSize, len(data), f.geo.PageSize)
	}
	mapLat := f.chargeMapAccess(lpn, true)
	if f.hot != nil && hint == HintNone {
		// Detected-hot pages take the fast LSB slots; everything else
		// yields them (batch placement), so the detector's classification
		// decides the superpage speed class.
		if f.hot.note(lpn) {
			hint = HintSmall
		} else {
			hint = HintBatch
		}
	}
	res, err := f.writeInternal(lpn, data, core.HostWrite, hint)
	if err != nil {
		return res, err
	}
	res.Latency += mapLat
	res.HostLatency += mapLat
	f.stats.HostWrites++
	if f.met != nil {
		f.met.hostWrites.Inc()
	}
	return res, nil
}

func (f *FTL) writeInternal(lpn int64, data []byte, class core.WriteClass, hint Hint) (WriteResult, error) {
	speed := core.SpeedFor(class)
	// Take ownership of the payload before openFor can run GC: a collection
	// erases blocks (feeding the recycle pool), and on the GC path `data`
	// still aliases the flash page being relocated — copying at entry means
	// the popped destination buffer can never be the page still being read.
	owned := f.takePayload(data)
	st, err := f.openFor(speed)
	if err != nil {
		return WriteResult{}, err
	}
	lane, typ, ok := st.slotFor(hint)
	if !ok {
		return WriteResult{}, fmt.Errorf("ftl: open superblock buffer full (internal error)")
	}
	// Invalidate any previous mapping.
	f.unmap(lpn)
	st.data[lane][typ] = owned
	st.lpns[lane][typ] = lpn
	f.writeSeq++
	st.seqs[lane][typ] = f.writeSeq
	st.fill++
	// Map immediately: the PPN is determined by the slot.
	ppn := f.ppn(st.sb.members[lane], st.nextWL, pv.PageType(typ))
	f.l2p[lpn] = ppn
	f.p2l[ppn] = lpn
	st.sb.valid++

	var res WriteResult
	if st.fill == st.dataSlots() {
		flushLat, extra, err := f.flush(speed)
		if err != nil {
			return res, err
		}
		res.Latency += flushLat
		res.HostLatency += flushLat
		res.ExtraPgm = extra
		res.Flushed = true
		// Blocking GC runs after flushes of host data, before space runs
		// out. In preemptive mode reclamation happens in GCStep increments
		// between requests instead, and nothing blocks here: an empty pool
		// only matters when a sealed stream needs a fresh superblock, and
		// ensureFree covers that (finishing the in-flight collection).
		if class == core.HostWrite && f.cfg.GCStepPages == 0 {
			moves, gcLat, err := f.maybeGC()
			if err != nil {
				return res, err
			}
			res.GCMoves = moves
			res.Latency += gcLat
			res.GCLatency += gcLat
		}
	}
	return res, nil
}

// flush programs the pending super word-line of the open superblock of the
// given speed and advances (or seals) it. Gathering hooks fire here.
func (f *FTL) flush(speed core.Speed) (latency, extra float64, err error) {
	st := f.open[speed]
	if st == nil || st.fill == 0 {
		return 0, 0, nil
	}
	// The page and OOB tables are FTL-owned scratch: the array keeps only
	// the per-page buffers (borrow mode), never the outer tables, so they
	// are rebuilt in place every flush instead of reallocated.
	nl := len(st.sb.members)
	if cap(f.flushPages) < nl {
		f.flushPages = make([][][]byte, nl)
		f.flushOOBs = make([][][]byte, nl)
	}
	pages := f.flushPages[:nl]
	oobs := f.flushOOBs[:nl]
	for i := range pages {
		pages[i] = st.data[i]
	}
	if st.parity >= 0 {
		parityPages := make([][]byte, flash.PagesPerLWL)
		for t := 0; t < flash.PagesPerLWL; t++ {
			var members [][]byte
			for l := range st.sb.members {
				if l == st.parity {
					continue
				}
				members = append(members, st.data[l][t])
			}
			parityPages[t] = buildParity(members)
		}
		pages[st.parity] = parityPages
	}
	// Spare-area tags: logical page + sequence + superblock identity, so a
	// flash scan can rebuild the mapping (RecoverByScan). Tag buffers come
	// back from the erase hook, so steady state reuses them.
	for l := 0; l < nl; l++ {
		if oobs[l] == nil {
			oobs[l] = make([][]byte, flash.PagesPerLWL)
		}
		for t := 0; t < flash.PagesPerLWL; t++ {
			lpn := int64(tagNoData)
			var seq uint64
			switch {
			case l == st.parity:
				lpn = tagParity
			case st.lpns[l][t] >= 0:
				lpn = st.lpns[l][t]
				seq = st.seqs[l][t]
			}
			oobs[l][t] = f.newTag(lpn, seq, st.sb.id, st.sb.speed)
		}
	}
	res, err := f.programMultiOOB(st.sb.members, st.nextWL, pages, oobs)
	if err != nil {
		return 0, 0, fmt.Errorf("ftl: flush: %w", err)
	}
	for i, m := range st.sb.members {
		if err := f.scheme.NoteProgram(m, st.nextWL, res.PerMember[i]); err != nil {
			return 0, 0, err
		}
		f.noteOp(m.Chip, res.PerMember[i], 'p')
	}
	f.stats.Flushes++
	if f.met != nil {
		f.met.flushes.Inc()
	}
	f.stats.FlushLatency += res.Latency
	f.stats.ExtraPgm += res.Extra
	f.stats.ExtraEWMA += extraEWMAAlpha * (res.Extra - f.stats.ExtraEWMA)
	f.recordAttr('p', st.sb.speed == core.Fast, st.sb.members, res.PerMember)
	st.nextWL++
	for i := range st.data {
		for t := range st.data[i] {
			st.data[i][t] = nil
			st.lpns[i][t] = -1
			st.seqs[i][t] = 0
		}
	}
	st.fill = 0
	if st.nextWL == f.geo.LWLsPerBlock() {
		st.sb.sealed = true
		st.sb.sealedAt = f.stats.Flushes
		delete(f.open, speed)
		// The buffer state dies with the stream; recycle it for the next
		// assembly instead of reallocating three tables per superblock.
		st.sb = nil
		f.statePool = append(f.statePool, st)
	}
	return res.Latency, res.Extra, nil
}

// unmap invalidates the current mapping of lpn, if any.
func (f *FTL) unmap(lpn int64) {
	ppn := f.l2p[lpn]
	if ppn < 0 {
		return
	}
	f.l2p[lpn] = -1
	f.p2l[ppn] = -1
	addr, _, _ := f.ppnLocate(ppn)
	if sb := f.bySB[addr]; sb != nil {
		sb.valid--
	}
}

// Locate reports where a logical page currently lives on flash. ok is false
// for out-of-range or unmapped pages.
func (f *FTL) Locate(lpn int64) (addr flash.BlockAddr, lwl int, typ pv.PageType, ok bool) {
	if lpn < 0 || lpn >= f.logLen || f.l2p[lpn] < 0 {
		return flash.BlockAddr{}, 0, 0, false
	}
	addr, lwl, typ = f.ppnLocate(f.l2p[lpn])
	return addr, lwl, typ, true
}

// PageTypeOf returns the TLC page type the logical page currently occupies,
// or -1 if unmapped.
func (f *FTL) PageTypeOf(lpn int64) pv.PageType {
	if lpn < 0 || lpn >= f.logLen || f.l2p[lpn] < 0 {
		return -1
	}
	_, _, typ := f.ppnLocate(f.l2p[lpn])
	return typ
}

// Trim discards a logical page.
func (f *FTL) Trim(lpn int64) error {
	if lpn < 0 || lpn >= f.logLen {
		return fmt.Errorf("%w: %d", ErrOutOfRange, lpn)
	}
	f.unmap(lpn)
	return nil
}

// ReadResult reports one host read.
type ReadResult struct {
	Data      []byte
	Latency   float64 // µs
	FromCache bool    // served from the open superblock's write buffer
}

// Read returns the current contents of a logical page.
func (f *FTL) Read(lpn int64) (ReadResult, error) {
	if lpn < 0 || lpn >= f.logLen {
		return ReadResult{}, fmt.Errorf("%w: %d", ErrOutOfRange, lpn)
	}
	ppn := f.l2p[lpn]
	if ppn < 0 {
		return ReadResult{}, fmt.Errorf("%w: %d", ErrUnmapped, lpn)
	}
	f.stats.HostReads++
	if f.met != nil {
		f.met.hostReads.Inc()
	}
	mapLat := f.chargeMapAccess(lpn, false)
	addr, lwl, typ := f.ppnLocate(ppn)
	// Pending pages live in the open superblock buffers.
	if data, ok := f.bufferedPage(addr, lwl, typ, lpn); ok {
		return ReadResult{Data: data, FromCache: true, Latency: mapLat}, nil
	}
	data, lat, err := f.readPage(addr, lwl, typ)
	if err != nil {
		return ReadResult{}, err
	}
	return ReadResult{Data: data, Latency: lat + mapLat}, nil
}

// readPage reads one flash page, reconstructing it from parity when the ECC
// gives up and RAID is enabled.
func (f *FTL) readPage(addr flash.BlockAddr, lwl int, typ pv.PageType) ([]byte, float64, error) {
	r, err := f.arr.Read(flash.PageAddr{BlockAddr: addr, LWL: lwl, Type: typ})
	f.stats.ReadLatency += r.Latency
	f.noteOp(addr.Chip, r.Latency, 'r')
	if err == nil {
		return r.Data, r.Latency, nil
	}
	if !errors.Is(err, flash.ErrUncorrectable) || !f.cfg.RAID {
		return nil, r.Latency, err
	}
	sb := f.bySB[addr]
	if sb == nil {
		return nil, r.Latency, err
	}
	lane := -1
	for i, m := range sb.members {
		if m == addr {
			lane = i
			break
		}
	}
	if lane < 0 {
		return nil, r.Latency, err
	}
	before := f.stats.ReadLatency
	data, rerr := f.reconstruct(sb, lane, lwl, typ)
	lat := r.Latency + (f.stats.ReadLatency - before)
	if rerr != nil {
		return nil, lat, rerr
	}
	return data, lat, nil
}

// ReadRange reads n consecutive logical pages starting at lpn, exploiting
// superpage parallelism: pages that live on the same super word-line of the
// same superblock are sensed with one parallel multi-plane read whose cost
// is the slowest member, not the sum (§II-B). It returns the payloads and
// the total flash latency.
func (f *FTL) ReadRange(lpn int64, n int) ([][]byte, float64, error) {
	if n <= 0 {
		return nil, 0, fmt.Errorf("ftl: ReadRange length %d", n)
	}
	if lpn < 0 || lpn+int64(n) > f.logLen {
		return nil, 0, fmt.Errorf("%w: [%d, %d)", ErrOutOfRange, lpn, lpn+int64(n))
	}
	out := make([][]byte, n)
	var latency float64

	// Group flash-resident pages by (superblock, word-line); everything
	// else (buffered pages) is served instantly, and unmapped pages fail.
	type groupKey struct {
		sb  int
		lwl int
	}
	type member struct {
		idx  int
		addr flash.PageAddr
	}
	groups := make(map[groupKey][]member)
	var orderedKeys []groupKey
	for i := 0; i < n; i++ {
		cur := lpn + int64(i)
		ppn := f.l2p[cur]
		if ppn < 0 {
			return nil, latency, fmt.Errorf("%w: %d", ErrUnmapped, cur)
		}
		addr, lwl, typ := f.ppnLocate(ppn)
		if data, ok := f.bufferedPage(addr, lwl, typ, cur); ok {
			out[i] = data
			continue
		}
		sb := f.bySB[addr]
		if sb == nil {
			return nil, latency, fmt.Errorf("ftl: page %d outside any superblock", ppn)
		}
		k := groupKey{sb: sb.id, lwl: lwl}
		if _, seen := groups[k]; !seen {
			orderedKeys = append(orderedKeys, k)
		}
		groups[k] = append(groups[k], member{idx: i, addr: flash.PageAddr{BlockAddr: addr, LWL: lwl, Type: typ}})
	}
	for _, k := range orderedKeys {
		ms := groups[k]
		// Page-type siblings share a lane; a multi-plane read takes one
		// page per lane, so split the group by page type. Iterate the types
		// in their fixed order, not map order: the journal entries this loop
		// emits set the chip dispatch schedule, which must not vary between
		// runs of the same trace.
		byType := map[pv.PageType][]member{}
		for _, m := range ms {
			byType[m.addr.Type] = append(byType[m.addr.Type], m)
		}
		for typ := pv.PageType(0); int(typ) < flash.PagesPerLWL; typ++ {
			sub, ok := byType[typ]
			if !ok {
				continue
			}
			addrs := make([]flash.PageAddr, len(sub))
			for i, m := range sub {
				addrs[i] = m.addr
			}
			results, op, err := f.arr.ReadMulti(addrs)
			if err != nil {
				// Fall back to per-page reads (with RAID reconstruction).
				for _, m := range sub {
					data, lat, rerr := f.readPage(m.addr.BlockAddr, m.addr.LWL, m.addr.Type)
					if rerr != nil {
						return nil, latency, rerr
					}
					latency += lat
					f.stats.HostReads++
					out[m.idx] = data
				}
				continue
			}
			latency += op.Latency
			f.stats.HostReads += uint64(len(sub))
			f.stats.ReadLatency += op.Latency
			// One multi-plane command occupies each chip once, for its
			// slowest plane — not once per member, which would serialize
			// planes the command reads concurrently.
			chipLat := map[int]float64{}
			for i, m := range sub {
				out[m.idx] = results[i].Data
				if results[i].Latency > chipLat[m.addr.Chip] {
					chipLat[m.addr.Chip] = results[i].Latency
				}
			}
			for _, m := range sub {
				if lat, ok := chipLat[m.addr.Chip]; ok {
					f.noteOp(m.addr.Chip, lat, 'r')
					delete(chipLat, m.addr.Chip)
				}
			}
		}
	}
	return out, latency, nil
}

// bufferedPage serves a page from an open superblock's write buffer.
func (f *FTL) bufferedPage(addr flash.BlockAddr, lwl int, typ pv.PageType, lpn int64) ([]byte, bool) {
	for _, st := range f.open {
		if st.sb != f.bySB[addr] || lwl != st.nextWL {
			continue
		}
		for lane, m := range st.sb.members {
			if m == addr && st.lpns[lane][typ] == lpn {
				return st.data[lane][typ], true
			}
		}
	}
	return nil, false
}

// gcState is the resume cursor of one in-flight garbage collection. The
// victim has left the superblock table (so nested GC can never re-pick it)
// but its members stay in bySB until the erase, keeping valid-count
// bookkeeping and RAID reconstruction working for pages not yet relocated.
type gcState struct {
	victim       *superblock
	member       int  // next member block to scan
	page         int  // next page within that member
	pendingErase bool // all pages relocated; the multi-plane erase remains
	// running guards against reentrant resumption: a relocation write can
	// recurse into maybeGC through ensureFree, which must start a fresh
	// collection rather than resume the one already on the stack.
	running bool
}

// maybeGC reclaims space until the free pool can assemble at least
// GCThreshold superblocks — the hard watermark where the write path blocks.
// In-flight partial collections are finished before new victims are picked.
// It returns the number of relocated pages and the flash latency spent.
func (f *FTL) maybeGC() (moves int, latency float64, err error) {
	return f.collectUntil(f.cfg.GCThreshold)
}

// collectUntil runs blocking collections until the free pool reaches target
// superblocks. maybeGC refills to the hard watermark; the preemptive
// emergency path refills to a single row — just enough for the write to
// proceed — and leaves the rest to stepping, so one unlucky write is never
// charged a second, from-scratch collection on top of the in-flight one.
func (f *FTL) collectUntil(target int) (moves int, latency float64, err error) {
	for f.scheme.FreeCount() < target {
		st := f.resumableGC()
		if st == nil {
			victim := f.pickVictim()
			if victim == nil {
				f.noteStarved()
				if f.scheme.FreeCount() == 0 {
					return moves, latency, ErrDeviceFull
				}
				return moves, latency, nil
			}
			st = f.pushVictim(victim)
		}
		f.stats.GCStalls++
		if f.met != nil {
			f.met.gcStalls.Inc()
		}
		m, lat, _, err := f.gcAdvance(st, 0)
		moves += m
		latency += lat
		if err != nil {
			return moves, latency, err
		}
	}
	if f.gcObs != nil && (moves > 0 || latency > 0) {
		f.gcObs(GCEvent{Moves: moves, Latency: latency, Blocking: true})
	}
	return moves, latency, nil
}

// GCStepResult reports one preemptive GC step.
type GCStepResult struct {
	Moves   int     // valid pages relocated by this step
	Erased  bool    // the step performed a victim's deferred multi-plane erase
	Latency float64 // µs of flash work the step issued
	// Idle is true when the step had nothing to do: no collection in flight
	// and the free pool at or above the soft watermark (or no reclaimable
	// victim — see Stats.GCStarved).
	Idle bool
}

// GCStep runs one increment of garbage collection: it resumes the in-flight
// collection (or starts one if the free pool is below the soft watermark),
// relocates at most pageBudget valid pages or performs the deferred erase,
// and returns. pageBudget <= 0 runs the collection to completion. Device
// front ends call it in idle windows so host requests never wait behind a
// whole-superblock collection.
func (f *FTL) GCStep(pageBudget int) (GCStepResult, error) {
	st := f.resumableGC()
	if st == nil {
		if f.scheme.FreeCount() >= f.softGC {
			return GCStepResult{Idle: true}, nil
		}
		victim := f.pickVictim()
		if victim == nil {
			f.noteStarved()
			return GCStepResult{Idle: true}, nil
		}
		st = f.pushVictim(victim)
	}
	moves, lat, erased, err := f.gcAdvance(st, pageBudget)
	f.stats.GCSteps++
	if f.met != nil {
		f.met.gcSteps.Inc()
	}
	if f.gcObs != nil {
		f.gcObs(GCEvent{Moves: moves, Erased: erased, Latency: lat})
	}
	return GCStepResult{Moves: moves, Erased: erased, Latency: lat}, err
}

// GCNeeded reports whether a GCStep would do work: a collection is in
// flight, or the free pool sits below the soft watermark.
func (f *FTL) GCNeeded() bool {
	return len(f.gcq) > 0 || f.scheme.FreeCount() < f.softGC
}

// GCDebt returns the outstanding garbage-collection work in steps' units:
// valid pages still to relocate across in-flight victims, plus one slot per
// pending erase. Zero when no collection is in flight.
func (f *FTL) GCDebt() int {
	debt := 0
	for _, st := range f.gcq {
		debt += st.victim.valid + 1
	}
	return debt
}

// GCStepPages returns the configured per-step page budget (0 = blocking GC).
func (f *FTL) GCStepPages() int { return f.cfg.GCStepPages }

// GCPressure grades how urgently a stepping front end must run GC ahead of
// host work. 0: none — host keeps strict priority and debt steps wait for
// the queue to drain. 1: the pool is down to the row reserved for the GC
// stream and the outstanding collection no longer fits the open slow
// stream's slack, so the next host assembly would stall inline — trickle one
// step per request even while backlogged. 2: the pool is empty — burst until
// the in-flight collection frees a row. A short step now is always cheaper
// than the whole collection an unlucky host write would otherwise absorb.
func (f *FTL) GCPressure() int {
	if f.cfg.GCStepPages <= 0 {
		return 0
	}
	switch free := f.scheme.FreeCount(); {
	case free == 0:
		return 2
	case free == 1 && !f.gcFitsSlowSlack():
		return 1
	}
	return 0
}

// resumableGC returns the oldest in-flight collection not already executing
// on the call stack, or nil.
func (f *FTL) resumableGC() *gcState {
	for _, st := range f.gcq {
		if !st.running {
			return st
		}
	}
	return nil
}

// pushVictim starts a collection: the victim leaves the superblock table
// (so GC work triggered by its relocation writes can never pick it again)
// and gains a resume cursor on the GC queue.
func (f *FTL) pushVictim(victim *superblock) *gcState {
	f.stats.GCRuns++
	if f.met != nil {
		f.met.gcRuns.Inc()
	}
	delete(f.sbs, victim.id)
	var st *gcState
	if n := len(f.gcPool); n > 0 {
		st = f.gcPool[n-1]
		f.gcPool = f.gcPool[:n-1]
		*st = gcState{victim: victim}
	} else {
		st = &gcState{victim: victim}
	}
	f.gcq = append(f.gcq, st)
	return st
}

// popGC removes a finished collection from the GC queue and recycles the
// cursor. The deferred running-flag reset in gcAdvance still touches it,
// which is harmless: pushVictim reinitializes every field on reuse.
func (f *FTL) popGC(st *gcState) {
	for i, q := range f.gcq {
		if q == st {
			f.gcq = append(f.gcq[:i], f.gcq[i+1:]...)
			f.gcPool = append(f.gcPool, st)
			return
		}
	}
}

// noteStarved records that GC was needed but no sealed superblock could
// reclaim space — every candidate 100% valid. The device runs degraded
// until host overwrites or trims invalidate something.
func (f *FTL) noteStarved() {
	f.stats.GCStarved++
	if f.met != nil {
		f.met.gcStarved.Set(float64(f.stats.GCStarved))
	}
}

// victimScore is the GC selection cost of a superblock under the configured
// policy (lower is better), plus an optional wear penalty — heavily cycled
// superblocks are avoided so their blocks rest while less-worn blocks absorb
// the erases.
func (f *FTL) victimScore(sb *superblock) float64 {
	total := float64(len(sb.members) * f.geo.PagesPerBlock())
	var score float64
	switch f.cfg.Victim {
	case CostBenefit:
		u := float64(sb.valid) / total
		age := float64(f.stats.Flushes-sb.sealedAt) + 1
		// Classical cost-benefit: maximize (1−u)·age / 2u; negate for a
		// lower-is-better score.
		score = -(1 - u) * age / (2*u + 1e-9)
	case FIFO:
		score = float64(sb.sealedAt)
	default: // Greedy
		score = float64(sb.valid)
	}
	if f.cfg.WearLambda > 0 {
		var meanPE float64
		for _, m := range sb.members {
			pe, err := f.arr.PECycles(m)
			if err == nil {
				meanPE += float64(pe)
			}
		}
		meanPE /= float64(len(sb.members))
		score += f.cfg.WearLambda * meanPE
	}
	return score
}

// pickVictim selects the sealed superblock with the lowest victim score that
// can reclaim space (greedy, optionally wear-aware).
func (f *FTL) pickVictim() *superblock {
	var best *superblock
	bestScore := 0.0
	for _, sb := range f.sbs {
		if !sb.sealed {
			continue
		}
		if sb.valid >= len(sb.members)*f.geo.PagesPerBlock() {
			continue // full of valid data: collecting it frees nothing
		}
		score := f.victimScore(sb)
		if best == nil || score < bestScore ||
			(score == bestScore && sb.id < best.id) {
			best = sb
			bestScore = score
		}
	}
	return best
}

// ensureFree guarantees the free pool can assemble at least one superblock,
// collecting garbage if necessary. Blocking mode refills to the hard
// watermark; preemptive mode frees the single row this assembly needs.
//
// Preemptive mode additionally reserves the last free row for the GC
// stream: relocation writes land in the slow stream, so if a host assembly
// drained the pool and the slow stream then sealed mid-collection, the
// collection could never write again and reclamation would deadlock against
// the host. The host may still take the last row when the outstanding
// collection provably fits in the open slow stream's remaining slots — the
// stream then cannot seal before the victim's erase refills the pool.
func (f *FTL) ensureFree(speed core.Speed) error {
	free := f.scheme.FreeCount()
	if free > 0 {
		if f.cfg.GCStepPages > 0 && free == 1 && speed != core.Slow && !f.gcFitsSlowSlack() {
			if _, _, err := f.collectUntil(2); err != nil {
				return err
			}
		}
		return nil
	}
	target := f.cfg.GCThreshold
	if f.cfg.GCStepPages > 0 {
		target = 1
	}
	if _, _, err := f.collectUntil(target); err != nil {
		return err
	}
	if f.scheme.FreeCount() == 0 {
		return ErrDeviceFull
	}
	return nil
}

// gcFitsSlowSlack reports whether the relocation writes still needed to
// finish the next collection (in flight, or the victim that would be picked)
// fit in the open slow stream's remaining slots. When they do, garbage
// collection can run to its erase without assembling a fresh superblock, so
// the free pool may safely drain to zero in the meantime. With nothing to
// reclaim it reports true — reserving a row for GC that cannot run is waste.
func (f *FTL) gcFitsSlowSlack() bool {
	var need int
	if st := f.resumableGC(); st != nil {
		need = st.victim.valid
	} else if v := f.pickVictim(); v != nil {
		need = v.valid
	} else {
		return true
	}
	st := f.open[core.Slow]
	if st == nil {
		return false // the slow stream itself needs the row
	}
	slack := (f.geo.LWLsPerBlock()-st.nextWL)*st.dataSlots() - st.fill
	return need <= slack
}

// gcAdvance runs one increment of the collection st: it relocates up to
// budget valid pages (budget <= 0 = unlimited) into the slow (GC) stream,
// and once the scan is done, erases the victim's members with one
// multi-plane erase and returns the blocks to the free pool. With a finite
// budget the erase is its own step: a call that relocated pages stops
// before it. On error the cursor keeps its position — st stays on the GC
// queue and a later call resumes at the failing page, so a mid-collection
// failure never orphans the victim.
func (f *FTL) gcAdvance(st *gcState, budget int) (moves int, latency float64, erased bool, err error) {
	// Everything from here to the erase is GC work: journal entries carry
	// the attribution so device tracers can separate a GC pause from host
	// work on the same chip.
	st.running = true
	f.gcDepth++
	defer func() {
		st.running = false
		f.gcDepth--
		f.stats.GCLatency += latency
	}()
	victim := st.victim
	for !st.pendingErase {
		if st.member >= len(victim.members) {
			st.pendingErase = true
			if budget > 0 && moves > 0 {
				// The erase is its own step.
				return moves, latency, false, nil
			}
			break
		}
		if st.page >= f.geo.PagesPerBlock() {
			st.member++
			st.page = 0
			continue
		}
		m := victim.members[st.member]
		ppn := f.ppn(m, 0, 0) + int64(st.page)
		lpn := f.p2l[ppn]
		if lpn < 0 {
			st.page++
			continue
		}
		if budget > 0 && moves >= budget {
			return moves, latency, false, nil
		}
		addr, lwl, typ := f.ppnLocate(ppn)
		data, rlat, rerr := f.readPage(addr, lwl, typ)
		if rerr != nil {
			return moves, latency, false, fmt.Errorf("ftl: gc read: %w", rerr)
		}
		latency += rlat
		wr, werr := f.writeInternal(lpn, data, core.GCWrite, HintNone)
		if werr != nil {
			return moves, latency, false, fmt.Errorf("ftl: gc write: %w", werr)
		}
		latency += wr.Latency
		f.stats.GCWrites++
		if f.met != nil {
			f.met.gcWrites.Inc()
		}
		moves++
		st.page++
	}
	res, eerr := f.arr.EraseMulti(victim.members)
	if eerr != nil {
		return moves, latency, false, fmt.Errorf("ftl: gc erase: %w", eerr)
	}
	latency += res.Latency
	f.stats.Erases++
	if f.met != nil {
		f.met.erases.Inc()
	}
	f.stats.EraseLatency += res.Latency
	f.stats.ExtraErs += res.Extra
	f.stats.ExtraEWMA += extraEWMAAlpha * (res.Extra - f.stats.ExtraEWMA)
	f.recordAttr('e', victim.speed == core.Fast, victim.members, res.PerMember)
	for i, m := range victim.members {
		f.noteOp(m.Chip, res.PerMember[i], 'e')
	}
	for i, m := range victim.members {
		delete(f.bySB, m)
		failed := false
		for _, fi := range res.Failed {
			if fi == i {
				failed = true
				break
			}
		}
		if failed {
			// Endurance exhausted: retire the block instead of freeing it.
			f.stats.BadBlocks++
			if err := f.scheme.Retire(m); err != nil {
				return moves, latency, false, err
			}
			continue
		}
		if err := f.scheme.AddFree(m); err != nil {
			return moves, latency, false, err
		}
	}
	f.popGC(st)
	// The victim's record and member slice return to the assembly pool.
	victim.members = victim.members[:0]
	f.sbPool = append(f.sbPool, victim)
	return moves, latency, true, nil
}

// Patrol scans up to maxPages mapped pages starting at the given logical
// page, reads each, and refreshes (relocates through the GC stream) any page
// whose raw error count exceeds the refresh threshold — the retention-loss
// management that keeps long-lived cold data readable. It returns the next
// logical page to resume from and the flash latency spent.
func (f *FTL) Patrol(startLPN int64, maxPages int, refreshAtBits int) (next int64, latency float64, err error) {
	if startLPN < 0 || startLPN >= f.logLen {
		startLPN = 0
	}
	lpn := startLPN
	scanned := 0
	for scanned < maxPages {
		if f.l2p[lpn] >= 0 {
			addr, lwl, typ := f.ppnLocate(f.l2p[lpn])
			if _, buffered := f.bufferedPage(addr, lwl, typ, lpn); !buffered {
				r, rerr := f.arr.Read(flash.PageAddr{BlockAddr: addr, LWL: lwl, Type: typ})
				f.stats.PatrolReads++
				scanned++
				latency += r.Latency
				data := r.Data
				refresh := rerr == nil && r.ErrBits >= refreshAtBits
				if rerr != nil {
					// Uncorrectable during patrol: reconstruct if possible
					// and refresh unconditionally.
					var rlat float64
					data, rlat, rerr = f.readPage(addr, lwl, typ)
					latency += rlat
					if rerr != nil {
						return lpn, latency, fmt.Errorf("ftl: patrol read lpn %d: %w", lpn, rerr)
					}
					refresh = true
				}
				if refresh {
					f.gcDepth++
					wr, werr := f.writeInternal(lpn, data, core.GCWrite, HintNone)
					f.gcDepth--
					if werr != nil {
						return lpn, latency, fmt.Errorf("ftl: patrol refresh lpn %d: %w", lpn, werr)
					}
					latency += wr.Latency
					f.stats.Refreshes++
					f.stats.GCWrites++
					if f.met != nil {
						f.met.gcWrites.Inc()
					}
				}
			}
		}
		lpn++
		if lpn == f.logLen {
			lpn = 0
		}
		if lpn == startLPN {
			break
		}
	}
	return lpn, latency, nil
}

// DrainGC runs every in-flight garbage collection to completion and returns
// the flash latency spent. Checkpointing calls it so a snapshot never holds
// a victim that is in neither the superblock table nor the free pool;
// devices call it on shutdown so pending reclamation is not lost.
func (f *FTL) DrainGC() (float64, error) {
	var total float64
	for len(f.gcq) > 0 {
		st := f.resumableGC()
		if st == nil {
			return total, fmt.Errorf("ftl: drain gc: collection already executing")
		}
		_, lat, _, err := f.gcAdvance(st, 0)
		total += lat
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Flush forces the pending super word-lines of both streams to flash.
// Partially filled word-lines are padded with empty pages.
func (f *FTL) Flush() (float64, error) {
	total := 0.0
	for _, speed := range []core.Speed{core.Fast, core.Slow} {
		st := f.open[speed]
		if st == nil || st.fill == 0 {
			continue
		}
		lat, _, err := f.flush(speed)
		if err != nil {
			return total, err
		}
		total += lat
	}
	return total, nil
}

// CheckInvariants verifies the FTL's internal consistency: mapping tables
// are mutually inverse and per-superblock valid counters agree with the
// mapping. Tests call it after workloads.
func (f *FTL) CheckInvariants() error {
	counts := make(map[int]int)
	for lpn, ppn := range f.l2p {
		if ppn < 0 {
			continue
		}
		if f.p2l[ppn] != int64(lpn) {
			return fmt.Errorf("ftl: l2p[%d]=%d but p2l[%d]=%d", lpn, ppn, ppn, f.p2l[ppn])
		}
		addr, _, _ := f.ppnLocate(ppn)
		sb := f.bySB[addr]
		if sb == nil {
			return fmt.Errorf("ftl: mapped page %d in block %v outside any superblock", ppn, addr)
		}
		counts[sb.id]++
	}
	for ppn, lpn := range f.p2l {
		if lpn >= 0 && f.l2p[lpn] != int64(ppn) {
			return fmt.Errorf("ftl: p2l[%d]=%d but l2p[%d]=%d", ppn, lpn, lpn, f.l2p[lpn])
		}
	}
	for id, sb := range f.sbs {
		if sb.valid != counts[id] {
			return fmt.Errorf("ftl: superblock %d valid=%d but mapping says %d", id, sb.valid, counts[id])
		}
	}
	return nil
}
