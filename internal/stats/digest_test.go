package stats

import (
	"math"
	"sort"
	"testing"

	"superfast/internal/prng"
)

// digestTol is the quantile error guarantee: the estimate interpolates inside
// one log-linear bucket, so it can sit at most a bucket width from the true
// sample quantile — 2/subBuckets relative, plus a little slack for the
// retained-sample interpolation convention differing across bucket edges.
const digestTol = 2.0 / subBuckets

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// checkQuantiles compares a digest against the retained-sample ground truth.
func checkQuantiles(t *testing.T, d *LatencyDigest, samples []float64) {
	t.Helper()
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	if d.Count() != uint64(len(samples)) {
		t.Fatalf("digest count %d, want %d", d.Count(), len(samples))
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
		got := d.Quantile(q)
		want := Quantile(sorted, q)
		if relErr(got, want) > digestTol {
			t.Errorf("q%.3f: digest %v, exact %v (rel err %.4f > %.4f)",
				q, got, want, relErr(got, want), digestTol)
		}
	}
	if got, want := d.Min(), sorted[0]; got != want {
		t.Errorf("min %v, want %v", got, want)
	}
	if got, want := d.Max(), sorted[len(sorted)-1]; got != want {
		t.Errorf("max %v, want %v", got, want)
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	if want := sum / float64(len(samples)); relErr(d.Mean(), want) > 1e-12 {
		t.Errorf("mean %v, want %v", d.Mean(), want)
	}
}

// digestSamples draws len-n samples from a named shape.
func digestSamples(shape string, n int, seed uint64) []float64 {
	src := prng.New(seed, 0xd16e)
	out := make([]float64, n)
	for i := range out {
		u := src.Float64()
		switch shape {
		case "uniform":
			out[i] = 50 + 5000*u
		case "exponential":
			if u >= 1 {
				u = 1 - 1e-12
			}
			out[i] = -800 * math.Log(1-u)
		case "bimodal":
			if src.Float64() < 0.85 {
				out[i] = 90 + 40*u
			} else {
				out[i] = 12000 + 3000*u
			}
		case "constant":
			out[i] = 1234.5
		case "heavy-dup":
			out[i] = float64(1 + src.Intn(5))
		}
	}
	return out
}

// TestLatencyDigestMergeMatchesRetained is the property test: samples split
// across k shard digests and merged must report the same quantiles (within
// bucket tolerance) as the retained-sample ground truth over the whole
// sample — the invariant that lets the cluster view sum per-shard digests
// instead of shipping latency arrays.
func TestLatencyDigestMergeMatchesRetained(t *testing.T) {
	for _, shape := range []string{"uniform", "exponential", "bimodal", "constant", "heavy-dup"} {
		for _, shards := range []int{1, 3, 7} {
			samples := digestSamples(shape, 5000, uint64(shards)*7+3)
			parts := make([]*LatencyDigest, shards)
			for i := range parts {
				parts[i] = &LatencyDigest{}
			}
			// Deal samples round-robin, the striping pattern the volume uses.
			for i, v := range samples {
				parts[i%shards].Observe(v)
			}
			merged := MergeDigests(parts...)
			t.Run(shape, func(t *testing.T) { checkQuantiles(t, merged, samples) })

			// Merging must be exact on the bucket counts and extrema: the
			// merged digest equals one that saw the whole stream directly
			// (the sum may differ by float addition order only).
			whole := &LatencyDigest{}
			for _, v := range samples {
				whole.Observe(v)
			}
			if merged.counts != whole.counts || merged.n != whole.n ||
				merged.min != whole.min || merged.max != whole.max {
				t.Fatalf("%s/%d shards: merged digest differs from direct digest", shape, shards)
			}
			if relErr(merged.sum, whole.sum) > 1e-9 {
				t.Fatalf("%s/%d shards: merged sum %v vs direct %v", shape, shards, merged.sum, whole.sum)
			}
		}
	}
}

func TestLatencyDigestEdgeCases(t *testing.T) {
	var d LatencyDigest
	if d.Quantile(0.5) != 0 || d.Count() != 0 || d.Mean() != 0 || d.Min() != 0 || d.Max() != 0 {
		t.Fatal("empty digest must read as zeros")
	}
	d.Observe(0)
	d.Observe(-5)
	d.Observe(math.Inf(1))
	d.Observe(math.Ldexp(1, minExp-3)) // below range → underflow bucket
	d.Observe(math.Ldexp(1, maxExp+2)) // above range → top bucket
	if d.Count() != 5 {
		t.Fatalf("count %d, want 5", d.Count())
	}
	// The low quantile's rank lands in the underflow bucket (which absorbs
	// zero, negative and sub-range values); the estimate must stay inside it.
	if got := d.Quantile(0.01); got < d.Min() || got >= math.Ldexp(1, minExp) {
		t.Fatalf("low quantile %v outside [min, underflow-hi)", got)
	}
	// The high quantile's rank lands in the overflow bucket; the estimate
	// stays in it (finite) even though the exact max is +Inf.
	overflowLo, _ := bucketBounds(digestBuckets - 1)
	if got := d.Quantile(0.9999); got < overflowLo || got > d.Max() {
		t.Fatalf("high quantile %v outside overflow bucket", got)
	}
	if d.Quantile(0) != d.Min() || d.Quantile(1) != d.Max() {
		t.Fatal("q=0/q=1 must return exact extrema")
	}

	// Merging an empty or nil digest is a no-op.
	before := d
	d.Merge(nil)
	d.Merge(&LatencyDigest{})
	if d != before {
		t.Fatal("empty merge changed the digest")
	}
	var fresh LatencyDigest
	fresh.Merge(&d)
	if fresh != d {
		t.Fatal("merge into empty digest must copy it")
	}
}

func TestLatencyDigestSummary(t *testing.T) {
	var d LatencyDigest
	for i := 1; i <= 1000; i++ {
		d.Observe(float64(i))
	}
	s := d.Summary()
	if s.N != 1000 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("summary %+v", s)
	}
	if relErr(s.P50, 500.5) > digestTol || relErr(s.P999, 999.001) > digestTol {
		t.Fatalf("summary quantiles off: %+v", s)
	}
	if relErr(s.Mean, 500.5) > 1e-12 {
		t.Fatalf("summary mean %v", s.Mean)
	}
}

func TestBucketRoundTrip(t *testing.T) {
	// Every bucket's bounds must map back into that bucket, and bucketing
	// must be monotone across a wide sweep.
	for i := 0; i < digestBuckets; i++ {
		lo, hi := bucketBounds(i)
		if i > 0 {
			if got := bucketIndex(lo); got != i {
				t.Fatalf("bucket %d: lo %v maps to %d", i, lo, got)
			}
		}
		mid := lo + (hi-lo)/2
		if got := bucketIndex(mid); got != i {
			t.Fatalf("bucket %d: mid %v maps to %d", i, mid, got)
		}
	}
	prev := -1
	for v := 1e-4; v < 1e15; v *= 1.01 {
		b := bucketIndex(v)
		if b < prev {
			t.Fatalf("bucketing not monotone at %v: %d < %d", v, b, prev)
		}
		prev = b
	}
}

func TestMergeHistograms(t *testing.T) {
	a, err := NewHistogram([]float64{1, 2, 3, 50}, 0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHistogram([]float64{-1, 4, 5}, 0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MergeHistograms(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Total() != 5 || m.Under != 1 || m.Over != 1 {
		t.Fatalf("merged %+v", m)
	}
	// The merge must equal a histogram built over the union.
	union, _ := NewHistogram([]float64{1, 2, 3, 50, -1, 4, 5}, 0, 10, 5)
	for i := range m.Counts {
		if m.Counts[i] != union.Counts[i] {
			t.Fatalf("bin %d: merged %d, union %d", i, m.Counts[i], union.Counts[i])
		}
	}

	// Layout mismatches and empty input are errors, not silent smearing.
	c, _ := NewHistogram(nil, 0, 20, 5)
	if _, err := MergeHistograms(a, c); err == nil {
		t.Fatal("range mismatch must fail")
	}
	d, _ := NewHistogram(nil, 0, 10, 4)
	if _, err := MergeHistograms(a, d); err == nil {
		t.Fatal("bin-count mismatch must fail")
	}
	if _, err := MergeHistograms(); err == nil {
		t.Fatal("empty merge must fail")
	}
	if _, err := MergeHistograms(nil, nil); err == nil {
		t.Fatal("all-nil merge must fail")
	}
}
