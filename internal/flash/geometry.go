package flash

import "fmt"

// Geometry describes the physical organization of a NAND flash array.
type Geometry struct {
	Chips          int // independent chips (chip enables)
	PlanesPerChip  int
	BlocksPerPlane int
	Layers         int // physical word-line layers per block
	Strings        int // strings per block
	PageSize       int // user-data bytes per page
	SpareSize      int // spare-area bytes per page
}

// PaperGeometry returns the configuration of the paper's testbed: chips with
// four planes of 954 blocks, 96 layers × 4 strings (384 logical word-lines,
// 1,152 TLC pages per block), 16 KiB + 2 KiB pages.
func PaperGeometry() Geometry {
	return Geometry{
		Chips:          24,
		PlanesPerChip:  4,
		BlocksPerPlane: 954,
		Layers:         96,
		Strings:        4,
		PageSize:       16 * 1024,
		SpareSize:      2 * 1024,
	}
}

// TestGeometry returns a small array that keeps unit tests fast while
// preserving all structural ratios.
func TestGeometry() Geometry {
	return Geometry{
		Chips:          4,
		PlanesPerChip:  2,
		BlocksPerPlane: 32,
		Layers:         24,
		Strings:        4,
		PageSize:       4096,
		SpareSize:      256,
	}
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	switch {
	case g.Chips <= 0:
		return fmt.Errorf("flash: Chips must be positive, got %d", g.Chips)
	case g.PlanesPerChip <= 0:
		return fmt.Errorf("flash: PlanesPerChip must be positive, got %d", g.PlanesPerChip)
	case g.BlocksPerPlane <= 0:
		return fmt.Errorf("flash: BlocksPerPlane must be positive, got %d", g.BlocksPerPlane)
	case g.Layers <= 0:
		return fmt.Errorf("flash: Layers must be positive, got %d", g.Layers)
	case g.Strings <= 0:
		return fmt.Errorf("flash: Strings must be positive, got %d", g.Strings)
	case g.PageSize <= 0:
		return fmt.Errorf("flash: PageSize must be positive, got %d", g.PageSize)
	case g.SpareSize < 0:
		return fmt.Errorf("flash: SpareSize must be non-negative, got %d", g.SpareSize)
	}
	return nil
}

// LWLsPerBlock returns the number of logical word-lines in a block.
func (g Geometry) LWLsPerBlock() int { return g.Layers * g.Strings }

// PagesPerBlock returns the number of TLC pages in a block.
func (g Geometry) PagesPerBlock() int { return g.LWLsPerBlock() * PagesPerLWL }

// Lanes returns the number of independent plane lanes (chip × plane pairs)
// available for superblock construction.
func (g Geometry) Lanes() int { return g.Chips * g.PlanesPerChip }

// TotalBlocks returns the number of blocks in the whole array.
func (g Geometry) TotalBlocks() int { return g.Lanes() * g.BlocksPerPlane }

// LaneChipPlane converts a lane index back to (chip, plane).
func (g Geometry) LaneChipPlane(lane int) (chip, plane int) {
	return lane / g.PlanesPerChip, lane % g.PlanesPerChip
}

// LWLIndex converts (layer, string) to a logical word-line index.
func (g Geometry) LWLIndex(layer, str int) int { return layer*g.Strings + str }

// LayerString converts a logical word-line index back to (layer, string).
func (g Geometry) LayerString(lwl int) (layer, str int) {
	return lwl / g.Strings, lwl % g.Strings
}
