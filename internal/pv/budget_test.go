package pv

import (
	"math"
	"testing"
)

func TestVarianceBudgetSharesSumToOne(t *testing.T) {
	m := testModel()
	comps := m.VarianceBudget(4, 100)
	if len(comps) != 7 {
		t.Fatalf("%d components", len(comps))
	}
	total := 0.0
	for _, c := range comps {
		if c.Variance < 0 {
			t.Fatalf("%s: negative variance", c.Name)
		}
		total += c.Share
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("shares sum to %v", total)
	}
}

func TestVarianceBudgetMatchesConfiguredSigmas(t *testing.T) {
	m := testModel()
	p := m.Params()
	comps := m.VarianceBudget(6, 400)
	byName := map[string]Component{}
	for _, c := range comps {
		byName[c.Name] = c
	}
	// Static WL noise variance should track the configured sigma².
	want := p.WLStaticSigma * p.WLStaticSigma
	got := byName["static word-line noise (floor)"].Variance
	if got < want*0.8 || got > want*1.2 {
		t.Fatalf("wl noise variance %v, want ≈%v", got, want)
	}
	// Block offset variance ≈ shared² + local².
	wantB := p.BlockSharedSig*p.BlockSharedSig + p.BlockLocalSig*p.BlockLocalSig
	gotB := byName["block offset (sort-matchable)"].Variance
	if gotB < wantB*0.7 || gotB > wantB*1.3 {
		t.Fatalf("block variance %v, want ≈%v", gotB, wantB)
	}
	// Quantization term is the analytic step²/12.
	if q := byName["ISPP quantization (floor)"].Variance; math.Abs(q-p.PgmStep*p.PgmStep/12) > 1e-9 {
		t.Fatalf("quantization variance %v", q)
	}
}

func TestVarianceBudgetDefaults(t *testing.T) {
	m := testModel()
	if comps := m.VarianceBudget(0, 0); len(comps) == 0 {
		t.Fatal("defaults should sample")
	}
}
