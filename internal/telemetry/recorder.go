package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
)

// Sample is one flight-recorder row: the values of every column at one
// simulated instant.
type Sample struct {
	T float64   `json:"t_us"`
	V []float64 `json:"v"`
}

// Recorder is a deterministic flight recorder: a time-series sampler driven
// by the simulated clock that snapshots a fixed column set at every multiple
// of the sampling interval, into a bounded ring buffer that keeps the newest
// window. The recorder itself never reads a wall clock — callers Tick it
// with the simulated time whenever that clock advances, and the recorder
// emits one sample per interval boundary crossed (sample-and-hold: between
// events the simulated system does not change, so held values are exact).
//
// Determinism contract: given the same sequence of Tick times and fill
// values — which the device front ends produce in serialized ticket order —
// the sample set, and therefore the CSV/JSON export bytes, are identical
// across runs and across worker counts.
//
// Safe for concurrent use; the fill callback runs under the recorder lock.
type Recorder struct {
	mu       sync.Mutex
	interval float64
	cols     []string
	ring     []Sample
	start    int   // index of the oldest sample
	n        int   // samples currently held
	last     int64 // highest boundary index sampled
}

// NewRecorder builds a recorder sampling every intervalUS simulated µs,
// keeping the newest capacity samples of the given columns.
func NewRecorder(intervalUS float64, capacity int, cols []string) (*Recorder, error) {
	if !(intervalUS > 0) {
		return nil, fmt.Errorf("telemetry: recorder interval must be positive, got %v", intervalUS)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("telemetry: recorder capacity must be positive, got %d", capacity)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("telemetry: recorder needs at least one column")
	}
	return &Recorder{
		interval: intervalUS,
		cols:     append([]string(nil), cols...),
		ring:     make([]Sample, 0, capacity),
	}, nil
}

// Interval returns the sampling interval in simulated µs.
func (r *Recorder) Interval() float64 { return r.interval }

// Columns returns the column names.
func (r *Recorder) Columns() []string { return append([]string(nil), r.cols...) }

// Tick advances the recorder to the simulated time now. For every interval
// boundary crossed since the previous Tick, fill is called once with the
// boundary time and a fresh value slice (len = number of columns) to
// populate; callers tick before applying the event that moved the clock, so
// a sample at boundary B reflects the state before the first event at or
// after B. Boundaries that would immediately fall out of the ring are
// skipped, so a clock jump costs at most capacity samples.
func (r *Recorder) Tick(now float64, fill func(t float64, vals []float64)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := int64(math.Floor(now / r.interval))
	if k <= r.last {
		return
	}
	first := r.last + 1
	if capN := int64(cap(r.ring)); k-first+1 > capN {
		first = k - capN + 1
	}
	for idx := first; idx <= k; idx++ {
		vals := make([]float64, len(r.cols))
		t := float64(idx) * r.interval
		fill(t, vals)
		r.push(Sample{T: t, V: vals})
	}
	r.last = k
}

// AlignTo advances the sampling cursor to the last boundary at or before now
// without emitting samples. Callers attaching a recorder mid-run (e.g. after
// a warm fill) use it so the elapsed history is not backfilled with
// attach-time values.
func (r *Recorder) AlignTo(now float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if k := int64(math.Floor(now / r.interval)); k > r.last {
		r.last = k
	}
}

// push appends a sample, evicting the oldest when full. Caller holds r.mu.
func (r *Recorder) push(s Sample) {
	if r.n < cap(r.ring) {
		r.ring = append(r.ring, s)
		r.n++
		return
	}
	r.ring[r.start] = s
	r.start = (r.start + 1) % cap(r.ring)
}

// Len returns the number of samples currently held.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Samples returns the held samples, oldest first.
func (r *Recorder) Samples() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.ring[(r.start+i)%cap(r.ring)])
	}
	return out
}

// WriteCSV writes the held samples as CSV: a "t_us,<col>,..." header, then
// one row per sample, oldest first, values in shortest-round-trip fixed-point
// formatting (integral counters render without decimals). The bytes are
// deterministic given the same samples.
func (r *Recorder) WriteCSV(w io.Writer) error {
	samples := r.Samples()
	bw := bufio.NewWriter(w)
	bw.WriteString("t_us")
	for _, c := range r.cols {
		bw.WriteByte(',')
		bw.WriteString(c)
	}
	bw.WriteByte('\n')
	for _, s := range samples {
		bw.WriteString(formatUS(s.T))
		for _, v := range s.V {
			bw.WriteByte(',')
			bw.WriteString(formatUS(v))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// recorderJSON is the JSON export shape.
type recorderJSON struct {
	IntervalUS float64  `json:"interval_us"`
	Columns    []string `json:"columns"`
	Samples    []Sample `json:"samples"`
}

// WriteJSON writes the held samples as indented JSON with the interval and
// column names. Deterministic for the same samples.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recorderJSON{
		IntervalUS: r.interval,
		Columns:    r.Columns(),
		Samples:    r.Samples(),
	})
}
