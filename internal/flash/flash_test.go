package flash

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"superfast/internal/pv"
)

func testArray(t testing.TB) *Array {
	t.Helper()
	g := TestGeometry()
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	a, err := NewArray(g, pv.New(p), DefaultECC())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestGeometryValidate(t *testing.T) {
	if err := PaperGeometry().Validate(); err != nil {
		t.Fatalf("paper geometry invalid: %v", err)
	}
	if err := TestGeometry().Validate(); err != nil {
		t.Fatalf("test geometry invalid: %v", err)
	}
	bad := TestGeometry()
	bad.Chips = 0
	if bad.Validate() == nil {
		t.Fatal("zero chips should be invalid")
	}
	bad = TestGeometry()
	bad.SpareSize = -1
	if bad.Validate() == nil {
		t.Fatal("negative spare should be invalid")
	}
}

func TestGeometryDerived(t *testing.T) {
	g := PaperGeometry()
	if got := g.LWLsPerBlock(); got != 384 {
		t.Errorf("LWLsPerBlock = %d, want 384", got)
	}
	if got := g.PagesPerBlock(); got != 1152 {
		t.Errorf("PagesPerBlock = %d, want 1152 (paper §VI-A)", got)
	}
	if got := g.Lanes(); got != 96 {
		t.Errorf("Lanes = %d, want 96", got)
	}
}

func TestLWLIndexRoundTrip(t *testing.T) {
	g := TestGeometry()
	f := func(lwl uint16) bool {
		i := int(lwl) % g.LWLsPerBlock()
		l, s := g.LayerString(i)
		return g.LWLIndex(l, s) == i && l >= 0 && l < g.Layers && s >= 0 && s < g.Strings
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewArrayGeometryMismatch(t *testing.T) {
	g := TestGeometry()
	p := pv.DefaultParams() // 96 layers, geometry has 24
	if _, err := NewArray(g, pv.New(p), DefaultECC()); err == nil {
		t.Fatal("expected geometry mismatch error")
	}
}

func TestEraseProgramReadCycle(t *testing.T) {
	a := testArray(t)
	addr := BlockAddr{Chip: 1, Plane: 0, Block: 3}
	if _, err := a.Erase(addr); err != nil {
		t.Fatal(err)
	}
	payload := [][]byte{[]byte("lsb-data"), []byte("csb-data"), []byte("msb-data")}
	lat, err := a.Program(addr, 0, payload)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatalf("program latency = %v, want > 0", lat)
	}
	for tp := 0; tp < PagesPerLWL; tp++ {
		res, err := a.Read(PageAddr{BlockAddr: addr, LWL: 0, Type: pv.PageType(tp)})
		if err != nil {
			t.Fatalf("read type %d: %v", tp, err)
		}
		if !bytes.Equal(res.Data, payload[tp]) {
			t.Fatalf("read type %d = %q, want %q", tp, res.Data, payload[tp])
		}
		if res.Latency <= 0 {
			t.Fatalf("read latency = %v", res.Latency)
		}
	}
}

func TestProgramRequiresErase(t *testing.T) {
	a := testArray(t)
	addr := BlockAddr{}
	// A fresh block starts erased (nextLWL 0), so program once, then try to
	// reprogram the same word-line.
	if _, err := a.Program(addr, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Program(addr, 0, nil); !errors.Is(err, ErrAlreadyWritten) {
		t.Fatalf("reprogram should fail with ErrAlreadyWritten, got %v", err)
	}
}

func TestProgramSequentialOrder(t *testing.T) {
	a := testArray(t)
	addr := BlockAddr{Block: 1}
	if _, err := a.Program(addr, 2, nil); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("skipping word-lines should fail, got %v", err)
	}
	if _, err := a.Program(addr, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Program(addr, 1, nil); err != nil {
		t.Fatal(err)
	}
	if got := a.NextLWL(addr); got != 2 {
		t.Fatalf("NextLWL = %d, want 2", got)
	}
}

func TestEraseResetsBlock(t *testing.T) {
	a := testArray(t)
	addr := BlockAddr{Chip: 2, Plane: 1, Block: 7}
	if _, err := a.Program(addr, 0, [][]byte{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Erase(addr); err != nil {
		t.Fatal(err)
	}
	if got := a.NextLWL(addr); got != 0 {
		t.Fatalf("NextLWL after erase = %d, want 0", got)
	}
	_, err := a.Read(PageAddr{BlockAddr: addr, LWL: 0, Type: pv.LSB})
	if !errors.Is(err, ErrNotProgrammed) {
		t.Fatalf("read after erase should fail with ErrNotProgrammed, got %v", err)
	}
	pe, _ := a.PECycles(addr)
	if pe != 1 {
		t.Fatalf("PECycles = %d, want 1", pe)
	}
}

func TestReadUnprogrammed(t *testing.T) {
	a := testArray(t)
	_, err := a.Read(PageAddr{BlockAddr: BlockAddr{Block: 9}, LWL: 3, Type: pv.CSB})
	if !errors.Is(err, ErrNotProgrammed) {
		t.Fatalf("got %v, want ErrNotProgrammed", err)
	}
}

func TestBadAddresses(t *testing.T) {
	a := testArray(t)
	bad := []BlockAddr{
		{Chip: -1}, {Chip: 99}, {Plane: 99}, {Block: -5}, {Block: 9999},
	}
	for _, addr := range bad {
		if _, err := a.Erase(addr); !errors.Is(err, ErrBadAddress) {
			t.Errorf("Erase(%v) = %v, want ErrBadAddress", addr, err)
		}
	}
	if _, err := a.Program(BlockAddr{}, -1, nil); !errors.Is(err, ErrBadAddress) {
		t.Errorf("negative lwl: %v", err)
	}
	if _, err := a.Program(BlockAddr{}, a.Geometry().LWLsPerBlock(), nil); !errors.Is(err, ErrBadAddress) {
		t.Errorf("lwl too large: %v", err)
	}
	if _, err := a.Read(PageAddr{BlockAddr: BlockAddr{}, LWL: 0, Type: pv.NumPageTypes}); !errors.Is(err, ErrBadAddress) {
		t.Errorf("bad page type: %v", err)
	}
}

func TestMultiPlaneEraseMaxSemantics(t *testing.T) {
	a := testArray(t)
	addrs := []BlockAddr{
		{Chip: 0, Plane: 0, Block: 1},
		{Chip: 1, Plane: 0, Block: 2},
		{Chip: 2, Plane: 0, Block: 3},
		{Chip: 3, Plane: 0, Block: 4},
	}
	res, err := a.EraseMulti(addrs)
	if err != nil {
		t.Fatal(err)
	}
	max, min := res.PerMember[0], res.PerMember[0]
	for _, v := range res.PerMember {
		if v > max {
			max = v
		}
		if v < min {
			min = v
		}
	}
	if res.Latency != max {
		t.Errorf("Latency = %v, want max %v", res.Latency, max)
	}
	if res.Extra != max-min {
		t.Errorf("Extra = %v, want %v", res.Extra, max-min)
	}
	if res.Extra < 0 {
		t.Error("Extra must be non-negative")
	}
}

func TestMultiPlaneLaneConflict(t *testing.T) {
	a := testArray(t)
	addrs := []BlockAddr{
		{Chip: 0, Plane: 0, Block: 1},
		{Chip: 0, Plane: 0, Block: 2}, // same lane
	}
	if _, err := a.EraseMulti(addrs); !errors.Is(err, ErrLaneConflict) {
		t.Fatalf("got %v, want ErrLaneConflict", err)
	}
	if _, err := a.EraseMulti(nil); !errors.Is(err, ErrEmptyMultiOp) {
		t.Fatalf("got %v, want ErrEmptyMultiOp", err)
	}
}

func TestMultiPlaneProgram(t *testing.T) {
	a := testArray(t)
	addrs := []BlockAddr{
		{Chip: 0, Plane: 1, Block: 5},
		{Chip: 1, Plane: 1, Block: 6},
	}
	pages := [][][]byte{
		{[]byte("a0"), []byte("a1"), []byte("a2")},
		{[]byte("b0"), []byte("b1"), []byte("b2")},
	}
	res, err := a.ProgramMulti(addrs, 0, pages)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerMember) != 2 || res.Latency <= 0 {
		t.Fatalf("unexpected result %+v", res)
	}
	r, err := a.Read(PageAddr{BlockAddr: addrs[1], LWL: 0, Type: pv.CSB})
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Data) != "b1" {
		t.Fatalf("read back %q, want b1", r.Data)
	}
	if _, err := a.ProgramMulti(addrs, 1, [][][]byte{{[]byte("x")}}); err == nil {
		t.Fatal("mismatched page-set count should fail")
	}
}

func TestLWLLatenciesRecorded(t *testing.T) {
	a := testArray(t)
	addr := BlockAddr{Chip: 3, Plane: 1, Block: 0}
	want := make([]float64, 3)
	for lwl := 0; lwl < 3; lwl++ {
		lat, err := a.Program(addr, lwl, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[lwl] = lat
	}
	got, err := a.LWLLatencies(addr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got[i] != want[i] {
			t.Errorf("lwl %d latency = %v, want %v", i, got[i], want[i])
		}
	}
	if got[3] != 0 {
		t.Errorf("unprogrammed lwl latency = %v, want 0", got[3])
	}
}

func TestCounters(t *testing.T) {
	a := testArray(t)
	addr := BlockAddr{Block: 12}
	if _, err := a.Erase(addr); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Program(addr, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Read(PageAddr{BlockAddr: addr, LWL: 0, Type: pv.LSB}); err != nil {
		t.Fatal(err)
	}
	c := a.Counters()
	if c.Erases != 1 || c.Programs != 1 || c.Reads != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if c.EraseTime <= 0 || c.ProgramTime <= 0 || c.ReadTime <= 0 {
		t.Fatalf("times not accumulated: %+v", c)
	}
}

func TestSetPECyclesAffectsLatency(t *testing.T) {
	a := testArray(t)
	addr := BlockAddr{Chip: 1, Plane: 1, Block: 20}
	if err := a.SetPECycles(addr, 3000); err != nil {
		t.Fatal(err)
	}
	pe, _ := a.PECycles(addr)
	if pe != 3000 {
		t.Fatalf("PECycles = %d", pe)
	}
	if err := a.SetPECycles(addr, -1); err == nil {
		t.Fatal("negative P/E should fail")
	}
}

func TestRetentionIncreasesErrors(t *testing.T) {
	g := TestGeometry()
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	p.RBERBase = 4e-5
	a := MustNewArray(g, pv.New(p), ECCConfig{CorrectableBits: 2, RetryBits: 100000, RetryPenalty: 50, MaxRetries: 2})
	addr := BlockAddr{Block: 2}
	if _, err := a.Program(addr, 0, [][]byte{[]byte("d")}); err != nil {
		t.Fatal(err)
	}
	r1, err := a.Read(PageAddr{BlockAddr: addr, LWL: 0, Type: pv.LSB})
	if err != nil {
		t.Fatal(err)
	}
	a.AddRetention(6)
	r2, err := a.Read(PageAddr{BlockAddr: addr, LWL: 0, Type: pv.LSB})
	if err != nil {
		t.Fatal(err)
	}
	if r2.ErrBits <= r1.ErrBits {
		t.Fatalf("retention should raise error bits: before=%d after=%d", r1.ErrBits, r2.ErrBits)
	}
}

func TestUncorrectableRead(t *testing.T) {
	g := TestGeometry()
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	p.RBERBase = 1e-3
	a := MustNewArray(g, pv.New(p), ECCConfig{CorrectableBits: 1, RetryBits: 2, RetryPenalty: 50, MaxRetries: 2})
	addr := BlockAddr{Block: 4}
	if _, err := a.Program(addr, 0, [][]byte{[]byte("d")}); err != nil {
		t.Fatal(err)
	}
	_, err := a.Read(PageAddr{BlockAddr: addr, LWL: 0, Type: pv.LSB})
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("got %v, want ErrUncorrectable", err)
	}
	if a.Counters().ReadFails != 1 {
		t.Fatalf("ReadFails = %d, want 1", a.Counters().ReadFails)
	}
}

func TestProgramFullBlock(t *testing.T) {
	a := testArray(t)
	addr := BlockAddr{Chip: 2, Plane: 0, Block: 11}
	n := a.Geometry().LWLsPerBlock()
	for lwl := 0; lwl < n; lwl++ {
		if _, err := a.Program(addr, lwl, nil); err != nil {
			t.Fatalf("lwl %d: %v", lwl, err)
		}
	}
	if !a.IsFull(addr) {
		t.Fatal("block should be full")
	}
	if _, err := a.Program(addr, n-1, nil); err == nil {
		t.Fatal("programming a full block should fail")
	}
}

func TestProgramTooManyPages(t *testing.T) {
	a := testArray(t)
	pages := make([][]byte, PagesPerLWL+1)
	if _, err := a.Program(BlockAddr{Block: 6}, 0, pages); err == nil {
		t.Fatal("too many pages should fail")
	}
}

func TestDataIsolationAfterProgram(t *testing.T) {
	a := testArray(t)
	addr := BlockAddr{Block: 8}
	buf := []byte("mutate-me")
	if _, err := a.Program(addr, 0, [][]byte{buf}); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	r, err := a.Read(PageAddr{BlockAddr: addr, LWL: 0, Type: pv.LSB})
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Data) != "mutate-me" {
		t.Fatalf("stored data aliased caller buffer: %q", r.Data)
	}
}

func TestReadWriteProperty(t *testing.T) {
	a := testArray(t)
	g := a.Geometry()
	type op struct {
		Block uint8
		Data  []byte
	}
	cursor := map[BlockAddr]int{}
	f := func(ops []op) bool {
		for _, o := range ops {
			addr := BlockAddr{
				Chip:  int(o.Block) % g.Chips,
				Plane: (int(o.Block) / g.Chips) % g.PlanesPerChip,
				Block: int(o.Block) % g.BlocksPerPlane,
			}
			lwl := cursor[addr]
			if lwl >= g.LWLsPerBlock() {
				if _, err := a.Erase(addr); err != nil {
					return false
				}
				lwl = 0
			}
			if _, err := a.Program(addr, lwl, [][]byte{o.Data}); err != nil {
				return false
			}
			cursor[addr] = lwl + 1
			r, err := a.Read(PageAddr{BlockAddr: addr, LWL: lwl, Type: pv.LSB})
			if err != nil {
				return false
			}
			if !bytes.Equal(r.Data, o.Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkProgramWordLine(b *testing.B) {
	g := TestGeometry()
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	p.EnduranceBase = 0 // the benchmark cycles one block far past any real endurance
	a := MustNewArray(g, pv.New(p), DefaultECC())
	addr := BlockAddr{}
	lwl := 0
	for i := 0; i < b.N; i++ {
		if lwl == g.LWLsPerBlock() {
			if _, err := a.Erase(addr); err != nil {
				b.Fatal(err)
			}
			lwl = 0
		}
		if _, err := a.Program(addr, lwl, nil); err != nil {
			b.Fatal(err)
		}
		lwl++
	}
}

func TestReadMultiSuperpage(t *testing.T) {
	a := testArray(t)
	blocks := []BlockAddr{
		{Chip: 0, Plane: 0, Block: 3},
		{Chip: 1, Plane: 0, Block: 4},
		{Chip: 2, Plane: 0, Block: 5},
	}
	for i, b := range blocks {
		if _, err := a.Program(b, 0, [][]byte{[]byte{byte(i)}, nil, nil}); err != nil {
			t.Fatal(err)
		}
	}
	pages := make([]PageAddr, len(blocks))
	for i, b := range blocks {
		pages[i] = PageAddr{BlockAddr: b, LWL: 0, Type: pv.LSB}
	}
	results, op, err := a.ReadMulti(pages)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if len(r.Data) != 1 || r.Data[0] != byte(i) {
			t.Fatalf("member %d read %v", i, r.Data)
		}
	}
	max := results[0].Latency
	for _, r := range results {
		if r.Latency > max {
			max = r.Latency
		}
	}
	if op.Latency != max {
		t.Fatalf("superpage read latency %v, want max %v", op.Latency, max)
	}
	if op.Extra < 0 {
		t.Fatal("negative extra latency")
	}
}

func TestReadMultiErrors(t *testing.T) {
	a := testArray(t)
	if _, _, err := a.ReadMulti(nil); !errors.Is(err, ErrEmptyMultiOp) {
		t.Fatalf("got %v", err)
	}
	dup := []PageAddr{
		{BlockAddr: BlockAddr{Block: 1}},
		{BlockAddr: BlockAddr{Block: 2}},
	}
	if _, _, err := a.ReadMulti(dup); !errors.Is(err, ErrLaneConflict) {
		t.Fatalf("got %v", err)
	}
	unprogrammed := []PageAddr{{BlockAddr: BlockAddr{Block: 1}, LWL: 0, Type: pv.LSB}}
	if _, _, err := a.ReadMulti(unprogrammed); !errors.Is(err, ErrNotProgrammed) {
		t.Fatalf("got %v", err)
	}
}

func TestRetentionResetsOnFirstProgram(t *testing.T) {
	a := testArray(t)
	addr := BlockAddr{Block: 14}
	a.AddRetention(6)
	// First program after the bake starts a fresh data age.
	if _, err := a.Program(addr, 0, [][]byte{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	fresh, err := a.Read(PageAddr{BlockAddr: addr, LWL: 0, Type: pv.LSB})
	if err != nil {
		t.Fatal(err)
	}
	// An already-programmed block keeps aging.
	a.AddRetention(6)
	aged, err := a.Read(PageAddr{BlockAddr: addr, LWL: 0, Type: pv.LSB})
	if err != nil {
		t.Fatal(err)
	}
	if aged.ErrBits <= fresh.ErrBits {
		t.Fatalf("bake after program should raise errors: %d -> %d", fresh.ErrBits, aged.ErrBits)
	}
}

func TestProgramOOBRoundTrip(t *testing.T) {
	a := testArray(t)
	addr := BlockAddr{Chip: 1, Plane: 1, Block: 9}
	oob := [][]byte{[]byte("tag0"), nil, []byte("tag2")}
	if _, err := a.ProgramOOB(addr, 0, nil, oob); err != nil {
		t.Fatal(err)
	}
	got, err := a.ReadOOB(PageAddr{BlockAddr: addr, LWL: 0, Type: pv.LSB})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "tag0" {
		t.Fatalf("oob = %q", got)
	}
	got, err = a.ReadOOB(PageAddr{BlockAddr: addr, LWL: 0, Type: pv.CSB})
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("missing oob should be nil, got %q", got)
	}
	// Erase clears the spare area.
	if _, err := a.Erase(addr); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadOOB(PageAddr{BlockAddr: addr, LWL: 0, Type: pv.LSB}); !errors.Is(err, ErrNotProgrammed) {
		t.Fatalf("got %v", err)
	}
}

func TestProgramOOBValidation(t *testing.T) {
	a := testArray(t)
	addr := BlockAddr{Block: 7}
	big := make([]byte, a.Geometry().SpareSize+1)
	if _, err := a.ProgramOOB(addr, 0, nil, [][]byte{big}); err == nil {
		t.Fatal("oversized oob should fail")
	}
	if _, err := a.ProgramOOB(addr, 0, nil, make([][]byte, PagesPerLWL+1)); err == nil {
		t.Fatal("too many oob entries should fail")
	}
	if _, err := a.ReadOOB(PageAddr{BlockAddr: BlockAddr{Chip: 99}}); !errors.Is(err, ErrBadAddress) {
		t.Fatal("bad address should fail")
	}
}
