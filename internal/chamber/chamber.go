// Package chamber is the characterization testbed that stands in for the
// paper's hardware platform (four SMI SM2259XT controllers, 24 NAND packages
// and a KSON thermal chamber): it cycles blocks to target P/E counts, applies
// high-temperature data-retention bakes, and measures block erase and
// word-line program latencies into block profiles.
//
// Two measurement paths exist. MeasureBlock drives the real flash state
// machine (erase, then program every word-line), consuming one P/E cycle per
// pass, exactly as the hardware testbed would. FastProfile queries the
// variation model directly with a fresh jitter nonce; it produces the same
// distribution (Program's latency comes straight from the model) without
// mutating array state, which keeps the large parameter sweeps tractable.
package chamber

import (
	"fmt"

	"superfast/internal/assembly"
	"superfast/internal/flash"
	"superfast/internal/profile"
	"superfast/internal/pv"
)

// Testbed measures a flash array.
type Testbed struct {
	arr   *flash.Array
	nonce uint64
}

// nonceBase is where a fresh testbed's measurement-jitter stream starts.
const nonceBase = 0x7e57_0000_0000_0000

// New wraps an array in a testbed.
func New(arr *flash.Array) *Testbed {
	return &Testbed{arr: arr, nonce: nonceBase}
}

// NewSeeded wraps an array in a testbed whose measurement-jitter stream is
// derived from the given seed — an independent stream per seed, for
// harnesses that want decorrelated repeat measurements.
func NewSeeded(arr *flash.Array, seed uint64) *Testbed {
	return &Testbed{arr: arr, nonce: nonceBase ^ (seed * 0x9e3779b97f4a7c15)}
}

// NewOffset wraps an array in a testbed whose jitter stream starts skip
// draws into the stream of New — fast-forwarding past measurements another
// testbed already consumed. Parallel experiment harnesses hand each task
// the offset a serial run would have reached, which makes concurrent
// results byte-identical to serial ones.
func NewOffset(arr *flash.Array, skip uint64) *Testbed {
	return &Testbed{arr: arr, nonce: nonceBase + skip}
}

// Array returns the underlying array.
func (t *Testbed) Array() *flash.Array { return t.arr }

// CycleAllTo fast-forwards every block's wear state to the target P/E count
// (blocks already beyond the target are left untouched), the equivalent of
// the chamber's pre-cycling step.
func (t *Testbed) CycleAllTo(pe int) error {
	g := t.arr.Geometry()
	for lane := 0; lane < g.Lanes(); lane++ {
		chip, plane := g.LaneChipPlane(lane)
		for b := 0; b < g.BlocksPerPlane; b++ {
			addr := flash.BlockAddr{Chip: chip, Plane: plane, Block: b}
			cur, err := t.arr.PECycles(addr)
			if err != nil {
				return err
			}
			if cur < pe {
				if err := t.arr.SetPECycles(addr, pe); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Bake applies one high-temperature data-retention step to the whole array.
func (t *Testbed) Bake(units float64) { t.arr.AddRetention(units) }

// MeasureBlock characterizes one block through the real flash operations:
// an erase (measuring tBERS) followed by programming every word-line
// (measuring tPROG per word-line). It consumes one P/E cycle.
func (t *Testbed) MeasureBlock(lane int, block int) (*profile.BlockProfile, error) {
	g := t.arr.Geometry()
	chip, plane := g.LaneChipPlane(lane)
	addr := flash.BlockAddr{Chip: chip, Plane: plane, Block: block}
	ers, err := t.arr.Erase(addr)
	if err != nil {
		return nil, fmt.Errorf("chamber: erase %v: %w", addr, err)
	}
	lwl := make([]float64, g.LWLsPerBlock())
	for i := range lwl {
		lat, err := t.arr.Program(addr, i, nil)
		if err != nil {
			return nil, fmt.Errorf("chamber: program %v lwl %d: %w", addr, i, err)
		}
		lwl[i] = lat
	}
	pe, err := t.arr.PECycles(addr)
	if err != nil {
		return nil, err
	}
	return profile.NewBlockProfile(lane, block, g.Layers, g.Strings, lwl, ers, pe), nil
}

// FastProfile characterizes one block by querying the variation model
// directly at the given P/E count, without touching array state. Each call
// draws a fresh measurement nonce, so repeated calls observe independent
// temporal jitter — exactly like repeated hardware measurements.
func (t *Testbed) FastProfile(lane, block, pe int) *profile.BlockProfile {
	g := t.arr.Geometry()
	// Query through the array's latency kernel: sweeps re-measure the same
	// blocks at every P/E step, and the kernel serves the static components
	// from the tables the array itself programs and erases through —
	// bit-identical to the direct model (see pv.Kernel).
	k := t.arr.Kernel()
	chip, plane := g.LaneChipPlane(lane)
	lwl := make([]float64, g.LWLsPerBlock())
	// The batch row fill consumes the same nonce per word-line as the
	// per-call loop below (entry i draws nonce+1+i), so both paths measure
	// identical latencies; the loop remains as the fallback for blocks the
	// kernel does not cover.
	if k.ProgramLatencyBlock(chip, plane, block, pe, t.nonce, lwl) {
		t.nonce += uint64(len(lwl))
	} else {
		for layer := 0; layer < g.Layers; layer++ {
			for s := 0; s < g.Strings; s++ {
				t.nonce++
				lwl[g.LWLIndex(layer, s)] = k.ProgramLatency(pv.Coord{
					Chip: chip, Plane: plane, Block: block, Layer: layer, String: s,
				}, pe, t.nonce)
			}
		}
	}
	t.nonce++
	ers := k.EraseLatency(chip, plane, block, pe, t.nonce)
	return profile.NewBlockProfile(lane, block, g.Layers, g.Strings, lwl, ers, pe)
}

// MeasureLane characterizes a range of blocks on one lane. With fast=true it
// uses FastProfile; otherwise it drives the real operations.
func (t *Testbed) MeasureLane(lane int, blocks []int, pe int, fast bool) ([]*profile.BlockProfile, error) {
	out := make([]*profile.BlockProfile, len(blocks))
	for i, b := range blocks {
		if fast {
			out[i] = t.FastProfile(lane, b, pe)
			continue
		}
		p, err := t.MeasureBlock(lane, b)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// LaneGroup is a set of lanes organized into superblocks together. The paper
// groups four chips; GroupLanes builds groups whose lanes come from distinct
// chips whenever the geometry allows it.
type LaneGroup struct {
	Lanes []int
}

// GroupLanes partitions the array's lanes into groups of the given size.
// Lanes are assigned round-robin over chips so a group's members sit on
// different chips (cross-chip process variation is what assembly fights).
// Leftover lanes that cannot fill a group are dropped.
func GroupLanes(g flash.Geometry, size int) []LaneGroup {
	if size <= 0 {
		return nil
	}
	// Order lanes chip-major-rotated: plane 0 of every chip, then plane 1...
	order := make([]int, 0, g.Lanes())
	for plane := 0; plane < g.PlanesPerChip; plane++ {
		for chip := 0; chip < g.Chips; chip++ {
			order = append(order, chip*g.PlanesPerChip+plane)
		}
	}
	var groups []LaneGroup
	for i := 0; i+size <= len(order); i += size {
		groups = append(groups, LaneGroup{Lanes: append([]int(nil), order[i:i+size]...)})
	}
	return groups
}

// MeasureGroup characterizes the given blocks on every lane of a group and
// returns assembly-ready lanes.
func (t *Testbed) MeasureGroup(grp LaneGroup, blocks []int, pe int, fast bool) ([]assembly.Lane, error) {
	lanes := make([]assembly.Lane, len(grp.Lanes))
	for i, lane := range grp.Lanes {
		ps, err := t.MeasureLane(lane, blocks, pe, fast)
		if err != nil {
			return nil, err
		}
		lanes[i] = assembly.Lane{ID: lane, Blocks: ps}
	}
	return lanes, nil
}

// BlockRange returns the block indices [lo, hi).
func BlockRange(lo, hi int) []int {
	if hi <= lo {
		return nil
	}
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
