package chamber

import (
	"math"
	"testing"

	"superfast/internal/flash"
	"superfast/internal/pv"
)

func testBed(t testing.TB, jitter float64) *Testbed {
	t.Helper()
	g := flash.TestGeometry()
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	p.PgmJitterSigma = jitter
	p.ErsJitterSigma = jitter
	p.PgmWearNoise = 0
	arr, err := flash.NewArray(g, pv.New(p), flash.DefaultECC())
	if err != nil {
		t.Fatal(err)
	}
	return New(arr)
}

func TestMeasureBlockRealPath(t *testing.T) {
	tb := testBed(t, 1.5)
	p, err := tb.MeasureBlock(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := tb.Array().Geometry()
	if len(p.LWL) != g.LWLsPerBlock() {
		t.Fatalf("profile has %d word-lines, want %d", len(p.LWL), g.LWLsPerBlock())
	}
	for i, v := range p.LWL {
		if v <= 0 {
			t.Fatalf("lwl %d latency %v", i, v)
		}
	}
	if p.Erase <= 0 || p.PgmSum <= 0 {
		t.Fatalf("profile %+v", p)
	}
	// The measurement consumed one P/E cycle.
	pe, err := tb.Array().PECycles(flash.BlockAddr{Block: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pe != 1 {
		t.Fatalf("P/E after measurement = %d, want 1", pe)
	}
}

func TestFastProfileMatchesRealPathWithoutJitter(t *testing.T) {
	// With zero temporal jitter the two measurement paths must agree
	// exactly: FastProfile is the real path minus state mutation.
	tbReal := testBed(t, 0)
	tbFast := testBed(t, 0)
	real, err := tbReal.MeasureBlock(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	// MeasureBlock erases first, so the real profile is at P/E 0 → the
	// block was cycled to 1 but latencies were drawn at the pre-increment
	// count inside Erase and post-increment inside Program. Match that:
	// erase at pe=0, programs at pe=1.
	fastErs := tbFast.Array().Model().EraseLatency(1, 0, 7, 0, 1)
	_ = fastErs
	fast := tbFast.FastProfile(2, 7, 1)
	for i := range real.LWL {
		if math.Abs(real.LWL[i]-fast.LWL[i]) > 1e-9 {
			t.Fatalf("lwl %d: real %v fast %v", i, real.LWL[i], fast.LWL[i])
		}
	}
}

func TestFastProfileJitterVaries(t *testing.T) {
	tb := testBed(t, 2.0)
	a := tb.FastProfile(0, 5, 0)
	b := tb.FastProfile(0, 5, 0)
	diff := false
	for i := range a.LWL {
		if a.LWL[i] != b.LWL[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("repeated fast measurements should differ by temporal jitter")
	}
}

func TestCycleAllTo(t *testing.T) {
	tb := testBed(t, 1)
	if err := tb.CycleAllTo(500); err != nil {
		t.Fatal(err)
	}
	g := tb.Array().Geometry()
	pe, err := tb.Array().PECycles(flash.BlockAddr{Chip: g.Chips - 1, Plane: g.PlanesPerChip - 1, Block: g.BlocksPerPlane - 1})
	if err != nil {
		t.Fatal(err)
	}
	if pe != 500 {
		t.Fatalf("P/E = %d, want 500", pe)
	}
	// Cycling backwards must not reduce wear.
	if err := tb.CycleAllTo(100); err != nil {
		t.Fatal(err)
	}
	pe, _ = tb.Array().PECycles(flash.BlockAddr{})
	if pe != 500 {
		t.Fatalf("P/E after backwards cycle = %d, want 500", pe)
	}
}

func TestMeasureLane(t *testing.T) {
	tb := testBed(t, 1)
	ps, err := tb.MeasureLane(1, BlockRange(0, 5), 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 5 {
		t.Fatalf("got %d profiles", len(ps))
	}
	for i, p := range ps {
		if p.Lane != 1 || p.Block != i {
			t.Fatalf("profile %d: lane %d block %d", i, p.Lane, p.Block)
		}
	}
	ps, err = tb.MeasureLane(0, BlockRange(0, 2), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("real path: got %d profiles", len(ps))
	}
}

func TestGroupLanesDistinctChips(t *testing.T) {
	g := flash.TestGeometry() // 4 chips × 2 planes = 8 lanes
	groups := GroupLanes(g, 4)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	for _, grp := range groups {
		chips := map[int]bool{}
		for _, lane := range grp.Lanes {
			chip, _ := g.LaneChipPlane(lane)
			if chips[chip] {
				t.Fatalf("group %v repeats a chip", grp.Lanes)
			}
			chips[chip] = true
		}
	}
	if GroupLanes(g, 0) != nil {
		t.Fatal("size 0 should yield nil")
	}
	if got := GroupLanes(g, 99); got != nil {
		t.Fatalf("oversized groups should be dropped, got %v", got)
	}
}

func TestMeasureGroup(t *testing.T) {
	tb := testBed(t, 1)
	g := tb.Array().Geometry()
	groups := GroupLanes(g, 4)
	lanes, err := tb.MeasureGroup(groups[0], BlockRange(0, 6), 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(lanes) != 4 {
		t.Fatalf("got %d lanes", len(lanes))
	}
	for _, l := range lanes {
		if len(l.Blocks) != 6 {
			t.Fatalf("lane %d has %d blocks", l.ID, len(l.Blocks))
		}
	}
}

func TestBlockRange(t *testing.T) {
	r := BlockRange(4, 8)
	if len(r) != 4 || r[0] != 4 || r[3] != 7 {
		t.Fatalf("BlockRange = %v", r)
	}
	if BlockRange(5, 5) != nil || BlockRange(9, 2) != nil {
		t.Fatal("empty ranges should be nil")
	}
}

func TestBakeIncreasesRetention(t *testing.T) {
	tb := testBed(t, 1)
	addr := flash.BlockAddr{Block: 1}
	if _, err := tb.Array().Program(addr, 0, [][]byte{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	r1, err := tb.Array().Read(flash.PageAddr{BlockAddr: addr, LWL: 0, Type: pv.LSB})
	if err != nil {
		t.Fatal(err)
	}
	tb.Bake(6)
	r2, err := tb.Array().Read(flash.PageAddr{BlockAddr: addr, LWL: 0, Type: pv.LSB})
	if err != nil {
		t.Fatal(err)
	}
	if r2.ErrBits <= r1.ErrBits {
		t.Fatalf("bake should raise error bits: %d -> %d", r1.ErrBits, r2.ErrBits)
	}
}

func BenchmarkFastProfile(b *testing.B) {
	tb := testBed(b, 1.5)
	for i := 0; i < b.N; i++ {
		tb.FastProfile(i%8, i%32, 0)
	}
}

func TestMeasureBlockPropagatesBadBlockErrors(t *testing.T) {
	g := flash.TestGeometry()
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	p.EnduranceBase = 1
	p.EnduranceSpan = 0
	p.EnduranceQuality = 0
	arr := flash.MustNewArray(g, pv.New(p), flash.DefaultECC())
	tb := New(arr)
	// First measurement consumes the single endurance cycle...
	if _, err := tb.MeasureBlock(0, 0); err != nil {
		t.Fatal(err)
	}
	// ...so the second pass's erase fails and must surface.
	if _, err := tb.MeasureBlock(0, 0); err == nil {
		t.Fatal("measuring a worn-out block should fail")
	}
	// MeasureLane propagates too.
	if _, err := tb.MeasureLane(0, BlockRange(0, 1), 0, false); err == nil {
		t.Fatal("lane measurement over a bad block should fail")
	}
}

func TestSeededTestbedsDifferButAreDeterministic(t *testing.T) {
	g := flash.TestGeometry()
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr := flash.MustNewArray(g, pv.New(p), flash.DefaultECC())
	a1 := NewSeeded(arr, 1).FastProfile(0, 0, 0)
	a2 := NewSeeded(arr, 1).FastProfile(0, 0, 0)
	b := NewSeeded(arr, 2).FastProfile(0, 0, 0)
	for i := range a1.LWL {
		if a1.LWL[i] != a2.LWL[i] {
			t.Fatal("same seed should reproduce")
		}
	}
	diff := false
	for i := range a1.LWL {
		if a1.LWL[i] != b.LWL[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds should draw different jitter")
	}
}

func TestNewOffsetResumesStream(t *testing.T) {
	// A testbed offset by the draws one FastProfile consumes must produce
	// exactly the profile a fresh testbed produces on its second call — the
	// property the parallel experiment sweep relies on for serial/parallel
	// equivalence.
	g := flash.TestGeometry()
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr := flash.MustNewArray(g, pv.New(p), flash.DefaultECC())
	serial := New(arr)
	serial.FastProfile(0, 0, 0)
	second := serial.FastProfile(1, 1, 0)

	perCall := uint64(g.Layers*g.Strings + 1)
	resumed := NewOffset(arr, perCall).FastProfile(1, 1, 0)
	if resumed.Erase != second.Erase {
		t.Fatalf("erase %v, want %v", resumed.Erase, second.Erase)
	}
	for i := range second.LWL {
		if resumed.LWL[i] != second.LWL[i] {
			t.Fatalf("lwl %d: %v, want %v", i, resumed.LWL[i], second.LWL[i])
		}
	}
}
