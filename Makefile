# Tier-1 gate: everything a change must pass before it lands. `make check`
# vets, builds and runs the full test suite under the race detector — the
# concurrent device front end and the parallel experiment sweep
# (`go run ./cmd/sbsim -all -quick -parallel 4`) are only trustworthy
# race-clean. The second -race leg re-runs the parallel-core tests (the
# conservative-horizon device and the parallel experiment identity check)
# with -count=1, so they execute fresh even when the full-suite run above
# was served from the test cache.

GO ?= go

# Statement-coverage floor for `make cover`, over ./internal/... (the mains
# in cmd/ and examples/ are driven by the verify recipe, not unit tests).
COVER_MIN ?= 90

SMOKE_DIR := $(shell mktemp -d 2>/dev/null || echo /tmp/superfast-smoke)

.PHONY: check build test race bench bench-compare cover smoke storm profile

check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -race -count=1 -run 'TestConcurrent|TestSimThroughputParallelIdentical' \
		./internal/ssd ./internal/experiments
	$(MAKE) smoke
	$(MAKE) storm

# Observability smoke: the in-process HTTP exposition test (serve on an
# ephemeral port, scrape /metrics and /healthz), then a short ftlsim run
# exporting the attribution report, flight-recorder CSV and metrics dump
# through the real CLI surface. The server smoke replays the block-service
# acceptance pair: loopback trace replay matching the direct device run
# bit-for-bit, and graceful drain under load with zero dropped in-flight.
# The preemptive-GC smoke then drives a short ftlload open-loop overwrite
# burst against `ftlserve -gc-step` and checks every op succeeded and the
# server drained clean — CI exercises the stepped-GC path end to end.
# The volume smoke runs the sharded acceptance pair at the test level (a
# 3-backend sequenced replay byte-identical to the single-device run, and
# proxy drain under load), then stands up the real processes — three
# `ftlserve -seq`, one `ftlvol -seq` striping them — and replays a sequenced
# ftlload burst through the frontend, checking every op succeeded and the
# frontend drained clean on SIGINT.
smoke:
	$(GO) test -count=1 -run TestHTTPMetricsSmoke .
	$(GO) test -count=1 -run 'TestLoopbackTraceReplayMatchesDirect|TestDrainUnderLoad' ./internal/server
	$(GO) test -count=1 -run 'TestShardedReplayMatchesDirect|TestVolumeDrainUnderLoad' ./internal/volume
	$(GO) run ./cmd/ftlsim -blocks 16 -layers 16 -ops 2000 -workers 8 \
		-attr $(SMOKE_DIR)/attr.json -rec $(SMOKE_DIR)/rec.csv \
		-metrics-out $(SMOKE_DIR)/metrics.txt >/dev/null
	@for f in attr.json rec.csv metrics.txt; do \
		test -s $(SMOKE_DIR)/$$f || { echo "smoke: $$f empty or missing"; exit 1; }; \
	done
	$(GO) build -o $(SMOKE_DIR)/ftlserve ./cmd/ftlserve
	$(GO) build -o $(SMOKE_DIR)/ftlload ./cmd/ftlload
	@$(SMOKE_DIR)/ftlserve -listen 127.0.0.1:8997 -blocks 16 -layers 16 \
		-fill -gc-step 8 >$(SMOKE_DIR)/gcserve.log 2>&1 & \
	pid=$$!; \
	for i in $$(seq 100); do \
		grep -q 'block service on' $(SMOKE_DIR)/gcserve.log && break; sleep 0.1; \
	done; \
	$(SMOKE_DIR)/ftlload -addr 127.0.0.1:8997 -workload uniform \
		-ops 3000 -rate 300 >$(SMOKE_DIR)/gcload.txt 2>&1; \
	rc=$$?; \
	kill -INT $$pid; wait $$pid; \
	test $$rc -eq 0 || { echo "smoke: preemptive-GC ftlload failed"; \
		cat $(SMOKE_DIR)/gcload.txt; exit 1; }; \
	grep -q 'OK *3000' $(SMOKE_DIR)/gcload.txt || \
		{ echo "smoke: preemptive-GC load not all OK"; cat $(SMOKE_DIR)/gcload.txt; exit 1; }; \
	grep -q 'drained:' $(SMOKE_DIR)/gcserve.log || \
		{ echo "smoke: ftlserve -gc-step did not drain clean"; cat $(SMOKE_DIR)/gcserve.log; exit 1; }; \
	echo "preemptive-GC smoke ok"
	$(GO) build -o $(SMOKE_DIR)/ftlvol ./cmd/ftlvol
	@pids=""; \
	for p in 8990 8991 8992; do \
		$(SMOKE_DIR)/ftlserve -listen 127.0.0.1:$$p -blocks 16 -layers 16 -seq \
			>$(SMOKE_DIR)/volsrv$$p.log 2>&1 & \
		pids="$$pids $$!"; \
	done; \
	for i in $$(seq 100); do \
		ok=1; \
		for p in 8990 8991 8992; do \
			grep -q 'block service on' $(SMOKE_DIR)/volsrv$$p.log || ok=0; \
		done; \
		test $$ok -eq 1 && break; sleep 0.1; \
	done; \
	$(SMOKE_DIR)/ftlvol -listen 127.0.0.1:8998 \
		-backends 127.0.0.1:8990,127.0.0.1:8991,127.0.0.1:8992 \
		-stripe 32 -seq >$(SMOKE_DIR)/ftlvol.log 2>&1 & \
	vpid=$$!; \
	for i in $$(seq 100); do \
		grep -q 'volume on' $(SMOKE_DIR)/ftlvol.log && break; sleep 0.1; \
	done; \
	$(SMOKE_DIR)/ftlload -addr 127.0.0.1:8998 -seq -workload uniform \
		-ops 3000 -conns 4 >$(SMOKE_DIR)/volload.txt 2>&1; \
	rc=$$?; \
	kill -INT $$vpid; wait $$vpid; vrc=$$?; \
	kill -INT $$pids; wait $$pids; \
	test $$rc -eq 0 || { echo "smoke: ftlvol load failed"; \
		cat $(SMOKE_DIR)/volload.txt $(SMOKE_DIR)/ftlvol.log; exit 1; }; \
	grep -q 'OK *3000' $(SMOKE_DIR)/volload.txt || \
		{ echo "smoke: ftlvol load not all OK"; cat $(SMOKE_DIR)/volload.txt; exit 1; }; \
	test $$vrc -eq 0 || { echo "smoke: ftlvol exited $$vrc"; cat $(SMOKE_DIR)/ftlvol.log; exit 1; }; \
	grep -q 'drained:' $(SMOKE_DIR)/ftlvol.log || \
		{ echo "smoke: ftlvol did not drain clean"; cat $(SMOKE_DIR)/ftlvol.log; exit 1; }; \
	echo "volume smoke ok"
	$(GO) build -o $(SMOKE_DIR)/ftltrace ./cmd/ftltrace
	@pids=""; shards=""; \
	for p in 8984 8985 8986; do \
		$(SMOKE_DIR)/ftlserve -listen 127.0.0.1:$$p -blocks 16 -layers 16 -seq \
			-trace $(SMOKE_DIR)/trace-srv$$p.jsonl \
			>$(SMOKE_DIR)/trcsrv$$p.log 2>&1 & \
		pids="$$pids $$!"; shards="$$shards $(SMOKE_DIR)/trace-srv$$p.jsonl"; \
	done; \
	for i in $$(seq 100); do \
		ok=1; \
		for p in 8984 8985 8986; do \
			grep -q 'block service on' $(SMOKE_DIR)/trcsrv$$p.log || ok=0; \
		done; \
		test $$ok -eq 1 && break; sleep 0.1; \
	done; \
	$(SMOKE_DIR)/ftlvol -listen 127.0.0.1:8987 \
		-backends 127.0.0.1:8984,127.0.0.1:8985,127.0.0.1:8986 \
		-stripe 32 -seq -trace $(SMOKE_DIR)/trace-vol.jsonl \
		>$(SMOKE_DIR)/trcvol.log 2>&1 & \
	vpid=$$!; \
	for i in $$(seq 100); do \
		grep -q 'volume on' $(SMOKE_DIR)/trcvol.log && break; sleep 0.1; \
	done; \
	$(SMOKE_DIR)/ftlload -addr 127.0.0.1:8987 -seq -workload uniform \
		-ops 2000 -conns 4 -trace $(SMOKE_DIR)/trace-load.jsonl \
		>$(SMOKE_DIR)/trcload.txt 2>&1; \
	rc=$$?; \
	kill -INT $$vpid; wait $$vpid; \
	kill -INT $$pids; wait $$pids; \
	test $$rc -eq 0 || { echo "smoke: traced ftlload failed"; \
		cat $(SMOKE_DIR)/trcload.txt $(SMOKE_DIR)/trcvol.log; exit 1; }; \
	$(SMOKE_DIR)/ftltrace -o $(SMOKE_DIR)/cluster.trace.json \
		$(SMOKE_DIR)/trace-load.jsonl $(SMOKE_DIR)/trace-vol.jsonl $$shards \
		>$(SMOKE_DIR)/breakdown.txt 2>$(SMOKE_DIR)/ftltrace.log || \
		{ echo "smoke: ftltrace merge failed"; cat $(SMOKE_DIR)/ftltrace.log; exit 1; }; \
	test -s $(SMOKE_DIR)/cluster.trace.json || \
		{ echo "smoke: merged Chrome trace empty"; exit 1; }; \
	for h in client proxy admission queue gc service; do \
		grep -qE "^$$h\*? +" $(SMOKE_DIR)/breakdown.txt || \
			{ echo "smoke: breakdown missing hop $$h"; cat $(SMOKE_DIR)/breakdown.txt; exit 1; }; \
	done; \
	echo "cluster-trace smoke ok"
	@rm -rf $(SMOKE_DIR)

# Fault-campaign smoke: the external "break it on purpose" drill against
# real processes. Three `ftlserve -faults` backends, one ftlvol striping
# them with two replicas, then ftlstorm drives the kill-one-backend +
# power-cut campaign through the frontend: fill a working set, power-cut
# backend 1 and verify the restore from checkpoint, rewrite part of the set,
# crash backend 0 with the die fault (the process exits 3 by design) and
# verify the survivors still serve every page. The verdict's last line must
# read integrity=OK. The in-process campaigns (byte-identical verdicts
# across runs and worker counts, tenant isolation) run under `go test` in
# ./internal/scenario, so this leg only exercises the live-cluster path.
storm:
	@mkdir -p $(SMOKE_DIR)
	$(GO) build -o $(SMOKE_DIR)/ftlserve ./cmd/ftlserve
	$(GO) build -o $(SMOKE_DIR)/ftlvol ./cmd/ftlvol
	$(GO) build -o $(SMOKE_DIR)/ftlstorm ./cmd/ftlstorm
	@pids=""; \
	for p in 8974 8975 8976; do \
		$(SMOKE_DIR)/ftlserve -listen 127.0.0.1:$$p -blocks 8 -layers 6 -faults \
			>$(SMOKE_DIR)/stormsrv$$p.log 2>&1 & \
		pids="$$pids $$!"; \
	done; \
	for i in $$(seq 100); do \
		ok=1; \
		for p in 8974 8975 8976; do \
			grep -q 'block service on' $(SMOKE_DIR)/stormsrv$$p.log || ok=0; \
		done; \
		test $$ok -eq 1 && break; sleep 0.1; \
	done; \
	$(SMOKE_DIR)/ftlvol -listen 127.0.0.1:8977 \
		-backends 127.0.0.1:8974,127.0.0.1:8975,127.0.0.1:8976 \
		-stripe 32 -replicas 2 >$(SMOKE_DIR)/stormvol.log 2>&1 & \
	vpid=$$!; \
	for i in $$(seq 100); do \
		grep -q 'volume on' $(SMOKE_DIR)/stormvol.log && break; sleep 0.1; \
	done; \
	$(SMOKE_DIR)/ftlstorm -vol 127.0.0.1:8977 \
		-backends 127.0.0.1:8974,127.0.0.1:8975,127.0.0.1:8976 \
		-kill 0 -powercut 1 -seed 42 >$(SMOKE_DIR)/storm.txt 2>&1; \
	rc=$$?; \
	kill -INT $$vpid 2>/dev/null; wait $$vpid; \
	kill -INT $$pids 2>/dev/null; wait $$pids; \
	test $$rc -eq 0 || { echo "storm: drill failed"; \
		cat $(SMOKE_DIR)/storm.txt $(SMOKE_DIR)/stormvol.log; exit 1; }; \
	grep -q 'integrity=OK' $(SMOKE_DIR)/storm.txt || \
		{ echo "storm: verdict not OK"; cat $(SMOKE_DIR)/storm.txt; exit 1; }; \
	cat $(SMOKE_DIR)/storm.txt; \
	echo "storm drill ok"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Runs every root benchmark — including BenchmarkTelemetryOverhead, the
# disabled/enabled/full flavors showing the nil-sink fast path's cost — plus
# the telemetry package's attribution hot-path benchmark.
#
# With BENCH_OUT=FILE.json set (e.g. `make bench BENCH_OUT=BENCH_4.json`),
# the root run adds -benchmem and pipes through cmd/benchjson, which keeps
# the benchstat-compatible text on stdout and records ns/op, B/op, allocs/op
# and custom metrics per benchmark as JSON — the machine-readable perf
# trajectory across PRs. BENCH_TIME raises -benchtime for steadier numbers.
BENCH_TIME ?= 1x
bench:
ifeq ($(strip $(BENCH_OUT)),)
	$(GO) test -bench . -benchtime $(BENCH_TIME) -run XXX .
	$(GO) test -bench BenchmarkAttributionRecord -benchtime $(BENCH_TIME) -run XXX ./internal/telemetry
else
	$(GO) test -bench . -benchtime $(BENCH_TIME) -benchmem -run XXX . | $(GO) run ./cmd/benchjson -o $(BENCH_OUT)
	$(GO) test -bench BenchmarkAttributionRecord -benchtime $(BENCH_TIME) -run XXX ./internal/telemetry
endif

# Perf trend gate: diff two benchjson reports and print a per-benchmark
# delta table, failing (exit 1) when anything regressed past its tolerance.
# The three metrics gate independently: ns/op under BENCH_TOL stays advisory
# in CI (continue-on-error — shared-runner timing is too noisy to block
# merges on), but allocs/op under BENCH_ALLOC_TOL is BLOCKING — steady-state
# allocation counts in the FTL and flash benchmarks are deterministic, so
# alloc growth in a shared benchmark is a real regression, not noise. The 1%
# slack only absorbs one-time setup allocations (process-wide caches land on
# whichever benchmark runs first at -benchtime 1x); it cannot hide a hot-
# path alloc, which scales with op count. A benchmark that was allocation-
# free must stay allocation-free: zero has no slack at any tolerance. B/op
# gates under BENCH_BYTES_TOL with timing-style slack, since pooled-buffer
# accounting can shift bytes between runs. Defaults to the two newest
# BENCH_*.json checked into the repo root; override with BENCH_OLD/BENCH_NEW.
BENCH_TOL ?= 0.25
BENCH_ALLOC_TOL ?= 0.01
BENCH_BYTES_TOL ?= 0.25
bench-compare:
	@old="$(BENCH_OLD)"; new="$(BENCH_NEW)"; \
	if [ -z "$$old" ] || [ -z "$$new" ]; then \
		set -- $$(ls BENCH_*.json 2>/dev/null | sort -V); \
		while [ $$# -gt 2 ]; do shift; done; \
		old=$${old:-$$1}; new=$${new:-$$2}; \
	fi; \
	if [ -z "$$old" ] || [ -z "$$new" ]; then \
		echo "bench-compare: need two BENCH_*.json reports (or BENCH_OLD/BENCH_NEW)"; exit 2; \
	fi; \
	echo "bench-compare: $$old -> $$new (tol $(BENCH_TOL), alloc-tol $(BENCH_ALLOC_TOL), bytes-tol $(BENCH_BYTES_TOL))"; \
	$(GO) run ./cmd/benchjson -compare $$old $$new \
		-tol $(BENCH_TOL) -alloc-tol $(BENCH_ALLOC_TOL) -bytes-tol $(BENCH_BYTES_TOL)

# CPU + heap profiles of a representative device run, via the CLIs'
# -cpuprofile/-memprofile flags (the offline complement of the live
# /debug/pprof endpoint behind -http). Inspect with `go tool pprof`.
PROFILE_DIR ?= .
profile:
	$(GO) run ./cmd/ftlsim -blocks 32 -layers 24 -ops 20000 \
		-cpuprofile $(PROFILE_DIR)/ftlsim.cpu.pprof \
		-memprofile $(PROFILE_DIR)/ftlsim.mem.pprof >/dev/null
	@echo "profiles: $(PROFILE_DIR)/ftlsim.cpu.pprof $(PROFILE_DIR)/ftlsim.mem.pprof"
	@echo "inspect:  go tool pprof $(PROFILE_DIR)/ftlsim.cpu.pprof"

cover:
	$(GO) test -count=1 -coverprofile=cover.out ./internal/...
	@$(GO) tool cover -func=cover.out | awk -v min=$(COVER_MIN) '\
		/^total:/ { sub(/%/, "", $$3); total = $$3 } \
		END { \
			printf "total statement coverage: %.1f%% (floor %d%%)\n", total, min; \
			if (total + 0 < min) { print "coverage below floor"; exit 1 } \
		}'
