package experiments

import (
	"testing"

	"superfast/internal/assembly"
	"superfast/internal/core"
	"superfast/internal/stats"
)

// TestPaperShapeHolds is the regression net for the calibration: the
// paper-defining orderings must survive any change to the variation model
// or the strategies. Runs at a reduced scale; the cmd/reprocheck tool is
// the full certification.
func TestPaperShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("shape regression is not a -short test")
	}
	cfg := DefaultConfig()
	cfg.BlocksPerLane = 150
	cfg.Groups = 2
	cfg.PESteps = []int{0}
	strategies := []assembly.Assembler{
		assembly.Random{Seed: cfg.Seed + 1},
		assembly.Sequential{},
		assembly.Optimal{Window: cfg.Window},
		assembly.Ranked{Kind: assembly.STRRank, Window: cfg.Window},
		assembly.STRMedian{Window: cfg.MedWindow},
		core.BatchAssembler{K: cfg.MedWindow},
	}
	out, err := SweepStrategies(cfg, strategies)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]StrategyOutcome{}
	for _, o := range out {
		byName[o.Name] = o
	}
	rnd := byName["RANDOM"]
	imp := func(name string) float64 {
		o, ok := byName[name]
		if !ok {
			t.Fatalf("missing strategy %q", name)
		}
		return stats.Improvement(rnd.MeanPgm, o.MeanPgm)
	}
	// Headline scale: random extra PGM within ±20% of the paper.
	if rnd.MeanPgm < 13084*0.8 || rnd.MeanPgm > 13084*1.2 {
		t.Errorf("random extra PGM %v drifted from the calibrated 13,084 µs", rnd.MeanPgm)
	}
	opt, str, med, qstr, seq :=
		imp("OPTIMAL (8)"), imp("STR-RANK (8)"), imp("STR-MED (4)"), imp("QSTR-MED (4)"), imp("SEQUENTIAL")
	if !(opt >= str) {
		t.Errorf("OPTIMAL (%v) should lead STR-RANK (%v)", opt, str)
	}
	if !(str >= med) {
		t.Errorf("STR-RANK (%v) should lead STR-MED (%v)", str, med)
	}
	if !(med-qstr <= 0.03) {
		t.Errorf("QSTR-MED (%v) should track STR-MED (%v) within 3 pp", qstr, med)
	}
	if !(qstr > seq) {
		t.Errorf("QSTR-MED (%v) should beat SEQUENTIAL (%v)", qstr, seq)
	}
	if opt < 0.14 || opt > 0.25 {
		t.Errorf("OPTIMAL improvement %v drifted from the paper's ~19.5%%", opt)
	}
	// Erase gains are relatively larger than program gains.
	if e := stats.Improvement(rnd.MeanErs, byName["QSTR-MED (4)"].MeanErs); e <= qstr {
		t.Errorf("erase improvement (%v) should exceed program improvement (%v)", e, qstr)
	}
}
