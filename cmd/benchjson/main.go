// Command benchjson converts `go test -bench` output into a machine-readable
// JSON report while passing the original text through unchanged, so piping
// through it keeps the benchstat-compatible stream:
//
//	go test -bench . -benchmem -run XXX . | benchjson -o BENCH.json
//
// The report records ns/op, B/op, allocs/op and any custom metrics
// (ReportMetric pairs) per benchmark, plus the run's goos/goarch/pkg/cpu
// header — the raw material for tracking a performance trajectory across
// changes without scraping text.
//
// It also diffs two such reports:
//
//	benchjson -compare OLD.json NEW.json [-tol 0.25] [-alloc-tol 0] [-bytes-tol 0.25]
//
// prints a per-benchmark delta table and exits nonzero if any benchmark
// present in both reports regressed past a tolerance. ns/op, allocs/op and
// B/op each have an independent fractional tolerance (0.25 = 25%); pass a
// negative tolerance to skip that metric entirely. Alloc counts are exact in
// steady state, so -alloc-tol defaults to 0: one extra allocation per op in a
// shared benchmark fails the comparison (a benchmark whose old count is zero
// must stay at zero). Benchmarks present in only one report are listed but
// never fail the comparison — the suite is allowed to grow.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Benchmark is one result line of a bench run.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write the JSON report to FILE")
	compare := flag.Bool("compare", false, "compare two reports: benchjson -compare OLD.json NEW.json")
	tol := flag.Float64("tol", 0.25, "with -compare, max tolerated fractional ns/op regression (negative skips)")
	allocTol := flag.Float64("alloc-tol", 0, "with -compare, max tolerated fractional allocs/op regression (negative skips)")
	bytesTol := flag.Float64("bytes-tol", 0.25, "with -compare, max tolerated fractional B/op regression (negative skips)")
	flag.Parse()

	if *compare {
		args := flag.Args()
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs two report files: OLD.json NEW.json")
			os.Exit(2)
		}
		// Accept the tolerance flags after the file names too (flag parsing
		// stops at the first positional argument).
		rest := flag.NewFlagSet("compare", flag.ExitOnError)
		tailTol := rest.Float64("tol", *tol, "max tolerated fractional ns/op regression (negative skips)")
		tailAlloc := rest.Float64("alloc-tol", *allocTol, "max tolerated fractional allocs/op regression (negative skips)")
		tailBytes := rest.Float64("bytes-tol", *bytesTol, "max tolerated fractional B/op regression (negative skips)")
		rest.Parse(args[2:])
		os.Exit(runCompare(args[0], args[1], Tolerances{Ns: *tailTol, Allocs: *tailAlloc, Bytes: *tailBytes}))
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: need -o FILE (or -compare OLD.json NEW.json)")
		os.Exit(2)
	}

	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	w := bufio.NewWriter(os.Stdout)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(w, line) // pass the benchstat-compatible text through
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	w.Flush()
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// Tolerances bounds the acceptable fractional regression per metric. A
// negative value disables checking that metric.
type Tolerances struct {
	Ns     float64
	Allocs float64
	Bytes  float64
}

// exceeds reports whether new regressed past the fractional tolerance over
// old. An old value of exactly zero demands the new value stay zero — there
// is no ratio to take, and for alloc counts "was allocation-free" is
// precisely the property worth pinning. (Both reports must come from
// -benchmem runs for the alloc/byte columns to be meaningful: parseBench
// leaves unmeasured metrics at zero, indistinguishable from a measured
// zero.)
func exceeds(oldV, newV, tol float64) bool {
	if tol < 0 {
		return false
	}
	if oldV == 0 {
		return newV > 0
	}
	return newV/oldV-1 > tol
}

// runCompare diffs two reports on ns/op, allocs/op and B/op, each with its
// own tolerance, and returns the process exit code: 0 when every shared
// benchmark is within tolerance, 1 when any regressed past one, 2 when a
// report cannot be read.
func runCompare(oldPath, newPath string, tol Tolerances) int {
	oldRep, err := readReport(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	newRep, err := readReport(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	oldBy := make(map[string]Benchmark, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintf(w, "benchmark\told ns/op\tnew ns/op\told allocs\tnew allocs\told B/op\tnew B/op\tdelta\t\n")
	regressed := 0
	for _, nb := range newRep.Benchmarks {
		ob, shared := oldBy[nb.Name]
		if !shared {
			fmt.Fprintf(w, "%s\t-\t%.1f\t-\t%.0f\t-\t%.0f\tnew\t\n", nb.Name, nb.NsPerOp, nb.AllocsPerOp, nb.BytesPerOp)
			continue
		}
		delete(oldBy, nb.Name)
		if ob.NsPerOp <= 0 || nb.NsPerOp <= 0 {
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.0f\t%.0f\t%.0f\t%.0f\tno ns/op\t\n",
				nb.Name, ob.NsPerOp, nb.NsPerOp, ob.AllocsPerOp, nb.AllocsPerOp, ob.BytesPerOp, nb.BytesPerOp)
			continue
		}
		delta := nb.NsPerOp/ob.NsPerOp - 1
		var bad []string
		if exceeds(ob.NsPerOp, nb.NsPerOp, tol.Ns) {
			bad = append(bad, "ns/op")
		}
		if exceeds(ob.AllocsPerOp, nb.AllocsPerOp, tol.Allocs) {
			bad = append(bad, "allocs/op")
		}
		if exceeds(ob.BytesPerOp, nb.BytesPerOp, tol.Bytes) {
			bad = append(bad, "B/op")
		}
		verdict := ""
		if len(bad) > 0 {
			verdict = "  REGRESSED(" + strings.Join(bad, ",") + ")"
			regressed++
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.0f\t%.0f\t%.0f\t%.0f\t%+.1f%%%s\t\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, ob.AllocsPerOp, nb.AllocsPerOp, ob.BytesPerOp, nb.BytesPerOp, delta*100, verdict)
	}
	for name := range oldBy {
		fmt.Fprintf(w, "%s\t%.1f\t-\t%.0f\t-\t%.0f\t-\tgone\t\n", name, oldBy[name].NsPerOp, oldBy[name].AllocsPerOp, oldBy[name].BytesPerOp)
	}
	w.Flush()
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed past tolerance (ns/op %.0f%%, allocs/op %.0f%%, B/op %.0f%%)\n",
			regressed, tol.Ns*100, tol.Allocs*100, tol.Bytes*100)
		return 1
	}
	return 0
}

func readReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// parseBench decodes one result line: a name, an iteration count, then
// value/unit pairs ("123 ns/op", "7 allocs/op", custom ReportMetric units).
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}
