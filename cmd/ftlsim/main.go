// Command ftlsim runs a host workload through the full simulated SSD (flash
// array + FTL + device queue) and prints latency/WAF statistics. It is the
// end-to-end harness for comparing superblock organizers.
//
// Usage:
//
//	ftlsim -organizer qstr-med -workload hotcold -ops 20000
//	ftlsim -organizer random -workload uniform
//	ftlsim -workload trace -in ops.csv
//	ftlsim -workload mixed -workers 8
//	ftlsim -workload mixed -trace out.json -metrics
//
// With -workers N (N > 1) the workload is materialized and replayed through
// the thread-safe multi-queue front end by N concurrent submitters; tickets
// pin the trace order, so the results match a single-submitter run.
//
// -trace FILE writes a Chrome trace-event JSON file of the device pipeline
// (host spans, FTL-stage instants, per-chip flash ops on the simulated
// clock; open it in Perfetto or chrome://tracing). Tracing always routes
// through the multi-queue front end so the bytes are identical for every
// -workers value. -metrics prints the telemetry counter/gauge/digest
// registry at exit (to stderr, or to -metrics-out FILE, so piped results
// stay clean).
//
// -attr FILE writes the straggler attribution report: which member block of
// every multi-plane program/erase was slowest and how much extra latency it
// imposed, aggregated per block, lane, (host|gc)×(fast|slow)×op class, and
// log-bucketed histogram. -rec FILE writes the flight recorder's samples
// (WAF, queue depth, extra-latency EWMA, assembly pool levels, per-chip
// utilization on a fixed simulated interval; CSV, or JSON with a .json
// suffix). Both force the multi-queue front end, and both exports are
// byte-identical for every -workers value.
//
// -http ADDR serves live Prometheus text-format /metrics, /healthz and
// /debug/pprof (plus /flightrecorder and /attribution when enabled) while
// the run executes; add -hold to keep serving after the run until
// interrupted.
//
// -cpuprofile/-memprofile write offline pprof profiles of the whole run (the
// batch complement of the live /debug/pprof endpoint): `make profile` wraps
// a representative invocation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"

	"superfast/internal/flash"
	"superfast/internal/ftl"
	"superfast/internal/pv"
	"superfast/internal/ssd"
	"superfast/internal/stats"
	"superfast/internal/telemetry"
	"superfast/internal/workload"
)

func main() {
	var (
		orgName  = flag.String("organizer", "qstr-med", "superblock organizer: qstr-med | sequential | random")
		wlName   = flag.String("workload", "hotcold", "workload: seqfill | uniform | hotcold | mixed | trace | msr")
		ops      = flag.Int64("ops", 0, "operation count (0 = one logical-space pass)")
		tracePth = flag.String("in", "", "input trace file for -workload trace | msr")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON file of the device pipeline (forces the multi-queue front end)")
		metrics  = flag.Bool("metrics", false, "print the telemetry metrics registry at exit (stderr)")
		metOut   = flag.String("metrics-out", "", "write the -metrics dump to FILE instead of stderr")
		attrOut  = flag.String("attr", "", "write the straggler attribution report (JSON) to FILE (forces the multi-queue front end)")
		attrTopK = flag.Int("attr-topk", 20, "straggler blocks kept in the -attr report (0 = all)")
		recOut   = flag.String("rec", "", "write flight-recorder samples to FILE (.json suffix = JSON, else CSV; forces the multi-queue front end)")
		recIntv  = flag.Float64("rec-interval", 10000, "flight-recorder sampling interval, simulated µs")
		recCap   = flag.Int("rec-cap", 4096, "flight-recorder ring capacity (newest samples kept)")
		httpAddr = flag.String("http", "", "serve /metrics, /healthz, /debug/pprof (plus /flightrecorder, /attribution when enabled) on ADDR")
		hold     = flag.Bool("hold", false, "with -http: keep serving after the run until interrupted")
		blocks   = flag.Int("blocks", 32, "blocks per plane")
		chips    = flag.Int("chips", 4, "chips")
		layers   = flag.Int("layers", 48, "word-line layers per block")
		seed     = flag.Uint64("seed", 1, "seed")
		raid     = flag.Bool("raid", false, "dedicate one lane per superblock to parity")
		autoHint = flag.Bool("autohint", false, "detect hot pages and place them on fast superpages")
		victim   = flag.String("victim", "greedy", "GC victim policy: greedy | cost-benefit | fifo")
		gcStep   = flag.Int("gc-step", 0, "preemptive GC: pages relocated per step between requests (0 = blocking GC)")
		gcSoft   = flag.Int("gc-soft", 0, "free-superblock watermark that starts preemptive GC steps (0 = GC threshold)")
		queue    = flag.String("queue", "serialized", "device queue model: serialized | per-chip")
		workers  = flag.Int("workers", 1, "concurrent submitters (>1 drives the thread-safe multi-queue front end)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to FILE")
		memProf  = flag.String("memprofile", "", "write a heap profile to FILE at exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ftlsim: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ftlsim: -memprofile: %v\n", err)
			}
		}()
	}

	g := flash.Geometry{
		Chips:          *chips,
		PlanesPerChip:  1,
		BlocksPerPlane: *blocks,
		Layers:         *layers,
		Strings:        4,
		PageSize:       16 * 1024,
		SpareSize:      2 * 1024,
	}
	p := pv.DefaultParams()
	p.Seed = *seed
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr, err := flash.NewArray(g, pv.New(p), flash.DefaultECC())
	if err != nil {
		fatalf("%v", err)
	}
	cfg := ssd.DefaultConfig()
	cfg.FTL.Overprovision = 0.2
	cfg.FTL.Seed = *seed
	switch *orgName {
	case "qstr-med":
		cfg.FTL.Organizer = ftl.QSTRMed
	case "sequential":
		cfg.FTL.Organizer = ftl.SequentialOrg
	case "random":
		cfg.FTL.Organizer = ftl.RandomOrg
	default:
		fatalf("unknown organizer %q", *orgName)
	}
	cfg.FTL.RAID = *raid
	cfg.FTL.AutoHint = *autoHint
	cfg.FTL.GCStepPages = *gcStep
	cfg.FTL.GCSoftThreshold = *gcSoft
	switch *victim {
	case "greedy":
		cfg.FTL.Victim = ftl.Greedy
	case "cost-benefit":
		cfg.FTL.Victim = ftl.CostBenefit
	case "fifo":
		cfg.FTL.Victim = ftl.FIFO
	default:
		fatalf("unknown victim policy %q", *victim)
	}
	switch *queue {
	case "serialized":
		cfg.Queue = ssd.Serialized
	case "per-chip":
		cfg.Queue = ssd.PerChip
	default:
		fatalf("unknown queue model %q", *queue)
	}
	if *workers < 1 {
		fatalf("-workers must be at least 1, got %d", *workers)
	}

	var dev *ssd.Device
	var cdev *ssd.ConcurrentDevice
	var f *ftl.FTL
	// Tracing records the multi-queue pipeline (submit → FTL stage → chip
	// ops), so -trace forces the concurrent front end even at -workers 1:
	// the exported bytes are then identical for every worker count. The
	// attribution and flight-recorder exports carry the same guarantee, so
	// they force it too.
	if *workers > 1 || *traceOut != "" || *attrOut != "" || *recOut != "" {
		cdev, err = ssd.NewConcurrent(arr, cfg)
		if err != nil {
			fatalf("%v", err)
		}
		defer cdev.Close()
		f = cdev.FTL()
	} else {
		dev, err = ssd.New(arr, cfg)
		if err != nil {
			fatalf("%v", err)
		}
		f = dev.FTL()
	}
	capacity := f.Capacity()
	count := *ops
	if count == 0 {
		count = capacity
	}
	warm := func() {
		var werr error
		if cdev != nil {
			werr = cdev.FillSequential(nil)
		} else {
			werr = dev.FillSequential(nil)
		}
		if werr != nil {
			fatalf("warm: %v", werr)
		}
	}

	// Materialize the request stream (and its index map, when trace priming
	// inserts extra writes whose completions should not be reported).
	var reqs []ssd.Request
	var keep []int
	switch *wlName {
	case "seqfill":
		reqs = workload.Collect(&workload.Sequential{N: min64(count, capacity), PageLen: 64})
	case "uniform":
		warm()
		reqs = workload.Collect(&workload.Uniform{Space: capacity, Count: count, PageLen: 64, Seed: *seed})
	case "hotcold":
		warm()
		reqs = workload.Collect(&workload.HotCold{
			Space: capacity, Count: count, HotFrac: 0.8, HotSpace: 0.2, PageLen: 64, Seed: *seed,
		})
	case "mixed":
		warm()
		reqs = workload.Collect(&workload.Mixed{
			Space: capacity, Count: count, ReadFrac: 0.5, PageLen: 64, Seed: *seed,
		})
	case "trace":
		reqs, err = parseTraceFile(*tracePth, func(r *os.File) ([]ssd.Request, error) {
			return workload.ParseTrace(r, 64)
		})
		if err != nil {
			fatalf("%v", err)
		}
	case "msr":
		reqs, err = parseTraceFile(*tracePth, func(r *os.File) ([]ssd.Request, error) {
			return workload.ParseMSRTrace(r, g.PageSize, capacity)
		})
		if err != nil {
			fatalf("%v", err)
		}
		reqs, keep = workload.PrepareForReplay(reqs)
	default:
		fatalf("unknown workload %q", *wlName)
	}

	// Attach telemetry after the warm fill so only the measured workload is
	// traced and counted.
	var trc *telemetry.Trace
	if *traceOut != "" {
		trc = telemetry.NewTrace()
		cdev.SetTracer(trc)
	}
	var reg *telemetry.Metrics
	if *metrics || *metOut != "" || *httpAddr != "" {
		reg = telemetry.New()
		if cdev != nil {
			cdev.SetMetrics(reg)
		} else {
			dev.SetMetrics(reg)
		}
	}
	var attr *telemetry.Attribution
	if *attrOut != "" {
		attr = telemetry.NewAttribution()
		cdev.SetAttribution(attr)
	}
	var rec *telemetry.Recorder
	if *recOut != "" {
		rec, err = telemetry.NewRecorder(*recIntv, *recCap, ssd.RecorderColumns(g.Chips))
		if err != nil {
			fatalf("%v", err)
		}
		if err := cdev.AttachRecorder(rec); err != nil {
			fatalf("%v", err)
		}
	}
	if *httpAddr != "" {
		srv, addr, herr := telemetry.Serve(*httpAddr, telemetry.Routes(reg, rec, attr, nil))
		if herr != nil {
			fatalf("-http: %v", herr)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ftlsim: serving telemetry on http://%s/\n", addr)
	}

	var completions []ssd.Completion
	if cdev != nil {
		completions, err = workload.RunConcurrent(cdev, reqs, *workers)
	} else {
		for i, req := range reqs {
			c, serr := dev.Submit(req)
			if serr != nil {
				err = fmt.Errorf("op %d: %w", i, serr)
				break
			}
			completions = append(completions, c)
		}
	}
	if err != nil {
		fatalf("%v", err)
	}
	if trc != nil {
		out, cerr := os.Create(*traceOut)
		if cerr != nil {
			fatalf("%v", cerr)
		}
		if werr := trc.WriteChrome(out); werr != nil {
			fatalf("write trace: %v", werr)
		}
		if cerr := out.Close(); cerr != nil {
			fatalf("%v", cerr)
		}
		fmt.Fprintf(os.Stderr, "ftlsim: wrote %d trace events to %s\n", trc.Len(), *traceOut)
	}
	if rec != nil {
		// Emit the samples between the last event and the end of the run,
		// then export.
		cdev.FlushRecorder()
		if werr := writeExport(*recOut, func(w io.Writer) error {
			if strings.HasSuffix(*recOut, ".json") {
				return rec.WriteJSON(w)
			}
			return rec.WriteCSV(w)
		}); werr != nil {
			fatalf("write recorder: %v", werr)
		}
		fmt.Fprintf(os.Stderr, "ftlsim: wrote %d flight-recorder samples to %s\n", rec.Len(), *recOut)
	}
	if attr != nil {
		if werr := writeExport(*attrOut, func(w io.Writer) error {
			return attr.WriteJSON(w, *attrTopK)
		}); werr != nil {
			fatalf("write attribution: %v", werr)
		}
		fmt.Fprintf(os.Stderr, "ftlsim: wrote attribution of %d multi-plane commands to %s\n", attr.Ops(), *attrOut)
	}
	if keep != nil {
		trace := make([]ssd.Completion, len(keep))
		for i, j := range keep {
			trace[i] = completions[j]
		}
		completions = trace
	}

	lats := make([]float64, len(completions))
	for i, c := range completions {
		lats[i] = c.Service
	}
	sm := stats.Summarize(lats)
	fst := f.Stats()
	t := stats.Table{Title: fmt.Sprintf("ftlsim: %s / %s, %d ops", *orgName, *wlName, len(completions))}
	t.Headers = []string{"Metric", "Value"}
	t.AddRow("mean latency", stats.FmtUS(sm.Mean)+" µs")
	t.AddRow("median latency", stats.FmtUS(sm.Median)+" µs")
	t.AddRow("p95 latency", stats.FmtUS(sm.P95)+" µs")
	t.AddRow("p99 latency", stats.FmtUS(sm.P99)+" µs")
	t.AddRow("max latency", stats.FmtUS(sm.Max)+" µs")
	t.AddRow("host writes", fmt.Sprintf("%d", fst.HostWrites))
	t.AddRow("gc writes", fmt.Sprintf("%d", fst.GCWrites))
	t.AddRow("WAF", fmt.Sprintf("%.3f", fst.WAF()))
	if *gcStep > 0 {
		t.AddRow("gc steps", fmt.Sprintf("%d", fst.GCSteps))
		t.AddRow("gc stalls (blocking)", fmt.Sprintf("%d", fst.GCStalls))
	}
	if fst.GCStarved > 0 {
		t.AddRow("gc starved", fmt.Sprintf("%d", fst.GCStarved))
	}
	t.AddRow("superblock flushes", fmt.Sprintf("%d", fst.Flushes))
	t.AddRow("extra PGM per flush", stats.FmtUS(safeDiv(fst.ExtraPgm, float64(fst.Flushes)))+" µs")
	t.AddRow("extra ERS per erase", stats.FmtUS(safeDiv(fst.ExtraErs, float64(fst.Erases)))+" µs")
	t.AddRow("similarity checks", fmt.Sprintf("%d", f.Scheme().PairChecks()))
	if *raid {
		t.AddRow("raid repairs", fmt.Sprintf("%d", fst.RAIDRepairs))
	}
	w := f.Wear()
	t.AddRow("wear (min/mean/max P/E)", fmt.Sprintf("%d / %.1f / %d", w.MinPE, w.MeanPE, w.MaxPE))
	fmt.Print(t.String())

	if reg != nil {
		// End-of-run gauges derived from accumulated state: WAF, distilled
		// extra latency, and per-chip busy time / utilization.
		reg.Gauge("ftl.waf").Set(fst.WAF())
		reg.Gauge("ftl.extra.pgm_us").Set(fst.ExtraPgm)
		reg.Gauge("ftl.extra.ers_us").Set(fst.ExtraErs)
		reg.Gauge("ftl.extra.ewma_us").Set(fst.ExtraEWMA)
		if cdev != nil {
			now := cdev.Now()
			for _, cs := range cdev.ChipStats() {
				reg.Gauge(fmt.Sprintf("chip.%02d.busy_us", cs.Chip)).Set(cs.Busy)
				if now > 0 {
					reg.Gauge(fmt.Sprintf("chip.%02d.util", cs.Chip)).Set(cs.Busy / now)
				}
			}
		}
	}
	if *metrics || *metOut != "" {
		// The dump goes to stderr (or a file), never stdout: piped experiment
		// results must not interleave with telemetry.
		mt := stats.Table{Title: "telemetry", Headers: []string{"Metric", "Value"}}
		for _, v := range reg.Snapshot() {
			if v.Count {
				mt.AddRow(v.Name, fmt.Sprintf("%d", uint64(v.Value)))
			} else {
				mt.AddRow(v.Name, fmt.Sprintf("%.3f", v.Value))
			}
		}
		if *metOut != "" {
			if werr := writeExport(*metOut, func(w io.Writer) error {
				_, e := io.WriteString(w, mt.String())
				return e
			}); werr != nil {
				fatalf("write metrics: %v", werr)
			}
		} else {
			fmt.Fprint(os.Stderr, "\n"+mt.String())
		}
	}
	if *httpAddr != "" && *hold {
		fmt.Fprintln(os.Stderr, "ftlsim: run complete; serving until interrupted (-hold)")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
}

// writeExport creates path and streams the export through write.
func writeExport(path string, write func(io.Writer) error) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// parseTraceFile opens path and parses it with the given reader.
func parseTraceFile(path string, parse func(*os.File) ([]ssd.Request, error)) ([]ssd.Request, error) {
	if path == "" {
		return nil, fmt.Errorf("workload needs -trace FILE")
	}
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return parse(r)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ftlsim: "+format+"\n", args...)
	os.Exit(1)
}
