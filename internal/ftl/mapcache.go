package ftl

import "container/list"

// DFTL-style cached mapping: a real controller cannot hold the whole
// LPN→PPN table in RAM, so it keeps translation pages on flash and caches
// the hot ones (Gupta et al.'s DFTL design). This layer models the timing
// and traffic of that choice: every host read/write consults the cache; a
// miss charges one flash read of the translation page, and evicting a dirty
// translation page charges one program. The logical mapping itself stays in
// memory (the simulator needs it for correctness) — only the cost model is
// affected, which is what the latency experiments measure.

// mapCache is an LRU of translation-page ids with dirty tracking.
type mapCache struct {
	capacity int
	entries  map[int64]*list.Element
	order    *list.List // front = most recent

	hits   uint64
	misses uint64
	evicts uint64 // dirty evictions (translation-page writebacks)
}

type mapCacheEntry struct {
	tpage int64
	dirty bool
}

func newMapCache(capacity int) *mapCache {
	return &mapCache{
		capacity: capacity,
		entries:  make(map[int64]*list.Element, capacity),
		order:    list.New(),
	}
}

// access touches the translation page; dirty marks it modified (a write).
// It reports (miss, writeback): whether the page had to be fetched from
// flash, and whether a dirty page had to be written back to make room.
func (c *mapCache) access(tpage int64, dirty bool) (miss, writeback bool) {
	if el, ok := c.entries[tpage]; ok {
		c.hits++
		c.order.MoveToFront(el)
		if dirty {
			el.Value.(*mapCacheEntry).dirty = true
		}
		return false, false
	}
	c.misses++
	if c.order.Len() >= c.capacity {
		// Evict by reusing the LRU element in place: overwriting the victim
		// and rotating it to the front keeps a full cache allocation-free per
		// miss (a fresh list element and entry per eviction dominated the
		// DFTL experiments' allocation profile).
		back := c.order.Back()
		victim := back.Value.(*mapCacheEntry)
		if victim.dirty {
			c.evicts++
			writeback = true
		}
		delete(c.entries, victim.tpage)
		victim.tpage = tpage
		victim.dirty = dirty
		c.order.MoveToFront(back)
		c.entries[tpage] = back
		return true, writeback
	}
	el := c.order.PushFront(&mapCacheEntry{tpage: tpage, dirty: dirty})
	c.entries[tpage] = el
	return true, writeback
}

// MapCacheStats reports the translation-cache activity.
type MapCacheStats struct {
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// HitRate returns the cache hit fraction.
func (s MapCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 1
	}
	return float64(s.Hits) / float64(total)
}

// MapCacheStats returns the translation-cache counters (zero value when the
// cache is disabled).
func (f *FTL) MapCacheStats() MapCacheStats {
	if f.mcache == nil {
		return MapCacheStats{}
	}
	return MapCacheStats{Hits: f.mcache.hits, Misses: f.mcache.misses, Writebacks: f.mcache.evicts}
}

// translationPageEntries is how many LPN→PPN entries one flash page holds
// (8-byte entries).
func (f *FTL) translationPageEntries() int64 {
	return int64(f.geo.PageSize / 8)
}

// chargeMapAccess models the DFTL cost of touching the mapping for lpn:
// zero when the whole table fits in RAM, otherwise a translation-page read
// on a miss plus a program for a dirty eviction. The charged latency is
// returned so callers fold it into the host-visible service time.
func (f *FTL) chargeMapAccess(lpn int64, dirty bool) float64 {
	if f.mcache == nil {
		return 0
	}
	tpage := lpn / f.translationPageEntries()
	miss, writeback := f.mcache.access(tpage, dirty)
	var lat float64
	if miss {
		lat += f.cfg.MapReadUS
	}
	if writeback {
		lat += f.cfg.MapProgramUS
	}
	return lat
}
