// Command calibrate runs the assembly strategies under process-variation
// model parameter overrides and prints improvement percentages against the
// random baseline. It is the tool used to calibrate the model against the
// paper's Tables I/II/V.
//
// Usage:
//
//	calibrate -blocks 200 -groups 2 -pe 0 -set PgmJitterSigma=0 -set StringScaleSigma=0.2
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"strings"

	"superfast/internal/assembly"
	"superfast/internal/core"
	"superfast/internal/experiments"
	"superfast/internal/pv"
	"superfast/internal/stats"
)

type overrides []string

func (o *overrides) String() string     { return strings.Join(*o, ",") }
func (o *overrides) Set(v string) error { *o = append(*o, v); return nil }

func main() {
	var (
		blocks  = flag.Int("blocks", 200, "blocks per lane")
		groups  = flag.Int("groups", 2, "lane groups")
		peList  = flag.String("pe", "0", "P/E steps, comma separated")
		window  = flag.Int("window", 8, "window for windowed strategies")
		med     = flag.Int("med", 4, "window for STR-MED/QSTR-MED")
		full    = flag.Bool("full", false, "run all nine directions (slower)")
		deciles = flag.Bool("deciles", false, "print per-superblock-index decile means")
		budget  = flag.Bool("budget", false, "print the model's per-word-line variance budget and exit")
		sets    overrides
	)
	flag.Var(&sets, "set", "model parameter override Name=value (repeatable)")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.BlocksPerLane = *blocks
	cfg.Groups = *groups
	cfg.Window = *window
	cfg.MedWindow = *med
	cfg.PESteps = nil
	for _, p := range strings.Split(*peList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fatalf("bad -pe: %v", err)
		}
		cfg.PESteps = append(cfg.PESteps, v)
	}
	for _, s := range sets {
		if err := applyOverride(&cfg, s); err != nil {
			fatalf("%v", err)
		}
	}

	strategies := []assembly.Assembler{
		assembly.Random{Seed: cfg.Seed + 1},
		assembly.Sequential{},
		assembly.Optimal{Window: cfg.Window},
		assembly.Ranked{Kind: assembly.STRRank, Window: cfg.Window},
		assembly.STRMedian{Window: cfg.MedWindow},
		core.BatchAssembler{K: cfg.MedWindow},
	}
	if *full {
		strategies = append(strategies,
			assembly.ByErase{},
			assembly.ByPgmSum{},
			assembly.Ranked{Kind: assembly.LWLRank, Window: cfg.Window},
			assembly.Ranked{Kind: assembly.PWLRank, Window: cfg.Window},
		)
	}
	if *budget {
		printBudget(cfg)
		return
	}
	if *deciles {
		if err := diagDeciles(cfg, strategies); err != nil {
			fatalf("%v", err)
		}
		return
	}
	outcomes, err := experiments.SweepStrategies(cfg, strategies)
	if err != nil {
		fatalf("%v", err)
	}
	base := outcomes[0]
	t := stats.Table{Headers: []string{"Method", "Extra PGM", "PGM Imp.", "Extra ERS", "ERS Imp."}}
	for _, o := range outcomes {
		t.AddRow(o.Name,
			stats.FmtUS(o.MeanPgm),
			stats.FmtPct(stats.Improvement(base.MeanPgm, o.MeanPgm)),
			stats.FmtUS(o.MeanErs),
			stats.FmtPct(stats.Improvement(base.MeanErs, o.MeanErs)))
	}
	fmt.Print(t.String())
}

// applyOverride sets a pv.Params field by name on cfg.PV using reflection,
// so every model knob is reachable without a dedicated flag.
func applyOverride(cfg *experiments.Config, kv string) error {
	name, valStr, ok := strings.Cut(kv, "=")
	if !ok {
		return fmt.Errorf("override %q not of form Name=value", kv)
	}
	v := reflect.ValueOf(&cfg.PV).Elem().FieldByName(name)
	if !v.IsValid() {
		return fmt.Errorf("unknown pv.Params field %q", name)
	}
	switch v.Kind() {
	case reflect.Float64:
		f, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return err
		}
		v.SetFloat(f)
	case reflect.Int:
		i, err := strconv.Atoi(valStr)
		if err != nil {
			return err
		}
		v.SetInt(int64(i))
	case reflect.Uint64:
		u, err := strconv.ParseUint(valStr, 0, 64)
		if err != nil {
			return err
		}
		v.SetUint(u)
	default:
		return fmt.Errorf("field %q has unsupported kind %s", name, v.Kind())
	}
	return nil
}

// printBudget renders the model's per-word-line variance decomposition.
func printBudget(cfg experiments.Config) {
	p := cfg.PV
	p.Seed = cfg.Seed
	m := pv.New(p)
	t := stats.Table{Headers: []string{"Component", "Variance µs²", "Share"}}
	for _, c := range m.VarianceBudget(6, 400) {
		t.AddRow(c.Name, fmt.Sprintf("%.1f", c.Variance), stats.FmtPct(c.Share))
	}
	fmt.Print(t.String())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "calibrate: "+format+"\n", args...)
	os.Exit(1)
}

// runDiag is invoked via -deciles to print per-decile extra latency.
