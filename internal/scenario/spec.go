// Package scenario is the fault-campaign engine: it runs a declarative,
// seed-reproducible schedule of fault events — bad-block storms, chip
// dropouts, transient read-error bursts, power cuts with restore from
// checkpoint, retention bakes, backend kill/restart — against an in-process
// cluster (N block-service backends over real TCP, one striped volume on
// top) while open-loop traffic keeps flowing, verifies every read against a
// shadow map, and emits a fixed-format verdict table.
//
// Determinism contract: the engine drives the cluster in sequenced replay
// mode end to end (dense global tickets at the volume, dense per-backend
// tickets at each server), stamps every op's arrival on the simulated
// clock, and anchors events at stream positions, applying them only at
// quiescent barriers (all earlier ops completed, no op in flight). The
// optional noisy-neighbor tenant phase replays its two tenants' merged,
// pre-stamped streams through the same sequenced path. Every number in the
// verdict table is therefore a pure function of (spec, seed): two runs —
// with any worker count — produce byte-identical tables.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// Event kinds accepted in a campaign spec.
const (
	// KindBadBlocks marks Count sealed flash blocks bad on one backend,
	// drawn seed-reproducibly (ftl.MarkBadBlocks).
	KindBadBlocks = "bad-blocks"
	// KindChipReadErrors makes the next Count reads on Chip fail ECC
	// (recovered through RAID reconstruction).
	KindChipReadErrors = "chip-read-errors"
	// KindChipDropout fails every read on Chip until a chip-revive event.
	KindChipDropout = "chip-dropout"
	// KindChipRevive undoes a chip-dropout.
	KindChipRevive = "chip-revive"
	// KindRetentionBake ages all stored data by Units retention units.
	KindRetentionBake = "retention-bake"
	// KindPowerCut checkpoints, power-cycles and restores one backend's
	// device; its chips resume RecoverUS simulated µs after the cut.
	KindPowerCut = "power-cut"
	// KindKillBackend drops one backend out of the volume's replica fan-out
	// (reads fail over, writes skip the leg) until restart-backend.
	KindKillBackend = "kill-backend"
	// KindRestartBackend revives a killed backend and heals the stripe
	// units it missed by re-replicating the LPNs dirtied while it was down.
	KindRestartBackend = "restart-backend"
)

var eventKinds = map[string]bool{
	KindBadBlocks:      true,
	KindChipReadErrors: true,
	KindChipDropout:    true,
	KindChipRevive:     true,
	KindRetentionBake:  true,
	KindPowerCut:       true,
	KindKillBackend:    true,
	KindRestartBackend: true,
}

// Event is one timed fault in a campaign, anchored at a position in the
// deterministic op stream (AtOp ops into the campaign phase).
type Event struct {
	// AtOp is the campaign-stream position the event fires at: it is
	// applied after op AtOp-1 completed and before op AtOp is submitted.
	AtOp int `json:"at_op"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Backend is the target backend index.
	Backend int `json:"backend"`
	// Chip targets chip faults.
	Chip int `json:"chip,omitempty"`
	// Count parameterizes bad-blocks (blocks) and chip-read-errors (reads).
	Count int `json:"count,omitempty"`
	// Seed draws the bad-block storm. 0 inherits the campaign seed.
	Seed uint64 `json:"seed,omitempty"`
	// Units is the retention-bake dose.
	Units float64 `json:"units,omitempty"`
	// RecoverUS is the power-cut outage on the simulated clock.
	RecoverUS float64 `json:"recover_us,omitempty"`
	// WindowOps sizes the fault window: the P99.9 reported for this event
	// covers the WindowOps campaign ops from AtOp on (default: up to the
	// next event or the stream end).
	WindowOps int `json:"window_ops,omitempty"`
}

// TenantPhase configures the optional noisy-neighbor phase: one backend
// partitioned into a quiet and a noisy namespace, run twice — the quiet
// tenant solo for a baseline, then beside a quota-capped write flood — with
// per-tenant P99.9 in the verdict.
type TenantPhase struct {
	// Pages is each tenant's namespace size in logical pages (default 128).
	Pages int64 `json:"pages,omitempty"`
	// NoisyQuota caps the noisy tenant via the device's virtual-time pacing
	// (at most NoisyQuota chips kept busy on average) plus the server's
	// admission cap. 0 = uncapped — the quiet tenant eats the full
	// collision.
	NoisyQuota int `json:"noisy_quota"`
	// Ops is the quiet tenant's op count (default 400).
	Ops int `json:"ops,omitempty"`
	// QuietGapUS is the quiet tenant's open-loop inter-arrival gap on the
	// simulated clock (default 200).
	QuietGapUS float64 `json:"quiet_gap_us,omitempty"`
	// NoisyFactor is how many noisy ops arrive per quiet op (default 8) —
	// an all-write flood offered well past the noisy tenant's quota.
	NoisyFactor int `json:"noisy_factor,omitempty"`
}

// Spec is a declarative campaign. The zero value of optional fields picks
// the documented defaults; Validate fills them in.
type Spec struct {
	// Name labels the verdict table.
	Name string `json:"name"`
	// Seed drives every deterministic draw: the op stream, payloads and
	// (by default) fault storms.
	Seed uint64 `json:"seed"`
	// Backends is the cluster width (default 3).
	Backends int `json:"backends,omitempty"`
	// Replicas is the copies per stripe unit (default 2 — campaigns that
	// kill a backend need a survivor).
	Replicas int `json:"replicas,omitempty"`
	// Ops is the campaign op count after the fill phase (default 600).
	Ops int `json:"ops,omitempty"`
	// WorkingSet is the LPN span the campaign touches (default 256; also
	// the fill-phase size).
	WorkingSet int64 `json:"working_set,omitempty"`
	// WriteFrac is the write fraction of campaign ops (default 0.5).
	WriteFrac float64 `json:"write_frac,omitempty"`
	// GapUS is the open-loop inter-arrival gap on the simulated clock
	// (default 20).
	GapUS float64 `json:"gap_us,omitempty"`
	// Events is the fault schedule, sorted by AtOp.
	Events []Event `json:"events"`
	// Tenants optionally adds the noisy-neighbor phase.
	Tenants *TenantPhase `json:"tenants,omitempty"`
}

// DefaultSpec returns the canonical smoke campaign: open-loop mixed traffic
// over a 3-backend, 2-replica cluster, hit in order by a retention bake, a
// bad-block storm, a transient read-error burst, a whole-chip dropout and
// revive, a power cut with restore-from-checkpoint, and a backend
// kill/restart — with the noisy-neighbor tenant phase appended. The working
// set is sized so the fill seals superblocks on every backend (the
// bad-block storm draws from the sealed pool).
func DefaultSpec() *Spec {
	s := &Spec{
		Name:       "smoke",
		Seed:       42,
		Backends:   3,
		Replicas:   2,
		Ops:        600,
		WorkingSet: 512,
		Events: []Event{
			{AtOp: 60, Kind: KindRetentionBake, Backend: 2, Units: 0.5},
			{AtOp: 120, Kind: KindBadBlocks, Backend: 0, Count: 4},
			{AtOp: 220, Kind: KindChipReadErrors, Backend: 1, Chip: 1, Count: 8},
			{AtOp: 300, Kind: KindChipDropout, Backend: 2, Chip: 2},
			{AtOp: 380, Kind: KindChipRevive, Backend: 2, Chip: 2},
			{AtOp: 420, Kind: KindPowerCut, Backend: 1, RecoverUS: 5000},
			{AtOp: 480, Kind: KindKillBackend, Backend: 0},
			{AtOp: 560, Kind: KindRestartBackend, Backend: 0},
		},
		Tenants: &TenantPhase{NoisyQuota: 2},
	}
	if err := s.Validate(); err != nil {
		panic(err) // the canonical spec must validate
	}
	return s
}

// ParseSpec decodes a JSON campaign spec strictly (unknown fields are
// errors — a typo must not silently drop a fault) and validates it.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: parse spec: trailing data after document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate fills defaults and checks the spec's internal consistency:
// known event kinds, targets inside the cluster, events sorted and inside
// the stream, kill/restart pairing, and restart never before kill.
func (s *Spec) Validate() error {
	if s.Name == "" {
		s.Name = "campaign"
	}
	if s.Backends == 0 {
		s.Backends = 3
	}
	if s.Backends < 1 {
		return fmt.Errorf("scenario: %d backends", s.Backends)
	}
	if s.Replicas == 0 {
		s.Replicas = 2
	}
	if s.Replicas < 1 || s.Replicas > s.Backends {
		return fmt.Errorf("scenario: %d replicas on %d backends", s.Replicas, s.Backends)
	}
	if s.Ops == 0 {
		s.Ops = 600
	}
	if s.Ops < 1 {
		return fmt.Errorf("scenario: %d ops", s.Ops)
	}
	if s.WorkingSet == 0 {
		s.WorkingSet = 256
	}
	if s.WorkingSet < 1 {
		return fmt.Errorf("scenario: working set %d", s.WorkingSet)
	}
	if s.WriteFrac == 0 {
		s.WriteFrac = 0.5
	}
	if s.WriteFrac < 0 || s.WriteFrac > 1 {
		return fmt.Errorf("scenario: write fraction %v", s.WriteFrac)
	}
	if s.GapUS == 0 {
		s.GapUS = 20
	}
	if s.GapUS < 0 {
		return fmt.Errorf("scenario: arrival gap %v", s.GapUS)
	}
	if !sort.SliceIsSorted(s.Events, func(i, j int) bool { return s.Events[i].AtOp < s.Events[j].AtOp }) {
		return fmt.Errorf("scenario: events not sorted by at_op")
	}
	down := make(map[int]bool)
	chipDown := make(map[[2]int]bool)
	for i := range s.Events {
		e := &s.Events[i]
		if !eventKinds[e.Kind] {
			return fmt.Errorf("scenario: event %d: unknown kind %q", i, e.Kind)
		}
		if e.AtOp < 0 || e.AtOp > s.Ops {
			return fmt.Errorf("scenario: event %d: at_op %d outside [0,%d]", i, e.AtOp, s.Ops)
		}
		if e.Backend < 0 || e.Backend >= s.Backends {
			return fmt.Errorf("scenario: event %d: backend %d of %d", i, e.Backend, s.Backends)
		}
		if e.WindowOps < 0 {
			return fmt.Errorf("scenario: event %d: window %d", i, e.WindowOps)
		}
		switch e.Kind {
		case KindBadBlocks:
			if e.Count < 1 {
				return fmt.Errorf("scenario: event %d: bad-blocks count %d", i, e.Count)
			}
			if e.Seed == 0 {
				e.Seed = s.Seed + uint64(i) + 1
			}
		case KindChipReadErrors:
			if e.Count < 1 {
				return fmt.Errorf("scenario: event %d: read-error count %d", i, e.Count)
			}
		case KindChipDropout:
			key := [2]int{e.Backend, e.Chip}
			if chipDown[key] {
				return fmt.Errorf("scenario: event %d: chip %d/%d already down", i, e.Backend, e.Chip)
			}
			chipDown[key] = true
		case KindChipRevive:
			key := [2]int{e.Backend, e.Chip}
			if !chipDown[key] {
				return fmt.Errorf("scenario: event %d: chip %d/%d is not down", i, e.Backend, e.Chip)
			}
			delete(chipDown, key)
		case KindRetentionBake:
			if e.Units <= 0 {
				return fmt.Errorf("scenario: event %d: bake units %v", i, e.Units)
			}
		case KindPowerCut:
			if e.RecoverUS < 0 {
				return fmt.Errorf("scenario: event %d: recover_us %v", i, e.RecoverUS)
			}
		case KindKillBackend:
			if down[e.Backend] {
				return fmt.Errorf("scenario: event %d: backend %d already down", i, e.Backend)
			}
			if s.Replicas < 2 {
				return fmt.Errorf("scenario: kill-backend needs ≥2 replicas")
			}
			if len(down) > 0 {
				return fmt.Errorf("scenario: event %d: one backend down at a time", i)
			}
			down[e.Backend] = true
		case KindRestartBackend:
			if !down[e.Backend] {
				return fmt.Errorf("scenario: event %d: backend %d is not down", i, e.Backend)
			}
			delete(down, e.Backend)
		}
	}
	if len(down) > 0 {
		return fmt.Errorf("scenario: campaign ends with a backend still down")
	}
	for k := range chipDown {
		return fmt.Errorf("scenario: campaign ends with chip %d/%d still down", k[0], k[1])
	}
	if t := s.Tenants; t != nil {
		if t.Pages == 0 {
			t.Pages = 128
		}
		if t.Ops == 0 {
			t.Ops = 400
		}
		if t.QuietGapUS == 0 {
			t.QuietGapUS = 200
		}
		if t.NoisyFactor == 0 {
			t.NoisyFactor = 8
		}
		if t.Pages < 1 || t.Ops < 1 || t.QuietGapUS <= 0 || t.NoisyFactor < 1 || t.NoisyQuota < 0 {
			return fmt.Errorf("scenario: tenant phase %+v", *t)
		}
	}
	return nil
}
