package experiments

import (
	"fmt"

	"superfast/internal/assembly"
	"superfast/internal/chamber"
	"superfast/internal/core"
	"superfast/internal/flash"
	"superfast/internal/pv"
	"superfast/internal/sim"
	"superfast/internal/stats"
)

func init() {
	register("sim-throughput", runSimThroughput)
}

// runSimThroughput measures the device-level cost of extra latency: a full
// SSD topology (channels × chips × planes) programs a stream of organized
// superblocks; the per-chip multi-plane occupancy is the maximum over the
// chip's planes, so poor organization wastes chip time and throughput. At
// this scale (one superblock spans 32 planes) the window searches are
// combinatorially impossible — only the zip baselines and QSTR-MED's
// linear-cost greedy remain, which is the paper's practicality argument.
func runSimThroughput(cfg Config) (*Result, error) {
	dc := sim.DefaultConfig()
	if cfg.Geometry.Strings != 4 {
		dc.PlanesPerChip = cfg.Geometry.Strings
	}
	// Build a flash geometry matching the sim topology: every plane is a
	// lane of the one big superblock group.
	g := flash.Geometry{
		Chips:          dc.Chips(),
		PlanesPerChip:  dc.PlanesPerChip,
		BlocksPerPlane: 24,
		Layers:         cfg.Geometry.Layers,
		Strings:        cfg.Geometry.Strings,
		PageSize:       dc.PageBytes,
		SpareSize:      cfg.Geometry.SpareSize,
	}
	if g.BlocksPerPlane > cfg.Geometry.BlocksPerPlane {
		g.BlocksPerPlane = cfg.Geometry.BlocksPerPlane
	}
	p := cfg.PV
	p.Seed = cfg.Seed
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr, err := flash.NewArray(g, pv.New(p), flash.DefaultECC())
	if err != nil {
		return nil, err
	}
	tb := chamber.New(arr)

	// One group spanning every plane lane.
	lanes := make([]assembly.Lane, g.Lanes())
	blocks := chamber.BlockRange(0, g.BlocksPerPlane)
	for l := range lanes {
		ps, err := tb.MeasureLane(l, blocks, cfg.PESteps[0], true)
		if err != nil {
			return nil, err
		}
		lanes[l] = assembly.Lane{ID: l, Blocks: ps}
	}

	t := &stats.Table{
		Title:   "Device throughput programming organized superblocks",
		Headers: []string{"Organizer", "QD", "Throughput MB/s", "SuperWL µs", "Chip util", "Sync idle ms"},
	}
	strategies := []assembly.Assembler{
		assembly.Random{Seed: cfg.Seed + 1},
		assembly.Sequential{},
		assembly.ByPgmSum{},
		core.BatchAssembler{K: cfg.MedWindow},
	}
	type outcome struct {
		name string
		tp   float64
	}
	var outs []outcome
	for _, s := range strategies {
		res, err := s.Assemble(lanes)
		if err != nil {
			return nil, err
		}
		jobs := make([]sim.Job, len(res.Superblocks))
		for k, sb := range res.Superblocks {
			job := sim.Job{MemberLat: make([][]float64, len(lanes))}
			for l, bi := range sb {
				job.MemberLat[l] = lanes[l].Blocks[bi].LWL
			}
			jobs[k] = job
		}
		for _, qd := range []int{1, 2} {
			c := dc
			c.QueueDepth = qd
			rep, err := sim.Run(c, jobs)
			if err != nil {
				return nil, err
			}
			t.AddRow(s.Name(), fmt.Sprintf("%d", qd),
				fmt.Sprintf("%.1f", rep.ThroughputMBps),
				stats.FmtUS(rep.SuperWLLatency),
				stats.FmtPct(rep.ChipUtilization),
				fmt.Sprintf("%.1f", rep.ChipIdleSync/1000))
			if qd == 1 {
				outs = append(outs, outcome{s.Name(), rep.ThroughputMBps})
			}
		}
	}
	text := ""
	if len(outs) == 4 {
		text = fmt.Sprintf("QSTR-MED vs random program throughput at QD1: %s higher\n",
			stats.FmtPct(outs[3].tp/outs[0].tp-1))
	}
	return &Result{ID: "sim-throughput", Tables: []*stats.Table{t}, Text: text}, nil
}
