// Package pv models process variation of 3D NAND flash memory.
//
// The model replaces the paper's 24 real SKH 3D-TLC chips. It is built so
// that every effect the paper's superblock-organization strategies exploit is
// present with a controllable magnitude:
//
//   - a V-shaped per-layer base profile (etching aperture, Fig. 3), shared by
//     all chips, with vendor-style word-line-layer groups;
//   - chip-specific layer perturbations (cross-chip process variation, the
//     "distinct patterns" of Fig. 5 bottom);
//   - a block-index component shared across chips (spatial similarity that
//     the paper's sequential assembly exploits);
//   - a per-block local quality offset (what PGM-LTN sorting matches);
//   - per-string offsets with shared-index and local parts (what STR-rank
//     and the eigen sequences match);
//   - static per-word-line noise (the irreducible floor that bounds even the
//     local-optimal assembly near the paper's 19.49% ceiling);
//   - ISPP-style quantization of program latency (Fig. 9 shows repeated
//     discrete values such as 1898.6 µs; ties are what make rank-equality
//     distances meaningful);
//   - erase latency correlated with the block's program-quality offset plus
//     rare slow-block spikes, so that grouping by program similarity also
//     shrinks extra erase latency (Table V);
//   - wear drift and jitter so measurements at different P/E cycles differ
//     the way Fig. 15 expects.
//
// All draws are hash-derived from (seed, coordinates), so the model is pure:
// the same coordinate always has the same latency, regardless of visit order.
package pv

import (
	"fmt"
	"math"
	"sync"

	"superfast/internal/prng"
)

// Coord addresses one logical word-line inside the flash array.
type Coord struct {
	Chip   int
	Plane  int
	Block  int
	Layer  int // physical word-line layer, 0..Layers-1
	String int // 0..Strings-1
}

// PageType enumerates the pages of a TLC logical word-line.
type PageType int

// Page types of a TLC word-line, ordered fastest-read to slowest-read.
const (
	LSB PageType = iota
	CSB
	MSB
	NumPageTypes
)

func (t PageType) String() string {
	switch t {
	case LSB:
		return "LSB"
	case CSB:
		return "CSB"
	case MSB:
		return "MSB"
	}
	return fmt.Sprintf("PageType(%d)", int(t))
}

// Params controls every component of the variation model. All latencies are
// in microseconds. The defaults are calibrated so that random superblock
// assembly over four lanes shows ≈13,000 µs extra program latency and
// ≈42 µs extra erase latency per superblock, matching the paper's Fig. 6.
type Params struct {
	Seed uint64

	Layers  int // physical word-line layers per block (paper: 96)
	Strings int // strings per block (paper: 4)

	// Operating temperature in °C (the KSON chamber's knob). Program is
	// slightly faster and erase slightly slower when hot; each chip has its
	// own small sensitivity so cross-temperature behaviour is not a pure
	// global shift.
	Temperature   float64
	TempRef       float64 // reference temperature of the base latencies
	PgmTempCoeff  float64 // µs per °C (negative: hotter programs faster)
	ErsTempCoeff  float64 // µs per °C
	TempChipSigma float64 // per-chip spread of the temperature sensitivity

	// Program latency components.
	PgmBase          float64 // mean word-line program latency
	LayerAmp         float64 // amplitude of the V-shape layer profile
	LayerEdgePenalty float64 // extra latency on the first/last layers
	LayerGroupSize   int     // vendor word-line-layer group width
	LayerGroupSigma  float64 // per-(chip,group) offset sigma
	ChipLayerSigma   float64 // per-(chip,layer) offset sigma
	ChipPgmSigma     float64 // flat per-chip program offset (irreducible across a fixed chip set)
	StringClasses    int     // number of discrete string-pattern classes
	StringClassSigma float64 // magnitude of a class's per-string pattern
	StringIdioSigma  float64 // per-block idiosyncratic string deviation
	StringSharedProb float64 // probability a block's class follows its block index across chips
	StringScaleSigma float64 // per-block log-normal scale of the string offsets
	BlockSharedSig   float64 // per-blockIndex offset shared across chips
	BlockLocalSig    float64 // per-(chip,plane,block) offset
	BlockLayerSigma  float64 // per-(block,layer-group) idiosyncratic offset
	LayerClasses     int     // discrete per-block layer-profile classes
	LayerClassSigma  float64 // magnitude of a layer class's per-group pattern
	LayerClassShared float64 // probability a block's layer class follows its block index
	WLStaticSigma    float64 // static per-word-line noise
	PgmJitterSigma   float64 // temporal measurement jitter
	PgmStep          float64 // ISPP quantization grid
	PgmWearCoeff     float64 // µs drift per P/E cycle (negative: wears faster)
	PgmWearNoise     float64 // extra per-op noise sigma per 1000 P/E cycles

	// Erase latency components.
	ErsBase        float64
	ChipErsSigma   float64 // per-chip erase offset
	ErsCorrCoeff   float64 // coupling of erase offset to block program offset
	ErsLocalSigma  float64 // erase-only per-block offset
	ErsSpikeQuant  float64 // block program offset z-score above which a block is a slow-erase spike
	ErsSpikeMin    float64
	ErsSpikeMax    float64
	ErsSpikeSlope  float64 // spike µs per z-score unit beyond the threshold
	ErsJitterSigma float64
	ErsStep        float64 // erase-loop quantization grid
	ErsWearCoeff   float64 // µs drift per P/E cycle (positive: erase slows)

	// Read latency.
	ReadBase   [NumPageTypes]float64
	ReadSigma  float64
	ReadJitter float64

	// Reliability: raw bit error rate model.
	RBERBase      float64 // at P/E 0, no retention
	RBERPECoeff   float64 // multiplicative growth per 1000 P/E cycles
	RBERRetCoeff  float64 // multiplicative growth per retention unit
	RBERBlockSpan float64 // per-block multiplier spread (log-normal sigma)

	// Endurance: the P/E count at which a block's erase starts failing.
	EnduranceBase    float64 // median endurance, cycles
	EnduranceSpan    float64 // log-normal sigma of per-block endurance
	EnduranceQuality float64 // endurance reduction per z of program offset (slow blocks die sooner)
}

// DefaultParams returns the calibrated model used throughout the repository.
func DefaultParams() Params {
	return Params{
		Seed:    0x5eed_0001,
		Layers:  96,
		Strings: 4,

		Temperature:   25,
		TempRef:       25,
		PgmTempCoeff:  -0.6,
		ErsTempCoeff:  0.35,
		TempChipSigma: 0.15,

		PgmBase:          1660,
		LayerAmp:         130,
		LayerEdgePenalty: 180,
		LayerGroupSize:   8,
		LayerGroupSigma:  4,
		ChipLayerSigma:   4,
		ChipPgmSigma:     8,
		StringClasses:    8,
		StringClassSigma: 7.8,
		StringIdioSigma:  2.5,
		StringSharedProb: 0.8,
		StringScaleSigma: 0.3,
		BlockSharedSig:   3.2,
		BlockLocalSig:    5.9,
		BlockLayerSigma:  3,
		LayerClasses:     6,
		LayerClassSigma:  6,
		LayerClassShared: 0.3,
		WLStaticSigma:    5.5,
		PgmJitterSigma:   1.5,
		PgmStep:          6.1,
		PgmWearCoeff:     -0.015,
		PgmWearNoise:     1.0,

		ErsBase:        3400,
		ChipErsSigma:   5,
		ErsCorrCoeff:   2.2,
		ErsLocalSigma:  7.3,
		ErsSpikeQuant:  1.88,
		ErsSpikeMin:    40,
		ErsSpikeMax:    140,
		ErsSpikeSlope:  80,
		ErsJitterSigma: 1.0,
		ErsStep:        10,
		ErsWearCoeff:   0.02,

		ReadBase:   [NumPageTypes]float64{45, 62, 80},
		ReadSigma:  2.5,
		ReadJitter: 0.8,

		RBERBase:      2e-5,
		RBERPECoeff:   0.9,
		RBERRetCoeff:  0.35,
		RBERBlockSpan: 0.25,

		EnduranceBase:    9000,
		EnduranceSpan:    0.22,
		EnduranceQuality: 0.18,
	}
}

// Validate reports whether the parameters describe a usable model.
func (p Params) Validate() error {
	switch {
	case p.Layers <= 0:
		return fmt.Errorf("pv: Layers must be positive, got %d", p.Layers)
	case p.Strings <= 0:
		return fmt.Errorf("pv: Strings must be positive, got %d", p.Strings)
	case p.LayerGroupSize <= 0:
		return fmt.Errorf("pv: LayerGroupSize must be positive, got %d", p.LayerGroupSize)
	case p.PgmBase <= 0 || p.ErsBase <= 0:
		return fmt.Errorf("pv: base latencies must be positive")
	case p.PgmStep < 0 || p.ErsStep < 0:
		return fmt.Errorf("pv: quantization steps must be non-negative")
	}
	return nil
}

// Domain tags keep the hash streams of independent components disjoint.
const (
	domLayerGroup = iota + 1
	domChipLayer
	domStringShared
	domStringLocal
	domBlockShared
	domBlockLocal
	domWLStatic
	domPgmJitter
	domChipErs
	domErsLocal
	domErsSpike
	domErsJitter
	domRead
	domReadJitter
	domRBER
	domWearNoise
	domStringScale
	domBlockLayer
	domStringClassShared
	domStringClassLocal
	domStringClassPick
	domStringClassPattern
	domLayerClassShared
	domLayerClassLocal
	domLayerClassPick
	domLayerClassPattern
	domChipPgm
	domEndurance
	domTempChip
)

// Model evaluates the variation model. It is safe for concurrent use.
type Model struct {
	p Params

	// Memoized latency kernels, one per geometry (see kernel.go). Guarded by
	// kmu; the kernels themselves are lock-free once handed out.
	kmu     sync.Mutex
	kernels []*Kernel
}

// interned memoizes models by their (comparable) parameter set. A model is
// a pure function of its Params — all draws are hash-derived, and the only
// mutable state is the lock-free kernel cache — so every consumer of the
// same parameters can share one instance. Sharing is what makes the cached
// static tables pay off across experiment runs: a suite that builds dozens
// of arrays over the same Params (sweeps, DFTL cache sizes, GC policies)
// builds each block's tables once instead of once per array.
var (
	internMu sync.Mutex
	interned map[Params]*Model
)

// New returns the model for the given parameters, memoized per parameter
// set: calling New twice with equal Params returns the same instance (and
// therefore the same cached latency kernels). It panics if the parameters
// are invalid; use Params.Validate to check.
func New(p Params) *Model {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	internMu.Lock()
	defer internMu.Unlock()
	if m := interned[p]; m != nil {
		return m
	}
	m := &Model{p: p}
	if interned == nil {
		interned = make(map[Params]*Model)
	}
	interned[p] = m
	return m
}

// Params returns the model parameters.
func (m *Model) Params() Params { return m.p }

// layerProfile is the V-shape base profile common to all chips: large
// apertures (fast cells) in the middle layers, slow cells near the edges.
func (m *Model) layerProfile(layer int) float64 {
	n := m.p.Layers
	if n == 1 {
		return 0
	}
	x := 2*float64(layer)/float64(n-1) - 1 // -1 .. 1
	v := m.p.LayerAmp * x * x
	// Edge layers (dummy-adjacent word-lines) carry an extra penalty.
	switch layer {
	case 0, n - 1:
		v += m.p.LayerEdgePenalty
	case 1, n - 2:
		v += m.p.LayerEdgePenalty * 0.35
	}
	return v
}

func (m *Model) chipLayerOffset(chip, layer int) float64 {
	g := layer / m.p.LayerGroupSize
	flat := m.p.ChipPgmSigma * prng.NormalFromHash(prng.Hash(m.p.Seed, domChipPgm, chip))
	group := m.p.LayerGroupSigma * prng.NormalFromHash(prng.Hash(m.p.Seed, domLayerGroup, chip, g))
	fine := m.p.ChipLayerSigma * prng.NormalFromHash(prng.Hash(m.p.Seed, domChipLayer, chip, layer))
	return flat + group + fine
}

// StringClass returns the discrete string-pattern class of a block. NAND
// vendors program word-line groups with one of a few discrete operating
// parameter sets (§III), so blocks fall into pattern classes rather than
// having fully idiosyncratic string behaviour; class populations are what
// keeps similarity matching sustainable across a whole chip. With
// probability StringSharedProb the class follows the block index (shared
// across chips — the locality that sequential assembly exploits); otherwise
// it is chip-local.
func (m *Model) StringClass(chip, plane, block int) int {
	if m.p.StringClasses <= 1 {
		return 0
	}
	pick := prng.UnitFromHash(prng.Hash(m.p.Seed, domStringClassPick, chip, plane, block))
	if pick < m.p.StringSharedProb {
		return int(prng.Hash(m.p.Seed, domStringClassShared, block) % uint64(m.p.StringClasses))
	}
	return int(prng.Hash(m.p.Seed, domStringClassLocal, chip, plane, block) % uint64(m.p.StringClasses))
}

// stringOffset is the per-string program-latency deviation of one block:
// the block's class pattern plus a small idiosyncratic deviation, centered
// per block (the mean is part of the block offset, not the pattern) and
// stretched by a per-block log-normal scale. Two same-class blocks share the
// string *ordering*; the scale and the idiosyncratic part are the magnitude
// detail that the 1-bit eigen sequence and the rank vectors discard but the
// local-optimal search keeps.
func (m *Model) stringOffset(c Coord) float64 {
	class := m.StringClass(c.Chip, c.Plane, c.Block)
	raw := func(s int) float64 {
		base := m.p.StringClassSigma * prng.NormalFromHash(prng.Hash(m.p.Seed, domStringClassPattern, class, s))
		idio := m.p.StringIdioSigma * prng.NormalFromHash(prng.Hash(m.p.Seed, domStringLocal, c.Chip, c.Plane, c.Block, s))
		return base + idio
	}
	sum := 0.0
	for s := 0; s < m.p.Strings; s++ {
		sum += raw(s)
	}
	centered := raw(c.String) - sum/float64(m.p.Strings)
	if m.p.StringScaleSigma > 0 {
		scale := math.Exp(m.p.StringScaleSigma * prng.NormalFromHash(prng.Hash(m.p.Seed, domStringScale, c.Chip, c.Plane, c.Block)))
		centered *= scale
	}
	return centered
}

// BlockPgmOffset is the block-constant program-latency offset: the shared
// block-index component plus the per-block local quality. The erase model
// couples to it, which is why grouping blocks by program similarity also
// shrinks extra erase latency.
func (m *Model) BlockPgmOffset(chip, plane, block int) float64 {
	shared := m.p.BlockSharedSig * prng.NormalFromHash(prng.Hash(m.p.Seed, domBlockShared, block))
	local := m.p.BlockLocalSig * prng.NormalFromHash(prng.Hash(m.p.Seed, domBlockLocal, chip, plane, block))
	return shared + local
}

// LayerClass returns the discrete layer-profile class of a block: which of
// the vendor's per-layer-group operating-parameter shapes the block follows
// (§III). Like string classes, layer classes make layer-pattern similarity a
// population property rather than a per-block accident.
func (m *Model) LayerClass(chip, plane, block int) int {
	if m.p.LayerClasses <= 1 {
		return 0
	}
	pick := prng.UnitFromHash(prng.Hash(m.p.Seed, domLayerClassPick, chip, plane, block))
	if pick < m.p.LayerClassShared {
		return int(prng.Hash(m.p.Seed, domLayerClassShared, block) % uint64(m.p.LayerClasses))
	}
	return int(prng.Hash(m.p.Seed, domLayerClassLocal, chip, plane, block) % uint64(m.p.LayerClasses))
}

// blockLayerOffset is the per-(block, layer-group) latency component: the
// block's layer-class pattern plus a small idiosyncratic part. Blocks differ
// in *which layer bands* run slow — a pattern that full latency matching
// (the local-optimal search) and per-string layer ranks (PWL-rank) can
// align, but per-layer string ranks (STR-rank) and the eigen bits cannot
// see, because it shifts all strings of a layer together.
func (m *Model) blockLayerOffset(c Coord) float64 {
	g := c.Layer / m.p.LayerGroupSize
	v := 0.0
	if m.p.LayerClassSigma > 0 && m.p.LayerClasses > 1 {
		class := m.LayerClass(c.Chip, c.Plane, c.Block)
		v += m.p.LayerClassSigma * prng.NormalFromHash(prng.Hash(m.p.Seed, domLayerClassPattern, class, g))
	}
	if m.p.BlockLayerSigma > 0 {
		v += m.p.BlockLayerSigma * prng.NormalFromHash(prng.Hash(m.p.Seed, domBlockLayer, c.Chip, c.Plane, c.Block, g))
	}
	return v
}

func (m *Model) wlStatic(c Coord) float64 {
	return m.p.WLStaticSigma * prng.NormalFromHash(prng.Hash(m.p.Seed, domWLStatic, c.Chip, c.Plane, c.Block, c.Layer, c.String))
}

func quantize(v, step float64) float64 {
	if step <= 0 {
		return v
	}
	return math.Round(v/step) * step
}

// tempShift is the latency shift of the current operating temperature for
// one chip: the global coefficient scaled by the chip's own sensitivity.
func (m *Model) tempShift(chip int, coeff float64) float64 {
	dt := m.p.Temperature - m.p.TempRef
	if dt == 0 || coeff == 0 {
		return 0
	}
	sens := 1 + m.p.TempChipSigma*prng.NormalFromHash(prng.Hash(m.p.Seed, domTempChip, chip))
	return coeff * dt * sens
}

// ProgramLatency returns the program latency in µs for one logical word-line
// at the given P/E cycle count. nonce distinguishes repeated measurements of
// the same word-line (temporal jitter); pass the chip's operation counter.
func (m *Model) ProgramLatency(c Coord, pe int, nonce uint64) float64 {
	v := m.p.PgmBase +
		m.layerProfile(c.Layer) +
		m.chipLayerOffset(c.Chip, c.Layer) +
		m.stringOffset(c) +
		m.BlockPgmOffset(c.Chip, c.Plane, c.Block) +
		m.blockLayerOffset(c) +
		m.wlStatic(c)
	v += m.p.PgmWearCoeff * float64(pe)
	v += m.tempShift(c.Chip, m.p.PgmTempCoeff)
	if m.p.PgmJitterSigma > 0 || m.p.PgmWearNoise > 0 {
		sig := m.p.PgmJitterSigma + m.p.PgmWearNoise*float64(pe)/1000
		h := prng.Hash(m.p.Seed, domPgmJitter, c.Chip, c.Plane, c.Block, c.Layer, c.String)
		v += sig * prng.NormalFromHash(prng.SplitMix64(h^nonce))
	}
	v = quantize(v, m.p.PgmStep)
	if min := m.p.PgmBase * 0.5; v < min {
		v = min
	}
	return v
}

// ErsSpike returns the deterministic slow-erase spike of a block, or 0.
// Blocks whose program-quality offset is far in the slow tail are also slow
// to erase: they are the spike points of Fig. 5 (top). The spike magnitude
// grows monotonically with the program offset, so pairing blocks by program
// latency also pairs spikes of similar size.
func (m *Model) ErsSpike(chip, plane, block int) float64 {
	sigma := math.Hypot(m.p.BlockSharedSig, m.p.BlockLocalSig)
	if sigma == 0 {
		return 0
	}
	z := m.BlockPgmOffset(chip, plane, block) / sigma
	if z < m.p.ErsSpikeQuant {
		return 0
	}
	v := m.p.ErsSpikeMin + (z-m.p.ErsSpikeQuant)*m.p.ErsSpikeSlope
	if v > m.p.ErsSpikeMax {
		v = m.p.ErsSpikeMax
	}
	return v
}

// EraseLatency returns the block erase latency in µs at the given P/E count.
func (m *Model) EraseLatency(chip, plane, block, pe int, nonce uint64) float64 {
	v := m.p.ErsBase +
		m.p.ChipErsSigma*prng.NormalFromHash(prng.Hash(m.p.Seed, domChipErs, chip)) +
		m.p.ErsCorrCoeff*m.BlockPgmOffset(chip, plane, block) +
		m.p.ErsLocalSigma*prng.NormalFromHash(prng.Hash(m.p.Seed, domErsLocal, chip, plane, block)) +
		m.ErsSpike(chip, plane, block)
	v += m.p.ErsWearCoeff * float64(pe)
	v += m.tempShift(chip, m.p.ErsTempCoeff)
	if m.p.ErsJitterSigma > 0 {
		h := prng.Hash(m.p.Seed, domErsJitter, chip, plane, block)
		v += m.p.ErsJitterSigma * prng.NormalFromHash(prng.SplitMix64(h^nonce))
	}
	v = quantize(v, m.p.ErsStep)
	if min := m.p.ErsBase * 0.5; v < min {
		v = min
	}
	return v
}

// ReadLatency returns the sense latency in µs of one page (no ECC retries;
// the flash package adds retry penalties from the RBER model).
func (m *Model) ReadLatency(c Coord, t PageType, nonce uint64) float64 {
	if t < 0 || t >= NumPageTypes {
		panic(fmt.Sprintf("pv: invalid page type %d", int(t)))
	}
	v := m.p.ReadBase[t] +
		m.p.ReadSigma*prng.NormalFromHash(prng.Hash(m.p.Seed, domRead, c.Chip, c.Plane, c.Block, c.Layer, c.String, int(t)))
	if m.p.ReadJitter > 0 {
		h := prng.Hash(m.p.Seed, domReadJitter, c.Chip, c.Plane, c.Block)
		v += m.p.ReadJitter * prng.NormalFromHash(prng.SplitMix64(h^nonce))
	}
	if min := m.p.ReadBase[t] * 0.5; v < min {
		v = min
	}
	return v
}

// Endurance returns the block's P/E endurance limit: the cycle count at
// which its erase begins to fail and the block must be retired. Endurance is
// log-normally distributed and anti-correlated with the block's program
// offset — slow blocks wear out sooner, consistent with the 6.69× cross-chip
// endurance variability the paper cites from prior characterization.
func (m *Model) Endurance(chip, plane, block int) int {
	if m.p.EnduranceBase <= 0 {
		return math.MaxInt32
	}
	sigma := math.Hypot(m.p.BlockSharedSig, m.p.BlockLocalSig)
	z := 0.0
	if sigma > 0 {
		z = m.BlockPgmOffset(chip, plane, block) / sigma
	}
	span := m.p.EnduranceSpan * prng.NormalFromHash(prng.Hash(m.p.Seed, domEndurance, chip, plane, block))
	e := m.p.EnduranceBase * math.Exp(span-m.p.EnduranceQuality*z)
	if e < 1 {
		e = 1
	}
	return int(e)
}

// RBER returns the raw bit error rate of a page given the block's wear and
// retention age (in arbitrary retention units; one HTDR bake step = 1).
func (m *Model) RBER(c Coord, pe int, retention float64) float64 {
	blk := math.Exp(m.p.RBERBlockSpan * prng.NormalFromHash(prng.Hash(m.p.Seed, domRBER, c.Chip, c.Plane, c.Block)))
	r := m.p.RBERBase * blk *
		math.Exp(m.p.RBERPECoeff*float64(pe)/1000) *
		math.Exp(m.p.RBERRetCoeff*retention)
	if r > 0.5 {
		r = 0.5
	}
	return r
}
