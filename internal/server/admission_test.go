package server

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionCapBlocks(t *testing.T) {
	a := newAdmission(2)
	for i := 0; i < 2; i++ {
		if err := a.acquire(0, false, time.Time{}, 0); err != nil {
			t.Fatal(err)
		}
	}
	granted := make(chan struct{})
	go func() {
		if err := a.acquire(0, false, time.Time{}, 0); err != nil {
			t.Error(err)
		}
		close(granted)
	}()
	select {
	case <-granted:
		t.Fatal("third acquire should block at cap 2")
	case <-time.After(30 * time.Millisecond):
	}
	a.release(0)
	select {
	case <-granted:
	case <-time.After(time.Second):
		t.Fatal("release did not unblock the waiter")
	}
	if got := a.load(); got != 2 {
		t.Fatalf("load = %d, want 2", got)
	}
}

func TestAdmissionSequencedOrder(t *testing.T) {
	a := newAdmission(8)
	var mu sync.Mutex
	var order []uint64
	var wg sync.WaitGroup
	// Start in reverse so the natural goroutine order fights the ticket order.
	for _, seq := range []uint64{3, 2, 1, 0} {
		wg.Add(1)
		go func(seq uint64) {
			defer wg.Done()
			if err := a.acquire(seq, true, time.Time{}, 0); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, seq)
			mu.Unlock()
		}(seq)
		time.Sleep(5 * time.Millisecond) // let each waiter park before the next starts
	}
	wg.Wait()
	for i, seq := range order {
		if seq != uint64(i) {
			t.Fatalf("grant order %v, want ascending tickets", order)
		}
	}
}

func TestAdmissionSequencedRetire(t *testing.T) {
	a := newAdmission(1)
	if err := a.acquire(0, true, time.Time{}, 0); err != nil {
		t.Fatal(err)
	}
	// Ticket 2's waiter parks behind the missing ticket 1 (and the full cap).
	granted2 := make(chan struct{})
	go func() {
		if err := a.acquire(2, true, time.Time{}, 0); err != nil {
			t.Error(err)
		}
		close(granted2)
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-granted2:
		t.Fatal("ticket 2 granted before ticket 1 was retired")
	default:
	}
	// Ticket 1 rejects at the head (blocked by the cap, deadline expired):
	// the cursor must advance past it.
	past := time.Now().Add(-time.Millisecond)
	if err := a.acquire(1, true, past, 0); !errors.Is(err, errDeadline) {
		t.Fatalf("expired acquire = %v, want errDeadline", err)
	}
	a.release(0) // ticket 0 done; ticket 2 is now the head and has the slot
	select {
	case <-granted2:
	case <-time.After(time.Second):
		t.Fatal("retiring ticket 1 did not unblock ticket 2")
	}

	// Ticket 4 rejects ahead of the cursor (blocked on the seq mismatch): it
	// must be skipped when the cursor reaches it, so ticket 5 runs after 3.
	if err := a.acquire(4, true, past, 0); !errors.Is(err, errDeadline) {
		t.Fatalf("ahead-of-cursor reject = %v", err)
	}
	a.release(0) // ticket 2 done
	done := make(chan struct{})
	go func() {
		if err := a.acquire(3, true, time.Time{}, 0); err != nil {
			t.Error(err)
		}
		a.release(0)
		if err := a.acquire(5, true, time.Time{}, 0); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("skipped ticket wedged the cursor")
	}
}

func TestAdmissionDeadline(t *testing.T) {
	a := newAdmission(1)
	if err := a.acquire(0, false, time.Time{}, 0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := a.acquire(0, false, time.Now().Add(30*time.Millisecond), 0)
	if !errors.Is(err, errDeadline) {
		t.Fatalf("err = %v, want errDeadline", err)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Fatalf("rejected after %v, before the deadline", waited)
	}
}

func TestAdmissionExpiredEntryWithFreeSlot(t *testing.T) {
	// The slot check runs before the deadline check: a request whose deadline
	// already passed must still be admitted when nothing actually blocks it.
	// Rejecting it would turn a harmless scheduling hiccup into an error.
	a := newAdmission(1)
	past := time.Now().Add(-time.Millisecond)
	if err := a.acquire(0, false, past, 0); err != nil {
		t.Fatalf("expired-at-entry acquire with a free slot = %v, want admitted", err)
	}
	a.release(0)
	// Same precedence at the head of the sequenced grant order.
	if err := a.acquire(0, true, past, 0); err != nil {
		t.Fatalf("expired-at-entry sequenced head ticket = %v, want admitted", err)
	}
	if got := a.load(); got != 1 {
		t.Fatalf("load = %d, want 1", got)
	}
}

func TestAdmissionDeadlineSlotFreedBeforeExpiry(t *testing.T) {
	// A waiter whose slot frees within the deadline is admitted — the pending
	// expiry timer must not reject work that no longer has a reason to wait.
	a := newAdmission(1)
	if err := a.acquire(0, false, time.Time{}, 0); err != nil {
		t.Fatal(err)
	}
	res := make(chan error, 1)
	go func() { res <- a.acquire(0, false, time.Now().Add(2*time.Second), 0) }()
	time.Sleep(10 * time.Millisecond)
	a.release(0)
	select {
	case err := <-res:
		if err != nil {
			t.Fatalf("waiter with a freed slot = %v, want admitted", err)
		}
	case <-time.After(time.Second):
		t.Fatal("freed slot did not wake the deadline waiter")
	}
	if got := a.load(); got != 1 {
		t.Fatalf("load = %d, want 1", got)
	}
}

func TestAdmissionSequencedDeadlineRetireUnblocks(t *testing.T) {
	// A sequenced waiter parked on the ticket order (not the cap) whose
	// deadline expires must retire its ticket, so the cursor skips it and the
	// tickets behind it are admitted without waiting.
	a := newAdmission(8)
	res := make(chan error, 1)
	go func() {
		// seqNext is 0, so ticket 1 parks on the order alone (cap 8 is free).
		res <- a.acquire(1, true, time.Now().Add(30*time.Millisecond), 0)
	}()
	select {
	case err := <-res:
		if !errors.Is(err, errDeadline) {
			t.Fatalf("order-blocked waiter = %v, want errDeadline", err)
		}
	case <-time.After(time.Second):
		t.Fatal("deadline never fired for the order-blocked waiter")
	}
	if err := a.acquire(0, true, time.Time{}, 0); err != nil {
		t.Fatal(err)
	}
	// The cursor must have advanced over the retired ticket 1.
	granted := make(chan error, 1)
	go func() { granted <- a.acquire(2, true, time.Time{}, 0) }()
	select {
	case err := <-granted:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("retired ticket 1 still wedges ticket 2")
	}
}

func TestAdmissionDrain(t *testing.T) {
	a := newAdmission(1)
	if err := a.acquire(0, false, time.Time{}, 0); err != nil {
		t.Fatal(err)
	}
	res := make(chan error, 1)
	go func() { res <- a.acquire(0, false, time.Time{}, 0) }()
	time.Sleep(10 * time.Millisecond)
	a.drain()
	select {
	case err := <-res:
		if !errors.Is(err, errDraining) {
			t.Fatalf("blocked acquire = %v, want errDraining", err)
		}
	case <-time.After(time.Second):
		t.Fatal("drain did not wake the blocked acquire")
	}
	if err := a.acquire(0, false, time.Time{}, 0); !errors.Is(err, errDraining) {
		t.Fatalf("post-drain acquire = %v, want errDraining", err)
	}
	// Sequenced post-drain rejections still retire their tickets.
	if err := a.acquire(7, true, time.Time{}, 0); !errors.Is(err, errDraining) {
		t.Fatalf("sequenced post-drain acquire = %v", err)
	}
	if _, ok := a.skipped[7]; !ok {
		t.Fatal("drained sequenced ticket was not retired")
	}
}
