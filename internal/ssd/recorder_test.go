package ssd

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"superfast/internal/telemetry"
)

// recordedRun warms a device, attaches a flight recorder and a straggler
// attribution table after the fill (so the warm-up stays out of both), replays
// the same stamped workload at the given depth, flushes, and returns the
// recorder CSV and attribution JSON bytes.
func recordedRun(t *testing.T, depth int) (csv, attrJSON []byte) {
	t.Helper()
	d := concurrentDevice(t)
	if err := d.FillSequential(nil); err != nil {
		t.Fatal(err)
	}
	chips := len(d.ChipStats())
	rec, err := telemetry.NewRecorder(25, 256, RecorderColumns(chips))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachRecorder(rec); err != nil {
		t.Fatal(err)
	}
	attr := telemetry.NewAttribution()
	d.SetAttribution(attr)
	// A write-heavy stamped tail after the mixed window forces super-word-line
	// flushes (and usually GC), so the attribution table is non-trivial.
	reqs := mixedTrace(d, 40)
	base := reqs[len(reqs)-1].Arrival + 3
	capacity := d.FTL().Capacity()
	for i := 0; i < 160; i++ {
		reqs = append(reqs, Request{
			Kind:    OpWrite,
			LPN:     int64(i*2654435761) % capacity,
			Data:    []byte{byte(i), 0x5A},
			Arrival: base + float64(i)*3,
		})
	}
	replayTickets(t, d, reqs, depth)
	d.FlushRecorder()
	var rb, ab bytes.Buffer
	if err := rec.WriteCSV(&rb); err != nil {
		t.Fatal(err)
	}
	if err := attr.WriteJSON(&ab, 0); err != nil {
		t.Fatal(err)
	}
	if attr.Ops() == 0 {
		t.Fatal("workload produced no multi-plane commands to attribute")
	}
	return rb.Bytes(), ab.Bytes()
}

func TestRecorderGoldenAcrossDepths(t *testing.T) {
	// Acceptance: the flight-recorder export is byte-identical across runs AND
	// across worker counts, pinned by a golden file. Regenerate with
	// UPDATE_GOLDEN=1 go test ./internal/ssd -run TestRecorderGolden.
	csv1, _ := recordedRun(t, 1)
	csv8, _ := recordedRun(t, 8)
	if !bytes.Equal(csv1, csv8) {
		t.Fatal("recorder CSV differs between depth 1 and depth 8")
	}
	lines := strings.Split(strings.TrimRight(string(csv1), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("recorder emitted no samples: %q", lines)
	}
	if !strings.HasPrefix(lines[0], "t_us,waf,qdepth,extra_ewma_us,free_sbs,open_fast,open_slow,gc_debt,gc_steps,chip00_util") {
		t.Fatalf("unexpected header %q", lines[0])
	}

	golden := filepath.Join("testdata", "recorder.golden.csv")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, csv1, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(csv1))
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(csv1, want) {
		t.Fatalf("recorder CSV drifted from golden (%d vs %d bytes); if intended, regenerate with UPDATE_GOLDEN=1", len(csv1), len(want))
	}
}

func TestAttributionIdenticalAcrossDepths(t *testing.T) {
	// The attribution report is filled by the serialized FTL stage, so its
	// JSON must be byte-identical regardless of submission concurrency.
	_, a1 := recordedRun(t, 1)
	_, a8 := recordedRun(t, 8)
	if !bytes.Equal(a1, a8) {
		t.Fatal("attribution JSON differs between depth 1 and depth 8")
	}
}

func TestAttributionSumsMatchFTLStats(t *testing.T) {
	// Attached from the first write, the attribution table and the FTL's own
	// extra-latency counters see the same multi-plane commands: the table's
	// total must equal ExtraPgm + ExtraErs.
	d := concurrentDevice(t)
	attr := telemetry.NewAttribution()
	d.SetAttribution(attr)
	if err := d.FillSequential(nil); err != nil {
		t.Fatal(err)
	}
	capacity := d.FTL().Capacity()
	for i := 0; i < 200; i++ {
		if _, err := d.Submit(Request{
			Kind: OpWrite, LPN: int64(i*2654435761) % capacity, Data: []byte{byte(i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := d.FTL().Stats()
	want := st.ExtraPgm + st.ExtraErs
	got := attr.TotalExtraUS()
	if want <= 0 {
		t.Fatal("workload produced no extra latency to attribute")
	}
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("attribution total %v != FTL stats ExtraPgm+ExtraErs %v", got, want)
	}
}

func TestSerialDeviceRecorder(t *testing.T) {
	// The serialized Device shares the recState plumbing: attaching after a
	// fill must not backfill history, stamped submissions must emit samples,
	// and detaching must stop them.
	d := testDevice(t)
	if err := d.FillSequential(nil); err != nil {
		t.Fatal(err)
	}
	rec, err := telemetry.NewRecorder(25, 64, RecorderColumns(d.FTL().Geometry().Chips))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachRecorder(rec); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 0 {
		t.Fatalf("attach backfilled %d samples", rec.Len())
	}
	attachNow := d.Now()
	base := attachNow + 1000
	for i := 0; i < 8; i++ {
		if _, err := d.Submit(Request{Kind: OpRead, LPN: int64(i), Arrival: base + float64(i)*40}); err != nil {
			t.Fatal(err)
		}
	}
	d.FlushRecorder()
	if rec.Len() == 0 {
		t.Fatal("recorder saw no samples across a 280µs stamped window")
	}
	for _, s := range rec.Samples() {
		if s.T <= attachNow {
			t.Fatalf("sample at %v predates the attach point %v", s.T, attachNow)
		}
	}
	n := rec.Len()
	if err := d.AttachRecorder(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(Request{Kind: OpRead, LPN: 0, Arrival: d.Now() + 500}); err != nil {
		t.Fatal(err)
	}
	d.FlushRecorder()
	if rec.Len() != n {
		t.Fatalf("detached recorder still sampled: %d -> %d", n, rec.Len())
	}
}

func TestAttachRecorderRejectsWrongColumns(t *testing.T) {
	d := concurrentDevice(t)
	rec, err := telemetry.NewRecorder(25, 64, []string{"waf"})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachRecorder(rec); err == nil {
		t.Fatal("recorder with the wrong column count was accepted")
	}
}
