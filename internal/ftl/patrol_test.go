package ftl

import (
	"errors"
	"strings"
	"testing"

	"superfast/internal/flash"
)

// noRefresh is a threshold no real page can reach, so patrol only scans.
const noRefresh = 1 << 30

// fullFTL returns an FTL with every logical page written and flushed, so the
// whole space is mapped, nothing is buffered, and patrol counts are exact.
func fullFTL(t *testing.T, cfg Config) *FTL {
	t.Helper()
	f := newFTL(t, cfg)
	for lpn := int64(0); lpn < f.Capacity(); lpn++ {
		if _, err := f.Write(lpn, payload(lpn, 0)); err != nil {
			t.Fatalf("fill lpn %d: %v", lpn, err)
		}
	}
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPatrolWrapsPastLogEnd(t *testing.T) {
	f := fullFTL(t, testConfig())
	cap := f.Capacity()
	const window = 20
	start := cap - 7 // 7 pages before the end, 13 after the wrap
	before := f.Stats().PatrolReads
	next, lat, err := f.Patrol(start, window, noRefresh)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().PatrolReads - before; got != window {
		t.Fatalf("PatrolReads delta = %d, want %d", got, window)
	}
	if want := (start + window) % cap; next != want {
		t.Fatalf("next = %d, want %d (wrapped)", next, want)
	}
	if lat <= 0 {
		t.Fatalf("latency = %v, want > 0", lat)
	}
	if f.Stats().Refreshes != 0 {
		t.Fatal("huge threshold must never refresh")
	}
}

func TestPatrolResumeCursor(t *testing.T) {
	f := fullFTL(t, testConfig())
	cap := f.Capacity()
	// Drive the scan in chunks, feeding each returned cursor back in: the
	// cursor must advance by exactly one chunk per call, modulo the log.
	const chunk = 25
	cursor := int64(0)
	for i := 0; i < 4; i++ {
		before := f.Stats().PatrolReads
		next, _, err := f.Patrol(cursor, chunk, noRefresh)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if got := f.Stats().PatrolReads - before; got != chunk {
			t.Fatalf("chunk %d: PatrolReads delta = %d, want %d", i, got, chunk)
		}
		if want := (cursor + chunk) % cap; next != want {
			t.Fatalf("chunk %d: next = %d, want %d", i, next, want)
		}
		cursor = next
	}
	// A budget larger than the log scans each page exactly once and stops
	// back at the start — a full cycle, not a second lap.
	before := f.Stats().PatrolReads
	next, _, err := f.Patrol(cursor, int(cap)+100, noRefresh)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().PatrolReads - before; int64(got) != cap {
		t.Fatalf("full cycle scanned %d pages, want %d", got, cap)
	}
	if next != cursor {
		t.Fatalf("full cycle ended at %d, want start %d", next, cursor)
	}
}

func TestPatrolReconstructsUncorrectable(t *testing.T) {
	f := fullFTL(t, raidConfig())
	const victim = 17
	corruptPageOf(t, f, victim)
	st := f.Stats()
	next, _, err := f.Patrol(victim, 1, noRefresh)
	if err != nil {
		t.Fatalf("patrol should reconstruct through RAID: %v", err)
	}
	if next != victim+1 {
		t.Fatalf("next = %d, want %d", next, victim+1)
	}
	d := f.Stats()
	if d.PatrolReads-st.PatrolReads != 1 {
		t.Fatalf("PatrolReads delta = %d, want 1", d.PatrolReads-st.PatrolReads)
	}
	// Reconstruction forces a refresh regardless of the threshold.
	if d.Refreshes-st.Refreshes != 1 {
		t.Fatalf("Refreshes delta = %d, want 1", d.Refreshes-st.Refreshes)
	}
	if d.GCWrites <= st.GCWrites {
		t.Fatal("refresh must relocate through the GC stream")
	}
	// The relocated page reads back with the original data.
	r, err := f.Read(victim)
	if err != nil {
		t.Fatalf("read after refresh: %v", err)
	}
	if string(r.Data) != string(payload(victim, 0)) {
		t.Fatalf("lpn %d corrupted by patrol refresh: %q", victim, r.Data)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPatrolUncorrectableWithoutRAID(t *testing.T) {
	f := fullFTL(t, testConfig())
	const victim = 10
	corruptPageOf(t, f, victim)
	next, _, err := f.Patrol(victim, 1, noRefresh)
	if err == nil {
		t.Fatal("patrol over a corrupt page without RAID should fail")
	}
	if !errors.Is(err, flash.ErrUncorrectable) {
		t.Fatalf("err = %v, want ErrUncorrectable in the chain", err)
	}
	if !strings.Contains(err.Error(), "ftl: patrol read lpn 10") {
		t.Fatalf("err = %v, want patrol context with the lpn", err)
	}
	// The error reports where the scan stopped so a caller can skip past it.
	if next != victim {
		t.Fatalf("next = %d, want the failing lpn %d", next, victim)
	}
}
