package assembly

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"superfast/internal/profile"
	"superfast/internal/pv"
)

// modelLanes builds lanes of block profiles straight from the variation
// model, mimicking what the chamber harness gathers.
func modelLanes(t testing.TB, nLanes, nBlocks int, seed uint64) []Lane {
	t.Helper()
	p := pv.DefaultParams()
	p.Seed = seed
	p.Layers = 12
	p.Strings = 4
	m := pv.New(p)
	lanes := make([]Lane, nLanes)
	for l := 0; l < nLanes; l++ {
		blocks := make([]*profile.BlockProfile, nBlocks)
		for b := 0; b < nBlocks; b++ {
			lwl := make([]float64, p.Layers*p.Strings)
			for layer := 0; layer < p.Layers; layer++ {
				for s := 0; s < p.Strings; s++ {
					lwl[layer*p.Strings+s] = m.ProgramLatency(pv.Coord{
						Chip: l, Block: b, Layer: layer, String: s,
					}, 0, 1)
				}
			}
			ers := m.EraseLatency(l, 0, b, 0, 1)
			blocks[b] = profile.NewBlockProfile(l, b, p.Layers, p.Strings, lwl, ers, 0)
		}
		lanes[l] = Lane{ID: l, Blocks: blocks}
	}
	return lanes
}

var allAssemblers = []Assembler{
	Random{Seed: 1},
	Sequential{},
	ByErase{},
	ByPgmSum{},
	Optimal{Window: 4},
	Ranked{Kind: LWLRank, Window: 4},
	Ranked{Kind: PWLRank, Window: 4},
	Ranked{Kind: STRRank, Window: 4},
	STRMedian{Window: 4},
}

func TestAllAssemblersPartition(t *testing.T) {
	lanes := modelLanes(t, 4, 16, 11)
	for _, a := range allAssemblers {
		res, err := a.Assemble(lanes)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if err := CheckPartition(lanes, res.Superblocks); err != nil {
			t.Errorf("%s: %v", a.Name(), err)
		}
	}
}

func TestAssemblersRejectBadLanes(t *testing.T) {
	for _, a := range allAssemblers {
		if _, err := a.Assemble(nil); !errors.Is(err, ErrLaneShape) {
			t.Errorf("%s: empty lanes gave %v", a.Name(), err)
		}
	}
	lanes := modelLanes(t, 2, 4, 3)
	lanes[1].Blocks = lanes[1].Blocks[:3]
	for _, a := range allAssemblers {
		if _, err := a.Assemble(lanes); !errors.Is(err, ErrLaneShape) {
			t.Errorf("%s: ragged lanes gave %v", a.Name(), err)
		}
	}
}

func TestOptimalRejectsBadWindow(t *testing.T) {
	lanes := modelLanes(t, 2, 4, 3)
	if _, err := (Optimal{Window: 0}).Assemble(lanes); err == nil {
		t.Fatal("window 0 should fail")
	}
}

func TestSequentialPairsSameIndex(t *testing.T) {
	lanes := modelLanes(t, 3, 8, 5)
	res, err := Sequential{}.Assemble(lanes)
	if err != nil {
		t.Fatal(err)
	}
	for k, sb := range res.Superblocks {
		want := lanes[0].Blocks[sb[0]].Block
		for l, bi := range sb {
			if lanes[l].Blocks[bi].Block != want {
				t.Fatalf("superblock %d mixes block indices", k)
			}
		}
	}
}

func TestByPgmSumPairsByRankOrder(t *testing.T) {
	lanes := modelLanes(t, 2, 10, 9)
	res, err := ByPgmSum{}.Assemble(lanes)
	if err != nil {
		t.Fatal(err)
	}
	// Superblock k must pair the k-th fastest block of each lane, so the
	// sums must be non-decreasing with k within each lane.
	for l := range lanes {
		prev := math.Inf(-1)
		for k, sb := range res.Superblocks {
			sum := lanes[l].Blocks[sb[l]].PgmSum
			if sum < prev {
				t.Fatalf("lane %d superblock %d out of order", l, k)
			}
			prev = sum
		}
	}
}

func TestOptimalBeatsRandom(t *testing.T) {
	lanes := modelLanes(t, 4, 32, 21)
	randRes, err := Random{Seed: 5}.Assemble(lanes)
	if err != nil {
		t.Fatal(err)
	}
	optRes, err := Optimal{Window: 6}.Assemble(lanes)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := Evaluate(lanes, randRes.Superblocks)
	if err != nil {
		t.Fatal(err)
	}
	mo, err := Evaluate(lanes, optRes.Superblocks)
	if err != nil {
		t.Fatal(err)
	}
	if mo.MeanPgm >= mr.MeanPgm {
		t.Fatalf("optimal (%v) should beat random (%v)", mo.MeanPgm, mr.MeanPgm)
	}
}

// superblockPgmLatency is the multi-plane program cost of a superblock: the
// sum over word-lines of the slowest member's latency.
func superblockPgmLatency(members []*profile.BlockProfile) float64 {
	total := 0.0
	for wl := range members[0].LWL {
		max := members[0].LWL[wl]
		for _, m := range members[1:] {
			if m.LWL[wl] > max {
				max = m.LWL[wl]
			}
		}
		total += max
	}
	return total
}

func TestOptimalMatchesBruteForceSingleWindow(t *testing.T) {
	// With window == block count the whole lane is one window; verify the
	// first superblock is the true global minimum-program-latency
	// combination, checked against flat brute force.
	lanes := modelLanes(t, 3, 4, 31)
	res, err := Optimal{Window: 4}.Assemble(lanes)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Superblocks[0]
	got := superblockPgmLatency([]*profile.BlockProfile{
		lanes[0].Blocks[first[0]], lanes[1].Blocks[first[1]], lanes[2].Blocks[first[2]],
	})
	best := math.Inf(1)
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			for c := 0; c < 4; c++ {
				v := superblockPgmLatency([]*profile.BlockProfile{
					lanes[0].Blocks[a], lanes[1].Blocks[b], lanes[2].Blocks[c],
				})
				if v < best {
					best = v
				}
			}
		}
	}
	if math.Abs(got-best) > 1e-9 {
		t.Fatalf("optimal first superblock latency = %v, brute force best = %v", got, best)
	}
}

func TestPairCheckAccountingMatchesPaper(t *testing.T) {
	// Paper §IV-B: four planes, window 4 → 256 combinations, 6 pairs each,
	// 1,536 distance checks per superblock.
	lanes := modelLanes(t, 4, 8, 41)
	res, err := STRMedian{Window: 4}.Assemble(lanes)
	if err != nil {
		t.Fatal(err)
	}
	// First superblock: full window of 4 in each of 4 lanes.
	// Later windows shrink near the end; check the first step's share by
	// assembling a lane set with exactly 4 blocks.
	lanes4 := modelLanes(t, 4, 4, 41)
	res4, err := STRMedian{Window: 4}.Assemble(lanes4)
	if err != nil {
		t.Fatal(err)
	}
	// Steps have windows 4,3,2,1 → combos 256+81+16+1 = 354, pairs ×6.
	if res4.Combos != 354 {
		t.Fatalf("Combos = %d, want 354", res4.Combos)
	}
	if res4.PairChecks != 354*6 {
		t.Fatalf("PairChecks = %d, want %d", res4.PairChecks, 354*6)
	}
	// And the first full window of the larger set charges 256 combos.
	if res.Combos < 256 {
		t.Fatalf("Combos = %d, want >= 256 for the first window", res.Combos)
	}
}

func TestOptimalComboAccounting(t *testing.T) {
	lanes := modelLanes(t, 4, 4, 43)
	res, err := Optimal{Window: 4}.Assemble(lanes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Combos != 354 { // 4^4 + 3^4 + 2^4 + 1
		t.Fatalf("Combos = %d, want 354", res.Combos)
	}
}

func TestRankedKindsDiffer(t *testing.T) {
	lanes := modelLanes(t, 4, 12, 51)
	kinds := []RankKind{LWLRank, PWLRank, STRRank}
	for _, k := range kinds {
		res, err := Ranked{Kind: k, Window: 4}.Assemble(lanes)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if err := CheckPartition(lanes, res.Superblocks); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
	}
}

func TestRankKindString(t *testing.T) {
	if LWLRank.String() != "LWL-RANK" || PWLRank.String() != "PWL-RANK" || STRRank.String() != "STR-RANK" {
		t.Fatal("RankKind names wrong")
	}
	if RankKind(7).String() != "RankKind(7)" {
		t.Fatal("unknown kind formatting wrong")
	}
}

func TestEvaluateMeans(t *testing.T) {
	lanes := modelLanes(t, 2, 6, 61)
	res, err := Sequential{}.Assemble(lanes)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Evaluate(lanes, res.Superblocks)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range m.ExtraPgm {
		if v < 0 {
			t.Fatal("negative extra latency")
		}
		sum += v
	}
	if math.Abs(m.MeanPgm-sum/float64(len(m.ExtraPgm))) > 1e-9 {
		t.Fatalf("MeanPgm = %v, want %v", m.MeanPgm, sum/float64(len(m.ExtraPgm)))
	}
}

func TestEvaluateRejectsBadSuperblocks(t *testing.T) {
	lanes := modelLanes(t, 2, 4, 71)
	if _, err := Evaluate(lanes, [][]int{{0}}); err == nil {
		t.Fatal("wrong member count should fail")
	}
	if _, err := Evaluate(lanes, [][]int{{0, 99}}); err == nil {
		t.Fatal("out-of-range index should fail")
	}
}

func TestCheckPartitionCatchesDuplicates(t *testing.T) {
	lanes := modelLanes(t, 2, 3, 81)
	bad := [][]int{{0, 0}, {1, 1}, {2, 1}} // lane 1 uses block 1 twice
	if err := CheckPartition(lanes, bad); err == nil {
		t.Fatal("duplicate use should fail")
	}
	short := [][]int{{0, 0}}
	if err := CheckPartition(lanes, short); err == nil {
		t.Fatal("wrong superblock count should fail")
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	lanes := modelLanes(t, 3, 10, 91)
	r1, _ := Random{Seed: 7}.Assemble(lanes)
	r2, _ := Random{Seed: 7}.Assemble(lanes)
	r3, _ := Random{Seed: 8}.Assemble(lanes)
	same := func(a, b [][]int) bool {
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					return false
				}
			}
		}
		return true
	}
	if !same(r1.Superblocks, r2.Superblocks) {
		t.Fatal("same seed should reproduce")
	}
	if same(r1.Superblocks, r3.Superblocks) {
		t.Fatal("different seeds should differ")
	}
}

func TestWindowOnePairsSortedOrder(t *testing.T) {
	// Window 1 degenerates every windowed method to PGM-LTN zip.
	lanes := modelLanes(t, 3, 8, 95)
	want, _ := ByPgmSum{}.Assemble(lanes)
	for _, a := range []Assembler{Optimal{Window: 1}, STRMedian{Window: 1}, Ranked{Kind: STRRank, Window: 1}} {
		got, err := a.Assemble(lanes)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want.Superblocks {
			for l := range want.Superblocks[k] {
				if got.Superblocks[k][l] != want.Superblocks[k][l] {
					t.Fatalf("%s window 1 differs from PGM-LTN at sb %d", a.Name(), k)
				}
			}
		}
	}
}

func TestAssemblePropertyAnyShape(t *testing.T) {
	f := func(nLanes, nBlocks, window uint8, seed uint64) bool {
		nl := 2 + int(nLanes)%3
		nb := 2 + int(nBlocks)%6
		w := 1 + int(window)%4
		lanes := modelLanes(t, nl, nb, seed)
		for _, a := range []Assembler{Optimal{Window: w}, STRMedian{Window: w}} {
			res, err := a.Assemble(lanes)
			if err != nil {
				return false
			}
			if CheckPartition(lanes, res.Superblocks) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOptimalWindow8(b *testing.B) {
	lanes := modelLanes(b, 4, 32, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Optimal{Window: 8}).Assemble(lanes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSTRMedianWindow4(b *testing.B) {
	lanes := modelLanes(b, 4, 32, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (STRMedian{Window: 4}).Assemble(lanes); err != nil {
			b.Fatal(err)
		}
	}
}
