package experiments

import (
	"superfast/internal/flash"
	"superfast/internal/pv"
	"superfast/internal/ssd"
	"superfast/internal/stats"
	"superfast/internal/workload"
)

func init() {
	register("ncq", runNCQ)
}

// runNCQ contrasts the device's two queue models on a read-heavy workload:
// serialized (queue depth 1) versus per-chip scheduling (NCQ-style overlap
// of requests that hit different chips) — the internal-parallelism payoff
// of §II-B on the host's read path.
func runNCQ(cfg Config) (*Result, error) {
	g, p := deviceGeometry(cfg)
	t := &stats.Table{
		Title:   "Queue models — read-heavy workload response times",
		Headers: []string{"Queue", "Mean µs", "P95 µs", "P99 µs", "Span ms"},
	}
	for _, q := range []ssd.QueueModel{ssd.Serialized, ssd.PerChip} {
		arr, err := flash.NewArray(g, pv.New(p), flash.DefaultECC())
		if err != nil {
			return nil, err
		}
		dcfg := ssd.DefaultConfig()
		dcfg.FTL.Overprovision = 0.25
		dcfg.Queue = q
		dev, err := ssd.New(arr, dcfg)
		if err != nil {
			return nil, err
		}
		dev.SetAttribution(cfg.Attr)
		capacity := dev.FTL().Capacity()
		if err := dev.FillSequential(nil); err != nil {
			return nil, err
		}
		if _, err := dev.FTL().Flush(); err != nil {
			return nil, err
		}
		// A burst of random reads arriving together: overlap potential is
		// maximal, bounded by chip conflicts.
		base := dev.Now() + 1000
		gen := workload.Uniform{Space: capacity, Count: 2000, Seed: cfg.Seed + 3}
		var lats []float64
		span := 0.0
		for {
			req, ok := gen.Next()
			if !ok {
				break
			}
			req.Kind = ssd.OpRead
			req.Data = nil
			req.Arrival = base
			c, err := dev.Submit(req)
			if err != nil {
				return nil, err
			}
			lats = append(lats, c.Latency)
			if c.Finish-base > span {
				span = c.Finish - base
			}
		}
		sm := stats.Summarize(lats)
		t.AddRow(q.String(), stats.FmtUS(sm.Mean), stats.FmtUS(sm.P95), stats.FmtUS(sm.P99),
			stats.FmtUS(span/1000))
	}
	text := "per-chip scheduling overlaps reads on different chips; same-chip conflicts still queue\n"
	return &Result{ID: "ncq", Tables: []*stats.Table{t}, Text: text}, nil
}
