module superfast

go 1.22
