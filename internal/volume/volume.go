package volume

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"superfast/internal/ftl"
	"superfast/internal/server"
	"superfast/internal/server/client"
	"superfast/internal/stats"
	"superfast/internal/telemetry"
)

// Config shapes a volume.
type Config struct {
	// Stripe is the pages per stripe unit — the placement granularity.
	// Defaults to 64.
	Stripe int64
	// Replicas is the copies kept of every stripe unit, on distinct
	// backends. Defaults to 1 (plain striping).
	Replicas int
	// Sequenced selects deterministic replay mode: callers stamp every data
	// op with a dense global Seq ticket, the volume admits tickets in order
	// and forwards per-backend dense tickets, and the backends must run
	// sequenced too. Read retries, read verification and rebalancing are
	// disabled — any of them would perturb the deterministic stream.
	Sequenced bool
	// VerifyReads reads every replica, serves the primary copy, and
	// rewrites replicas that diverge from it (read-repair). Requires
	// Replicas ≥ 2 and not Sequenced.
	VerifyReads bool
}

// ErrBackendDown marks an operation that could not reach a backend because
// it was killed (KillBackend) and not yet restarted.
var ErrBackendDown = errors.New("volume: backend down")

// backend is one attached block-service connection plus its shard-local
// telemetry. Latency digests are per-backend so the cluster view can merge
// them without retaining samples.
type backend struct {
	addr   string
	c      *client.Client
	seq    uint64 // next dense sequenced ticket for this backend
	traced bool   // the backend advertised server.TraceCap at dial time
	down   bool   // killed and awaiting restart (guarded by Volume.mu)

	lmu      sync.Mutex
	readLat  stats.LatencyDigest
	writeLat stats.LatencyDigest
}

func (b *backend) observe(op server.Op, latUS float64) {
	b.lmu.Lock()
	if op == server.OpRead {
		b.readLat.Observe(latUS)
	} else {
		b.writeLat.Observe(latUS)
	}
	b.lmu.Unlock()
}

// Volume shards one logical LPN space across N block-service backends with
// deterministic striped placement, optional K-way replication with
// read-repair, and live backend add/remove. Safe for concurrent use.
type Volume struct {
	cfg      Config
	pageSize int

	mu      sync.Mutex
	cond    *sync.Cond
	place   *Placement
	bks     []*backend // index-aligned with the placement backend table
	cursor  uint64     // next global seq admitted (Sequenced mode)
	copying map[int64]bool
	closed  bool

	cmu      sync.Mutex
	counters Counters

	led *telemetry.Ledger // hop ledger, nil = disabled (read under mu)
}

// TraceRef carries the trace context of one volume operation: the
// cluster-wide trace ID and the hop that handed the request to the volume
// (HopClient when a client library calls directly, HopNone at the root). A
// zero TraceRef disables tracing for the op.
type TraceRef struct {
	ID     uint64
	Parent telemetry.Hop
}

// SetLedger attaches (or, with nil, detaches) a hop ledger. Every traced
// operation then records one HopProxy entry per replica leg: the backend's
// reported simulated latency plus the leg's wall-clock round trip. Call
// before issuing traced operations.
func (v *Volume) SetLedger(l *telemetry.Ledger) {
	v.mu.Lock()
	v.led = l
	v.mu.Unlock()
}

// Counters is the volume-level op accounting.
type Counters struct {
	Reads     uint64 `json:"reads"`
	Writes    uint64 `json:"writes"`
	Trims     uint64 `json:"trims"`
	Flushes   uint64 `json:"flushes"`
	Retries   uint64 `json:"read_retries"` // reads retried on another replica
	Repairs   uint64 `json:"read_repairs"` // divergent replicas rewritten
	UnitMoves uint64 `json:"unit_moves"`   // stripe units relocated by rebalance
	DownSkips uint64 `json:"down_skips"`   // replica legs skipped on a down backend
}

// Dial connects to every backend address, probes capacities, and builds the
// initial striped layout. All backends must agree on page size.
func Dial(addrs []string, cfg Config) (*Volume, error) {
	if cfg.Stripe == 0 {
		cfg.Stripe = 64
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 1
	}
	if cfg.VerifyReads && (cfg.Replicas < 2 || cfg.Sequenced) {
		return nil, fmt.Errorf("volume: VerifyReads needs ≥2 replicas and unsequenced mode")
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("volume: no backends")
	}
	v := &Volume{cfg: cfg, copying: make(map[int64]bool)}
	v.cond = sync.NewCond(&v.mu)
	slots := make([]int64, 0, len(addrs))
	minSlots := int64(-1)
	for _, addr := range addrs {
		c, err := client.Dial(addr)
		if err != nil {
			v.closeAll()
			return nil, fmt.Errorf("volume: backend %s: %w", addr, err)
		}
		b := &backend{addr: addr, c: c}
		snap, err := c.Stat()
		if err != nil {
			c.Close()
			v.closeAll()
			return nil, fmt.Errorf("volume: stat %s: %w", addr, err)
		}
		if v.pageSize == 0 {
			v.pageSize = snap.PageSize
		} else if snap.PageSize != v.pageSize {
			c.Close()
			v.closeAll()
			return nil, fmt.Errorf("volume: %s page size %d, cluster uses %d", addr, snap.PageSize, v.pageSize)
		}
		// Capability probe: stamp the trace extension only toward backends
		// that advertised it, so plain v1 backends keep seeing v1 bytes.
		if ok, err := c.SupportsTrace(); err == nil {
			b.traced = ok
		}
		s := snap.Capacity / cfg.Stripe
		if minSlots < 0 || s < minSlots {
			minSlots = s
		}
		slots = append(slots, s)
		v.bks = append(v.bks, b)
	}
	// The RAID-0 seed layout loads every backend with exactly
	// replicas×(units/n) slots when units is a multiple of n, so size the
	// space off the smallest backend and it always fits.
	units := int64(len(addrs)) * (minSlots / int64(cfg.Replicas))
	if units < 1 {
		v.closeAll()
		return nil, fmt.Errorf("volume: smallest backend holds %d slots, need ≥ %d", minSlots, cfg.Replicas)
	}
	place, err := NewPlacement(units*cfg.Stripe, cfg.Stripe, slots, cfg.Replicas)
	if err != nil {
		v.closeAll()
		return nil, err
	}
	v.place = place
	return v, nil
}

func (v *Volume) closeAll() {
	for _, b := range v.bks {
		if b != nil && b.c != nil {
			b.c.Close()
		}
	}
}

// Close tears down every backend connection.
func (v *Volume) Close() {
	v.mu.Lock()
	v.closed = true
	v.cond.Broadcast()
	v.mu.Unlock()
	v.closeAll()
}

// Space returns the logical page count.
func (v *Volume) Space() int64 { v.mu.Lock(); defer v.mu.Unlock(); return v.place.Space() }

// PageSize returns the cluster page size in bytes.
func (v *Volume) PageSize() int { return v.pageSize }

// Backends returns the backend table size, including removed entries.
func (v *Volume) Backends() int { v.mu.Lock(); defer v.mu.Unlock(); return len(v.bks) }

func (v *Volume) count(f func(*Counters)) {
	v.cmu.Lock()
	f(&v.counters)
	v.cmu.Unlock()
}

// rcall is one replica leg of an in-flight volume op. It pins the backend
// pointer at submission time: the v.bks table may grow concurrently under
// AddBackend, but a *backend never moves once attached.
type rcall struct {
	b    int
	bk   *backend
	loc  Loc
	call *client.Call
	leg  uint8     // replica index within the op's fan-out
	t0   time.Time // wall clock at leg submission, for the HopProxy record
}

// backend returns the pinned entry for index i under the volume lock.
func (v *Volume) backend(i int) *backend {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.bks[i]
}

// liveBackend returns the pinned entry for index i, or nil if it is down.
func (v *Volume) liveBackend(i int) *backend {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.bks[i].down {
		return nil
	}
	return v.bks[i]
}

// Call is one in-flight volume operation; Wait resolves it.
type Call struct {
	v    *Volume
	op   server.Op
	lpn  int64
	locs []Loc // full replica set at submission time
	legs []rcall
	tr   TraceRef
	seq  uint64            // global sequenced ticket (0 unsequenced)
	led  *telemetry.Ledger // pinned at submission under v.mu
}

// recordLeg appends one HopProxy record for a resolved replica leg: the
// backend's simulated latency (what the scatter/gather saw) plus the leg's
// wall-clock round trip from submission to response.
func (ca *Call) recordLeg(leg rcall, r server.Response) {
	if ca.led == nil || ca.tr.ID == 0 {
		return
	}
	ca.led.Record(telemetry.HopRecord{
		Trace: ca.tr.ID, Hop: telemetry.HopProxy, Parent: ca.tr.Parent,
		Leg: leg.leg, Seq: ca.seq, LPN: leg.loc.SLPN, Status: byte(r.Status),
		SimTS: -1, SimUS: r.Latency, WallNS: time.Since(leg.t0).Nanoseconds(),
	})
}

// startLocked fans one data op out to the replica set. Caller holds v.mu —
// that is what keeps per-backend frames (and their dense sequenced tickets)
// in submission order on each connection.
func (v *Volume) startLocked(op server.Op, lpn int64, payload []byte, hint ftl.Hint, seq uint64, arrival float64, tr TraceRef) (*Call, error) {
	locs, err := v.place.Locate(lpn, nil)
	if err != nil {
		return nil, err
	}
	ca := &Call{v: v, op: op, lpn: lpn, locs: locs, tr: tr, seq: seq, led: v.led}
	plainRead := op == server.OpRead && !v.cfg.VerifyReads
	var lastErr error
	for i, l := range locs {
		b := v.bks[l.Backend]
		if b.down {
			// A killed backend drops out of the fan-out: reads fall through
			// to the next replica, writes and trims skip the leg (the copy is
			// stale until read-repair or rebalance heals it). Sequenced mode
			// never gets here — KillBackend refuses it.
			if plainRead {
				v.count(func(c *Counters) { c.Retries++ })
			} else {
				v.count(func(c *Counters) { c.DownSkips++ })
			}
			lastErr = fmt.Errorf("%w: backend %d (%s)", ErrBackendDown, l.Backend, b.addr)
			continue
		}
		f := server.Frame{Op: op, LPN: l.SLPN, Hint: hint, Arrival: arrival}
		if op == server.OpWrite {
			f.Payload = payload
		}
		if v.cfg.Sequenced {
			f.Flags = server.FlagSequenced
			f.Seq = b.seq
		}
		if tr.ID != 0 && b.traced {
			// Propagate the trace context downstream: the volume is the
			// proxy hop, so server-side records point back at it.
			f.Flags |= server.FlagTrace
			f.Trace = tr.ID
			f.ParentHop = telemetry.HopProxy
			f.Leg = uint8(i)
		}
		t0 := time.Now()
		call, err := b.c.Start(f)
		if err != nil {
			// An idempotent read whose replica connection is already dead
			// falls through to the next copy; anything else fails the op.
			if plainRead && !v.cfg.Sequenced && errors.Is(err, client.ErrConnLost) && i < len(locs)-1 {
				v.count(func(c *Counters) { c.Retries++ })
				lastErr = err
				continue
			}
			return nil, fmt.Errorf("volume: backend %d (%s): %w", l.Backend, b.addr, err)
		}
		if v.cfg.Sequenced {
			b.seq++
		}
		ca.legs = append(ca.legs, rcall{b: l.Backend, bk: b, loc: l, call: call, leg: uint8(i), t0: t0})
		if plainRead {
			break // plain reads hit one healthy replica
		}
	}
	if len(ca.legs) == 0 {
		return nil, fmt.Errorf("volume: no healthy replica for lpn %d: %w", lpn, lastErr)
	}
	return ca, nil
}

// start admits one data op. In Sequenced mode it blocks until the global
// cursor reaches seq, then advances it whether or not the op was accepted —
// the ticket is consumed either way, exactly like the server's admission.
func (v *Volume) start(op server.Op, lpn int64, payload []byte, hint ftl.Hint, seq uint64, arrival float64, tr TraceRef) (*Call, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.cfg.Sequenced {
		for seq != v.cursor && !v.closed {
			v.cond.Wait()
		}
		defer func() {
			v.cursor++
			v.cond.Broadcast()
		}()
	} else {
		u := lpn / v.cfg.Stripe
		for v.copying[u] && !v.closed {
			v.cond.Wait()
		}
	}
	if v.closed {
		return nil, client.ErrClosed
	}
	return v.startLocked(op, lpn, payload, hint, seq, arrival, tr)
}

// SkipSeq consumes one global sequenced ticket without issuing an op — the
// escape hatch for frames rejected above the volume (a draining proxy), so
// the tickets behind them cannot wedge. No-op when the volume is not
// sequenced.
func (v *Volume) SkipSeq(seq uint64) {
	if !v.cfg.Sequenced {
		return
	}
	v.mu.Lock()
	for seq != v.cursor && !v.closed {
		v.cond.Wait()
	}
	if seq == v.cursor {
		v.cursor++
		v.cond.Broadcast()
	}
	v.mu.Unlock()
}

// StartRead begins an asynchronous read of one logical page. seq is the
// global replay ticket, ignored unless the volume is sequenced; tr is the
// trace context (zero = untraced).
func (v *Volume) StartRead(lpn int64, seq uint64, arrival float64, tr TraceRef) (*Call, error) {
	v.count(func(c *Counters) { c.Reads++ })
	return v.start(server.OpRead, lpn, nil, ftl.HintNone, seq, arrival, tr)
}

// StartWrite begins an asynchronous write fanned out to every replica.
func (v *Volume) StartWrite(lpn int64, data []byte, hint ftl.Hint, seq uint64, arrival float64, tr TraceRef) (*Call, error) {
	v.count(func(c *Counters) { c.Writes++ })
	return v.start(server.OpWrite, lpn, data, hint, seq, arrival, tr)
}

// StartTrim begins an asynchronous trim fanned out to every replica.
func (v *Volume) StartTrim(lpn int64, seq uint64, arrival float64, tr TraceRef) (*Call, error) {
	v.count(func(c *Counters) { c.Trims++ })
	return v.start(server.OpTrim, lpn, nil, ftl.HintNone, seq, arrival, tr)
}

// Wait resolves the operation. The returned Response carries the combined
// outcome: a read serves the primary copy (retrying healthy replicas if the
// primary's connection died); a write or trim succeeds only when every
// replica did, reporting the worst status and the slowest replica's latency.
// The error is transport-level only — op-level failures ride in the status.
func (ca *Call) Wait() (server.Response, error) {
	if ca.op == server.OpRead {
		return ca.waitRead()
	}
	var out server.Response
	out.Status = server.StatusOK
	var firstErr error
	for _, leg := range ca.legs {
		r, err := leg.call.Wait()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		leg.bk.observe(ca.op, r.Latency)
		ca.recordLeg(leg, r)
		if r.Latency > out.Latency {
			out.Latency = r.Latency
		}
		if r.Status != server.StatusOK && out.Status == server.StatusOK {
			out.Status = r.Status
			out.Payload = r.Payload
		}
	}
	if firstErr != nil {
		return server.Response{}, firstErr
	}
	return out, nil
}

func (ca *Call) waitRead() (server.Response, error) {
	v := ca.v
	if v.cfg.VerifyReads {
		return ca.waitVerifiedRead()
	}
	r, err := ca.legs[0].call.Wait()
	if err == nil {
		ca.legs[0].bk.observe(server.OpRead, r.Latency)
		ca.recordLeg(ca.legs[0], r)
		return r, nil
	}
	if v.cfg.Sequenced || !errors.Is(err, client.ErrConnLost) {
		return server.Response{}, err
	}
	// The replica's connection died under an idempotent read: retry the
	// remaining copies in placement order.
	tried := ca.legs[0].b
	for i, l := range ca.locs {
		if l.Backend == tried {
			continue
		}
		v.count(func(c *Counters) { c.Retries++ })
		rb := v.liveBackend(l.Backend)
		if rb == nil {
			err = fmt.Errorf("%w: backend %d", ErrBackendDown, l.Backend)
			continue
		}
		f := server.Frame{Op: server.OpRead, LPN: l.SLPN}
		if ca.tr.ID != 0 && rb.traced {
			f.Flags |= server.FlagTrace
			f.Trace = ca.tr.ID
			f.ParentHop = telemetry.HopProxy
			f.Leg = uint8(i)
		}
		t0 := time.Now()
		r, rerr := rb.c.Do(f)
		if rerr == nil {
			rb.observe(server.OpRead, r.Latency)
			ca.recordLeg(rcall{b: l.Backend, bk: rb, loc: l, leg: uint8(i), t0: t0}, r)
			return r, nil
		}
		err = rerr
	}
	return server.Response{}, err
}

// waitVerifiedRead reads every replica, serves the primary copy, and
// rewrites replicas whose payload diverges from it (read-repair). A replica
// on a dead connection is skipped; a dead primary falls back to the first
// healthy copy.
func (ca *Call) waitVerifiedRead() (server.Response, error) {
	v := ca.v
	resps := make([]server.Response, len(ca.legs))
	errs := make([]error, len(ca.legs))
	for i, leg := range ca.legs {
		resps[i], errs[i] = leg.call.Wait()
		if errs[i] == nil {
			leg.bk.observe(server.OpRead, resps[i].Latency)
			ca.recordLeg(leg, resps[i])
		}
	}
	primary := -1
	for i := range ca.legs {
		if errs[i] == nil {
			primary = i
			break
		}
	}
	if primary < 0 {
		return server.Response{}, errs[0]
	}
	out := resps[primary]
	for i := range ca.legs {
		if i == primary || errs[i] != nil {
			continue
		}
		if resps[i].Latency > out.Latency {
			out.Latency = resps[i].Latency
		}
		divergent := out.Status == server.StatusOK &&
			(resps[i].Status != server.StatusOK || string(resps[i].Payload) != string(out.Payload))
		if !divergent {
			continue
		}
		v.count(func(c *Counters) { c.Repairs++ })
		leg := ca.legs[i]
		if wr, werr := leg.bk.c.Write(leg.loc.SLPN, out.Payload, ftl.HintNone); werr == nil {
			leg.bk.observe(server.OpWrite, wr.Latency)
		}
	}
	return out, nil
}

// Read fetches one logical page synchronously.
func (v *Volume) Read(lpn int64) (server.Response, error) {
	ca, err := v.StartRead(lpn, 0, 0, TraceRef{})
	if err != nil {
		return server.Response{}, err
	}
	return ca.Wait()
}

// Write stores one logical page synchronously on every replica.
func (v *Volume) Write(lpn int64, data []byte, hint ftl.Hint) (server.Response, error) {
	ca, err := v.StartWrite(lpn, data, hint, 0, 0, TraceRef{})
	if err != nil {
		return server.Response{}, err
	}
	return ca.Wait()
}

// Trim discards one logical page synchronously on every replica.
func (v *Volume) Trim(lpn int64) (server.Response, error) {
	ca, err := v.StartTrim(lpn, 0, 0, TraceRef{})
	if err != nil {
		return server.Response{}, err
	}
	return ca.Wait()
}

// Flush is the cluster pipeline barrier: it resolves once every request sent
// before it on every backend connection has been answered. Flush consumes no
// sequenced tickets (the backends answer it outside admission).
func (v *Volume) Flush() error {
	v.count(func(c *Counters) { c.Flushes++ })
	v.mu.Lock()
	var cs []*client.Client
	for i, b := range v.bks {
		if v.place.Active(i) && !b.down {
			cs = append(cs, b.c)
		}
	}
	v.mu.Unlock()
	var wg sync.WaitGroup
	errs := make([]error, len(cs))
	for i, c := range cs {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			errs[i] = c.Flush()
		}(i, c)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// AddBackend dials addr, attaches it as a new backend, and rebalances stripe
// units onto it while traffic keeps flowing: only the unit being copied
// blocks its writers, and each unit cuts over atomically once its copy
// lands. Returns the new backend index.
func (v *Volume) AddBackend(addr string) (int, error) {
	if v.cfg.Sequenced {
		return 0, fmt.Errorf("volume: rebalance disabled in sequenced mode")
	}
	c, err := client.Dial(addr)
	if err != nil {
		return 0, err
	}
	snap, err := c.Stat()
	if err != nil {
		c.Close()
		return 0, err
	}
	if snap.PageSize != v.pageSize {
		c.Close()
		return 0, fmt.Errorf("volume: %s page size %d, cluster uses %d", addr, snap.PageSize, v.pageSize)
	}
	traced := false
	if ok, perr := c.SupportsTrace(); perr == nil {
		traced = ok
	}
	v.mu.Lock()
	nb, moves, err := v.place.BeginAdd(snap.Capacity / v.cfg.Stripe)
	if err != nil {
		v.mu.Unlock()
		c.Close()
		return 0, err
	}
	v.bks = append(v.bks, &backend{addr: addr, c: c, traced: traced})
	v.mu.Unlock()
	return nb, v.migrate(moves)
}

// RemoveBackend drains backend b: every stripe unit it holds is copied to a
// surviving backend, then its connection closes. Traffic keeps flowing; only
// the unit being copied blocks its writers.
func (v *Volume) RemoveBackend(b int) error {
	if v.cfg.Sequenced {
		return fmt.Errorf("volume: rebalance disabled in sequenced mode")
	}
	v.mu.Lock()
	moves, err := v.place.BeginRemove(b)
	if err != nil {
		v.mu.Unlock()
		return err
	}
	v.mu.Unlock()
	if err := v.migrate(moves); err != nil {
		return err
	}
	v.backend(b).c.Close()
	return nil
}

// KillBackend severs backend b as a fault campaign would: its connection is
// closed and the backend is marked down, so reads fail over to surviving
// replicas and writes skip the leg (counted in Counters.DownSkips) until
// RestartBackend revives it. The placement table is untouched — unlike
// RemoveBackend nothing is migrated, mirroring a crashed process rather than
// a drained one. Refused in sequenced mode, where the per-backend dense
// ticket chain cannot survive a lost connection.
func (v *Volume) KillBackend(b int) error {
	if v.cfg.Sequenced {
		return fmt.Errorf("volume: kill/restart disabled in sequenced mode")
	}
	v.mu.Lock()
	if b < 0 || b >= len(v.bks) {
		v.mu.Unlock()
		return fmt.Errorf("volume: no backend %d", b)
	}
	bk := v.bks[b]
	if bk.down {
		v.mu.Unlock()
		return fmt.Errorf("volume: backend %d already down", b)
	}
	bk.down = true
	c := bk.c
	v.mu.Unlock()
	c.Close()
	return nil
}

// SetBackendDown marks backend b down (or revives it) without touching its
// connection — the deterministic counterpart of KillBackend/RestartBackend
// for campaign engines running sequenced replays. Call only while the volume
// is quiescent (no ops in flight): the down-skip changes which replica legs
// are issued, so flipping it mid-stream would perturb a deterministic
// schedule. The per-backend dense ticket chain survives because a skipped
// leg never consumes a ticket.
func (v *Volume) SetBackendDown(b int, down bool) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if b < 0 || b >= len(v.bks) {
		return fmt.Errorf("volume: no backend %d", b)
	}
	v.bks[b].down = down
	return nil
}

// RestartBackend re-attaches a killed backend: dial addr (empty = the
// backend's original address), verify the page size, and swap the connection
// in. Writes that were skipped while the backend was down are NOT replayed —
// the restarted replica serves whatever its process restored (checkpoint or
// scratch); VerifyReads read-repair or a rebalance heals the divergence.
func (v *Volume) RestartBackend(b int, addr string) error {
	if v.cfg.Sequenced {
		return fmt.Errorf("volume: kill/restart disabled in sequenced mode")
	}
	v.mu.Lock()
	if b < 0 || b >= len(v.bks) {
		v.mu.Unlock()
		return fmt.Errorf("volume: no backend %d", b)
	}
	bk := v.bks[b]
	if !bk.down {
		v.mu.Unlock()
		return fmt.Errorf("volume: backend %d is not down", b)
	}
	if addr == "" {
		addr = bk.addr
	}
	v.mu.Unlock()

	c, err := client.Dial(addr)
	if err != nil {
		return fmt.Errorf("volume: restart backend %d: %w", b, err)
	}
	snap, err := c.Stat()
	if err != nil {
		c.Close()
		return fmt.Errorf("volume: restart stat %s: %w", addr, err)
	}
	if snap.PageSize != v.pageSize {
		c.Close()
		return fmt.Errorf("volume: %s page size %d, cluster uses %d", addr, snap.PageSize, v.pageSize)
	}
	traced := false
	if ok, perr := c.SupportsTrace(); perr == nil {
		traced = ok
	}
	v.mu.Lock()
	bk.addr, bk.c, bk.traced, bk.down = addr, c, traced, false
	v.mu.Unlock()
	return nil
}

// migrate copies each planned move's shard range and commits it. For each
// unit: block new writers, drain the source connection's in-flight pipeline,
// copy the pages, cut over, unblock.
func (v *Volume) migrate(moves []Move) error {
	for _, m := range moves {
		v.mu.Lock()
		v.copying[m.Unit] = true
		from, to := v.bks[m.From].c, v.bks[m.To].c
		stripe := v.cfg.Stripe
		v.mu.Unlock()

		// The source connection carries all of this volume's traffic to that
		// backend, so its flush barrier drains any write still in flight
		// toward the unit we are about to copy.
		err := from.Flush()
		for off := int64(0); err == nil && off < stripe; off++ {
			src, dst := m.FromSlot*stripe+off, m.ToSlot*stripe+off
			var r server.Response
			r, err = from.Do(server.Frame{Op: server.OpRead, LPN: src})
			if err != nil {
				break
			}
			switch r.Status {
			case server.StatusOK:
				_, err = to.Write(dst, r.Payload, ftl.HintNone)
			case server.StatusBadRequest:
				// Source page unmapped; make sure a stale tenant of this
				// destination slot cannot shine through.
				if tr, terr := to.Trim(dst); terr != nil && tr.Status != server.StatusBadRequest {
					err = terr
				}
			default:
				err = fmt.Errorf("volume: migrating unit %d: read %v", m.Unit, r.Status)
			}
		}

		v.mu.Lock()
		if err == nil {
			err = v.place.Commit(m)
		}
		delete(v.copying, m.Unit)
		v.cond.Broadcast()
		v.mu.Unlock()
		if err != nil {
			return err
		}
		v.count(func(c *Counters) { c.UnitMoves++ })
	}
	return nil
}

// BackendStat is one backend's slice of the cluster view.
type BackendStat struct {
	Backend int                 `json:"backend"`
	Addr    string              `json:"addr"`
	Active  bool                `json:"active"`
	Down    bool                `json:"down,omitempty"`
	Slots   int64               `json:"slots_used"`
	Error   string              `json:"error,omitempty"`
	Reads   stats.DigestSummary `json:"read_latency_us"`
	Writes  stats.DigestSummary `json:"write_latency_us"`
	Snap    server.StatSnapshot `json:"stat"`
}

// ClusterSnapshot merges every backend's statistics into one view. The
// embedded StatSnapshot carries the cluster totals under the same JSON keys
// a single server reports, so an unmodified client.Stat() against the proxy
// decodes it; Backends and Volume add the per-shard breakdown.
type ClusterSnapshot struct {
	server.StatSnapshot
	Stripe   int64               `json:"stripe_pages"`
	Replicas int                 `json:"replicas"`
	Volume   Counters            `json:"volume"`
	ReadLat  stats.DigestSummary `json:"read_latency_us"`
	WriteLat stats.DigestSummary `json:"write_latency_us"`
	Backends []BackendStat       `json:"backends"`
}

// ClusterStat polls every backend's STAT endpoint and merges the device and
// server counters; per-backend latency digests merge into the cluster-wide
// quantiles. Backends that fail to answer are reported with an error string
// and excluded from the sums.
func (v *Volume) ClusterStat() ClusterSnapshot {
	v.mu.Lock()
	type probe struct {
		i      int
		b      *backend
		active bool
		down   bool
		slots  int64
	}
	var ps []probe
	for i, b := range v.bks {
		ps = append(ps, probe{i: i, b: b, active: v.place.Active(i), down: b.down, slots: v.place.SlotsUsed(i)})
	}
	out := ClusterSnapshot{
		Stripe:   v.cfg.Stripe,
		Replicas: v.cfg.Replicas,
	}
	out.Capacity = v.place.Space()
	v.mu.Unlock()
	out.PageSize = v.pageSize
	v.cmu.Lock()
	out.Volume = v.counters
	v.cmu.Unlock()

	readDs := make([]*stats.LatencyDigest, 0, len(ps))
	writeDs := make([]*stats.LatencyDigest, 0, len(ps))
	var hostWrites, flashWrites uint64
	for _, p := range ps {
		bs := BackendStat{Backend: p.i, Addr: p.b.addr, Active: p.active, Down: p.down, Slots: p.slots}
		p.b.lmu.Lock()
		rd, wd := p.b.readLat, p.b.writeLat
		p.b.lmu.Unlock()
		bs.Reads, bs.Writes = rd.Summary(), wd.Summary()
		readDs = append(readDs, &rd)
		writeDs = append(writeDs, &wd)
		if !p.active || p.down {
			out.Backends = append(out.Backends, bs)
			continue
		}
		snap, err := p.b.c.Stat()
		if err != nil {
			bs.Error = err.Error()
			out.Backends = append(out.Backends, bs)
			continue
		}
		snap.Device.Latencies = nil // per-request arrays stay shard-local
		bs.Snap = snap
		out.Backends = append(out.Backends, bs)

		out.Device.Requests += snap.Device.Requests
		out.Device.Reads += snap.Device.Reads
		out.Device.Writes += snap.Device.Writes
		out.Device.Trims += snap.Device.Trims
		out.Server.Conns += snap.Server.Conns
		out.Server.ConnsEver += snap.Server.ConnsEver
		out.Server.Accepted += snap.Server.Accepted
		out.Server.Responses += snap.Server.Responses
		out.Server.Rejected += snap.Server.Rejected
		out.Server.InFlight += snap.Server.InFlight
		out.Server.BytesIn += snap.Server.BytesIn
		out.Server.BytesOut += snap.Server.BytesOut
		out.FTL.HostWrites += snap.FTL.HostWrites
		out.FTL.HostReads += snap.FTL.HostReads
		out.FTL.GCWrites += snap.FTL.GCWrites
		out.FTL.GCRuns += snap.FTL.GCRuns
		out.FTL.GCLatency += snap.FTL.GCLatency
		out.FTL.GCSteps += snap.FTL.GCSteps
		out.FTL.GCStalls += snap.FTL.GCStalls
		hostWrites += snap.FTL.HostWrites
		flashWrites += snap.FTL.HostWrites + snap.FTL.GCWrites
	}
	if hostWrites > 0 {
		out.WAF = float64(flashWrites) / float64(hostWrites)
	}
	out.ReadLat = stats.MergeDigests(readDs...).Summary()
	out.WriteLat = stats.MergeDigests(writeDs...).Summary()
	return out
}
