package ftl

import (
	"bytes"
	"reflect"
	"testing"
)

func TestMarkBadBlocksDeterministicSealedOnly(t *testing.T) {
	f1 := fullFTL(t, testConfig())
	f2 := fullFTL(t, testConfig())

	m1, err := f1.MarkBadBlocks(5, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1) != 5 {
		t.Fatalf("marked %d blocks, want 5", len(m1))
	}
	m2, err := f2.MarkBadBlocks(5, 99)
	if err != nil {
		t.Fatal(err)
	}
	// Identical devices + identical seed = identical storm: the campaign
	// engine's reproducibility rests on this.
	if !reflect.DeepEqual(m1, m2) {
		t.Fatalf("same seed picked different blocks:\n%v\n%v", m1, m2)
	}
	// Only sealed superblock members may be hit — a bad free or open block
	// would fail host programs, which is a different fault.
	for _, b := range m1 {
		sb := f1.bySB[b]
		if sb == nil || !sb.sealed {
			t.Fatalf("block %v is not a sealed superblock member", b)
		}
		if !f1.arr.IsBad(b) {
			t.Fatalf("block %v not marked in the array", b)
		}
	}
	// Sealed members keep serving reads after the storm.
	for lpn := int64(0); lpn < f1.Capacity(); lpn++ {
		r, err := f1.Read(lpn)
		if err != nil {
			t.Fatalf("read %d after storm: %v", lpn, err)
		}
		if !bytes.Equal(r.Data[:len(payload(lpn, 0))], payload(lpn, 0)) {
			t.Fatalf("lpn %d corrupted by storm", lpn)
		}
	}
}

func TestMarkBadBlocksDifferentSeedsDiffer(t *testing.T) {
	f1 := fullFTL(t, testConfig())
	f2 := fullFTL(t, testConfig())
	m1, _ := f1.MarkBadBlocks(5, 1)
	m2, _ := f2.MarkBadBlocks(5, 2)
	if reflect.DeepEqual(m1, m2) {
		t.Fatalf("different seeds picked identical blocks: %v", m1)
	}
}

func TestMarkBadBlocksEdgeCases(t *testing.T) {
	fresh := newFTL(t, testConfig())
	if m, err := fresh.MarkBadBlocks(3, 7); err != nil || m != nil {
		t.Fatalf("fresh FTL (no sealed blocks): %v, %v", m, err)
	}
	full := fullFTL(t, testConfig())
	if m, err := full.MarkBadBlocks(0, 7); err != nil || m != nil {
		t.Fatalf("n=0: %v, %v", m, err)
	}
	// Asking for more than exists clamps to the sealed pool.
	m, err := full.MarkBadBlocks(1 << 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) == 0 {
		t.Fatal("clamped storm marked nothing")
	}
	seen := make(map[string]bool, len(m))
	for _, b := range m {
		k := b.String()
		if seen[k] {
			t.Fatalf("block %v marked twice", b)
		}
		seen[k] = true
	}
}
