package scenario

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"superfast/internal/prng"
	"superfast/internal/server"
	"superfast/internal/server/client"
	"superfast/internal/stats"
)

// Tenant ids on the wire (1-based): the quiet tenant whose isolation the
// verdict judges, and the noisy one flooding the device beside it.
const (
	tenantQuiet = 1
	tenantNoisy = 2
)

// tenantDepth is each tenant connection's pipeline window during the
// sequenced replay. Depth changes wall-clock pacing only, never the verdict:
// arrivals are pre-stamped and the server admits frames in global seq order.
const tenantDepth = 32

// tenantOp is one pre-stamped op of the noisy-neighbor phase.
type tenantOp struct {
	tenant  uint16
	write   bool
	lpn     int64
	version uint32
	seq     uint64
	arrival float64
}

// TenantResult is the noisy-neighbor verdict: the quiet tenant's P99.9 run
// solo versus beside a quota-shaped flood, on identically-built devices.
// Both rounds replay pre-stamped sequenced streams, so every number here is
// deterministic. The flood is offered far past its quota, so the noisy
// tenant's tail grows with its own backlog while the pacing (plus
// work-conserving backfill at the device) keeps the quiet tenant near its
// solo baseline.
type TenantResult struct {
	Quota           int
	QuietOps        int
	NoisyOps        int
	QuietSoloP999   float64
	QuietSharedP999 float64
	NoisySharedP999 float64
	Ratio           float64 // shared / solo quiet P99.9
	Checked         int
	Mismatches      int
}

// Isolated reports the isolation verdict: the quiet tenant's shared-run
// P99.9 stayed within 2x of its solo baseline.
func (t *TenantResult) Isolated() bool { return t.Ratio <= 2.0 }

// buildTenantStreams precomputes both tenants' op lists: the quiet tenant
// mixes writes with read-backs it then verifies, one op per QuietGapUS; the
// noisy tenant is an all-write flood at NoisyFactor times the quiet rate.
// Noisy arrivals are offset by half a noisy gap so no two ops share a
// timestamp (the merge order stays unambiguous).
func buildTenantStreams(s *Spec) (quiet, noisy []tenantOp) {
	t := s.Tenants
	qsrc := prng.New(s.Seed, 21)
	version := make([]uint32, t.Pages)
	var written []int64
	for j := 0; j < t.Ops; j++ {
		op := tenantOp{tenant: tenantQuiet, arrival: float64(j) * t.QuietGapUS}
		if len(written) == 0 || qsrc.Float64() < 0.5 {
			op.write = true
			op.lpn = int64(qsrc.Intn(int(t.Pages)))
			if version[op.lpn] == 0 {
				written = append(written, op.lpn)
			}
			version[op.lpn]++
		} else {
			op.lpn = written[qsrc.Intn(len(written))]
		}
		op.version = version[op.lpn]
		quiet = append(quiet, op)
	}
	nsrc := prng.New(s.Seed, 22)
	nver := make([]uint32, t.Pages)
	gap := t.QuietGapUS / float64(t.NoisyFactor)
	for k := 0; k < t.Ops*t.NoisyFactor; k++ {
		lpn := int64(nsrc.Intn(int(t.Pages)))
		nver[lpn]++
		noisy = append(noisy, tenantOp{
			tenant: tenantNoisy, write: true, lpn: lpn, version: nver[lpn],
			arrival: float64(k)*gap + gap/2,
		})
	}
	return quiet, noisy
}

// mergeTenantStreams interleaves the two streams by arrival (quiet first on
// the impossible tie) and stamps dense global sequence tickets — the replay
// order both connections follow.
func mergeTenantStreams(quiet, noisy []tenantOp) []tenantOp {
	merged := make([]tenantOp, 0, len(quiet)+len(noisy))
	merged = append(merged, quiet...)
	merged = append(merged, noisy...)
	sort.SliceStable(merged, func(i, j int) bool {
		if merged[i].arrival != merged[j].arrival {
			return merged[i].arrival < merged[j].arrival
		}
		return merged[i].tenant < merged[j].tenant
	})
	for i := range merged {
		merged[i].seq = uint64(i)
	}
	return merged
}

// startTenantServer spins one sequenced block service partitioned into the
// two tenant namespaces, the noisy one quota-paced at the device and capped
// at admission.
func startTenantServer(s *Spec) (addr string, stop func(), err error) {
	t := s.Tenants
	dev, err := newCampaignDevice()
	if err != nil {
		return "", nil, err
	}
	srv := server.New(dev, server.Config{
		Sequenced: true,
		Tenants: []server.Tenant{
			{Name: "quiet", Pages: t.Pages},
			{Name: "noisy", Pages: t.Pages, Quota: t.NoisyQuota},
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go srv.Serve(ln)
	stop = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
	return ln.Addr().String(), stop, nil
}

// submitTenant replays one tenant's share of the merged stream on its own
// connection, pipelined tenantDepth deep, returning the simulated latency of
// each op in stream order. Reads are verified against the tenant's expected
// payload — a noisy page shining through into the quiet namespace is an
// isolation bug, and the payload header names the tenant that wrote it.
func submitTenant(addr string, tenant uint16, seed uint64, pageSize int, ops []tenantOp) (lat []float64, checked, mismatches int, err error) {
	c, err := client.Dial(addr)
	if err != nil {
		return nil, 0, 0, err
	}
	defer c.Close()
	if ok, terr := c.SupportsTenant(); terr != nil || !ok {
		return nil, 0, 0, fmt.Errorf("scenario: backend %s lacks tenant support (%v)", addr, terr)
	}
	c.SetTenant(tenant)

	lat = make([]float64, 0, len(ops))
	type pending struct {
		call *client.Call
		op   tenantOp
	}
	window := make([]pending, 0, tenantDepth)
	resolve := func(p pending) error {
		r, err := p.call.Wait()
		if err != nil {
			return fmt.Errorf("scenario: tenant %d seq %d: %w", tenant, p.op.seq, err)
		}
		if r.Status != server.StatusOK {
			return fmt.Errorf("scenario: tenant %d seq %d: status %v", tenant, p.op.seq, r.Status)
		}
		lat = append(lat, r.Latency)
		if !p.op.write {
			checked++
			if !bytes.Equal(r.Payload, pagePayload(pageSize, seed, int(tenant), p.op.lpn, p.op.version)) {
				mismatches++
			}
		}
		return nil
	}
	for _, op := range ops {
		if len(window) == tenantDepth {
			if err := resolve(window[0]); err != nil {
				return nil, 0, 0, err
			}
			window = window[1:]
		}
		f := server.Frame{
			LPN: op.lpn, Seq: op.seq, Arrival: op.arrival,
			Flags: server.FlagSequenced,
		}
		if op.write {
			f.Op = server.OpWrite
			f.Payload = pagePayload(pageSize, seed, int(tenant), op.lpn, op.version)
		} else {
			f.Op = server.OpRead
		}
		call, err := c.Start(f)
		if err != nil {
			return nil, 0, 0, err
		}
		window = append(window, pending{call, op})
	}
	for _, p := range window {
		if err := resolve(p); err != nil {
			return nil, 0, 0, err
		}
	}
	return lat, checked, mismatches, nil
}

func tenantPageSize(addr string) (int, error) {
	c, err := client.Dial(addr)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	snap, err := c.Stat()
	if err != nil {
		return 0, err
	}
	return snap.PageSize, nil
}

// runTenantRound replays one pre-stamped stream against a fresh server, one
// connection per tenant, and returns each tenant's latencies.
func runTenantRound(s *Spec, stream []tenantOp) (lat map[uint16][]float64, checked, mismatches int, err error) {
	addr, stop, err := startTenantServer(s)
	if err != nil {
		return nil, 0, 0, err
	}
	defer stop()
	pageSize, err := tenantPageSize(addr)
	if err != nil {
		return nil, 0, 0, err
	}
	byTenant := map[uint16][]tenantOp{}
	for _, op := range stream {
		byTenant[op.tenant] = append(byTenant[op.tenant], op)
	}
	lat = make(map[uint16][]float64, len(byTenant))
	var wg sync.WaitGroup
	var mu sync.Mutex
	for tenant, ops := range byTenant {
		wg.Add(1)
		go func(tenant uint16, ops []tenantOp) {
			defer wg.Done()
			l, ck, mis, serr := submitTenant(addr, tenant, s.Seed, pageSize, ops)
			mu.Lock()
			defer mu.Unlock()
			lat[tenant] = l
			checked += ck
			mismatches += mis
			if serr != nil && err == nil {
				err = serr
			}
		}(tenant, ops)
	}
	wg.Wait()
	return lat, checked, mismatches, err
}

// runTenants runs the noisy-neighbor phase: the quiet tenant solo for a
// baseline, then again beside the quota-paced flood, each round on a fresh
// identically-built server — so the only variable is the neighbor.
func runTenants(s *Spec) (*TenantResult, error) {
	t := s.Tenants
	quiet, noisy := buildTenantStreams(s)

	solo := make([]tenantOp, len(quiet))
	copy(solo, quiet)
	for i := range solo {
		solo[i].seq = uint64(i)
	}
	soloLat, soloChecked, soloMis, err := runTenantRound(s, solo)
	if err != nil {
		return nil, fmt.Errorf("scenario: tenant solo round: %w", err)
	}
	sharedLat, sharedChecked, sharedMis, err := runTenantRound(s, mergeTenantStreams(quiet, noisy))
	if err != nil {
		return nil, fmt.Errorf("scenario: tenant shared round: %w", err)
	}

	res := &TenantResult{
		Quota:           t.NoisyQuota,
		QuietOps:        len(quiet),
		NoisyOps:        len(noisy),
		QuietSoloP999:   p999(soloLat[tenantQuiet]),
		QuietSharedP999: p999(sharedLat[tenantQuiet]),
		NoisySharedP999: p999(sharedLat[tenantNoisy]),
		Checked:         soloChecked + sharedChecked,
		Mismatches:      soloMis + sharedMis,
	}
	if res.QuietSoloP999 > 0 {
		res.Ratio = res.QuietSharedP999 / res.QuietSoloP999
	}
	return res, nil
}

// p999 returns the P99.9 of the samples (0 when empty).
func p999(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return stats.Quantile(s, 0.999)
}
