package telemetry

import "sort"

// P2 is the Jain/Chlamtac P² streaming quantile estimator: it tracks one
// quantile of an unbounded stream with five markers — O(1) memory and O(1)
// work per observation — adjusting marker heights with a piecewise-parabolic
// interpolation. For the first five observations the estimate is exact
// (computed from the sorted sample); afterwards the estimate converges to
// the true quantile with error that shrinks as the sample grows.
//
// The estimator is deterministic in the observation order. Not safe for
// concurrent use; Digest and the device front ends guard it externally.
type P2 struct {
	p     float64    // target quantile in (0, 1)
	count int        // observations seen
	q     [5]float64 // marker heights
	n     [5]float64 // marker positions (1-based)
	np    [5]float64 // desired marker positions
	dn    [5]float64 // desired position increments per observation
}

// NewP2 returns an estimator for the q-quantile (0 < q < 1).
func NewP2(q float64) *P2 {
	e := &P2{p: q}
	e.dn = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return e
}

// Observe feeds one sample.
func (e *P2) Observe(x float64) {
	if e.count < 5 {
		e.q[e.count] = x
		e.count++
		if e.count == 5 {
			sort.Float64s(e.q[:])
			for i := 0; i < 5; i++ {
				e.n[i] = float64(i + 1)
			}
			p := e.p
			e.np = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
		}
		return
	}

	// Locate the cell containing x, extending the extremes if needed.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := 0; i < 5; i++ {
		e.np[i] += e.dn[i]
	}
	e.count++

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.np[i] - e.n[i]
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			q := e.parabolic(i, s)
			if !(e.q[i-1] < q && q < e.q[i+1]) {
				q = e.linear(i, s)
			}
			e.q[i] = q
			e.n[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for marker i
// moved by d ∈ {−1, +1}.
func (e *P2) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.n[i+1]-e.n[i-1])*
		((e.n[i]-e.n[i-1]+d)*(e.q[i+1]-e.q[i])/(e.n[i+1]-e.n[i])+
			(e.n[i+1]-e.n[i]-d)*(e.q[i]-e.q[i-1])/(e.n[i]-e.n[i-1]))
}

// linear is the fallback height prediction when the parabola leaves the
// bracketing markers.
func (e *P2) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.n[j]-e.n[i])
}

// Count returns the number of observations.
func (e *P2) Count() int { return e.count }

// Value returns the current quantile estimate. With fewer than five
// observations it is computed exactly from the sorted sample (with linear
// interpolation, matching stats.Quantile); with none it is 0.
func (e *P2) Value() float64 {
	if e.count == 0 {
		return 0
	}
	if e.count < 5 {
		s := append([]float64(nil), e.q[:e.count]...)
		sort.Float64s(s)
		pos := e.p * float64(len(s)-1)
		lo := int(pos)
		if lo >= len(s)-1 {
			return s[len(s)-1]
		}
		frac := pos - float64(lo)
		return s[lo]*(1-frac) + s[lo+1]*frac
	}
	return e.q[2]
}
