package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"superfast/internal/stats"
)

// Hop identifies one stage of a clustered request's path. A request entering
// through ftlload, crossing an ftlvol proxy and landing on an ftlserve
// backend touches, in order: HopClient (pipeline wait in the client),
// HopProxy (one scatter/gather leg per replica), HopAdmission (the server's
// admission gate), and then the device triple HopQueue / HopGC / HopService,
// whose simulated durations sum to the request's host-visible latency.
type Hop uint8

// The hop taxonomy. Order is the canonical request path; breakdown tables
// and the Chrome export list hops in this order.
const (
	// HopClient is the client-side pipeline wait: the wall time a frame
	// spent serialized behind earlier frames on its connection. Wall-clock
	// only — the client has no simulated clock.
	HopClient Hop = iota
	// HopProxy is one replica leg of a volume scatter/gather fan-out. Its
	// simulated duration is the leg's device-reported latency; its wall
	// duration is the leg's round trip through the backend.
	HopProxy
	// HopAdmission is the server's admission-gate wait (global and
	// per-connection in-flight caps). Wall-clock only.
	HopAdmission
	// HopQueue is the device queue wait: simulated arrival to service start.
	HopQueue
	// HopGC is the garbage-collection share of device time: the blocking-GC
	// share of a write's service, and — as device-emitted background
	// records — each preemptive GC step's flash work.
	HopGC
	// HopService is the host share of device service time (flash + bus,
	// minus the blocking-GC share).
	HopService
	// NumHops counts the taxonomy; every valid Hop is < NumHops.
	NumHops = 6
	// HopNone marks a record with no upstream hop (the path root).
	HopNone Hop = 0xff
)

var hopNames = [NumHops]string{"client", "proxy", "admission", "queue", "gc", "service"}

// Valid reports whether h is a member of the taxonomy (HopNone is not).
func (h Hop) Valid() bool { return h < NumHops }

// WallOnly reports whether the hop has no simulated-clock duration: its
// latency is measured on the wall clock only.
func (h Hop) WallOnly() bool { return h == HopClient || h == HopAdmission }

func (h Hop) String() string {
	if h.Valid() {
		return hopNames[h]
	}
	if h == HopNone {
		return "none"
	}
	return fmt.Sprintf("hop(%d)", uint8(h))
}

// HopByName resolves a hop name ("client", "proxy", ...) or "none".
func HopByName(s string) (Hop, bool) {
	for i, n := range hopNames {
		if n == s {
			return Hop(i), true
		}
	}
	if s == "none" {
		return HopNone, true
	}
	return 0, false
}

// MarshalJSON renders the hop as its name, keeping ledger shards readable
// and independent of the enum's numeric values.
func (h Hop) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(h.String())), nil
}

// UnmarshalJSON accepts a hop name or "none".
func (h *Hop) UnmarshalJSON(b []byte) error {
	s, err := strconv.Unquote(string(b))
	if err != nil {
		return fmt.Errorf("telemetry: hop: %w", err)
	}
	v, ok := HopByName(s)
	if !ok {
		return fmt.Errorf("telemetry: unknown hop %q", s)
	}
	*h = v
	return nil
}

// HopRecord is one typed timing entry in a request's latency ledger. The
// simulated fields (SimTS, SimUS) are deterministic in sequenced replay;
// WallNS is genuinely wall-clock and varies run to run, so the deterministic
// exports exclude it.
type HopRecord struct {
	Proc   string  `json:"proc,omitempty"` // exporting process ("load", "vol", "srv:addr")
	Trace  uint64  `json:"trace"`          // trace id; 0 = untraced
	Hop    Hop     `json:"hop"`
	Parent Hop     `json:"parent"`          // upstream hop, HopNone at the root
	Leg    uint8   `json:"leg,omitempty"`   // replica leg index within a fan-out
	Seq    uint64  `json:"seq"`             // replay ticket (or 0)
	LPN    int64   `json:"lpn"`             // logical page, -1 when not applicable
	Status uint8   `json:"status,omitempty"` // wire status observed at this hop
	Pages  int     `json:"pages,omitempty"` // GC pages relocated (background records)
	SimTS  float64 `json:"sim_ts"`          // simulated start, µs; -1 = wall-only
	SimUS  float64 `json:"sim_us"`          // simulated duration, µs
	WallNS int64   `json:"wall_ns,omitempty"` // wall-clock duration, ns
}

// Ledger collects one process's hop records and streams per-hop latency
// digests for live exposition. Safe for concurrent use. The record list is
// bounded only by the run length; shards of long-lived servers should be
// cut via WriteShard + Reset.
type Ledger struct {
	mu   sync.Mutex
	proc string
	recs []HopRecord
	hops [NumHops]stats.LatencyDigest
}

// NewLedger returns an empty ledger exporting records under the given
// process name.
func NewLedger(proc string) *Ledger { return &Ledger{proc: proc} }

// Proc returns the process name stamped on this ledger's records.
func (l *Ledger) Proc() string { return l.proc }

// Record appends one hop record, stamping the ledger's process name, and
// feeds the hop's streaming digest — simulated µs for simulated hops, wall
// µs for wall-only hops.
func (l *Ledger) Record(r HopRecord) {
	if l == nil {
		return
	}
	r.Proc = l.proc
	l.mu.Lock()
	l.recs = append(l.recs, r)
	if r.Hop.Valid() {
		if r.Hop.WallOnly() {
			l.hops[r.Hop].Observe(float64(r.WallNS) / 1e3)
		} else {
			l.hops[r.Hop].Observe(r.SimUS)
		}
	}
	l.mu.Unlock()
}

// Len returns the number of collected records.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Reset drops the collected records (the digests keep streaming).
func (l *Ledger) Reset() {
	l.mu.Lock()
	l.recs = nil
	l.mu.Unlock()
}

// Records returns a sorted copy of the collected records (shard order).
func (l *Ledger) Records() []HopRecord {
	l.mu.Lock()
	recs := append([]HopRecord(nil), l.recs...)
	l.mu.Unlock()
	SortRecords(recs)
	return recs
}

// HopSummary returns the streaming latency summary of one hop — simulated
// µs, or wall µs for wall-only hops.
func (l *Ledger) HopSummary(h Hop) stats.DigestSummary {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hops[h].Summary()
}

// SortRecords orders records by the total ledger key: trace, hop, leg, seq,
// proc, then the remaining fields. Deterministic fields lead, so two
// sequenced runs sort identical record sets identically.
func SortRecords(recs []HopRecord) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		if a.Hop != b.Hop {
			return a.Hop < b.Hop
		}
		if a.Leg != b.Leg {
			return a.Leg < b.Leg
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.LPN != b.LPN {
			return a.LPN < b.LPN
		}
		if a.SimTS != b.SimTS {
			return a.SimTS < b.SimTS
		}
		if a.SimUS != b.SimUS {
			return a.SimUS < b.SimUS
		}
		if a.Status != b.Status {
			return a.Status < b.Status
		}
		return a.WallNS < b.WallNS
	})
}

// WriteShard writes the ledger as one JSONL shard: one record per line, in
// shard (sorted) order. Line contents other than wall_ns are deterministic
// for a sequenced run.
func (l *Ledger) WriteShard(w io.Writer) error {
	return WriteShard(w, l.Records())
}

// WriteShard writes records as JSONL, one per line.
func WriteShard(w io.Writer, recs []HopRecord) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadShard parses one JSONL shard. Blank lines are skipped; a malformed
// line fails with its line number.
func ReadShard(r io.Reader) ([]HopRecord, error) {
	var recs []HopRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec HopRecord
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("telemetry: shard line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// MergeRecords concatenates ledger shards and sorts them into the canonical
// merged order. The inputs are not modified.
func MergeRecords(shards ...[]HopRecord) []HopRecord {
	n := 0
	for _, s := range shards {
		n += len(s)
	}
	out := make([]HopRecord, 0, n)
	for _, s := range shards {
		out = append(out, s...)
	}
	SortRecords(out)
	return out
}

// WriteLedgerChrome writes merged ledger records as Chrome trace-event JSON:
// one process row per exporting process, one thread row per hop, simulated
// hops as complete spans on the simulated clock and wall-only hops as
// instants anchored at their trace's earliest simulated timestamp. With
// wall=false (the default for deterministic exports) wall-clock durations
// are omitted; wall=true adds them as args.
func WriteLedgerChrome(w io.Writer, recs []HopRecord, wall bool) error {
	recs = append([]HopRecord(nil), recs...)
	SortRecords(recs)

	// Assign pids in sorted process-name order and precompute each trace's
	// anchor: the earliest simulated timestamp any of its records carries.
	pids := map[string]int{}
	var procs []string
	anchor := map[uint64]float64{}
	for _, r := range recs {
		if _, ok := pids[r.Proc]; !ok {
			pids[r.Proc] = 0
			procs = append(procs, r.Proc)
		}
		if r.SimTS >= 0 {
			if a, ok := anchor[r.Trace]; !ok || r.SimTS < a {
				anchor[r.Trace] = r.SimTS
			}
		}
	}
	sort.Strings(procs)
	for i, p := range procs {
		pids[p] = i + 1
	}

	bw := bufio.NewWriter(w)
	bw.WriteString("[\n")
	first := true
	meta := func(s string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(s)
	}
	for _, p := range procs {
		meta(`{"name":"process_name","ph":"M","pid":` + strconv.Itoa(pids[p]) +
			`,"args":{"name":` + strconv.Quote(p) + `}}`)
		for h := Hop(0); h.Valid(); h++ {
			meta(`{"name":"thread_name","ph":"M","pid":` + strconv.Itoa(pids[p]) +
				`,"tid":` + strconv.Itoa(int(h)) +
				`,"args":{"name":` + strconv.Quote(h.String()) + `}}`)
		}
	}
	for _, r := range recs {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		ts := r.SimTS
		ph := byte(PhaseSpan)
		if ts < 0 {
			ts = anchor[r.Trace] // 0 when the trace has no simulated record
			ph = PhaseInstant
		}
		bw.WriteString(`{"name":`)
		bw.WriteString(strconv.Quote(r.Hop.String()))
		bw.WriteString(`,"cat":"hop","ph":"`)
		bw.WriteByte(ph)
		bw.WriteString(`"`)
		if ph == PhaseInstant {
			bw.WriteString(`,"s":"t"`)
		}
		bw.WriteString(`,"pid":`)
		bw.WriteString(strconv.Itoa(pids[r.Proc]))
		bw.WriteString(`,"tid":`)
		bw.WriteString(strconv.Itoa(int(r.Hop)))
		bw.WriteString(`,"ts":`)
		bw.WriteString(formatUS(ts))
		if ph == PhaseSpan {
			bw.WriteString(`,"dur":`)
			bw.WriteString(formatUS(r.SimUS))
		}
		bw.WriteString(`,"args":{"trace":`)
		bw.WriteString(strconv.FormatUint(r.Trace, 10))
		bw.WriteString(`,"seq":`)
		bw.WriteString(strconv.FormatUint(r.Seq, 10))
		bw.WriteString(`,"parent":`)
		bw.WriteString(strconv.Quote(r.Parent.String()))
		if r.Leg > 0 {
			bw.WriteString(`,"leg":`)
			bw.WriteString(strconv.Itoa(int(r.Leg)))
		}
		if r.LPN >= 0 {
			bw.WriteString(`,"lpn":`)
			bw.WriteString(strconv.FormatInt(r.LPN, 10))
		}
		if r.Status != 0 {
			bw.WriteString(`,"status":`)
			bw.WriteString(strconv.Itoa(int(r.Status)))
		}
		if r.Pages > 0 {
			bw.WriteString(`,"pages":`)
			bw.WriteString(strconv.Itoa(r.Pages))
		}
		if wall {
			bw.WriteString(`,"wall_ns":`)
			bw.WriteString(strconv.FormatInt(r.WallNS, 10))
		}
		bw.WriteString(`}}`)
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}

// HopBreakdown summarizes one hop across a merged record set.
type HopBreakdown struct {
	Hop     Hop
	N       int     // records
	Pages   int     // GC pages relocated (HopGC records)
	Mean    float64 // µs (wall µs for wall-only hops)
	P50     float64
	P99     float64
	P999    float64
	Max     float64
	Slowest int // traces whose slowest simulated hop this was
}

// Breakdown is the per-hop latency table of a merged ledger.
type Breakdown struct {
	Hops   [NumHops]HopBreakdown
	Traces int // distinct trace ids
}

// LedgerBreakdown computes exact per-hop quantiles (P50/P99/P99.9) over a
// merged record set and attributes each trace to its slowest simulated hop
// (the hop with the largest summed simulated duration; earlier hops win
// ties). Wall-only hops report wall-clock µs.
func LedgerBreakdown(recs []HopRecord) Breakdown {
	var b Breakdown
	samples := [NumHops][]float64{}
	type traceSum struct{ sim [NumHops]float64 }
	sums := map[uint64]*traceSum{}
	for _, r := range recs {
		if !r.Hop.Valid() {
			continue
		}
		h := r.Hop
		b.Hops[h].N++
		b.Hops[h].Pages += r.Pages
		v := r.SimUS
		if h.WallOnly() {
			v = float64(r.WallNS) / 1e3
		}
		samples[h] = append(samples[h], v)
		ts := sums[r.Trace]
		if ts == nil {
			ts = &traceSum{}
			sums[r.Trace] = ts
		}
		if !h.WallOnly() {
			ts.sim[h] += r.SimUS
		}
	}
	b.Traces = len(sums)
	for h := 0; h < NumHops; h++ {
		b.Hops[h].Hop = Hop(h)
		s := samples[h]
		if len(s) == 0 {
			continue
		}
		sort.Float64s(s)
		sum := 0.0
		for _, v := range s {
			sum += v
		}
		b.Hops[h].Mean = sum / float64(len(s))
		b.Hops[h].P50 = stats.Quantile(s, 0.50)
		b.Hops[h].P99 = stats.Quantile(s, 0.99)
		b.Hops[h].P999 = stats.Quantile(s, 0.999)
		b.Hops[h].Max = s[len(s)-1]
	}
	for _, ts := range sums {
		best, bestV := -1, 0.0
		for h := 0; h < NumHops; h++ {
			if ts.sim[h] > bestV {
				best, bestV = h, ts.sim[h]
			}
		}
		if best >= 0 {
			b.Hops[best].Slowest++
		}
	}
	return b
}

// WriteTable renders the breakdown as an aligned text table: one row per
// hop (wall-only hops flagged), with exact P50/P99/P99.9 and the
// slowest-hop attribution count.
func (b Breakdown) WriteTable(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%-10s %8s %12s %12s %12s %12s %8s %8s\n",
		"hop", "n", "mean_us", "p50_us", "p99_us", "p999_us", "slowest", "pages")
	for _, h := range b.Hops {
		name := h.Hop.String()
		if h.Hop.WallOnly() {
			name += "*"
		}
		fmt.Fprintf(bw, "%-10s %8d %12.3f %12.3f %12.3f %12.3f %8d %8d\n",
			name, h.N, h.Mean, h.P50, h.P99, h.P999, h.Slowest, h.Pages)
	}
	fmt.Fprintf(bw, "traces: %d   (* wall-clock us)\n", b.Traces)
	return bw.Flush()
}
