package workload

import (
	"strings"
	"testing"

	"superfast/internal/ssd"
)

func TestParseTraceAutoSimple(t *testing.T) {
	trace := `# leading comment keeps detection on the first data line
w,5
r,5
t,5
`
	reqs, format, err := ParseTraceAuto(strings.NewReader(trace), 8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if format != "simple" {
		t.Fatalf("format = %q, want simple", format)
	}
	if len(reqs) != 3 {
		t.Fatalf("got %d requests", len(reqs))
	}
	if reqs[0].Kind != ssd.OpWrite || len(reqs[0].Data) != 8 {
		t.Fatalf("req0 %+v", reqs[0])
	}
	if reqs[2].Kind != ssd.OpTrim || reqs[2].LPN != 5 {
		t.Fatalf("req2 %+v", reqs[2])
	}
}

func TestParseTraceAutoMSR(t *testing.T) {
	trace := "128166372003061629,host,0,Write,0,8192,100\n" +
		"128166372003061629,host,0,Read,4096,4096,50\n"
	reqs, format, err := ParseTraceAuto(strings.NewReader(trace), 4096, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if format != "msr" {
		t.Fatalf("format = %q, want msr", format)
	}
	// 8192-byte write covers pages 0 and 1, then one read of page 1.
	if len(reqs) != 3 {
		t.Fatalf("got %d requests: %+v", len(reqs), reqs)
	}
	if reqs[2].Kind != ssd.OpRead || reqs[2].LPN != 1 {
		t.Fatalf("req2 %+v", reqs[2])
	}
}

func TestParseTraceAutoAgreesWithDedicatedParsers(t *testing.T) {
	simple := "w,1\nr,2\nt,3\n"
	direct, err := ParseTrace(strings.NewReader(simple), 16)
	if err != nil {
		t.Fatal(err)
	}
	auto, _, err := ParseTraceAuto(strings.NewReader(simple), 16, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(auto) {
		t.Fatalf("simple: %d vs %d requests", len(direct), len(auto))
	}
	msr := "1,h,0,Write,0,8192,1\n2,h,0,read,4096,4096,1\n"
	directM, err := ParseMSRTrace(strings.NewReader(msr), 4096, 100)
	if err != nil {
		t.Fatal(err)
	}
	autoM, _, err := ParseTraceAuto(strings.NewReader(msr), 4096, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(directM) != len(autoM) {
		t.Fatalf("msr: %d vs %d requests", len(directM), len(autoM))
	}
	for i := range directM {
		if directM[i].Kind != autoM[i].Kind || directM[i].LPN != autoM[i].LPN ||
			directM[i].Arrival != autoM[i].Arrival {
			t.Fatalf("msr req %d: %+v vs %+v", i, directM[i], autoM[i])
		}
	}
}

func TestParseTraceAutoErrors(t *testing.T) {
	// 3..5 fields match neither format.
	if _, _, err := ParseTraceAuto(strings.NewReader("a,b,c\n"), 8, 100); err == nil {
		t.Fatal("3-field first line should be rejected")
	}
	// Detection locks on the first data line; a later malformed line fails
	// with its own line number.
	bad := "w,1\nw,2\nbogus,3\n"
	_, _, err := ParseTraceAuto(strings.NewReader(bad), 8, 100)
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want a line-3 error", err)
	}
	// MSR validation (bad page size) surfaces through auto-detection too.
	if _, _, err := ParseTraceAuto(strings.NewReader("1,h,0,Write,0,4096,1\n"), 0, 100); err == nil {
		t.Fatal("zero page size should fail for MSR traces")
	}
}

func TestTraceErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		trace string
		want  string
	}{
		{"w,1\n\n# c\nx,9\n", "line 4"},
		{"w,1\nw\n", "line 2"},
	}
	for _, c := range cases {
		_, err := ParseTrace(strings.NewReader(c.trace), 8)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("trace %q: err = %v, want %s", c.trace, err, c.want)
		}
	}
	_, err := ParseMSRTrace(strings.NewReader("1,h,0,Write,0,4096,1\n1,h,0,Zap,0,4096,1\n"), 4096, 100)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("msr err = %v, want line 2", err)
	}
}
