package volume

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"superfast/internal/stats"
	"superfast/internal/telemetry"
)

// Routes returns the volume's HTTP surface:
//
//	GET  /metrics           merged Prometheus exposition (cluster + per-backend)
//	GET  /cluster           full cluster snapshot as JSON
//	GET  /trace             hop-ledger shard (when a ledger is wired)
//	POST /rebalance/add     ?addr=host:port — attach a backend and rebalance
//	POST /rebalance/remove  ?backend=N — drain and detach a backend
//
// The proxy may be nil; frontend serving counters are then omitted. led may
// be nil; /trace and the hop_latency_us summaries are then omitted.
func Routes(v *Volume, p *Proxy, led *telemetry.Ledger) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		writePrometheus(w, v, p)
		if led != nil {
			bw := bufio.NewWriter(w)
			telemetry.WriteLedgerPrometheus(bw, led)
			bw.Flush()
		}
	})
	if led != nil {
		mux.Handle("/trace", telemetry.TraceHandler(led))
	}
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
		snap := v.ClusterStat()
		if p != nil {
			snap.Server.Conns = p.connsNow.Load()
			snap.Server.ConnsEver = p.connsEver.Load()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
	mux.HandleFunc("/rebalance/add", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		addr := r.FormValue("addr")
		if addr == "" {
			http.Error(w, "missing addr", http.StatusBadRequest)
			return
		}
		nb, err := v.AddBackend(addr)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		fmt.Fprintf(w, "{\"backend\": %d}\n", nb)
	})
	mux.HandleFunc("/rebalance/remove", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		b, err := strconv.Atoi(r.FormValue("backend"))
		if err != nil {
			http.Error(w, "bad backend index", http.StatusBadRequest)
			return
		}
		if err := v.RemoveBackend(b); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		fmt.Fprintf(w, "{\"removed\": %d}\n", b)
	})
	return mux
}

// writePrometheus renders the merged exposition: volume-level counters and
// latency quantiles at cluster scope, and every backend's srv_* serving
// counters as labeled series, so one scrape covers the whole shard set.
func writePrometheus(w io.Writer, v *Volume, p *Proxy) {
	snap := v.ClusterStat()

	counter := func(name, help string, val uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, val)
	}
	gauge := func(name, help string, val float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, val)
	}
	counter("vol_reads_total", "logical reads accepted by the volume", snap.Volume.Reads)
	counter("vol_writes_total", "logical writes accepted by the volume", snap.Volume.Writes)
	counter("vol_trims_total", "logical trims accepted by the volume", snap.Volume.Trims)
	counter("vol_flushes_total", "cluster flush barriers", snap.Volume.Flushes)
	counter("vol_read_retries_total", "reads retried on another replica", snap.Volume.Retries)
	counter("vol_read_repairs_total", "divergent replicas rewritten", snap.Volume.Repairs)
	counter("vol_unit_moves_total", "stripe units relocated by rebalance", snap.Volume.UnitMoves)
	gauge("vol_space_lpns", "logical pages the volume exposes", float64(snap.Capacity))
	gauge("vol_stripe_pages", "pages per stripe unit", float64(snap.Stripe))
	gauge("vol_replicas", "copies kept of every stripe unit", float64(snap.Replicas))
	gauge("vol_waf", "cluster write amplification", snap.WAF)

	active := 0
	for _, b := range snap.Backends {
		if b.Active {
			active++
		}
	}
	gauge("vol_backends_active", "backends serving shard ranges", float64(active))
	if p != nil {
		s := p.Stats()
		gauge("vol_conns", "open frontend connections", float64(s.Conns))
		counter("vol_accepted_total", "frames accepted by the frontend", s.Accepted)
		counter("vol_rejected_total", "frames rejected by the frontend", s.Rejected)
	}

	quantiles := func(name, help string, d stats.DigestSummary) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
		for _, q := range []struct {
			q string
			v float64
		}{{"0.5", d.P50}, {"0.95", d.P95}, {"0.99", d.P99}, {"0.999", d.P999}} {
			fmt.Fprintf(w, "%s{quantile=%q} %v\n", name, q.q, q.v)
		}
		fmt.Fprintf(w, "%s_sum %v\n%s_count %d\n", name, d.Mean*float64(d.N), name, d.N)
	}
	quantiles("vol_read_latency_us", "simulated read latency across all shards", snap.ReadLat)
	quantiles("vol_write_latency_us", "simulated write latency across all shards", snap.WriteLat)

	// Per-backend serving counters under one scrape, labeled by shard.
	series := []struct {
		name, help string
		val        func(BackendStat) float64
	}{
		{"vol_backend_up", "1 when the backend answered its STAT probe", func(b BackendStat) float64 {
			if b.Active && b.Error == "" {
				return 1
			}
			return 0
		}},
		{"vol_backend_slots_used", "stripe units placed on the backend", func(b BackendStat) float64 { return float64(b.Slots) }},
		{"vol_backend_srv_accepted", "frames the backend accepted", func(b BackendStat) float64 { return float64(b.Snap.Server.Accepted) }},
		{"vol_backend_srv_rejected", "frames the backend rejected", func(b BackendStat) float64 { return float64(b.Snap.Server.Rejected) }},
		{"vol_backend_srv_inflight", "requests in flight on the backend", func(b BackendStat) float64 { return float64(b.Snap.Server.InFlight) }},
		{"vol_backend_srv_conns", "connections open on the backend", func(b BackendStat) float64 { return float64(b.Snap.Server.Conns) }},
		{"vol_backend_device_requests", "device requests completed", func(b BackendStat) float64 { return float64(b.Snap.Device.Requests) }},
		{"vol_backend_waf", "backend write amplification", func(b BackendStat) float64 { return b.Snap.WAF }},
	}
	for _, s := range series {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", s.name, s.help, s.name)
		for _, b := range snap.Backends {
			fmt.Fprintf(w, "%s{backend=%q,addr=%q} %v\n", s.name, strconv.Itoa(b.Backend), b.Addr, s.val(b))
		}
	}
}
