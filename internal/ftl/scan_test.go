package ftl

import (
	"testing"

	"superfast/internal/core"
	"superfast/internal/prng"
)

func TestTagCodecRoundTrip(t *testing.T) {
	cases := []struct {
		lpn   int64
		seq   uint64
		sbID  int
		speed core.Speed
	}{
		{0, 0, 0, core.Fast},
		{123456, 99, 7, core.Slow},
		{tagParity, 0, 3, core.Fast},
		{tagNoData, 0, 12, core.Slow},
	}
	for _, c := range cases {
		lpn, seq, sbID, speed, ok := decodeTag(encodeTag(c.lpn, c.seq, c.sbID, c.speed))
		if !ok || lpn != c.lpn || seq != c.seq || sbID != c.sbID || speed != c.speed {
			t.Fatalf("roundtrip %+v -> (%d %d %d %v %v)", c, lpn, seq, sbID, speed, ok)
		}
	}
	if _, _, _, _, ok := decodeTag(nil); ok {
		t.Fatal("nil tag should not decode")
	}
	if _, _, _, _, ok := decodeTag(make([]byte, tagBytes)); ok {
		t.Fatal("zero tag should not decode")
	}
}

func TestRecoverByScanRebuildsMapping(t *testing.T) {
	arr := testArray(t)
	cfg := testConfig()
	f, err := New(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := fillAndChurn(t, f, 1.2, 201)
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	// Unclean power loss: no checkpoint; rebuild purely from flash tags.
	g, err := RecoverByScan(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	src := prng.New(17)
	for i := 0; i < 300; i++ {
		lpn := int64(src.Intn(int(g.Capacity())))
		r, err := g.Read(lpn)
		if err != nil {
			t.Fatalf("lpn %d after scan recovery: %v", lpn, err)
		}
		if string(r.Data) != string(payload(lpn, gen[lpn])) {
			t.Fatalf("lpn %d: stale copy won (%q)", lpn, r.Data)
		}
	}
	// The recovered FTL keeps working, including GC.
	for i := 0; i < int(g.Capacity()); i++ {
		lpn := int64(src.Intn(int(g.Capacity())))
		gen[lpn]++
		if _, err := g.Write(lpn, payload(lpn, gen[lpn])); err != nil {
			t.Fatalf("post-recovery write: %v", err)
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverByScanReopensPartialSuperblock(t *testing.T) {
	arr := testArray(t)
	cfg := testConfig()
	f, err := New(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Write a couple of super word-lines' worth and flush, leaving the fast
	// superblock open (partially programmed).
	n := f.geo.Lanes() * 6 // two super word-lines in the RAID-less layout
	for lpn := 0; lpn < n; lpn++ {
		if _, err := f.Write(int64(lpn), payload(int64(lpn), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	g, err := RecoverByScan(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.open) == 0 {
		t.Fatal("partially written superblock should reopen")
	}
	// Writing continues into the reopened superblock without errors.
	for lpn := 0; lpn < n; lpn++ {
		if _, err := g.Write(int64(lpn+n), payload(int64(lpn+n), 0)); err != nil {
			t.Fatalf("write into reopened superblock: %v", err)
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for lpn := 0; lpn < 2*n; lpn++ {
		r, err := g.Read(int64(lpn))
		if err != nil {
			t.Fatalf("lpn %d: %v", lpn, err)
		}
		if string(r.Data) != string(payload(int64(lpn), 0)) {
			t.Fatalf("lpn %d corrupted", lpn)
		}
	}
}

func TestRecoverByScanWithRAID(t *testing.T) {
	arr := testArray(t)
	cfg := raidConfig()
	f, err := New(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for lpn := int64(0); lpn < 200; lpn++ {
		if _, err := f.Write(lpn, payload(lpn, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	g, err := RecoverByScan(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Parity pages must not appear in the mapping, and reconstruction still
	// works after recovery.
	corruptPageOf(t, g, 50)
	r, err := g.Read(50)
	if err != nil {
		t.Fatalf("post-recovery reconstruction: %v", err)
	}
	if string(r.Data) != string(payload(50, 0)) {
		t.Fatalf("lpn 50 = %q", r.Data)
	}
}

func TestRecoverByScanEmptyDevice(t *testing.T) {
	arr := testArray(t)
	cfg := testConfig()
	g, err := RecoverByScan(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.Scheme().FreeCount() != g.geo.BlocksPerPlane {
		t.Fatalf("empty device should have everything free, got %d", g.Scheme().FreeCount())
	}
	if _, err := g.Write(0, payload(0, 0)); err != nil {
		t.Fatal(err)
	}
}
