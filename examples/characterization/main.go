// Characterization: reproduce the shape of the paper's Fig. 5 and Fig. 6 on
// the simulated chips — per-block erase latency and per-word-line program
// latency across two chips, then the extra latency of random superblock
// organization, including a P/E-cycle sweep.
package main

import (
	"fmt"
	"log"

	"superfast/internal/assembly"
	"superfast/internal/chamber"
	"superfast/internal/flash"
	"superfast/internal/pv"
	"superfast/internal/stats"
)

func main() {
	geo := flash.Geometry{
		Chips:          4,
		PlanesPerChip:  1,
		BlocksPerPlane: 200,
		Layers:         96,
		Strings:        4,
		PageSize:       16 * 1024,
		SpareSize:      2 * 1024,
	}
	params := pv.DefaultParams()
	params.Layers = geo.Layers
	params.Strings = geo.Strings
	arr, err := flash.NewArray(geo, pv.New(params), flash.DefaultECC())
	if err != nil {
		log.Fatal(err)
	}
	tb := chamber.New(arr)

	// --- Fig. 5 top: tBERS variation across blocks and chips.
	fmt.Println("tBERS summary per chip (µs):")
	for chip := 0; chip < 2; chip++ {
		ps, err := tb.MeasureLane(chip, chamber.BlockRange(0, 200), 0, true)
		if err != nil {
			log.Fatal(err)
		}
		ers := make([]float64, len(ps))
		for i, p := range ps {
			ers[i] = p.Erase
		}
		s := stats.Summarize(ers)
		fmt.Printf("  chip %d: mean %s  std %s  min %s  max %s (spikes are slow blocks)\n",
			chip, stats.FmtUS(s.Mean), stats.FmtUS(s.Std), stats.FmtUS(s.Min), stats.FmtUS(s.Max))
	}

	// --- Fig. 5 bottom: per-word-line tPROG of block 0 on two chips.
	fmt.Println("\ntPROG per word-line, block 0 (first 12 word-lines, µs):")
	for chip := 0; chip < 2; chip++ {
		p := tb.FastProfile(chip, 0, 0)
		fmt.Printf("  chip %d:", chip)
		for wl := 0; wl < 12; wl++ {
			fmt.Printf(" %7.1f", p.LWL[wl])
		}
		fmt.Println()
	}
	fmt.Println("  (edge layers are slow, middle layers fast: the V-shape etching profile)")

	// --- Fig. 6: extra latency of random organization across P/E cycles.
	fmt.Println("\nrandom superblock organization, extra latency vs P/E cycles:")
	group := chamber.GroupLanes(geo, 4)[0]
	for _, pe := range []int{0, 1000, 2000, 3000} {
		if err := tb.CycleAllTo(pe); err != nil {
			log.Fatal(err)
		}
		lanes, err := tb.MeasureGroup(group, chamber.BlockRange(0, 200), pe, true)
		if err != nil {
			log.Fatal(err)
		}
		res, err := assembly.Random{Seed: 7}.Assemble(lanes)
		if err != nil {
			log.Fatal(err)
		}
		m, err := assembly.Evaluate(lanes, res.Superblocks)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  P/E %4d: extra PGM %12s µs   extra ERS %8s µs\n",
			pe, stats.FmtUS(m.MeanPgm), stats.FmtUS(m.MeanErs))
	}
	fmt.Println("\n(the paper reports 13,084.17 µs / 41.71 µs for random grouping)")
}
