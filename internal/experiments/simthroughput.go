package experiments

import (
	"fmt"
	"sync"

	"superfast/internal/assembly"
	"superfast/internal/chamber"
	"superfast/internal/core"
	"superfast/internal/flash"
	"superfast/internal/pv"
	"superfast/internal/sim"
	"superfast/internal/stats"
)

func init() {
	register("sim-throughput", runSimThroughput)
}

// runSimThroughput measures the device-level cost of extra latency: a full
// SSD topology (channels × chips × planes) programs a stream of organized
// superblocks; the per-chip multi-plane occupancy is the maximum over the
// chip's planes, so poor organization wastes chip time and throughput. At
// this scale (one superblock spans 32 planes) the window searches are
// combinatorially impossible — only the zip baselines and QSTR-MED's
// linear-cost greedy remain, which is the paper's practicality argument.
func runSimThroughput(cfg Config) (*Result, error) {
	dc := sim.DefaultConfig()
	if cfg.Geometry.Strings != 4 {
		dc.PlanesPerChip = cfg.Geometry.Strings
	}
	// Build a flash geometry matching the sim topology: every plane is a
	// lane of the one big superblock group.
	g := flash.Geometry{
		Chips:          dc.Chips(),
		PlanesPerChip:  dc.PlanesPerChip,
		BlocksPerPlane: 24,
		Layers:         cfg.Geometry.Layers,
		Strings:        cfg.Geometry.Strings,
		PageSize:       dc.PageBytes,
		SpareSize:      cfg.Geometry.SpareSize,
	}
	if g.BlocksPerPlane > cfg.Geometry.BlocksPerPlane {
		g.BlocksPerPlane = cfg.Geometry.BlocksPerPlane
	}
	p := cfg.PV
	p.Seed = cfg.Seed
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr, err := flash.NewArray(g, pv.New(p), flash.DefaultECC())
	if err != nil {
		return nil, err
	}
	// One group spanning every plane lane. Fast lane measurement only reads
	// the array's latency kernel (concurrency-safe, lock-free fill), so with
	// cfg.Parallel > 1 the lanes measure concurrently on offset testbeds:
	// lane l's jitter stream starts exactly where the serial walk would have
	// it — l lanes × blocks × (Layers·Strings program draws + 1 erase draw)
	// — making the parallel measurement byte-identical to the serial one
	// regardless of goroutine scheduling.
	lanes := make([]assembly.Lane, g.Lanes())
	blocks := chamber.BlockRange(0, g.BlocksPerPlane)
	drawsPerLane := uint64(len(blocks)) * uint64(g.Layers*g.Strings+1)
	if cfg.Parallel > 1 {
		errs := make([]error, len(lanes))
		sem := make(chan struct{}, cfg.Parallel)
		var wg sync.WaitGroup
		for l := range lanes {
			l := l
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer func() { <-sem; wg.Done() }()
				tbl := chamber.NewOffset(arr, uint64(l)*drawsPerLane)
				ps, err := tbl.MeasureLane(l, blocks, cfg.PESteps[0], true)
				if err != nil {
					errs[l] = err
					return
				}
				lanes[l] = assembly.Lane{ID: l, Blocks: ps}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	} else {
		tb := chamber.New(arr)
		for l := range lanes {
			ps, err := tb.MeasureLane(l, blocks, cfg.PESteps[0], true)
			if err != nil {
				return nil, err
			}
			lanes[l] = assembly.Lane{ID: l, Blocks: ps}
		}
	}

	t := &stats.Table{
		Title:   "Device throughput programming organized superblocks",
		Headers: []string{"Organizer", "QD", "Throughput MB/s", "SuperWL µs", "Chip util", "Sync idle ms"},
	}
	strategies := []assembly.Assembler{
		assembly.Random{Seed: cfg.Seed + 1},
		assembly.Sequential{},
		assembly.ByPgmSum{},
		core.BatchAssembler{K: cfg.MedWindow},
	}
	// Assemblers are pure over the measured lanes and sim.Run keeps all its
	// state local, so each strategy (one assembly + both queue depths) runs
	// as an independent task into an indexed slot; the table rows are then
	// emitted serially in strategy order, identical to the serial loop.
	qds := []int{1, 2}
	reps := make([][]sim.Report, len(strategies))
	serrs := make([]error, len(strategies))
	runStrategy := func(si int) {
		s := strategies[si]
		res, err := s.Assemble(lanes)
		if err != nil {
			serrs[si] = err
			return
		}
		jobs := make([]sim.Job, len(res.Superblocks))
		for k, sb := range res.Superblocks {
			job := sim.Job{MemberLat: make([][]float64, len(lanes))}
			for l, bi := range sb {
				job.MemberLat[l] = lanes[l].Blocks[bi].LWL
			}
			jobs[k] = job
		}
		reps[si] = make([]sim.Report, len(qds))
		for qi, qd := range qds {
			c := dc
			c.QueueDepth = qd
			rep, err := sim.Run(c, jobs)
			if err != nil {
				serrs[si] = err
				return
			}
			reps[si][qi] = rep
		}
	}
	if cfg.Parallel > 1 {
		var wg sync.WaitGroup
		for si := range strategies {
			si := si
			wg.Add(1)
			go func() {
				defer wg.Done()
				runStrategy(si)
			}()
		}
		wg.Wait()
	} else {
		for si := range strategies {
			runStrategy(si)
		}
	}
	for _, err := range serrs {
		if err != nil {
			return nil, err
		}
	}
	type outcome struct {
		name string
		tp   float64
	}
	var outs []outcome
	for si, s := range strategies {
		for qi, qd := range qds {
			rep := reps[si][qi]
			t.AddRow(s.Name(), fmt.Sprintf("%d", qd),
				fmt.Sprintf("%.1f", rep.ThroughputMBps),
				stats.FmtUS(rep.SuperWLLatency),
				stats.FmtPct(rep.ChipUtilization),
				fmt.Sprintf("%.1f", rep.ChipIdleSync/1000))
			if qd == 1 {
				outs = append(outs, outcome{s.Name(), rep.ThroughputMBps})
			}
		}
	}
	text := ""
	if len(outs) == 4 {
		text = fmt.Sprintf("QSTR-MED vs random program throughput at QD1: %s higher\n",
			stats.FmtPct(outs[3].tp/outs[0].tp-1))
	}
	return &Result{ID: "sim-throughput", Tables: []*stats.Table{t}, Text: text}, nil
}
