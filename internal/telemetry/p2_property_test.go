package telemetry

import (
	"math"
	"sort"
	"testing"

	"superfast/internal/prng"
)

// p2Property feeds samples to fresh P² estimators for the standard quantiles
// and checks each estimate against the exact sorted-sample quantile within
// relTol (relative to the sample range, so constant streams use an absolute
// zero-range check).
func p2Property(t *testing.T, name string, samples []float64, relTol float64) {
	t.Helper()
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	span := sorted[len(sorted)-1] - sorted[0]
	for _, q := range []float64{0.5, 0.95, 0.99} {
		e := NewP2(q)
		for _, v := range samples {
			e.Observe(v)
		}
		want := exactQuantile(sorted, q)
		got := e.Value()
		if span == 0 {
			if got != want {
				t.Fatalf("%s p%.0f: constant stream gave %v, want %v", name, q*100, got, want)
			}
			continue
		}
		if err := math.Abs(got-want) / span; err > relTol {
			t.Fatalf("%s p%.0f: streaming %v vs exact %v (err %.4f of range, tol %.4f)",
				name, q*100, got, want, err, relTol)
		}
	}
}

func TestP2PropertyUniform(t *testing.T) {
	src := prng.New(21, 0x1234)
	samples := make([]float64, 10000)
	for i := range samples {
		samples[i] = src.Float64() * 5000
	}
	p2Property(t, "uniform", samples, 0.02)
}

func TestP2PropertyBimodal(t *testing.T) {
	// The paper's latency shape: a fast mode and a slow mode (e.g. fast vs
	// slow flash pages). Quantiles sit inside or between the modes.
	src := prng.New(22, 0x5678)
	samples := make([]float64, 10000)
	for i := range samples {
		if src.Float64() < 0.7 {
			samples[i] = 200 + src.Float64()*50 // fast mode
		} else {
			samples[i] = 1800 + src.Float64()*300 // slow mode
		}
	}
	p2Property(t, "bimodal", samples, 0.03)
}

func TestP2PropertyConstant(t *testing.T) {
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = 42.5
	}
	p2Property(t, "constant", samples, 0)
}

func TestP2PropertyDuplicateHeavy(t *testing.T) {
	// Streams dominated by a handful of distinct values exercise the marker
	// degeneracy paths (equal neighbor heights). P² interpolates between
	// atoms when the exact quantile lands on a mass boundary, so the property
	// here is bracketing: the estimate must lie between the atoms adjacent to
	// the exact quantile (and the stream's extremes overall).
	src := prng.New(23, 0x9abc)
	vals := []float64{100, 100, 100, 250, 250, 900}
	samples := make([]float64, 6000)
	for i := range samples {
		samples[i] = vals[src.Uint64()%uint64(len(vals))]
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		e := NewP2(q)
		for _, v := range samples {
			e.Observe(v)
		}
		exact := exactQuantile(sorted, q)
		got := e.Value()
		// Bracket by the atoms strictly below and above the exact quantile:
		// markers interpolate between neighboring heights, so an estimate at
		// a mass boundary may drift toward the adjacent atom but never past it.
		atoms := []float64{100, 250, 900}
		lo, hi := atoms[0], atoms[len(atoms)-1]
		for _, a := range atoms {
			if a < exact && a > lo {
				lo = a
			}
			if a > exact && a < hi {
				hi = a
			}
		}
		if lo > exact {
			lo = exact
		}
		if hi < exact {
			hi = exact
		}
		if got < lo || got > hi {
			t.Fatalf("duplicates p%.0f: streaming %v outside atom bracket [%v, %v] around exact %v",
				q*100, got, lo, hi, exact)
		}
	}
}

func TestP2PropertyUnderFiveSamples(t *testing.T) {
	// Below five observations the estimator must be exact (sorted-sample
	// interpolation identical to stats.Quantile), for every prefix length.
	stream := []float64{88, 12, 55, 99}
	for n := 1; n <= len(stream); n++ {
		prefix := append([]float64(nil), stream[:n]...)
		sorted := append([]float64(nil), prefix...)
		sort.Float64s(sorted)
		for _, q := range []float64{0.5, 0.95, 0.99} {
			e := NewP2(q)
			for _, v := range prefix {
				e.Observe(v)
			}
			if got, want := e.Value(), exactQuantile(sorted, q); got != want {
				t.Fatalf("n=%d p%.0f: %v, want exact %v", n, q*100, got, want)
			}
		}
	}
}

func TestP2PropertyUnderFiveDuplicates(t *testing.T) {
	for _, q := range []float64{0.5, 0.95} {
		e := NewP2(q)
		for _, v := range []float64{7, 7, 7} {
			e.Observe(v)
		}
		if got := e.Value(); got != 7 {
			t.Fatalf("p%.0f of {7,7,7} = %v", q*100, got)
		}
	}
}
