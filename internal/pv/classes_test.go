package pv

import (
	"math"
	"testing"
)

func TestStringClassRange(t *testing.T) {
	m := testModel()
	k := m.Params().StringClasses
	for b := 0; b < 500; b++ {
		c := m.StringClass(0, 0, b)
		if c < 0 || c >= k {
			t.Fatalf("class %d out of [0, %d)", c, k)
		}
	}
}

func TestStringClassSharedAcrossChips(t *testing.T) {
	// With StringSharedProb = 0.8, two chips share a block's class with
	// probability ≥ p² (both follow the shared index).
	m := testModel()
	match := 0
	const n = 3000
	for b := 0; b < n; b++ {
		if m.StringClass(0, 0, b) == m.StringClass(1, 0, b) {
			match++
		}
	}
	p := m.Params().StringSharedProb
	k := float64(m.Params().StringClasses)
	wantMin := p*p + (1-p*p)/k - 0.04
	if frac := float64(match) / n; frac < wantMin {
		t.Fatalf("cross-chip class match %.3f, want ≥ %.3f", frac, wantMin)
	}
}

func TestStringClassSingleClassDegenerate(t *testing.T) {
	p := DefaultParams()
	p.StringClasses = 1
	m := New(p)
	if m.StringClass(3, 1, 17) != 0 {
		t.Fatal("single class should always be 0")
	}
}

func TestLayerClassRange(t *testing.T) {
	m := testModel()
	k := m.Params().LayerClasses
	for b := 0; b < 500; b++ {
		c := m.LayerClass(1, 0, b)
		if c < 0 || c >= k {
			t.Fatalf("layer class %d out of [0, %d)", c, k)
		}
	}
}

func TestStringOffsetsCenteredPerBlock(t *testing.T) {
	// The string offsets of one block sum to ~0: their mean belongs to the
	// block offset, not the pattern.
	m := testModel()
	for b := 0; b < 50; b++ {
		sum := 0.0
		for s := 0; s < m.Params().Strings; s++ {
			sum += m.stringOffset(Coord{Chip: 1, Plane: 0, Block: b, String: s})
		}
		if math.Abs(sum) > 1e-9 {
			t.Fatalf("block %d string offsets sum to %v, want 0", b, sum)
		}
	}
}

func TestSameClassBlocksShareStringOrdering(t *testing.T) {
	// Two same-class blocks must order their strings identically up to the
	// small idiosyncratic deviation — the signal STR-rank and the eigen
	// sequences exploit.
	m := testModel()
	order := func(chip, block int) [4]int {
		var offs [4]float64
		for s := 0; s < 4; s++ {
			offs[s] = m.stringOffset(Coord{Chip: chip, Block: block, String: s})
		}
		var ord [4]int
		for i := range ord {
			ord[i] = i
		}
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				if offs[ord[j]] < offs[ord[i]] {
					ord[i], ord[j] = ord[j], ord[i]
				}
			}
		}
		return ord
	}
	matches, total := 0, 0
	for b1 := 0; b1 < 60; b1++ {
		for b2 := b1 + 1; b2 < 60; b2++ {
			if m.StringClass(0, 0, b1) != m.StringClass(0, 0, b2) {
				continue
			}
			total++
			if order(0, b1) == order(0, b2) {
				matches++
			}
		}
	}
	if total == 0 {
		t.Skip("no same-class pairs in sample")
	}
	// Exact 4-string order agreement by chance is 1/4! ≈ 4%; same-class
	// blocks agree far more often (idiosyncratic noise flips near-ties).
	if frac := float64(matches) / float64(total); frac < 0.35 {
		t.Fatalf("same-class string-order agreement %.2f, want ≥ 0.35", frac)
	}
}

func TestChipPgmFlatOffsetConstantPerChip(t *testing.T) {
	// The flat chip offset must shift all of a chip's word-lines equally:
	// the difference between two chips' chipLayerOffset has a constant
	// component across layers.
	m := testModel()
	p := m.Params()
	if p.ChipPgmSigma == 0 {
		t.Skip("flat chip offset disabled")
	}
	d0 := m.chipLayerOffset(0, 0) - m.chipLayerOffset(1, 0)
	var minD, maxD = math.Inf(1), math.Inf(-1)
	for l := 0; l < p.Layers; l++ {
		d := m.chipLayerOffset(0, l) - m.chipLayerOffset(1, l)
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	// The per-layer noise bounds the spread; the flat part keeps the sign
	// pattern coherent when the flat offset dominates. Just check the
	// spread is finite and d0 participates.
	if math.IsInf(minD, 0) || math.IsInf(maxD, 0) || d0 < minD || d0 > maxD {
		t.Fatalf("chip layer offset differences inconsistent: d0=%v range=[%v, %v]", d0, minD, maxD)
	}
}

func TestBlockLayerOffsetDeterministicAndGrouped(t *testing.T) {
	m := testModel()
	p := m.Params()
	c := Coord{Chip: 2, Plane: 0, Block: 7}
	// Same layer group → same offset.
	a := m.blockLayerOffset(Coord{Chip: 2, Plane: 0, Block: 7, Layer: 0})
	b := m.blockLayerOffset(Coord{Chip: 2, Plane: 0, Block: 7, Layer: p.LayerGroupSize - 1})
	if a != b {
		t.Fatalf("offsets within one layer group differ: %v vs %v", a, b)
	}
	// Different groups should (almost surely) differ.
	c.Layer = p.LayerGroupSize
	if m.blockLayerOffset(c) == a {
		t.Fatal("offsets across layer groups should differ")
	}
}

func TestBlockLayerOffsetDisabled(t *testing.T) {
	p := DefaultParams()
	p.BlockLayerSigma = 0
	p.LayerClassSigma = 0
	m := New(p)
	if got := m.blockLayerOffset(Coord{Block: 3, Layer: 10}); got != 0 {
		t.Fatalf("disabled block-layer offset = %v, want 0", got)
	}
}

func TestEnduranceDisabled(t *testing.T) {
	p := DefaultParams()
	p.EnduranceBase = 0
	m := New(p)
	if e := m.Endurance(0, 0, 0); e < math.MaxInt32 {
		t.Fatalf("disabled endurance = %d, want effectively infinite", e)
	}
}

func TestErsSpikeZeroSigma(t *testing.T) {
	p := DefaultParams()
	p.BlockSharedSig = 0
	p.BlockLocalSig = 0
	m := New(p)
	if s := m.ErsSpike(0, 0, 0); s != 0 {
		t.Fatalf("spike with zero block sigma = %v", s)
	}
}

func TestErsSpikeClampedAtMax(t *testing.T) {
	m := testModel()
	p := m.Params()
	found := false
	for b := 0; b < 20000 && !found; b++ {
		if s := m.ErsSpike(0, 0, b); s > 0 {
			if s > p.ErsSpikeMax {
				t.Fatalf("spike %v exceeds max %v", s, p.ErsSpikeMax)
			}
			found = true
		}
	}
	if !found {
		t.Skip("no spikes in sample")
	}
}

func TestTemperatureShiftsLatency(t *testing.T) {
	cold := DefaultParams()
	cold.Temperature = 0
	hot := DefaultParams()
	hot.Temperature = 70
	mc, mh := New(cold), New(hot)
	c := Coord{Block: 5, Layer: 20, String: 1}
	pc, ph := mc.ProgramLatency(c, 0, 1), mh.ProgramLatency(c, 0, 1)
	if ph >= pc {
		t.Fatalf("hot program (%v) should be faster than cold (%v)", ph, pc)
	}
	ec, eh := mc.EraseLatency(0, 0, 5, 0, 1), mh.EraseLatency(0, 0, 5, 0, 1)
	if eh <= ec {
		t.Fatalf("hot erase (%v) should be slower than cold (%v)", eh, ec)
	}
}

func TestTemperatureSensitivityVariesPerChip(t *testing.T) {
	p := DefaultParams()
	p.Temperature = 80
	m := New(p)
	a := m.tempShift(0, p.PgmTempCoeff)
	diff := false
	for chip := 1; chip < 8; chip++ {
		if m.tempShift(chip, p.PgmTempCoeff) != a {
			diff = true
		}
	}
	if !diff {
		t.Fatal("chips should differ in temperature sensitivity")
	}
}

func TestTemperatureAtReferenceIsNeutral(t *testing.T) {
	m := testModel() // Temperature == TempRef
	if m.tempShift(3, m.Params().PgmTempCoeff) != 0 {
		t.Fatal("reference temperature should not shift latency")
	}
}
