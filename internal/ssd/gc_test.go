package ssd

import (
	"reflect"
	"testing"
)

// writeChurnTrace stamps n overwrites at a fixed cadence starting after the
// current clock; the multiplicative hash spreads them across the LPN space.
func writeChurnTrace(capacity int64, base float64, n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{
			Kind:    OpWrite,
			LPN:     (int64(i) * 2654435761) % capacity,
			Data:    []byte{byte(i), byte(i >> 8)},
			Arrival: base + float64(i)*3,
		}
	}
	return reqs
}

func TestSerialCompletionSplitsGCTime(t *testing.T) {
	// Blocking mode: a write that trips the hard watermark carries the whole
	// collection in its Service, and GCTime must expose exactly that share.
	d := testDevice(t)
	if err := d.FillSequential(nil); err != nil {
		t.Fatal(err)
	}
	capacity := d.FTL().Capacity()
	var gcSum float64
	sawGC := false
	for i := 0; i < int(capacity)*2; i++ {
		c, err := d.Submit(Request{
			Kind: OpWrite,
			LPN:  (int64(i) * 2654435761) % capacity,
			Data: []byte{byte(i)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if c.GCTime < 0 || c.GCTime > c.Service+1e-9 {
			t.Fatalf("GCTime %v outside [0, Service=%v]", c.GCTime, c.Service)
		}
		if c.GCTime > 0 {
			sawGC = true
		}
		gcSum += c.GCTime
	}
	if !sawGC {
		t.Fatal("churn never blocked a write on GC")
	}
	// Stats.GCLatency counts every collection (including the ones absorbed by
	// buffer assembly); the host-visible completions can only carry a subset.
	if st := d.FTL().Stats(); gcSum > st.GCLatency+1e-6 {
		t.Fatalf("completions report %v µs of GC, FTL accumulated only %v", gcSum, st.GCLatency)
	}
}

func TestSerialPreemptiveGCUsesIdleWindows(t *testing.T) {
	// With idle time between stamped requests, preemptive GC must do all its
	// work in the gaps: steps counted, no blocking stalls, no completion ever
	// charged GCTime, and the tail stays below the blocking run's.
	run := func(stepPages int) (maxLat float64, dev *Device) {
		g := testDeviceCfg(t, func(cfg *Config) { cfg.FTL.GCStepPages = stepPages })
		if err := g.FillSequential(nil); err != nil {
			t.Fatal(err)
		}
		capacity := g.FTL().Capacity()
		for i := 0; i < int(capacity)*2; i++ {
			c, err := g.Submit(Request{
				Kind:    OpWrite,
				LPN:     (int64(i) * 2654435761) % capacity,
				Data:    []byte{byte(i)},
				Arrival: g.Now() + 400, // generous idle window per request
			})
			if err != nil {
				t.Fatal(err)
			}
			if stepPages > 0 && c.GCTime != 0 {
				t.Fatalf("preemptive mode charged GCTime %v to a host write", c.GCTime)
			}
			if c.Latency > maxLat {
				maxLat = c.Latency
			}
		}
		return maxLat, g
	}
	blockMax, _ := run(0)
	stepMax, sd := run(8)
	st := sd.FTL().Stats()
	if st.GCSteps == 0 {
		t.Fatal("preemptive run took no GC steps")
	}
	if st.GCStalls != 0 {
		t.Fatalf("idle windows were available yet %d blocking stalls happened", st.GCStalls)
	}
	if stepMax >= blockMax {
		t.Fatalf("preemptive worst-case write latency %v µs did not beat blocking %v µs", stepMax, blockMax)
	}
	if err := sd.FTL().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentPreemptiveDepthIndependence(t *testing.T) {
	// GC steps are scheduled by the serialized FTL stage in ticket order, so a
	// GC-heavy preemptive run must stay bit-identical across worker counts.
	run := func(depth int) ([]Completion, Stats) {
		d := concurrentDeviceCfg(t, func(cfg *Config) {
			cfg.RetainLatencies = true
			cfg.FTL.GCStepPages = 4
		})
		if err := d.FillSequential(nil); err != nil {
			t.Fatal(err)
		}
		reqs := writeChurnTrace(d.FTL().Capacity(), d.Now()+1000, int(d.FTL().Capacity())*2)
		comps := replayTickets(t, d, reqs, depth)
		if st := d.FTL().Stats(); st.GCSteps == 0 {
			t.Fatal("churn trace exercised no preemptive GC steps")
		}
		return comps, d.Stats()
	}
	c1, s1 := run(1)
	c8, s8 := run(8)
	if !reflect.DeepEqual(c1, c8) {
		t.Fatal("preemptive-GC completions differ between depth 1 and depth 8")
	}
	if !reflect.DeepEqual(s1, s8) {
		t.Fatalf("preemptive-GC stats differ between depth 1 and depth 8:\n%+v\n%+v", s1, s8)
	}
}

func TestConcurrentCompletionGCTime(t *testing.T) {
	// Blocking mode through the multi-queue front end: GC latency must land in
	// Completion.GCTime, not silently inside Service.
	d := concurrentDevice(t)
	if err := d.FillSequential(nil); err != nil {
		t.Fatal(err)
	}
	capacity := d.FTL().Capacity()
	sawGC := false
	for i := 0; i < int(capacity)*2; i++ {
		c, err := d.Submit(Request{
			Kind: OpWrite,
			LPN:  (int64(i) * 2654435761) % capacity,
			Data: []byte{byte(i)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if c.GCTime < 0 || c.GCTime > c.Service+1e-9 {
			t.Fatalf("GCTime %v outside [0, Service=%v]", c.GCTime, c.Service)
		}
		if c.GCTime > 0 {
			sawGC = true
		}
	}
	if !sawGC {
		t.Fatal("churn never blocked a write on GC")
	}
}
