package core

import (
	"testing"

	"superfast/internal/flash"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := testScheme(t)
	seedAll(t, s, 71)
	g := testGeo()
	// Retire one block for the flag path.
	retiredAddr := flash.BlockAddr{Chip: 1, Plane: 1, Block: 2}
	if err := s.Retire(retiredAddr); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if len(snap) != SnapshotSizeBytes(g) {
		t.Fatalf("snapshot %d bytes, want %d", len(snap), SnapshotSizeBytes(g))
	}

	fresh, err := NewScheme(g, s.K())
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	// Metadata must match bit for bit: same known flags, sums, eigens.
	for lane := 0; lane < g.Lanes(); lane++ {
		chip, plane := g.LaneChipPlane(lane)
		for b := 0; b < g.BlocksPerPlane; b++ {
			addr := flash.BlockAddr{Chip: chip, Plane: plane, Block: b}
			want := s.info(addr)
			got := fresh.info(addr)
			if want.known != got.known || want.retired != got.retired {
				t.Fatalf("%v: flags differ", addr)
			}
			if !want.known {
				continue
			}
			if float32(want.pgmSum) != float32(got.pgmSum) {
				t.Fatalf("%v: sum %v vs %v", addr, want.pgmSum, got.pgmSum)
			}
			if want.eigen.Distance(got.eigen) != 0 {
				t.Fatalf("%v: eigen differs", addr)
			}
		}
	}
	// And the restored scheme makes the same assembly decisions.
	for lane := 0; lane < g.Lanes(); lane++ {
		chip, plane := g.LaneChipPlane(lane)
		for b := 0; b < g.BlocksPerPlane; b++ {
			addr := flash.BlockAddr{Chip: chip, Plane: plane, Block: b}
			if fresh.Retired(addr) {
				continue
			}
			if err := fresh.AddFree(addr); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Original scheme: rebuild its pools from scratch for a fair comparison.
	orig, err := NewScheme(g, s.K())
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < g.Lanes(); lane++ {
		chip, plane := g.LaneChipPlane(lane)
		for b := 0; b < g.BlocksPerPlane; b++ {
			addr := flash.BlockAddr{Chip: chip, Plane: plane, Block: b}
			if orig.Retired(addr) {
				continue
			}
			if err := orig.AddFree(addr); err != nil {
				t.Fatal(err)
			}
		}
	}
	for orig.FreeCount() > 0 && fresh.FreeCount() > 0 {
		a, err := orig.Assemble(Fast)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.Assemble(Fast)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("assembly diverged: %v vs %v", a, b)
			}
		}
	}
}

func TestRestoreSnapshotValidation(t *testing.T) {
	s := testScheme(t)
	if err := s.RestoreSnapshot(nil); err == nil {
		t.Fatal("nil snapshot should fail")
	}
	if err := s.RestoreSnapshot(make([]byte, 16)); err == nil {
		t.Fatal("bad magic should fail")
	}
	snap := s.Snapshot()
	if err := s.RestoreSnapshot(snap[:len(snap)-1]); err == nil {
		t.Fatal("truncated snapshot should fail")
	}
	// Geometry mismatch.
	g := testGeo()
	g.BlocksPerPlane++
	other, err := NewScheme(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.RestoreSnapshot(snap); err == nil {
		t.Fatal("geometry mismatch should fail")
	}
}

func TestSnapshotSizeTracksEquation2(t *testing.T) {
	// The snapshot is the Equation 2 footprint plus header and bitmaps.
	g := flash.PaperGeometry()
	eq2 := MemoryFootprintBytes(g)
	snap := SnapshotSizeBytes(g)
	overhead := snap - eq2
	// Overhead: 16-byte header + 2 bitmap bits per block.
	wantOverhead := 16 + g.Lanes()*2*((g.BlocksPerPlane+7)/8)
	if overhead != wantOverhead {
		t.Fatalf("overhead = %d, want %d", overhead, wantOverhead)
	}
}
