package pv

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestKernelMatchesModelBitForBit is the equivalence property the whole
// latency kernel rests on: for random coordinates, P/E counts, nonces and
// operating temperatures, the cached path must reproduce the direct model
// bit-for-bit — including the quantize and floor steps, which round away
// nothing only if every intermediate float is identical.
func TestKernelMatchesModelBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	temps := []float64{25, 25, -10, 70, 33.5} // 25 = TempRef: the dt==0 branch
	for ti, temp := range temps {
		p := DefaultParams()
		p.Seed = 0xfeed_0000 + uint64(ti)
		p.Layers = 16
		p.Strings = 4
		p.Temperature = temp
		m := New(p)
		const chips, planes, blocks = 5, 2, 12
		k := m.Kernel(chips, planes, blocks)
		for i := 0; i < 2000; i++ {
			c := Coord{
				Chip:   rng.Intn(chips),
				Plane:  rng.Intn(planes),
				Block:  rng.Intn(blocks),
				Layer:  rng.Intn(p.Layers),
				String: rng.Intn(p.Strings),
			}
			pe := rng.Intn(12000)
			nonce := rng.Uint64()
			if got, want := k.ProgramLatency(c, pe, nonce), m.ProgramLatency(c, pe, nonce); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("temp %v: ProgramLatency(%+v, pe=%d, nonce=%#x) = %v (bits %#x), direct %v (bits %#x)",
					temp, c, pe, nonce, got, math.Float64bits(got), want, math.Float64bits(want))
			}
			if got, want := k.EraseLatency(c.Chip, c.Plane, c.Block, pe, nonce), m.EraseLatency(c.Chip, c.Plane, c.Block, pe, nonce); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("temp %v: EraseLatency(%d,%d,%d, pe=%d, nonce=%#x) = %v, direct %v",
					temp, c.Chip, c.Plane, c.Block, pe, nonce, got, want)
			}
			pt := PageType(rng.Intn(int(NumPageTypes)))
			if got, want := k.ReadLatency(c, pt, nonce), m.ReadLatency(c, pt, nonce); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("temp %v: ReadLatency(%+v, %v, nonce=%#x) = %v, direct %v", temp, c, pt, nonce, got, want)
			}
			if got, want := k.Endurance(c.Chip, c.Plane, c.Block), m.Endurance(c.Chip, c.Plane, c.Block); got != want {
				t.Fatalf("temp %v: Endurance(%d,%d,%d) = %d, direct %d", temp, c.Chip, c.Plane, c.Block, got, want)
			}
			ret := rng.Float64() * 3
			if got, want := k.RBER(c, pe, ret), m.RBER(c, pe, ret); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("temp %v: RBER(%+v, pe=%d, ret=%v) = %v, direct %v", temp, c, pe, ret, got, want)
			}
		}
	}
}

// TestKernelZeroSigmaBranches pins the guard branches (jitter sigmas at zero,
// quantization off, endurance disabled) that the dynamic path must skip
// exactly as the direct methods do.
func TestKernelZeroSigmaBranches(t *testing.T) {
	p := DefaultParams()
	p.Layers = 8
	p.Strings = 2
	p.PgmJitterSigma = 0
	p.PgmWearNoise = 0
	p.ErsJitterSigma = 0
	p.ReadJitter = 0
	p.PgmStep = 0
	p.ErsStep = 0
	p.EnduranceBase = 0
	m := New(p)
	k := m.Kernel(2, 1, 4)
	c := Coord{Chip: 1, Plane: 0, Block: 3, Layer: 5, String: 1}
	for _, pe := range []int{0, 777} {
		if got, want := k.ProgramLatency(c, pe, 9), m.ProgramLatency(c, pe, 9); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("ProgramLatency pe=%d: kernel %v, direct %v", pe, got, want)
		}
		if got, want := k.EraseLatency(1, 0, 3, pe, 9), m.EraseLatency(1, 0, 3, pe, 9); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("EraseLatency pe=%d: kernel %v, direct %v", pe, got, want)
		}
	}
	if got, want := k.ReadLatency(c, MSB, 9), m.ReadLatency(c, MSB, 9); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("ReadLatency: kernel %v, direct %v", got, want)
	}
	if got, want := k.Endurance(1, 0, 3), m.Endurance(1, 0, 3); got != want {
		t.Fatalf("Endurance: kernel %d, direct %d", got, want)
	}
}

// TestKernelOutOfRangeFallsBack checks that coordinates beyond the kernel's
// geometry are answered by the direct model rather than a panic, so a kernel
// is always a safe drop-in for the model it wraps.
func TestKernelOutOfRangeFallsBack(t *testing.T) {
	p := DefaultParams()
	p.Layers = 4
	p.Strings = 2
	m := New(p)
	k := m.Kernel(2, 1, 4)
	c := Coord{Chip: 7, Plane: 3, Block: 99, Layer: 3, String: 1}
	if got, want := k.ProgramLatency(c, 10, 1), m.ProgramLatency(c, 10, 1); got != want {
		t.Fatalf("out-of-range ProgramLatency: kernel %v, direct %v", got, want)
	}
	if got, want := k.EraseLatency(7, 3, 99, 10, 1), m.EraseLatency(7, 3, 99, 10, 1); got != want {
		t.Fatalf("out-of-range EraseLatency: kernel %v, direct %v", got, want)
	}
	if got, want := k.ReadLatency(c, LSB, 1), m.ReadLatency(c, LSB, 1); got != want {
		t.Fatalf("out-of-range ReadLatency: kernel %v, direct %v", got, want)
	}
}

// TestKernelMemoized checks that one model hands out one kernel per geometry.
func TestKernelMemoized(t *testing.T) {
	p := DefaultParams()
	p.Layers = 4
	p.Strings = 2
	m := New(p)
	a := m.Kernel(2, 1, 4)
	if b := m.Kernel(2, 1, 4); a != b {
		t.Fatal("same dimensions returned a different kernel")
	}
	if b := m.Kernel(2, 2, 4); a == b {
		t.Fatal("different dimensions returned the same kernel")
	}
}

// TestKernelConcurrentFill hammers one kernel from many goroutines (the
// ConcurrentDevice access pattern) and checks every answer against the
// direct model; `go test -race` makes this a data-race probe of the
// CAS-published tables too.
func TestKernelConcurrentFill(t *testing.T) {
	p := DefaultParams()
	p.Layers = 8
	p.Strings = 4
	m := New(p)
	const chips, planes, blocks = 4, 2, 8
	k := m.Kernel(chips, planes, blocks)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				c := Coord{
					Chip:   rng.Intn(chips),
					Plane:  rng.Intn(planes),
					Block:  rng.Intn(blocks),
					Layer:  rng.Intn(p.Layers),
					String: rng.Intn(p.Strings),
				}
				pe, nonce := rng.Intn(5000), rng.Uint64()
				if got, want := k.ProgramLatency(c, pe, nonce), m.ProgramLatency(c, pe, nonce); math.Float64bits(got) != math.Float64bits(want) {
					select {
					case errs <- "concurrent ProgramLatency diverged from direct model":
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}
