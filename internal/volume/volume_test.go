package volume

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"superfast/internal/flash"
	"superfast/internal/ftl"
	"superfast/internal/prng"
	"superfast/internal/pv"
	"superfast/internal/server"
	"superfast/internal/server/client"
	"superfast/internal/ssd"
)

// testBackend is one in-process block service on a loopback listener.
type testBackend struct {
	srv  *server.Server
	addr string
	stop func()
}

// startBackend spins one block service over a small test device.
func startBackend(t testing.TB, cfg server.Config) *testBackend {
	t.Helper()
	g := flash.TestGeometry()
	g.BlocksPerPlane = 12
	g.Layers = 12
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr := flash.MustNewArray(g, pv.New(p), flash.DefaultECC())
	dcfg := ssd.DefaultConfig()
	dcfg.FTL.Overprovision = 0.25
	dev, err := ssd.NewConcurrent(arr, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Ledger != nil {
		// Trace tests wire one ledger through serving layer and device both,
		// like cmd/ftlserve does.
		dev.SetLedger(cfg.Ledger)
	}
	srv := server.New(dev, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			if err := <-done; err != nil {
				t.Errorf("backend serve: %v", err)
			}
			dev.Close()
		})
	}
	t.Cleanup(stop)
	return &testBackend{srv: srv, addr: ln.Addr().String(), stop: stop}
}

// startCluster spins n backends and a volume over them.
func startCluster(t testing.TB, n int, scfg server.Config, vcfg Config) (*Volume, []*testBackend) {
	t.Helper()
	bks := make([]*testBackend, n)
	addrs := make([]string, n)
	for i := range bks {
		bks[i] = startBackend(t, scfg)
		addrs[i] = bks[i].addr
	}
	v, err := Dial(addrs, vcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(v.Close)
	return v, bks
}

func pageData(lpn int64, gen int) []byte {
	return []byte(fmt.Sprintf("vol-page-%d-gen-%d", lpn, gen))
}

func TestVolumeStripingScatterGather(t *testing.T) {
	v, _ := startCluster(t, 3, server.Config{}, Config{Stripe: 4})
	if v.Space() < 24 {
		t.Fatalf("space %d too small for the test", v.Space())
	}
	// Write a run crossing several stripe boundaries, then gather it back.
	span := int64(24)
	for lpn := int64(0); lpn < span; lpn++ {
		r, err := v.Write(lpn, pageData(lpn, 0), ftl.HintNone)
		if err != nil {
			t.Fatalf("write %d: %v", lpn, err)
		}
		if r.Status != server.StatusOK {
			t.Fatalf("write %d: %v", lpn, r.Status)
		}
	}
	for lpn := int64(0); lpn < span; lpn++ {
		r, err := v.Read(lpn)
		if err != nil {
			t.Fatalf("read %d: %v", lpn, err)
		}
		if r.Status != server.StatusOK {
			t.Fatalf("read %d: %v", lpn, r.Status)
		}
		if !strings.HasPrefix(string(r.Payload), string(pageData(lpn, 0))) {
			t.Fatalf("read %d: got %q", lpn, r.Payload[:24])
		}
	}
	// Each backend must have taken a share: 24 pages over 3 backends at
	// stripe 4 is exactly 2 units each.
	snap := v.ClusterStat()
	for _, b := range snap.Backends {
		if b.Snap.Device.Writes != 8 {
			t.Fatalf("backend %d saw %d writes, want 8", b.Backend, b.Snap.Device.Writes)
		}
	}
	if snap.Device.Writes != 24 || snap.Device.Reads != 24 {
		t.Fatalf("cluster device counters %+v", snap.Device)
	}
	if snap.Volume.Writes != 24 || snap.Volume.Reads != 24 {
		t.Fatalf("volume counters %+v", snap.Volume)
	}
	if snap.ReadLat.N != 24 || snap.WriteLat.N != 24 {
		t.Fatalf("latency digests N=%d/%d, want 24/24", snap.ReadLat.N, snap.WriteLat.N)
	}
	if snap.ReadLat.P50 <= 0 || snap.WriteLat.P50 <= 0 {
		t.Fatalf("latency quantiles %+v / %+v", snap.ReadLat, snap.WriteLat)
	}

	// Trim one page; it must vanish on the shard too.
	if r, err := v.Trim(5); err != nil || r.Status != server.StatusOK {
		t.Fatalf("trim: %v %v", err, r.Status)
	}
	if r, err := v.Read(5); err != nil || r.Status != server.StatusBadRequest {
		t.Fatalf("read after trim: %v %v", err, r.Status)
	}
	if err := v.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

func TestVolumePipelinedStarts(t *testing.T) {
	v, _ := startCluster(t, 3, server.Config{}, Config{Stripe: 2})
	const n = 96
	calls := make([]*Call, 0, n)
	for i := 0; i < n; i++ {
		lpn := int64(i) % v.Space()
		ca, err := v.StartWrite(lpn, pageData(lpn, 1), ftl.HintNone, 0, 0, TraceRef{})
		if err != nil {
			t.Fatalf("start %d: %v", i, err)
		}
		calls = append(calls, ca)
	}
	for i, ca := range calls {
		r, err := ca.Wait()
		if err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		if r.Status != server.StatusOK {
			t.Fatalf("call %d: %v", i, r.Status)
		}
	}
}

func TestVolumeReplicationAndReadRepair(t *testing.T) {
	v, _ := startCluster(t, 3, server.Config{}, Config{Stripe: 2, Replicas: 2, VerifyReads: true})
	const lpn = int64(3)
	if r, err := v.Write(lpn, pageData(lpn, 0), ftl.HintNone); err != nil || r.Status != server.StatusOK {
		t.Fatalf("write: %v %v", err, r.Status)
	}

	// Every replica holds the page: check via direct backend connections.
	v.mu.Lock()
	locs, err := v.place.Locate(lpn, nil)
	addrs := make([]string, len(locs))
	for i, l := range locs {
		addrs[i] = v.bks[l.Backend].addr
	}
	v.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 2 {
		t.Fatalf("%d replicas placed, want 2", len(locs))
	}
	for i, l := range locs {
		c, err := client.Dial(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.Read(l.SLPN)
		if err != nil {
			t.Fatalf("replica %d read: %v", i, err)
		}
		if !strings.HasPrefix(string(r.Payload), string(pageData(lpn, 0))) {
			t.Fatalf("replica %d holds %q", i, r.Payload[:16])
		}
		c.Close()
	}

	// Corrupt the secondary copy behind the volume's back.
	cor, err := client.Dial(addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cor.Write(locs[1].SLPN, []byte("corrupted-replica"), ftl.HintNone); err != nil {
		t.Fatal(err)
	}

	// A verified read serves the primary and repairs the divergence.
	r, err := v.Read(lpn)
	if err != nil {
		t.Fatalf("verified read: %v", err)
	}
	if !strings.HasPrefix(string(r.Payload), string(pageData(lpn, 0))) {
		t.Fatalf("verified read served %q", r.Payload[:16])
	}
	v.cmu.Lock()
	repairs := v.counters.Repairs
	v.cmu.Unlock()
	if repairs == 0 {
		t.Fatal("divergent replica did not count a repair")
	}
	rr, err := cor.Read(locs[1].SLPN)
	if err != nil {
		t.Fatalf("post-repair read: %v", err)
	}
	if !strings.HasPrefix(string(rr.Payload), string(pageData(lpn, 0))) {
		t.Fatalf("replica not repaired: %q", rr.Payload[:16])
	}
	cor.Close()

	// A clean verified read repairs nothing further.
	if _, err := v.Read(lpn); err != nil {
		t.Fatal(err)
	}
	v.cmu.Lock()
	again := v.counters.Repairs
	v.cmu.Unlock()
	if again != repairs {
		t.Fatalf("clean read repaired: %d → %d", repairs, again)
	}
}

func TestVolumeReadRetryOnDeadReplica(t *testing.T) {
	v, bks := startCluster(t, 3, server.Config{}, Config{Stripe: 2, Replicas: 2})
	const lpn = int64(0)
	if r, err := v.Write(lpn, pageData(lpn, 0), ftl.HintNone); err != nil || r.Status != server.StatusOK {
		t.Fatalf("write: %v %v", err, r.Status)
	}
	v.mu.Lock()
	locs, _ := v.place.Locate(lpn, nil)
	v.mu.Unlock()

	// Kill the primary's backend; the read must fail over to the replica.
	bks[locs[0].Backend].stop()
	r, err := v.Read(lpn)
	if err != nil {
		t.Fatalf("read after primary death: %v", err)
	}
	if r.Status != server.StatusOK || !strings.HasPrefix(string(r.Payload), string(pageData(lpn, 0))) {
		t.Fatalf("failover read: %v %q", r.Status, r.Payload[:12])
	}
	v.cmu.Lock()
	retries := v.counters.Retries
	v.cmu.Unlock()
	if retries == 0 {
		t.Fatal("failover did not count a retry")
	}

	// A second read hits the dead connection at Start time and must still
	// fail over.
	if r, err := v.Read(lpn); err != nil || r.Status != server.StatusOK {
		t.Fatalf("second failover read: %v %v", err, r.Status)
	}

	// Writes are not retried: the dead replica fails the op.
	if _, err := v.Write(lpn, pageData(lpn, 1), ftl.HintNone); err == nil {
		t.Fatal("write with a dead replica should fail")
	}
}

func TestVolumeRebalanceUnderTraffic(t *testing.T) {
	v, bks := startCluster(t, 3, server.Config{}, Config{Stripe: 2})
	span := v.Space()
	if span > 96 {
		span = 96
	}
	for lpn := int64(0); lpn < span; lpn++ {
		if r, err := v.Write(lpn, pageData(lpn, 0), ftl.HintNone); err != nil || r.Status != server.StatusOK {
			t.Fatalf("seed write %d: %v %v", lpn, err, r.Status)
		}
	}
	// Leave one page unmapped so migration exercises the trim path, and over
	// a freed slot later.
	if _, err := v.Trim(span - 1); err != nil {
		t.Fatal(err)
	}

	// Background traffic: continuous reads plus generation-bumping writes on
	// a fixed region, while rebalances run.
	var (
		stop    = make(chan struct{})
		wg      sync.WaitGroup
		genMu   sync.Mutex
		lastGen = map[int64]int{}
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		src := prng.New(7, 0x70a)
		for gen := 1; ; gen++ {
			select {
			case <-stop:
				return
			default:
			}
			lpn := int64(src.Intn(int(span - 1)))
			if r, err := v.Write(lpn, pageData(lpn, gen), ftl.HintNone); err != nil || r.Status != server.StatusOK {
				t.Errorf("traffic write %d: %v %v", lpn, err, r.Status)
				return
			}
			genMu.Lock()
			lastGen[lpn] = gen
			genMu.Unlock()
		}
	}()
	go func() {
		defer wg.Done()
		src := prng.New(11, 0x70b)
		for {
			select {
			case <-stop:
				return
			default:
			}
			lpn := int64(src.Intn(int(span - 1)))
			r, err := v.Read(lpn)
			if err != nil || r.Status != server.StatusOK {
				t.Errorf("traffic read %d: %v %v", lpn, err, r.Status)
				return
			}
		}
	}()

	// Grow to 4 backends, then drain backend 0 — both while traffic flows.
	nb4 := startBackend(t, server.Config{})
	nb, err := v.AddBackend(nb4.addr)
	if err != nil {
		t.Fatalf("add backend: %v", err)
	}
	if err := v.RemoveBackend(0); err != nil {
		t.Fatalf("remove backend: %v", err)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// The new backend carries load; the removed one carries none.
	snap := v.ClusterStat()
	var nbStat, oldStat *BackendStat
	for i := range snap.Backends {
		switch snap.Backends[i].Backend {
		case nb:
			nbStat = &snap.Backends[i]
		case 0:
			oldStat = &snap.Backends[i]
		}
	}
	if nbStat == nil || !nbStat.Active || nbStat.Slots == 0 {
		t.Fatalf("new backend stat %+v", nbStat)
	}
	if oldStat == nil || oldStat.Active || oldStat.Slots != 0 {
		t.Fatalf("removed backend stat %+v", oldStat)
	}
	if snap.Volume.UnitMoves == 0 {
		t.Fatal("no unit moves recorded")
	}

	// Every page reads back at its last completed generation.
	genMu.Lock()
	defer genMu.Unlock()
	for lpn := int64(0); lpn < span-1; lpn++ {
		r, err := v.Read(lpn)
		if err != nil || r.Status != server.StatusOK {
			t.Fatalf("verify read %d: %v %v", lpn, err, r.Status)
		}
		want := pageData(lpn, lastGen[lpn])
		if !strings.HasPrefix(string(r.Payload), string(want)) {
			t.Fatalf("lpn %d: got %q, want prefix %q", lpn, r.Payload[:24], want)
		}
	}
	// The trimmed page stayed unmapped through two migrations.
	if r, err := v.Read(span - 1); err != nil || r.Status != server.StatusBadRequest {
		t.Fatalf("trimmed page after rebalance: %v %v", err, r.Status)
	}
	_ = bks
}

func TestVolumeConfigErrors(t *testing.T) {
	if _, err := Dial(nil, Config{}); err == nil {
		t.Fatal("no backends must fail")
	}
	if _, err := Dial([]string{"127.0.0.1:1"}, Config{}); err == nil {
		t.Fatal("dead backend must fail")
	}
	if _, err := Dial([]string{"127.0.0.1:1"}, Config{VerifyReads: true}); err == nil {
		t.Fatal("VerifyReads with 1 replica must fail")
	}
	if _, err := Dial([]string{"127.0.0.1:1"}, Config{Replicas: 2, Sequenced: true, VerifyReads: true}); err == nil {
		t.Fatal("VerifyReads with Sequenced must fail")
	}

	v, _ := startCluster(t, 2, server.Config{Sequenced: true}, Config{Stripe: 2, Sequenced: true})
	if _, err := v.AddBackend("127.0.0.1:1"); err == nil {
		t.Fatal("rebalance in sequenced mode must fail")
	}
	if err := v.RemoveBackend(0); err == nil {
		t.Fatal("remove in sequenced mode must fail")
	}
}

func TestVolumeOutOfRange(t *testing.T) {
	v, _ := startCluster(t, 2, server.Config{}, Config{Stripe: 2})
	if _, err := v.Read(v.Space()); err == nil {
		t.Fatal("read past the space must fail")
	}
	if _, err := v.Write(-1, []byte("x"), ftl.HintNone); err == nil {
		t.Fatal("negative lpn must fail")
	}
}

func TestVolumeClosed(t *testing.T) {
	v, _ := startCluster(t, 2, server.Config{}, Config{Stripe: 2})
	v.Close()
	if _, err := v.Read(0); err == nil {
		t.Fatal("read on a closed volume must fail")
	}
}

// TestVolumeSequencedTicketFlow: sequenced ops out of global order are
// reordered by the cursor; skipped tickets advance it.
func TestVolumeSequencedTicketFlow(t *testing.T) {
	v, _ := startCluster(t, 2, server.Config{Sequenced: true}, Config{Stripe: 2, Sequenced: true})

	// Submit tickets 1 and 2 from goroutines first; they must block until
	// ticket 0 lands.
	type res struct {
		r   server.Response
		err error
	}
	results := make([]chan res, 3)
	for i := range results {
		results[i] = make(chan res, 1)
	}
	var started sync.WaitGroup
	for _, seq := range []uint64{1, 2} {
		started.Add(1)
		go func(seq uint64) {
			started.Done()
			ca, err := v.StartWrite(int64(seq), pageData(int64(seq), 0), ftl.HintNone, seq, 0, TraceRef{})
			if err != nil {
				results[seq] <- res{err: err}
				return
			}
			r, err := ca.Wait()
			results[seq] <- res{r: r, err: err}
		}(seq)
	}
	started.Wait()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-results[1]:
		t.Fatal("ticket 1 resolved before ticket 0 was submitted")
	case <-results[2]:
		t.Fatal("ticket 2 resolved before ticket 0 was submitted")
	default:
	}
	ca, err := v.StartWrite(0, pageData(0, 0), ftl.HintNone, 0, 0, TraceRef{})
	if err != nil {
		t.Fatal(err)
	}
	if r, err := ca.Wait(); err != nil || r.Status != server.StatusOK {
		t.Fatalf("ticket 0: %v %v", err, r.Status)
	}
	for seq := 1; seq <= 2; seq++ {
		select {
		case got := <-results[seq]:
			if got.err != nil || got.r.Status != server.StatusOK {
				t.Fatalf("ticket %d: %v %v", seq, got.err, got.r.Status)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("ticket %d hung", seq)
		}
	}

	// A skipped ticket unblocks the one behind it.
	done := make(chan res, 1)
	go func() {
		ca, err := v.StartRead(0, 4, 0, TraceRef{})
		if err != nil {
			done <- res{err: err}
			return
		}
		r, err := ca.Wait()
		done <- res{r: r, err: err}
	}()
	v.SkipSeq(3)
	select {
	case got := <-done:
		if got.err != nil || got.r.Status != server.StatusOK {
			t.Fatalf("post-skip read: %v %v", got.err, got.r.Status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ticket behind a skipped one hung")
	}
}
