// Command ftlvol is the sharded volume frontend: it stripes one logical LPN
// space across N ftlserve backends and serves the same wire protocol back,
// so any block-service client (ftlload included) talks to the cluster as if
// it were one device.
//
// Usage:
//
//	ftlvol -backends 127.0.0.1:8970,127.0.0.1:8971,127.0.0.1:8972
//	ftlvol -backends ... -stripe 128 -replicas 2 -verify
//	ftlvol -backends ... -seq                # deterministic sharded replay
//	ftlvol -backends ... -http :9191         # /metrics, /cluster, /rebalance
//
// Placement stripes the space in -stripe page units round-robin, so
// sequential I/O fans across all backends; -replicas K keeps K copies of
// every unit on distinct backends (writes fan out, reads fail over, -verify
// adds read-repair). -seq puts the volume in sequenced replay mode: clients
// stamp dense global tickets (ftlload -seq), the volume forwards dense
// per-backend tickets, and the backends must run -seq too — the sharded
// replay is then bit-identical to a single-device run. -http serves the
// merged cluster telemetry and the live rebalance endpoints
// (POST /rebalance/add?addr=…, POST /rebalance/remove?backend=N).
// SIGINT/SIGTERM drain gracefully; the backends stay up.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"superfast/internal/telemetry"
	"superfast/internal/volume"
)

func main() {
	var (
		listen   = flag.String("listen", ":8980", "TCP listen address for the volume frontend")
		backends = flag.String("backends", "", "comma-separated backend addresses (required)")
		stripe   = flag.Int64("stripe", 64, "pages per stripe unit")
		replicas = flag.Int("replicas", 1, "copies of every stripe unit, on distinct backends")
		verify   = flag.Bool("verify", false, "read every replica and repair divergence (needs -replicas ≥ 2)")
		seq      = flag.Bool("seq", false, "sequenced replay mode (backends must run -seq too)")
		httpAddr = flag.String("http", "", "serve /metrics, /cluster, /rebalance on ADDR")
		perConn  = flag.Int("conn-inflight", 64, "per-connection in-flight cap")
		traceOut = flag.String("trace", "", "write this process's hop-ledger shard (JSONL) to FILE on drain")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on shutdown")
	)
	flag.Parse()
	addrs := strings.Split(*backends, ",")
	var clean []string
	for _, a := range addrs {
		if a = strings.TrimSpace(a); a != "" {
			clean = append(clean, a)
		}
	}
	if len(clean) == 0 {
		fatalf("-backends is required")
	}

	v, err := volume.Dial(clean, volume.Config{
		Stripe:      *stripe,
		Replicas:    *replicas,
		Sequenced:   *seq,
		VerifyReads: *verify,
	})
	if err != nil {
		fatalf("%v", err)
	}
	defer v.Close()
	var led *telemetry.Ledger
	if *traceOut != "" || *httpAddr != "" {
		led = telemetry.NewLedger("ftlvol")
		v.SetLedger(led)
	}
	p := volume.NewProxy(v, volume.ProxyConfig{MaxPerConn: *perConn})

	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatalf("-http: %v", err)
		}
		hsrv := &http.Server{Handler: volume.Routes(v, p, led)}
		go hsrv.Serve(hln)
		defer hsrv.Close()
		fmt.Fprintf(os.Stderr, "ftlvol: serving cluster telemetry on http://%s/\n", hln.Addr())
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatalf("listen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "ftlvol: volume on %s: %d pages × %d B over %d backends (stripe %d, replicas %d, sequenced=%v)\n",
		ln.Addr(), v.Space(), v.PageSize(), len(clean), *stripe, *replicas, *seq)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "ftlvol: draining...")
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if err := p.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "ftlvol: drain: %v\n", err)
		}
	}()
	if err := p.Serve(ln); err != nil {
		fatalf("serve: %v", err)
	}
	st := p.Stats()
	fmt.Fprintf(os.Stderr, "ftlvol: drained: %d conns served, %d accepted, %d responses, %d rejected\n",
		st.ConnsEver, st.Accepted, st.Responses, st.Rejected)
	if *traceOut != "" && led != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("trace shard: %v", err)
		}
		werr := led.WriteShard(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fatalf("trace shard %s: %v", *traceOut, werr)
		}
		fmt.Fprintf(os.Stderr, "ftlvol: wrote %d hop records to %s\n", led.Len(), *traceOut)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ftlvol: "+format+"\n", args...)
	os.Exit(1)
}
