package volume

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"superfast/internal/server"
	"superfast/internal/server/client"
	"superfast/internal/telemetry"
)

// startTracedCluster builds the full traced topology the CLIs assemble:
// three sequenced backends (ledger in serving layer + device), a sequenced
// volume with its own ledger, and a proxy front end. It returns the volume,
// the proxy address, and every process's ledger in merge order
// (load, vol, srv0..srv2) — the load ledger is created here so callers wire
// it into their clients.
func startTracedCluster(t *testing.T) (*Volume, string, []*telemetry.Ledger) {
	t.Helper()
	leds := []*telemetry.Ledger{telemetry.NewLedger("ftlload"), telemetry.NewLedger("ftlvol")}
	addrs := make([]string, 3)
	for i := range addrs {
		led := telemetry.NewLedger(fmt.Sprintf("srv%d", i))
		leds = append(leds, led)
		bk := startBackend(t, server.Config{Sequenced: true, Ledger: led})
		addrs[i] = bk.addr
	}
	v, err := Dial(addrs, Config{Stripe: 4, Sequenced: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(v.Close)
	v.SetLedger(leds[1])
	_, addr := startProxy(t, v)
	return v, addr, leds
}

// replayTraced replays ops against addr over conns pipelined connections,
// stamping dense sequenced tickets AND trace context (request i is trace
// i+1), with every client feeding the shared load ledger.
func replayTraced(t *testing.T, addr string, ops []traceOp, conns int, led *telemetry.Ledger) []server.Response {
	t.Helper()
	cs := make([]*client.Client, conns)
	for i := range cs {
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if ok, err := c.SupportsTrace(); err != nil || !ok {
			t.Fatalf("proxy does not advertise %s: %v %v", server.TraceCap, ok, err)
		}
		c.SetLedger(led)
		cs[i] = c
	}
	calls := make([]*client.Call, len(ops))
	for i, op := range ops {
		f := server.Frame{
			Op: op.op, LPN: op.lpn, Payload: op.payload,
			Flags: server.FlagSequenced | server.FlagTrace, Seq: uint64(i),
			Trace: uint64(i) + 1, ParentHop: telemetry.HopClient,
		}
		call, err := cs[i%conns].Start(f)
		if err != nil {
			t.Fatalf("start op %d: %v", i, err)
		}
		calls[i] = call
	}
	resps := make([]server.Response, len(ops))
	for i, call := range calls {
		r, err := call.Wait()
		if err != nil {
			t.Fatalf("wait op %d: %v", i, err)
		}
		resps[i] = r
	}
	return resps
}

// clusterTraceRun replays the canonical traced workload at the given client
// connection count and returns the deterministic Chrome export of the merged
// ledger, the merged records, and the responses.
func clusterTraceRun(t *testing.T, conns int) ([]byte, []telemetry.HopRecord, []server.Response) {
	t.Helper()
	v, addr, leds := startTracedCluster(t)
	span := v.Space()
	if span > 96 {
		span = 96
	}
	ops := buildTrace(300, span, 42)
	resps := replayTraced(t, addr, ops, conns, leds[0])
	shards := make([][]telemetry.HopRecord, len(leds))
	for i, l := range leds {
		shards[i] = l.Records()
	}
	merged := telemetry.MergeRecords(shards...)
	var buf bytes.Buffer
	if err := telemetry.WriteLedgerChrome(&buf, merged, false); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), merged, resps
}

// TestClusterTraceGolden is the tentpole acceptance test: the merged
// cluster-wide trace of a sequenced replay is byte-identical across runs and
// across client worker counts (1, 4, 8), pinned by a golden file.
// Regenerate with UPDATE_GOLDEN=1 go test ./internal/volume -run TestClusterTraceGolden.
func TestClusterTraceGolden(t *testing.T) {
	out1, recs, resps := clusterTraceRun(t, 1)
	out4, _, _ := clusterTraceRun(t, 4)
	out8, _, _ := clusterTraceRun(t, 8)
	if !bytes.Equal(out1, out4) {
		t.Fatal("merged trace differs between 1 and 4 client connections")
	}
	if !bytes.Equal(out1, out8) {
		t.Fatal("merged trace differs between 1 and 8 client connections")
	}

	golden := filepath.Join("testdata", "cluster_trace.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out1, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(out1))
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(out1, want) {
		t.Fatalf("merged trace drifted from golden (%d vs %d bytes); if intended, regenerate with UPDATE_GOLDEN=1",
			len(out1), len(want))
	}

	// The merged ledger covers every hop type in the taxonomy.
	var seen [telemetry.NumHops]int
	for _, r := range recs {
		if r.Hop.Valid() {
			seen[r.Hop]++
		}
	}
	for h := telemetry.Hop(0); h.Valid(); h++ {
		if seen[h] == 0 {
			t.Fatalf("merged trace has no %v records", h)
		}
	}
	// Every op produced exactly one client hop and (at replicas=1) one proxy
	// leg; a proxy leg's simulated duration is the backend's device latency.
	if seen[telemetry.HopClient] != len(resps) {
		t.Fatalf("%d client hops for %d ops", seen[telemetry.HopClient], len(resps))
	}
}

// TestClusterTraceAccounting pins the cross-layer latency identity end to
// end: for every OK op, the backend's queue+gc+service simulated durations
// sum to the proxy leg's recorded latency, which is exactly the latency the
// client observed in its response.
func TestClusterTraceAccounting(t *testing.T) {
	_, recs, resps := clusterTraceRun(t, 4)
	devSum := map[uint64]float64{}
	proxyLat := map[uint64]float64{}
	for _, r := range recs {
		switch r.Hop {
		case telemetry.HopQueue, telemetry.HopGC, telemetry.HopService:
			if r.LPN >= 0 { // skip background GC-step records
				devSum[r.Trace] += r.SimUS
			}
		case telemetry.HopProxy:
			proxyLat[r.Trace] = r.SimUS
		}
	}
	checked := 0
	for i, resp := range resps {
		if resp.Status != server.StatusOK {
			continue
		}
		tid := uint64(i) + 1
		if math.Abs(devSum[tid]-resp.Latency) > 1e-6 {
			t.Fatalf("op %d: device hops sum to %v µs, client saw %v µs", i, devSum[tid], resp.Latency)
		}
		if math.Abs(proxyLat[tid]-resp.Latency) > 1e-6 {
			t.Fatalf("op %d: proxy leg recorded %v µs, client saw %v µs", i, proxyLat[tid], resp.Latency)
		}
		checked++
	}
	if checked < len(resps)/2 {
		t.Fatalf("only %d/%d ops were checkable", checked, len(resps))
	}
}
