// Command ftltrace merges per-process hop-ledger shards (written by
// ftlserve/ftlvol/ftlload -trace, or scraped from a live /trace endpoint)
// into one cluster-wide view of every traced request: a Chrome trace-event
// file for chrome://tracing / Perfetto, and a per-hop latency breakdown
// table with slowest-hop attribution.
//
// Usage:
//
//	ftltrace load.jsonl vol.jsonl srv0.jsonl srv1.jsonl srv2.jsonl
//	ftltrace -o cluster.json load.jsonl vol.jsonl srv*.jsonl
//	ftltrace -o - -wall load.jsonl         # Chrome JSON on stdout, wall args
//	ftltrace -no-breakdown -o out.json ... # merge only, no table
//
// The breakdown table (stdout) shows, per hop, exact P50/P99/P99.9 latency
// and how many traces had that hop as their slowest simulated stage — the
// "where did my P99.9 go?" answer. The Chrome export orders records and
// assigns pids deterministically, so for a sequenced replay the merged file
// is byte-identical across runs and worker counts (wall-clock durations are
// excluded unless -wall is given).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"superfast/internal/telemetry"
)

func main() {
	var (
		out       = flag.String("o", "", "write merged Chrome trace-event JSON to FILE (\"-\" = stdout)")
		wall      = flag.Bool("wall", false, "include wall-clock durations as Chrome args (non-deterministic)")
		noTable   = flag.Bool("no-breakdown", false, "skip the per-hop breakdown table")
		shardsOut = flag.String("merged", "", "write the merged JSONL shard to FILE (\"-\" = stdout)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ftltrace [-o trace.json] [-wall] [-merged merged.jsonl] [-no-breakdown] shard.jsonl ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	shards := make([][]telemetry.HopRecord, 0, flag.NArg())
	total := 0
	for _, path := range flag.Args() {
		recs, err := readShard(path)
		if err != nil {
			fatalf("%s: %v", path, err)
		}
		shards = append(shards, recs)
		total += len(recs)
	}
	merged := telemetry.MergeRecords(shards...)
	fmt.Fprintf(os.Stderr, "ftltrace: merged %d records from %d shards\n", total, len(shards))

	if *shardsOut != "" {
		if err := writeTo(*shardsOut, func(w io.Writer) error {
			return telemetry.WriteShard(w, merged)
		}); err != nil {
			fatalf("-merged %s: %v", *shardsOut, err)
		}
	}
	if *out != "" {
		if err := writeTo(*out, func(w io.Writer) error {
			return telemetry.WriteLedgerChrome(w, merged, *wall)
		}); err != nil {
			fatalf("-o %s: %v", *out, err)
		}
		if *out != "-" {
			fmt.Fprintf(os.Stderr, "ftltrace: wrote Chrome trace to %s\n", *out)
		}
	}
	if !*noTable {
		if err := telemetry.LedgerBreakdown(merged).WriteTable(os.Stdout); err != nil {
			fatalf("breakdown: %v", err)
		}
	}
}

// readShard loads one JSONL shard; "-" reads stdin.
func readShard(path string) ([]telemetry.HopRecord, error) {
	if path == "-" {
		return telemetry.ReadShard(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return telemetry.ReadShard(f)
}

// writeTo streams fn's output to path ("-" = stdout), combining write and
// close errors.
func writeTo(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := fn(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ftltrace: "+format+"\n", args...)
	os.Exit(1)
}
