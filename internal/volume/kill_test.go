package volume

import (
	"bytes"
	"fmt"
	"testing"

	"superfast/internal/ftl"
	"superfast/internal/server"
)

func TestKillRestartBackend(t *testing.T) {
	v, _ := startCluster(t, 3, server.Config{}, Config{Stripe: 8, Replicas: 2})
	defer v.Close()

	n := v.Space()
	if n > 256 {
		n = 256
	}
	page := func(lpn int64) []byte {
		p := make([]byte, v.PageSize())
		copy(p, fmt.Sprintf("kill-%d", lpn))
		return p
	}
	for lpn := int64(0); lpn < n; lpn++ {
		if r, err := v.Write(lpn, page(lpn), ftl.HintNone); err != nil || r.Status != server.StatusOK {
			t.Fatalf("write %d: %v %v", lpn, err, r.Status)
		}
	}

	if err := v.KillBackend(0); err != nil {
		t.Fatal(err)
	}
	if err := v.KillBackend(0); err == nil {
		t.Fatal("double kill should fail")
	}
	if err := v.RestartBackend(1, ""); err == nil {
		t.Fatal("restarting a live backend should fail")
	}
	if snap := v.ClusterStat(); !snap.Backends[0].Down || snap.Backends[1].Down {
		t.Fatalf("down flags = %v %v", snap.Backends[0].Down, snap.Backends[1].Down)
	}

	// Every page keeps a live replica (2 copies on 3 backends), so reads
	// fail over and writes skip the dead leg.
	for lpn := int64(0); lpn < n; lpn++ {
		r, err := v.Read(lpn)
		if err != nil || r.Status != server.StatusOK || !bytes.Equal(r.Payload, page(lpn)) {
			t.Fatalf("read %d with backend 0 down: %v %v", lpn, err, r.Status)
		}
	}
	for lpn := int64(0); lpn < n; lpn++ {
		if r, err := v.Write(lpn, page(lpn+1000), ftl.HintNone); err != nil || r.Status != server.StatusOK {
			t.Fatalf("write %d with backend 0 down: %v %v", lpn, err, r.Status)
		}
	}
	if c := v.ClusterStat().Volume; c.DownSkips == 0 {
		t.Fatalf("no down skips recorded: %+v", c)
	}

	// The test backend process is still listening; re-attach it.
	if err := v.RestartBackend(0, ""); err != nil {
		t.Fatal(err)
	}
	if snap := v.ClusterStat(); snap.Backends[0].Down {
		t.Fatal("backend 0 still marked down after restart")
	}
	// The restarted replica missed the writes that skipped it, so a read may
	// serve either generation depending on which copy is primary — stale
	// data, not garbage.
	for lpn := int64(0); lpn < n; lpn++ {
		r, err := v.Read(lpn)
		if err != nil || r.Status != server.StatusOK {
			t.Fatalf("read %d after restart: %v %v", lpn, err, r.Status)
		}
		if !bytes.Equal(r.Payload, page(lpn+1000)) && !bytes.Equal(r.Payload, page(lpn)) {
			t.Fatalf("read %d after restart served garbage", lpn)
		}
	}
	// A full-replica write heals the divergence.
	for lpn := int64(0); lpn < n; lpn++ {
		if r, err := v.Write(lpn, page(lpn+2000), ftl.HintNone); err != nil || r.Status != server.StatusOK {
			t.Fatalf("heal write %d: %v %v", lpn, err, r.Status)
		}
	}
	for lpn := int64(0); lpn < n; lpn++ {
		r, err := v.Read(lpn)
		if err != nil || r.Status != server.StatusOK || !bytes.Equal(r.Payload, page(lpn+2000)) {
			t.Fatalf("read %d after heal: %v %v", lpn, err, r.Status)
		}
	}
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestKillBackendRefusedWhenSequenced(t *testing.T) {
	v, _ := startCluster(t, 2, server.Config{Sequenced: true}, Config{Stripe: 8, Sequenced: true})
	defer v.Close()
	if err := v.KillBackend(0); err == nil {
		t.Fatal("sequenced kill should fail")
	}
	if err := v.RestartBackend(0, ""); err == nil {
		t.Fatal("sequenced restart should fail")
	}
}
