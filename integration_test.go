// Integration: the full pipeline the paper describes, crossing every module
// boundary — characterize chips (chamber), organize superblocks offline
// (assembly/core), feed the same silicon to a full SSD (ftl/ssd) under host
// traffic (workload), and check that the offline and runtime views of
// QSTR-MED agree with each other and with the device's observed extra
// latency.
package superfast_test

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"superfast/internal/assembly"
	"superfast/internal/chamber"
	"superfast/internal/core"
	"superfast/internal/flash"
	"superfast/internal/ftl"
	"superfast/internal/profile"
	"superfast/internal/pv"
	"superfast/internal/ssd"
	"superfast/internal/telemetry"
	"superfast/internal/workload"
)

func integrationGeometry() (flash.Geometry, pv.Params) {
	g := flash.Geometry{
		Chips:          4,
		PlanesPerChip:  1,
		BlocksPerPlane: 40,
		Layers:         24,
		Strings:        4,
		PageSize:       4096,
		SpareSize:      256,
	}
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	return g, p
}

func TestIntegrationOfflineAndRuntimeAgree(t *testing.T) {
	g, p := integrationGeometry()
	arr := flash.MustNewArray(g, pv.New(p), flash.DefaultECC())
	tb := chamber.New(arr)

	// Offline: characterize every block and organize with the batch
	// QSTR-MED (the experiments' path).
	grp := chamber.GroupLanes(g, g.Lanes())[0]
	lanes, err := tb.MeasureGroup(grp, chamber.BlockRange(0, g.BlocksPerPlane), 0, true)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := core.BatchAssembler{K: 4}.Assemble(lanes)
	if err != nil {
		t.Fatal(err)
	}
	if err := assembly.CheckPartition(lanes, batch.Superblocks); err != nil {
		t.Fatal(err)
	}
	mBatch, err := assembly.Evaluate(lanes, batch.Superblocks)
	if err != nil {
		t.Fatal(err)
	}

	// Runtime: seed a Scheme with the same measurements and assemble the
	// same number of fast superblocks; quality must match the batch path.
	scheme, err := core.NewScheme(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for li, lane := range lanes {
		chip, plane := g.LaneChipPlane(grp.Lanes[li])
		for _, bp := range lane.Blocks {
			addr := flash.BlockAddr{Chip: chip, Plane: plane, Block: bp.Block}
			scheme.Seed(addr, bp.PgmSum, profile.EigenFromProfile(bp))
			if err := scheme.AddFree(addr); err != nil {
				t.Fatal(err)
			}
		}
	}
	var runtimeSBs [][]int
	for scheme.FreeCount() > 0 {
		members, err := scheme.Assemble(core.Fast)
		if err != nil {
			t.Fatal(err)
		}
		sb := make([]int, len(members))
		for _, m := range members {
			sb[m.Lane(g)] = m.Block
		}
		runtimeSBs = append(runtimeSBs, sb)
	}
	// lanes[i].Blocks are indexed by block id because MeasureGroup walks
	// blocks in order; translate block ids to indices (identity here).
	mRuntime, err := assembly.Evaluate(lanes, runtimeSBs)
	if err != nil {
		t.Fatal(err)
	}
	// The two paths implement the same algorithm over the same data.
	if diff := mRuntime.MeanPgm - mBatch.MeanPgm; diff > mBatch.MeanPgm*0.02 || diff < -mBatch.MeanPgm*0.02 {
		t.Fatalf("runtime scheme (%v) and batch assembler (%v) diverge", mRuntime.MeanPgm, mBatch.MeanPgm)
	}
}

func TestIntegrationDeviceObservesOrganizedExtraLatency(t *testing.T) {
	// Run the same workload on two devices over identical silicon: the
	// QSTR-MED-organized FTL must observe less extra program latency than
	// the random one, and both must preserve data under GC.
	extra := func(org ftl.Organizer) float64 {
		g, p := integrationGeometry()
		arr := flash.MustNewArray(g, pv.New(p), flash.DefaultECC())
		cfg := ssd.DefaultConfig()
		cfg.FTL.Organizer = org
		cfg.FTL.Overprovision = 0.25
		dev, err := ssd.New(arr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		capacity := dev.FTL().Capacity()
		if err := dev.FillSequential(nil); err != nil {
			t.Fatal(err)
		}
		if _, err := workload.Run(dev, &workload.HotCold{
			Space: capacity, Count: 2 * capacity, HotFrac: 0.8, HotSpace: 0.2, PageLen: 32, Seed: 7,
		}); err != nil {
			t.Fatal(err)
		}
		if err := dev.FTL().CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		st := dev.FTL().Stats()
		if st.GCRuns == 0 {
			t.Fatal("expected GC activity")
		}
		return st.ExtraPgm / float64(st.Flushes)
	}
	q := extra(ftl.QSTRMed)
	r := extra(ftl.RandomOrg)
	if q >= r {
		t.Fatalf("organized extra/flush (%v) should beat random (%v)", q, r)
	}
}

func TestHTTPMetricsSmoke(t *testing.T) {
	// The live-exposition path end to end: drive a device with every sink
	// attached, serve the registry on an ephemeral port, and scrape the
	// endpoints the CLIs advertise. This is the `make check` integration smoke
	// for the -http flag.
	g, p := integrationGeometry()
	arr := flash.MustNewArray(g, pv.New(p), flash.DefaultECC())
	cfg := ssd.DefaultConfig()
	cfg.FTL.Overprovision = 0.25
	dev, err := ssd.New(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.FillSequential(nil); err != nil {
		t.Fatal(err)
	}
	m := telemetry.New()
	dev.SetMetrics(m)
	attr := telemetry.NewAttribution()
	dev.SetAttribution(attr)
	rec, err := telemetry.NewRecorder(500, 1024, ssd.RecorderColumns(g.Chips))
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.AttachRecorder(rec); err != nil {
		t.Fatal(err)
	}
	capacity := dev.FTL().Capacity()
	for i := 0; i < 300; i++ {
		if _, err := dev.Submit(ssd.Request{
			Kind: ssd.OpWrite, LPN: int64(i*2654435761) % capacity, Data: []byte{byte(i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	dev.FlushRecorder()

	srv, addr, err := telemetry.Serve("127.0.0.1:0", telemetry.Routes(m, rec, attr, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}
	if got := get("/healthz"); got != "ok\n" {
		t.Fatalf("healthz = %q", got)
	}
	metrics := get("/metrics")
	for _, want := range []string{
		"# TYPE ftl_writes_host counter",
		"ssd_latency{quantile=\"0.5\"}",
		"ssd_latency_count",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics lacks %q:\n%s", want, metrics)
		}
	}
	if fr := get("/flightrecorder"); !strings.HasPrefix(fr, "t_us,waf,qdepth") {
		t.Fatalf("flightrecorder CSV header missing: %q", fr[:60])
	}
	if at := get("/attribution"); !strings.Contains(at, "\"stragglers\"") {
		t.Fatalf("attribution report lacks stragglers: %.200s", at)
	}
}

func TestIntegrationCharacterizationMatchesDeviceObservations(t *testing.T) {
	// The chamber's fast measurement path and the FTL's in-band gathering
	// observe the same silicon: after the FTL programs a block, the
	// scheme's gathered sum must be close to the chamber's measurement of
	// the same block (temporal jitter only).
	g, p := integrationGeometry()
	p.PgmJitterSigma = 0
	p.PgmWearNoise = 0
	arr := flash.MustNewArray(g, pv.New(p), flash.DefaultECC())
	f, err := ftl.New(arr, ftl.Config{Overprovision: 0.25, GCThreshold: 2, K: 4, MapReadUS: 60, MapProgramUS: 1700})
	if err != nil {
		t.Fatal(err)
	}
	// Write enough to seal at least one superblock.
	n := int64(g.Lanes() * g.LWLsPerBlock() * flash.PagesPerLWL * 2)
	if n > f.Capacity() {
		n = f.Capacity()
	}
	for lpn := int64(0); lpn < n; lpn++ {
		if _, err := f.Write(lpn, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	tb := chamber.New(arr)
	matched := 0
	for lane := 0; lane < g.Lanes(); lane++ {
		chip, plane := g.LaneChipPlane(lane)
		for b := 0; b < g.BlocksPerPlane; b++ {
			addr := flash.BlockAddr{Chip: chip, Plane: plane, Block: b}
			if !f.Scheme().Known(addr) {
				continue
			}
			lats, err := arr.LWLLatencies(addr)
			if err != nil {
				t.Fatal(err)
			}
			var sum float64
			for _, v := range lats {
				sum += v
			}
			ref := tb.FastProfile(lane, b, 1) // programs happened at P/E ~0-1
			rel := (sum - ref.PgmSum) / ref.PgmSum
			if rel < -0.02 || rel > 0.02 {
				t.Fatalf("block %v: gathered sum %v vs chamber %v", addr, sum, ref.PgmSum)
			}
			matched++
		}
	}
	if matched == 0 {
		t.Fatal("no fully characterized blocks to compare")
	}
}
