package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseSpecDefaultsAndStrictness(t *testing.T) {
	s, err := ParseSpec([]byte(`{"name":"x","seed":9,"events":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Backends != 3 || s.Replicas != 2 || s.Ops != 600 || s.WorkingSet != 256 ||
		s.WriteFrac != 0.5 || s.GapUS != 20 {
		t.Fatalf("defaults not filled: %+v", s)
	}

	if _, err := ParseSpec([]byte(`{"name":"x","sedd":9}`)); err == nil {
		t.Fatal("unknown field must be rejected")
	}
	if _, err := ParseSpec([]byte(`{"name":"x"} {"trailing":1}`)); err == nil {
		t.Fatal("trailing document must be rejected")
	}
	if _, err := ParseSpec([]byte(`not json`)); err == nil {
		t.Fatal("malformed JSON must be rejected")
	}
	// An event with a typoed field is a silently-dropped fault — reject it.
	if _, err := ParseSpec([]byte(`{"events":[{"atop":5,"kind":"power-cut"}]}`)); err == nil {
		t.Fatal("unknown event field must be rejected")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"unknown kind", func(s *Spec) { s.Events = []Event{{Kind: "meteor-strike"}} }, "unknown kind"},
		{"unsorted events", func(s *Spec) {
			s.Events = []Event{{AtOp: 10, Kind: KindRetentionBake, Units: 1}, {AtOp: 5, Kind: KindRetentionBake, Units: 1}}
		}, "not sorted"},
		{"event past stream", func(s *Spec) { s.Events = []Event{{AtOp: 1 << 20, Kind: KindRetentionBake, Units: 1}} }, "outside"},
		{"backend out of range", func(s *Spec) { s.Events = []Event{{Kind: KindRetentionBake, Units: 1, Backend: 99}} }, "backend 99"},
		{"replicas exceed backends", func(s *Spec) { s.Replicas = 9 }, "replicas"},
		{"kill without replicas", func(s *Spec) {
			s.Replicas = 1
			s.Events = []Event{{Kind: KindKillBackend}, {Kind: KindRestartBackend}}
		}, "replicas"},
		{"restart before kill", func(s *Spec) { s.Events = []Event{{Kind: KindRestartBackend}} }, "not down"},
		{"kill never restarted", func(s *Spec) { s.Events = []Event{{Kind: KindKillBackend}} }, "still down"},
		{"double kill", func(s *Spec) {
			s.Events = []Event{{Kind: KindKillBackend, Backend: 0}, {Kind: KindKillBackend, Backend: 1}}
		}, "one backend down"},
		{"revive without dropout", func(s *Spec) { s.Events = []Event{{Kind: KindChipRevive}} }, "not down"},
		{"dropout never revived", func(s *Spec) { s.Events = []Event{{Kind: KindChipDropout}} }, "still down"},
		{"bad-blocks without count", func(s *Spec) { s.Events = []Event{{Kind: KindBadBlocks}} }, "count"},
		{"bake without dose", func(s *Spec) { s.Events = []Event{{Kind: KindRetentionBake}} }, "units"},
		{"negative recovery", func(s *Spec) { s.Events = []Event{{Kind: KindPowerCut, RecoverUS: -1}} }, "recover_us"},
		{"negative write fraction", func(s *Spec) { s.WriteFrac = -0.5 }, "write fraction"},
		{"negative tenant quota", func(s *Spec) { s.Tenants = &TenantPhase{NoisyQuota: -1} }, "tenant"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := &Spec{Seed: 1}
			tc.mut(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("validated: %+v", s)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestDefaultSpecRoundTrips(t *testing.T) {
	s := DefaultSpec()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseSpec(data)
	if err != nil {
		t.Fatalf("canonical spec does not re-parse: %v\n%s", err, data)
	}
	d2, err := json.Marshal(s2)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(d2) {
		t.Fatalf("round trip drifted:\n%s\n%s", data, d2)
	}
}

func TestBadBlockEventSeedDefaultsFromCampaign(t *testing.T) {
	s := &Spec{Seed: 77, Events: []Event{
		{AtOp: 1, Kind: KindBadBlocks, Count: 2},
		{AtOp: 2, Kind: KindBadBlocks, Count: 2},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Events[0].Seed == 0 || s.Events[1].Seed == 0 {
		t.Fatalf("event seeds not derived: %+v", s.Events)
	}
	if s.Events[0].Seed == s.Events[1].Seed {
		t.Fatalf("two storms drew the same derived seed %d", s.Events[0].Seed)
	}
}

func TestBuildProgramShape(t *testing.T) {
	s := &Spec{Seed: 3, Backends: 3, Replicas: 2, Ops: 40, WorkingSet: 16,
		WriteFrac: 1.0, GapUS: 10,
		Events: []Event{
			{AtOp: 10, Kind: KindKillBackend, Backend: 1},
			{AtOp: 20, Kind: KindRestartBackend, Backend: 1},
		}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	p := build(s)
	// fill + campaign + heals + sweep.
	if len(p.ops) <= int(s.WorkingSet)*2+s.Ops {
		t.Fatalf("program has %d ops — no heal writes were scheduled", len(p.ops))
	}
	if len(p.barriers) != 2 {
		t.Fatalf("got %d barriers, want 2", len(p.barriers))
	}
	restart := p.barriers[1]
	healed := p.healed[restart.events[0]]
	// WriteFrac=1: all 10 campaign ops in the down window are writes, over
	// 16 LPNs — the dirty set is non-empty and at most 10.
	if healed < 1 || healed > 10 {
		t.Fatalf("healed %d LPNs, want 1..10", healed)
	}
	// Heal writes sit immediately after the restart barrier, before the
	// next campaign op.
	for i := 0; i < healed; i++ {
		op := p.ops[restart.pos+i]
		if !op.write || op.campaign != -1 {
			t.Fatalf("program op %d after restart is not a heal write: %+v", restart.pos+i, op)
		}
	}
	// Campaign positions are strictly increasing and skip the heals.
	for j := 1; j < s.Ops; j++ {
		if p.pos[j] <= p.pos[j-1] {
			t.Fatalf("campaign position %d not increasing: %v", j, p.pos[j-1:j+1])
		}
	}
	if p.pos[20] != restart.pos+healed {
		t.Fatalf("campaign op 20 at %d, want right after the %d heals at %d", p.pos[20], healed, restart.pos)
	}
	// The verify sweep covers the whole working set.
	if len(p.ops)-p.sweep != int(s.WorkingSet) {
		t.Fatalf("sweep covers %d pages, want %d", len(p.ops)-p.sweep, s.WorkingSet)
	}
	// The same spec builds the same program.
	p2 := build(s)
	if len(p2.ops) != len(p.ops) {
		t.Fatalf("rebuild drifted: %d vs %d ops", len(p2.ops), len(p.ops))
	}
	for i := range p.ops {
		if p.ops[i] != p2.ops[i] {
			t.Fatalf("rebuild drifted at op %d: %+v vs %+v", i, p.ops[i], p2.ops[i])
		}
	}
}
