// Latency kernel: a precomputed cache of the model's static (seed- and
// coordinate-derived) latency components over a fixed array geometry.
//
// Every latency the model produces splits into a *static* part — a pure
// function of (seed, coordinates), identical on every call — and a *dynamic*
// part: wear drift (a function of the block's live P/E count), the chip's
// temperature shift, and per-measurement jitter (a function of the caller's
// nonce). The direct methods recompute both parts from hashes on every call;
// ProgramLatency alone walks the whole string-class pattern (two hashes and
// two Box-Muller draws per string) plus layer, block and word-line components
// — ~20 normal draws per call. The kernel computes the static sum once per
// block, stores it in flat per-LWL tables, and applies only the dynamic terms
// at call time, in exactly the order the direct method would, so results are
// bit-for-bit identical (float64 addition is order-dependent; see the
// property test in kernel_test.go and DESIGN.md §8).
//
// Concurrency: tables are sharded per chip and published with an atomic
// compare-and-swap. Readers are lock-free; racing fills build identical
// tables (the build is a pure function of seed and coordinates), and the CAS
// just discards all but one. This is what lets ssd.ConcurrentDevice's
// per-chip workers and the parallel experiment sweeps share one kernel with
// no contention.
package pv

import (
	"fmt"
	"math"
	"sync/atomic"

	"superfast/internal/prng"
)

// Kernel caches the static latency components of a Model over a fixed
// (chips × planes × blocks-per-plane) geometry. Obtain one from
// Model.Kernel; it is safe for concurrent use. Coordinates outside the
// kernel's geometry fall back to the direct model methods, so a kernel is
// always safe to use as a drop-in for the model it wraps.
type Kernel struct {
	m              *Model
	chips          int
	planes         int
	blocksPerPlane int
	layers         int
	strings        int
	lwls           int // layers * strings
	shards         []kernelShard
}

// kernelShard holds one chip's tables plus the chip-constant dynamic terms.
// Per-chip sharding keeps concurrent fills from different chips on different
// cache lines and mirrors how ConcurrentDevice partitions its workers.
type kernelShard struct {
	pgmTemp float64 // tempShift(chip, PgmTempCoeff), fixed per model
	ersTemp float64 // tempShift(chip, ErsTempCoeff)
	blocks  []atomic.Pointer[blockTables]
}

// blockTables is the per-block static cache. pgmStatic[i] holds the exact
// left-to-right partial sum of ProgramLatency's seven static terms for LWL
// i = layer*strings + string; the jitter hash bases are the per-coordinate
// hashes that the direct methods XOR with the caller's nonce.
type blockTables struct {
	pgmStatic  []float64 // len lwls: static program sum per logical word-line
	pgmJitterH []uint64  // len lwls: program jitter hash base per LWL
	ersStatic  float64   // static erase sum (base + chip + corr + local + spike)
	ersJitterH uint64    // erase jitter hash base
	readJitterH uint64   // read jitter hash base (shared by all pages of the block)
	endurance  int       // P/E endurance limit (fully static)
	rberBlk    float64   // per-block RBER multiplier exp(span·z)
}

// Kernel returns the cached-latency kernel for the given geometry, building
// it on first use. Kernels are memoized per dimension set, so every consumer
// of one model instance — the flash array, the characterization testbed, the
// experiment sweeps — shares the same tables. Safe for concurrent use.
func (m *Model) Kernel(chips, planes, blocksPerPlane int) *Kernel {
	if chips <= 0 || planes <= 0 || blocksPerPlane <= 0 {
		panic(fmt.Sprintf("pv: kernel dimensions must be positive, got %d×%d×%d",
			chips, planes, blocksPerPlane))
	}
	m.kmu.Lock()
	defer m.kmu.Unlock()
	for _, k := range m.kernels {
		if k.chips == chips && k.planes == planes && k.blocksPerPlane == blocksPerPlane {
			return k
		}
	}
	k := &Kernel{
		m:              m,
		chips:          chips,
		planes:         planes,
		blocksPerPlane: blocksPerPlane,
		layers:         m.p.Layers,
		strings:        m.p.Strings,
		lwls:           m.p.Layers * m.p.Strings,
		shards:         make([]kernelShard, chips),
	}
	for c := range k.shards {
		k.shards[c].pgmTemp = m.tempShift(c, m.p.PgmTempCoeff)
		k.shards[c].ersTemp = m.tempShift(c, m.p.ErsTempCoeff)
		k.shards[c].blocks = make([]atomic.Pointer[blockTables], planes*blocksPerPlane)
	}
	m.kernels = append(m.kernels, k)
	return k
}

// Model returns the model the kernel caches.
func (k *Kernel) Model() *Model { return k.m }

func (k *Kernel) inRange(chip, plane, block int) bool {
	return chip >= 0 && chip < k.chips &&
		plane >= 0 && plane < k.planes &&
		block >= 0 && block < k.blocksPerPlane
}

// tables returns the block's static cache, building it on first touch.
// Lock-free: a racing builder loses the CAS and adopts the winner's tables,
// which are identical because the build is pure.
func (k *Kernel) tables(chip, plane, block int) *blockTables {
	slot := &k.shards[chip].blocks[plane*k.blocksPerPlane+block]
	if t := slot.Load(); t != nil {
		return t
	}
	t := k.build(chip, plane, block)
	if slot.CompareAndSwap(nil, t) {
		return t
	}
	return slot.Load()
}

// build computes one block's static tables. Every component is evaluated by
// the same code path (or an inlined copy accumulating in the same order) as
// the direct methods, so the cached sums carry the exact rounding of the
// uncached computation.
func (k *Kernel) build(chip, plane, block int) *blockTables {
	m := k.m
	p := &m.p
	t := &blockTables{
		pgmStatic:  make([]float64, k.lwls),
		pgmJitterH: make([]uint64, k.lwls),
	}

	// String offsets are block-constant per string: compute the class raws
	// once, accumulating the mean in ascending string order exactly like
	// stringOffset does on every direct call.
	class := m.StringClass(chip, plane, block)
	raws := make([]float64, k.strings)
	sum := 0.0
	for s := 0; s < k.strings; s++ {
		base := p.StringClassSigma * prng.NormalFromHash(prng.Hash(p.Seed, domStringClassPattern, class, s))
		idio := p.StringIdioSigma * prng.NormalFromHash(prng.Hash(p.Seed, domStringLocal, chip, plane, block, s))
		raws[s] = base + idio
		sum += raws[s]
	}
	mean := sum / float64(p.Strings)
	hasScale := p.StringScaleSigma > 0
	scale := 1.0
	if hasScale {
		scale = math.Exp(p.StringScaleSigma * prng.NormalFromHash(prng.Hash(p.Seed, domStringScale, chip, plane, block)))
	}

	bpo := m.BlockPgmOffset(chip, plane, block)
	for layer := 0; layer < k.layers; layer++ {
		lp := m.layerProfile(layer)
		clo := m.chipLayerOffset(chip, layer)
		blo := m.blockLayerOffset(Coord{Chip: chip, Plane: plane, Block: block, Layer: layer})
		for s := 0; s < k.strings; s++ {
			so := raws[s] - mean
			if hasScale {
				so *= scale
			}
			c := Coord{Chip: chip, Plane: plane, Block: block, Layer: layer, String: s}
			// The same seven-term left-to-right sum as ProgramLatency.
			i := layer*k.strings + s
			t.pgmStatic[i] = p.PgmBase + lp + clo + so + bpo + blo + m.wlStatic(c)
			t.pgmJitterH[i] = prng.Hash(p.Seed, domPgmJitter, chip, plane, block, layer, s)
		}
	}

	// The same five-term left-to-right sum as EraseLatency.
	t.ersStatic = p.ErsBase +
		p.ChipErsSigma*prng.NormalFromHash(prng.Hash(p.Seed, domChipErs, chip)) +
		p.ErsCorrCoeff*bpo +
		p.ErsLocalSigma*prng.NormalFromHash(prng.Hash(p.Seed, domErsLocal, chip, plane, block)) +
		m.ErsSpike(chip, plane, block)
	t.ersJitterH = prng.Hash(p.Seed, domErsJitter, chip, plane, block)
	t.readJitterH = prng.Hash(p.Seed, domReadJitter, chip, plane, block)
	t.endurance = m.Endurance(chip, plane, block)
	t.rberBlk = math.Exp(p.RBERBlockSpan * prng.NormalFromHash(prng.Hash(p.Seed, domRBER, chip, plane, block)))
	return t
}

// ProgramLatency is Model.ProgramLatency served from the cache: the static
// seven-term sum is a table load, and only wear, temperature, jitter,
// quantization and the floor run per call — in the direct method's order.
func (k *Kernel) ProgramLatency(c Coord, pe int, nonce uint64) float64 {
	if !k.inRange(c.Chip, c.Plane, c.Block) ||
		c.Layer < 0 || c.Layer >= k.layers || c.String < 0 || c.String >= k.strings {
		return k.m.ProgramLatency(c, pe, nonce)
	}
	t := k.tables(c.Chip, c.Plane, c.Block)
	p := &k.m.p
	i := c.Layer*k.strings + c.String
	v := t.pgmStatic[i]
	v += p.PgmWearCoeff * float64(pe)
	v += k.shards[c.Chip].pgmTemp
	if p.PgmJitterSigma > 0 || p.PgmWearNoise > 0 {
		sig := p.PgmJitterSigma + p.PgmWearNoise*float64(pe)/1000
		v += sig * prng.NormalFromHash(prng.SplitMix64(t.pgmJitterH[i]^nonce))
	}
	v = quantize(v, p.PgmStep)
	if min := p.PgmBase * 0.5; v < min {
		v = min
	}
	return v
}

// ProgramLatencyBlock fills dst[layer*strings+string] with the program
// latency of every logical word-line of one block at the given P/E count,
// drawing per-word-line jitter from consecutive nonces: entry i uses
// nonce0+1+i, exactly the stream a caller looping ProgramLatency over
// (layer, string) in index order with a pre-incremented nonce consumes.
// The arithmetic runs in ProgramLatency's order term for term, so the
// filled row is bit-identical to the per-call loop — the batch only hoists
// the table lookup, the wear/temperature terms and the jitter sigma out of
// the per-word-line work. Returns false (dst untouched) when the block is
// outside the kernel's range or dst does not cover the block's word-lines;
// callers then fall back to the per-call path.
func (k *Kernel) ProgramLatencyBlock(chip, plane, block, pe int, nonce0 uint64, dst []float64) bool {
	if !k.inRange(chip, plane, block) || len(dst) != k.lwls {
		return false
	}
	t := k.tables(chip, plane, block)
	p := &k.m.p
	wear := p.PgmWearCoeff * float64(pe)
	temp := k.shards[chip].pgmTemp
	jitter := p.PgmJitterSigma > 0 || p.PgmWearNoise > 0
	sig := p.PgmJitterSigma + p.PgmWearNoise*float64(pe)/1000
	min := p.PgmBase * 0.5
	for i := range dst {
		v := t.pgmStatic[i]
		v += wear
		v += temp
		if jitter {
			v += sig * prng.NormalFromHash(prng.SplitMix64(t.pgmJitterH[i]^(nonce0+1+uint64(i))))
		}
		v = quantize(v, p.PgmStep)
		if v < min {
			v = min
		}
		dst[i] = v
	}
	return true
}

// EraseLatency is Model.EraseLatency served from the cache.
func (k *Kernel) EraseLatency(chip, plane, block, pe int, nonce uint64) float64 {
	if !k.inRange(chip, plane, block) {
		return k.m.EraseLatency(chip, plane, block, pe, nonce)
	}
	t := k.tables(chip, plane, block)
	p := &k.m.p
	v := t.ersStatic
	v += p.ErsWearCoeff * float64(pe)
	v += k.shards[chip].ersTemp
	if p.ErsJitterSigma > 0 {
		v += p.ErsJitterSigma * prng.NormalFromHash(prng.SplitMix64(t.ersJitterH^nonce))
	}
	v = quantize(v, p.ErsStep)
	if min := p.ErsBase * 0.5; v < min {
		v = min
	}
	return v
}

// ReadLatency is Model.ReadLatency with the jitter hash base served from the
// cache. The per-page sense offset stays a direct draw: caching it would cost
// NumPageTypes×LWLs floats per block for a path that is already two hashes.
func (k *Kernel) ReadLatency(c Coord, t PageType, nonce uint64) float64 {
	if !k.inRange(c.Chip, c.Plane, c.Block) {
		return k.m.ReadLatency(c, t, nonce)
	}
	if t < 0 || t >= NumPageTypes {
		panic(fmt.Sprintf("pv: invalid page type %d", int(t)))
	}
	bt := k.tables(c.Chip, c.Plane, c.Block)
	p := &k.m.p
	v := p.ReadBase[t] +
		p.ReadSigma*prng.NormalFromHash(prng.Hash(p.Seed, domRead, c.Chip, c.Plane, c.Block, c.Layer, c.String, int(t)))
	if p.ReadJitter > 0 {
		v += p.ReadJitter * prng.NormalFromHash(prng.SplitMix64(bt.readJitterH^nonce))
	}
	if min := p.ReadBase[t] * 0.5; v < min {
		v = min
	}
	return v
}

// Endurance is Model.Endurance served from the cache (it is fully static).
func (k *Kernel) Endurance(chip, plane, block int) int {
	if !k.inRange(chip, plane, block) {
		return k.m.Endurance(chip, plane, block)
	}
	return k.tables(chip, plane, block).endurance
}

// RBER is Model.RBER with the per-block multiplier served from the cache.
func (k *Kernel) RBER(c Coord, pe int, retention float64) float64 {
	if !k.inRange(c.Chip, c.Plane, c.Block) {
		return k.m.RBER(c, pe, retention)
	}
	t := k.tables(c.Chip, c.Plane, c.Block)
	p := &k.m.p
	r := p.RBERBase * t.rberBlk *
		math.Exp(p.RBERPECoeff*float64(pe)/1000) *
		math.Exp(p.RBERRetCoeff*retention)
	if r > 0.5 {
		r = 0.5
	}
	return r
}
