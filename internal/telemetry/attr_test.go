package telemetry

import (
	"bytes"
	"math"
	"testing"

	"superfast/internal/prng"
)

func TestAttributionChargesFirstSlowest(t *testing.T) {
	a := NewAttribution()
	members := []BlockKey{{0, 0, 1}, {0, 1, 1}, {1, 0, 1}, {1, 1, 1}}
	// Two members tie for slowest; the first one in member order is charged.
	a.Record('p', false, true, members, []float64{700, 900, 900, 650})
	r := a.Report(0)
	if len(r.Stragglers) != 4 {
		t.Fatalf("stragglers = %d, want 4 (every member has an ops row)", len(r.Stragglers))
	}
	top := r.Stragglers[0]
	if top.Block != "c0/p1/b1" {
		t.Fatalf("straggler = %s, want c0/p1/b1 (first member attaining the max)", top.Block)
	}
	if top.Straggles != 1 || top.ExtraUS != 250 {
		t.Fatalf("straggler row = %+v, want 1 straggle / 250 extra", top)
	}
	for _, row := range r.Stragglers {
		if row.Ops != 1 {
			t.Fatalf("block %s ops = %d, want 1", row.Block, row.Ops)
		}
	}
	if len(r.Lanes) != 1 || r.Lanes[0].Lane != "c0/p1" || r.Lanes[0].ExtraUS != 250 {
		t.Fatalf("lanes = %+v", r.Lanes)
	}
}

func TestAttributionSplitAndHistogram(t *testing.T) {
	a := NewAttribution()
	m2 := []BlockKey{{0, 0, 0}, {0, 1, 0}}
	a.Record('p', false, true, m2, []float64{100, 103})  // host fast program, extra 3
	a.Record('p', true, false, m2, []float64{100, 100})  // gc slow program, extra 0
	a.Record('e', true, false, m2, []float64{3000, 3900}) // gc slow erase, extra 900
	r := a.Report(0)

	wantSplit := []AttrSplit{
		{Source: "host", Class: "fast", Op: "program", Ops: 1, ExtraUS: 3},
		{Source: "gc", Class: "slow", Op: "program", Ops: 1, ExtraUS: 0},
		{Source: "gc", Class: "slow", Op: "erase", Ops: 1, ExtraUS: 900},
	}
	if len(r.Split) != len(wantSplit) {
		t.Fatalf("split = %+v", r.Split)
	}
	for _, w := range wantSplit {
		found := false
		for _, g := range r.Split {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("split missing %+v in %+v", w, r.Split)
		}
	}

	if r.Ops["program"] != 2 || r.Ops["erase"] != 1 {
		t.Fatalf("ops = %+v", r.Ops)
	}
	if r.ExtraUS["total"] != 903 {
		t.Fatalf("extra total = %v", r.ExtraUS["total"])
	}

	// Histogram: program got extra 3 → bucket [2,4) and extra 0 → [0,1);
	// erase got extra 900 → [512,1024).
	var pg, er *AttrHist
	for i := range r.Hist {
		switch r.Hist[i].Op {
		case "program":
			pg = &r.Hist[i]
		case "erase":
			er = &r.Hist[i]
		}
	}
	if pg == nil || er == nil {
		t.Fatalf("hist = %+v", r.Hist)
	}
	if len(pg.Buckets) != 2 || pg.Buckets[0] != (AttrBucket{0, 1, 1}) || pg.Buckets[1] != (AttrBucket{2, 4, 1}) {
		t.Fatalf("program hist = %+v", pg.Buckets)
	}
	if len(er.Buckets) != 1 || er.Buckets[0] != (AttrBucket{512, 1024, 1}) {
		t.Fatalf("erase hist = %+v", er.Buckets)
	}
}

func TestAttributionBlockSumMatchesTotal(t *testing.T) {
	a := NewAttribution()
	src := prng.New(9, 0xabc)
	members := make([]BlockKey, 4)
	lats := make([]float64, 4)
	for op := 0; op < 500; op++ {
		for i := range members {
			members[i] = BlockKey{Chip: i % 2, Plane: i / 2, Block: int(src.Uint64() % 8)}
			lats[i] = 500 + float64(src.Uint64()%1000)
		}
		kind := byte('p')
		if op%3 == 0 {
			kind = 'e'
		}
		a.Record(kind, op%2 == 0, op%5 == 0, members, lats)
	}
	r := a.Report(0)
	var blockSum, laneSum, splitSum float64
	for _, b := range r.Stragglers {
		blockSum += b.ExtraUS
	}
	for _, l := range r.Lanes {
		laneSum += l.ExtraUS
	}
	for _, s := range r.Split {
		splitSum += s.ExtraUS
	}
	total := a.TotalExtraUS()
	for name, got := range map[string]float64{"blocks": blockSum, "lanes": laneSum, "split": splitSum} {
		if math.Abs(got-total) > 1e-9*math.Max(1, total) {
			t.Fatalf("%s sum %v != total %v", name, got, total)
		}
	}
	if a.Ops() != 500 {
		t.Fatalf("ops = %d", a.Ops())
	}
	var histCount uint64
	for _, h := range r.Hist {
		for _, b := range h.Buckets {
			histCount += b.Count
		}
	}
	if histCount != 500 {
		t.Fatalf("hist count = %d, want 500", histCount)
	}
}

func TestAttributionTopKStable(t *testing.T) {
	a := NewAttribution()
	// Three commands with equal extra so the top-K cut is decided by address.
	for i := 0; i < 3; i++ {
		m := []BlockKey{{i, 0, 0}, {i, 1, 0}}
		a.Record('p', false, false, m, []float64{100, 150})
	}
	r := a.Report(2)
	if len(r.Stragglers) != 2 {
		t.Fatalf("topK rows = %d", len(r.Stragglers))
	}
	if r.Stragglers[0].Block != "c0/p1/b0" || r.Stragglers[1].Block != "c1/p1/b0" {
		t.Fatalf("topK cut not address-stable: %+v", r.Stragglers)
	}
}

func TestAttributionDegenerateRecords(t *testing.T) {
	a := NewAttribution()
	a.Record('p', false, false, nil, nil)
	a.Record('p', false, false, []BlockKey{{0, 0, 0}}, []float64{1, 2})
	if a.Ops() != 0 {
		t.Fatalf("degenerate records were counted: ops = %d", a.Ops())
	}
	// Single member: extra is zero but the op still counts.
	a.Record('e', false, false, []BlockKey{{0, 0, 0}}, []float64{3000})
	if a.Ops() != 1 || a.TotalExtraUS() != 0 {
		t.Fatalf("single-member op: ops=%d extra=%v", a.Ops(), a.TotalExtraUS())
	}
}

func TestAttributionJSONDeterministic(t *testing.T) {
	build := func() *Attribution {
		a := NewAttribution()
		src := prng.New(4, 0x77)
		members := make([]BlockKey, 4)
		lats := make([]float64, 4)
		for op := 0; op < 200; op++ {
			for i := range members {
				members[i] = BlockKey{Chip: int(src.Uint64() % 4), Plane: i % 2, Block: int(src.Uint64() % 16)}
				lats[i] = float64(src.Uint64() % 2000)
			}
			a.Record('p', op%4 == 0, op%2 == 0, members, lats)
		}
		return a
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteJSON(&b1, 10); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b2, 10); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("same record stream produced different JSON:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	if b1.Len() == 0 {
		t.Fatal("empty report")
	}
}

func TestExtraBucketEdges(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {0.5, 0}, {0.999, 0},
		{1, 1}, {1.9, 1},
		{2, 2}, {3.99, 2},
		{4, 3},
		{1024, 11},
		{math.MaxFloat64, attrBuckets - 1},
	}
	for _, c := range cases {
		if got := extraBucket(c.v); got != c.want {
			t.Fatalf("extraBucket(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

// BenchmarkAttributionRecord measures the steady-state cost of charging one
// multi-plane command: after the first touch of each block the per-block and
// per-lane entries exist, so the hot path is map lookups and accumulation.
func BenchmarkAttributionRecord(b *testing.B) {
	a := NewAttribution()
	const members = 8
	keys := make([]BlockKey, members)
	lats := make([]float64, members)
	for i := range keys {
		keys[i] = BlockKey{Chip: i % 4, Plane: i / 4, Block: 17}
		lats[i] = 700 + float64(i)*13
	}
	a.Record('p', false, true, keys, lats)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Record('p', i%3 == 0, i%2 == 0, keys, lats)
	}
}
