package ftl

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"superfast/internal/flash"
	"superfast/internal/prng"
	"superfast/internal/pv"
	"superfast/internal/telemetry"
)

func testArray(t testing.TB) *flash.Array {
	t.Helper()
	g := flash.TestGeometry()
	// Shrink further: FTL tests churn the whole logical space repeatedly.
	g.BlocksPerPlane = 12
	g.Layers = 12
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr, err := flash.NewArray(g, pv.New(p), flash.DefaultECC())
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

// testConfig returns DefaultConfig with enough overprovisioning headroom
// for the tiny test array (12 superblocks need a few spare ones for GC).
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Overprovision = 0.25
	return cfg
}

func newFTL(t testing.TB, cfg Config) *FTL {
	t.Helper()
	f, err := New(testArray(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func payload(lpn int64, gen int) []byte {
	return []byte(fmt.Sprintf("lpn-%d-gen-%d", lpn, gen))
}

func TestNewValidation(t *testing.T) {
	arr := testArray(t)
	bad := []Config{
		{Overprovision: -0.1, GCThreshold: 2, K: 4},
		{Overprovision: 0.95, GCThreshold: 2, K: 4},
		{Overprovision: 0.1, GCThreshold: 0, K: 4},
		{Overprovision: 0.1, GCThreshold: 2, K: 0},
	}
	for i, cfg := range bad {
		if _, err := New(arr, cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := newFTL(t, testConfig())
	for lpn := int64(0); lpn < 50; lpn++ {
		if _, err := f.Write(lpn, payload(lpn, 0)); err != nil {
			t.Fatal(err)
		}
	}
	for lpn := int64(0); lpn < 50; lpn++ {
		r, err := f.Read(lpn)
		if err != nil {
			t.Fatal(err)
		}
		if string(r.Data) != string(payload(lpn, 0)) {
			t.Fatalf("lpn %d: got %q", lpn, r.Data)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadFromBufferBeforeFlush(t *testing.T) {
	f := newFTL(t, testConfig())
	if _, err := f.Write(7, payload(7, 0)); err != nil {
		t.Fatal(err)
	}
	r, err := f.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	if !r.FromCache {
		t.Fatal("first page of an open super word-line should be served from buffer")
	}
	if string(r.Data) != string(payload(7, 0)) {
		t.Fatalf("got %q", r.Data)
	}
}

func TestOverwriteSupersedes(t *testing.T) {
	f := newFTL(t, testConfig())
	if _, err := f.Write(3, payload(3, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(3, payload(3, 1)); err != nil {
		t.Fatal(err)
	}
	r, err := f.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Data) != string(payload(3, 1)) {
		t.Fatalf("got %q, want generation 1", r.Data)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadErrors(t *testing.T) {
	f := newFTL(t, testConfig())
	if _, err := f.Read(-1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("got %v", err)
	}
	if _, err := f.Read(f.Capacity()); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("got %v", err)
	}
	if _, err := f.Read(0); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("got %v", err)
	}
}

func TestWriteErrors(t *testing.T) {
	f := newFTL(t, testConfig())
	if _, err := f.Write(-1, nil); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("got %v", err)
	}
	big := make([]byte, f.geo.PageSize+1)
	if _, err := f.Write(0, big); !errors.Is(err, ErrPayloadSize) {
		t.Fatalf("got %v", err)
	}
}

func TestTrim(t *testing.T) {
	f := newFTL(t, testConfig())
	if _, err := f.Write(5, payload(5, 0)); err != nil {
		t.Fatal(err)
	}
	if err := f.Trim(5); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(5); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("got %v", err)
	}
	if err := f.Trim(-1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("got %v", err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFlushPersists(t *testing.T) {
	f := newFTL(t, testConfig())
	if _, err := f.Write(9, payload(9, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := f.Read(9)
	if err != nil {
		t.Fatal(err)
	}
	if r.FromCache {
		t.Fatal("after Flush the page should come from flash")
	}
	if string(r.Data) != string(payload(9, 0)) {
		t.Fatalf("got %q", r.Data)
	}
}

// fillAndChurn writes the whole logical space once and then overwrites a
// fraction again, forcing garbage collection.
func fillAndChurn(t testing.TB, f *FTL, churn float64, seed uint64) map[int64]int {
	t.Helper()
	gen := make(map[int64]int)
	cap := f.Capacity()
	for lpn := int64(0); lpn < cap; lpn++ {
		if _, err := f.Write(lpn, payload(lpn, 0)); err != nil {
			t.Fatalf("fill lpn %d: %v", lpn, err)
		}
		gen[lpn] = 0
	}
	src := prng.New(seed, 0xc4)
	n := int(float64(cap) * churn)
	for i := 0; i < n; i++ {
		lpn := int64(src.Intn(int(cap)))
		gen[lpn]++
		if _, err := f.Write(lpn, payload(lpn, gen[lpn])); err != nil {
			t.Fatalf("churn write %d (lpn %d): %v", i, lpn, err)
		}
	}
	return gen
}

func TestGCPreservesData(t *testing.T) {
	for _, org := range []Organizer{QSTRMed, SequentialOrg, RandomOrg} {
		org := org
		t.Run(org.String(), func(t *testing.T) {
			cfg := testConfig()
			cfg.Organizer = org
			f := newFTL(t, cfg)
			gen := fillAndChurn(t, f, 1.5, 42)
			if f.Stats().GCRuns == 0 {
				t.Fatal("workload should have triggered GC")
			}
			if err := f.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// Spot check a deterministic sample of pages.
			src := prng.New(99)
			for i := 0; i < 200; i++ {
				lpn := int64(src.Intn(int(f.Capacity())))
				r, err := f.Read(lpn)
				if err != nil {
					t.Fatalf("read lpn %d: %v", lpn, err)
				}
				if string(r.Data) != string(payload(lpn, gen[lpn])) {
					t.Fatalf("lpn %d: got %q, want gen %d", lpn, r.Data, gen[lpn])
				}
			}
		})
	}
}

func TestWAFAboveOne(t *testing.T) {
	f := newFTL(t, testConfig())
	fillAndChurn(t, f, 1.0, 7)
	st := f.Stats()
	if st.WAF() <= 1 {
		t.Fatalf("WAF = %v, want > 1 after churn", st.WAF())
	}
	if st.WAF() > 10 {
		t.Fatalf("WAF = %v, implausibly high", st.WAF())
	}
}

func TestFunctionBasedPlacement(t *testing.T) {
	// Host data must land in fast superblocks and GC data in slow ones.
	f := newFTL(t, testConfig())
	fillAndChurn(t, f, 1.0, 11)
	fast, slow := 0, 0
	for _, sb := range f.sbs {
		switch sb.speed {
		case 0: // core.Fast
			fast++
		default:
			slow++
		}
	}
	if fast == 0 || slow == 0 {
		t.Fatalf("expected both fast (%d) and slow (%d) superblocks", fast, slow)
	}
}

func TestExtraLatencyLowerWithQSTRMed(t *testing.T) {
	// End-to-end: after identical workloads, the QSTR-MED-organized FTL
	// accumulates less extra program latency per flush than random.
	perFlush := func(org Organizer) float64 {
		cfg := testConfig()
		cfg.Organizer = org
		f := newFTL(t, cfg)
		fillAndChurn(t, f, 1.2, 21)
		st := f.Stats()
		return st.ExtraPgm / float64(st.Flushes)
	}
	q := perFlush(QSTRMed)
	r := perFlush(RandomOrg)
	if q >= r {
		t.Fatalf("QSTR-MED extra/flush (%v) should beat random (%v)", q, r)
	}
}

func TestHintPlacement(t *testing.T) {
	f := newFTL(t, testConfig())
	// A small-hinted write must take an LSB slot.
	if _, err := f.WriteHinted(0, payload(0, 0), HintSmall); err != nil {
		t.Fatal(err)
	}
	_, _, typ := f.ppnLocate(f.l2p[0])
	if typ != pv.LSB {
		t.Fatalf("small write landed on %v, want LSB", typ)
	}
	// A batch-hinted write must take an MSB slot.
	if _, err := f.WriteHinted(1, payload(1, 0), HintBatch); err != nil {
		t.Fatal(err)
	}
	_, _, typ = f.ppnLocate(f.l2p[1])
	if typ != pv.MSB {
		t.Fatalf("batch write landed on %v, want MSB", typ)
	}
}

func TestDeviceFullReported(t *testing.T) {
	cfg := testConfig()
	cfg.Overprovision = 0 // no spare space: the device must eventually fail
	f := newFTL(t, cfg)
	var err error
	for lpn := int64(0); lpn < f.Capacity(); lpn++ {
		if _, err = f.Write(lpn, payload(lpn, 0)); err != nil {
			break
		}
	}
	if err == nil {
		// Filling exactly to capacity can succeed; the next overwrite must
		// fail because nothing is reclaimable.
		for lpn := int64(0); lpn < f.Capacity(); lpn++ {
			if _, err = f.Write(lpn, payload(lpn, 1)); err != nil {
				break
			}
		}
	}
	if !errors.Is(err, ErrDeviceFull) {
		t.Fatalf("got %v, want ErrDeviceFull", err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	f := newFTL(t, testConfig())
	fillAndChurn(t, f, 0.5, 31)
	st := f.Stats()
	if st.HostWrites == 0 || st.Flushes == 0 {
		t.Fatalf("stats not accumulated: %+v", st)
	}
	if st.FlushLatency <= 0 {
		t.Fatal("flush latency missing")
	}
	if st.GCRuns > 0 && (st.EraseLatency <= 0 || st.GCWrites == 0) {
		t.Fatalf("GC stats inconsistent: %+v", st)
	}
}

func TestSchemeGathersDuringWrites(t *testing.T) {
	f := newFTL(t, testConfig())
	fillAndChurn(t, f, 0.2, 41)
	known := 0
	g := f.geo
	for lane := 0; lane < g.Lanes(); lane++ {
		chip, plane := g.LaneChipPlane(lane)
		for b := 0; b < g.BlocksPerPlane; b++ {
			if f.scheme.Known(flash.BlockAddr{Chip: chip, Plane: plane, Block: b}) {
				known++
			}
		}
	}
	if known == 0 {
		t.Fatal("the write path should have characterized some blocks")
	}
}

func TestOrganizerString(t *testing.T) {
	if QSTRMed.String() != "qstr-med" || SequentialOrg.String() != "sequential" || RandomOrg.String() != "random" {
		t.Fatal("organizer names wrong")
	}
	if Organizer(9).String() != "Organizer(9)" {
		t.Fatal("unknown organizer formatting wrong")
	}
}

func TestRandomWritesProperty(t *testing.T) {
	f := newFTL(t, testConfig())
	shadow := map[int64][]byte{}
	fn := func(ops []uint16) bool {
		for _, op := range ops {
			lpn := int64(op) % f.Capacity()
			data := payload(lpn, int(op))
			if _, err := f.Write(lpn, data); err != nil {
				return false
			}
			shadow[lpn] = data
			r, err := f.Read(lpn)
			if err != nil || string(r.Data) != string(data) {
				return false
			}
		}
		// All previously written pages still read back.
		for lpn, want := range shadow {
			r, err := f.Read(lpn)
			if err != nil || string(r.Data) != string(want) {
				return false
			}
		}
		return f.CheckInvariants() == nil
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFTLWrite(b *testing.B) {
	f := newFTL(b, testConfig())
	data := payload(0, 0)
	cap := f.Capacity()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Write(int64(i)%cap, data); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWearSummary(t *testing.T) {
	f := newFTL(t, testConfig())
	fillAndChurn(t, f, 1.0, 61)
	w := f.Wear()
	if w.MaxPE == 0 {
		t.Fatal("churn should have erased blocks")
	}
	if w.MinPE > w.MaxPE {
		t.Fatalf("wear summary inconsistent: %+v", w)
	}
	if w.MeanPE < float64(w.MinPE) || w.MeanPE > float64(w.MaxPE) {
		t.Fatalf("mean outside [min,max]: %+v", w)
	}
}

func TestReadRangeParallelCheaperThanSerial(t *testing.T) {
	f := newFTL(t, testConfig())
	// Write one full super word-line's worth of consecutive pages and flush.
	n := f.geo.Lanes() * flash.PagesPerLWL
	for lpn := 0; lpn < n; lpn++ {
		if _, err := f.Write(int64(lpn), payload(int64(lpn), 0)); err != nil {
			t.Fatal(err)
		}
	}
	// Serial read cost.
	var serial float64
	for lpn := 0; lpn < n; lpn++ {
		r, err := f.Read(int64(lpn))
		if err != nil {
			t.Fatal(err)
		}
		if string(r.Data) != string(payload(int64(lpn), 0)) {
			t.Fatalf("lpn %d corrupted", lpn)
		}
		serial += r.Latency
	}
	// Parallel superpage read cost.
	data, parallel, err := f.ReadRange(0, n)
	if err != nil {
		t.Fatal(err)
	}
	for lpn := 0; lpn < n; lpn++ {
		if string(data[lpn]) != string(payload(int64(lpn), 0)) {
			t.Fatalf("ReadRange lpn %d corrupted", lpn)
		}
	}
	if parallel >= serial/2 {
		t.Fatalf("superpage read (%v) should cost far less than serial (%v)", parallel, serial)
	}
}

func TestReadRangeBufferedAndErrors(t *testing.T) {
	f := newFTL(t, testConfig())
	if _, err := f.Write(0, payload(0, 0)); err != nil {
		t.Fatal(err)
	}
	// Page 0 is still buffered: served with zero flash latency.
	data, lat, err := f.ReadRange(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 0 || string(data[0]) != string(payload(0, 0)) {
		t.Fatalf("buffered range read: lat=%v data=%q", lat, data[0])
	}
	if _, _, err := f.ReadRange(0, 0); err == nil {
		t.Fatal("zero length should fail")
	}
	if _, _, err := f.ReadRange(-1, 2); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("got %v", err)
	}
	if _, _, err := f.ReadRange(1, 2); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("unmapped page: got %v", err)
	}
}

func TestVictimPolicyString(t *testing.T) {
	if Greedy.String() != "greedy" || CostBenefit.String() != "cost-benefit" || FIFO.String() != "fifo" {
		t.Fatal("policy names wrong")
	}
	if VictimPolicy(9).String() != "VictimPolicy(9)" {
		t.Fatal("unknown policy formatting wrong")
	}
}

func TestVictimPoliciesPreserveData(t *testing.T) {
	for _, pol := range []VictimPolicy{Greedy, CostBenefit, FIFO} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cfg := testConfig()
			cfg.Victim = pol
			f := newFTL(t, cfg)
			gen := fillAndChurn(t, f, 1.5, 83)
			if f.Stats().GCRuns == 0 {
				t.Fatal("churn should trigger GC")
			}
			if err := f.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			src := prng.New(3)
			for i := 0; i < 100; i++ {
				lpn := int64(src.Intn(int(f.Capacity())))
				r, err := f.Read(lpn)
				if err != nil {
					t.Fatalf("lpn %d: %v", lpn, err)
				}
				if string(r.Data) != string(payload(lpn, gen[lpn])) {
					t.Fatalf("lpn %d corrupted under %s", lpn, pol)
				}
			}
		})
	}
}

// skewedChurnWAF measures write amplification after hot/cold churn.
func skewedChurnWAF(t *testing.T, pol VictimPolicy) float64 {
	t.Helper()
	cfg := testConfig()
	cfg.Victim = pol
	f := newFTL(t, cfg)
	capacity := f.Capacity()
	for lpn := int64(0); lpn < capacity; lpn++ {
		if _, err := f.Write(lpn, payload(lpn, 0)); err != nil {
			t.Fatal(err)
		}
	}
	src := prng.New(91, 0x6c)
	hot := capacity / 10
	for i := 0; i < int(3*capacity); i++ {
		lpn := int64(src.Intn(int(hot)))
		if src.Float64() < 0.1 {
			lpn = hot + int64(src.Intn(int(capacity-hot)))
		}
		if _, err := f.Write(lpn, payload(lpn, i)); err != nil {
			t.Fatal(err)
		}
	}
	return f.Stats().WAF()
}

func TestCostBenefitBeatsFIFOOnSkew(t *testing.T) {
	// On hot/cold traffic the cost-benefit policy should not amplify more
	// than FIFO (which copies hot data indiscriminately).
	cb := skewedChurnWAF(t, CostBenefit)
	fifo := skewedChurnWAF(t, FIFO)
	if cb > fifo*1.05 {
		t.Fatalf("cost-benefit WAF %v should not exceed FIFO WAF %v", cb, fifo)
	}
}

func TestCollectOpsErrorReturnsPartialJournal(t *testing.T) {
	f := newFTL(t, testConfig())
	f.EnableOpJournal()
	sentinel := errors.New("request rejected mid-flight")
	ops, err := f.CollectOps(func() error {
		if _, werr := f.Write(1, payload(1, 0)); werr != nil {
			return werr
		}
		if _, ferr := f.Flush(); ferr != nil {
			return ferr
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the fn's error", err)
	}
	if len(ops) == 0 {
		t.Fatal("operations journalled before the failure must still be returned")
	}
	for _, op := range ops {
		if op.Kind != 'p' || op.Dur <= 0 {
			t.Fatalf("flush should journal programs with positive duration, got %+v", op)
		}
		if op.GC {
			t.Fatalf("host flush must not be attributed to GC: %+v", op)
		}
	}
	// The failed call must not leak ops into the next request's schedule.
	clean, err := f.CollectOps(func() error { return nil })
	if err != nil || len(clean) != 0 {
		t.Fatalf("journal not clean after failed request: %d ops, err %v", len(clean), err)
	}
}

func TestCollectOpsDiscardsStaleJournal(t *testing.T) {
	f := newFTL(t, testConfig())
	f.EnableOpJournal()
	// Ops journalled outside any CollectOps bracket (e.g. by a caller that
	// crashed between TakeOps drains) must not be charged to the next request.
	if _, err := f.Write(2, payload(2, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	ops, err := f.CollectOps(func() error { return nil })
	if err != nil || len(ops) != 0 {
		t.Fatalf("stale ops leaked into request: %d ops, err %v", len(ops), err)
	}
}

func TestCollectOpsRequiresJournalEnabled(t *testing.T) {
	f := newFTL(t, testConfig())
	ops, err := f.CollectOps(func() error {
		if _, werr := f.Write(3, payload(3, 0)); werr != nil {
			return werr
		}
		_, ferr := f.Flush()
		return ferr
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 0 {
		t.Fatalf("journal disabled, but CollectOps returned %d ops", len(ops))
	}
}

func TestMetricsCountersMatchStats(t *testing.T) {
	f := newFTL(t, testConfig())
	m := telemetry.New()
	f.SetMetrics(m)
	fillAndChurn(t, f, 1.0, 17)
	for lpn := int64(0); lpn < 20; lpn++ {
		if _, err := f.Read(lpn); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Stats()
	counters := map[string]uint64{
		"ftl.writes.host": st.HostWrites,
		"ftl.reads.host":  st.HostReads,
		"ftl.writes.gc":   st.GCWrites,
		"ftl.gc.runs":     st.GCRuns,
		"ftl.flushes":     st.Flushes,
		"ftl.erases":      st.Erases,
	}
	for name, want := range counters {
		if got := m.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d (must track Stats)", name, got, want)
		}
	}
	if st.GCRuns == 0 {
		t.Fatal("full churn should trigger GC")
	}
	fast := m.Counter("ftl.assemble.fast").Value()
	slow := m.Counter("ftl.assemble.slow").Value()
	if fast == 0 || slow == 0 {
		t.Fatalf("assemblies by speed class: fast=%d slow=%d, want both nonzero", fast, slow)
	}
}

func TestMetricsNilUnwires(t *testing.T) {
	f := newFTL(t, testConfig())
	m := telemetry.New()
	f.SetMetrics(m)
	if _, err := f.Write(0, payload(0, 0)); err != nil {
		t.Fatal(err)
	}
	before := m.Counter("ftl.writes.host").Value()
	if before != 1 {
		t.Fatalf("wired counter = %d, want 1", before)
	}
	f.SetMetrics(nil)
	if _, err := f.Write(1, payload(1, 0)); err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("ftl.writes.host").Value(); got != before {
		t.Fatalf("unwired FTL still bumped counter: %d", got)
	}
}

func TestGCAttributionInJournal(t *testing.T) {
	f := newFTL(t, testConfig())
	f.EnableOpJournal()
	fillAndChurn(t, f, 1.0, 23)
	if f.Stats().GCRuns == 0 {
		t.Fatal("full churn should trigger GC")
	}
	ops := f.TakeOps()
	var gcOps, hostOps int
	for _, op := range ops {
		if op.GC {
			gcOps++
		} else {
			hostOps++
		}
	}
	if gcOps == 0 {
		t.Fatal("GC ran but no journal entry carries the GC flag")
	}
	if hostOps == 0 {
		t.Fatal("host flushes should journal non-GC entries")
	}
	// Every erase happens inside collection; victim reads and relocation
	// programs carry the flag too.
	for _, op := range ops {
		if op.Kind == 'e' && !op.GC {
			t.Fatalf("erase outside GC attribution: %+v", op)
		}
	}
}
