// Command ftlstorm runs fault campaigns — "break it on purpose" drills that
// verify the cluster serves correct data while flash blocks die, chips drop
// out, power cuts mid-write and backends crash.
//
// Usage:
//
//	ftlstorm                                  # built-in smoke campaign, in-process
//	ftlstorm -spec campaign.json -workers 8   # declarative campaign from a file
//	ftlstorm -reproduce                       # run twice, demand byte-identical verdicts
//	ftlstorm -vol 127.0.0.1:8980 -backends 127.0.0.1:8970,127.0.0.1:8971,127.0.0.1:8972
//
// In-process mode (default) builds the whole cluster inside this process —
// N sequenced block services on loopback TCP, one striped volume on top —
// and executes the spec's event schedule under open-loop traffic
// (internal/scenario). Every number in the verdict table is a pure function
// of (spec, seed): -workers changes wall-clock concurrency only, and
// -reproduce proves it by running the campaign twice and comparing tables.
//
// External mode (-vol, -backends) drills a cluster that is already running:
// traffic flows through the ftlvol frontend at -vol, while faults are
// injected straight into the ftlserve backends (which must run -faults).
// The drill writes a working set, power-cuts one backend and verifies the
// restore from checkpoint, rewrites part of the set, then kills another
// backend outright (the "die" fault — the process exits) and verifies that
// every page is still served by the survivors. The last verdict line is
// `checked=N mismatches=M integrity=OK|FAIL`; CI greps it.
//
// Exit status: 0 when integrity (and, in-process, reproducibility) holds,
// 1 otherwise.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	"superfast/internal/scenario"
	"superfast/internal/server"
	"superfast/internal/server/client"
)

func main() {
	var (
		specPath  = flag.String("spec", "", "JSON campaign spec (default: the built-in smoke campaign)")
		seed      = flag.Uint64("seed", 0, "override the spec's seed (0 = keep)")
		workers   = flag.Int("workers", 4, "concurrent submitters (never changes the verdict)")
		reproduce = flag.Bool("reproduce", false, "run the campaign twice and demand byte-identical verdict tables")

		volAddr  = flag.String("vol", "", "external mode: block-service frontend (ftlvol) carrying the traffic")
		backends = flag.String("backends", "", "external mode: comma-separated ftlserve -faults addresses for direct fault injection")
		killIdx  = flag.Int("kill", 0, "external: backend index to crash with the die fault (-1 = skip)")
		cutIdx   = flag.Int("powercut", 1, "external: backend index to power-cut and restore (-1 = skip)")
		pages    = flag.Int64("pages", 256, "external: working-set size in logical pages")
		recover  = flag.Float64("recover-us", 5000, "external: power-cut outage on the simulated clock")
	)
	flag.Parse()

	if *volAddr != "" || *backends != "" {
		if *volAddr == "" || *backends == "" {
			fatalf("external mode needs both -vol and -backends")
		}
		ok, err := runExternal(*volAddr, splitAddrs(*backends), *killIdx, *cutIdx, *pages, *seed, *recover)
		if err != nil {
			fatalf("%v", err)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}

	spec := scenario.DefaultSpec()
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			fatalf("%v", err)
		}
		if spec, err = scenario.ParseSpec(data); err != nil {
			fatalf("%v", err)
		}
	}
	if *seed != 0 {
		spec.Seed = *seed
	}

	res, err := scenario.Run(spec, *workers)
	if err != nil {
		fatalf("%v", err)
	}
	table := res.Table()
	fmt.Print(table)
	ok := res.IntegrityOK()
	if t := res.Tenants; t != nil && !t.Isolated() {
		fmt.Fprintf(os.Stderr, "ftlstorm: tenant isolation DEGRADED (ratio %.3f)\n", t.Ratio)
		ok = false
	}
	if *reproduce {
		res2, err := scenario.Run(spec, *workers)
		if err != nil {
			fatalf("rerun: %v", err)
		}
		if t2 := res2.Table(); t2 != table {
			fmt.Fprintf(os.Stderr, "ftlstorm: NOT REPRODUCIBLE — rerun verdict differs:\n%s", t2)
			ok = false
		} else {
			fmt.Println("reproduce=OK")
		}
	}
	if !ok {
		os.Exit(1)
	}
}

func splitAddrs(s string) []string {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// stormDepth is the external drill's pipeline window per phase.
const stormDepth = 16

// payload renders the self-describing full-page payload of (lpn, version),
// so a stale page after a restore names the version it got stuck at.
func payload(pageSize int, seed uint64, lpn int64, version uint32) []byte {
	p := make([]byte, pageSize)
	copy(p, fmt.Sprintf("storm-%016x-l%08d-v%08d", seed, lpn, version))
	return p
}

// runExternal executes the kill-one-backend + power-cut drill against a live
// cluster: fill through the ftlvol frontend, power-cut one backend and verify
// the restore, rewrite part of the set, crash another backend and verify the
// survivors still serve everything. Returns the integrity verdict.
func runExternal(volAddr string, backends []string, killIdx, cutIdx int, pages int64, seed uint64, recoverUS float64) (bool, error) {
	if len(backends) == 0 {
		return false, fmt.Errorf("no backend addresses")
	}
	if killIdx >= len(backends) || cutIdx >= len(backends) {
		return false, fmt.Errorf("backend index out of range (%d backends)", len(backends))
	}
	if killIdx >= 0 && killIdx == cutIdx {
		return false, fmt.Errorf("-kill and -powercut must target different backends")
	}

	cl, err := client.Dial(volAddr)
	if err != nil {
		return false, fmt.Errorf("dial frontend %s: %w", volAddr, err)
	}
	defer cl.Close()
	snap, err := cl.Stat()
	if err != nil {
		return false, fmt.Errorf("stat %s: %w", volAddr, err)
	}
	if snap.Capacity < pages {
		pages = snap.Capacity
	}
	pageSize := snap.PageSize
	fmt.Printf("storm external seed=%d frontend=%s backends=%d pages=%d\n",
		seed, volAddr, len(backends), pages)

	// Every backend must accept fault injection before the drill starts —
	// failing halfway through would leave the cluster half-broken.
	for i, addr := range backends {
		bc, err := client.Dial(addr)
		if err != nil {
			return false, fmt.Errorf("dial backend %d (%s): %w", i, addr, err)
		}
		ok, ferr := bc.SupportsFault()
		bc.Close()
		if ferr != nil || !ok {
			return false, fmt.Errorf("backend %d (%s) does not accept faults — run ftlserve -faults (%v)", i, addr, ferr)
		}
	}

	version := make([]uint32, pages)
	checked, mismatches := 0, 0

	writeAll := func(lpns []int64) error {
		window := make([]*client.Call, 0, stormDepth)
		drain := func(n int) error {
			for len(window) > n {
				r, err := window[0].Wait()
				if err != nil {
					return err
				}
				if r.Status != server.StatusOK {
					return fmt.Errorf("write status %v", r.Status)
				}
				window = window[1:]
			}
			return nil
		}
		for _, lpn := range lpns {
			if err := drain(stormDepth - 1); err != nil {
				return err
			}
			version[lpn]++
			call, err := cl.Start(server.Frame{
				Op: server.OpWrite, LPN: lpn,
				Payload: payload(pageSize, seed, lpn, version[lpn]),
			})
			if err != nil {
				return err
			}
			window = append(window, call)
		}
		return drain(0)
	}

	sweep := func(label string) error {
		type pending struct {
			call *client.Call
			lpn  int64
		}
		window := make([]pending, 0, stormDepth)
		drain := func(n int) error {
			for len(window) > n {
				p := window[0]
				window = window[1:]
				r, err := p.call.Wait()
				if err != nil {
					return err
				}
				if r.Status != server.StatusOK {
					return fmt.Errorf("lpn %d: read status %v", p.lpn, r.Status)
				}
				checked++
				if !bytes.Equal(r.Payload, payload(pageSize, seed, p.lpn, version[p.lpn])) {
					mismatches++
					fmt.Fprintf(os.Stderr, "ftlstorm: %s: lpn %d stale/corrupt (want v%d)\n", label, p.lpn, version[p.lpn])
				}
				return nil
			}
			return nil
		}
		for lpn := int64(0); lpn < pages; lpn++ {
			if err := drain(stormDepth - 1); err != nil {
				return err
			}
			call, err := cl.Start(server.Frame{Op: server.OpRead, LPN: lpn})
			if err != nil {
				return err
			}
			window = append(window, pending{call, lpn})
		}
		for len(window) > 0 {
			if err := drain(0); err != nil {
				return err
			}
		}
		return nil
	}

	// Phase 1: fill the working set through the frontend, full fan-out.
	lpns := make([]int64, pages)
	for i := range lpns {
		lpns[i] = int64(i)
	}
	if err := writeAll(lpns); err != nil {
		return false, fmt.Errorf("fill: %w", err)
	}
	if _, err := cl.Do(server.Frame{Op: server.OpFlush}); err != nil {
		return false, fmt.Errorf("flush: %w", err)
	}

	// Phase 2: power-cut one backend — checkpoint, cycle, restore — then
	// verify every page reads back at its current version.
	if cutIdx >= 0 {
		bc, err := client.Dial(backends[cutIdx])
		if err != nil {
			return false, fmt.Errorf("dial backend %d: %w", cutIdx, err)
		}
		rep, err := bc.Fault(server.FaultRequest{Kind: "power-cut", RecoverUS: recoverUS})
		bc.Close()
		if err != nil {
			return false, fmt.Errorf("power-cut backend %d: %w", cutIdx, err)
		}
		fmt.Printf("event power-cut/b%d: cut_at=%.3f recovered_at=%.3f checkpoint_bytes=%d\n",
			cutIdx, rep.CutAt, rep.RecoveredAt, rep.CheckpointBytes)
		if err := sweep("post-powercut"); err != nil {
			return false, fmt.Errorf("post-powercut sweep: %w", err)
		}
	}

	// Phase 3: dirty a quarter of the set so the kill phase proves the
	// survivors hold fresh data, not just the original fill.
	dirty := lpns[:len(lpns)/4]
	if len(dirty) > 0 {
		if err := writeAll(dirty); err != nil {
			return false, fmt.Errorf("rewrite: %w", err)
		}
		if _, err := cl.Do(server.Frame{Op: server.OpFlush}); err != nil {
			return false, fmt.Errorf("flush: %w", err)
		}
	}

	// Phase 4: crash one backend outright. The die fault makes the process
	// exit, so the response may be lost — only a refusal is an error. The
	// frontend's read failover must then serve every page from the replicas.
	if killIdx >= 0 {
		bc, err := client.Dial(backends[killIdx])
		if err != nil {
			return false, fmt.Errorf("dial backend %d: %w", killIdx, err)
		}
		_, ferr := bc.Fault(server.FaultRequest{Kind: "die"})
		bc.Close()
		if ferr != nil && strings.Contains(ferr.Error(), "status") {
			return false, fmt.Errorf("die backend %d: %w", killIdx, ferr)
		}
		fmt.Printf("event die/b%d: killed\n", killIdx)
		if err := sweep("post-kill"); err != nil {
			return false, fmt.Errorf("post-kill sweep: %w", err)
		}
	}

	verdict := "OK"
	if mismatches > 0 {
		verdict = "FAIL"
	}
	fmt.Printf("checked=%d mismatches=%d integrity=%s\n", checked, mismatches, verdict)
	return mismatches == 0, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ftlstorm: "+format+"\n", args...)
	os.Exit(1)
}
