package volume

import (
	"testing"
)

// FuzzVolumePlacement drives the placement layer through construction, an
// add-rebalance and a remove-rebalance with fuzzed geometry, checking the
// core invariants at every step: each logical page maps to Replicas copies
// on distinct backends, every copy reverses to its page, no two pages share
// a shard page, and rebalances relocate only their planned units.
func FuzzVolumePlacement(f *testing.F) {
	// Seed corpus: the shapes the tests and the smoke leg exercise.
	f.Add(int64(96), int64(4), uint8(3), uint8(1), int64(16))
	f.Add(int64(60), int64(5), uint8(4), uint8(2), int64(8))
	f.Add(int64(64), int64(8), uint8(8), uint8(3), int64(4))
	f.Add(int64(48), int64(2), uint8(3), uint8(1), int64(24))
	f.Add(int64(7), int64(3), uint8(2), uint8(1), int64(4))
	f.Add(int64(1), int64(1), uint8(1), uint8(1), int64(1))

	f.Fuzz(func(t *testing.T, space, stripe int64, backends, replicas uint8, slots int64) {
		// Clamp to a tractable exhaustive-check size.
		if space < 1 || space > 512 || stripe < 1 || stripe > 64 ||
			backends < 1 || backends > 12 || replicas < 1 ||
			slots < 1 || slots > 512 {
			t.Skip()
		}
		caps := make([]int64, backends)
		for i := range caps {
			caps[i] = slots
		}
		p, err := NewPlacement(space, stripe, caps, int(replicas))
		if err != nil {
			return // invalid geometry is allowed to fail, not to panic
		}
		checkPlacementInvariants(t, p)

		// Add a backend and commit the planned rebalance.
		before := snapshotLayout(p)
		nb, moves, err := p.BeginAdd(slots)
		if err != nil {
			t.Fatalf("BeginAdd: %v", err)
		}
		planned := make(map[int64]bool)
		for _, m := range moves {
			if m.To != nb {
				t.Fatalf("add move %+v does not target the new backend", m)
			}
			if planned[m.Unit] {
				t.Fatalf("unit %d planned twice", m.Unit)
			}
			planned[m.Unit] = true
			if err := p.Commit(m); err != nil {
				t.Fatalf("commit %+v: %v", m, err)
			}
		}
		after := snapshotLayout(p)
		for u, locs := range before {
			if planned[u] {
				continue
			}
			for k := range locs {
				if after[u][k] != locs[k] {
					t.Fatalf("unplanned unit %d moved: %+v → %+v", u, locs, after[u])
				}
			}
		}
		checkPlacementInvariants(t, p)

		// Remove backend 0 when the replica floor allows it.
		if int(backends)+1-1 >= int(replicas) {
			rm, err := p.BeginRemove(0)
			if err != nil {
				// Legitimate when survivors lack capacity; never a panic.
				return
			}
			for _, m := range rm {
				if m.From != 0 {
					t.Fatalf("remove move %+v does not leave backend 0", m)
				}
				if err := p.Commit(m); err != nil {
					t.Fatalf("commit %+v: %v", m, err)
				}
			}
			if p.SlotsUsed(0) != 0 {
				t.Fatalf("removed backend still holds %d slots", p.SlotsUsed(0))
			}
			checkPlacementInvariants(t, p)
		}
	})
}
