package server

import (
	"errors"
	"sync"
	"time"

	"superfast/internal/telemetry"
)

// Admission outcomes. errDraining rejects work that had not been admitted
// when shutdown began; errDeadline rejects work whose admission wait
// exceeded the configured per-request deadline.
var (
	errDraining = errors.New("server: draining, request rejected")
	errDeadline = errors.New("server: admission deadline exceeded")
)

// admission is the shared controller every data request passes through
// before touching the device. It enforces the global in-flight cap and — in
// sequenced replay mode — grants slots in strict ticket (Seq) order, so a
// later ticket can never starve an earlier one of the last slot (the
// deadlock a naive cap would allow when tickets are spread across
// connections). Callers block in acquire; because the caller is a connection
// reader, a full server stops reading sockets instead of buffering requests,
// and TCP backpressure propagates to the clients.
type admission struct {
	mu   sync.Mutex
	cond *sync.Cond

	cap      int // global in-flight cap
	inFlight int
	seqNext  uint64              // next ticket to grant, sequenced mode only
	skipped  map[uint64]struct{} // rejected tickets ahead of seqNext
	draining bool

	// Per-tenant in-flight quotas (setTenantCaps): tenant t (1-based)
	// blocks while tenIn[t-1] >= tenCap[t-1]. A cap of 0 means unlimited.
	tenCap []int
	tenIn  []int

	gauge    *telemetry.Gauge   // optional "srv.inflight" mirror
	tenGauge []*telemetry.Gauge // optional per-tenant in-flight mirrors
}

// setTenantCaps installs the per-tenant in-flight quotas. Call before
// serving traffic.
func (a *admission) setTenantCaps(caps []int) {
	a.mu.Lock()
	a.tenCap = caps
	a.tenIn = make([]int, len(caps))
	a.tenGauge = make([]*telemetry.Gauge, len(caps))
	a.mu.Unlock()
}

func newAdmission(capacity int) *admission {
	a := &admission{cap: capacity, skipped: make(map[uint64]struct{})}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// acquire blocks until a slot frees (and, when sequenced, until seq is the
// next ticket; and, for a quota'd tenant, until the tenant is under its
// cap), the deadline passes, or the server drains. A zero deadline waits
// forever. tenant is the 1-based tenant id, 0 for untenanted requests.
func (a *admission) acquire(seq uint64, sequenced bool, deadline time.Time, tenant int) error {
	var timer *time.Timer
	if !deadline.IsZero() {
		// cond.Wait has no timeout; a timer broadcast wakes the waiters so
		// they can observe the expired deadline themselves.
		timer = time.AfterFunc(time.Until(deadline), func() {
			a.mu.Lock()
			a.cond.Broadcast()
			a.mu.Unlock()
		})
		defer timer.Stop()
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		if a.draining {
			if sequenced {
				a.retireSeq(seq)
			}
			return errDraining
		}
		blocked := a.inFlight >= a.cap || (sequenced && seq != a.seqNext)
		if !blocked && tenant > 0 && tenant <= len(a.tenCap) && a.tenCap[tenant-1] > 0 {
			blocked = a.tenIn[tenant-1] >= a.tenCap[tenant-1]
		}
		if !blocked {
			break
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			if sequenced {
				a.retireSeq(seq)
			}
			return errDeadline
		}
		a.cond.Wait()
	}
	a.inFlight++
	if tenant > 0 && tenant <= len(a.tenIn) {
		a.tenIn[tenant-1]++
		if g := a.tenGauge[tenant-1]; g != nil {
			g.Add(1)
		}
	}
	if sequenced {
		a.seqNext = seq + 1
		a.advanceSkipped()
		// Order changed, not just occupancy: wake everyone so the next
		// ticket's waiter (who may not be the longest sleeper) re-checks.
		a.cond.Broadcast()
	}
	if a.gauge != nil {
		a.gauge.Add(1)
	}
	return nil
}

// retireSeq consumes a rejected ticket's position in the grant order so the
// replay chain does not wedge behind it: the head ticket advances the cursor
// directly, a ticket still ahead of the cursor is remembered and skipped
// when the cursor reaches it. Caller holds a.mu, and must also retire the
// ticket at the device (an empty SubmitBatchTicket).
func (a *admission) retireSeq(seq uint64) {
	if seq == a.seqNext {
		a.seqNext = seq + 1
		a.advanceSkipped()
		a.cond.Broadcast()
	} else if seq > a.seqNext {
		a.skipped[seq] = struct{}{}
	}
}

// advanceSkipped walks the cursor over tickets rejected before their turn.
// Caller holds a.mu.
func (a *admission) advanceSkipped() {
	for {
		if _, ok := a.skipped[a.seqNext]; !ok {
			return
		}
		delete(a.skipped, a.seqNext)
		a.seqNext++
	}
}

// release frees one slot. tenant is the 1-based tenant id the slot was
// acquired under, 0 for untenanted requests.
func (a *admission) release(tenant int) {
	a.mu.Lock()
	a.inFlight--
	if tenant > 0 && tenant <= len(a.tenIn) {
		a.tenIn[tenant-1]--
		if g := a.tenGauge[tenant-1]; g != nil {
			g.Add(-1)
		}
	}
	if a.gauge != nil {
		a.gauge.Add(-1)
	}
	a.cond.Broadcast()
	a.mu.Unlock()
}

// retire consumes a rejected sequenced ticket's position in the grant order
// without ever admitting it (pre-admission rejects: bad tenant, LPN out of
// range). The caller must also retire the ticket at the device.
func (a *admission) retire(seq uint64) {
	a.mu.Lock()
	a.retireSeq(seq)
	a.mu.Unlock()
}

// drain flips the controller into rejection mode: blocked and future
// acquires fail with errDraining; slots already granted are unaffected.
func (a *admission) drain() {
	a.mu.Lock()
	a.draining = true
	a.cond.Broadcast()
	a.mu.Unlock()
}

// load returns the current in-flight count.
func (a *admission) load() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inFlight
}
