// Package workload generates deterministic host I/O streams for the SSD
// simulator: sequential and uniform-random writes, hot/cold (zipf-like)
// mixes, read/write blends with placement hints, and a tiny CSV trace
// format for replaying captured access patterns.
package workload

import (
	"fmt"
	"io"
	"math"
	"strconv"

	"superfast/internal/ftl"
	"superfast/internal/prng"
	"superfast/internal/ssd"
)

// Generator produces host requests until exhausted.
type Generator interface {
	// Next returns the next request; ok is false when the stream ends.
	Next() (req ssd.Request, ok bool)
}

// Sequential writes pages 0..N-1 in order.
type Sequential struct {
	N       int64
	PageLen int  // payload bytes per page
	Reuse   bool // see the Reuse doc on payload
	buf     []byte
	next    int64
}

// Next implements Generator.
func (s *Sequential) Next() (ssd.Request, bool) {
	if s.next >= s.N {
		return ssd.Request{}, false
	}
	lpn := s.next
	s.next++
	return ssd.Request{Kind: ssd.OpWrite, LPN: lpn, Data: payload(&s.buf, s.Reuse, lpn, s.PageLen)}, true
}

// Uniform writes Count pages uniformly at random in [0, Space).
type Uniform struct {
	Space   int64
	Count   int64
	PageLen int
	Seed    uint64
	Reuse   bool // see the Reuse doc on payload
	buf     []byte
	src     *prng.Source
	done    int64
}

// Next implements Generator.
func (u *Uniform) Next() (ssd.Request, bool) {
	if u.done >= u.Count {
		return ssd.Request{}, false
	}
	if u.src == nil {
		u.src = prng.New(u.Seed, 0x10ad)
	}
	u.done++
	lpn := int64(u.src.Intn(int(u.Space)))
	return ssd.Request{Kind: ssd.OpWrite, LPN: lpn, Data: payload(&u.buf, u.Reuse, lpn, u.PageLen)}, true
}

// HotCold sends HotFrac of the operations to the hottest HotSpace fraction
// of the address space (the classic 80/20 skew), marking hot writes as
// small-random (HintSmall) and cold writes as batch (HintBatch) — the
// workload shape that §V-D's page-type-aware placement targets.
type HotCold struct {
	Space    int64
	Count    int64
	HotFrac  float64 // fraction of ops hitting the hot region (e.g. 0.8)
	HotSpace float64 // fraction of the space that is hot (e.g. 0.2)
	PageLen  int
	Seed     uint64
	Reuse    bool // see the Reuse doc on payload
	buf      []byte
	src      *prng.Source
	done     int64
}

// Next implements Generator.
func (h *HotCold) Next() (ssd.Request, bool) {
	if h.done >= h.Count {
		return ssd.Request{}, false
	}
	if h.src == nil {
		h.src = prng.New(h.Seed, 0x407c)
	}
	h.done++
	hotN := int64(float64(h.Space) * h.HotSpace)
	if hotN < 1 {
		hotN = 1
	}
	var lpn int64
	var hint ftl.Hint
	if h.src.Float64() < h.HotFrac {
		lpn = int64(h.src.Intn(int(hotN)))
		hint = ftl.HintSmall
	} else {
		lpn = hotN + int64(h.src.Intn(int(h.Space-hotN)))
		hint = ftl.HintBatch
	}
	return ssd.Request{Kind: ssd.OpWrite, LPN: lpn, Data: payload(&h.buf, h.Reuse, lpn, h.PageLen), Hint: hint}, true
}

// Mixed interleaves reads and writes over a pre-filled address space.
type Mixed struct {
	Space     int64
	Count     int64
	ReadFrac  float64
	PageLen   int
	Seed      uint64
	Reuse     bool // see the Reuse doc on payload
	buf       []byte
	src       *prng.Source
	done      int64
	written   map[int64]bool
	writeSeen []int64
}

// Next implements Generator.
func (m *Mixed) Next() (ssd.Request, bool) {
	if m.done >= m.Count {
		return ssd.Request{}, false
	}
	if m.src == nil {
		m.src = prng.New(m.Seed, 0x3413)
		m.written = make(map[int64]bool)
	}
	m.done++
	if m.src.Float64() < m.ReadFrac && len(m.writeSeen) > 0 {
		lpn := m.writeSeen[m.src.Intn(len(m.writeSeen))]
		return ssd.Request{Kind: ssd.OpRead, LPN: lpn}, true
	}
	lpn := int64(m.src.Intn(int(m.Space)))
	if !m.written[lpn] {
		m.written[lpn] = true
		m.writeSeen = append(m.writeSeen, lpn)
	}
	return ssd.Request{Kind: ssd.OpWrite, LPN: lpn, Data: payload(&m.buf, m.Reuse, lpn, m.PageLen)}, true
}

// fill builds a small deterministic payload for a page: "pg-<lpn>" zero
// padded (or truncated) to n bytes.
func fill(lpn int64, n int) []byte {
	if n <= 0 {
		n = 16
	}
	return fillInto(make([]byte, n), lpn)
}

// fillInto stamps fill's encoding over the (zeroed) buffer and returns it.
func fillInto(b []byte, lpn int64) []byte {
	var tmp [24]byte
	copy(b, strconv.AppendInt(append(tmp[:0], 'p', 'g', '-'), lpn, 10))
	return b
}

// payload serves a generator's next page payload. With reuse unset every
// call returns a fresh buffer. With reuse set the generator's scratch buffer
// is stamped in place — the payload bytes are identical, but the slice is
// only valid until the next call, so Reuse may be enabled ONLY when the
// driver consumes the payload before asking for the next request: the serial
// ssd.Device qualifies (it copies at submit entry), the ConcurrentDevice
// does not (zero-copy BorrowHost retains the slice in the flash array).
func payload(buf *[]byte, reuse bool, lpn int64, n int) []byte {
	if !reuse {
		return fill(lpn, n)
	}
	if n <= 0 {
		n = 16
	}
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	b := (*buf)[:n]
	for i := range b {
		b[i] = 0
	}
	return fillInto(b, lpn)
}

// Run drives a generator through a device, returning the completions.
// It stops at the first error.
func Run(dev *ssd.Device, g Generator) ([]ssd.Completion, error) {
	var out []ssd.Completion
	for {
		req, ok := g.Next()
		if !ok {
			return out, nil
		}
		c, err := dev.Submit(req)
		if err != nil {
			return out, fmt.Errorf("workload: op %d: %w", len(out), err)
		}
		out = append(out, c)
	}
}

// ParseTrace reads a CSV trace of "op,lpn" lines (op: w/r/t; '#' comments
// and blank lines ignored) and returns the requests. Errors carry the
// 1-based line number of the offending record.
func ParseTrace(r io.Reader, pageLen int) ([]ssd.Request, error) {
	var out []ssd.Request
	err := scanTrace(r, func(line int, fields []string) error {
		req, err := parseSimpleLine(line, fields, pageLen)
		if err != nil {
			return err
		}
		out = append(out, req)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Paced wraps a generator with open-loop arrivals: requests are spaced by
// exponential interarrival times with the given mean (µs), the standard
// Poisson arrival model for device-level queueing studies.
type Paced struct {
	Gen       Generator
	MeanGapUS float64
	Seed      uint64
	src       *prng.Source
	clock     float64
}

// Next implements Generator.
func (p *Paced) Next() (ssd.Request, bool) {
	req, ok := p.Gen.Next()
	if !ok {
		return req, false
	}
	if p.src == nil {
		p.src = prng.New(p.Seed, 0x9ace)
	}
	gap := p.MeanGapUS
	if gap <= 0 {
		gap = 100
	}
	p.clock += exponential(p.src, gap)
	req.Arrival = p.clock
	return req, true
}

// exponential draws from an exponential distribution with the given mean.
func exponential(src *prng.Source, mean float64) float64 {
	u := src.Float64()
	if u <= 0 {
		u = 1e-12
	}
	return -mean * math.Log(1-u)
}
