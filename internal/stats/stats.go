// Package stats provides the small statistics and rendering toolkit the
// experiment harness uses: summaries, histograms, CDF points, and plain-text
// / CSV table rendering in the shape of the paper's tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the moments and order statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P95    float64
	P99    float64
	P999   float64
}

// Summarize computes a Summary of the sample. An empty sample yields zeros.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	// Welford's one-pass moments: the textbook sumSq−mean² form cancels
	// catastrophically on large-offset samples (microsecond clocks reach
	// 1e12 in long runs, squaring to 1e24 — past float64's 15–16 digits),
	// where it returns a zero or garbage variance.
	var mean, m2 float64
	for i, v := range xs {
		delta := v - mean
		mean += delta / float64(i+1)
		m2 += delta * (v - mean)
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = mean
	s.Std = math.Sqrt(m2 / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P95 = Quantile(sorted, 0.95)
	s.P99 = Quantile(sorted, 0.99)
	s.P999 = Quantile(sorted, 0.999)
	return s
}

// Quantile returns the q-quantile (0..1) of an ascending-sorted sample,
// with linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-width-bin histogram.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // samples below Lo
	Over   int // samples at or above Hi
}

// NewHistogram builds a histogram of xs with the given number of bins over
// [lo, hi). Bad parameters (bins <= 0, an empty or inverted range, or
// non-finite bounds) return an error rather than panicking, so a malformed
// experiment configuration cannot crash a long sweep.
func NewHistogram(xs []float64, lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs a positive bin count, got %d", bins)
	}
	if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) is not finite", lo, hi)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) is empty", lo, hi)
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	width := (hi - lo) / float64(bins)
	for _, v := range xs {
		switch {
		case v < lo:
			h.Under++
		case v >= hi:
			h.Over++
		default:
			h.Counts[int((v-lo)/width)]++
		}
	}
	return h, nil
}

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}

// Total returns the number of samples inside the histogram range.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Render draws the histogram as rows of "center count bar" text, the shape
// of the paper's Fig. 13 distribution plot.
func (h *Histogram) Render(width int) string {
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if max > 0 {
			bar = c * width / max
		}
		fmt.Fprintf(&b, "%12.1f %6d %s\n", h.BinCenter(i), c, strings.Repeat("#", bar))
	}
	return b.String()
}

// Table is a simple column-aligned text table with a CSV rendering.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// FmtUS formats a microsecond quantity the way the paper prints it
// (thousands separators, two decimals): 13,084.17.
func FmtUS(v float64) string {
	neg := v < 0
	if neg {
		v = -v
	}
	whole := int64(v)
	frac := v - float64(whole)
	digits := fmt.Sprintf("%d", whole)
	var b strings.Builder
	if neg {
		b.WriteByte('-')
	}
	for i, d := range digits {
		if i > 0 && (len(digits)-i)%3 == 0 {
			b.WriteByte(',')
		}
		b.WriteRune(d)
	}
	fmt.Fprintf(&b, ".%02d", int(math.Round(frac*100))%100)
	return b.String()
}

// FmtPct formats a ratio as a percentage with two decimals: 16.61%.
func FmtPct(ratio float64) string {
	return fmt.Sprintf("%.2f%%", ratio*100)
}

// Improvement returns the relative reduction of v versus the baseline:
// (baseline − v) / baseline. A zero or non-finite baseline yields 0 instead
// of dividing by it.
func Improvement(baseline, v float64) float64 {
	if baseline == 0 || math.IsNaN(baseline) || math.IsInf(baseline, 0) {
		return 0
	}
	return (baseline - v) / baseline
}

// Series is a named (x, y) sequence — one line of a paper figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// SeriesCSV renders the series as CSV with a header row.
func SeriesCSV(xLabel string, series []Series) string {
	var b strings.Builder
	b.WriteString(xLabel)
	for _, s := range series {
		b.WriteByte(',')
		b.WriteString(strings.ReplaceAll(s.Name, ",", ";"))
	}
	b.WriteByte('\n')
	if len(series) == 0 {
		return b.String()
	}
	for i := range series[0].X {
		fmt.Fprintf(&b, "%g", series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, ",%.4f", s.Y[i])
			} else {
				b.WriteByte(',')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderSeries prints one row per x with a column per series, the shape used
// for the paper's line figures (Fig. 14, Fig. 15).
func RenderSeries(xLabel string, series []Series) string {
	var b strings.Builder
	b.WriteString(xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "\t%s", s.Name)
	}
	b.WriteByte('\n')
	if len(series) == 0 {
		return b.String()
	}
	for i := range series[0].X {
		fmt.Fprintf(&b, "%g", series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, "\t%.2f", s.Y[i])
			} else {
				b.WriteString("\t")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
