package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. Safe for concurrent
// use; an Add is one atomic instruction, so counters can sit on hot paths.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a point-in-time float value. Safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits of the current value
	max  atomic.Uint64 // high-watermark, same encoding
}

// Set stores v and folds it into the high-watermark.
func (g *Gauge) Set(v float64) {
	g.bits.Store(math.Float64bits(v))
	g.bump(v)
}

// Add adjusts the gauge by delta (CAS loop) and folds the result into the
// high-watermark. Returns the new value.
func (g *Gauge) Add(delta float64) float64 {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			g.bump(v)
			return v
		}
	}
}

func (g *Gauge) bump(v float64) {
	for {
		old := g.max.Load()
		if v <= math.Float64frombits(old) && old != 0 {
			return
		}
		if g.max.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Max returns the highest value the gauge has held.
func (g *Gauge) Max() float64 { return math.Float64frombits(g.max.Load()) }

// Metrics is a named registry of counters, gauges and latency digests.
// Lookup is mutex-guarded and idempotent (the same name always returns the
// same instance); hot paths should look metrics up once and cache the
// pointer, as the FTL and device front ends do.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	digests  map[string]*Digest
}

// New returns an empty metrics registry.
func New() *Metrics {
	return &Metrics{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		digests:  make(map[string]*Digest),
	}
}

// Counter returns the counter with the given name, creating it on first use.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (m *Metrics) Gauge(name string) *Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.gauges[name]
	if g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Digest returns the latency digest with the given name, creating it on
// first use.
func (m *Metrics) Digest(name string) *Digest {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.digests[name]
	if d == nil {
		d = NewDigest()
		m.digests[name] = d
	}
	return d
}

// CounterValue is one counter reading in a structured export.
type CounterValue struct {
	Name  string
	Value uint64
}

// GaugeValue is one gauge reading (current value + high-watermark) in a
// structured export.
type GaugeValue struct {
	Name  string
	Value float64
	Max   float64
}

// DigestValue is one digest reading in a structured export.
type DigestValue struct {
	Name     string
	Snapshot DigestSnapshot
}

// Export is a typed registry snapshot, each section sorted by name. Unlike
// Snapshot it preserves metric kinds, which exposition formats (Prometheus
// text format, the flight recorder) need.
type Export struct {
	Counters []CounterValue
	Gauges   []GaugeValue
	Digests  []DigestValue
}

// Export returns a typed, name-sorted snapshot of the registry.
func (m *Metrics) Export() Export {
	m.mu.Lock()
	defer m.mu.Unlock()
	var e Export
	for name, c := range m.counters {
		e.Counters = append(e.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, g := range m.gauges {
		e.Gauges = append(e.Gauges, GaugeValue{Name: name, Value: g.Value(), Max: g.Max()})
	}
	for name, d := range m.digests {
		e.Digests = append(e.Digests, DigestValue{Name: name, Snapshot: d.Snapshot()})
	}
	sort.Slice(e.Counters, func(i, j int) bool { return e.Counters[i].Name < e.Counters[j].Name })
	sort.Slice(e.Gauges, func(i, j int) bool { return e.Gauges[i].Name < e.Gauges[j].Name })
	sort.Slice(e.Digests, func(i, j int) bool { return e.Digests[i].Name < e.Digests[j].Name })
	return e
}

// Value is one flattened metric reading.
type Value struct {
	Name  string
	Value float64
	// Count marks readings that are integral event counts (rendered without
	// decimals).
	Count bool
}

// Snapshot flattens the registry into a name-sorted list of readings.
// Counters contribute one entry; gauges contribute the current value plus a
// ".max" watermark when it differs; digests are expanded into
// .n/.mean/.std/.min/.max/.p50/.p95/.p99.
func (m *Metrics) Snapshot() []Value {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Value
	for name, c := range m.counters {
		out = append(out, Value{Name: name, Value: float64(c.Value()), Count: true})
	}
	for name, g := range m.gauges {
		v, mx := g.Value(), g.Max()
		out = append(out, Value{Name: name, Value: v})
		if mx != v {
			out = append(out, Value{Name: name + ".max", Value: mx})
		}
	}
	for name, d := range m.digests {
		s := d.Snapshot()
		out = append(out,
			Value{Name: name + ".n", Value: float64(s.N), Count: true},
			Value{Name: name + ".mean", Value: s.Mean},
			Value{Name: name + ".std", Value: s.Std},
			Value{Name: name + ".min", Value: s.Min},
			Value{Name: name + ".max", Value: s.Max},
			Value{Name: name + ".p50", Value: s.P50},
			Value{Name: name + ".p95", Value: s.P95},
			Value{Name: name + ".p99", Value: s.P99},
		)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
