package experiments

import (
	"fmt"

	"superfast/internal/assembly"
	"superfast/internal/chamber"
	"superfast/internal/core"
	"superfast/internal/flash"
	"superfast/internal/pv"
	"superfast/internal/stats"
)

func init() {
	register("temperature", runTemperature)
}

// runTemperature checks cross-temperature robustness (the thermal-chamber
// axis of the paper's platform): superblocks are organized from a
// characterization at the reference temperature (25 °C) and then scored at
// other operating points. Chips have individual temperature sensitivities,
// so this asks whether QSTR-MED's grouping survives a condition it never
// observed.
func runTemperature(cfg Config) (*Result, error) {
	makeBed := func(temp float64) (*chamber.Testbed, error) {
		p := cfg.PV
		p.Seed = cfg.Seed
		p.Temperature = temp
		arr, err := flash.NewArray(cfg.Geometry, pv.New(p), flash.DefaultECC())
		if err != nil {
			return nil, err
		}
		return chamber.New(arr), nil
	}
	groups := cfg.groups()
	if len(groups) == 0 {
		return nil, fmt.Errorf("experiments: no lane groups")
	}
	grp := groups[0]
	blocks := chamber.BlockRange(0, cfg.BlocksPerLane)

	ref, err := makeBed(cfg.PV.TempRef)
	if err != nil {
		return nil, err
	}
	trainLanes, err := ref.MeasureGroup(grp, blocks, cfg.PESteps[0], true)
	if err != nil {
		return nil, err
	}
	strategies := []assembly.Assembler{
		assembly.Random{Seed: cfg.Seed + 1},
		core.BatchAssembler{K: cfg.MedWindow},
	}
	organized := make(map[string][][]int, len(strategies))
	for _, s := range strategies {
		res, err := s.Assemble(trainLanes)
		if err != nil {
			return nil, err
		}
		organized[s.Name()] = res.Superblocks
	}

	t := &stats.Table{
		Title:   "Cross-temperature robustness (organized at 25 °C)",
		Headers: []string{"Temp °C", "Random extra PGM", "QSTR-MED extra PGM", "Imp. %"},
	}
	for _, temp := range []float64{0, 25, 50, 70} {
		bed, err := makeBed(temp)
		if err != nil {
			return nil, err
		}
		evalLanes, err := bed.MeasureGroup(grp, blocks, cfg.PESteps[0], true)
		if err != nil {
			return nil, err
		}
		mRand, err := assembly.Evaluate(evalLanes, organized[strategies[0].Name()])
		if err != nil {
			return nil, err
		}
		mQstr, err := assembly.Evaluate(evalLanes, organized[strategies[1].Name()])
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0f", temp),
			stats.FmtUS(mRand.MeanPgm)+" µs", stats.FmtUS(mQstr.MeanPgm)+" µs",
			stats.FmtPct(stats.Improvement(mRand.MeanPgm, mQstr.MeanPgm)))
	}
	text := "the grouping organized at 25 °C keeps its margin at every operating point:\nper-chip temperature sensitivity shifts latencies but not block similarity\n"
	return &Result{ID: "temperature", Tables: []*stats.Table{t}, Text: text}, nil
}
