// Package sim is a discrete simulator of the SSD's internal parallelism
// (§II-B): channels with their own data buses, chips with multiple planes,
// and multi-plane program commands whose per-chip occupancy is the maximum
// over the chip's planes. It quantifies how the extra latency of poorly
// organized superblocks turns into lost throughput and longer super-word-
// line completion times under realistic pipelining.
//
// The model: a superblock spans every plane of every chip. Programming super
// word-line w issues, per chip, one page transfer over the chip's channel
// bus followed by one multi-plane program occupying the chip for the maximum
// of its planes' latencies. Word-line w+1 of the same superblock cannot
// start before word-line w completed on all chips (the FTL's flush
// synchronization), but word-lines of other in-flight superblocks can fill
// chip idle gaps, bounded by the queue depth (the number of open
// superblocks — a real FTL keeps one per stream).
package sim

import (
	"fmt"
	"math"
)

// Config describes the device topology and pipelining.
type Config struct {
	Channels        int
	ChipsPerChannel int
	PlanesPerChip   int
	BusMBps         float64 // per-channel bus bandwidth
	PageBytes       int
	QueueDepth      int // superblocks programmed concurrently (≥1)
}

// DefaultConfig returns a 4-channel, 2-chips-per-channel, 4-plane device.
func DefaultConfig() Config {
	return Config{
		Channels:        4,
		ChipsPerChannel: 2,
		PlanesPerChip:   4,
		BusMBps:         600,
		PageBytes:       16 * 1024,
		QueueDepth:      1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0 || c.ChipsPerChannel <= 0 || c.PlanesPerChip <= 0:
		return fmt.Errorf("sim: topology dimensions must be positive: %+v", c)
	case c.BusMBps <= 0:
		return fmt.Errorf("sim: bus bandwidth must be positive")
	case c.PageBytes <= 0:
		return fmt.Errorf("sim: page size must be positive")
	case c.QueueDepth <= 0:
		return fmt.Errorf("sim: queue depth must be at least 1")
	}
	return nil
}

// Chips returns the total chip count.
func (c Config) Chips() int { return c.Channels * c.ChipsPerChannel }

// Lanes returns the total plane-lane count (one superblock member each).
func (c Config) Lanes() int { return c.Chips() * c.PlanesPerChip }

// Job is one superblock program workload: the per-word-line program latency
// of every member, lane-major (lane = chip*PlanesPerChip + plane).
type Job struct {
	MemberLat [][]float64 // [lane][wl]
}

// Report summarizes a simulation run.
type Report struct {
	Makespan        float64 // µs until the last word-line completes
	ThroughputMBps  float64 // user data programmed / makespan
	SuperWLLatency  float64 // mean super-word-line completion latency
	ChipUtilization float64 // mean fraction of makespan chips spent programming
	ChipIdleSync    float64 // µs chips spent idle waiting on word-line sync
	WordLines       int
}

type jobState struct {
	job   *Job
	nexWL int
	ready float64 // earliest time the next word-line may issue
}

// Run programs the jobs through the device and reports the timing.
// Every job must cover all lanes with equal word-line counts.
func Run(cfg Config, jobs []Job) (Report, error) {
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	if len(jobs) == 0 {
		return Report{}, fmt.Errorf("sim: no jobs")
	}
	lanes := cfg.Lanes()
	nWL := -1
	for ji, j := range jobs {
		if len(j.MemberLat) != lanes {
			return Report{}, fmt.Errorf("sim: job %d has %d members for %d lanes", ji, len(j.MemberLat), lanes)
		}
		for l, lat := range j.MemberLat {
			if nWL == -1 {
				nWL = len(lat)
			}
			if len(lat) != nWL {
				return Report{}, fmt.Errorf("sim: job %d lane %d has %d word-lines, want %d", ji, l, len(lat), nWL)
			}
		}
	}
	if nWL == 0 {
		return Report{}, fmt.Errorf("sim: jobs have no word-lines")
	}

	chipBusy := make([]float64, cfg.Chips())
	chanBusy := make([]float64, cfg.Channels)
	chipWork := make([]float64, cfg.Chips())
	// Transfer time per chip per super word-line: PlanesPerChip planes × 3
	// pages each... the member latencies already describe one word-line per
	// plane (the lane); a word-line carries 3 TLC pages of user data.
	xfer := float64(3*cfg.PageBytes*cfg.PlanesPerChip) / cfg.BusMBps

	var active []*jobState
	next := 0
	for next < len(jobs) && len(active) < cfg.QueueDepth {
		active = append(active, &jobState{job: &jobs[next]})
		next++
	}
	var makespan, sumWLLat, idleSync float64
	wordLines := 0

	// Hot loop: every latency is a finite non-negative float, so plain
	// comparisons replace math.Max without changing a single bit of the
	// schedule (Max's NaN/signed-zero cases cannot arise here).
	chips := cfg.Chips()
	planes := cfg.PlanesPerChip
	for len(active) > 0 {
		// Issue the next word-line of the job that is ready earliest.
		best := 0
		for i, st := range active {
			if st.ready < active[best].ready {
				best = i
			}
		}
		st := active[best]
		wl := st.nexWL
		mem := st.job.MemberLat
		wlComplete := 0.0
		lane := 0
		for chip := 0; chip < chips; chip++ {
			// Per-chip multi-plane program: occupancy is the max over the
			// chip's planes for this word-line.
			dur := 0.0
			for p := 0; p < planes; p++ {
				if v := mem[lane][wl]; v > dur {
					dur = v
				}
				lane++
			}
			ch := chip / cfg.ChipsPerChannel
			tStart := chanBusy[ch]
			if st.ready > tStart {
				tStart = st.ready
			}
			tEnd := tStart + xfer
			chanBusy[ch] = tEnd
			pStart := chipBusy[chip]
			if tEnd > pStart {
				pStart = tEnd
			}
			if gap := pStart - chipBusy[chip]; gap > 0 && chipBusy[chip] > 0 {
				idleSync += gap
			}
			pEnd := pStart + dur
			chipBusy[chip] = pEnd
			chipWork[chip] += dur
			if pEnd > wlComplete {
				wlComplete = pEnd
			}
		}
		sumWLLat += wlComplete - st.ready
		wordLines++
		st.ready = wlComplete
		st.nexWL++
		if wlComplete > makespan {
			makespan = wlComplete
		}
		if st.nexWL == nWL {
			if next < len(jobs) {
				// The replacement superblock opens when this one sealed;
				// its issue window starts now, not at time zero.
				active[best] = &jobState{job: &jobs[next], ready: wlComplete}
				next++
			} else {
				active = append(active[:best], active[best+1:]...)
			}
		}
	}

	var workSum float64
	for _, w := range chipWork {
		workSum += w
	}
	userBytes := float64(len(jobs)*nWL*lanes) * 3 * float64(cfg.PageBytes)
	r := Report{
		Makespan:        makespan,
		ThroughputMBps:  userBytes / math.Max(makespan, 1e-9), // bytes/µs = MB/s
		SuperWLLatency:  sumWLLat / float64(wordLines),
		ChipUtilization: workSum / (float64(cfg.Chips()) * math.Max(makespan, 1e-9)),
		ChipIdleSync:    idleSync,
		WordLines:       wordLines,
	}
	return r, nil
}
