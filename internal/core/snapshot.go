package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"superfast/internal/flash"
	"superfast/internal/profile"
)

// Snapshot serializes the scheme's per-block metadata in exactly the layout
// Equation 2 (§VI-D1) accounts for: per block, a 4-byte program-latency sum
// (float32 µs) plus one eigen bit per logical word-line, preceded by a small
// fixed header. Unknown blocks serialize as zero latency with empty eigen
// bits; retired blocks carry a flag bit in the per-lane bitmap.
//
// The snapshot is what an FTL would keep in its metadata region so the
// sorted lists and eigen space survive power cycles without a full
// re-characterization.
func (s *Scheme) Snapshot() []byte {
	nWL := s.geo.LWLsPerBlock()
	eigenBytes := (nWL + 7) / 8
	perBlock := 4 + eigenBytes
	flagBytes := (s.geo.BlocksPerPlane + 7) / 8 * 2 // known + retired bitmaps
	size := 16 + len(s.lanes)*(flagBytes+s.geo.BlocksPerPlane*perBlock)
	out := make([]byte, 0, size)

	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(s.lanes)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(s.geo.BlocksPerPlane))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(nWL))
	out = append(out, hdr[:]...)

	for li := range s.lanes {
		known := make([]byte, (s.geo.BlocksPerPlane+7)/8)
		retired := make([]byte, (s.geo.BlocksPerPlane+7)/8)
		body := make([]byte, 0, s.geo.BlocksPerPlane*perBlock)
		for b := 0; b < s.geo.BlocksPerPlane; b++ {
			bi := s.lanes[li].info[b]
			var sum float32
			eig := make([]byte, eigenBytes)
			if bi != nil {
				if bi.known {
					known[b/8] |= 1 << (b % 8)
					sum = float32(bi.pgmSum)
					for i := 0; i < nWL; i++ {
						if bi.eigen.Bit(i) {
							eig[i/8] |= 1 << (i % 8)
						}
					}
				}
				if bi.retired {
					retired[b/8] |= 1 << (b % 8)
				}
			}
			var s4 [4]byte
			binary.LittleEndian.PutUint32(s4[:], math.Float32bits(sum))
			body = append(body, s4[:]...)
			body = append(body, eig...)
		}
		out = append(out, known...)
		out = append(out, retired...)
		out = append(out, body...)
	}
	return out
}

const snapshotMagic = 0x51535452 // "QSTR"

// RestoreSnapshot loads per-block metadata produced by Snapshot into the
// scheme. Free pools are not part of the snapshot (block freeness is derived
// from FTL mapping state on recovery); restored metadata keys future AddFree
// calls. The snapshot geometry must match the scheme's.
func (s *Scheme) RestoreSnapshot(data []byte) error {
	if len(data) < 16 {
		return fmt.Errorf("core: snapshot truncated (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint32(data[0:]) != snapshotMagic {
		return fmt.Errorf("core: bad snapshot magic")
	}
	nLanes := int(binary.LittleEndian.Uint32(data[4:]))
	nBlocks := int(binary.LittleEndian.Uint32(data[8:]))
	nWL := int(binary.LittleEndian.Uint32(data[12:]))
	if nLanes != len(s.lanes) || nBlocks != s.geo.BlocksPerPlane || nWL != s.geo.LWLsPerBlock() {
		return fmt.Errorf("core: snapshot geometry %d lanes × %d blocks × %d WLs, scheme has %d × %d × %d",
			nLanes, nBlocks, nWL, len(s.lanes), s.geo.BlocksPerPlane, s.geo.LWLsPerBlock())
	}
	eigenBytes := (nWL + 7) / 8
	perBlock := 4 + eigenBytes
	flagBytes := (nBlocks + 7) / 8
	want := 16 + nLanes*(2*flagBytes+nBlocks*perBlock)
	if len(data) != want {
		return fmt.Errorf("core: snapshot is %d bytes, want %d", len(data), want)
	}
	off := 16
	for li := 0; li < nLanes; li++ {
		known := data[off : off+flagBytes]
		retired := data[off+flagBytes : off+2*flagBytes]
		body := data[off+2*flagBytes:]
		for b := 0; b < nBlocks; b++ {
			rec := body[b*perBlock : (b+1)*perBlock]
			bi := &blockInfo{}
			if known[b/8]&(1<<(b%8)) != 0 {
				bi.known = true
				bi.pgmSum = float64(math.Float32frombits(binary.LittleEndian.Uint32(rec[:4])))
				e := profile.NewEigenBuilder(nWL)
				for i := 0; i < nWL; i++ {
					if rec[4+i/8]&(1<<(i%8)) != 0 {
						e.SetBit(i)
					}
				}
				bi.eigen = e
			}
			bi.retired = retired[b/8]&(1<<(b%8)) != 0
			s.lanes[li].info[b] = bi
		}
		off += 2*flagBytes + nBlocks*perBlock
	}
	return nil
}

// SnapshotSizeBytes returns the serialized size for a geometry — the
// Equation 2 footprint plus the bitmap/header overhead.
func SnapshotSizeBytes(geo flash.Geometry) int {
	eigenBytes := (geo.LWLsPerBlock() + 7) / 8
	flagBytes := (geo.BlocksPerPlane + 7) / 8
	return 16 + geo.Lanes()*(2*flagBytes+geo.BlocksPerPlane*(4+eigenBytes))
}
