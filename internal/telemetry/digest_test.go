package telemetry

import (
	"math"
	"sort"
	"testing"

	"superfast/internal/prng"
)

// exactQuantile mirrors stats.Quantile on a sorted sample.
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func TestP2SmallSampleExact(t *testing.T) {
	e := NewP2(0.5)
	if e.Value() != 0 {
		t.Fatalf("empty estimator = %v, want 0", e.Value())
	}
	for _, v := range []float64{30, 10, 20} {
		e.Observe(v)
	}
	if got := e.Value(); got != 20 {
		t.Fatalf("median of {10,20,30} = %v, want 20", got)
	}
	if e.Count() != 3 {
		t.Fatalf("count = %d", e.Count())
	}
}

func TestP2TracksQuantiles(t *testing.T) {
	// Feed a deterministic exponential-ish stream (the shape of latency
	// samples) and require the streaming estimate to land within a few
	// percent of the exact quantile.
	src := prng.New(7, 0x9e77)
	const n = 20000
	samples := make([]float64, n)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		e := NewP2(q)
		for i := range samples {
			u := src.Float64()
			if u <= 0 {
				u = 1e-12
			}
			v := 100 * -math.Log(1-u) // exponential, mean 100
			samples[i] = v
			e.Observe(v)
		}
		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)
		want := exactQuantile(sorted, q)
		got := e.Value()
		if rel := math.Abs(got-want) / want; rel > 0.05 {
			t.Fatalf("p%.0f: streaming %v vs exact %v (rel err %.3f)", q*100, got, want, rel)
		}
	}
}

func TestP2Deterministic(t *testing.T) {
	run := func() float64 {
		e := NewP2(0.95)
		src := prng.New(3, 0x51)
		for i := 0; i < 5000; i++ {
			e.Observe(src.Float64() * 1000)
		}
		return e.Value()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same stream produced %v then %v", a, b)
	}
}

func TestDigestWelfordHighOffset(t *testing.T) {
	// Samples with a huge common offset and tiny spread: the naive
	// sumSq−mean² variance cancels catastrophically here; Welford must not.
	d := NewDigest()
	base := 4e12 // ~46 days in µs — a long simulated run's clock magnitude
	vals := []float64{base + 1, base + 2, base + 3, base + 4, base + 5}
	for _, v := range vals {
		d.Observe(v)
	}
	s := d.Snapshot()
	if s.N != 5 {
		t.Fatalf("n = %d", s.N)
	}
	if got, want := s.Mean, base+3; math.Abs(got-want) > 1e-3 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	if got, want := s.Std, math.Sqrt(2.0); math.Abs(got-want) > 1e-6 {
		t.Fatalf("std = %v, want %v (Welford must survive the offset)", got, want)
	}
	if s.Min != base+1 || s.Max != base+5 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.P50 != base+3 {
		t.Fatalf("p50 = %v, want %v", s.P50, base+3)
	}
}

func TestDigestEmpty(t *testing.T) {
	if s := NewDigest().Snapshot(); s != (DigestSnapshot{}) {
		t.Fatalf("empty digest snapshot = %+v", s)
	}
}

func TestDigestMatchesMoments(t *testing.T) {
	d := NewDigest()
	src := prng.New(11, 0x33)
	var xs []float64
	for i := 0; i < 3000; i++ {
		v := 50 + src.Float64()*200
		xs = append(xs, v)
		d.Observe(v)
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	mean := sum / float64(len(xs))
	var m2 float64
	for _, v := range xs {
		m2 += (v - mean) * (v - mean)
	}
	s := d.Snapshot()
	if math.Abs(s.Mean-mean) > 1e-9*mean {
		t.Fatalf("mean %v vs %v", s.Mean, mean)
	}
	if want := math.Sqrt(m2 / float64(len(xs))); math.Abs(s.Std-want) > 1e-9*want {
		t.Fatalf("std %v vs %v", s.Std, want)
	}
}
