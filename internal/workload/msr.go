package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"superfast/internal/ssd"
)

// ParseMSRTrace reads an MSR-Cambridge-style block trace:
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// where Type is "Read" or "Write" (case-insensitive), Offset and Size are in
// bytes, and Timestamp is either a Windows FILETIME (100 ns ticks; values
// above ~1e14) or plain seconds. Each record expands into one request per
// page it covers; byte offsets fold into [0, maxLPN) so traces captured from
// larger disks replay onto the simulated device. Arrival times are rebased
// so the first record arrives at 0 µs.
func ParseMSRTrace(r io.Reader, pageSize int, maxLPN int64) ([]ssd.Request, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("workload: page size %d", pageSize)
	}
	if maxLPN <= 0 {
		return nil, fmt.Errorf("workload: maxLPN %d", maxLPN)
	}
	var out []ssd.Request
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	first := -1.0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) < 6 {
			return nil, fmt.Errorf("workload: msr line %d: %d fields, want ≥6", line, len(parts))
		}
		ts, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: msr line %d timestamp: %v", line, err)
		}
		// FILETIME ticks are 100 ns; plain timestamps are seconds.
		arrivalUS := ts * 1e6
		if ts > 1e14 {
			arrivalUS = ts / 10
		}
		if first < 0 {
			first = arrivalUS
		}
		arrivalUS -= first

		var kind ssd.OpKind
		switch strings.ToLower(strings.TrimSpace(parts[3])) {
		case "read", "r":
			kind = ssd.OpRead
		case "write", "w":
			kind = ssd.OpWrite
		default:
			return nil, fmt.Errorf("workload: msr line %d: unknown type %q", line, parts[3])
		}
		offset, err := strconv.ParseInt(strings.TrimSpace(parts[4]), 10, 64)
		if err != nil || offset < 0 {
			return nil, fmt.Errorf("workload: msr line %d offset: %v", line, parts[4])
		}
		size, err := strconv.ParseInt(strings.TrimSpace(parts[5]), 10, 64)
		if err != nil || size <= 0 {
			return nil, fmt.Errorf("workload: msr line %d size: %v", line, parts[5])
		}
		firstPage := offset / int64(pageSize)
		lastPage := (offset + size - 1) / int64(pageSize)
		for p := firstPage; p <= lastPage; p++ {
			lpn := p % maxLPN
			req := ssd.Request{Kind: kind, LPN: lpn, Arrival: arrivalUS}
			if kind == ssd.OpWrite {
				req.Data = fill(lpn, 16)
			}
			out = append(out, req)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReplayPrepared replays requests against a device, first writing any page
// that a read would touch before its first write (traces begin mid-life, so
// cold reads need backing data). Returns the completions of the trace
// requests only.
func ReplayPrepared(dev *ssd.Device, reqs []ssd.Request) ([]ssd.Completion, error) {
	seen := make(map[int64]bool)
	for _, req := range reqs {
		switch req.Kind {
		case ssd.OpWrite:
			seen[req.LPN] = true
		case ssd.OpRead:
			if !seen[req.LPN] {
				if _, err := dev.Submit(ssd.Request{Kind: ssd.OpWrite, LPN: req.LPN, Data: fill(req.LPN, 16)}); err != nil {
					return nil, fmt.Errorf("workload: prepare lpn %d: %w", req.LPN, err)
				}
				seen[req.LPN] = true
			}
		}
	}
	out := make([]ssd.Completion, 0, len(reqs))
	for i, req := range reqs {
		c, err := dev.Submit(req)
		if err != nil {
			return out, fmt.Errorf("workload: msr op %d: %w", i, err)
		}
		out = append(out, c)
	}
	return out, nil
}
