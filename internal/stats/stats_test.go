package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("Std = %v, want sqrt(2)", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary should be zero: %+v", s)
	}
}

func TestSummarizeHighOffsetVariance(t *testing.T) {
	// Latency samples late in a long simulated run sit on a huge clock
	// offset with a small spread. The naive sumSq−mean² variance loses all
	// significant digits here (4e12² = 1.6e25 ≫ float64's 2^53 precision);
	// Welford's recurrence must recover the exact spread.
	base := 4e12
	xs := []float64{base + 1, base + 2, base + 3, base + 4, base + 5}
	s := Summarize(xs)
	if math.Abs(s.Mean-(base+3)) > 1e-3 {
		t.Fatalf("Mean = %v, want %v", s.Mean, base+3)
	}
	if want := math.Sqrt(2); math.Abs(s.Std-want) > 1e-6 {
		t.Fatalf("Std = %v, want %v (catastrophic cancellation)", s.Std, want)
	}
	if s.Min != base+1 || s.Max != base+5 || s.Median != base+3 {
		t.Fatalf("order stats wrong: %+v", s)
	}
}

func TestSummarizeProperties(t *testing.T) {
	f := func(xs []float64) bool {
		for i, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				xs[i] = 0
			}
			// Keep magnitudes where sumSq cannot overflow.
			xs[i] = math.Mod(xs[i], 1e6)
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Mean+1e-9*math.Abs(s.Mean)+1e-9 &&
			s.Mean <= s.Max+1e-9*math.Abs(s.Max)+1e-9 &&
			s.Min <= s.Median && s.Median <= s.Max &&
			s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if q := Quantile(xs, 0); q != 10 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 40 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 25 {
		t.Errorf("q0.5 = %v, want 25", q)
	}
	if q := Quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		for i, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				xs[i] = 0
			}
		}
		sort.Float64s(xs)
		qa, qb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram([]float64{0.5, 1.5, 1.6, 9.9, -1, 10, 11}, 0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[9] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Total() != 4 {
		t.Fatalf("Total = %d", h.Total())
	}
	if c := h.BinCenter(0); c != 0.5 {
		t.Fatalf("BinCenter(0) = %v", c)
	}
}

func TestHistogramErrors(t *testing.T) {
	cases := []struct {
		name   string
		lo, hi float64
		bins   int
	}{
		{"zero bins", 0, 10, 0},
		{"negative bins", 0, 10, -3},
		{"empty range", 10, 10, 5},
		{"inverted range", 10, 0, 5},
		{"nan bound", math.NaN(), 10, 5},
		{"infinite bound", 0, math.Inf(1), 5},
	}
	for _, tc := range cases {
		h, err := NewHistogram(nil, tc.lo, tc.hi, tc.bins)
		if err == nil {
			t.Errorf("%s: expected error, got histogram %+v", tc.name, h)
		}
	}
}

func TestHistogramRender(t *testing.T) {
	h, err := NewHistogram([]float64{1, 1, 1, 5}, 0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := h.Render(10)
	if !strings.Contains(out, "##########") {
		t.Fatalf("largest bin should have a full bar:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 2 {
		t.Fatalf("got %d lines, want 2", lines)
	}
}

func TestHistogramConservation(t *testing.T) {
	f := func(xs []float64) bool {
		for i, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				xs[i] = 0
			}
		}
		h, err := NewHistogram(xs, -100, 100, 7)
		return err == nil && h.Total()+h.Under+h.Over == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableString(t *testing.T) {
	tb := Table{Title: "T", Headers: []string{"Method", "Value"}}
	tb.AddRow("RANDOM", "13,084.17")
	tb.AddRow("OPTIMAL", "10,533.44")
	out := tb.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "RANDOM") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Headers: []string{"a", "b"}}
	tb.AddRow("x,y", `q"r`)
	csv := tb.CSV()
	want := "a,b\n\"x,y\",\"q\"\"r\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestFmtUS(t *testing.T) {
	cases := map[float64]string{
		13084.17:  "13,084.17",
		41.71:     "41.71",
		0:         "0.00",
		1234567.5: "1,234,567.50",
		-12.5:     "-12.50",
	}
	for in, want := range cases {
		if got := FmtUS(in); got != want {
			t.Errorf("FmtUS(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFmtPct(t *testing.T) {
	if got := FmtPct(0.1661); got != "16.61%" {
		t.Fatalf("FmtPct = %q", got)
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(13084.17, 10911.53); math.Abs(got-0.1661) > 0.0001 {
		t.Fatalf("Improvement = %v, want ≈0.1661", got)
	}
	if Improvement(0, 5) != 0 {
		t.Fatal("zero baseline should yield 0")
	}
	if Improvement(math.NaN(), 5) != 0 || Improvement(math.Inf(1), 5) != 0 {
		t.Fatal("non-finite baseline should yield 0")
	}
}

func TestRenderSeries(t *testing.T) {
	out := RenderSeries("pe", []Series{
		{Name: "random", X: []float64{0, 200}, Y: []float64{41.7, 42.0}},
		{Name: "qstr", X: []float64{0, 200}, Y: []float64{25.1, 25.3}},
	})
	if !strings.Contains(out, "pe\trandom\tqstr") {
		t.Fatalf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, "0\t41.70\t25.10") {
		t.Fatalf("row wrong:\n%s", out)
	}
	if got := RenderSeries("x", nil); got != "x\n" {
		t.Fatalf("empty series render = %q", got)
	}
}

func TestSeriesCSV(t *testing.T) {
	out := SeriesCSV("pe", []Series{
		{Name: "a,b", X: []float64{0, 200}, Y: []float64{1.5, 2.5}},
		{Name: "c", X: []float64{0, 200}, Y: []float64{3}},
	})
	if !strings.Contains(out, "pe,a;b,c") {
		t.Fatalf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, "0,1.5000,3.0000") {
		t.Fatalf("row wrong:\n%s", out)
	}
	if !strings.Contains(out, "200,2.5000,\n") {
		t.Fatalf("short series padding wrong:\n%s", out)
	}
}

func TestSummarizeTailQuantiles(t *testing.T) {
	// 0..999: the interpolated tail quantiles are exactly q*(n-1).
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(999 - i) // unsorted on purpose
	}
	s := Summarize(xs)
	if math.Abs(s.P99-989.01) > 1e-9 {
		t.Fatalf("P99 = %v, want 989.01", s.P99)
	}
	if math.Abs(s.P999-998.001) > 1e-9 {
		t.Fatalf("P999 = %v, want 998.001", s.P999)
	}
	if !(s.P99 <= s.P999 && s.P999 <= s.Max) {
		t.Fatalf("tail order violated: P99=%v P999=%v Max=%v", s.P99, s.P999, s.Max)
	}
}
