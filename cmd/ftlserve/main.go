// Command ftlserve exports the simulated SSD as a network block service:
// a TCP front end speaking the length-prefixed binary protocol of
// internal/server (READ / WRITE / TRIM / FLUSH / STAT / PING) over the
// thread-safe multi-queue device, with admission control and graceful drain.
//
// Usage:
//
//	ftlserve -listen :8970
//	ftlserve -listen :8970 -inflight 512 -conn-inflight 64 -deadline 500ms
//	ftlserve -listen :8970 -seq            # deterministic sequenced replay
//	ftlserve -listen :8970 -pace 1.0       # responses paced to simulated time
//	ftlserve -listen :8970 -http :9090     # live /metrics, /healthz, pprof
//	ftlserve -listen :8970 -faults         # accept ftlstorm fault injection
//	ftlserve -listen :8970 -tenants quiet:4096,noisy:4096@2   # namespaces
//
// -seq puts the server in sequenced replay mode: every data request must
// carry a dense global ticket (ftlload -seq stamps them), and admission
// follows ticket order, so a multi-connection replay is bit-identical to a
// single-submitter run. -pace F delays each response by F wall-clock
// microseconds per simulated microsecond of latency (1.0 ≈ real device
// timing). -http serves the telemetry surface — Prometheus /metrics now
// includes the srv.* serving-layer counters, and /flightrecorder gains
// srv_conns/srv_inflight/srv_accepted/srv_rejected columns. SIGINT/SIGTERM
// trigger a graceful drain: stop accepting, answer everything already read,
// flush, close.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"superfast/internal/flash"
	"superfast/internal/ftl"
	"superfast/internal/pv"
	"superfast/internal/server"
	"superfast/internal/ssd"
	"superfast/internal/telemetry"
)

func main() {
	var (
		listen   = flag.String("listen", ":8970", "TCP listen address for the block service")
		inflight = flag.Int("inflight", 256, "global in-flight request cap (admission control)")
		connInFl = flag.Int("conn-inflight", 64, "per-connection in-flight cap")
		deadline = flag.Duration("deadline", 0, "per-request admission deadline (0 = wait forever)")
		seq      = flag.Bool("seq", false, "sequenced replay mode: admit requests in global ticket order")
		faults   = flag.Bool("faults", false, "accept fault-injection commands (bad-block storms, chip dropouts, power cuts, die)")
		tenants  = flag.String("tenants", "", "partition into namespaces: comma-separated name:pages[@quota] (e.g. quiet:4096,noisy:4096@2)")
		pace     = flag.Float64("pace", 0, "wall-µs slept per simulated µs of latency before responding (1.0 ≈ real time)")
		fill     = flag.Bool("fill", false, "warm-fill every logical page before serving")
		httpAddr = flag.String("http", "", "serve /metrics, /healthz, /debug/pprof, /flightrecorder on ADDR")
		recIntv  = flag.Float64("rec-interval", 10000, "flight-recorder sampling interval, simulated µs (with -http)")
		recCap   = flag.Int("rec-cap", 4096, "flight-recorder ring capacity (with -http)")
		traceOut = flag.String("trace", "", "write this process's hop-ledger shard (JSONL) to FILE on drain")
		proc     = flag.String("trace-proc", "", "process name stamped on hop records (default ftlserve@<listen>)")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on shutdown")

		orgName  = flag.String("organizer", "qstr-med", "superblock organizer: qstr-med | sequential | random")
		blocks   = flag.Int("blocks", 32, "blocks per plane")
		chips    = flag.Int("chips", 4, "chips")
		layers   = flag.Int("layers", 48, "word-line layers per block")
		seed     = flag.Uint64("seed", 1, "seed")
		raid     = flag.Bool("raid", false, "dedicate one lane per superblock to parity")
		autoHint = flag.Bool("autohint", false, "detect hot pages and place them on fast superpages")
		gcStep   = flag.Int("gc-step", 0, "preemptive GC: pages relocated per step between requests (0 = blocking GC)")
		gcSoft   = flag.Int("gc-soft", 0, "free-superblock watermark that starts preemptive GC steps (0 = GC threshold)")
	)
	flag.Parse()

	g := flash.Geometry{
		Chips:          *chips,
		PlanesPerChip:  1,
		BlocksPerPlane: *blocks,
		Layers:         *layers,
		Strings:        4,
		PageSize:       16 * 1024,
		SpareSize:      2 * 1024,
	}
	p := pv.DefaultParams()
	p.Seed = *seed
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr, err := flash.NewArray(g, pv.New(p), flash.DefaultECC())
	if err != nil {
		fatalf("%v", err)
	}
	cfg := ssd.DefaultConfig()
	cfg.FTL.Overprovision = 0.2
	cfg.FTL.Seed = *seed
	cfg.FTL.RAID = *raid
	cfg.FTL.AutoHint = *autoHint
	cfg.FTL.GCStepPages = *gcStep
	cfg.FTL.GCSoftThreshold = *gcSoft
	switch *orgName {
	case "qstr-med":
		cfg.FTL.Organizer = ftl.QSTRMed
	case "sequential":
		cfg.FTL.Organizer = ftl.SequentialOrg
	case "random":
		cfg.FTL.Organizer = ftl.RandomOrg
	default:
		fatalf("unknown organizer %q", *orgName)
	}
	dev, err := ssd.NewConcurrent(arr, cfg)
	if err != nil {
		fatalf("%v", err)
	}
	defer dev.Close()
	if *fill {
		fmt.Fprintln(os.Stderr, "ftlserve: warm fill...")
		if err := dev.FillSequential(nil); err != nil {
			fatalf("fill: %v", err)
		}
	}

	var reg *telemetry.Metrics
	var rec *telemetry.Recorder
	if *httpAddr != "" {
		reg = telemetry.New()
		dev.SetMetrics(reg)
	}
	var led *telemetry.Ledger
	if *traceOut != "" || *httpAddr != "" {
		name := *proc
		if name == "" {
			name = "ftlserve@" + *listen
		}
		led = telemetry.NewLedger(name)
		dev.SetLedger(led)
	}
	scfg := server.Config{
		MaxInFlight:  *inflight,
		MaxPerConn:   *connInFl,
		Deadline:     *deadline,
		Sequenced:    *seq,
		Pace:         *pace,
		Metrics:      reg,
		Ledger:       led,
		EnableFaults: *faults,
	}
	if *faults {
		// The "die" fault models a crashed backend: exit hard, no drain — a
		// campaign driver (ftlstorm) then exercises the cluster's failover.
		scfg.OnFaultDie = func() {
			fmt.Fprintln(os.Stderr, "ftlserve: die fault injected, exiting")
			os.Exit(3)
		}
	}
	if *tenants != "" {
		ts, err := parseTenants(*tenants)
		if err != nil {
			fatalf("-tenants: %v", err)
		}
		scfg.Tenants = ts
	}
	srv := server.New(dev, scfg)
	if *httpAddr != "" {
		// The recorder samples the device columns plus the serving layer's.
		rec, err = telemetry.NewRecorder(*recIntv, *recCap,
			append(ssd.RecorderColumns(g.Chips), server.RecorderColumns()...))
		if err != nil {
			fatalf("%v", err)
		}
		dev.SetRecorderExtra(server.RecorderColumns(), srv.RecorderSampler())
		if err := dev.AttachRecorder(rec); err != nil {
			fatalf("%v", err)
		}
		hsrv, haddr, herr := telemetry.Serve(*httpAddr, telemetry.Routes(reg, rec, nil, led))
		if herr != nil {
			fatalf("-http: %v", herr)
		}
		defer hsrv.Close()
		fmt.Fprintf(os.Stderr, "ftlserve: serving telemetry on http://%s/\n", haddr)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatalf("listen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "ftlserve: block service on %s (capacity %d pages × %d B, sequenced=%v)\n",
		ln.Addr(), dev.FTL().Capacity(), dev.PageSize(), *seq)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "ftlserve: draining...")
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "ftlserve: drain: %v\n", err)
		}
	}()
	if err := srv.Serve(ln); err != nil {
		fatalf("serve: %v", err)
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "ftlserve: drained: %d conns served, %d accepted, %d responses, %d rejected, %d B in, %d B out\n",
		st.ConnsEver, st.Accepted, st.Responses, st.Rejected, st.BytesIn, st.BytesOut)
	if *traceOut != "" && led != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("trace shard: %v", err)
		}
		werr := led.WriteShard(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fatalf("trace shard %s: %v", *traceOut, werr)
		}
		fmt.Fprintf(os.Stderr, "ftlserve: wrote %d hop records to %s\n", led.Len(), *traceOut)
	}
}

// parseTenants decodes the -tenants flag: comma-separated name:pages[@quota]
// declarations, in tenant-id order (the first entry is tenant 1 on the wire).
func parseTenants(s string) ([]server.Tenant, error) {
	var out []server.Tenant
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("%q: want name:pages[@quota]", part)
		}
		pagesStr, quotaStr, hasQuota := strings.Cut(rest, "@")
		pages, err := strconv.ParseInt(pagesStr, 10, 64)
		if err != nil || pages < 1 {
			return nil, fmt.Errorf("%q: bad page count %q", part, pagesStr)
		}
		t := server.Tenant{Name: name, Pages: pages}
		if hasQuota {
			q, err := strconv.Atoi(quotaStr)
			if err != nil || q < 0 {
				return nil, fmt.Errorf("%q: bad quota %q", part, quotaStr)
			}
			t.Quota = q
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no tenants in %q", s)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ftlserve: "+format+"\n", args...)
	os.Exit(1)
}
