// Command ftlload is the load generator for the ftlserve block service: it
// replays a synthetic workload or a captured trace over one or more
// pipelined connections and reports wall-clock throughput next to the
// simulated latency distribution the device computed.
//
// Usage:
//
//	ftlload -addr 127.0.0.1:8970 -workload hotcold -ops 20000 -conns 4 -depth 8
//	ftlload -addr 127.0.0.1:8970 -workload trace -in trace.csv -seq
//	ftlload -addr 127.0.0.1:8970 -workload uniform -rate 120   # open loop
//	ftlload -addr 127.0.0.1:8970 -tenant 2 -workload uniform   # one namespace
//
// Closed loop (default): each connection keeps -depth requests in flight and
// issues the next as soon as one completes. Open loop (-rate M): requests
// carry Poisson arrival stamps with mean gap M µs, so the simulated device
// sees queueing pressure independent of the network's round-trip time.
// -workload trace auto-detects the file format ("op,lpn" CSV or
// MSR-Cambridge) and primes cold reads before replay. -seq stamps dense
// global tickets so a server in -seq mode reproduces the single-submitter
// completion stream bit for bit, however many connections carry it.
//
// -tenant N binds every connection to the server's Nth namespace (1-based):
// LPNs become tenant-relative, the workload space shrinks to the namespace
// size, and the server enforces that tenant's admission quota.
//
// -backends A,B,C drives a sharded volume directly instead of a single
// server: ftlload builds the internal/volume frontend in-process (no proxy
// hop) and scatters the stream across the backends with -stripe/-replicas
// placement. -seq composes with it for deterministic sharded replay.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"superfast/internal/server"
	"superfast/internal/server/client"
	"superfast/internal/ssd"
	"superfast/internal/stats"
	"superfast/internal/telemetry"
	"superfast/internal/volume"
	"superfast/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8970", "block-service address")
		conns   = flag.Int("conns", 4, "client connections")
		depth   = flag.Int("depth", 8, "per-connection pipeline depth (closed loop)")
		wl      = flag.String("workload", "hotcold", "workload: seqfill | uniform | hotcold | mixed | trace")
		in      = flag.String("in", "", "trace file for -workload trace (format auto-detected)")
		ops     = flag.Int64("ops", 20000, "operations to issue (generators)")
		pagelen = flag.Int("pagelen", 4096, "payload bytes per write (0 = device page size)")
		seed    = flag.Uint64("seed", 1, "workload seed")
		rate    = flag.Float64("rate", 0, "open loop: mean µs between Poisson arrivals (0 = closed loop)")
		seq     = flag.Bool("seq", false, "sequenced replay: stamp dense global tickets (server must run -seq)")
		tenant  = flag.Int("tenant", 0, "bind every connection to this tenant namespace, 1-based (server must be partitioned)")

		backends = flag.String("backends", "", "drive a sharded volume over these comma-separated backends instead of -addr")
		stripe   = flag.Int64("stripe", 64, "volume: pages per stripe unit (with -backends)")
		replicas = flag.Int("replicas", 1, "volume: copies of every stripe unit (with -backends)")
		verify   = flag.Bool("verify", false, "volume: verify reads across replicas and repair divergence (with -backends)")

		traceOut = flag.String("trace", "", "write this process's hop-ledger shard (JSONL) to FILE; request i gets trace ID i+1")
	)
	flag.Parse()
	if *conns < 1 || *depth < 1 {
		fatalf("-conns and -depth must be ≥ 1")
	}
	if *tenant < 0 || *tenant > 0xffff {
		fatalf("-tenant must be in 1..65535")
	}
	if *tenant != 0 && *backends != "" {
		fatalf("-tenant drives a single partitioned server; the volume layer has no tenant lanes")
	}

	var led *telemetry.Ledger
	if *traceOut != "" {
		led = telemetry.NewLedger("ftlload")
	}

	if *backends != "" {
		runVolume(*backends, *conns, *depth, *wl, *in, *ops, *pagelen, *seed, *rate, *seq,
			volume.Config{Stripe: *stripe, Replicas: *replicas, Sequenced: *seq, VerifyReads: *verify}, led)
		writeShard(*traceOut, led)
		return
	}

	// One probe connection learns the device shape before the fleet dials in.
	probe, err := client.Dial(*addr)
	if err != nil {
		fatalf("dial %s: %v", *addr, err)
	}
	snap, err := probe.Stat()
	if err != nil {
		probe.Close()
		fatalf("stat: %v", err)
	}
	if *tenant > 0 {
		if ok, terr := probe.SupportsTenant(); terr != nil || !ok {
			probe.Close()
			fatalf("%s does not advertise %s; run the server with Config.Tenants", *addr, server.TenantCap)
		}
	}
	probe.Close()
	space := snap.Capacity
	if space < 1 {
		fatalf("server reports capacity %d", space)
	}
	if *tenant > 0 {
		// The workload must stay inside the namespace: LPNs are
		// tenant-relative on the wire, so the generator's space is the
		// namespace size, not the device capacity.
		ts := snap.Server.Tenants
		if *tenant > len(ts) {
			fatalf("server has %d tenant namespaces; -tenant %d is out of range", len(ts), *tenant)
		}
		space = ts[*tenant-1].Pages
		fmt.Fprintf(os.Stderr, "ftlload: tenant %d (%s): %d pages, quota %d\n",
			*tenant, ts[*tenant-1].Name, space, ts[*tenant-1].Quota)
	}
	if *pagelen <= 0 {
		*pagelen = snap.PageSize
	}
	fmt.Fprintf(os.Stderr, "ftlload: %s: %d pages × %d B, %d conns × depth %d\n",
		*addr, space, snap.PageSize, *conns, *depth)

	reqs, err := buildRequests(*wl, *in, space, *ops, *pagelen, *seed, *rate)
	if err != nil {
		fatalf("%v", err)
	}
	if len(reqs) == 0 {
		fatalf("empty workload")
	}

	traced := false
	if led != nil {
		// Only stamp the extension toward peers that advertised it, so a
		// traced ftlload against a plain v1 server still sends v1 bytes.
		if ok, perr := supportsTrace(*addr); perr == nil && ok {
			traced = true
		} else {
			fmt.Fprintf(os.Stderr, "ftlload: %s does not advertise %s; tracing disabled\n", *addr, server.TraceCap)
		}
	}

	clients := make([]*client.Client, *conns)
	for i := range clients {
		if clients[i], err = client.Dial(*addr); err != nil {
			fatalf("dial %s: %v", *addr, err)
		}
		defer clients[i].Close()
		clients[i].SetLedger(led)
		if *tenant > 0 {
			clients[i].SetTenant(uint16(*tenant))
		}
	}

	lat := make([]float64, len(reqs))
	okFlag := make([]bool, len(reqs))
	var statusCount [server.StatusInternal + 1]atomic.Uint64
	var netErrs atomic.Uint64

	start := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < *conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			drive(clients[ci], reqs, ci, *conns, *depth, *seq, traced, lat, okFlag, &statusCount, &netErrs)
		}(ci)
	}
	wg.Wait()
	wall := time.Since(start)

	report(len(reqs), *conns, wall, lat, okFlag, &statusCount, &netErrs)

	if final, err := finalStat(*addr); err == nil {
		fmt.Printf("device: %d reqs (%d r / %d w / %d t), WAF %.3f; server: %d accepted, %d responses, %d rejected\n",
			final.Device.Requests, final.Device.Reads, final.Device.Writes, final.Device.Trims, final.WAF,
			final.Server.Accepted, final.Server.Responses, final.Server.Rejected)
	}
	writeShard(*traceOut, led)
}

// supportsTrace probes addr for the trace-extension capability.
func supportsTrace(addr string) (bool, error) {
	cl, err := client.Dial(addr)
	if err != nil {
		return false, err
	}
	defer cl.Close()
	return cl.SupportsTrace()
}

// writeShard dumps the ledger shard to path (no-op when tracing is off).
func writeShard(path string, led *telemetry.Ledger) {
	if path == "" || led == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatalf("trace shard: %v", err)
	}
	werr := led.WriteShard(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fatalf("trace shard %s: %v", path, werr)
	}
	fmt.Fprintf(os.Stderr, "ftlload: wrote %d hop records to %s\n", led.Len(), path)
}

// report prints the wall-clock throughput, status breakdown and simulated
// latency table shared by the single-server and volume drivers.
func report(reqs, conns int, wall time.Duration, lat []float64, okFlag []bool,
	statusCount *[server.StatusInternal + 1]atomic.Uint64, netErrs *atomic.Uint64) {
	var okLat []float64
	for i, ok := range okFlag {
		if ok {
			okLat = append(okLat, lat[i])
		}
	}
	sum := stats.Summarize(okLat)
	fmt.Printf("issued %d ops over %d conns in %v (%.0f ops/s wall)\n",
		reqs, conns, wall.Round(time.Millisecond), float64(reqs)/wall.Seconds())
	for st := server.StatusOK; st <= server.StatusInternal; st++ {
		if n := statusCount[st].Load(); n > 0 {
			fmt.Printf("  %-14s %d\n", st.String(), n)
		}
	}
	if n := netErrs.Load(); n > 0 {
		fmt.Printf("  %-14s %d\n", "net-error", n)
	}

	t := &stats.Table{Headers: []string{"metric", "simulated latency"}}
	t.AddRow("mean", stats.FmtUS(sum.Mean))
	t.AddRow("p50", stats.FmtUS(sum.Median))
	t.AddRow("p95", stats.FmtUS(sum.P95))
	t.AddRow("p99", stats.FmtUS(sum.P99))
	t.AddRow("p99.9", stats.FmtUS(sum.P999))
	t.AddRow("max", stats.FmtUS(sum.Max))
	fmt.Print(t.String())
}

// runVolume drives a sharded volume built in-process over the backends:
// same workload machinery, scattered by the volume's placement instead of a
// single server connection.
func runVolume(backends string, conns, depth int, wl, in string, ops int64,
	pagelen int, seed uint64, rate float64, seq bool, vcfg volume.Config, led *telemetry.Ledger) {
	var addrs []string
	for _, a := range strings.Split(backends, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	v, err := volume.Dial(addrs, vcfg)
	if err != nil {
		fatalf("%v", err)
	}
	defer v.Close()
	v.SetLedger(led)
	if pagelen <= 0 {
		pagelen = v.PageSize()
	}
	fmt.Fprintf(os.Stderr, "ftlload: volume over %d backends: %d pages × %d B (stripe %d, replicas %d), %d drivers × depth %d\n",
		len(addrs), v.Space(), v.PageSize(), vcfg.Stripe, vcfg.Replicas, conns, depth)

	reqs, err := buildRequests(wl, in, v.Space(), ops, pagelen, seed, rate)
	if err != nil {
		fatalf("%v", err)
	}
	if len(reqs) == 0 {
		fatalf("empty workload")
	}

	lat := make([]float64, len(reqs))
	okFlag := make([]bool, len(reqs))
	var statusCount [server.StatusInternal + 1]atomic.Uint64
	var netErrs atomic.Uint64

	start := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			driveVolume(v, reqs, ci, conns, depth, seq, led, lat, okFlag, &statusCount, &netErrs)
		}(ci)
	}
	wg.Wait()
	wall := time.Since(start)

	report(len(reqs), conns, wall, lat, okFlag, &statusCount, &netErrs)

	snap := v.ClusterStat()
	fmt.Printf("cluster: %d reqs (%d r / %d w / %d t), WAF %.3f; %d retries, %d repairs\n",
		snap.Device.Requests, snap.Device.Reads, snap.Device.Writes, snap.Device.Trims, snap.WAF,
		snap.Volume.Retries, snap.Volume.Repairs)
	for _, b := range snap.Backends {
		fmt.Printf("  backend %d %-21s %6d slots, %8d device reqs, WAF %.3f\n",
			b.Backend, b.Addr, b.Slots, b.Snap.Device.Requests, b.Snap.WAF)
	}
}

// driveVolume issues this driver's share of the stream (global index i with
// i %% conns == ci, ascending — the volume's sequenced cursor interleaves the
// drivers back into dense global order), keeping up to depth in flight.
func driveVolume(v *volume.Volume, reqs []ssd.Request, ci, conns, depth int, seq bool, led *telemetry.Ledger,
	lat []float64, okFlag []bool, statusCount *[server.StatusInternal + 1]atomic.Uint64, netErrs *atomic.Uint64) {
	sem := make(chan struct{}, depth)
	var wg sync.WaitGroup
	for i := ci; i < len(reqs); i += conns {
		var (
			call *volume.Call
			err  error
			tick = uint64(i)
			tr   volume.TraceRef
			t0   time.Time
		)
		if led != nil {
			// Request i is trace i+1 everywhere (0 means untraced on the wire).
			tr = volume.TraceRef{ID: tick + 1, Parent: telemetry.HopClient}
			t0 = time.Now()
		}
		sem <- struct{}{}
		switch reqs[i].Kind {
		case ssd.OpRead:
			call, err = v.StartRead(reqs[i].LPN, tick, reqs[i].Arrival, tr)
		case ssd.OpWrite:
			call, err = v.StartWrite(reqs[i].LPN, reqs[i].Data, reqs[i].Hint, tick, reqs[i].Arrival, tr)
		case ssd.OpTrim:
			call, err = v.StartTrim(reqs[i].LPN, tick, reqs[i].Arrival, tr)
		}
		if led != nil && err == nil {
			// The in-process analogue of the TCP client hop: how long the op
			// waited for volume admission (the sequenced cursor or a unit copy).
			led.Record(telemetry.HopRecord{
				Trace: tr.ID, Hop: telemetry.HopClient, Parent: telemetry.HopNone,
				Seq: tick, LPN: reqs[i].LPN,
				SimTS: -1, WallNS: time.Since(t0).Nanoseconds(),
			})
		}
		if err != nil {
			<-sem
			netErrs.Add(1)
			if seq {
				continue // the cursor already advanced; later tickets still flow
			}
			return
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			resp, err := call.Wait()
			if err != nil {
				netErrs.Add(1)
				return
			}
			statusCount[resp.Status].Add(1)
			if resp.Status == server.StatusOK {
				lat[i] = resp.Latency
				okFlag[i] = true
			}
		}(i)
	}
	wg.Wait()
}

// buildRequests materializes the request stream: generators are collected
// (and optionally Poisson-paced), traces are parsed with format
// auto-detection and primed so cold reads cannot fail.
func buildRequests(wl, in string, space, ops int64, pagelen int, seed uint64, rate float64) ([]ssd.Request, error) {
	var g workload.Generator
	switch wl {
	case "seqfill":
		n := ops
		if n > space {
			n = space
		}
		g = &workload.Sequential{N: n, PageLen: pagelen}
	case "uniform":
		g = &workload.Uniform{Space: space, Count: ops, PageLen: pagelen, Seed: seed}
	case "hotcold":
		g = &workload.HotCold{Space: space, Count: ops, HotFrac: 0.8, HotSpace: 0.2, PageLen: pagelen, Seed: seed}
	case "mixed":
		g = &workload.Mixed{Space: space, Count: ops, ReadFrac: 0.5, PageLen: pagelen, Seed: seed}
	case "trace":
		if in == "" {
			return nil, fmt.Errorf("-workload trace needs -in")
		}
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		reqs, format, err := workload.ParseTraceAuto(f, pagelen, space)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "ftlload: %s: %s trace, %d requests\n", in, format, len(reqs))
		prepared, _ := workload.PrepareForReplay(reqs)
		return prepared, nil
	default:
		return nil, fmt.Errorf("unknown workload %q", wl)
	}
	if rate > 0 {
		g = &workload.Paced{Gen: g, MeanGapUS: rate, Seed: seed}
	}
	return workload.Collect(g), nil
}

// drive issues this connection's share of the stream — requests whose global
// index i satisfies i %% conns == ci, in ascending order (ascending per-conn
// seq is what keeps sequenced admission deadlock-free) — keeping up to depth
// requests in flight.
func drive(cl *client.Client, reqs []ssd.Request, ci, conns, depth int, seq, traced bool,
	lat []float64, okFlag []bool, statusCount *[server.StatusInternal + 1]atomic.Uint64, netErrs *atomic.Uint64) {
	sem := make(chan struct{}, depth)
	var wg sync.WaitGroup
	for i := ci; i < len(reqs); i += conns {
		f := server.Frame{LPN: reqs[i].LPN, Arrival: reqs[i].Arrival}
		if traced {
			// Request i is trace i+1 everywhere (0 means untraced on the wire).
			f.Flags |= server.FlagTrace
			f.Trace = uint64(i) + 1
			f.ParentHop = telemetry.HopClient
		}
		switch reqs[i].Kind {
		case ssd.OpRead:
			f.Op = server.OpRead
		case ssd.OpWrite:
			f.Op = server.OpWrite
			f.Payload = reqs[i].Data
			f.Hint = reqs[i].Hint
		case ssd.OpTrim:
			f.Op = server.OpTrim
		}
		if seq {
			f.Flags |= server.FlagSequenced
			f.Seq = uint64(i)
		}
		sem <- struct{}{}
		call, err := cl.Start(f)
		if err != nil {
			<-sem
			netErrs.Add(1)
			return // connection is dead; its remaining share is lost
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			resp, err := call.Wait()
			if err != nil {
				netErrs.Add(1)
				return
			}
			statusCount[resp.Status].Add(1)
			if resp.Status == server.StatusOK {
				lat[i] = resp.Latency
				okFlag[i] = true
			}
		}(i)
	}
	wg.Wait()
}

// finalStat fetches a closing statistics snapshot on a fresh connection.
func finalStat(addr string) (server.StatSnapshot, error) {
	cl, err := client.Dial(addr)
	if err != nil {
		return server.StatSnapshot{}, err
	}
	defer cl.Close()
	return cl.Stat()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ftlload: "+format+"\n", args...)
	os.Exit(1)
}
