package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHashDeterministic(t *testing.T) {
	a := Hash(1, 2, 3, 4)
	b := Hash(1, 2, 3, 4)
	if a != b {
		t.Fatalf("Hash not deterministic: %x vs %x", a, b)
	}
}

func TestHashCoordSensitivity(t *testing.T) {
	base := Hash(7, 1, 2, 3)
	variants := []uint64{
		Hash(8, 1, 2, 3),
		Hash(7, 0, 2, 3),
		Hash(7, 1, 3, 3),
		Hash(7, 1, 2, 4),
		Hash(7, 1, 2),
		Hash(7, 1, 2, 3, 0),
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d collides with base", i)
		}
	}
}

func TestHashOrderMatters(t *testing.T) {
	if Hash(1, 2, 3) == Hash(1, 3, 2) {
		t.Fatal("Hash should be order-sensitive")
	}
}

func TestSourceStreamIndependence(t *testing.T) {
	s1 := New(42, 0)
	s2 := New(42, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("streams with different coords overlapped %d times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(1)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(2)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) should hit all 7 values over 1000 draws, got %d", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	s := New(3)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Normal variance = %v, want ~1", variance)
	}
}

func TestNormalFromHashMoments(t *testing.T) {
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := NormalFromHash(Hash(9, i))
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("NormalFromHash mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("NormalFromHash variance = %v, want ~1", variance)
	}
}

func TestNormalFromHashFinite(t *testing.T) {
	f := func(h uint64) bool {
		v := NormalFromHash(h)
		return !math.IsNaN(v) && !math.IsInf(v, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		n := 1 + int(seed%50)
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPermDeterministic(t *testing.T) {
	a := New(5, 1).Perm(20)
	b := New(5, 1).Perm(20)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Perm not deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestUnitFromHashRange(t *testing.T) {
	f := func(h uint64) bool {
		v := UnitFromHash(h)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHash(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= Hash(42, i, i*3, i*7)
	}
	_ = sink
}

func BenchmarkNormalFromHash(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += NormalFromHash(uint64(i))
	}
	_ = sink
}
