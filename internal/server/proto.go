// Package server exports the simulated SSD over TCP: a compact
// length-prefixed binary protocol (READ / WRITE / TRIM / FLUSH / STAT /
// PING) in front of ssd.ConcurrentDevice, with per-connection reader/writer
// goroutine pairs, a shared admission controller (global and per-connection
// in-flight caps, backpressure that stalls socket reads instead of buffering
// unboundedly, per-request admission deadlines) and graceful drain on
// shutdown. The matching pipelining client lives in server/client; the CLI
// front ends are cmd/ftlserve and cmd/ftlload.
//
// Wire format (all integers big-endian):
//
//	request frame                      response frame
//	u32  n     length of the rest      u32  n     length of the rest
//	u8   version (= 1)                 u8   version (= 1)
//	u8   opcode                        u8   status
//	u8   flags (bit0: sequenced,       u16  reserved (= 0)
//	            bit1: trace ext,       u64  request id
//	            bit2: tenant ext)      f64  simulated latency, µs
//	u8   hint                          payload [n-20]
//	u64  request id
//	i64  lpn
//	u64  seq (sequenced replay ticket)
//	f64  arrival, simulated µs
//	trace extension [16, present only with flag bit1]
//	tenant extension [8, present only with flag bit2]
//	payload [n-36-ext]
//
// The optional trace extension carries the distributed-tracing context of
// the per-hop latency ledger (see internal/telemetry's Hop taxonomy):
//
//	u64  trace id (0 = untraced)
//	u8   parent hop (Hop value, 0xff = none)
//	u8   replica leg index
//	u16  reserved (= 0)
//	u32  reserved (= 0)
//
// The optional tenant extension scopes the request to a namespace:
//
//	u16  tenant id (1-based index into the server's tenant table)
//	u16  reserved (= 0)
//	u32  reserved (= 0)
//
// A tenant-scoped LPN is relative to the tenant's namespace; the server
// rebases it into the device's flat LPN space and rejects out-of-namespace
// addresses with BAD_REQUEST.
//
// Extensions are negotiated, never assumed: a server that understands one
// advertises the matching capability token (TraceCap, TenantCap, FaultCap)
// in its PING response payload, and clients only set the flag after seeing
// the capability — frames without the flags are byte-identical to plain v1,
// so untraced, untenanted peers interoperate unchanged.
//
// A request's payload is the write data, or — for FAULT, negotiated via
// FaultCap — a JSON fault-injection command (see FaultRequest); it is empty
// for every other opcode. A response's payload is the read data, the STAT
// JSON snapshot, the FAULT JSON report, or the error text for non-OK
// statuses. Responses may arrive out of submission order — the request id
// keys them back to their request.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"superfast/internal/flash"
	"superfast/internal/ftl"
	"superfast/internal/ssd"
	"superfast/internal/telemetry"
)

// Protocol constants.
const (
	// Version is the wire protocol version; frames carrying any other
	// version are rejected.
	Version = 1
	// MaxPayload bounds a frame's payload. The decoder validates the length
	// prefix against it before allocating, so a hostile length field can
	// never force an oversized allocation.
	MaxPayload = 1 << 20

	reqHeaderLen  = 36 // bytes after the length prefix, before ext + payload
	traceExtLen   = 16 // trace extension bytes, present only with FlagTrace
	tenantExtLen  = 8  // tenant extension bytes, present only with FlagTenant
	respHeaderLen = 20

	maxExtLen = traceExtLen + tenantExtLen
)

// FlagSequenced marks a request carrying a replay ticket in Seq: the server
// admits it into the device in global Seq order, making a multi-connection
// replay bit-identical to a single-submitter run.
const FlagSequenced = 1 << 0

// FlagTrace marks a request carrying the 16-byte trace extension between
// the fixed header and the payload. Only set it against peers that
// advertised TraceCap — a plain v1 peer rejects unknown flag bits.
const FlagTrace = 1 << 1

// FlagTenant marks a request carrying the 8-byte tenant extension after the
// trace extension (when present). Only set it against peers that advertised
// TenantCap — a plain v1 peer rejects unknown flag bits.
const FlagTenant = 1 << 2

// TraceCap is the capability token a trace-aware server includes in its
// PING response payload (space-separated token list). Plain v1 servers
// answer PING with an empty payload, and plain v1 clients ignore it.
const TraceCap = "trace-ext"

// TenantCap is the capability token a server with configured tenant
// namespaces includes in its PING response payload.
const TenantCap = "tenant-ns"

// FaultCap is the capability token a server with fault injection enabled
// (Config.EnableFaults) includes in its PING response payload; OpFault is
// only accepted by servers that advertise it.
const FaultCap = "fault-inj"

// Op enumerates request opcodes.
type Op byte

// Request opcodes.
const (
	OpRead  Op = 1 + iota // read one logical page
	OpWrite               // write the payload to one logical page
	OpTrim                // discard one logical page
	OpFlush               // barrier: respond once this connection is idle
	OpStat                // snapshot device + server statistics (JSON)
	OpPing                // liveness / version probe
	OpFault               // fault injection command (JSON payload, behind FaultCap)
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpWrite:
		return "WRITE"
	case OpTrim:
		return "TRIM"
	case OpFlush:
		return "FLUSH"
	case OpStat:
		return "STAT"
	case OpPing:
		return "PING"
	case OpFault:
		return "FAULT"
	}
	return fmt.Sprintf("Op(%d)", byte(o))
}

// Status enumerates response status codes.
type Status byte

// Response statuses.
const (
	StatusOK            Status = iota
	StatusUncorrectable        // flash.ErrUncorrectable: ECC failed, no reconstruction
	StatusDataLoss             // ftl.ErrDataLoss: uncorrectable and RAID reconstruction failed
	StatusBadRequest           // malformed or out-of-range request (ftl.ErrOutOfRange, ftl.ErrUnmapped, mode mismatch)
	StatusRejected             // admission refused: the server is draining
	StatusDeadline             // admission deadline expired before a slot freed
	StatusInternal             // any other device error
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusUncorrectable:
		return "UNCORRECTABLE"
	case StatusDataLoss:
		return "DATA_LOSS"
	case StatusBadRequest:
		return "BAD_REQUEST"
	case StatusRejected:
		return "REJECTED"
	case StatusDeadline:
		return "DEADLINE"
	case StatusInternal:
		return "INTERNAL"
	}
	return fmt.Sprintf("Status(%d)", byte(s))
}

// StatusFor maps a device error onto the wire status that carries it.
func StatusFor(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, ftl.ErrDataLoss):
		return StatusDataLoss
	case errors.Is(err, flash.ErrUncorrectable):
		return StatusUncorrectable
	case errors.Is(err, ftl.ErrOutOfRange), errors.Is(err, ftl.ErrUnmapped):
		return StatusBadRequest
	}
	return StatusInternal
}

// Frame is one decoded request.
type Frame struct {
	Op      Op
	Flags   byte
	Hint    ftl.Hint // write placement hint
	ID      uint64   // echoed in the response
	LPN     int64
	Seq     uint64  // replay ticket, valid when FlagSequenced is set
	Arrival float64 // simulated arrival, µs; 0 = now
	Payload []byte  // write data

	// Trace context, valid when FlagTrace is set: the request's trace id,
	// the hop that issued this frame, and the replica leg index of a
	// volume fan-out (0 outside one).
	Trace     uint64
	ParentHop telemetry.Hop
	Leg       uint8

	// Tenant is the 1-based tenant namespace id, valid when FlagTenant is
	// set. The server rebases the frame's LPN into the tenant's slice of
	// the device.
	Tenant uint16
}

// Sequenced reports whether the frame carries a replay ticket.
func (f Frame) Sequenced() bool { return f.Flags&FlagSequenced != 0 }

// Traced reports whether the frame carries the trace extension.
func (f Frame) Traced() bool { return f.Flags&FlagTrace != 0 }

// Tenanted reports whether the frame carries the tenant extension.
func (f Frame) Tenanted() bool { return f.Flags&FlagTenant != 0 }

// Response is one decoded response.
type Response struct {
	Status  Status
	ID      uint64
	Latency float64 // simulated host-visible latency, µs
	Payload []byte  // read data, STAT JSON, or error text
}

// Err returns nil for StatusOK and a descriptive error otherwise.
func (r Response) Err() error {
	if r.Status == StatusOK {
		return nil
	}
	if len(r.Payload) > 0 {
		return fmt.Errorf("server: %s: %s", r.Status, r.Payload)
	}
	return fmt.Errorf("server: %s", r.Status)
}

// Decode errors. ErrShortFrame means the buffer ends before the frame does —
// a streaming caller should read more bytes; every other error is a protocol
// violation that should kill the connection.
var (
	ErrShortFrame = errors.New("server: short frame")
	ErrBadFrame   = errors.New("server: malformed frame")
	ErrFrameSize  = errors.New("server: frame length out of bounds")
)

// AppendFrame encodes f after dst and returns the extended slice. The trace
// extension is written only when FlagTrace is set, so an untraced frame's
// encoding is byte-identical to plain v1.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return nil, fmt.Errorf("%w: payload %d > %d", ErrFrameSize, len(f.Payload), MaxPayload)
	}
	if f.Op < OpRead || f.Op > OpFault {
		return nil, fmt.Errorf("%w: opcode %d", ErrBadFrame, f.Op)
	}
	n := reqHeaderLen + len(f.Payload)
	if f.Traced() {
		n += traceExtLen
	}
	if f.Tenanted() {
		n += tenantExtLen
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, Version, byte(f.Op), f.Flags, byte(f.Hint))
	dst = binary.BigEndian.AppendUint64(dst, f.ID)
	dst = binary.BigEndian.AppendUint64(dst, uint64(f.LPN))
	dst = binary.BigEndian.AppendUint64(dst, f.Seq)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(f.Arrival))
	if f.Traced() {
		dst = binary.BigEndian.AppendUint64(dst, f.Trace)
		dst = append(dst, byte(f.ParentHop), f.Leg, 0, 0)
		dst = binary.BigEndian.AppendUint32(dst, 0)
	}
	if f.Tenanted() {
		dst = binary.BigEndian.AppendUint16(dst, f.Tenant)
		dst = binary.BigEndian.AppendUint16(dst, 0)
		dst = binary.BigEndian.AppendUint32(dst, 0)
	}
	return append(dst, f.Payload...), nil
}

// DecodeFrame decodes one request frame from the head of b, returning the
// frame and the bytes consumed. It returns ErrShortFrame when b ends before
// the frame does, and never allocates more than the frame's validated
// payload length. The returned payload is a copy, safe to retain after b is
// reused.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < 4 {
		return Frame{}, 0, ErrShortFrame
	}
	n := int(binary.BigEndian.Uint32(b))
	if n < reqHeaderLen || n > reqHeaderLen+maxExtLen+MaxPayload {
		return Frame{}, 0, fmt.Errorf("%w: %d", ErrFrameSize, n)
	}
	if len(b) < 4+n {
		return Frame{}, 0, ErrShortFrame
	}
	h := b[4:]
	if h[0] != Version {
		return Frame{}, 0, fmt.Errorf("%w: version %d", ErrBadFrame, h[0])
	}
	f := Frame{
		Op:      Op(h[1]),
		Flags:   h[2],
		Hint:    ftl.Hint(h[3]),
		ID:      binary.BigEndian.Uint64(h[4:]),
		LPN:     int64(binary.BigEndian.Uint64(h[12:])),
		Seq:     binary.BigEndian.Uint64(h[20:]),
		Arrival: math.Float64frombits(binary.BigEndian.Uint64(h[28:])),
	}
	if f.Op < OpRead || f.Op > OpFault {
		return Frame{}, 0, fmt.Errorf("%w: opcode %d", ErrBadFrame, f.Op)
	}
	if f.Flags&^(FlagSequenced|FlagTrace|FlagTenant) != 0 {
		return Frame{}, 0, fmt.Errorf("%w: flags %#x", ErrBadFrame, f.Flags)
	}
	if f.Hint > ftl.HintBatch {
		return Frame{}, 0, fmt.Errorf("%w: hint %d", ErrBadFrame, f.Hint)
	}
	if math.IsNaN(f.Arrival) || math.IsInf(f.Arrival, 0) || f.Arrival < 0 {
		return Frame{}, 0, fmt.Errorf("%w: arrival %v", ErrBadFrame, f.Arrival)
	}
	body := reqHeaderLen
	if f.Traced() {
		if n < reqHeaderLen+traceExtLen {
			return Frame{}, 0, fmt.Errorf("%w: traced frame of %d bytes", ErrFrameSize, n)
		}
		ext := h[reqHeaderLen:]
		f.Trace = binary.BigEndian.Uint64(ext)
		f.ParentHop = telemetry.Hop(ext[8])
		f.Leg = ext[9]
		if !f.ParentHop.Valid() && f.ParentHop != telemetry.HopNone {
			return Frame{}, 0, fmt.Errorf("%w: parent hop %d", ErrBadFrame, ext[8])
		}
		if ext[10] != 0 || ext[11] != 0 || binary.BigEndian.Uint32(ext[12:]) != 0 {
			return Frame{}, 0, fmt.Errorf("%w: trace ext reserved bytes set", ErrBadFrame)
		}
		body += traceExtLen
	}
	if f.Tenanted() {
		if n < body+tenantExtLen {
			return Frame{}, 0, fmt.Errorf("%w: tenanted frame of %d bytes", ErrFrameSize, n)
		}
		ext := h[body:]
		f.Tenant = binary.BigEndian.Uint16(ext)
		if f.Tenant == 0 {
			return Frame{}, 0, fmt.Errorf("%w: tenant id 0", ErrBadFrame)
		}
		if binary.BigEndian.Uint16(ext[2:]) != 0 || binary.BigEndian.Uint32(ext[4:]) != 0 {
			return Frame{}, 0, fmt.Errorf("%w: tenant ext reserved bytes set", ErrBadFrame)
		}
		body += tenantExtLen
	}
	if pay := n - body; pay > 0 {
		if pay > MaxPayload {
			return Frame{}, 0, fmt.Errorf("%w: payload %d > %d", ErrFrameSize, pay, MaxPayload)
		}
		if f.Op != OpWrite && f.Op != OpFault {
			return Frame{}, 0, fmt.Errorf("%w: %s carries a payload", ErrBadFrame, f.Op)
		}
		f.Payload = append([]byte(nil), h[body:n]...)
	}
	return f, 4 + n, nil
}

// ReadFrame reads one request frame from r. The int return is the wire bytes
// consumed (for transfer accounting) even when decoding fails mid-frame.
func ReadFrame(r io.Reader) (Frame, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, 0, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n < reqHeaderLen || n > reqHeaderLen+maxExtLen+MaxPayload {
		return Frame{}, 4, fmt.Errorf("%w: %d", ErrFrameSize, n)
	}
	buf := make([]byte, 4+n)
	copy(buf, hdr[:])
	got, err := io.ReadFull(r, buf[4:])
	if err != nil {
		return Frame{}, 4 + got, err
	}
	f, used, err := DecodeFrame(buf)
	return f, used, err
}

// AppendResponse encodes r after dst and returns the extended slice.
func AppendResponse(dst []byte, r Response) ([]byte, error) {
	if len(r.Payload) > MaxPayload {
		return nil, fmt.Errorf("%w: payload %d > %d", ErrFrameSize, len(r.Payload), MaxPayload)
	}
	n := respHeaderLen + len(r.Payload)
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, Version, byte(r.Status), 0, 0)
	dst = binary.BigEndian.AppendUint64(dst, r.ID)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(r.Latency))
	return append(dst, r.Payload...), nil
}

// DecodeResponse decodes one response frame from the head of b, with the
// same contract as DecodeFrame.
func DecodeResponse(b []byte) (Response, int, error) {
	if len(b) < 4 {
		return Response{}, 0, ErrShortFrame
	}
	n := int(binary.BigEndian.Uint32(b))
	if n < respHeaderLen || n > respHeaderLen+MaxPayload {
		return Response{}, 0, fmt.Errorf("%w: %d", ErrFrameSize, n)
	}
	if len(b) < 4+n {
		return Response{}, 0, ErrShortFrame
	}
	h := b[4:]
	if h[0] != Version {
		return Response{}, 0, fmt.Errorf("%w: version %d", ErrBadFrame, h[0])
	}
	if h[2] != 0 || h[3] != 0 {
		return Response{}, 0, fmt.Errorf("%w: reserved bytes set", ErrBadFrame)
	}
	r := Response{
		Status:  Status(h[1]),
		ID:      binary.BigEndian.Uint64(h[4:]),
		Latency: math.Float64frombits(binary.BigEndian.Uint64(h[12:])),
	}
	if r.Status > StatusInternal {
		return Response{}, 0, fmt.Errorf("%w: status %d", ErrBadFrame, r.Status)
	}
	if math.IsNaN(r.Latency) || math.IsInf(r.Latency, 0) {
		return Response{}, 0, fmt.Errorf("%w: latency %v", ErrBadFrame, r.Latency)
	}
	if n > respHeaderLen {
		r.Payload = append([]byte(nil), h[respHeaderLen:n]...)
	}
	return r, 4 + n, nil
}

// ReadResponse reads one response frame from r, returning the wire bytes
// consumed alongside the decoded response.
func ReadResponse(r io.Reader) (Response, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Response{}, 0, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n < respHeaderLen || n > respHeaderLen+MaxPayload {
		return Response{}, 4, fmt.Errorf("%w: %d", ErrFrameSize, n)
	}
	buf := make([]byte, 4+n)
	copy(buf, hdr[:])
	got, err := io.ReadFull(r, buf[4:])
	if err != nil {
		return Response{}, 4 + got, err
	}
	resp, used, err := DecodeResponse(buf)
	return resp, used, err
}

// ServerStats reports the serving layer's own counters inside a STAT
// snapshot.
type ServerStats struct {
	Conns     int64  `json:"conns"`       // connections currently open
	ConnsEver uint64 `json:"conns_total"` // connections ever accepted
	Accepted  uint64 `json:"accepted"`    // frames decoded off sockets
	Responses uint64 `json:"responses"`   // responses enqueued to writers
	Rejected  uint64 `json:"rejected"`    // admission refusals (drain or deadline)
	InFlight  int64  `json:"in_flight"`   // requests between admission and response
	BytesIn   uint64 `json:"bytes_in"`
	BytesOut  uint64 `json:"bytes_out"`
	// Tenants holds per-namespace counters, in tenant-id order, when the
	// server is partitioned (Config.Tenants); nil otherwise.
	Tenants []TenantStats `json:"tenants,omitempty"`
}

// TenantStats is one namespace's slice of the serving counters.
type TenantStats struct {
	Name     string `json:"name"`
	Pages    int64  `json:"pages"`
	Quota    int    `json:"quota"`
	Accepted uint64 `json:"accepted"`
	Rejected uint64 `json:"rejected"`
}

// StatSnapshot is the STAT response payload: the device, FTL and serving
// layer statistics as one JSON document.
type StatSnapshot struct {
	Capacity int64           `json:"capacity_lpns"`
	PageSize int             `json:"page_size"`
	Device   ssd.Stats       `json:"device"`
	FTL      ftl.Stats       `json:"ftl"`
	WAF      float64         `json:"waf"`
	Chips    []ssd.ChipStats `json:"chips"`
	Server   ServerStats     `json:"server"`
}
