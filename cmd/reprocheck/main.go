// Command reprocheck certifies the reproduction: it runs the evaluation
// sweep and compares every headline number and ordering against the paper's
// published values, printing PASS/FAIL per check with the allowed band.
//
// Usage:
//
//	reprocheck            # medium scale (~1 min)
//	reprocheck -full      # the paper's full setup (several minutes)
//	reprocheck -quick     # smoke scale
package main

import (
	"flag"
	"fmt"
	"os"

	"superfast/internal/assembly"
	"superfast/internal/core"
	"superfast/internal/experiments"
	"superfast/internal/flash"
	"superfast/internal/stats"
)

// check is one certification row.
type check struct {
	name   string
	paper  string
	got    string
	pass   bool
	detail string
}

func main() {
	var (
		full  = flag.Bool("full", false, "run the paper's full-scale setup")
		quick = flag.Bool("quick", false, "smoke scale (loose bands)")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	switch {
	case *full:
		// keep defaults
	case *quick:
		cfg.BlocksPerLane = 100
		cfg.Groups = 1
		cfg.PESteps = []int{0}
	default:
		cfg.BlocksPerLane = 200
		cfg.Groups = 2
		cfg.PESteps = []int{0, 1500, 3000}
	}

	strategies := []assembly.Assembler{
		assembly.Random{Seed: cfg.Seed + 1},
		assembly.Sequential{},
		assembly.ByErase{},
		assembly.ByPgmSum{},
		assembly.Optimal{Window: cfg.Window},
		assembly.Ranked{Kind: assembly.LWLRank, Window: cfg.Window},
		assembly.Ranked{Kind: assembly.STRRank, Window: cfg.Window},
		assembly.STRMedian{Window: cfg.MedWindow},
		core.BatchAssembler{K: cfg.MedWindow},
	}
	out, err := experiments.SweepStrategies(cfg, strategies)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprocheck: %v\n", err)
		os.Exit(1)
	}
	byName := map[string]experiments.StrategyOutcome{}
	for _, o := range out {
		byName[o.Name] = o
	}
	rnd := byName["RANDOM"]
	imp := func(name string) float64 {
		return stats.Improvement(rnd.MeanPgm, byName[name].MeanPgm)
	}
	impErs := func(name string) float64 {
		return stats.Improvement(rnd.MeanErs, byName[name].MeanErs)
	}
	opt := fmt.Sprintf("OPTIMAL (%d)", cfg.Window)
	strRank := fmt.Sprintf("STR-RANK (%d)", cfg.Window)
	lwlRank := fmt.Sprintf("LWL-RANK (%d)", cfg.Window)
	strMed := fmt.Sprintf("STR-MED (%d)", cfg.MedWindow)
	qstr := fmt.Sprintf("QSTR-MED (%d)", cfg.MedWindow)

	band := func(v, lo, hi float64) bool { return v >= lo && v <= hi }
	loose := 1.0
	if *quick {
		loose = 2.0 // widen absolute bands at smoke scale
	}
	var checks []check
	add := func(name, paper string, got string, pass bool, detail string) {
		checks = append(checks, check{name, paper, got, pass, detail})
	}

	// Headline magnitudes (Fig. 6 / Table V), band ±15% (× loose).
	add("random extra PGM latency", "13,084.17 µs", stats.FmtUS(rnd.MeanPgm)+" µs",
		band(rnd.MeanPgm, 13084*(1-0.15*loose), 13084*(1+0.15*loose)), "±15%")
	add("random extra ERS latency", "41.71 µs", stats.FmtUS(rnd.MeanErs)+" µs",
		band(rnd.MeanErs, 41.71*(1-0.2*loose), 41.71*(1+0.2*loose)), "±20%")

	// Table I improvement magnitudes, band ±4 pp (× loose).
	pp := 0.04 * loose
	impChecks := []struct {
		name  string
		key   string
		paper float64
	}{
		{"SEQUENTIAL improvement", "SEQUENTIAL", 0.1045},
		{"ERS-LTN improvement", "ERS-LTN", 0.0855},
		{"PGM-LTN improvement", "PGM-LTN", 0.1037},
		{"OPTIMAL(8) improvement", opt, 0.1949},
		{"LWL-RANK(8) improvement", lwlRank, 0.1411},
		{"STR-RANK(8) improvement", strRank, 0.1827},
		{"STR-MED(4) improvement", strMed, 0.1674},
		{"QSTR-MED(4) improvement", qstr, 0.1661},
	}
	for _, c := range impChecks {
		v := imp(c.key)
		add(c.name, stats.FmtPct(c.paper), stats.FmtPct(v),
			band(v, c.paper-pp, c.paper+pp), fmt.Sprintf("±%.0f pp", pp*100))
	}

	// Orderings (the load-bearing shape).
	add("OPTIMAL ≥ STR-RANK", "ordering", "", imp(opt) >= imp(strRank), "")
	add("STR-RANK ≥ STR-MED", "ordering", "", imp(strRank) >= imp(strMed), "")
	add("STR-MED ≈ QSTR-MED (≤3 pp)", "ordering", "",
		imp(strMed)-imp(qstr) <= 0.03 && imp(strMed)-imp(qstr) >= -0.01, "")
	add("QSTR-MED > SEQUENTIAL", "ordering", "", imp(qstr) > imp("SEQUENTIAL"), "")
	add("erase gains exceed program gains (QSTR-MED)", "ordering", "",
		impErs(qstr) > imp(qstr), "")

	// Computing overhead (§VI-B2).
	med := byName[strMed]
	q := byName[qstr]
	reduction := stats.Improvement(float64(med.PairChecks), float64(q.PairChecks))
	add("QSTR-MED check reduction", "99.22%", stats.FmtPct(reduction),
		band(reduction, 0.985, 0.995), "±0.5 pp")

	// Space overhead (Equation 2).
	perBlock := core.MemoryFootprintBytes(flash.PaperGeometry()) / flash.PaperGeometry().TotalBlocks()
	add("metadata per block", "52 B", fmt.Sprintf("%d B", perBlock), perBlock == 52, "exact")

	// Render.
	t := stats.Table{Title: "Reproduction certification", Headers: []string{"Check", "Paper", "Measured", "Band", "Result"}}
	failed := 0
	for _, c := range checks {
		res := "PASS"
		if !c.pass {
			res = "FAIL"
			failed++
		}
		t.AddRow(c.name, c.paper, c.got, c.detail, res)
	}
	fmt.Print(t.String())
	fmt.Printf("\n%d/%d checks passed", len(checks)-failed, len(checks))
	if failed > 0 {
		fmt.Printf(" — %d FAILED", failed)
	}
	fmt.Println()
	fmt.Println("(known deviation: PWL-RANK is excluded; see DESIGN.md §5)")
	if failed > 0 {
		os.Exit(1)
	}
}
