// Package volume shards one logical LPN space across N block-service
// backends: deterministic striped placement with optional K-way replication,
// per-backend pipelined connections, scatter/gather range operations, live
// backend add/remove with shard-range rebalancing, and a cluster view that
// merges per-backend statistics into one exposition. The CLI front end is
// cmd/ftlvol; cmd/ftlload can drive a volume directly with -backends.
package volume

import (
	"fmt"
	"sort"
)

// Loc is one placed copy of a logical page: the backend holding it and the
// shard-local LPN on that backend's device.
type Loc struct {
	Backend int   // index into the volume's backend table
	SLPN    int64 // shard-local LPN
}

// Move is one planned shard-range relocation: replica copy Replica of stripe
// unit Unit leaves backend From (freeing FromSlot) for backend To (slot
// ToSlot, already reserved). The unit covers logical pages
// [Unit×stripe, (Unit+1)×stripe).
type Move struct {
	Unit     int64
	Replica  int
	From     int
	FromSlot int64
	To       int
	ToSlot   int64
}

// backendState is one backend's slot accounting.
type backendState struct {
	active   bool
	capSlots int64   // total slots this backend can hold
	nextSlot int64   // high-water mark of never-used slots
	freed    []int64 // returned slots, kept ascending; reused lowest-first
	used     int64   // slots currently assigned
	rev      []int64 // slot → unit, -1 when empty (len = nextSlot high-water)
}

// Placement is the deterministic mapping from logical pages to backend shard
// pages. The logical space is cut into stripe units of Stripe pages; each
// unit is assigned to Replicas distinct backends, each holding it in one
// slot (a stripe-aligned run of shard LPNs). The initial layout stripes
// units round-robin (unit u's primary is backend u mod N, slot u div N —
// the RAID-0 layout that makes aggregate bandwidth scale with N); rebalance
// plans move whole units and nothing else, so a backend-set change relocates
// exactly the planned shard ranges.
//
// Placement is pure bookkeeping — it never touches data. Not safe for
// concurrent use; the Volume serializes access.
type Placement struct {
	space    int64 // logical pages (whole units)
	stripe   int64 // pages per unit
	replicas int

	units    [][]locSlot // unit → replica copies, primary first
	backends []backendState
}

// locSlot is an internal placement entry in slot (not page) units.
type locSlot struct {
	backend int
	slot    int64
}

// NewPlacement builds the initial striped layout. space is the logical page
// count (rounded down to whole stripe units), stripe the pages per unit, and
// backendSlots each backend's capacity in slots (its device capacity divided
// by the stripe size). replicas copies of every unit are placed on distinct
// backends.
func NewPlacement(space, stripe int64, backendSlots []int64, replicas int) (*Placement, error) {
	n := len(backendSlots)
	if n == 0 {
		return nil, fmt.Errorf("volume: no backends")
	}
	if stripe < 1 {
		return nil, fmt.Errorf("volume: stripe %d pages, want ≥ 1", stripe)
	}
	if replicas < 1 || replicas > n {
		return nil, fmt.Errorf("volume: %d replicas over %d backends", replicas, n)
	}
	units := space / stripe
	if units < 1 {
		return nil, fmt.Errorf("volume: space %d pages < one stripe unit of %d", space, stripe)
	}
	p := &Placement{
		space:    units * stripe,
		stripe:   stripe,
		replicas: replicas,
		units:    make([][]locSlot, units),
		backends: make([]backendState, n),
	}
	for i, s := range backendSlots {
		if s < 1 {
			return nil, fmt.Errorf("volume: backend %d holds %d slots", i, s)
		}
		p.backends[i] = backendState{active: true, capSlots: s}
	}
	for u := int64(0); u < units; u++ {
		copies := make([]locSlot, 0, replicas)
		for k := 0; k < replicas; k++ {
			b := int((u + int64(k)) % int64(n))
			slot, err := p.takeSlot(b, u)
			if err != nil {
				return nil, fmt.Errorf("volume: placing unit %d replica %d: %w", u, k, err)
			}
			copies = append(copies, locSlot{backend: b, slot: slot})
		}
		p.units[u] = copies
	}
	return p, nil
}

// takeSlot reserves the lowest free slot on backend b for unit u.
func (p *Placement) takeSlot(b int, u int64) (int64, error) {
	bs := &p.backends[b]
	var slot int64
	if len(bs.freed) > 0 {
		slot = bs.freed[0]
		bs.freed = bs.freed[1:]
	} else {
		if bs.nextSlot >= bs.capSlots {
			return 0, fmt.Errorf("backend %d full (%d slots)", b, bs.capSlots)
		}
		slot = bs.nextSlot
		bs.nextSlot++
		bs.rev = append(bs.rev, -1)
	}
	bs.rev[slot] = u
	bs.used++
	return slot, nil
}

// freeSlot returns a slot to backend b's free list.
func (p *Placement) freeSlot(b int, slot int64) {
	bs := &p.backends[b]
	bs.rev[slot] = -1
	bs.used--
	i := sort.Search(len(bs.freed), func(i int) bool { return bs.freed[i] >= slot })
	bs.freed = append(bs.freed, 0)
	copy(bs.freed[i+1:], bs.freed[i:])
	bs.freed[i] = slot
}

// Space returns the logical page count (whole stripe units).
func (p *Placement) Space() int64 { return p.space }

// Stripe returns the pages per stripe unit.
func (p *Placement) Stripe() int64 { return p.stripe }

// Units returns the stripe-unit count.
func (p *Placement) Units() int64 { return int64(len(p.units)) }

// Replicas returns the copies kept of every unit.
func (p *Placement) Replicas() int { return p.replicas }

// Backends returns the size of the backend table, including removed entries.
func (p *Placement) Backends() int { return len(p.backends) }

// Active reports whether backend b is serving shard ranges.
func (p *Placement) Active(b int) bool {
	return b >= 0 && b < len(p.backends) && p.backends[b].active
}

// SlotsUsed returns the slots currently assigned on backend b.
func (p *Placement) SlotsUsed(b int) int64 { return p.backends[b].used }

// Locate appends the placed copies of lpn to out (primary first) and returns
// the extended slice. Every copy lives on a distinct backend.
func (p *Placement) Locate(lpn int64, out []Loc) ([]Loc, error) {
	if lpn < 0 || lpn >= p.space {
		return out, fmt.Errorf("volume: lpn %d outside [0, %d)", lpn, p.space)
	}
	u := lpn / p.stripe
	off := lpn % p.stripe
	for _, c := range p.units[u] {
		out = append(out, Loc{Backend: c.backend, SLPN: c.slot*p.stripe + off})
	}
	return out, nil
}

// Reverse maps one backend shard page back to its logical page. ok is false
// when no unit copy occupies that shard page.
func (p *Placement) Reverse(backend int, slpn int64) (int64, bool) {
	if backend < 0 || backend >= len(p.backends) || slpn < 0 {
		return 0, false
	}
	bs := &p.backends[backend]
	slot := slpn / p.stripe
	if slot >= int64(len(bs.rev)) || bs.rev[slot] < 0 {
		return 0, false
	}
	return bs.rev[slot]*p.stripe + slpn%p.stripe, true
}

// loadOrder returns the active backend indexes sorted by descending used
// slots, ties broken by ascending index — the deterministic donor order.
func (p *Placement) loadOrder() []int {
	var idx []int
	for i := range p.backends {
		if p.backends[i].active {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		if p.backends[idx[a]].used != p.backends[idx[b]].used {
			return p.backends[idx[a]].used > p.backends[idx[b]].used
		}
		return idx[a] < idx[b]
	})
	return idx
}

// holdsUnit reports whether backend b already holds a copy of unit u.
func (p *Placement) holdsUnit(b int, u int64) bool {
	for _, c := range p.units[u] {
		if c.backend == b {
			return true
		}
	}
	return false
}

// largestUnitOn returns the unit in backend b's highest occupied slot that
// backend 'to' does not already hold and that is not in skip, plus its
// replica index; found is false when none qualifies. Highest-slot-first keeps
// donor shards dense at the bottom of their slot space.
func (p *Placement) largestUnitOn(b, to int, skip map[int64]bool) (unit int64, replica int, found bool) {
	bs := &p.backends[b]
	for slot := int64(len(bs.rev)) - 1; slot >= 0; slot-- {
		u := bs.rev[slot]
		if u < 0 || skip[u] || p.holdsUnit(to, u) {
			continue
		}
		for k, c := range p.units[u] {
			if c.backend == b && c.slot == slot {
				return u, k, true
			}
		}
	}
	return 0, 0, false
}

// BeginAdd registers a new backend with the given slot capacity and plans
// the rebalance toward an even load: units move (largest-unit-first from the
// most-loaded donors) until the newcomer reaches the cluster mean or its
// capacity. Destination slots are reserved immediately; each move takes
// effect only when Commit is called after its data has been copied, so
// traffic keeps flowing off the old copies meanwhile. The returned moves are
// the complete difference between the old and new layouts — nothing else
// relocates.
func (p *Placement) BeginAdd(slots int64) (int, []Move, error) {
	if slots < 1 {
		return 0, nil, fmt.Errorf("volume: new backend holds %d slots", slots)
	}
	nb := len(p.backends)
	p.backends = append(p.backends, backendState{active: true, capSlots: slots})
	var total int64
	var active int64
	for i := range p.backends {
		if p.backends[i].active {
			total += p.backends[i].used
			active++
		}
	}
	target := total / active
	if target > slots {
		target = slots
	}
	// Donors keep their slots until Commit, so planning tracks the pending
	// outbound count per donor (effective load) and the units already claimed,
	// or every iteration would re-pick the same highest slot.
	planned := make(map[int64]bool)
	pendingOut := make(map[int]int64)
	var moves []Move
	for p.backends[nb].used < target {
		donor, donorLoad := -1, int64(0)
		for i := range p.backends {
			if i == nb || !p.backends[i].active {
				continue
			}
			eff := p.backends[i].used - pendingOut[i]
			if eff <= target {
				continue
			}
			if donor == -1 || eff > donorLoad {
				donor, donorLoad = i, eff
			}
		}
		if donor == -1 {
			break
		}
		u, k, ok := p.largestUnitOn(donor, nb, planned)
		if !ok {
			pendingOut[donor] = p.backends[donor].used - target // exhausted
			continue
		}
		slot, err := p.takeSlot(nb, u)
		if err != nil {
			// Unreachable while target ≤ capSlots, but a failed plan must not
			// leak: release every reservation and drop the new backend.
			for _, m := range moves {
				p.freeSlot(m.To, m.ToSlot)
			}
			p.backends = p.backends[:nb]
			return 0, nil, err
		}
		// takeSlot points rev at the unit for reservation accounting, but
		// the unit still reads from the donor until Commit.
		moves = append(moves, Move{
			Unit: u, Replica: k,
			From: donor, FromSlot: p.units[u][k].slot,
			To: nb, ToSlot: slot,
		})
		planned[u] = true
		pendingOut[donor]++
	}
	return nb, moves, nil
}

// BeginRemove deactivates backend b for new placement and plans the move of
// every unit copy it holds onto the least-loaded remaining backends.
// Destination slots are reserved immediately; each move commits after its
// copy. The backend keeps serving reads for uncommitted moves until the last
// Commit lands.
func (p *Placement) BeginRemove(b int) ([]Move, error) {
	if !p.Active(b) {
		return nil, fmt.Errorf("volume: backend %d is not active", b)
	}
	active := 0
	for i := range p.backends {
		if p.backends[i].active {
			active++
		}
	}
	if active-1 < p.replicas {
		return nil, fmt.Errorf("volume: removing backend %d leaves %d backends for %d replicas",
			b, active-1, p.replicas)
	}
	p.backends[b].active = false
	bs := &p.backends[b]
	var moves []Move
	// A plan that cannot complete must leave the placement exactly as it
	// found it: reactivate the backend and release every reserved slot.
	fail := func(err error) ([]Move, error) {
		for _, m := range moves {
			p.freeSlot(m.To, m.ToSlot)
		}
		p.backends[b].active = true
		return nil, err
	}
	for slot := int64(0); slot < int64(len(bs.rev)); slot++ {
		u := bs.rev[slot]
		if u < 0 {
			continue
		}
		replica := -1
		for k, c := range p.units[u] {
			if c.backend == b && c.slot == slot {
				replica = k
				break
			}
		}
		if replica < 0 {
			// Reserved destination of an uncommitted inbound move; the unit
			// still officially lives elsewhere. Removing mid-rebalance is not
			// supported.
			return fail(fmt.Errorf("volume: backend %d has an uncommitted inbound move for unit %d", b, u))
		}
		to := -1
		var bestLoad int64
		for _, cand := range p.loadOrderAsc() {
			if cand == b || p.holdsUnit(cand, u) {
				continue
			}
			cs := &p.backends[cand]
			if cs.used >= cs.capSlots {
				continue
			}
			if to == -1 || cs.used < bestLoad {
				to = cand
				bestLoad = cs.used
			}
		}
		if to == -1 {
			return fail(fmt.Errorf("volume: no backend can absorb unit %d from backend %d", u, b))
		}
		dst, err := p.takeSlot(to, u)
		if err != nil {
			return fail(err)
		}
		moves = append(moves, Move{Unit: u, Replica: replica, From: b, FromSlot: slot, To: to, ToSlot: dst})
	}
	return moves, nil
}

// loadOrderAsc returns active backends by ascending load, ties by index.
func (p *Placement) loadOrderAsc() []int {
	idx := p.loadOrder()
	for i, j := 0, len(idx)-1; i < j; i, j = i+1, j-1 {
		idx[i], idx[j] = idx[j], idx[i]
	}
	// Reversing a desc-by-load/asc-by-index order yields asc-by-load but
	// desc-by-index ties; re-sort for the deterministic contract.
	sort.Slice(idx, func(a, b int) bool {
		if p.backends[idx[a]].used != p.backends[idx[b]].used {
			return p.backends[idx[a]].used < p.backends[idx[b]].used
		}
		return idx[a] < idx[b]
	})
	return idx
}

// Commit finalizes one planned move: the unit's replica now reads from the
// destination, and the source slot returns to its backend's free list.
func (p *Placement) Commit(m Move) error {
	if m.Unit < 0 || m.Unit >= int64(len(p.units)) {
		return fmt.Errorf("volume: commit of unknown unit %d", m.Unit)
	}
	if m.Replica < 0 || m.Replica >= p.replicas {
		return fmt.Errorf("volume: commit of unknown replica %d", m.Replica)
	}
	if m.To < 0 || m.To >= len(p.backends) || m.ToSlot < 0 ||
		m.ToSlot >= int64(len(p.backends[m.To].rev)) {
		return fmt.Errorf("volume: commit destination (%d,%d) out of range", m.To, m.ToSlot)
	}
	c := &p.units[m.Unit][m.Replica]
	if c.backend != m.From || c.slot != m.FromSlot {
		return fmt.Errorf("volume: commit mismatch for unit %d replica %d: at (%d,%d), move says (%d,%d)",
			m.Unit, m.Replica, c.backend, c.slot, m.From, m.FromSlot)
	}
	if got := p.backends[m.To].rev[m.ToSlot]; got != m.Unit {
		return fmt.Errorf("volume: destination slot (%d,%d) reserved for unit %d, not %d",
			m.To, m.ToSlot, got, m.Unit)
	}
	c.backend, c.slot = m.To, m.ToSlot
	p.freeSlot(m.From, m.FromSlot)
	return nil
}

// PageRange returns the logical page range [lo, hi) a move relocates.
func (m Move) PageRange(stripe int64) (lo, hi int64) {
	return m.Unit * stripe, (m.Unit + 1) * stripe
}
