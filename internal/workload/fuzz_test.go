package workload

import (
	"strings"
	"testing"

	"superfast/internal/ssd"
)

// FuzzParseTrace checks the trace parser never panics and that every parsed
// request is structurally valid.
func FuzzParseTrace(f *testing.F) {
	f.Add("w,1\nr,1\nt,1\n")
	f.Add("# comment\n\nw, 42\n")
	f.Add("x,1")
	f.Add("w,abc")
	f.Add("w")
	f.Fuzz(func(t *testing.T, input string) {
		reqs, err := ParseTrace(strings.NewReader(input), 16)
		if err != nil {
			return
		}
		for i, r := range reqs {
			switch r.Kind {
			case ssd.OpWrite, ssd.OpRead, ssd.OpTrim:
			default:
				t.Fatalf("request %d has invalid kind %v", i, r.Kind)
			}
			if r.Kind == ssd.OpWrite && r.Data == nil {
				t.Fatalf("write %d without payload", i)
			}
		}
	})
}
