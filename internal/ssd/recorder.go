package ssd

import (
	"container/heap"
	"fmt"

	"superfast/internal/core"
	"superfast/internal/ftl"
	"superfast/internal/telemetry"
)

// RecorderColumns returns the flight-recorder column set of a device with the
// given chip count: write amplification, in-flight request depth, the FTL's
// extra-latency EWMA, assembly pool levels (assemblable superblocks plus the
// fill of the open fast/slow super-word-line buffers), garbage-collection
// state (outstanding GC work in pages+erases, cumulative preemptive steps),
// and per-chip utilization (dispatched busy time / simulated time).
func RecorderColumns(chips int) []string {
	cols := []string{"waf", "qdepth", "extra_ewma_us", "free_sbs", "open_fast", "open_slow", "gc_debt", "gc_steps"}
	for c := 0; c < chips; c++ {
		cols = append(cols, fmt.Sprintf("chip%02d_util", c))
	}
	return cols
}

// finishHeap is a min-heap of predicted request finish times — the in-flight
// depth at time t is the number of entries beyond t.
type finishHeap []float64

func (h finishHeap) Len() int            { return len(h) }
func (h finishHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h finishHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *finishHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *finishHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// recState is the sampling state behind an attached flight recorder, shared
// by the serial and concurrent front ends. Everything it reads is maintained
// by the serialized FTL stage (the concurrent device mirrors its chip
// workers' schedule rather than reading their racy state), so the sample
// stream — and the recorder's export bytes — are deterministic for a given
// request order regardless of worker count.
type recState struct {
	rec  *telemetry.Recorder
	busy []float64  // cumulative dispatched chip busy time, µs
	dep  finishHeap // predicted finish times of dispatched requests
	// hor is the mirrored device horizon: the latest predicted finish of any
	// dispatched request. Unstamped (arrival 0) workloads never advance the
	// admission clock, so the sampling clock is max(admission clock, hor) —
	// monotone and deterministic either way.
	hor    float64
	fillFn func(t float64, vals []float64)
	// extraFn, when set, populates extra columns appended after the device
	// set — the serving layer contributes its counters this way. Extra
	// columns sample live state, so they are outside the byte-determinism
	// contract of the device columns.
	extraFn func(vals []float64)
	extraN  int
}

func newRecState(rec *telemetry.Recorder, chips int, f *ftl.FTL, extraN int, extraFn func([]float64)) (*recState, error) {
	want := len(RecorderColumns(chips)) + extraN
	if got := len(rec.Columns()); got != want {
		return nil, fmt.Errorf("ssd: recorder has %d columns, device needs %d (use RecorderColumns)", got, want)
	}
	s := &recState{rec: rec, busy: make([]float64, chips), extraFn: extraFn, extraN: extraN}
	s.fillFn = func(t float64, vals []float64) { s.fill(t, vals, f) }
	return s, nil
}

// tick advances the recorder to the later of the given clock and the
// mirrored horizon. Call before applying the next event, so samples hold the
// pre-event state.
func (s *recState) tick(now float64) {
	if s.hor > now {
		now = s.hor
	}
	s.rec.Tick(now, s.fillFn)
}

// fill populates one sample row at boundary time t.
func (s *recState) fill(t float64, vals []float64, f *ftl.FTL) {
	for len(s.dep) > 0 && s.dep[0] <= t {
		heap.Pop(&s.dep)
	}
	st := f.Stats()
	vals[0] = st.WAF()
	vals[1] = float64(len(s.dep))
	vals[2] = st.ExtraEWMA
	vals[3] = float64(f.Scheme().FreeCount())
	vals[4] = float64(f.OpenFill(core.Fast))
	vals[5] = float64(f.OpenFill(core.Slow))
	vals[6] = float64(f.GCDebt())
	vals[7] = float64(st.GCSteps)
	for c, b := range s.busy {
		u := 0.0
		if t > 0 {
			u = b / t
		}
		vals[8+c] = u
	}
	if s.extraFn != nil {
		s.extraFn(vals[8+len(s.busy):])
	}
}

// note records one dispatched request's predicted finish time and advances
// the mirrored horizon.
func (s *recState) note(finish float64) {
	heap.Push(&s.dep, finish)
	if finish > s.hor {
		s.hor = finish
	}
}
