package ftl

import (
	"testing"
)

func TestMapCacheLRUAndDirty(t *testing.T) {
	c := newMapCache(2)
	if miss, wb := c.access(1, false); !miss || wb {
		t.Fatalf("first access: miss=%v wb=%v", miss, wb)
	}
	if miss, _ := c.access(1, false); miss {
		t.Fatal("second access should hit")
	}
	c.access(2, true)  // miss, cache {1,2}, 2 dirty
	c.access(3, false) // evicts 1 (clean) → no writeback
	if c.evicts != 0 {
		t.Fatalf("clean eviction counted as writeback: %d", c.evicts)
	}
	// Now {2 dirty, 3}; touch 3 so 2 is LRU, then insert 4 → dirty eviction.
	c.access(3, false)
	if _, wb := c.access(4, false); !wb {
		t.Fatal("evicting a dirty page should write back")
	}
	if c.evicts != 1 {
		t.Fatalf("evicts = %d, want 1", c.evicts)
	}
}

func TestMapCacheDirtyUpgrade(t *testing.T) {
	c := newMapCache(1)
	c.access(5, false)
	c.access(5, true) // hit, upgrades to dirty
	if _, wb := c.access(6, false); !wb {
		t.Fatal("upgraded-dirty page should write back on eviction")
	}
}

func TestMapCacheStatsHitRate(t *testing.T) {
	s := MapCacheStats{Hits: 3, Misses: 1}
	if s.HitRate() != 0.75 {
		t.Fatalf("HitRate = %v", s.HitRate())
	}
	if (MapCacheStats{}).HitRate() != 1 {
		t.Fatal("empty stats should report hit rate 1")
	}
}

func TestDFTLChargesMisses(t *testing.T) {
	cfg := testConfig()
	cfg.MapCachePages = 2
	f := newFTL(t, cfg)
	entries := f.translationPageEntries()
	if entries <= 0 {
		t.Fatal("translation page entries must be positive")
	}
	// First write in a region misses; the next in the same region hits.
	w1, err := f.Write(0, payload(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := f.Write(1, payload(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if w1.Latency < cfg.MapReadUS {
		t.Fatalf("first access should charge a translation read: %v", w1.Latency)
	}
	if w2.Latency >= cfg.MapReadUS {
		t.Fatalf("hit should not charge: %v", w2.Latency)
	}
	st := f.MapCacheStats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("cache stats %+v", st)
	}
	// Disabled cache charges nothing and reports zero stats.
	g := newFTL(t, testConfig())
	if g.MapCacheStats() != (MapCacheStats{}) {
		t.Fatal("disabled cache should report zero stats")
	}
	if lat := g.chargeMapAccess(0, true); lat != 0 {
		t.Fatalf("disabled cache charged %v", lat)
	}
}

func TestDFTLThrashingVsResident(t *testing.T) {
	// A wide uniform scan over many translation pages with a tiny cache
	// must show a lower hit rate than a narrow scan.
	run := func(span int64) float64 {
		cfg := testConfig()
		cfg.MapCachePages = 2
		f := newFTL(t, cfg)
		entries := f.translationPageEntries()
		for i := int64(0); i < 200; i++ {
			lpn := (i * entries) % (span * entries)
			if lpn >= f.Capacity() {
				lpn = lpn % f.Capacity()
			}
			if _, err := f.Write(lpn, payload(lpn, 0)); err != nil {
				t.Fatal(err)
			}
		}
		return f.MapCacheStats().HitRate()
	}
	narrow := run(2)
	wide := run(8)
	if wide >= narrow {
		t.Fatalf("wide scan hit rate (%v) should be below narrow (%v)", wide, narrow)
	}
}
