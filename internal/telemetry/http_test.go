package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	res := rw.Result()
	body, _ := io.ReadAll(res.Body)
	return res.StatusCode, string(body)
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"ftl.waf":          "ftl_waf",
		"chip.03.busy_us":  "chip_03_busy_us",
		"latency-µs":       "latency__s",
		"9lives":           "_9lives",
		"ok_name:colonful": "ok_name:colonful",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMetricsHandlerExposition(t *testing.T) {
	m := New()
	m.Counter("ftl.flushes").Add(42)
	g := m.Gauge("host.qdepth")
	g.Set(5)
	g.Set(2) // watermark 5 differs from current 2
	d := m.Digest("host.read_lat_us")
	for _, v := range []float64{100, 200, 300, 400, 500, 600} {
		d.Observe(v)
	}

	code, body := get(t, MetricsHandler(m), "/metrics")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	for _, frag := range []string{
		"# TYPE ftl_flushes counter\nftl_flushes 42\n",
		"# TYPE host_qdepth gauge\nhost_qdepth 2\n",
		"# TYPE host_qdepth_max gauge\nhost_qdepth_max 5\n",
		"# TYPE host_read_lat_us summary\n",
		`host_read_lat_us{quantile="0.5"}`,
		`host_read_lat_us{quantile="0.95"}`,
		`host_read_lat_us{quantile="0.99"}`,
		"host_read_lat_us_sum 2100\n",
		"host_read_lat_us_count 6\n",
		"host_read_lat_us_min 100\n",
		"host_read_lat_us_max 600\n",
	} {
		if !strings.Contains(body, frag) {
			t.Fatalf("exposition missing %q:\n%s", frag, body)
		}
	}
	// Families must appear in sorted-name order.
	idx := func(s string) int { return strings.Index(body, "# TYPE "+s+" ") }
	order := []string{"ftl_flushes", "host_qdepth", "host_qdepth_max", "host_read_lat_us"}
	for i := 1; i < len(order); i++ {
		if idx(order[i-1]) < 0 || idx(order[i]) < 0 || idx(order[i-1]) > idx(order[i]) {
			t.Fatalf("family order broken around %s/%s:\n%s", order[i-1], order[i], body)
		}
	}
}

func TestRoutesEndpoints(t *testing.T) {
	m := New()
	m.Counter("reqs").Inc()
	rec, _ := NewRecorder(100, 8, []string{"waf"})
	rec.Tick(100, func(t float64, vals []float64) { vals[0] = 1.5 })
	attr := NewAttribution()
	attr.Record('p', false, true, []BlockKey{{0, 0, 0}, {0, 1, 0}}, []float64{100, 130})

	mux := Routes(m, rec, attr, nil)

	if code, body := get(t, mux, "/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if code, body := get(t, mux, "/metrics"); code != 200 || !strings.Contains(body, "reqs 1") {
		t.Fatalf("metrics = %d %q", code, body)
	}
	if code, body := get(t, mux, "/flightrecorder"); code != 200 || !strings.HasPrefix(body, "t_us,waf\n") {
		t.Fatalf("flightrecorder = %d %q", code, body)
	}
	if code, body := get(t, mux, "/flightrecorder?format=json"); code != 200 || !strings.Contains(body, `"interval_us": 100`) {
		t.Fatalf("flightrecorder json = %d %q", code, body)
	}
	if code, body := get(t, mux, "/attribution?topk=1"); code != 200 || !strings.Contains(body, `"stragglers"`) {
		t.Fatalf("attribution = %d %q", code, body)
	}
	if code, _ := get(t, mux, "/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof cmdline = %d", code)
	}
}

func TestRoutesOptionalSinksAbsent(t *testing.T) {
	mux := Routes(New(), nil, nil, nil)
	if code, _ := get(t, mux, "/flightrecorder"); code != 404 {
		t.Fatalf("flightrecorder without recorder = %d, want 404", code)
	}
	if code, _ := get(t, mux, "/attribution"); code != 404 {
		t.Fatalf("attribution without table = %d, want 404", code)
	}
}

func TestServeEphemeralPort(t *testing.T) {
	m := New()
	m.Counter("up").Inc()
	srv, addr, err := Serve("127.0.0.1:0", Routes(m, nil, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := http.Get("http://" + addr.String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != 200 || string(body) != "ok\n" {
		t.Fatalf("healthz over TCP = %d %q", res.StatusCode, body)
	}
}
