package experiments

import (
	"fmt"

	"superfast/internal/assembly"
	"superfast/internal/core"
	"superfast/internal/stats"
)

func init() {
	register("table1", runTable1)
	register("table2", runTable2)
	register("table5", runTable5)
	register("fig12", runFig12)
}

// baselineName is the name of the random assembler used as the baseline in
// every comparison table.
const baselineName = "RANDOM"

func baseline(cfg Config) assembly.Assembler {
	return assembly.Random{Seed: cfg.Seed + 1}
}

// directions returns the paper's eight organization directions (§IV-A) plus
// the random baseline, using the configured windows.
func directions(cfg Config) []assembly.Assembler {
	return []assembly.Assembler{
		baseline(cfg),
		assembly.Sequential{},
		assembly.ByErase{},
		assembly.ByPgmSum{},
		assembly.Optimal{Window: cfg.Window},
		assembly.Ranked{Kind: assembly.LWLRank, Window: cfg.Window},
		assembly.Ranked{Kind: assembly.PWLRank, Window: cfg.Window},
		assembly.Ranked{Kind: assembly.STRRank, Window: cfg.Window},
		assembly.STRMedian{Window: cfg.MedWindow},
	}
}

// reductionTable renders a Table I-shaped table: per strategy, the average
// extra-program-latency reduction versus random (µs) and the improvement %.
func reductionTable(title string, aggs map[string]*agg, order []string) (*stats.Table, error) {
	base, ok := aggs[baselineName]
	if !ok {
		return nil, fmt.Errorf("experiments: baseline %q missing", baselineName)
	}
	basePgm := base.meanPgm()
	t := &stats.Table{
		Title:   title,
		Headers: []string{"Method", "PGM LTN ↓ (Avg.)", "Imp. %"},
	}
	for _, name := range order {
		if name == baselineName {
			continue
		}
		a, ok := aggs[name]
		if !ok {
			return nil, fmt.Errorf("experiments: strategy %q missing", name)
		}
		red := basePgm - a.meanPgm()
		t.AddRow(name, stats.FmtUS(red)+" µs", stats.FmtPct(stats.Improvement(basePgm, a.meanPgm())))
	}
	return t, nil
}

func names(strategies []assembly.Assembler) []string {
	out := make([]string, len(strategies))
	for i, s := range strategies {
		out[i] = s.Name()
	}
	return out
}

// runTable1 reproduces Table I: the average extra-program-latency reduction
// of the eight directions over the random baseline, across all P/E steps.
func runTable1(cfg Config) (*Result, error) {
	strategies := directions(cfg)
	aggs, err := sweep(cfg, strategies)
	if err != nil {
		return nil, err
	}
	t, err := reductionTable("Table I — the results of the eight directions", aggs, names(strategies))
	if err != nil {
		return nil, err
	}
	note := fmt.Sprintf("baseline %s extra PGM LTN: %s µs over %d superblocks\n",
		baselineName, stats.FmtUS(aggs[baselineName].meanPgm()), aggs[baselineName].superblocks)
	return &Result{ID: "table1", Tables: []*stats.Table{t}, Text: note}, nil
}

// runTable2 reproduces Table II: STR-RANK under window sizes 8, 6, 4, 2.
func runTable2(cfg Config) (*Result, error) {
	windows := []int{8, 6, 4, 2}
	strategies := []assembly.Assembler{baseline(cfg)}
	for _, w := range windows {
		if w <= cfg.Window {
			strategies = append(strategies, assembly.Ranked{Kind: assembly.STRRank, Window: w})
		}
	}
	aggs, err := sweep(cfg, strategies)
	if err != nil {
		return nil, err
	}
	t, err := reductionTable("Table II — STR-RANK with different window sizes", aggs, names(strategies))
	if err != nil {
		return nil, err
	}
	return &Result{ID: "table2", Tables: []*stats.Table{t}}, nil
}

// table5Strategies returns the four schemes of Table V plus the baseline.
func table5Strategies(cfg Config) []assembly.Assembler {
	return []assembly.Assembler{
		baseline(cfg),
		assembly.Sequential{},
		assembly.Optimal{Window: cfg.Window},
		core.BatchAssembler{K: cfg.MedWindow},
		assembly.STRMedian{Window: cfg.MedWindow},
	}
}

// runTable5 reproduces Table V: absolute extra program and erase latency for
// random, sequential, optimal, QSTR-MED and STR-MED.
func runTable5(cfg Config) (*Result, error) {
	strategies := table5Strategies(cfg)
	aggs, err := sweep(cfg, strategies)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:   "Table V — extra program and erase latency",
		Headers: []string{"Methods", "Extra PGM LTN", "Extra ERS LTN"},
	}
	for _, name := range names(strategies) {
		a := aggs[name]
		t.AddRow(name, stats.FmtUS(a.meanPgm())+" µs", stats.FmtUS(a.meanErs())+" µs")
	}
	return &Result{ID: "table5", Tables: []*stats.Table{t}}, nil
}

// runFig12 reproduces Fig. 12: the percentage improvement of program and
// erase latency versus the random baseline for the Table V schemes.
func runFig12(cfg Config) (*Result, error) {
	strategies := table5Strategies(cfg)
	aggs, err := sweep(cfg, strategies)
	if err != nil {
		return nil, err
	}
	base := aggs[baselineName]
	t := &stats.Table{
		Title:   "Fig. 12 — improvement in program and erase latency vs random",
		Headers: []string{"Method", "PGM Imp. %", "ERS Imp. %"},
	}
	for _, name := range names(strategies) {
		if name == baselineName {
			continue
		}
		a := aggs[name]
		t.AddRow(name,
			stats.FmtPct(stats.Improvement(base.meanPgm(), a.meanPgm())),
			stats.FmtPct(stats.Improvement(base.meanErs(), a.meanErs())))
	}
	return &Result{ID: "fig12", Tables: []*stats.Table{t}}, nil
}
