package volume

import (
	"fmt"
	"testing"
)

// checkPlacementInvariants exhaustively verifies the mapping: every logical
// page maps to exactly Replicas copies on distinct backends, every copy
// reverses back to the page, and no two pages share a (backend, shard-page).
func checkPlacementInvariants(t testing.TB, p *Placement) {
	t.Helper()
	type cell struct {
		backend int
		slpn    int64
	}
	seen := make(map[cell]int64)
	var locs []Loc
	for lpn := int64(0); lpn < p.Space(); lpn++ {
		var err error
		locs, err = p.Locate(lpn, locs[:0])
		if err != nil {
			t.Fatalf("locate %d: %v", lpn, err)
		}
		if len(locs) != p.Replicas() {
			t.Fatalf("lpn %d: %d copies, want %d", lpn, len(locs), p.Replicas())
		}
		backends := make(map[int]bool)
		for _, l := range locs {
			if !p.Active(l.Backend) {
				t.Fatalf("lpn %d placed on inactive backend %d", lpn, l.Backend)
			}
			if backends[l.Backend] {
				t.Fatalf("lpn %d: two copies on backend %d", lpn, l.Backend)
			}
			backends[l.Backend] = true
			c := cell{l.Backend, l.SLPN}
			if prev, dup := seen[c]; dup {
				t.Fatalf("backend %d slpn %d claimed by lpn %d and %d", l.Backend, l.SLPN, prev, lpn)
			}
			seen[c] = lpn
			back, ok := p.Reverse(l.Backend, l.SLPN)
			if !ok || back != lpn {
				t.Fatalf("reverse(%d, %d) = %d,%v; want %d", l.Backend, l.SLPN, back, ok, lpn)
			}
		}
	}
	// Slot accounting must agree with the exhaustive walk.
	perBackend := make(map[int]int64)
	for c := range seen {
		perBackend[c.backend]++
	}
	for b := 0; b < p.Backends(); b++ {
		if got := p.SlotsUsed(b) * p.Stripe(); got != perBackend[b] {
			t.Fatalf("backend %d: accounting says %d pages, walk found %d", b, got, perBackend[b])
		}
	}
}

func TestPlacementRoundTripExhaustive(t *testing.T) {
	for _, tc := range []struct {
		space, stripe int64
		backends      []int64
		replicas      int
	}{
		{space: 96, stripe: 1, backends: []int64{32, 32, 32}, replicas: 1},
		{space: 96, stripe: 4, backends: []int64{8, 8, 8}, replicas: 1},
		{space: 60, stripe: 5, backends: []int64{8, 8, 8, 8}, replicas: 2},
		{space: 64, stripe: 8, backends: []int64{3, 3, 3, 3, 3, 3, 3, 3}, replicas: 3},
		{space: 7, stripe: 3, backends: []int64{4, 4}, replicas: 1}, // space rounds to 6
	} {
		name := fmt.Sprintf("s%d_u%d_n%d_r%d", tc.space, tc.stripe, len(tc.backends), tc.replicas)
		t.Run(name, func(t *testing.T) {
			p, err := NewPlacement(tc.space, tc.stripe, tc.backends, tc.replicas)
			if err != nil {
				t.Fatal(err)
			}
			if want := tc.space / tc.stripe * tc.stripe; p.Space() != want {
				t.Fatalf("space %d, want %d", p.Space(), want)
			}
			checkPlacementInvariants(t, p)
		})
	}
}

func TestPlacementInitialStriping(t *testing.T) {
	// The seed layout is RAID-0: unit u's primary is backend u mod N at slot
	// u div N, so sequential I/O fans evenly across backends.
	p, err := NewPlacement(24, 2, []int64{8, 8, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var locs []Loc
	for u := int64(0); u < p.Units(); u++ {
		locs, err = p.Locate(u*2, locs[:0])
		if err != nil {
			t.Fatal(err)
		}
		if want := int(u % 3); locs[0].Backend != want {
			t.Fatalf("unit %d on backend %d, want %d", u, locs[0].Backend, want)
		}
		if want := (u / 3) * 2; locs[0].SLPN != want {
			t.Fatalf("unit %d at slpn %d, want %d", u, locs[0].SLPN, want)
		}
	}
}

func TestPlacementErrors(t *testing.T) {
	if _, err := NewPlacement(16, 2, nil, 1); err == nil {
		t.Fatal("no backends must fail")
	}
	if _, err := NewPlacement(16, 0, []int64{8}, 1); err == nil {
		t.Fatal("zero stripe must fail")
	}
	if _, err := NewPlacement(16, 2, []int64{8, 8}, 3); err == nil {
		t.Fatal("more replicas than backends must fail")
	}
	if _, err := NewPlacement(1, 2, []int64{8, 8}, 1); err == nil {
		t.Fatal("sub-unit space must fail")
	}
	if _, err := NewPlacement(16, 2, []int64{8, 0}, 1); err == nil {
		t.Fatal("zero-capacity backend must fail")
	}
	if _, err := NewPlacement(64, 2, []int64{2, 2}, 1); err == nil {
		t.Fatal("overcommitted space must fail")
	}

	p, err := NewPlacement(16, 2, []int64{8, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Locate(-1, nil); err == nil {
		t.Fatal("negative lpn must fail")
	}
	if _, err := p.Locate(16, nil); err == nil {
		t.Fatal("out-of-space lpn must fail")
	}
	if _, ok := p.Reverse(-1, 0); ok {
		t.Fatal("reverse on bad backend must fail")
	}
	if _, ok := p.Reverse(0, -1); ok {
		t.Fatal("reverse on negative slpn must fail")
	}
	if _, ok := p.Reverse(0, 1<<40); ok {
		t.Fatal("reverse past the shard must fail")
	}
	if _, err := p.BeginRemove(5); err == nil {
		t.Fatal("removing unknown backend must fail")
	}
	if _, _, err := p.BeginAdd(0); err == nil {
		t.Fatal("adding empty backend must fail")
	}
}

// snapshotLayout records every unit's current copies.
func snapshotLayout(p *Placement) map[int64][]Loc {
	out := make(map[int64][]Loc)
	var locs []Loc
	for u := int64(0); u < p.Units(); u++ {
		locs, _ = p.Locate(u*p.Stripe(), nil)
		out[u] = append([]Loc(nil), locs...)
	}
	return out
}

// TestPlacementAddMovesOnlyPlanned: adding a backend relocates exactly the
// planned units — every other unit's copies are byte-identical before and
// after — and the layout converges toward an even load.
func TestPlacementAddMovesOnlyPlanned(t *testing.T) {
	p, err := NewPlacement(48, 2, []int64{24, 24, 24}, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := snapshotLayout(p)
	nb, moves, err := p.BeginAdd(24)
	if err != nil {
		t.Fatal(err)
	}
	if nb != 3 {
		t.Fatalf("new backend index %d, want 3", nb)
	}
	if len(moves) == 0 {
		t.Fatal("rebalance planned no moves")
	}
	movedUnits := make(map[int64]bool)
	for _, m := range moves {
		if m.To != nb {
			t.Fatalf("move %+v targets backend %d, want the new backend", m, m.To)
		}
		if movedUnits[m.Unit] {
			t.Fatalf("unit %d planned twice", m.Unit)
		}
		movedUnits[m.Unit] = true
		lo, hi := m.PageRange(p.Stripe())
		if hi-lo != p.Stripe() || lo != m.Unit*p.Stripe() {
			t.Fatalf("move %+v covers [%d,%d)", m, lo, hi)
		}
		if err := p.Commit(m); err != nil {
			t.Fatal(err)
		}
	}
	after := snapshotLayout(p)
	for u := range before {
		if movedUnits[u] {
			if after[u][0].Backend != nb {
				t.Fatalf("moved unit %d still on backend %d", u, after[u][0].Backend)
			}
			continue
		}
		if len(after[u]) != len(before[u]) || after[u][0] != before[u][0] {
			t.Fatalf("unmoved unit %d changed: %+v → %+v", u, before[u], after[u])
		}
	}
	// 24 units over 4 backends: everyone ends at 6.
	for b := 0; b < 4; b++ {
		if got := p.SlotsUsed(b); got != 6 {
			t.Fatalf("backend %d holds %d units after rebalance, want 6", b, got)
		}
	}
	checkPlacementInvariants(t, p)
}

// TestPlacementRemoveMovesOnlyItsRanges: removing a backend relocates every
// unit it held and nothing else, over the least-loaded survivors.
func TestPlacementRemoveMovesOnlyItsRanges(t *testing.T) {
	p, err := NewPlacement(48, 2, []int64{18, 18, 18, 18}, 2)
	if err != nil {
		t.Fatal(err)
	}
	before := snapshotLayout(p)
	const victim = 1
	victimUnits := make(map[int64]bool)
	for u := int64(0); u < p.Units(); u++ {
		for _, l := range before[u] {
			if l.Backend == victim {
				victimUnits[u] = true
			}
		}
	}
	moves, err := p.BeginRemove(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != len(victimUnits) {
		t.Fatalf("planned %d moves, victim held %d units", len(moves), len(victimUnits))
	}
	for _, m := range moves {
		if m.From != victim {
			t.Fatalf("move %+v does not leave the victim", m)
		}
		if !victimUnits[m.Unit] {
			t.Fatalf("move %+v relocates a unit the victim never held", m)
		}
		if err := p.Commit(m); err != nil {
			t.Fatal(err)
		}
	}
	if p.Active(victim) {
		t.Fatal("victim still active")
	}
	if p.SlotsUsed(victim) != 0 {
		t.Fatalf("victim still holds %d slots", p.SlotsUsed(victim))
	}
	after := snapshotLayout(p)
	for u := range before {
		if victimUnits[u] {
			for _, l := range after[u] {
				if l.Backend == victim {
					t.Fatalf("unit %d still has a copy on the removed backend", u)
				}
			}
			continue
		}
		for k := range before[u] {
			if after[u][k] != before[u][k] {
				t.Fatalf("untouched unit %d changed: %+v → %+v", u, before[u], after[u])
			}
		}
	}
	checkPlacementInvariants(t, p)
}

func TestPlacementRemoveNeedsHeadroom(t *testing.T) {
	// Exactly-full survivors cannot absorb the victim's shard ranges.
	p, err := NewPlacement(32, 2, []int64{6, 6, 6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.BeginRemove(0); err == nil {
		t.Fatal("removal without survivor capacity must fail")
	}
	if !p.Active(0) {
		t.Fatal("failed removal deactivated the backend")
	}
	checkPlacementInvariants(t, p)

	// Replica floor: removal may not leave fewer backends than replicas.
	p2, err := NewPlacement(16, 2, []int64{8, 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.BeginRemove(1); err == nil {
		t.Fatal("removal below the replica count must fail")
	}
}

// TestPlacementFailedRemoveRollsBack reproduces the live-cluster failure
// mode: survivors have free slots in aggregate, but the distinct-backend
// replica constraint leaves no legal recipient for some unit. The failed
// plan must leave the placement exactly as it found it — backend active,
// no leaked reservations — so a later rebalance can still succeed.
func TestPlacementFailedRemoveRollsBack(t *testing.T) {
	// 3 units × 2 replicas on 3 backends of 2 slots each: completely full,
	// and every pair of backends shares a unit.
	p, err := NewPlacement(6, 2, []int64{2, 2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	before := snapshotLayout(p)
	if _, err := p.BeginRemove(0); err == nil {
		t.Fatal("constrained removal must fail")
	}
	if !p.Active(0) {
		t.Fatal("failed removal deactivated the backend")
	}
	for b := 0; b < 3; b++ {
		if got := p.SlotsUsed(b); got != 2 {
			t.Fatalf("backend %d: %d slots used after rollback, want 2", b, got)
		}
	}
	checkPlacementInvariants(t, p)
	after := snapshotLayout(p)
	for u, locs := range before {
		if fmt.Sprint(after[u]) != fmt.Sprint(locs) {
			t.Fatalf("unit %d moved across a failed plan: %v -> %v", u, locs, after[u])
		}
	}
	// With headroom added, the same removal goes through.
	_, moves, err := p.BeginAdd(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range moves {
		if err := p.Commit(m); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.BeginRemove(0); err != nil {
		t.Fatalf("removal after adding headroom: %v", err)
	}
}

func TestPlacementCommitValidation(t *testing.T) {
	p, err := NewPlacement(24, 2, []int64{12, 12}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(Move{Unit: 99}); err == nil {
		t.Fatal("commit of unknown unit must fail")
	}
	_, moves, err := p.BeginAdd(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 {
		t.Fatal("no moves planned")
	}
	bad := moves[0]
	bad.FromSlot++ // stale plan
	if err := p.Commit(bad); err == nil {
		t.Fatal("stale commit must fail")
	}
	if err := p.Commit(moves[0]); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(moves[0]); err == nil {
		t.Fatal("double commit must fail")
	}
	// Remove mid-rebalance (uncommitted inbound moves) is refused — and the
	// refusal rolls back, so the in-flight rebalance can still finish.
	if len(moves) > 1 {
		if _, err := p.BeginRemove(2); err == nil {
			t.Fatal("remove with uncommitted inbound moves must fail")
		}
		if !p.Active(2) {
			t.Fatal("refused removal deactivated the backend")
		}
		for _, m := range moves[1:] {
			if err := p.Commit(m); err != nil {
				t.Fatalf("commit after refused removal: %v", err)
			}
		}
		checkPlacementInvariants(t, p)
	}
}

// TestPlacementSlotReuse: slots freed by moves are reused lowest-first, so
// repeated add/remove cycles cannot leak shard space.
func TestPlacementSlotReuse(t *testing.T) {
	p, err := NewPlacement(48, 2, []int64{24, 24, 24}, 1)
	if err != nil {
		t.Fatal(err)
	}
	nb, moves, err := p.BeginAdd(24)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range moves {
		if err := p.Commit(m); err != nil {
			t.Fatal(err)
		}
	}
	checkPlacementInvariants(t, p)
	back, err := p.BeginRemove(nb)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range back {
		if err := p.Commit(m); err != nil {
			t.Fatal(err)
		}
	}
	checkPlacementInvariants(t, p)
	// Every survivor is back to its original occupancy and the shard space
	// stayed dense: no slot index beyond the original high-water mark.
	for b := 0; b < 3; b++ {
		if got := p.SlotsUsed(b); got != 8 {
			t.Fatalf("backend %d holds %d units after round trip, want 8", b, got)
		}
	}
	var locs []Loc
	for lpn := int64(0); lpn < p.Space(); lpn++ {
		locs, _ = p.Locate(lpn, locs[:0])
		for _, l := range locs {
			if l.SLPN >= 16 {
				t.Fatalf("lpn %d at slpn %d: shard space leaked past dense range", lpn, l.SLPN)
			}
		}
	}
}
