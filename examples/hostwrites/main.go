// Hostwrites: run the same skewed host write workload through three full
// SSDs (flash + FTL + device queue) that differ only in how they organize
// superblocks, and compare host-visible latency, write amplification and
// extra program latency — the end-to-end view of §V-D's function-based
// placement. A final section drives a stamped read burst through the
// thread-safe multi-queue front end at queue depth 8 and reports its
// speedup over the serialized device.
package main

import (
	"fmt"
	"log"

	"superfast/internal/flash"
	"superfast/internal/ftl"
	"superfast/internal/pv"
	"superfast/internal/ssd"
	"superfast/internal/stats"
	"superfast/internal/workload"
)

func main() {
	for _, org := range []ftl.Organizer{ftl.RandomOrg, ftl.SequentialOrg, ftl.QSTRMed} {
		run(org)
	}
	concurrentReads()
}

func run(org ftl.Organizer) {
	geo := flash.Geometry{
		Chips:          4,
		PlanesPerChip:  1,
		BlocksPerPlane: 32,
		Layers:         48,
		Strings:        4,
		PageSize:       16 * 1024,
		SpareSize:      2 * 1024,
	}
	params := pv.DefaultParams()
	params.Layers = geo.Layers
	params.Strings = geo.Strings
	arr, err := flash.NewArray(geo, pv.New(params), flash.DefaultECC())
	if err != nil {
		log.Fatal(err)
	}
	cfg := ssd.DefaultConfig()
	cfg.FTL.Organizer = org
	cfg.FTL.Overprovision = 0.2
	dev, err := ssd.New(arr, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Fill once, then churn with an 80/20 hot/cold write mix. Hot writes
	// carry HintSmall (they land on fast LSB superpages), cold writes
	// HintBatch.
	capacity := dev.FTL().Capacity()
	if err := dev.FillSequential(nil); err != nil {
		log.Fatal(err)
	}
	churn, err := workload.Run(dev, &workload.HotCold{
		Space: capacity, Count: 2 * capacity,
		HotFrac: 0.8, HotSpace: 0.2,
		PageLen: 64, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}

	lats := make([]float64, len(churn))
	for i, c := range churn {
		lats[i] = c.Service
	}
	s := stats.Summarize(lats)
	fst := dev.FTL().Stats()
	fmt.Printf("%-11s mean %9s µs  p99 %10s µs  WAF %.2f  extra PGM/flush %7s µs  extra ERS/erase %7s µs\n",
		org, stats.FmtUS(s.Mean), stats.FmtUS(s.P99), fst.WAF(),
		stats.FmtUS(fst.ExtraPgm/float64(fst.Flushes)),
		stats.FmtUS(fst.ExtraErs/float64(fst.Erases)))
}

// concurrentReads replays one stamped read burst through the serialized
// device and through the concurrent front end at queue depth 8, and prints
// the makespan of each. The burst's LPNs stripe across the chips, so the
// per-chip worker queues overlap what the serialized queue runs one at a
// time.
func concurrentReads() {
	geo := flash.Geometry{
		Chips:          4,
		PlanesPerChip:  1,
		BlocksPerPlane: 32,
		Layers:         48,
		Strings:        4,
		PageSize:       16 * 1024,
		SpareSize:      2 * 1024,
	}
	params := pv.DefaultParams()
	params.Layers = geo.Layers
	params.Strings = geo.Strings
	cfg := ssd.DefaultConfig()
	cfg.FTL.Overprovision = 0.2
	const burst = 128

	serial, err := ssd.New(flash.MustNewArray(geo, pv.New(params), flash.DefaultECC()), cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := serial.FillSequential(nil); err != nil {
		log.Fatal(err)
	}
	base := serial.Now() + 1000
	var serialFinish float64
	for i := 0; i < burst; i++ {
		c, err := serial.Submit(ssd.Request{Kind: ssd.OpRead, LPN: int64(i), Arrival: base})
		if err != nil {
			log.Fatal(err)
		}
		if c.Finish > serialFinish {
			serialFinish = c.Finish
		}
	}
	serialSpan := serialFinish - base

	cdev, err := ssd.NewConcurrent(flash.MustNewArray(geo, pv.New(params), flash.DefaultECC()), cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cdev.Close()
	if err := cdev.FillSequential(nil); err != nil {
		log.Fatal(err)
	}
	cbase := cdev.Now() + 1000
	reqs := make([]ssd.Request, burst)
	for i := range reqs {
		reqs[i] = ssd.Request{Kind: ssd.OpRead, LPN: int64(i), Arrival: cbase}
	}
	comps, err := workload.RunConcurrent(cdev, reqs, 8)
	if err != nil {
		log.Fatal(err)
	}
	var concFinish float64
	for _, c := range comps {
		if c.Finish > concFinish {
			concFinish = c.Finish
		}
	}
	concSpan := concFinish - cbase
	fmt.Printf("\n%d-read burst: serialized %s µs, multi-queue (depth 8) %s µs — %.1f× faster\n",
		burst, stats.FmtUS(serialSpan), stats.FmtUS(concSpan), serialSpan/concSpan)
}
