# Tier-1 gate: everything a change must pass before it lands. `make check`
# vets, builds and runs the full test suite under the race detector — the
# concurrent device front end and the parallel experiment sweep
# (`go run ./cmd/sbsim -all -quick -parallel 4`) are only trustworthy
# race-clean.

GO ?= go

.PHONY: check build test race bench

check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run XXX .
