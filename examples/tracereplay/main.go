// Tracereplay: replay a captured host I/O trace (the workload package's CSV
// format: "op,lpn" lines) through the full simulated SSD and print latency
// statistics. Pass a trace file as the first argument, or run without
// arguments to replay the embedded demonstration trace.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"superfast/internal/flash"
	"superfast/internal/pv"
	"superfast/internal/ssd"
	"superfast/internal/stats"
	"superfast/internal/workload"
)

// demoTrace is a small mixed workload: sequential fill of a region, random
// overwrites, reads of hot pages, and a trim.
const demoTrace = `# demo trace: op,lpn
w,0
w,1
w,2
w,3
w,4
w,5
w,6
w,7
r,0
r,3
w,2
w,2
r,2
w,8
w,9
t,5
w,10
r,7
w,11
r,10
`

func main() {
	var src io.Reader = strings.NewReader(demoTrace)
	name := "embedded demo trace"
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		src = f
		name = os.Args[1]
	}

	geo := flash.TestGeometry()
	params := pv.DefaultParams()
	params.Layers = geo.Layers
	params.Strings = geo.Strings
	arr, err := flash.NewArray(geo, pv.New(params), flash.DefaultECC())
	if err != nil {
		log.Fatal(err)
	}
	cfg := ssd.DefaultConfig()
	cfg.FTL.Overprovision = 0.2
	dev, err := ssd.New(arr, cfg)
	if err != nil {
		log.Fatal(err)
	}

	reqs, err := workload.ParseTrace(src, 64)
	if err != nil {
		log.Fatal(err)
	}
	var lats []float64
	for i, req := range reqs {
		c, err := dev.Submit(req)
		if err != nil {
			log.Fatalf("trace op %d (%v lpn %d): %v", i, req.Kind, req.LPN, err)
		}
		lats = append(lats, c.Service)
	}
	s := stats.Summarize(lats)
	fst := dev.FTL().Stats()
	fmt.Printf("replayed %d ops from %s\n", len(reqs), name)
	fmt.Printf("service time: mean %s µs, median %s µs, max %s µs\n",
		stats.FmtUS(s.Mean), stats.FmtUS(s.Median), stats.FmtUS(s.Max))
	fmt.Printf("host writes %d, host reads %d, flushes %d, WAF %.2f\n",
		fst.HostWrites, fst.HostReads, fst.Flushes, fst.WAF())
	if err := dev.FTL().CheckInvariants(); err != nil {
		log.Fatalf("FTL invariants violated: %v", err)
	}
	fmt.Println("FTL invariants hold")
}
