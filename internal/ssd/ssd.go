// Package ssd models the device level of the storage stack: a host
// interface in front of the FTL with a simulated microsecond clock, bus
// transfer costs and queueing delay, producing host-visible response times.
// It is the layer on which the end-to-end effect of superblock organization
// (host writes stalling on the slowest member of a multi-plane program)
// becomes visible as I/O latency.
package ssd

import (
	"fmt"

	"superfast/internal/flash"
	"superfast/internal/ftl"
	"superfast/internal/telemetry"
)

// QueueModel selects how the device turns the FTL's flash work into time.
type QueueModel int

// Queue models.
const (
	// Serialized executes requests strictly in order: each request's flash
	// work occupies the whole device (the pessimistic bound, and the right
	// model for a queue-depth-1 host).
	Serialized QueueModel = iota
	// PerChip schedules each request's chip operations on per-chip queues:
	// requests touching different chips overlap, as with NCQ. Operation
	// order is preserved per chip; cross-chip dependencies inside one
	// request are approximated as independent (an optimistic bound).
	PerChip
)

func (q QueueModel) String() string {
	if q == PerChip {
		return "per-chip"
	}
	return "serialized"
}

// Config parameterizes the device.
type Config struct {
	FTL     ftl.Config
	BusMBps float64 // host interface bandwidth (SATA 3: ~550 MB/s)
	Queue   QueueModel
	// RetainLatencies keeps every per-request latency in memory so Stats can
	// return the raw Latencies slice. Off by default: long runs then rely on
	// the O(1)-memory streaming digest (LatencyDigest) instead of an
	// unbounded record list. Only the ConcurrentDevice honours this; the
	// serial Device always retains (it exists for short deterministic runs).
	RetainLatencies bool
}

// DefaultConfig returns a SATA-3-like device over the default FTL.
func DefaultConfig() Config {
	return Config{FTL: ftl.DefaultConfig(), BusMBps: 550}
}

// OpKind enumerates host operations.
type OpKind int

// Host operation kinds.
const (
	OpWrite OpKind = iota
	OpRead
	OpTrim
)

func (k OpKind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpTrim:
		return "trim"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Request is one host command.
type Request struct {
	Kind    OpKind
	LPN     int64
	Data    []byte   // writes only; nil writes a zero-length payload
	Hint    ftl.Hint // placement hint for writes
	Arrival float64  // µs on the simulated clock; 0 = now
	// Trace is the cluster-wide trace ID this request belongs to, carried
	// into the device's trace events and GC ledger records. 0 = untraced.
	Trace uint64
	// Tenant names the namespace the request belongs to. 0 = unshaped; a
	// positive tenant with a quota registered via SetTenantQuota is rate-
	// shaped on the simulated clock (see ConcurrentDevice.SetTenantQuota).
	Tenant int
}

// Completion reports a serviced request.
type Completion struct {
	Start   float64 // service start time (after queueing)
	Finish  float64
	Wait    float64 // time spent queued
	Service float64 // flash + bus time
	Latency float64 // Wait + Service (host-visible response time)
	// GCTime is the share of Service spent in a blocking garbage collection
	// this request tripped at the hard watermark. Zero when GC did not block
	// the request — with preemptive GC the reclamation runs in idle-window
	// steps between requests and never lands here.
	GCTime float64
	// Data holds a read's payload. On the serial Device it aliases flash
	// storage and is stable only until the next Submit (copy to retain);
	// ConcurrentDevice completions own their payload and stay valid.
	Data []byte
}

// Stats aggregates device activity.
type Stats struct {
	Requests  uint64
	Reads     uint64
	Writes    uint64
	Trims     uint64
	Latencies []float64 // response time per request, µs
}

// Device is the simulated SSD. Not safe for concurrent use; wrap the same
// configuration in a ConcurrentDevice to submit from many goroutines.
type Device struct {
	f        *ftl.FTL
	cfg      Config
	now      float64 // simulated clock, µs
	busy     float64 // device busy until
	chipBusy []float64
	lat      *telemetry.Digest // nil until SetMetrics wires a registry
	rec      *recState         // nil until AttachRecorder

	stats Stats
}

// New builds a device over the given flash array.
func New(arr *flash.Array, cfg Config) (*Device, error) {
	if cfg.BusMBps <= 0 {
		return nil, fmt.Errorf("ssd: bus bandwidth must be positive, got %v", cfg.BusMBps)
	}
	f, err := ftl.New(arr, cfg.FTL)
	if err != nil {
		return nil, err
	}
	if cfg.Queue == PerChip {
		f.EnableOpJournal()
	}
	// The serial device copies every write payload into the FTL on entry and
	// serves reads before the next request runs, so the FTL may recycle
	// payload buffers from erased blocks instead of allocating fresh copies.
	// Consequence: a read Completion's Data aliases flash storage and is
	// stable only until the next Submit (the historical guarantee callers
	// rely on — tests and workloads consume reads immediately).
	f.SetPayloadOwnership(ftl.CopyRecycle)
	return &Device{f: f, cfg: cfg, chipBusy: make([]float64, arr.Geometry().Chips)}, nil
}

// FTL exposes the underlying translation layer.
func (d *Device) FTL() *ftl.FTL { return d.f }

// SetMetrics wires (or, with nil, unwires) a telemetry registry: the FTL's
// "ftl." counters plus a streaming "ssd.latency" digest fed one observation
// per completed request. Attach after warming the device so the fill does
// not pollute the measured distribution.
func (d *Device) SetMetrics(m *telemetry.Metrics) {
	d.f.SetMetrics(m)
	if m == nil {
		d.lat = nil
		return
	}
	d.lat = m.Digest("ssd.latency")
}

// SetAttribution wires (or, with nil, unwires) a straggler attribution table
// into the FTL: every multi-plane program/erase charges its extra latency to
// the slowest member block. Call while no request is in flight.
func (d *Device) SetAttribution(a *telemetry.Attribution) { d.f.SetAttribution(a) }

// AttachRecorder wires a flight recorder: the simulated clock ticks it on
// every submission, sampling WAF, in-flight depth, the extra-latency EWMA,
// assembly pool levels, and per-chip utilization. The recorder must have been
// built with RecorderColumns for this device's chip count. Attaching enables
// the FTL op journal (so chip utilization is observable under either queue
// model); attach while no request is in flight.
func (d *Device) AttachRecorder(rec *telemetry.Recorder) error {
	if rec == nil {
		d.rec = nil
		return nil
	}
	rs, err := newRecState(rec, len(d.chipBusy), d.f, 0, nil)
	if err != nil {
		return err
	}
	d.f.EnableOpJournal()
	// Continue the device timeline: align the sampling cursor so history
	// before the attachment is not backfilled with attach-time values.
	rs.hor = d.busy
	if d.now > rs.hor {
		rs.hor = d.now
	}
	for _, b := range d.chipBusy {
		if b > rs.hor {
			rs.hor = b
		}
	}
	rec.AlignTo(rs.hor)
	d.rec = rs
	return nil
}

// FlushRecorder ticks the attached recorder up to the current simulated
// clock, emitting the samples between the last event and now. Call after the
// final submission, before exporting.
func (d *Device) FlushRecorder() {
	if d.rec != nil {
		d.rec.tick(d.now)
	}
}

// Now returns the simulated clock.
func (d *Device) Now() float64 { return d.now }

// Stats returns a copy of the device statistics.
func (d *Device) Stats() Stats {
	s := d.stats
	s.Latencies = append([]float64(nil), d.stats.Latencies...)
	return s
}

// transferTime is the host-bus cost of moving one page.
func (d *Device) transferTime(bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / d.cfg.BusMBps // bytes / (MB/s) = µs
}

// gcHorizon returns the time the device frees up under the active queue
// model — where a background GC step would start.
func (d *Device) gcHorizon() float64 {
	if d.cfg.Queue != PerChip {
		return d.busy
	}
	h := 0.0
	for _, b := range d.chipBusy {
		if b > h {
			h = b
		}
	}
	return h
}

// gcStepOnce runs one preemptive GC step and schedules its flash work from
// the given start time, returning the new device horizon and whether the
// step did work (false = GC idle, nothing to reclaim).
func (d *Device) gcStepOnce(start float64) (float64, bool, error) {
	var res ftl.GCStepResult
	ops, err := d.f.CollectOps(func() error {
		var err error
		res, err = d.f.GCStep(d.f.GCStepPages())
		return err
	})
	if err != nil {
		return start, false, err
	}
	if res.Idle {
		return start, false, nil
	}
	end := start
	if d.cfg.Queue == PerChip {
		for _, op := range ops {
			s := start
			if d.chipBusy[op.Chip] > s {
				s = d.chipBusy[op.Chip]
			}
			e := s + op.Dur
			d.chipBusy[op.Chip] = e
			if e > end {
				end = e
			}
		}
	} else {
		end = start + res.Latency
		d.busy = end
	}
	if d.rec != nil {
		for _, op := range ops {
			d.rec.busy[op.Chip] += op.Dur
		}
		if end > d.rec.hor {
			d.rec.hor = end
		}
	}
	return end, true, nil
}

// gcIdleSteps runs GC steps in the idle window before the clock — host
// requests keep priority because stepping stops as soon as the window is
// consumed (the last step may overshoot: flash ops are not preemptible).
func (d *Device) gcIdleSteps() error {
	if d.f.GCStepPages() <= 0 {
		return nil
	}
	h := d.gcHorizon()
	for h < d.now && d.f.GCNeeded() {
		var worked bool
		var err error
		h, worked, err = d.gcStepOnce(h)
		if err != nil {
			return err
		}
		if !worked {
			return nil
		}
	}
	return nil
}

// gcDebtStep pays GC debt after a serviced request — the forward progress
// guarantee for closed-loop hosts that never leave an idle window. Host work
// keeps strict priority: when the serviced request had queued (the device is
// backlogged), no step is taken and the idle windows catch up later — unless
// the FTL reports pressure: a trickle step when the pool is down to the GC
// reserve row, a small burst when it is empty. Always bounded: a host
// request is never stuck behind a whole collection.
func (d *Device) gcDebtStep(queued bool) error {
	if d.f.GCStepPages() <= 0 || !d.f.GCNeeded() {
		return nil
	}
	steps := 1
	switch d.f.GCPressure() {
	case 2:
		steps = 4
	case 1:
	default:
		if queued {
			return nil
		}
	}
	h := d.gcHorizon()
	for i := 0; i < steps && d.f.GCNeeded(); i++ {
		var worked bool
		var err error
		h, worked, err = d.gcStepOnce(h)
		if err != nil {
			return err
		}
		if !worked {
			return nil
		}
	}
	return nil
}

// Submit services one request on the simulated clock and returns its
// completion. Requests are serviced in submission order (one deep queue:
// the FTL serializes flash work; queueing delay models a busy device).
func (d *Device) Submit(req Request) (Completion, error) {
	if req.Arrival > d.now {
		d.now = req.Arrival
	}
	if d.rec != nil {
		// Sample any interval boundaries crossed before this request's work
		// lands, so each sample holds the pre-event state.
		d.rec.tick(d.now)
	}
	if err := d.gcIdleSteps(); err != nil {
		return Completion{}, err
	}
	start := d.now
	if d.busy > start {
		start = d.busy
	}
	var service, gcTime float64
	var data []byte
	ops, err := d.f.CollectOps(func() error {
		switch req.Kind {
		case OpWrite:
			res, err := d.f.WriteHinted(req.LPN, req.Data, req.Hint)
			if err != nil {
				return err
			}
			service = d.transferTime(len(req.Data)) + res.Latency
			gcTime = res.GCLatency
			d.stats.Writes++
		case OpRead:
			res, err := d.f.Read(req.LPN)
			if err != nil {
				return err
			}
			data = res.Data
			service = res.Latency + d.transferTime(len(res.Data))
			d.stats.Reads++
		case OpTrim:
			if err := d.f.Trim(req.LPN); err != nil {
				return err
			}
			service = 1 // command overhead only
			d.stats.Trims++
		default:
			return fmt.Errorf("ssd: unknown op kind %v", req.Kind)
		}
		return nil
	})
	if err != nil {
		return Completion{}, err
	}
	var finish float64
	if d.cfg.Queue == PerChip {
		// Schedule this request's chip work on per-chip queues: it starts
		// at its arrival (not behind unrelated requests) and completes when
		// the last of its chip operations completes.
		reqStart := req.Arrival
		if reqStart == 0 {
			// The documented "0 = now" convention: an unstamped request
			// starts at the current clock. Without this clamp it would be
			// scheduled at absolute time zero — its chip work lands in the
			// past and the reported service time spans the whole simulated
			// history instead of this request's own flash work.
			reqStart = d.now
		}
		end := reqStart
		for _, op := range ops {
			s := reqStart
			if d.chipBusy[op.Chip] > s {
				s = d.chipBusy[op.Chip]
			}
			e := s + op.Dur
			d.chipBusy[op.Chip] = e
			if e > end {
				end = e
			}
		}
		xfer := d.transferTime(len(req.Data)) + d.transferTime(len(data))
		if req.Kind == OpTrim {
			xfer = 1
		}
		finish = end + xfer
		start = reqStart
		service = finish - reqStart
	} else {
		finish = start + service
	}
	if d.rec != nil {
		for _, op := range ops {
			d.rec.busy[op.Chip] += op.Dur
		}
		d.rec.note(finish)
	}
	d.busy = finish
	if finish > d.now {
		// The simulated clock follows completions: submitting work takes
		// the device (and the caller issuing sequentially) to its finish.
		d.now = finish
	}
	c := Completion{
		Start:   start,
		Finish:  finish,
		Wait:    start - req.Arrival,
		Service: service,
		Latency: finish - req.Arrival,
		GCTime:  gcTime,
		Data:    data,
	}
	if req.Arrival == 0 {
		c.Wait = 0
		c.Latency = service
	}
	d.stats.Requests++
	d.stats.Latencies = append(d.stats.Latencies, c.Latency)
	if d.lat != nil {
		d.lat.Observe(c.Latency)
	}
	if err := d.gcDebtStep(c.Wait > 0); err != nil {
		return c, err
	}
	return c, nil
}

// PageSize returns the device's page size in bytes.
func (d *Device) PageSize() int { return d.f.Geometry().PageSize }

// FillSequential writes every logical page once with the given payload
// generator — a convenience for warming the device before measurements.
func (d *Device) FillSequential(payload func(lpn int64) []byte) error {
	for lpn := int64(0); lpn < d.f.Capacity(); lpn++ {
		var data []byte
		if payload != nil {
			data = payload(lpn)
		}
		if _, err := d.Submit(Request{Kind: OpWrite, LPN: lpn, Data: data}); err != nil {
			return fmt.Errorf("ssd: fill at lpn %d: %w", lpn, err)
		}
	}
	return nil
}
