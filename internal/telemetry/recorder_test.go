package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// tickSeq drives a recorder through a sequence of clock times, filling each
// sample with the boundary time itself plus a running tick count, so tests
// can tell exactly which Tick produced which sample.
func tickSeq(r *Recorder, times []float64) {
	for n, now := range times {
		tick := float64(n)
		r.Tick(now, func(t float64, vals []float64) {
			vals[0] = t
			vals[1] = tick
		})
	}
}

func TestRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(0, 4, []string{"a"}); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := NewRecorder(100, 0, []string{"a"}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewRecorder(100, 4, nil); err == nil {
		t.Fatal("no columns accepted")
	}
}

func TestRecorderBoundarySemantics(t *testing.T) {
	r, err := NewRecorder(100, 16, []string{"t", "tick"})
	if err != nil {
		t.Fatal(err)
	}
	// Clock: 0 → 50 (no boundary), 250 (boundaries 100, 200), 250 again
	// (none), 400 (300, 400).
	tickSeq(r, []float64{50, 250, 250, 400})
	s := r.Samples()
	if len(s) != 4 {
		t.Fatalf("samples = %d, want 4", len(s))
	}
	wantT := []float64{100, 200, 300, 400}
	wantTick := []float64{1, 1, 3, 3}
	for i := range s {
		if s[i].T != wantT[i] || s[i].V[0] != wantT[i] || s[i].V[1] != wantTick[i] {
			t.Fatalf("sample %d = %+v, want t=%v tick=%v", i, s[i], wantT[i], wantTick[i])
		}
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRecorderExactBoundaryBeforeEvent(t *testing.T) {
	// A tick exactly at a boundary emits that boundary's sample — the caller
	// ticks before applying the event, so the sample sees pre-event state.
	r, _ := NewRecorder(100, 8, []string{"x"})
	r.Tick(100, func(t float64, vals []float64) { vals[0] = 7 })
	s := r.Samples()
	if len(s) != 1 || s[0].T != 100 || s[0].V[0] != 7 {
		t.Fatalf("samples = %+v", s)
	}
	// Time never goes backward; a stale tick is a no-op.
	r.Tick(100, func(t float64, vals []float64) { t_ := t; _ = t_; vals[0] = 9 })
	if r.Len() != 1 {
		t.Fatalf("stale tick added a sample")
	}
}

func TestRecorderWraparoundKeepsNewest(t *testing.T) {
	r, _ := NewRecorder(10, 4, []string{"t", "tick"})
	tickSeq(r, []float64{95}) // boundaries 10..90 → 9 samples, only 4 kept
	s := r.Samples()
	if len(s) != 4 {
		t.Fatalf("samples = %d, want capacity 4", len(s))
	}
	for i, want := range []float64{60, 70, 80, 90} {
		if s[i].T != want {
			t.Fatalf("sample %d at t=%v, want %v (newest window)", i, s[i].T, want)
		}
	}
	// Further ticks keep rolling the window.
	tickSeq(r, []float64{125})
	s = r.Samples()
	for i, want := range []float64{90, 100, 110, 120} {
		if s[i].T != want {
			t.Fatalf("after roll: sample %d at t=%v, want %v", i, s[i].T, want)
		}
	}
}

func TestRecorderClockJumpSkipsEvicted(t *testing.T) {
	// A huge clock jump must not fill millions of samples: boundaries that
	// would immediately be evicted are skipped, costing at most cap fills.
	r, _ := NewRecorder(1, 8, []string{"x"})
	fills := 0
	r.Tick(1e9, func(t float64, vals []float64) { fills++ })
	if fills != 8 {
		t.Fatalf("clock jump filled %d samples, want 8", fills)
	}
	s := r.Samples()
	if s[0].T != 1e9-7 || s[7].T != 1e9 {
		t.Fatalf("window = [%v, %v], want [1e9-7, 1e9]", s[0].T, s[7].T)
	}
}

func TestRecorderCSV(t *testing.T) {
	r, _ := NewRecorder(100, 8, []string{"waf", "qdepth"})
	r.Tick(200, func(t float64, vals []float64) { vals[0] = 1.25; vals[1] = 3 })
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "t_us,waf,qdepth\n100,1.25,3\n200,1.25,3\n"
	if buf.String() != want {
		t.Fatalf("csv:\n%q\nwant\n%q", buf.String(), want)
	}
}

func TestRecorderJSON(t *testing.T) {
	r, _ := NewRecorder(50, 8, []string{"a"})
	r.Tick(50, func(t float64, vals []float64) { vals[0] = 2 })
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"interval_us": 50`, `"columns"`, `"t_us": 50`, `"v"`} {
		if !strings.Contains(buf.String(), frag) {
			t.Fatalf("json missing %q:\n%s", frag, buf.String())
		}
	}
}

func TestRecorderDeterministicBytes(t *testing.T) {
	run := func() string {
		r, _ := NewRecorder(25, 32, []string{"a", "b"})
		tickSeq(r, []float64{10, 60, 61, 200, 512.5, 513, 1000})
		var buf bytes.Buffer
		r.WriteCSV(&buf)
		return buf.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same tick sequence produced different CSV:\n%s\nvs\n%s", a, b)
	}
}
