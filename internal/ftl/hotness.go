package ftl

// hotness detects frequently rewritten logical pages with 4-bit saturating
// counters and periodic exponential decay — the "detects the types of
// written data" half of the paper's function-based placement (§V-D). Hot
// pages get HintSmall automatically, steering them to fast (LSB) superpage
// slots; everything else keeps the caller's hint.
type hotness struct {
	counts     []uint8 // two 4-bit counters per byte
	writes     uint64
	decayEvery uint64
	threshold  uint8
}

// newHotness sizes the counter array for n logical pages. decayEvery halves
// every counter after that many recorded writes; threshold is the counter
// value at which a page counts as hot.
func newHotness(n int64, decayEvery uint64, threshold uint8) *hotness {
	if decayEvery == 0 {
		decayEvery = uint64(n)
	}
	if threshold == 0 || threshold > 15 {
		threshold = 4
	}
	return &hotness{
		counts:     make([]uint8, (n+1)/2),
		decayEvery: decayEvery,
		threshold:  threshold,
	}
}

func (h *hotness) get(lpn int64) uint8 {
	b := h.counts[lpn/2]
	if lpn%2 == 0 {
		return b & 0x0f
	}
	return b >> 4
}

func (h *hotness) set(lpn int64, v uint8) {
	i := lpn / 2
	if lpn%2 == 0 {
		h.counts[i] = h.counts[i]&0xf0 | v&0x0f
	} else {
		h.counts[i] = h.counts[i]&0x0f | v<<4
	}
}

// note records one write to lpn and returns whether the page is now hot.
func (h *hotness) note(lpn int64) bool {
	if c := h.get(lpn); c < 15 {
		h.set(lpn, c+1)
	}
	h.writes++
	if h.writes%h.decayEvery == 0 {
		h.decay()
	}
	return h.hot(lpn)
}

// hot reports whether lpn's write frequency is above the threshold.
func (h *hotness) hot(lpn int64) bool { return h.get(lpn) >= h.threshold }

// decay halves every counter (both nibbles at once).
func (h *hotness) decay() {
	for i, b := range h.counts {
		h.counts[i] = (b >> 1) & 0x77
	}
}

// footprintBytes returns the detector's memory cost.
func (h *hotness) footprintBytes() int { return len(h.counts) }
