package experiments

import (
	"fmt"

	"superfast/internal/assembly"
	"superfast/internal/chamber"
	"superfast/internal/core"
	"superfast/internal/stats"
)

func init() {
	register("fig5", runFig5)
	register("fig6", runFig6)
	register("fig13", runFig13)
	register("fig14", runFig14)
	register("fig15", runFig15)
}

// runFig5 reproduces Fig. 5: the raw characterization. Top: per-block erase
// latency (tBERS) for the first two chips. Bottom: per-word-line program
// latency (tPROG) for one block on each of the first two chips. Long series
// are decimated for readability; summary statistics accompany each chip.
func runFig5(cfg Config) (*Result, error) {
	tb, err := cfg.newTestbed()
	if err != nil {
		return nil, err
	}
	chips := 2
	if cfg.Geometry.Chips < 2 {
		chips = cfg.Geometry.Chips
	}
	res := &Result{ID: "fig5"}

	// Top: block erase latency per chip (lane = chip's plane 0).
	var ersSeries []stats.Series
	sumTable := &stats.Table{
		Title:   "Fig. 5 (top) — tBERS per block, two chips",
		Headers: []string{"Chip", "Blocks", "Mean µs", "Std", "Min", "Max", "P99"},
	}
	step := cfg.BlocksPerLane / 64
	if step < 1 {
		step = 1
	}
	for c := 0; c < chips; c++ {
		lane := c * cfg.Geometry.PlanesPerChip
		ps, err := tb.MeasureLane(lane, chamber.BlockRange(0, cfg.BlocksPerLane), cfg.PESteps[0], cfg.FastMeasure)
		if err != nil {
			return nil, err
		}
		all := make([]float64, len(ps))
		s := stats.Series{Name: fmt.Sprintf("chip%d", c)}
		for i, p := range ps {
			all[i] = p.Erase
			if i%step == 0 {
				s.X = append(s.X, float64(i))
				s.Y = append(s.Y, p.Erase)
			}
		}
		sm := stats.Summarize(all)
		sumTable.AddRow(fmt.Sprintf("%d", c), fmt.Sprintf("%d", sm.N),
			stats.FmtUS(sm.Mean), stats.FmtUS(sm.Std), stats.FmtUS(sm.Min), stats.FmtUS(sm.Max), stats.FmtUS(sm.P99))
		ersSeries = append(ersSeries, s)
	}
	res.Tables = append(res.Tables, sumTable)
	res.Series = append(res.Series, SeriesBlock{
		Title: "tBERS per block (decimated)", XLabel: "block", Series: ersSeries,
	})

	// Bottom: word-line program latency of one block per chip.
	var pgmSeries []stats.Series
	for c := 0; c < chips; c++ {
		lane := c * cfg.Geometry.PlanesPerChip
		p := tb.FastProfile(lane, 0, cfg.PESteps[0])
		s := stats.Series{Name: fmt.Sprintf("chip%d/blk0", c)}
		wlStep := len(p.LWL) / 96
		if wlStep < 1 {
			wlStep = 1
		}
		for wl := 0; wl < len(p.LWL); wl += wlStep {
			s.X = append(s.X, float64(wl))
			s.Y = append(s.Y, p.LWL[wl])
		}
		pgmSeries = append(pgmSeries, s)
	}
	res.Series = append(res.Series, SeriesBlock{
		Title: "tPROG per word-line (Fig. 5 bottom)", XLabel: "word-line", Series: pgmSeries,
	})
	return res, nil
}

// runFig6 reproduces Fig. 6: the extra program and erase latency of randomly
// organized superblocks — the per-superblock series and the headline
// averages (paper: 13,084.17 µs programming, 41.71 µs erasing).
func runFig6(cfg Config) (*Result, error) {
	out, err := SweepStrategies(cfg, []assembly.Assembler{baseline(cfg)})
	if err != nil {
		return nil, err
	}
	r := out[0]
	t := &stats.Table{
		Title:   "Fig. 6 — extra latency of random superblock organization",
		Headers: []string{"Metric", "Avg", "Median", "P95", "Max"},
	}
	pg := stats.Summarize(r.ExtraPgm)
	er := stats.Summarize(r.ExtraErs)
	t.AddRow("Extra PGM LTN (µs)", stats.FmtUS(pg.Mean), stats.FmtUS(pg.Median), stats.FmtUS(pg.P95), stats.FmtUS(pg.Max))
	t.AddRow("Extra ERS LTN (µs)", stats.FmtUS(er.Mean), stats.FmtUS(er.Median), stats.FmtUS(er.P95), stats.FmtUS(er.Max))

	// Per-superblock series (decimated to ≤128 points).
	n := len(r.ExtraPgm)
	step := n / 128
	if step < 1 {
		step = 1
	}
	var sp, se stats.Series
	sp.Name, se.Name = "extraPGM", "extraERS"
	for i := 0; i < n; i += step {
		sp.X = append(sp.X, float64(i))
		sp.Y = append(sp.Y, r.ExtraPgm[i])
		se.X = append(se.X, float64(i))
		se.Y = append(se.Y, r.ExtraErs[i])
	}
	return &Result{
		ID:     "fig6",
		Tables: []*stats.Table{t},
		Series: []SeriesBlock{
			{Title: "extra program latency per superblock", XLabel: "superblock", Series: []stats.Series{sp}},
			{Title: "extra erase latency per superblock", XLabel: "superblock", Series: []stats.Series{se}},
		},
	}, nil
}

// runFig13 reproduces Fig. 13: the distribution of extra program latency for
// the random baseline versus QSTR-MED (plus the optimal reference). QSTR-MED
// shifts the distribution left.
func runFig13(cfg Config) (*Result, error) {
	strategies := []assembly.Assembler{
		baseline(cfg),
		assembly.Optimal{Window: cfg.Window},
		core.BatchAssembler{K: cfg.MedWindow},
	}
	out, err := SweepStrategies(cfg, strategies)
	if err != nil {
		return nil, err
	}
	lo, hi := 0.0, 0.0
	for _, o := range out {
		s := stats.Summarize(o.ExtraPgm)
		if s.Max > hi {
			hi = s.Max
		}
	}
	if hi == 0 {
		hi = 1
	}
	text := ""
	for _, o := range out {
		h, err := stats.NewHistogram(o.ExtraPgm, lo, hi*1.0001, cfg.HistBins)
		if err != nil {
			return nil, err
		}
		text += fmt.Sprintf("%s (mean %s µs):\n%s\n", o.Name, stats.FmtUS(stats.Summarize(o.ExtraPgm).Mean), h.Render(48))
	}
	return &Result{ID: "fig13", Text: text}, nil
}

// runFig14 reproduces Fig. 14: the per-superblock improvement of STR-MED and
// QSTR-MED over random, showing the two schemes' trends mirror each other.
func runFig14(cfg Config) (*Result, error) {
	strategies := []assembly.Assembler{
		baseline(cfg),
		assembly.STRMedian{Window: cfg.MedWindow},
		core.BatchAssembler{K: cfg.MedWindow},
	}
	out, err := SweepStrategies(cfg, strategies)
	if err != nil {
		return nil, err
	}
	base := out[0]
	n := len(base.ExtraPgm)
	step := n / 128
	if step < 1 {
		step = 1
	}
	var series []stats.Series
	for _, o := range out[1:] {
		s := stats.Series{Name: o.Name}
		for i := 0; i < n && i < len(o.ExtraPgm); i += step {
			s.X = append(s.X, float64(i))
			s.Y = append(s.Y, o.ExtraPgm[i])
		}
		series = append(series, s)
	}
	// Correlation of the two schemes' per-superblock extra latencies.
	a, b := out[1].ExtraPgm, out[2].ExtraPgm
	t := &stats.Table{
		Title:   "Fig. 14 — all superblocks improvement",
		Headers: []string{"Method", "Mean extra PGM", "Pair checks"},
	}
	for _, o := range out[1:] {
		t.AddRow(o.Name, stats.FmtUS(o.MeanPgm)+" µs", fmt.Sprintf("%d", o.PairChecks))
	}
	text := fmt.Sprintf("mean |STR-MED − QSTR-MED| per superblock: %s µs\n", stats.FmtUS(meanAbsDiff(a, b)))
	return &Result{
		ID:     "fig14",
		Tables: []*stats.Table{t},
		Series: []SeriesBlock{{Title: "extra PGM per superblock", XLabel: "superblock", Series: series}},
		Text:   text,
	}, nil
}

func meanAbsDiff(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	s := 0.0
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s / float64(n)
}

// runFig15 reproduces Fig. 15: average extra program and erase latency as a
// function of P/E cycles, for random, optimal, STR-MED and QSTR-MED. The
// QSTR-MED curves stay flat: the scheme keeps organizing minimal-extra
// superblocks regardless of wear.
func runFig15(cfg Config) (*Result, error) {
	strategies := []assembly.Assembler{
		baseline(cfg),
		assembly.Optimal{Window: cfg.Window},
		assembly.STRMedian{Window: cfg.MedWindow},
		core.BatchAssembler{K: cfg.MedWindow},
	}
	pgmSeries := make([]stats.Series, len(strategies))
	ersSeries := make([]stats.Series, len(strategies))
	for i, s := range strategies {
		pgmSeries[i].Name = s.Name()
		ersSeries[i].Name = s.Name()
	}
	for _, pe := range cfg.PESteps {
		stepCfg := cfg
		stepCfg.PESteps = []int{pe}
		out, err := SweepStrategies(stepCfg, strategies)
		if err != nil {
			return nil, err
		}
		for i, o := range out {
			pgmSeries[i].X = append(pgmSeries[i].X, float64(pe))
			pgmSeries[i].Y = append(pgmSeries[i].Y, o.MeanPgm)
			ersSeries[i].X = append(ersSeries[i].X, float64(pe))
			ersSeries[i].Y = append(ersSeries[i].Y, o.MeanErs)
		}
	}
	return &Result{
		ID: "fig15",
		Series: []SeriesBlock{
			{Title: "Fig. 15 (top) — extra program latency vs P/E cycles", XLabel: "P/E", Series: pgmSeries},
			{Title: "Fig. 15 (bottom) — extra erase latency vs P/E cycles", XLabel: "P/E", Series: ersSeries},
		},
	}, nil
}
