package telemetry

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// promName sanitizes a registry metric name into the Prometheus exposition
// charset [a-zA-Z0-9_:]: dots (the registry's namespace separator) and any
// other invalid rune become underscores.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatPromValue renders a sample value for the text exposition format.
func formatPromValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as their own families (gauge
// high-watermarks as an extra <name>_max gauge when they differ from the
// current value), digests as summaries with p50/p95/p99 quantile labels plus
// _sum/_count/_min/_max. Families are emitted in sorted-name order, so the
// body is deterministic for a fixed registry state.
func WritePrometheus(w *bufio.Writer, m *Metrics) {
	type family struct {
		name  string
		kind  string // "counter" | "gauge" | "summary"
		lines []string
	}
	var fams []family

	snap := m.Export()
	for _, c := range snap.Counters {
		n := promName(c.Name)
		fams = append(fams, family{name: n, kind: "counter",
			lines: []string{n + " " + strconv.FormatUint(c.Value, 10)}})
	}
	for _, g := range snap.Gauges {
		n := promName(g.Name)
		fams = append(fams, family{name: n, kind: "gauge",
			lines: []string{n + " " + formatPromValue(g.Value)}})
		if g.Max != g.Value {
			fams = append(fams, family{name: n + "_max", kind: "gauge",
				lines: []string{n + "_max " + formatPromValue(g.Max)}})
		}
	}
	for _, d := range snap.Digests {
		n := promName(d.Name)
		s := d.Snapshot
		lines := []string{
			n + `{quantile="0.5"} ` + formatPromValue(s.P50),
			n + `{quantile="0.95"} ` + formatPromValue(s.P95),
			n + `{quantile="0.99"} ` + formatPromValue(s.P99),
			n + "_sum " + formatPromValue(s.Mean*float64(s.N)),
			n + "_count " + strconv.FormatUint(s.N, 10),
		}
		fams = append(fams, family{name: n, kind: "summary", lines: lines})
		if s.N > 0 {
			fams = append(fams, family{name: n + "_min", kind: "gauge",
				lines: []string{n + "_min " + formatPromValue(s.Min)}})
			fams = append(fams, family{name: n + "_max", kind: "gauge",
				lines: []string{n + "_max " + formatPromValue(s.Max)}})
		}
	}

	// Export returns name-sorted sections; families derived in order stay
	// nearly sorted, but derived _min/_max entries can break ties — sort the
	// final family list for a deterministic body.
	for i := 1; i < len(fams); i++ {
		for j := i; j > 0 && fams[j-1].name > fams[j].name; j-- {
			fams[j-1], fams[j] = fams[j], fams[j-1]
		}
	}
	for _, f := range fams {
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, l := range f.lines {
			w.WriteString(l)
			w.WriteByte('\n')
		}
	}
}

// WriteLedgerPrometheus appends the ledger's per-hop latency digests to a
// Prometheus exposition: one hop_latency_us summary family with a hop label
// per hop taxonomy entry (quantiles are the streaming P² estimates; units are
// wall-clock µs for wall-only hops and simulated µs otherwise).
func WriteLedgerPrometheus(w *bufio.Writer, led *Ledger) {
	if led == nil {
		return
	}
	fmt.Fprintf(w, "# TYPE hop_latency_us summary\n")
	for h := Hop(0); h < NumHops; h++ {
		s := led.HopSummary(h)
		if s.N == 0 {
			continue
		}
		name := h.String()
		for _, q := range []struct {
			q string
			v float64
		}{{"0.5", s.P50}, {"0.95", s.P95}, {"0.99", s.P99}, {"0.999", s.P999}} {
			fmt.Fprintf(w, "hop_latency_us{hop=%q,quantile=%q} %s\n", name, q.q, formatPromValue(q.v))
		}
		fmt.Fprintf(w, "hop_latency_us_sum{hop=%q} %s\n", name, formatPromValue(s.Mean*float64(s.N)))
		fmt.Fprintf(w, "hop_latency_us_count{hop=%q} %d\n", name, s.N)
	}
}

// MetricsHandler serves the registry in Prometheus text format.
func MetricsHandler(m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		bw := bufio.NewWriter(w)
		WritePrometheus(bw, m)
		bw.Flush()
	})
}

// TraceHandler serves the ledger's current records: the JSONL shard by
// default (what ftltrace merges), ?format=chrome for a Chrome trace-event
// file of this shard alone, ?format=breakdown for the per-hop text table.
func TraceHandler(led *Ledger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		recs := led.Records()
		switch r.URL.Query().Get("format") {
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
			WriteLedgerChrome(w, recs, r.URL.Query().Get("wall") == "1")
		case "breakdown":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			LedgerBreakdown(recs).WriteTable(w)
		default:
			w.Header().Set("Content-Type", "application/x-ndjson")
			WriteShard(w, recs)
		}
	})
}

// Routes builds the live-exposition mux: /metrics (Prometheus text format,
// with per-hop latency summaries when a ledger is wired), /healthz (200
// "ok"), /debug/pprof/* (the standard Go profiler), and — when the optional
// sinks are non-nil — /flightrecorder (CSV; ?format=json for JSON),
// /attribution (JSON; ?topk=N bounds the straggler table) and /trace (the
// hop-ledger shard; see TraceHandler for formats).
func Routes(m *Metrics, rec *Recorder, attr *Attribution, led *Ledger) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		bw := bufio.NewWriter(w)
		WritePrometheus(bw, m)
		WriteLedgerPrometheus(bw, led)
		bw.Flush()
	})
	if led != nil {
		mux.Handle("/trace", TraceHandler(led))
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if rec != nil {
		mux.HandleFunc("/flightrecorder", func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Query().Get("format") == "json" {
				w.Header().Set("Content-Type", "application/json")
				rec.WriteJSON(w)
				return
			}
			w.Header().Set("Content-Type", "text/csv; charset=utf-8")
			rec.WriteCSV(w)
		})
	}
	if attr != nil {
		mux.HandleFunc("/attribution", func(w http.ResponseWriter, r *http.Request) {
			topK := 20
			if q := r.URL.Query().Get("topk"); q != "" {
				if v, err := strconv.Atoi(q); err == nil {
					topK = v
				}
			}
			w.Header().Set("Content-Type", "application/json")
			attr.WriteJSON(w, topK)
		})
	}
	return mux
}

// Serve listens on addr (":0" or "127.0.0.1:0" pick an ephemeral port) and
// serves handler in a background goroutine. It returns the server and the
// bound address; shut the server down with (*http.Server).Close or Shutdown.
func Serve(addr string, handler http.Handler) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}
