// Command sbsim runs the paper-reproduction experiments: every table and
// figure of the evaluation section, plus overhead analyses and ablations.
//
// Usage:
//
//	sbsim -list
//	sbsim -id table5 [-quick] [-pe 0,1000,3000] [-blocks 400] [-groups 6] [-seed 1]
//	sbsim -all -quick
//	sbsim -all -quick -parallel 4
//
// -parallel N runs the sweep's (P/E step × lane group) tasks on N
// goroutines; each task's jitter stream is offset to where the serial run
// would have it, so the results are byte-identical to -parallel 0. The
// `make check` gate runs the suite under the race detector to keep this
// path (and the concurrent device front end) race-clean.
//
// -metrics prints the telemetry registry to stderr (or -metrics-out FILE),
// keeping piped experiment tables clean. -attr FILE writes the straggler
// attribution gathered across the device-level experiments. -http ADDR
// serves live /metrics, /healthz and /debug/pprof while experiments run.
// -cpuprofile/-memprofile write offline pprof profiles of the whole run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"superfast/internal/experiments"
	"superfast/internal/stats"
	"superfast/internal/telemetry"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list experiment ids and exit")
		id     = flag.String("id", "", "experiment id to run")
		all    = flag.Bool("all", false, "run every experiment")
		quick  = flag.Bool("quick", false, "use the reduced quick configuration")
		seed   = flag.Uint64("seed", 0, "override model seed (0 = default)")
		blocks = flag.Int("blocks", 0, "override blocks per lane (0 = default)")
		groups = flag.Int("groups", 0, "override number of lane groups (0 = all)")
		peList = flag.String("pe", "", "override P/E steps, comma separated (e.g. 0,1000,3000)")
		csvDir = flag.String("csv", "", "also write tables and series as CSV files into this directory")
		par    = flag.Int("parallel", 0, "run sweep tasks on N goroutines (0 = serial)")
		met      = flag.Bool("metrics", false, "print sweep telemetry (task counters, extra-latency digests) at exit (stderr)")
		metOut   = flag.String("metrics-out", "", "write the -metrics dump to FILE instead of stderr")
		attrOut  = flag.String("attr", "", "write the straggler attribution report (JSON) gathered across experiments to FILE")
		attrTopK = flag.Int("attr-topk", 20, "straggler blocks kept in the -attr report (0 = all)")
		httpAddr = flag.String("http", "", "serve /metrics, /healthz, /debug/pprof (plus /attribution with -attr) on ADDR while experiments run")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to FILE")
		memProf  = flag.String("memprofile", "", "write a heap profile to FILE at exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sbsim: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "sbsim: -memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-20s %s\n", id, experiments.Describe(id))
		}
		return
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *blocks > 0 {
		cfg.BlocksPerLane = *blocks
	}
	if *groups > 0 {
		cfg.Groups = *groups
	}
	if *peList != "" {
		steps, err := parseInts(*peList)
		if err != nil {
			fatalf("bad -pe: %v", err)
		}
		cfg.PESteps = steps
	}
	cfg.Parallel = *par
	var reg *telemetry.Metrics
	if *met || *metOut != "" || *httpAddr != "" {
		reg = telemetry.New()
		cfg.Metrics = reg
	}
	var attr *telemetry.Attribution
	if *attrOut != "" {
		attr = telemetry.NewAttribution()
		cfg.Attr = attr
	}
	if *httpAddr != "" {
		srv, addr, err := telemetry.Serve(*httpAddr, telemetry.Routes(reg, nil, attr, nil))
		if err != nil {
			fatalf("-http: %v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "sbsim: serving telemetry on http://%s/\n", addr)
	}

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *id != "":
		ids = []string{*id}
	default:
		fmt.Fprintln(os.Stderr, "sbsim: need -id, -all or -list")
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		res, err := experiments.Run(id, cfg)
		if err != nil {
			fatalf("%s: %v", id, err)
		}
		fmt.Println(res.String())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, res); err != nil {
				fatalf("%s: %v", id, err)
			}
		}
	}
	if attr != nil {
		out, err := os.Create(*attrOut)
		if err != nil {
			fatalf("%v", err)
		}
		if err := attr.WriteJSON(out, *attrTopK); err != nil {
			out.Close()
			fatalf("write attribution: %v", err)
		}
		if err := out.Close(); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "sbsim: wrote attribution of %d multi-plane commands to %s\n", attr.Ops(), *attrOut)
	}
	if *met || *metOut != "" {
		// The dump goes to stderr (or a file), never stdout: piped experiment
		// tables must not interleave with telemetry.
		t := stats.Table{Title: "telemetry", Headers: []string{"Metric", "Value"}}
		for _, v := range reg.Snapshot() {
			if v.Count {
				t.AddRow(v.Name, fmt.Sprintf("%d", uint64(v.Value)))
			} else {
				t.AddRow(v.Name, fmt.Sprintf("%.3f", v.Value))
			}
		}
		var w io.Writer = os.Stderr
		if *metOut != "" {
			out, err := os.Create(*metOut)
			if err != nil {
				fatalf("%v", err)
			}
			defer out.Close()
			w = out
		}
		fmt.Fprint(w, t.String())
	}
}

// writeCSV dumps every table and series of a result into dir.
func writeCSV(dir string, res *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range res.Tables {
		name := filepath.Join(dir, fmt.Sprintf("%s-table%d.csv", res.ID, i))
		if err := os.WriteFile(name, []byte(t.CSV()), 0o644); err != nil {
			return err
		}
	}
	for i, sb := range res.Series {
		name := filepath.Join(dir, fmt.Sprintf("%s-series%d.csv", res.ID, i))
		if err := os.WriteFile(name, []byte(stats.SeriesCSV(sb.XLabel, sb.Series)), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sbsim: "+format+"\n", args...)
	os.Exit(1)
}
