package flash

import (
	"testing"

	"superfast/internal/pv"
)

// TestSteadyStateAllocs pins the allocation counts of the hot array
// operations after the slice/bitset storage rework: once a block's page
// tables exist, erase/program cycles and reads must run allocation-free.
// A regression here silently reintroduces per-P/E-cycle reallocation.
func TestSteadyStateAllocs(t *testing.T) {
	g := TestGeometry()
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	a := MustNewArray(g, pv.New(p), DefaultECC())
	addr := BlockAddr{Chip: 1, Plane: 0, Block: 2}
	lwls := g.LWLsPerBlock()

	// Warm one full P/E cycle: allocates the page tables and the kernel's
	// static tables, which are one-time costs.
	if _, err := a.Erase(addr); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < lwls; i++ {
		if _, err := a.Program(addr, i, nil); err != nil {
			t.Fatal(err)
		}
	}

	cycle := testing.AllocsPerRun(10, func() {
		if _, err := a.Erase(addr); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < lwls; i++ {
			if _, err := a.Program(addr, i, nil); err != nil {
				t.Fatal(err)
			}
		}
	})
	if cycle > 0 {
		t.Errorf("steady-state erase+program cycle allocates %.1f objects, want 0", cycle)
	}

	pa := PageAddr{BlockAddr: addr, LWL: 3, Type: pv.LSB}
	reads := testing.AllocsPerRun(100, func() {
		if _, err := a.Read(pa); err != nil {
			t.Fatal(err)
		}
	})
	if reads > 0 {
		t.Errorf("steady-state read allocates %.1f objects, want 0", reads)
	}
}

// TestEraseReusesPageStorage is the regression test for the old behaviour
// where Erase nil-ed out data/programmed/lwlLatency/oob, forcing the next
// program to reallocate them: storage must be reused, and — just as
// important — reused storage must not leak the previous cycle's state.
func TestEraseReusesPageStorage(t *testing.T) {
	g := TestGeometry()
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	a := MustNewArray(g, pv.New(p), DefaultECC())
	addr := BlockAddr{Chip: 0, Plane: 1, Block: 3}
	lwls := g.LWLsPerBlock()

	// Cycle 1: program everything with payloads and OOB, corrupt one page.
	if _, err := a.Erase(addr); err != nil {
		t.Fatal(err)
	}
	payload := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	oob := [][]byte{[]byte("tag")}
	for i := 0; i < lwls; i++ {
		if _, err := a.ProgramOOB(addr, i, payload, oob); err != nil {
			t.Fatal(err)
		}
	}
	victim := PageAddr{BlockAddr: addr, LWL: 2, Type: pv.CSB}
	if err := a.InjectCorruption(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Read(victim); err == nil {
		t.Fatal("corrupted page read should fail before the erase")
	}

	// The erase must clear every trace of cycle 1...
	if _, err := a.Erase(addr); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Read(victim); err == nil {
		t.Fatal("read after erase should fail ErrNotProgrammed")
	}

	// ...and a second cycle must not see stale payloads, OOB, corruption or
	// latencies through the reused storage.
	for i := 0; i < lwls; i++ {
		if _, err := a.Program(addr, i, nil); err != nil {
			t.Fatal(err)
		}
	}
	r, err := a.Read(victim)
	if err != nil {
		t.Fatalf("read after re-program: %v (stale corruption?)", err)
	}
	if r.Data != nil {
		t.Fatalf("read after re-program returned stale payload %q", r.Data)
	}
	got, err := a.ReadOOB(victim)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("ReadOOB after re-program returned stale tag %q", got)
	}
	lats, err := a.LWLLatencies(addr)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range lats {
		if v == 0 {
			t.Fatalf("lwlLatency[%d] not recorded on the reused storage", i)
		}
	}

	// And the second cycle's steady state allocates nothing.
	n := testing.AllocsPerRun(5, func() {
		if _, err := a.Erase(addr); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < lwls; i++ {
			if _, err := a.Program(addr, i, nil); err != nil {
				t.Fatal(err)
			}
		}
	})
	if n > 0 {
		t.Errorf("P/E cycle after storage rework allocates %.1f objects, want 0", n)
	}
}

// TestBorrowPayloads covers the zero-copy opt-in: borrowed slices are stored
// as-is, while the default path keeps its copy semantics.
func TestBorrowPayloads(t *testing.T) {
	g := TestGeometry()
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	a := MustNewArray(g, pv.New(p), DefaultECC())
	addr := BlockAddr{}
	if _, err := a.Erase(addr); err != nil {
		t.Fatal(err)
	}

	// Default: the array copies, so caller-side mutation is invisible.
	buf := []byte("copied")
	if _, err := a.Program(addr, 0, [][]byte{buf}); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	r, err := a.Read(PageAddr{BlockAddr: addr, LWL: 0, Type: pv.LSB})
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Data) != "copied" {
		t.Fatalf("copy mode stored %q, want %q", r.Data, "copied")
	}

	// Borrow mode: the stored page aliases the caller's slice.
	a.SetBorrowPayloads(true)
	lent := []byte("lent")
	ob := []byte("oob")
	if _, err := a.ProgramOOB(addr, 1, [][]byte{lent}, [][]byte{ob}); err != nil {
		t.Fatal(err)
	}
	pa := PageAddr{BlockAddr: addr, LWL: 1, Type: pv.LSB}
	r, err = a.Read(pa)
	if err != nil {
		t.Fatal(err)
	}
	if &r.Data[0] != &lent[0] {
		t.Fatal("borrow mode did not store the caller's slice")
	}
	o, err := a.ReadOOB(pa)
	if err != nil {
		t.Fatal(err)
	}
	if &o[0] != &ob[0] {
		t.Fatal("borrow mode did not store the caller's OOB slice")
	}
}
