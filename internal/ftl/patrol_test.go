package ftl

import (
	"errors"
	"strings"
	"testing"

	"superfast/internal/flash"
)

// noRefresh is a threshold no real page can reach, so patrol only scans.
const noRefresh = 1 << 30

// fullFTL returns an FTL with every logical page written and flushed, so the
// whole space is mapped, nothing is buffered, and patrol counts are exact.
func fullFTL(t *testing.T, cfg Config) *FTL {
	t.Helper()
	f := newFTL(t, cfg)
	for lpn := int64(0); lpn < f.Capacity(); lpn++ {
		if _, err := f.Write(lpn, payload(lpn, 0)); err != nil {
			t.Fatalf("fill lpn %d: %v", lpn, err)
		}
	}
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPatrolWrapsPastLogEnd(t *testing.T) {
	f := fullFTL(t, testConfig())
	cap := f.Capacity()
	const window = 20
	start := cap - 7 // 7 pages before the end, 13 after the wrap
	before := f.Stats().PatrolReads
	next, lat, err := f.Patrol(start, window, noRefresh)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().PatrolReads - before; got != window {
		t.Fatalf("PatrolReads delta = %d, want %d", got, window)
	}
	if want := (start + window) % cap; next != want {
		t.Fatalf("next = %d, want %d (wrapped)", next, want)
	}
	if lat <= 0 {
		t.Fatalf("latency = %v, want > 0", lat)
	}
	if f.Stats().Refreshes != 0 {
		t.Fatal("huge threshold must never refresh")
	}
}

func TestPatrolResumeCursor(t *testing.T) {
	f := fullFTL(t, testConfig())
	cap := f.Capacity()
	// Drive the scan in chunks, feeding each returned cursor back in: the
	// cursor must advance by exactly one chunk per call, modulo the log.
	const chunk = 25
	cursor := int64(0)
	for i := 0; i < 4; i++ {
		before := f.Stats().PatrolReads
		next, _, err := f.Patrol(cursor, chunk, noRefresh)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if got := f.Stats().PatrolReads - before; got != chunk {
			t.Fatalf("chunk %d: PatrolReads delta = %d, want %d", i, got, chunk)
		}
		if want := (cursor + chunk) % cap; next != want {
			t.Fatalf("chunk %d: next = %d, want %d", i, next, want)
		}
		cursor = next
	}
	// A budget larger than the log scans each page exactly once and stops
	// back at the start — a full cycle, not a second lap.
	before := f.Stats().PatrolReads
	next, _, err := f.Patrol(cursor, int(cap)+100, noRefresh)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().PatrolReads - before; int64(got) != cap {
		t.Fatalf("full cycle scanned %d pages, want %d", got, cap)
	}
	if next != cursor {
		t.Fatalf("full cycle ended at %d, want start %d", next, cursor)
	}
}

func TestPatrolReconstructsUncorrectable(t *testing.T) {
	f := fullFTL(t, raidConfig())
	const victim = 17
	corruptPageOf(t, f, victim)
	st := f.Stats()
	next, _, err := f.Patrol(victim, 1, noRefresh)
	if err != nil {
		t.Fatalf("patrol should reconstruct through RAID: %v", err)
	}
	if next != victim+1 {
		t.Fatalf("next = %d, want %d", next, victim+1)
	}
	d := f.Stats()
	if d.PatrolReads-st.PatrolReads != 1 {
		t.Fatalf("PatrolReads delta = %d, want 1", d.PatrolReads-st.PatrolReads)
	}
	// Reconstruction forces a refresh regardless of the threshold.
	if d.Refreshes-st.Refreshes != 1 {
		t.Fatalf("Refreshes delta = %d, want 1", d.Refreshes-st.Refreshes)
	}
	if d.GCWrites <= st.GCWrites {
		t.Fatal("refresh must relocate through the GC stream")
	}
	// The relocated page reads back with the original data.
	r, err := f.Read(victim)
	if err != nil {
		t.Fatalf("read after refresh: %v", err)
	}
	if string(r.Data) != string(payload(victim, 0)) {
		t.Fatalf("lpn %d corrupted by patrol refresh: %q", victim, r.Data)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPatrolBadBlockStormNoDoubleReconstruct runs the campaign interplay: a
// bad-block storm fires in the middle of a patrol pass that already
// reconstructed and refreshed an uncorrectable page. The storm only fails
// programs and erases — sealed members keep serving reads — and the victim's
// refreshed copy is clean, so the rest of the lap (and a second lap over the
// victim) must not reconstruct or refresh anything again.
func TestPatrolBadBlockStormNoDoubleReconstruct(t *testing.T) {
	f := fullFTL(t, raidConfig())
	cap := f.Capacity()
	const victim = 5
	const chunk = 20
	corruptPageOf(t, f, victim)

	// First chunk covers the victim: exactly one reconstruction + refresh.
	st := f.Stats()
	cursor, _, err := f.Patrol(0, chunk, noRefresh)
	if err != nil {
		t.Fatalf("patrol over corrupt page: %v", err)
	}
	if d := f.Stats().Refreshes - st.Refreshes; d != 1 {
		t.Fatalf("Refreshes delta = %d, want 1 (the reconstructed victim)", d)
	}
	// Flush the refresh so the resumed scan reads the new copy from flash
	// (patrol skips buffered pages, which would skew the scan counts).
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}

	// Mid-pass, the storm marks sealed blocks bad.
	marked, err := f.MarkBadBlocks(4, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(marked) == 0 {
		t.Fatal("storm marked nothing — the fill did not seal superblocks")
	}

	// Resume the lap from the cursor: every remaining page — stormed blocks
	// included — must read clean, with zero further refreshes.
	st = f.Stats()
	next, _, err := f.Patrol(cursor, int(cap)-chunk, noRefresh)
	if err != nil {
		t.Fatalf("resumed patrol: %v", err)
	}
	if next != 0 {
		t.Fatalf("lap ended at %d, want 0", next)
	}
	if got := f.Stats().PatrolReads - st.PatrolReads; int64(got) != cap-chunk {
		t.Fatalf("resumed lap scanned %d pages, want %d", got, cap-chunk)
	}
	if d := f.Stats().Refreshes - st.Refreshes; d != 0 {
		t.Fatalf("Refreshes delta = %d after the storm, want 0 (no double reconstruct)", d)
	}

	// A second lap over the victim's range: its refreshed copy is good.
	st = f.Stats()
	if _, _, err := f.Patrol(0, chunk, noRefresh); err != nil {
		t.Fatalf("second lap over victim: %v", err)
	}
	if d := f.Stats().Refreshes - st.Refreshes; d != 0 {
		t.Fatalf("victim refreshed twice (delta %d)", d)
	}
	r, err := f.Read(victim)
	if err != nil {
		t.Fatalf("read victim: %v", err)
	}
	if string(r.Data) != string(payload(victim, 0)) {
		t.Fatalf("victim data corrupted: %q", r.Data)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPatrolCursorSurvivesCheckpointRestore drives patrol in chunks across a
// checkpoint/restore power cycle: the caller-held resume cursor must stay
// meaningful on the restored FTL — the next chunk picks up exactly where the
// pre-cut scan stopped, the lap closes at the original start, and the patrol
// statistics ride the checkpoint.
func TestPatrolCursorSurvivesCheckpointRestore(t *testing.T) {
	arr := testArray(t)
	cfg := testConfig()
	f, err := New(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for lpn := int64(0); lpn < f.Capacity(); lpn++ {
		if _, err := f.Write(lpn, payload(lpn, 0)); err != nil {
			t.Fatalf("fill lpn %d: %v", lpn, err)
		}
	}
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	cap := f.Capacity()
	const chunk = 30

	cursor, _, err := f.Patrol(0, chunk, noRefresh)
	if err != nil {
		t.Fatal(err)
	}
	if cursor != chunk {
		t.Fatalf("cursor = %d, want %d", cursor, chunk)
	}

	snap, err := f.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Restore(arr, cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := g.Stats().PatrolReads, f.Stats().PatrolReads; got != want {
		t.Fatalf("PatrolReads = %d across the power cycle, want %d", got, want)
	}

	// Resume on the restored FTL from the saved cursor: the next chunk scans
	// exactly the pages the pre-cut pass had not reached.
	before := g.Stats().PatrolReads
	next, _, err := g.Patrol(cursor, chunk, noRefresh)
	if err != nil {
		t.Fatalf("resumed patrol after restore: %v", err)
	}
	if got := g.Stats().PatrolReads - before; got != chunk {
		t.Fatalf("post-restore chunk scanned %d pages, want %d", got, chunk)
	}
	if want := (cursor + chunk) % cap; next != want {
		t.Fatalf("post-restore cursor = %d, want %d", next, want)
	}
	// The rest of the lap closes back at the original start — one full cycle
	// total, split across the power cycle.
	last, _, err := g.Patrol(next, int(cap)-2*chunk, noRefresh)
	if err != nil {
		t.Fatal(err)
	}
	if last != 0 {
		t.Fatalf("lap closed at %d, want 0", last)
	}
	if g.Stats().Refreshes != f.Stats().Refreshes {
		t.Fatal("noRefresh scan must not refresh across restore")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPatrolUncorrectableWithoutRAID(t *testing.T) {
	f := fullFTL(t, testConfig())
	const victim = 10
	corruptPageOf(t, f, victim)
	next, _, err := f.Patrol(victim, 1, noRefresh)
	if err == nil {
		t.Fatal("patrol over a corrupt page without RAID should fail")
	}
	if !errors.Is(err, flash.ErrUncorrectable) {
		t.Fatalf("err = %v, want ErrUncorrectable in the chain", err)
	}
	if !strings.Contains(err.Error(), "ftl: patrol read lpn 10") {
		t.Fatalf("err = %v, want patrol context with the lpn", err)
	}
	// The error reports where the scan stopped so a caller can skip past it.
	if next != victim {
		t.Fatalf("next = %d, want the failing lpn %d", next, victim)
	}
}
