package experiments

import (
	"fmt"

	"superfast/internal/flash"
	"superfast/internal/pv"
	"superfast/internal/ssd"
	"superfast/internal/stats"
	"superfast/internal/workload"
)

func init() {
	register("load-sweep", runLoadSweep)
}

// runLoadSweep draws the classic open-loop latency-throughput curve: random
// reads arrive at increasing rates (Poisson interarrivals) and the mean and
// tail response times are measured under both queue models. The per-chip
// model saturates at roughly chips× the serialized model's rate — §II-B's
// internal parallelism as a load curve.
func runLoadSweep(cfg Config) (*Result, error) {
	g, p := deviceGeometry(cfg)
	t := &stats.Table{
		Title:   "Open-loop load sweep — random reads, Poisson arrivals",
		Headers: []string{"Mean gap µs", "Serialized mean µs", "Serialized P99", "Per-chip mean µs", "Per-chip P99"},
	}
	var series []stats.Series
	for qi, q := range []ssd.QueueModel{ssd.Serialized, ssd.PerChip} {
		series = append(series, stats.Series{Name: q.String()})
		_ = qi
	}
	gaps := []float64{200, 100, 60, 40, 25}
	rows := make([][]string, len(gaps))
	for i := range rows {
		rows[i] = []string{fmt.Sprintf("%.0f", gaps[i])}
	}
	for qi, q := range []ssd.QueueModel{ssd.Serialized, ssd.PerChip} {
		for gi, gap := range gaps {
			arr, err := flash.NewArray(g, pv.New(p), flash.DefaultECC())
			if err != nil {
				return nil, err
			}
			dcfg := ssd.DefaultConfig()
			dcfg.FTL.Overprovision = 0.25
			dcfg.Queue = q
			dev, err := ssd.New(arr, dcfg)
			if err != nil {
				return nil, err
			}
			dev.SetAttribution(cfg.Attr)
			capacity := dev.FTL().Capacity()
			if err := dev.FillSequential(nil); err != nil {
				return nil, err
			}
			if _, err := dev.FTL().Flush(); err != nil {
				return nil, err
			}
			base := dev.Now() + 1000
			gen := &workload.Paced{
				Gen:       &workload.Uniform{Space: capacity, Count: 1500, Seed: cfg.Seed + 11},
				MeanGapUS: gap, Seed: cfg.Seed + 13,
			}
			var lats []float64
			for {
				req, ok := gen.Next()
				if !ok {
					break
				}
				req.Kind = ssd.OpRead
				req.Data = nil
				req.Arrival += base
				c, err := dev.Submit(req)
				if err != nil {
					return nil, err
				}
				lats = append(lats, c.Latency)
			}
			sm := stats.Summarize(lats)
			rows[gi] = append(rows[gi], stats.FmtUS(sm.Mean), stats.FmtUS(sm.P99))
			series[qi].X = append(series[qi].X, gap)
			series[qi].Y = append(series[qi].Y, sm.Mean)
		}
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return &Result{
		ID:     "load-sweep",
		Tables: []*stats.Table{t},
		Series: []SeriesBlock{{Title: "mean response vs interarrival gap", XLabel: "gap µs", Series: series}},
	}, nil
}
