// Package client is the pipelining Go client for the block service in
// internal/server: many requests may be in flight on one connection, a
// background reader demultiplexes responses by request id, and synchronous
// convenience wrappers (Read/Write/Trim/Ping/Flush/Stat) cover the common
// ops. Start/Wait expose the asynchronous form the load generator uses.
package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"superfast/internal/ftl"
	"superfast/internal/server"
	"superfast/internal/telemetry"
)

// Terminal connection errors. Every call that was in flight when the
// connection died resolves with an error wrapping one of these, so callers
// (the volume layer's replica retry, a load generator's accounting) can
// classify the failure with errors.Is instead of string matching.
var (
	// ErrConnLost marks a connection that died underneath the client — a
	// read, write or decode error on the socket. In-flight requests may or
	// may not have reached the device; reads are safe to retry elsewhere.
	ErrConnLost = errors.New("client: connection lost")
	// ErrClosed marks a connection the caller closed.
	ErrClosed = errors.New("client: closed")
)

// Client is one connection to a block-service server. Safe for concurrent
// use: requests interleave on the wire in Start order, responses resolve in
// whatever order the server completes them.
type Client struct {
	nc net.Conn

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer
	buf []byte

	pmu     sync.Mutex
	pending map[uint64]chan server.Response
	nextID  uint64
	tenant  uint16 // stamped onto data frames when nonzero (SetTenant)
	err     error  // terminal connection error, set once
	closed  bool

	// led, when set, receives one HopClient record per traced frame sent:
	// the wall-clock time the frame spent waiting for the connection's write
	// path (pipeline contention) plus the serialization itself.
	led *telemetry.Ledger

	readerDone chan struct{}
}

// Dial connects to a block-service server at addr.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return New(nc), nil
}

// New wraps an established connection. The client owns nc and closes it.
func New(nc net.Conn) *Client {
	c := &Client{
		nc:         nc,
		bw:         bufio.NewWriterSize(nc, 64<<10),
		pending:    make(map[uint64]chan server.Response),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Close tears the connection down. In-flight calls fail with the connection
// error. Safe to call more than once.
func (c *Client) Close() error {
	c.fail(ErrClosed)
	err := c.nc.Close()
	<-c.readerDone
	return err
}

// Err returns the terminal connection error, or nil while the connection is
// healthy.
func (c *Client) Err() error {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.err
}

// SetLedger attaches (or, with nil, detaches) a hop ledger. For every frame
// sent with FlagTrace and a nonzero trace ID, Start records a HopClient
// entry timing the client-side pipeline wait on the wall clock. Call before
// issuing traced requests.
func (c *Client) SetLedger(l *telemetry.Ledger) {
	c.pmu.Lock()
	c.led = l
	c.pmu.Unlock()
}

// Hello pings the server and returns the capability tokens it advertises in
// the PING response payload (e.g. server.TraceCap when the peer accepts the
// trace extension). A plain v1 peer returns an empty list.
func (c *Client) Hello() ([]string, error) {
	r, err := c.Do(server.Frame{Op: server.OpPing})
	if err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return strings.Fields(string(r.Payload)), nil
}

// SupportsTrace reports whether the peer advertised the trace extension.
func (c *Client) SupportsTrace() (bool, error) { return c.supports(server.TraceCap) }

// SupportsTenant reports whether the peer advertised tenant namespaces.
func (c *Client) SupportsTenant() (bool, error) { return c.supports(server.TenantCap) }

// SupportsFault reports whether the peer accepts fault-injection commands.
func (c *Client) SupportsFault() (bool, error) { return c.supports(server.FaultCap) }

func (c *Client) supports(token string) (bool, error) {
	caps, err := c.Hello()
	if err != nil {
		return false, err
	}
	for _, tok := range caps {
		if tok == token {
			return true, nil
		}
	}
	return false, nil
}

// SetTenant stamps every subsequent data frame (READ/WRITE/TRIM) with the
// tenant extension for the 1-based tenant id; 0 restores untenanted frames.
// The peer must have advertised server.TenantCap (see SupportsTenant).
func (c *Client) SetTenant(id uint16) {
	c.pmu.Lock()
	c.tenant = id
	c.pmu.Unlock()
}

// Fault sends one fault-injection command and decodes the report. The peer
// must be serving with fault injection enabled (see SupportsFault); a peer
// with faults disabled answers StatusBadRequest, surfaced as the error.
func (c *Client) Fault(req server.FaultRequest) (server.FaultReport, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return server.FaultReport{}, err
	}
	r, err := c.Do(server.Frame{Op: server.OpFault, Payload: payload})
	if err != nil {
		return server.FaultReport{}, err
	}
	if err := r.Err(); err != nil {
		return server.FaultReport{}, err
	}
	var rep server.FaultReport
	if err := json.Unmarshal(r.Payload, &rep); err != nil {
		return server.FaultReport{}, fmt.Errorf("client: fault report: %w", err)
	}
	return rep, nil
}

// Call is one in-flight request.
type Call struct {
	resp chan server.Response
	c    *Client
}

// Wait blocks until the response arrives or the connection dies.
func (call *Call) Wait() (server.Response, error) {
	r, ok := <-call.resp
	if !ok {
		return server.Response{}, call.c.Err()
	}
	return r, nil
}

// Start sends one request without waiting for its response. The frame's ID
// is assigned by the client; Seq/Arrival/Flags pass through untouched, so a
// sequenced replay stamps them before calling Start.
func (c *Client) Start(f server.Frame) (*Call, error) {
	ch := make(chan server.Response, 1)
	c.pmu.Lock()
	if c.err != nil {
		err := c.err
		c.pmu.Unlock()
		return nil, err
	}
	c.nextID++
	f.ID = c.nextID
	c.pending[f.ID] = ch
	led := c.led
	if c.tenant != 0 && !f.Tenanted() {
		switch f.Op {
		case server.OpRead, server.OpWrite, server.OpTrim:
			f.Flags |= server.FlagTenant
			f.Tenant = c.tenant
		}
	}
	c.pmu.Unlock()

	traced := led != nil && f.Traced() && f.Trace != 0
	var t0 time.Time
	if traced {
		t0 = time.Now()
	}
	c.wmu.Lock()
	var err error
	c.buf, err = server.AppendFrame(c.buf[:0], f)
	if err == nil {
		if _, werr := c.bw.Write(c.buf); werr != nil {
			err = werr
		} else if ferr := c.bw.Flush(); ferr != nil {
			err = ferr
		}
	}
	c.wmu.Unlock()
	if traced && err == nil {
		led.Record(telemetry.HopRecord{
			Trace: f.Trace, Hop: telemetry.HopClient, Parent: telemetry.HopNone,
			Leg: f.Leg, Seq: f.Seq, LPN: f.LPN,
			SimTS: -1, WallNS: time.Since(t0).Nanoseconds(),
		})
	}
	if err != nil {
		c.pmu.Lock()
		delete(c.pending, f.ID)
		c.pmu.Unlock()
		// An encoding error is the caller's frame, not the connection; only
		// socket errors are terminal.
		if !errors.Is(err, server.ErrFrameSize) && !errors.Is(err, server.ErrBadFrame) {
			err = fmt.Errorf("%w: %w", ErrConnLost, err)
			c.fail(err)
		}
		return nil, err
	}
	return &Call{resp: ch, c: c}, nil
}

// Do sends one request and waits for its response.
func (c *Client) Do(f server.Frame) (server.Response, error) {
	call, err := c.Start(f)
	if err != nil {
		return server.Response{}, err
	}
	return call.Wait()
}

// Read fetches one logical page. A non-OK status surfaces as the error; the
// response carries the page data and simulated latency.
func (c *Client) Read(lpn int64) (server.Response, error) {
	r, err := c.Do(server.Frame{Op: server.OpRead, LPN: lpn})
	if err != nil {
		return r, err
	}
	return r, r.Err()
}

// Write stores data at one logical page with a placement hint.
func (c *Client) Write(lpn int64, data []byte, hint ftl.Hint) (server.Response, error) {
	r, err := c.Do(server.Frame{Op: server.OpWrite, LPN: lpn, Payload: data, Hint: hint})
	if err != nil {
		return r, err
	}
	return r, r.Err()
}

// Trim discards one logical page.
func (c *Client) Trim(lpn int64) (server.Response, error) {
	r, err := c.Do(server.Frame{Op: server.OpTrim, LPN: lpn})
	if err != nil {
		return r, err
	}
	return r, r.Err()
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	r, err := c.Do(server.Frame{Op: server.OpPing})
	if err != nil {
		return err
	}
	return r.Err()
}

// Flush is the pipeline barrier: it resolves once every request sent before
// it on this connection has been answered.
func (c *Client) Flush() error {
	r, err := c.Do(server.Frame{Op: server.OpFlush})
	if err != nil {
		return err
	}
	return r.Err()
}

// Stat fetches and decodes the server's statistics snapshot.
func (c *Client) Stat() (server.StatSnapshot, error) {
	r, err := c.Do(server.Frame{Op: server.OpStat})
	if err != nil {
		return server.StatSnapshot{}, err
	}
	if err := r.Err(); err != nil {
		return server.StatSnapshot{}, err
	}
	var snap server.StatSnapshot
	if err := json.Unmarshal(r.Payload, &snap); err != nil {
		return server.StatSnapshot{}, fmt.Errorf("client: stat payload: %w", err)
	}
	return snap, nil
}

// readLoop demultiplexes responses until the connection dies, then fails
// every pending call.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	br := bufio.NewReaderSize(c.nc, 64<<10)
	for {
		resp, _, err := server.ReadResponse(br)
		if err != nil {
			c.fail(fmt.Errorf("%w: %w", ErrConnLost, err))
			return
		}
		c.pmu.Lock()
		ch, ok := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.pmu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// fail records the terminal error once and wakes every pending call.
func (c *Client) fail(err error) {
	c.pmu.Lock()
	if c.err == nil {
		c.err = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	c.pmu.Unlock()
}
