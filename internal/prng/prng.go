// Package prng provides deterministic, hash-based pseudo-random draws.
//
// The process-variation model needs a stable value for every physical entity
// (chip, plane, block, layer, string, word-line): asking twice for the same
// entity must return the same draw, and the draw must not depend on the order
// in which entities are visited. A sequential generator cannot give that, so
// prng derives every value by hashing the entity coordinates with SplitMix64.
package prng

import "math"

// SplitMix64 advances the state x by the SplitMix64 step and returns the
// mixed output. It is the core primitive for all derived draws.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash folds an arbitrary list of integer coordinates into a single 64-bit
// value. Different argument lists yield (with overwhelming probability)
// different values; the same list always yields the same value.
func Hash(seed uint64, coords ...int) uint64 {
	h := SplitMix64(seed ^ 0x5851f42d4c957f2d)
	for _, c := range coords {
		h = SplitMix64(h ^ uint64(uint(c))*0x2545f4914f6cdd1d)
	}
	return h
}

// Source is a deterministic stream of draws keyed by a fixed identity.
// The zero value is a valid stream keyed by zero.
type Source struct {
	state uint64
}

// New returns a Source whose stream is fully determined by seed and coords.
func New(seed uint64, coords ...int) *Source {
	return &Source{state: Hash(seed, coords...)}
}

// Uint64 returns the next 64-bit draw.
func (s *Source) Uint64() uint64 {
	s.state = SplitMix64(s.state)
	return s.state
}

// Float64 returns the next draw in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns the next draw in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Normal returns the next standard-normal draw (Box–Muller).
func (s *Source) Normal() float64 {
	// Avoid u1 == 0 so the log is finite.
	u1 := 1 - s.Float64()
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a deterministic permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// UnitFromHash maps a hash value to [0, 1).
func UnitFromHash(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// NormalFromHash derives a standard-normal draw from a single hash value by
// splitting it into two streams. The result is stable for a given h.
func NormalFromHash(h uint64) float64 {
	u1 := 1 - UnitFromHash(SplitMix64(h^0xa0761d6478bd642f))
	u2 := UnitFromHash(SplitMix64(h ^ 0xe7037ed1a0b428db))
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
