// Package profile holds the similarity data the paper's schemes gather while
// a block is programmed: the per-word-line program latency table, the block
// program-latency sum, rank vectors at three granularities (logical
// word-line, physical word-line, string), and the 1-bit-per-word-line eigen
// sequence of STR-MED/QSTR-MED, plus the per-lane sorted latency lists used
// for on-demand assembly.
//
// The latencies a profile holds come from the measuring testbed, which reads
// them through the array's shared latency kernel (pv.Kernel); a profile is
// the *gathered* view — rank vectors and eigen bits are derived here, never
// re-sampled from the model.
package profile

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// BlockProfile is the gathered characterization of one block.
type BlockProfile struct {
	Lane  int // lane (chip × plane) the block lives on
	Block int // block index within its lane

	Layers  int
	Strings int

	LWL    []float64 // program latency per logical word-line, µs
	PgmSum float64   // block program latency (sum over word-lines)
	Erase  float64   // measured block erase latency, µs
	PE     int       // P/E cycle count at measurement time
}

// NewBlockProfile builds a profile from measured word-line latencies. It
// panics if the latency slice disagrees with layers × strings; profiles are
// always constructed by code that controls both.
func NewBlockProfile(lane, block, layers, strs int, lwl []float64, erase float64, pe int) *BlockProfile {
	if len(lwl) != layers*strs {
		panic(fmt.Sprintf("profile: %d latencies for %d×%d word-lines", len(lwl), layers, strs))
	}
	sum := 0.0
	for _, v := range lwl {
		sum += v
	}
	return &BlockProfile{
		Lane: lane, Block: block,
		Layers: layers, Strings: strs,
		LWL: lwl, PgmSum: sum, Erase: erase, PE: pe,
	}
}

func (p *BlockProfile) lwlIndex(layer, str int) int { return layer*p.Strings + str }

// rankWithTies assigns competition ranks (ties share the lowest rank) to the
// values at the given indices, ordered ascending by value. The quantized
// latency grid of real chips (Fig. 9) makes ties common, and rank-equality
// distances only carry information when ties exist.
func rankWithTies(values []float64, idx []int) []int {
	order := make([]int, len(idx))
	copy(order, idx)
	sort.SliceStable(order, func(a, b int) bool { return values[order[a]] < values[order[b]] })
	ranks := make([]int, len(idx))
	pos := make(map[int]int, len(idx))
	for i, v := range idx {
		pos[v] = i
	}
	rank := 0
	for i, v := range order {
		if i > 0 && values[v] != values[order[i-1]] {
			rank = i
		}
		ranks[pos[v]] = rank
	}
	return ranks
}

// LWLRanks ranks all logical word-lines of the block by program latency
// (rank 0 = fastest; ties share a rank). Result is indexed by word-line.
func (p *BlockProfile) LWLRanks() []int {
	idx := make([]int, len(p.LWL))
	for i := range idx {
		idx[i] = i
	}
	return rankWithTies(p.LWL, idx)
}

// PWLRanks ranks, within each string, the physical word-line layers by
// program latency (rank 0..Layers-1 per string). Indexed by word-line.
func (p *BlockProfile) PWLRanks() []int {
	out := make([]int, len(p.LWL))
	idx := make([]int, p.Layers)
	for s := 0; s < p.Strings; s++ {
		for l := 0; l < p.Layers; l++ {
			idx[l] = p.lwlIndex(l, s)
		}
		ranks := rankWithTies(p.LWL, idx)
		for l := 0; l < p.Layers; l++ {
			out[idx[l]] = ranks[l]
		}
	}
	return out
}

// STRRanks ranks, within each physical word-line layer, the strings by
// program latency (rank 0..Strings-1 per layer). Indexed by word-line.
func (p *BlockProfile) STRRanks() []int {
	out := make([]int, len(p.LWL))
	idx := make([]int, p.Strings)
	for l := 0; l < p.Layers; l++ {
		for s := 0; s < p.Strings; s++ {
			idx[s] = p.lwlIndex(l, s)
		}
		ranks := rankWithTies(p.LWL, idx)
		for s := 0; s < p.Strings; s++ {
			out[idx[s]] = ranks[s]
		}
	}
	return out
}

// RankDistance is the paper's Equation 1 distance between two rank vectors:
// the number of word-line positions whose ranks differ.
func RankDistance(a, b []int) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("profile: rank vectors of length %d and %d", len(a), len(b)))
	}
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// Eigen is the STR-MED eigen sequence: one bit per logical word-line, zero
// for the fastest half of the strings on its layer, one otherwise. Distances
// between blocks reduce to XOR + popcount, cheap enough for a small circuit.
type Eigen struct {
	bits []uint64
	n    int
}

// EigenFromProfile derives the eigen sequence of a block: on every physical
// word-line layer the fastest ⌊Strings/2⌋ strings get bit 0, the rest bit 1.
// Ties are broken by string order, as the paper's gatherer does ("sequentially
// assigns bits zero to the first two word-lines").
func EigenFromProfile(p *BlockProfile) Eigen {
	e := Eigen{bits: make([]uint64, (len(p.LWL)+63)/64), n: len(p.LWL)}
	fast := p.Strings / 2
	if fast == 0 {
		fast = 1
	}
	type sl struct {
		str int
		lat float64
	}
	row := make([]sl, p.Strings)
	for l := 0; l < p.Layers; l++ {
		for s := 0; s < p.Strings; s++ {
			row[s] = sl{s, p.LWL[p.lwlIndex(l, s)]}
		}
		// Insertion sort on (lat, str). The key is a total order (string
		// indices are distinct), so this yields exactly the permutation the
		// previous reflective sort did, without the per-layer closure cost
		// on a hot path that sorts a handful of strings per layer.
		for i := 1; i < len(row); i++ {
			for j := i; j > 0; j-- {
				a, b := row[j-1], row[j]
				if a.lat < b.lat || (a.lat == b.lat && a.str < b.str) {
					break
				}
				row[j-1], row[j] = b, a
			}
		}
		for i := fast; i < p.Strings; i++ {
			e.setBit(p.lwlIndex(l, row[i].str))
		}
	}
	return e
}

func (e *Eigen) setBit(i int) { e.bits[i/64] |= 1 << (i % 64) }

// NewEigenBuilder returns an all-zero eigen sequence of n bits for
// incremental construction by a runtime gatherer.
func NewEigenBuilder(n int) Eigen {
	if n < 0 {
		panic(fmt.Sprintf("profile: negative eigen length %d", n))
	}
	return Eigen{bits: make([]uint64, (n+63)/64), n: n}
}

// SetBit sets bit i of the sequence to 1.
func (e *Eigen) SetBit(i int) {
	if i < 0 || i >= e.n {
		panic(fmt.Sprintf("profile: eigen bit %d of %d", i, e.n))
	}
	e.setBit(i)
}

// Reset re-zeroes the sequence in place to n bits, growing the backing
// words only when needed — the reuse path for pooled runtime gatherers.
func (e *Eigen) Reset(n int) {
	if n < 0 {
		panic(fmt.Sprintf("profile: negative eigen length %d", n))
	}
	words := (n + 63) / 64
	if cap(e.bits) < words {
		e.bits = make([]uint64, words)
	} else {
		e.bits = e.bits[:words]
		for i := range e.bits {
			e.bits[i] = 0
		}
	}
	e.n = n
}

// CopyFrom overwrites the sequence with o's bits, reusing the receiver's
// backing storage when it fits. It lets long-lived metadata publish a pooled
// gatherer's result without taking ownership of the gatherer's buffer.
func (e *Eigen) CopyFrom(o Eigen) {
	words := (o.n + 63) / 64
	if cap(e.bits) < words {
		e.bits = make([]uint64, words)
	}
	e.bits = e.bits[:words]
	copy(e.bits, o.bits)
	e.n = o.n
}

// Len returns the number of bits in the sequence.
func (e Eigen) Len() int { return e.n }

// Bit reports bit i of the sequence.
func (e Eigen) Bit(i int) bool {
	if i < 0 || i >= e.n {
		panic(fmt.Sprintf("profile: eigen bit %d of %d", i, e.n))
	}
	return e.bits[i/64]&(1<<(i%64)) != 0
}

// Distance returns the Hamming distance between two eigen sequences
// (the popcount of their XOR).
func (e Eigen) Distance(o Eigen) int {
	if e.n != o.n {
		panic(fmt.Sprintf("profile: eigen lengths %d and %d", e.n, o.n))
	}
	d := 0
	for i := range e.bits {
		d += bits.OnesCount64(e.bits[i] ^ o.bits[i])
	}
	return d
}

// String renders the sequence in the paper's "1001 0011 ..." nibble format.
func (e Eigen) String() string {
	var b strings.Builder
	for i := 0; i < e.n; i++ {
		if i > 0 && i%4 == 0 {
			b.WriteByte(' ')
		}
		if e.Bit(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// SizeBytes returns the storage cost of the sequence, for the paper's
// Equation 2 space analysis (one bit per logical word-line).
func (e Eigen) SizeBytes() int { return (e.n + 7) / 8 }

// Entry is one block in a sorted latency list.
type Entry struct {
	Block int     // block index within the lane
	Key   float64 // sort key (block program latency sum)
}

// SortedList keeps the blocks of one lane ordered by program latency, fast
// to slow. It is the "sorted program latency list" of the QSTR-MED updater.
type SortedList struct {
	entries []Entry
}

// Len returns the number of blocks in the list.
func (s *SortedList) Len() int { return len(s.entries) }

// Insert adds a block, keeping the list sorted ascending by key (ties by
// block index, so the order is deterministic).
func (s *SortedList) Insert(block int, key float64) {
	i := sort.Search(len(s.entries), func(i int) bool {
		e := s.entries[i]
		return e.Key > key || (e.Key == key && e.Block >= block)
	})
	s.entries = append(s.entries, Entry{})
	copy(s.entries[i+1:], s.entries[i:])
	s.entries[i] = Entry{Block: block, Key: key}
}

// Remove deletes the entry for the given block. It reports whether the block
// was present.
func (s *SortedList) Remove(block int) bool {
	for i, e := range s.entries {
		if e.Block == block {
			s.entries = append(s.entries[:i], s.entries[i+1:]...)
			return true
		}
	}
	return false
}

// At returns the i-th fastest entry.
func (s *SortedList) At(i int) Entry { return s.entries[i] }

// Entries returns the list's backing storage, fastest first — a read-only
// view for selectors that need the whole lane without paying Head(Len)'s
// copy. Callers must not mutate it or retain it across list updates.
func (s *SortedList) Entries() []Entry { return s.entries }

// Head returns up to k entries from the fast end.
func (s *SortedList) Head(k int) []Entry {
	if k > len(s.entries) {
		k = len(s.entries)
	}
	out := make([]Entry, k)
	copy(out, s.entries[:k])
	return out
}

// Tail returns up to k entries from the slow end, slowest first.
func (s *SortedList) Tail(k int) []Entry {
	if k > len(s.entries) {
		k = len(s.entries)
	}
	out := make([]Entry, k)
	for i := 0; i < k; i++ {
		out[i] = s.entries[len(s.entries)-1-i]
	}
	return out
}

// Sorted reports whether the internal order is a valid ascending order.
// It exists for invariant checks in tests.
func (s *SortedList) Sorted() bool {
	return sort.SliceIsSorted(s.entries, func(a, b int) bool {
		if s.entries[a].Key != s.entries[b].Key {
			return s.entries[a].Key < s.entries[b].Key
		}
		return s.entries[a].Block < s.entries[b].Block
	})
}

// ExtraProgram computes the extra program latency of a candidate superblock
// directly from measured profiles: for every word-line, the gap between the
// slowest and fastest member, summed over all word-lines (§III-A).
func ExtraProgram(members []*BlockProfile) float64 {
	if len(members) == 0 {
		return 0
	}
	n := len(members[0].LWL)
	total := 0.0
	for wl := 0; wl < n; wl++ {
		max := math.Inf(-1)
		min := math.Inf(1)
		for _, m := range members {
			v := m.LWL[wl]
			if v > max {
				max = v
			}
			if v < min {
				min = v
			}
		}
		total += max - min
	}
	return total
}

// ExtraErase computes the extra erase latency of a candidate superblock from
// measured profiles: the gap between the slowest and fastest member erase.
func ExtraErase(members []*BlockProfile) float64 {
	if len(members) == 0 {
		return 0
	}
	max := math.Inf(-1)
	min := math.Inf(1)
	for _, m := range members {
		if m.Erase > max {
			max = m.Erase
		}
		if m.Erase < min {
			min = m.Erase
		}
	}
	return max - min
}
