package scenario

import (
	"fmt"
	"strings"
)

// Table renders the verdict as a fixed-format text table. Every value in it
// is simulated-clock or structural, so two runs of the same spec — with any
// worker count — emit byte-identical tables; the table is the campaign's
// reproducibility receipt and the CI smoke greps its last line.
func (r *Result) Table() string {
	var b strings.Builder
	s := r.Spec
	fmt.Fprintf(&b, "campaign %s seed=%d backends=%d replicas=%d ops=%d program=%d\n",
		s.Name, s.Seed, s.Backends, s.Replicas, s.Ops, r.ProgramOps)
	fmt.Fprintf(&b, "%-36s %6s %12s %12s %12s\n", "window", "ops", "p50_us", "p99.9_us", "max_us")
	for _, w := range r.Windows {
		fmt.Fprintf(&b, "%-36s %6d %12.3f %12.3f %12.3f\n", w.Label, w.Ops, w.P50, w.P999, w.Max)
	}
	for _, e := range r.Events {
		fmt.Fprintf(&b, "event %s: %s\n", e.Label, e.Detail)
	}
	fmt.Fprintf(&b, "volume: down_skips=%d read_failovers=%d\n", r.DownSkips, r.Retries)
	if t := r.Tenants; t != nil {
		iso := "DEGRADED"
		if t.Isolated() {
			iso = "OK"
		}
		fmt.Fprintf(&b, "tenants quota=%d quiet_ops=%d noisy_ops=%d checked=%d mismatches=%d\n",
			t.Quota, t.QuietOps, t.NoisyOps, t.Checked, t.Mismatches)
		fmt.Fprintf(&b, "tenants quiet_solo_p999=%.3f quiet_shared_p999=%.3f noisy_shared_p999=%.3f ratio=%.3f isolation=%s\n",
			t.QuietSoloP999, t.QuietSharedP999, t.NoisySharedP999, t.Ratio, iso)
	}
	verdict := "FAIL"
	if r.IntegrityOK() {
		verdict = "OK"
	}
	fmt.Fprintf(&b, "checked=%d mismatches=%d integrity=%s\n", r.Checked, r.Mismatches, verdict)
	return b.String()
}
