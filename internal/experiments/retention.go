package experiments

import (
	"errors"
	"fmt"

	"superfast/internal/flash"
	"superfast/internal/pv"
	"superfast/internal/ssd"
	"superfast/internal/stats"
)

func init() {
	register("retention", runRetention)
}

// retentionDevice builds a device whose error floor reaches the hard-decode
// limit within the six-bake HTDR sweep, the way end-of-life silicon would,
// and fills a cold-data sample.
func retentionDevice(cfg Config) (*ssd.Device, int64, error) {
	g, p := deviceGeometry(cfg)
	p.RBERBase = 72.0 / (8 * float64(g.PageSize+g.SpareSize)) / 4
	arr, err := flash.NewArray(g, pv.New(p), flash.DefaultECC())
	if err != nil {
		return nil, 0, err
	}
	dcfg := ssd.DefaultConfig()
	dcfg.FTL.Overprovision = 0.25
	dev, err := ssd.New(arr, dcfg)
	if err != nil {
		return nil, 0, err
	}
	dev.SetAttribution(cfg.Attr)
	sample := dev.FTL().Capacity() / 4
	for lpn := int64(0); lpn < sample; lpn++ {
		if _, err := dev.Submit(ssd.Request{Kind: ssd.OpWrite, LPN: lpn, Data: []byte("cold")}); err != nil {
			return nil, 0, err
		}
	}
	if _, err := dev.FTL().Flush(); err != nil {
		return nil, 0, err
	}
	return dev, sample, nil
}

// scanSample reads every sample page, tolerating uncorrectable pages, and
// returns the ECC retry rate and the uncorrectable count.
func scanSample(dev *ssd.Device, sample int64) (retriesPerRead float64, uncorrectable int, err error) {
	before := dev.FTL().Array().Counters()
	for lpn := int64(0); lpn < sample; lpn++ {
		if _, rerr := dev.FTL().Read(lpn); rerr != nil {
			if errors.Is(rerr, flash.ErrUncorrectable) {
				uncorrectable++
				continue
			}
			return 0, 0, rerr
		}
	}
	after := dev.FTL().Array().Counters()
	reads := after.Reads - before.Reads
	if reads == 0 {
		return 0, uncorrectable, nil
	}
	return float64(after.ReadRetries-before.ReadRetries) / float64(reads), uncorrectable, nil
}

// runRetention reproduces the platform's HTDR axis (§VI-A: measurements
// under six high-temperature data-retention steps): cold data is aged bake
// by bake while ECC retry rates and uncorrectable page counts are tracked —
// once on a device left alone, once on a device whose patrol scrubber
// refreshes drifting pages before each scan. It validates the reliability
// substrate (RBER growth → retry reads → refresh) underneath the latency
// experiments.
func runRetention(cfg Config) (*Result, error) {
	plain, sample, err := retentionDevice(cfg)
	if err != nil {
		return nil, err
	}
	scrubbed, _, err := retentionDevice(cfg)
	if err != nil {
		return nil, err
	}
	threshold := flash.DefaultECC().CorrectableBits / 2

	t := &stats.Table{
		Title: "HTDR sweep — ECC stress vs retention bakes (six bakes, §VI-A)",
		Headers: []string{"Bake", "Retries/read", "Uncorr.",
			"Scrubbed retries/read", "Refreshes", "Scrubbed uncorr."},
	}
	for bake := 0; bake <= 6; bake++ {
		if bake > 0 {
			plain.FTL().Array().AddRetention(1)
			scrubbed.FTL().Array().AddRetention(1)
		}
		rr, uc, err := scanSample(plain, sample)
		if err != nil {
			return nil, fmt.Errorf("bake %d plain: %w", bake, err)
		}
		if _, _, err := scrubbed.FTL().Patrol(0, int(sample), threshold); err != nil {
			return nil, fmt.Errorf("bake %d patrol: %w", bake, err)
		}
		srr, suc, err := scanSample(scrubbed, sample)
		if err != nil {
			return nil, fmt.Errorf("bake %d scrubbed: %w", bake, err)
		}
		t.AddRow(fmt.Sprintf("%d", bake),
			fmt.Sprintf("%.3f", rr), fmt.Sprintf("%d", uc),
			fmt.Sprintf("%.3f", srr), fmt.Sprintf("%d", scrubbed.FTL().Stats().Refreshes),
			fmt.Sprintf("%d", suc))
	}
	text := "retry rates climb with retention until pages exceed even the retry decode;\nthe patrol scrubber refreshes drifting pages and keeps the device readable\n"
	return &Result{ID: "retention", Tables: []*stats.Table{t}, Text: text}, nil
}
