package profile

import (
	"testing"
)

// FuzzEigenDistance feeds arbitrary latency bytes into profile construction
// and checks the eigen metric properties hold for any input.
func FuzzEigenDistance(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{8, 7, 6, 5, 4, 3, 2, 1})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		const layers, strs = 3, 4
		n := layers * strs
		mk := func(raw []byte) *BlockProfile {
			lwl := make([]float64, n)
			for i := range lwl {
				v := 0
				if len(raw) > 0 {
					v = int(raw[i%len(raw)])
				}
				lwl[i] = 1600 + float64(v)
			}
			return NewBlockProfile(0, 0, layers, strs, lwl, 0, 0)
		}
		ea := EigenFromProfile(mk(a))
		eb := EigenFromProfile(mk(b))
		dab := ea.Distance(eb)
		if dab != eb.Distance(ea) {
			t.Fatal("distance not symmetric")
		}
		if ea.Distance(ea) != 0 {
			t.Fatal("self distance nonzero")
		}
		if dab < 0 || dab > n {
			t.Fatalf("distance %d out of bounds", dab)
		}
		// Rank distances share the bounds.
		ra, rb := mk(a).STRRanks(), mk(b).STRRanks()
		if d := RankDistance(ra, rb); d < 0 || d > n {
			t.Fatalf("rank distance %d out of bounds", d)
		}
	})
}
