package experiments

import (
	"errors"
	"fmt"

	"superfast/internal/flash"
	"superfast/internal/ftl"
	"superfast/internal/prng"
	"superfast/internal/pv"
	"superfast/internal/ssd"
	"superfast/internal/stats"
)

func init() {
	register("raid-overhead", runRAIDOverhead)
}

// runRAIDOverhead quantifies the cost and benefit of superblock RAID (the
// related-work FTL direction the paper cites, [13]/[36], built on the same
// superblock structure QSTR-MED organizes): capacity, write amplification
// and host latency with parity on versus off, and the survival rate of
// injected uncorrectable faults.
func runRAIDOverhead(cfg Config) (*Result, error) {
	g, p := deviceGeometry(cfg)
	t := &stats.Table{
		Title:   "Superblock RAID — overhead and fault survival",
		Headers: []string{"Mode", "Capacity pages", "WAF", "Mean write µs", "Faults survived", "Repairs"},
	}
	for _, raid := range []bool{false, true} {
		arr, err := flash.NewArray(g, pv.New(p), flash.DefaultECC())
		if err != nil {
			return nil, err
		}
		dcfg := ssd.DefaultConfig()
		dcfg.FTL.Overprovision = 0.25
		dcfg.FTL.RAID = raid
		dev, err := ssd.New(arr, dcfg)
		if err != nil {
			return nil, err
		}
		dev.SetAttribution(cfg.Attr)
		capacity := dev.FTL().Capacity()
		// Fill and churn so parity costs show in WAF and latency.
		if err := dev.FillSequential(nil); err != nil {
			return nil, err
		}
		var lats []float64
		src := prng.New(cfg.Seed, 0x4a1d)
		for i := int64(0); i < capacity; i++ {
			lpn := int64(src.Intn(int(capacity)))
			c, err := dev.Submit(ssd.Request{Kind: ssd.OpWrite, LPN: lpn, Data: []byte("d")})
			if err != nil {
				return nil, err
			}
			lats = append(lats, c.Service)
		}
		if _, err := dev.FTL().Flush(); err != nil {
			return nil, err
		}
		// Inject faults under 40 mapped pages and count survivors.
		survived, injected := 0, 0
		for n := int64(0); n < capacity && injected < 40; n += capacity / 40 {
			typ := dev.FTL().PageTypeOf(n)
			if typ < 0 {
				continue
			}
			if err := injectAt(dev, n); err != nil {
				return nil, err
			}
			injected++
			if _, err := dev.FTL().Read(n); err == nil {
				survived++
			} else if !errors.Is(err, flash.ErrUncorrectable) && !errors.Is(err, ftl.ErrDataLoss) {
				return nil, err
			}
		}
		sm := stats.Summarize(lats)
		fst := dev.FTL().Stats()
		mode := "plain"
		if raid {
			mode = "RAID"
		}
		t.AddRow(mode, fmt.Sprintf("%d", capacity), fmt.Sprintf("%.2f", fst.WAF()),
			stats.FmtUS(sm.Mean),
			fmt.Sprintf("%d/%d", survived, injected),
			fmt.Sprintf("%d", fst.RAIDRepairs))
	}
	text := "parity costs one lane of capacity and extra GC traffic; in exchange every injected\nuncorrectable page reconstructs from its super-word-line peers\n"
	return &Result{ID: "raid-overhead", Tables: []*stats.Table{t}, Text: text}, nil
}

// injectAt corrupts the physical page currently backing a logical page.
func injectAt(dev *ssd.Device, lpn int64) error {
	f := dev.FTL()
	addr, lwl, typ, ok := f.Locate(lpn)
	if !ok {
		return fmt.Errorf("experiments: lpn %d unmapped", lpn)
	}
	return f.Array().InjectCorruption(flash.PageAddr{BlockAddr: addr, LWL: lwl, Type: typ})
}
