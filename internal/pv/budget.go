package pv

import "superfast/internal/prng"

// Component is one entry of a variance budget: how much of the per-word-line
// program-latency variance a model component contributes.
type Component struct {
	Name     string
	Variance float64 // µs²
	Share    float64 // fraction of the total
}

// VarianceBudget estimates, by sampling the model over nChips chips and
// nBlocks blocks per chip, the per-word-line variance contributed by each
// program-latency component. It is the calibration view used to reason about
// which organization strategies can harvest which share (DESIGN.md §5):
// chip-level terms are irreducible for a fixed chip set, block terms are
// matched by latency sorting, string/layer patterns by similarity checks,
// and the static word-line noise by nothing.
func (m *Model) VarianceBudget(nChips, nBlocks int) []Component {
	if nChips <= 0 {
		nChips = 4
	}
	if nBlocks <= 0 {
		nBlocks = 200
	}
	var chipLayer, str, block, blockLayer, wl sampler
	for c := 0; c < nChips; c++ {
		for l := 0; l < m.p.Layers; l++ {
			chipLayer.add(m.chipLayerOffset(c, l))
		}
		for b := 0; b < nBlocks; b++ {
			block.add(m.BlockPgmOffset(c, 0, b))
			for s := 0; s < m.p.Strings; s++ {
				str.add(m.stringOffset(Coord{Chip: c, Block: b, String: s}))
			}
			for g := 0; g < (m.p.Layers+m.p.LayerGroupSize-1)/m.p.LayerGroupSize; g++ {
				blockLayer.add(m.blockLayerOffset(Coord{Chip: c, Block: b, Layer: g * m.p.LayerGroupSize}))
			}
			// Sample a subset of word-lines for the static noise.
			for i := 0; i < 8; i++ {
				layer := int(prng.Hash(m.p.Seed, 0x77, c, b, i) % uint64(m.p.Layers))
				s := int(prng.Hash(m.p.Seed, 0x78, c, b, i) % uint64(m.p.Strings))
				wl.add(m.wlStatic(Coord{Chip: c, Block: b, Layer: layer, String: s}))
			}
		}
	}
	quant := m.p.PgmStep * m.p.PgmStep / 12
	jitter := m.p.PgmJitterSigma * m.p.PgmJitterSigma
	comps := []Component{
		{Name: "chip+layer (irreducible)", Variance: chipLayer.variance()},
		{Name: "string pattern (similarity-matchable)", Variance: str.variance()},
		{Name: "block offset (sort-matchable)", Variance: block.variance()},
		{Name: "layer pattern (latency-matchable)", Variance: blockLayer.variance()},
		{Name: "static word-line noise (floor)", Variance: wl.variance()},
		{Name: "ISPP quantization (floor)", Variance: quant},
		{Name: "temporal jitter (floor)", Variance: jitter},
	}
	total := 0.0
	for _, c := range comps {
		total += c.Variance
	}
	if total > 0 {
		for i := range comps {
			comps[i].Share = comps[i].Variance / total
		}
	}
	return comps
}

// sampler accumulates mean/variance online.
type sampler struct {
	n          int
	sum, sumSq float64
}

func (s *sampler) add(v float64) {
	s.n++
	s.sum += v
	s.sumSq += v * v
}

func (s *sampler) variance() float64 {
	if s.n == 0 {
		return 0
	}
	mean := s.sum / float64(s.n)
	v := s.sumSq/float64(s.n) - mean*mean
	if v < 0 {
		return 0
	}
	return v
}
