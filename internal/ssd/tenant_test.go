package ssd

import (
	"fmt"
	"testing"
)

// tenantReqs interleaves writes from two tenants with pre-stamped arrivals:
// tenant 1 issues a request every gap µs, tenant 2 every gap/4 µs (noisy).
func tenantReqs(pageSize, n int, gap float64) []Request {
	reqs := make([]Request, 0, 2*n)
	for i := 0; i < n; i++ {
		reqs = append(reqs,
			Request{Kind: OpWrite, LPN: int64(i % 32), Data: make([]byte, pageSize),
				Arrival: float64(i+1) * gap, Tenant: 1},
			Request{Kind: OpWrite, LPN: 64 + int64(i%32), Data: make([]byte, pageSize),
				Arrival: float64(i+1) * gap / 4, Tenant: 2},
		)
	}
	return reqs
}

func TestTenantQuotaShapesNoisyTenant(t *testing.T) {
	// Run the same request sequence with and without a quota on the noisy
	// tenant: the quiet tenant's total latency must improve (or hold) under
	// shaping while the noisy tenant's grows.
	sum := func(shaped bool) (quiet, noisy float64) {
		d := concurrentDevice(t)
		if shaped {
			d.SetTenantQuota(2, 1)
		}
		reqs := tenantReqs(d.PageSize(), 150, 40)
		first := d.ReserveBatch(len(reqs))
		for i, r := range reqs {
			c, err := d.SubmitTicket(first+uint64(i), r)
			if err != nil {
				t.Fatal(err)
			}
			switch r.Tenant {
			case 1:
				quiet += c.Latency
			case 2:
				noisy += c.Latency
			}
		}
		return
	}
	quietFree, noisyFree := sum(false)
	quietShaped, noisyShaped := sum(true)
	if noisyShaped <= noisyFree {
		t.Fatalf("quota should slow the noisy tenant: shaped %v <= free %v", noisyShaped, noisyFree)
	}
	if quietShaped > quietFree {
		t.Fatalf("quota on tenant 2 must not hurt tenant 1: shaped %v > free %v", quietShaped, quietFree)
	}
}

func TestTenantShapingDeterministicAcrossDepths(t *testing.T) {
	var want []Completion
	for _, depth := range []int{1, 4, 8} {
		d := concurrentDevice(t)
		d.SetTenantQuota(1, 2)
		d.SetTenantQuota(2, 1)
		reqs := tenantReqs(d.PageSize(), 100, 35)
		got := replayTickets(t, d, reqs, depth)
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i].Start != want[i].Start || got[i].Finish != want[i].Finish ||
				got[i].Wait != want[i].Wait || got[i].Latency != want[i].Latency {
				t.Fatalf("depth %d: completion %d = %+v, want %+v", depth, i, got[i], want[i])
			}
		}
	}
}

func TestTenantShapingWorkConserving(t *testing.T) {
	// A quota'd flood offered faster than its shaped service rate is
	// deferred ever further into the future. Requests scheduled after those
	// deferrals must backfill the idle windows the quota carved out of the
	// chip schedules — not queue behind reservations sitting far ahead of
	// the present — so a quiet tenant's latency stays near its service time
	// while the noisy tenant's grows with its own backlog.
	d := concurrentDevice(t)
	d.SetTenantQuota(2, 1)
	pageSize := d.PageSize()
	// Seed the quiet tenant's pages so its reads have targets.
	for lpn := int64(0); lpn < 8; lpn++ {
		if _, err := d.Submit(Request{Kind: OpWrite, LPN: lpn, Data: make([]byte, pageSize), Tenant: 1}); err != nil {
			t.Fatal(err)
		}
	}
	base := d.Now()
	var quietMax, noisyMax float64
	k := 0
	for i := 0; i < 25; i++ {
		for j := 0; j < 8; j++ {
			k++
			c, err := d.Submit(Request{Kind: OpWrite, LPN: 64 + int64(k%32), Data: make([]byte, pageSize),
				Arrival: base + float64(k), Tenant: 2})
			if err != nil {
				t.Fatal(err)
			}
			if c.Latency > noisyMax {
				noisyMax = c.Latency
			}
		}
		c, err := d.Submit(Request{Kind: OpRead, LPN: int64(i % 8), Arrival: base + float64(k), Tenant: 1})
		if err != nil {
			t.Fatal(err)
		}
		if c.Latency > quietMax {
			quietMax = c.Latency
		}
	}
	if noisyMax <= 0 || quietMax <= 0 {
		t.Fatalf("degenerate latencies: quiet %v noisy %v", quietMax, noisyMax)
	}
	if noisyMax < 10*quietMax {
		t.Fatalf("quiet tenant dragged behind the deferred flood: quiet max %v, noisy max %v", quietMax, noisyMax)
	}
}

func TestTenantQuotaRemoval(t *testing.T) {
	d := concurrentDevice(t)
	d.SetTenantQuota(3, 1)
	d.SetTenantQuota(3, 0) // removed: requests run unshaped
	reqs := tenantReqs(d.PageSize(), 20, 50)
	for i := range reqs {
		reqs[i].Tenant = 3
	}
	d2 := concurrentDevice(t)
	for i, r := range reqs {
		a, err := d.Submit(r)
		if err != nil {
			t.Fatal(err)
		}
		b, err := d2.Submit(r)
		if err != nil {
			t.Fatal(err)
		}
		if a.Latency != b.Latency || a.Start != b.Start {
			t.Fatalf("req %d: removed quota still shapes: %+v vs %+v", i, a, b)
		}
	}
}

func TestPowerCycleRestoresDataAndAdvancesClocks(t *testing.T) {
	d := concurrentDevice(t)
	pay := func(lpn int64) []byte {
		return []byte(fmt.Sprintf("%-16d", lpn))
	}
	n := d.FTL().Capacity() / 2
	for lpn := int64(0); lpn < n; lpn++ {
		if _, err := d.Submit(Request{Kind: OpWrite, LPN: lpn, Data: pay(lpn)}); err != nil {
			t.Fatal(err)
		}
	}
	before := d.Now()
	const outage = 5000.0
	rep, err := d.PowerCycle(outage)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CutAt < before {
		t.Fatalf("cut at %v, before %v", rep.CutAt, before)
	}
	if rep.RecoveredAt != rep.CutAt+outage {
		t.Fatalf("recovered at %v, want cut+%v", rep.RecoveredAt, outage)
	}
	if rep.CheckpointBytes <= 0 {
		t.Fatal("checkpoint image empty")
	}
	// Every chip clock sits at the recovery instant: the next request's
	// latency includes the outage.
	c, err := d.Submit(Request{Kind: OpRead, LPN: 1, Arrival: rep.CutAt})
	if err != nil {
		t.Fatal(err)
	}
	if c.Finish < rep.RecoveredAt {
		t.Fatalf("post-cut read finished at %v, before recovery %v", c.Finish, rep.RecoveredAt)
	}
	// All data survives the cut.
	for lpn := int64(0); lpn < n; lpn++ {
		c, err := d.Submit(Request{Kind: OpRead, LPN: lpn})
		if err != nil {
			t.Fatalf("lpn %d after power cycle: %v", lpn, err)
		}
		if string(c.Data) != string(pay(lpn)) {
			t.Fatalf("lpn %d corrupted across power cycle", lpn)
		}
	}
}

func TestPowerCycleRejectsNegativeRecovery(t *testing.T) {
	d := concurrentDevice(t)
	if _, err := d.PowerCycle(-1); err == nil {
		t.Fatal("negative recovery time should be rejected")
	}
}
