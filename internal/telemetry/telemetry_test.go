package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{Ts: 1200, Dur: 40, Track: TrackChip(1), Ph: PhaseSpan, Name: "read", Cat: "flash", Seq: 2, Slot: 0, LPN: 9},
		{Ts: 1000, Dur: 300, Track: TrackHost, Ph: PhaseSpan, Name: "write", Cat: "host", Seq: 1, Slot: 0, LPN: 4},
		{Ts: 1000, Track: TrackFTL, Ph: PhaseInstant, Name: "ftl-stage", Cat: "ftl", Seq: 1, Slot: 0, LPN: 4},
		{Ts: 1050, Dur: 220, Track: TrackChip(0), Ph: PhaseSpan, Name: "program", Cat: "flash", Seq: 1, Slot: 1, LPN: -1, GC: true},
	}
}

func TestTraceWriteChromeValidAndDeterministic(t *testing.T) {
	render := func(order []int) string {
		tr := NewTrace()
		evs := sampleEvents()
		for _, i := range order {
			tr.Emit(evs[i])
		}
		var b bytes.Buffer
		if err := tr.WriteChrome(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a := render([]int{0, 1, 2, 3})
	b := render([]int{3, 2, 1, 0})
	if a != b {
		t.Fatalf("export depends on emission order:\n%s\nvs\n%s", a, b)
	}

	var parsed []map[string]any
	if err := json.Unmarshal([]byte(a), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, a)
	}
	// 1 process_name + 4 thread_name + 4 events.
	if len(parsed) != 9 {
		t.Fatalf("parsed %d records, want 9:\n%s", len(parsed), a)
	}
	if !strings.Contains(a, `"gc":1`) {
		t.Fatalf("GC attribution missing:\n%s", a)
	}
	if strings.Contains(a, `"lpn":-1`) {
		t.Fatalf("negative LPN should be omitted:\n%s", a)
	}
	if !strings.Contains(a, `{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"host"}}`) {
		t.Fatalf("host thread name metadata missing:\n%s", a)
	}
}

func TestTraceEventsSorted(t *testing.T) {
	tr := NewTrace()
	for _, ev := range sampleEvents() {
		tr.Emit(ev)
	}
	evs := tr.Events()
	if tr.Len() != 4 || len(evs) != 4 {
		t.Fatalf("len = %d / %d", tr.Len(), len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Ts < evs[i-1].Ts {
			t.Fatalf("events not time-sorted: %v after %v", evs[i].Ts, evs[i-1].Ts)
		}
	}
	if evs[0].Name != "write" && evs[0].Name != "ftl-stage" {
		t.Fatalf("first event %+v", evs[0])
	}
}

func TestTrackNames(t *testing.T) {
	if TrackName(TrackHost) != "host" || TrackName(TrackFTL) != "ftl" {
		t.Fatal("fixed track names wrong")
	}
	if TrackName(TrackChip(3)) != "chip 3" {
		t.Fatalf("chip track name %q", TrackName(TrackChip(3)))
	}
	if OpName('r') != "read" || OpName('p') != "program" || OpName('e') != "erase" {
		t.Fatal("op names wrong")
	}
}

func TestMetricsRegistry(t *testing.T) {
	m := New()
	c := m.Counter("ssd.requests")
	if m.Counter("ssd.requests") != c {
		t.Fatal("counter lookup not idempotent")
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}

	g := m.Gauge("ssd.inflight")
	g.Add(3)
	g.Add(-2)
	if g.Value() != 1 || g.Max() != 3 {
		t.Fatalf("gauge = %v max %v", g.Value(), g.Max())
	}
	g.Set(0.5)
	if g.Value() != 0.5 || g.Max() != 3 {
		t.Fatalf("gauge after set = %v max %v", g.Value(), g.Max())
	}

	d := m.Digest("ssd.latency")
	d.Observe(10)
	d.Observe(20)

	snap := m.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i].Name <= snap[i-1].Name {
			t.Fatalf("snapshot not name-sorted: %q after %q", snap[i].Name, snap[i-1].Name)
		}
	}
	byName := map[string]Value{}
	for _, v := range snap {
		byName[v.Name] = v
	}
	if v := byName["ssd.requests"]; v.Value != 5 || !v.Count {
		t.Fatalf("requests reading %+v", v)
	}
	if v := byName["ssd.inflight.max"]; v.Value != 3 {
		t.Fatalf("inflight.max reading %+v", v)
	}
	if v := byName["ssd.latency.mean"]; v.Value != 15 {
		t.Fatalf("latency.mean reading %+v", v)
	}
	if v := byName["ssd.latency.n"]; v.Value != 2 || !v.Count {
		t.Fatalf("latency.n reading %+v", v)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Counter("c").Inc()
				m.Gauge("g").Add(1)
				m.Gauge("g").Add(-1)
				m.Digest("d").Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d", got)
	}
	if got := m.Gauge("g").Value(); got != 0 {
		t.Fatalf("gauge = %v", got)
	}
	if got := m.Digest("d").Snapshot().N; got != 8000 {
		t.Fatalf("digest n = %d", got)
	}
}
