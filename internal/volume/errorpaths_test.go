package volume

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"superfast/internal/ftl"
	"superfast/internal/server"
	"superfast/internal/server/client"
)

// TestProxyReplicatedWriteBackendDeath: a backend whose transport dies
// mid-scatter — after the write fanned out, before its leg answered — fails
// the replicated write with a typed INTERNAL response through the proxy (no
// hang, no vanished request), and the frontend connection survives to serve
// the next op.
func TestProxyReplicatedWriteBackendDeath(t *testing.T) {
	// Pace holds every backend response for ~90ms of wall time (buffered
	// writes complete in ~0.009 simulated µs), so the severing below
	// deterministically lands between scatter and gather.
	v, _ := startCluster(t, 3, server.Config{Pace: 1e7}, Config{Stripe: 2, Replicas: 2})
	_, addr := startProxy(t, v)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const lpn = int64(1)
	v.mu.Lock()
	locs, lerr := v.place.Locate(lpn, nil)
	v.mu.Unlock()
	if lerr != nil {
		t.Fatal(lerr)
	}
	if len(locs) != 2 {
		t.Fatalf("%d replicas placed, want 2", len(locs))
	}

	call, err := c.Start(server.Frame{Op: server.OpWrite, LPN: lpn, Payload: []byte("mid-scatter")})
	if err != nil {
		t.Fatal(err)
	}
	// Let the proxy scatter the write to both backends (their paced
	// responses are still at least ~75ms away), then kill the secondary
	// leg's transport.
	time.Sleep(25 * time.Millisecond)
	v.backend(locs[1].Backend).c.Close()

	r, err := call.Wait()
	if err != nil {
		t.Fatalf("write through proxy must answer, not kill the conn: %v", err)
	}
	if r.Status != server.StatusInternal {
		t.Fatalf("write with a dying replica answered %v, want INTERNAL", r.Status)
	}
	if len(r.Payload) == 0 {
		t.Fatal("error response carries no diagnostic payload")
	}
	// The frontend connection is still healthy, and the read fails over to
	// the surviving primary — which committed its leg before the gather
	// failed (replication is not transactional).
	if err := c.Ping(); err != nil {
		t.Fatalf("proxy conn dead after failed scatter: %v", err)
	}
	rr, err := c.Read(lpn)
	if err != nil || rr.Status != server.StatusOK {
		t.Fatalf("failover read through proxy: %v %v", err, rr.Status)
	}
	if !strings.HasPrefix(string(rr.Payload), "mid-scatter") {
		t.Fatalf("surviving replica holds %q", rr.Payload[:11])
	}
}

// TestProxyScatterWorstStatus: when every leg answers but one answers badly,
// the merged response reports the worst status while still carrying the
// slowest successful leg's latency — a replicated op is only as good as its
// weakest replica. The bad leg here is a backend in sequenced mode, which
// rejects the volume's unsequenced frames as BAD_REQUEST.
func TestProxyScatterWorstStatus(t *testing.T) {
	bks := []*testBackend{
		startBackend(t, server.Config{}),
		startBackend(t, server.Config{}),
		startBackend(t, server.Config{Sequenced: true}),
	}
	v, err := Dial([]string{bks[0].addr, bks[1].addr, bks[2].addr}, Config{Stripe: 2, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(v.Close)
	_, addr := startProxy(t, v)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Find one page replicated onto the mismatched backend and one kept off
	// it entirely.
	onBad, offBad := int64(-1), int64(-1)
	for lpn := int64(0); lpn < v.Space() && (onBad < 0 || offBad < 0); lpn++ {
		v.mu.Lock()
		locs, lerr := v.place.Locate(lpn, nil)
		v.mu.Unlock()
		if lerr != nil {
			t.Fatal(lerr)
		}
		hits := false
		for _, l := range locs {
			if l.Backend == 2 {
				hits = true
			}
		}
		if hits && onBad < 0 {
			onBad = lpn
		}
		if !hits && offBad < 0 {
			offBad = lpn
		}
	}
	if onBad < 0 || offBad < 0 {
		t.Fatalf("placement never produced the needed pages (onBad=%d offBad=%d)", onBad, offBad)
	}

	r, err := c.Do(server.Frame{Op: server.OpWrite, LPN: onBad, Payload: []byte("half-good")})
	if err != nil {
		t.Fatalf("scatter with one bad leg must answer: %v", err)
	}
	if r.Status != server.StatusBadRequest {
		t.Fatalf("merged status %v, want BAD_REQUEST from the worst leg", r.Status)
	}
	if r.Latency <= 0 {
		t.Fatal("merged response lost the successful leg's latency")
	}
	if len(r.Payload) == 0 {
		t.Fatal("merged response lost the bad leg's diagnostic payload")
	}
	// A page placed entirely on healthy backends still writes clean.
	if r, err := c.Write(offBad, []byte("all-good"), ftl.HintNone); err != nil || r.Status != server.StatusOK {
		t.Fatalf("healthy-placement write: %v %v", err, r.Status)
	}
}

// TestProxyStatWithDeadBackend: STAT through the proxy keeps answering when
// a backend is down — the merged snapshot simply carries the dead shard's
// error and sums only the live ones.
func TestProxyStatWithDeadBackend(t *testing.T) {
	v, bks := startCluster(t, 3, server.Config{}, Config{Stripe: 2})
	_, addr := startProxy(t, v)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if r, err := c.Write(0, []byte("pre-death"), ftl.HintNone); err != nil || r.Status != server.StatusOK {
		t.Fatalf("write: %v %v", err, r.Status)
	}
	before, err := c.Stat()
	if err != nil {
		t.Fatalf("stat with all backends up: %v", err)
	}
	if before.Device.Writes != 1 {
		t.Fatalf("merged writes %d, want 1", before.Device.Writes)
	}

	bks[2].stop()

	// The unmodified client still decodes the merged snapshot.
	snap, err := c.Stat()
	if err != nil {
		t.Fatalf("stat with a dead backend: %v", err)
	}
	if snap.Capacity != v.Space() || snap.PageSize != v.PageSize() {
		t.Fatalf("merged snapshot %d/%d, want %d/%d", snap.Capacity, snap.PageSize, v.Space(), v.PageSize())
	}

	// The cluster view marks exactly the dead shard.
	cs := v.ClusterStat()
	dead := 0
	for _, b := range cs.Backends {
		if b.Backend == 2 {
			if b.Error == "" {
				t.Fatal("dead backend reports no probe error")
			}
			dead++
		} else if b.Error != "" {
			t.Fatalf("live backend %d reports error %q", b.Backend, b.Error)
		}
	}
	if dead != 1 {
		t.Fatalf("%d dead backends in snapshot, want 1", dead)
	}
	// The cluster snapshot is still valid JSON end to end (what /cluster and
	// the STAT payload serve).
	if _, err := json.Marshal(cs); err != nil {
		t.Fatalf("cluster snapshot not serializable: %v", err)
	}
}
