package sim

import (
	"math"
	"testing"
	"testing/quick"

	"superfast/internal/prng"
)

func uniformJob(cfg Config, nWL int, lat float64) Job {
	j := Job{MemberLat: make([][]float64, cfg.Lanes())}
	for l := range j.MemberLat {
		j.MemberLat[l] = make([]float64, nWL)
		for w := range j.MemberLat[l] {
			j.MemberLat[l][w] = lat
		}
	}
	return j
}

func noisyJob(cfg Config, nWL int, base, spread float64, seed uint64) Job {
	src := prng.New(seed, 0x51)
	j := Job{MemberLat: make([][]float64, cfg.Lanes())}
	for l := range j.MemberLat {
		j.MemberLat[l] = make([]float64, nWL)
		for w := range j.MemberLat[l] {
			j.MemberLat[l][w] = base + spread*src.Float64()
		}
	}
	return j
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.ChipsPerChannel = -1 },
		func(c *Config) { c.PlanesPerChip = 0 },
		func(c *Config) { c.BusMBps = 0 },
		func(c *Config) { c.PageBytes = 0 },
		func(c *Config) { c.QueueDepth = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestRunRejectsBadJobs(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Run(cfg, nil); err == nil {
		t.Fatal("no jobs should fail")
	}
	j := uniformJob(cfg, 4, 1000)
	j.MemberLat = j.MemberLat[:2]
	if _, err := Run(cfg, []Job{j}); err == nil {
		t.Fatal("wrong lane count should fail")
	}
	j2 := uniformJob(cfg, 4, 1000)
	j2.MemberLat[3] = j2.MemberLat[3][:1]
	if _, err := Run(cfg, []Job{j2}); err == nil {
		t.Fatal("ragged word-lines should fail")
	}
	if _, err := Run(cfg, []Job{uniformJob(cfg, 0, 1000)}); err == nil {
		t.Fatal("zero word-lines should fail")
	}
}

func TestUniformLatencyPerfectUtilizationShape(t *testing.T) {
	cfg := DefaultConfig()
	rep, err := Run(cfg, []Job{uniformJob(cfg, 8, 1600)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WordLines != 8 {
		t.Fatalf("WordLines = %d", rep.WordLines)
	}
	// With identical latencies there is no word-line skew; the makespan is
	// at least 8 programs plus the first transfer.
	if rep.Makespan < 8*1600 {
		t.Fatalf("makespan %v too small", rep.Makespan)
	}
	if rep.SuperWLLatency < 1600 {
		t.Fatalf("super-WL latency %v < program time", rep.SuperWLLatency)
	}
	if rep.ThroughputMBps <= 0 {
		t.Fatal("throughput must be positive")
	}
}

func TestSkewReducesThroughput(t *testing.T) {
	cfg := DefaultConfig()
	const nWL = 16
	flat, err := Run(cfg, []Job{uniformJob(cfg, nWL, 1700)})
	if err != nil {
		t.Fatal(err)
	}
	// Same mean latency but spread across members: multi-plane maxima grow,
	// so throughput drops.
	skewed, err := Run(cfg, []Job{noisyJob(cfg, nWL, 1500, 400, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if skewed.ThroughputMBps >= flat.ThroughputMBps {
		t.Fatalf("skewed throughput (%v) should be below flat (%v)",
			skewed.ThroughputMBps, flat.ThroughputMBps)
	}
}

func TestQueueDepthHidesSyncIdle(t *testing.T) {
	cfg := DefaultConfig()
	jobs := func() []Job {
		out := make([]Job, 6)
		for i := range out {
			out[i] = noisyJob(cfg, 8, 1500, 300, uint64(i+1))
		}
		return out
	}
	cfg.QueueDepth = 1
	qd1, err := Run(cfg, jobs())
	if err != nil {
		t.Fatal(err)
	}
	cfg.QueueDepth = 3
	qd3, err := Run(cfg, jobs())
	if err != nil {
		t.Fatal(err)
	}
	if qd3.Makespan >= qd1.Makespan {
		t.Fatalf("deeper queue should shorten makespan: qd1=%v qd3=%v", qd1.Makespan, qd3.Makespan)
	}
	if qd3.ChipUtilization <= qd1.ChipUtilization {
		t.Fatalf("deeper queue should raise utilization: qd1=%v qd3=%v",
			qd1.ChipUtilization, qd3.ChipUtilization)
	}
}

func TestUtilizationBounded(t *testing.T) {
	f := func(seed uint64, qd uint8) bool {
		cfg := DefaultConfig()
		cfg.QueueDepth = 1 + int(qd)%4
		jobs := []Job{
			noisyJob(cfg, 6, 1400, 500, seed),
			noisyJob(cfg, 6, 1400, 500, seed+1),
		}
		rep, err := Run(cfg, jobs)
		if err != nil {
			return false
		}
		return rep.ChipUtilization > 0 && rep.ChipUtilization <= 1.0+1e-9 &&
			rep.Makespan > 0 && !math.IsNaN(rep.ThroughputMBps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	jobs := []Job{noisyJob(cfg, 10, 1500, 300, 7), noisyJob(cfg, 10, 1500, 300, 8)}
	a, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func BenchmarkRun(b *testing.B) {
	cfg := DefaultConfig()
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = noisyJob(cfg, 48, 1500, 300, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, jobs); err != nil {
			b.Fatal(err)
		}
	}
}
