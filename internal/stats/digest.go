package stats

import (
	"fmt"
	"math"
)

// LatencyDigest is a mergeable latency sketch: samples land in log-linear
// buckets (subBuckets linear divisions per power of two, the HdrHistogram
// layout), so two digests built on different shards merge exactly by adding
// bucket counts — the property the cluster view needs to compute P50–P99.9
// across backends without retaining per-request samples. The relative
// quantile error is bounded by the bucket width: at most 2/subBuckets
// (≈ 3.1%), verified against retained-sample ground truth by property tests.
//
// The zero value is ready to use. Not safe for concurrent use; shard digests
// are single-writer and merged at snapshot time.
type LatencyDigest struct {
	counts [digestBuckets]uint64
	n      uint64
	sum    float64
	min    float64 // valid when n > 0
	max    float64
}

const (
	// subBuckets is the number of linear divisions per octave. 64 divisions
	// bound the per-value relative error at 1/64 ≈ 1.6%.
	subBuckets = 64
	// minExp is the smallest tracked exponent: values below 2^minExp µs
	// (≈ 1 ns) collapse into bucket 0. maxExp caps the range at 2^maxExp µs
	// (≈ 89 simulated years), far past any simulated latency.
	minExp = -10
	maxExp = 51
	// digestBuckets covers [2^minExp, 2^maxExp) octaves of subBuckets each,
	// plus bucket 0 for underflow (including zero and negative values).
	digestBuckets = 1 + (maxExp-minExp)*subBuckets
)

// bucketIndex maps a value to its bucket.
func bucketIndex(v float64) int {
	if !(v > 0) || math.IsInf(v, 1) { // NaN, zero, negative → underflow bucket
		if math.IsInf(v, 1) {
			return digestBuckets - 1
		}
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac × 2^exp, frac ∈ [0.5, 1)
	exp--                      // normalize to frac ∈ [1, 2)
	if exp < minExp {
		return 0
	}
	if exp >= maxExp {
		return digestBuckets - 1
	}
	minor := int((frac*2 - 1) * subBuckets) // position inside the octave
	if minor >= subBuckets {
		minor = subBuckets - 1
	}
	return 1 + (exp-minExp)*subBuckets + minor
}

// bucketBounds returns the [lo, hi) value range of bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i <= 0 {
		return 0, math.Ldexp(1, minExp)
	}
	i--
	exp := minExp + i/subBuckets
	minor := i % subBuckets
	width := math.Ldexp(1, exp) / subBuckets
	lo = math.Ldexp(1, exp) + float64(minor)*width
	return lo, lo + width
}

// Observe feeds one sample.
func (d *LatencyDigest) Observe(v float64) {
	d.counts[bucketIndex(v)]++
	if d.n == 0 || v < d.min {
		d.min = v
	}
	if d.n == 0 || v > d.max {
		d.max = v
	}
	d.n++
	d.sum += v
}

// Merge folds other into d. Merging is exact: the merged digest is
// indistinguishable from one that observed both sample streams.
func (d *LatencyDigest) Merge(other *LatencyDigest) {
	if other == nil || other.n == 0 {
		return
	}
	if d.n == 0 || other.min < d.min {
		d.min = other.min
	}
	if d.n == 0 || other.max > d.max {
		d.max = other.max
	}
	for i, c := range other.counts {
		d.counts[i] += c
	}
	d.n += other.n
	d.sum += other.sum
}

// Count returns the number of observed samples.
func (d *LatencyDigest) Count() uint64 { return d.n }

// Mean returns the exact sample mean (the sum is tracked outside the
// buckets), or 0 for an empty digest.
func (d *LatencyDigest) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// Min returns the smallest observed sample (exact), or 0 when empty.
func (d *LatencyDigest) Min() float64 {
	if d.n == 0 {
		return 0
	}
	return d.min
}

// Max returns the largest observed sample (exact), or 0 when empty.
func (d *LatencyDigest) Max() float64 {
	if d.n == 0 {
		return 0
	}
	return d.max
}

// Quantile estimates the q-quantile (0..1): it walks the cumulative bucket
// counts to the bucket holding the target rank and interpolates linearly
// inside it, clamped to the exact observed min/max.
func (d *LatencyDigest) Quantile(q float64) float64 {
	if d.n == 0 {
		return 0
	}
	if q <= 0 {
		return d.Min()
	}
	if q >= 1 {
		return d.Max()
	}
	// Target rank in [1, n], matching the "nearest rank with interpolation"
	// convention closely enough for bucket-width error bounds.
	target := q * float64(d.n)
	var cum float64
	for i, c := range d.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo, hi := bucketBounds(i)
			frac := (target - cum) / float64(c)
			v := lo + (hi-lo)*frac
			if v < d.min {
				v = d.min
			}
			if v > d.max {
				v = d.max
			}
			return v
		}
		cum = next
	}
	return d.Max()
}

// DigestSummary is a point-in-time reading of a LatencyDigest in the shape
// the cluster view reports.
type DigestSummary struct {
	N    uint64  `json:"n"`
	Mean float64 `json:"mean_us"`
	Min  float64 `json:"min_us"`
	Max  float64 `json:"max_us"`
	P50  float64 `json:"p50_us"`
	P95  float64 `json:"p95_us"`
	P99  float64 `json:"p99_us"`
	P999 float64 `json:"p999_us"`
}

// Summary snapshots the digest's count, mean, extrema and quantiles.
func (d *LatencyDigest) Summary() DigestSummary {
	return DigestSummary{
		N:    d.n,
		Mean: d.Mean(),
		Min:  d.Min(),
		Max:  d.Max(),
		P50:  d.Quantile(0.50),
		P95:  d.Quantile(0.95),
		P99:  d.Quantile(0.99),
		P999: d.Quantile(0.999),
	}
}

// MergeDigests returns a fresh digest holding the union of the inputs.
func MergeDigests(ds ...*LatencyDigest) *LatencyDigest {
	out := &LatencyDigest{}
	for _, d := range ds {
		out.Merge(d)
	}
	return out
}

// MergeHistograms merges fixed-width histograms built over the identical
// [Lo, Hi) range and bin count — the per-shard layout the volume layer uses —
// by adding bin and overflow counts. Differing layouts are an error: resampled
// merges would silently smear counts across bins.
func MergeHistograms(hs ...*Histogram) (*Histogram, error) {
	var out *Histogram
	for _, h := range hs {
		if h == nil {
			continue
		}
		if out == nil {
			out = &Histogram{Lo: h.Lo, Hi: h.Hi, Counts: make([]int, len(h.Counts))}
		}
		if h.Lo != out.Lo || h.Hi != out.Hi || len(h.Counts) != len(out.Counts) {
			return nil, fmt.Errorf("stats: cannot merge histogram [%v,%v)×%d into [%v,%v)×%d",
				h.Lo, h.Hi, len(h.Counts), out.Lo, out.Hi, len(out.Counts))
		}
		for i, c := range h.Counts {
			out.Counts[i] += c
		}
		out.Under += h.Under
		out.Over += h.Over
	}
	if out == nil {
		return nil, fmt.Errorf("stats: no histograms to merge")
	}
	return out, nil
}
