package main

import (
	"fmt"

	"superfast/internal/assembly"
	"superfast/internal/chamber"
	"superfast/internal/experiments"
	"superfast/internal/flash"
	"superfast/internal/pv"
)

// diagDeciles prints mean extra program latency per superblock-index decile
// for each strategy, to expose depletion-order effects in window searches.
func diagDeciles(cfg experiments.Config, strategies []assembly.Assembler) error {
	p := cfg.PV
	p.Seed = cfg.Seed
	arr, err := flash.NewArray(cfg.Geometry, pv.New(p), flash.DefaultECC())
	if err != nil {
		return err
	}
	tb := chamber.New(arr)
	grp := chamber.GroupLanes(cfg.Geometry, cfg.LanesPerGroup)[0]
	lanes, err := tb.MeasureGroup(grp, chamber.BlockRange(0, cfg.BlocksPerLane), 0, true)
	if err != nil {
		return err
	}
	for _, s := range strategies {
		res, err := s.Assemble(lanes)
		if err != nil {
			return err
		}
		m, err := assembly.Evaluate(lanes, res.Superblocks)
		if err != nil {
			return err
		}
		n := len(m.ExtraPgm)
		fmt.Printf("%-14s", s.Name())
		for d := 0; d < 10; d++ {
			lo, hi := d*n/10, (d+1)*n/10
			sum := 0.0
			for _, v := range m.ExtraPgm[lo:hi] {
				sum += v
			}
			fmt.Printf(" %7.0f", sum/float64(hi-lo))
		}
		fmt.Printf("  | mean %7.0f\n", mean(m.ExtraPgm))
	}
	return nil
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}
