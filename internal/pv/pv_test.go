package pv

import (
	"math"
	"testing"
	"testing/quick"
)

func testModel() *Model { return New(DefaultParams()) }

func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
		ok     bool
	}{
		{"default", func(p *Params) {}, true},
		{"zero layers", func(p *Params) { p.Layers = 0 }, false},
		{"negative strings", func(p *Params) { p.Strings = -1 }, false},
		{"zero group", func(p *Params) { p.LayerGroupSize = 0 }, false},
		{"zero pgm base", func(p *Params) { p.PgmBase = 0 }, false},
		{"negative step", func(p *Params) { p.PgmStep = -1 }, false},
	}
	for _, tc := range cases {
		p := DefaultParams()
		tc.mutate(&p)
		err := p.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid params should panic")
		}
	}()
	p := DefaultParams()
	p.Layers = 0
	New(p)
}

func TestProgramLatencyDeterministic(t *testing.T) {
	m := testModel()
	c := Coord{Chip: 1, Plane: 2, Block: 100, Layer: 50, String: 3}
	a := m.ProgramLatency(c, 0, 7)
	b := m.ProgramLatency(c, 0, 7)
	if a != b {
		t.Fatalf("latency not deterministic: %v vs %v", a, b)
	}
}

func TestProgramLatencyNonceJitter(t *testing.T) {
	m := testModel()
	c := Coord{Chip: 0, Plane: 0, Block: 5, Layer: 10, String: 1}
	diff := false
	base := m.ProgramLatency(c, 0, 0)
	for n := uint64(1); n < 50; n++ {
		if m.ProgramLatency(c, 0, n) != base {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("temporal jitter should change latency for some nonce")
	}
}

func TestProgramLatencyScale(t *testing.T) {
	m := testModel()
	var sum float64
	n := 0
	for blk := 0; blk < 8; blk++ {
		for l := 0; l < 96; l++ {
			for s := 0; s < 4; s++ {
				sum += m.ProgramLatency(Coord{Block: blk, Layer: l, String: s}, 0, 0)
				n++
			}
		}
	}
	mean := sum / float64(n)
	// Paper Fig. 9: word-line program latencies ~1579-1917 µs, block sum
	// ~639 ms → mean ≈ 1665 µs.
	if mean < 1550 || mean > 1850 {
		t.Fatalf("mean WL program latency = %v µs, want ≈1600-1800", mean)
	}
}

func TestProgramLatencyQuantized(t *testing.T) {
	m := testModel()
	step := m.Params().PgmStep
	for i := 0; i < 200; i++ {
		v := m.ProgramLatency(Coord{Block: i, Layer: i % 96, String: i % 4}, 0, uint64(i))
		q := math.Round(v/step) * step
		if math.Abs(v-q) > 1e-6 {
			t.Fatalf("latency %v not on quantization grid %v", v, step)
		}
	}
}

func TestQuantizationCreatesTies(t *testing.T) {
	m := testModel()
	seen := make(map[float64]int)
	for blk := 0; blk < 4; blk++ {
		for l := 0; l < 96; l++ {
			for s := 0; s < 4; s++ {
				seen[m.ProgramLatency(Coord{Block: blk, Layer: l, String: s}, 0, 0)]++
			}
		}
	}
	ties := 0
	for _, n := range seen {
		if n > 1 {
			ties += n
		}
	}
	// Fig. 9 shows many repeated values (e.g. 1898.6 µs); the rank-based
	// methods depend on ties existing.
	if ties < 100 {
		t.Fatalf("only %d tied latencies out of 1536; quantization too fine", ties)
	}
}

func TestLayerProfileVShape(t *testing.T) {
	m := testModel()
	edge := m.layerProfile(0)
	mid := m.layerProfile(48)
	last := m.layerProfile(95)
	if edge <= mid || last <= mid {
		t.Fatalf("edge layers should be slower than middle: edge=%v mid=%v last=%v", edge, mid, last)
	}
}

func TestChipsDiffer(t *testing.T) {
	m := testModel()
	c0 := Coord{Chip: 0, Block: 10, Layer: 40, String: 2}
	c1 := c0
	c1.Chip = 1
	same := 0
	for l := 0; l < 96; l++ {
		c0.Layer, c1.Layer = l, l
		if m.ProgramLatency(c0, 0, 0) == m.ProgramLatency(c1, 0, 0) {
			same++
		}
	}
	if same > 90 {
		t.Fatalf("chips 0 and 1 identical on %d/96 layers; cross-chip variation missing", same)
	}
}

func TestBlockPgmOffsetSharedComponent(t *testing.T) {
	m := testModel()
	// The shared-index component correlates offsets of the same block index
	// across different chips.
	const n = 2000
	var sumXY, sumX, sumY, sumX2, sumY2 float64
	for b := 0; b < n; b++ {
		x := m.BlockPgmOffset(0, 0, b)
		y := m.BlockPgmOffset(1, 0, b)
		sumXY += x * y
		sumX += x
		sumY += y
		sumX2 += x * x
		sumY2 += y * y
	}
	cov := sumXY/n - (sumX/n)*(sumY/n)
	vx := sumX2/n - (sumX/n)*(sumX/n)
	vy := sumY2/n - (sumY/n)*(sumY/n)
	corr := cov / math.Sqrt(vx*vy)
	want := math.Pow(m.Params().BlockSharedSig, 2) /
		(math.Pow(m.Params().BlockSharedSig, 2) + math.Pow(m.Params().BlockLocalSig, 2))
	if math.Abs(corr-want) > 0.1 {
		t.Fatalf("cross-chip block offset correlation = %v, want ≈%v", corr, want)
	}
}

func TestEraseLatencyScale(t *testing.T) {
	m := testModel()
	var sum float64
	const n = 1000
	for b := 0; b < n; b++ {
		sum += m.EraseLatency(0, 0, b, 0, 0)
	}
	mean := sum / n
	if mean < 3000 || mean > 4000 {
		t.Fatalf("mean erase latency = %v µs, want ≈3400", mean)
	}
}

func TestEraseCorrelatesWithProgramOffset(t *testing.T) {
	m := testModel()
	const n = 3000
	var sumXY, sumX, sumY, sumX2, sumY2 float64
	for b := 0; b < n; b++ {
		x := m.BlockPgmOffset(0, 0, b)
		y := m.EraseLatency(0, 0, b, 0, 0)
		sumXY += x * y
		sumX += x
		sumY += y
		sumX2 += x * x
		sumY2 += y * y
	}
	cov := sumXY/n - (sumX/n)*(sumY/n)
	vx := sumX2/n - (sumX/n)*(sumX/n)
	vy := sumY2/n - (sumY/n)*(sumY/n)
	corr := cov / math.Sqrt(vx*vy)
	if corr < 0.5 {
		t.Fatalf("erase/program correlation = %v, want > 0.5 (drives Table V erase gains)", corr)
	}
}

func TestEraseSpikesRare(t *testing.T) {
	m := testModel()
	spikes := 0
	const n = 4000
	for b := 0; b < n; b++ {
		if m.ErsSpike(0, 0, b) > 0 {
			spikes++
		}
	}
	frac := float64(spikes) / n
	if frac < 0.005 || frac > 0.1 {
		t.Fatalf("spike fraction = %v, want ~1-6%% (Fig. 5 spike points)", frac)
	}
}

func TestWearDrift(t *testing.T) {
	m := testModel()
	c := Coord{Block: 3, Layer: 40, String: 1}
	p0 := m.ProgramLatency(c, 0, 0)
	p3000 := m.ProgramLatency(c, 3000, 0)
	if p3000 >= p0 {
		t.Errorf("program latency should drop with wear: pe0=%v pe3000=%v", p0, p3000)
	}
	e0 := m.EraseLatency(0, 0, 3, 0, 0)
	e3000 := m.EraseLatency(0, 0, 3, 3000, 0)
	if e3000 <= e0 {
		t.Errorf("erase latency should grow with wear: pe0=%v pe3000=%v", e0, e3000)
	}
}

func TestReadLatencyOrdering(t *testing.T) {
	m := testModel()
	var lsb, csb, msb float64
	const n = 200
	for b := 0; b < n; b++ {
		c := Coord{Block: b, Layer: b % 96, String: b % 4}
		lsb += m.ReadLatency(c, LSB, 0)
		csb += m.ReadLatency(c, CSB, 0)
		msb += m.ReadLatency(c, MSB, 0)
	}
	if !(lsb < csb && csb < msb) {
		t.Fatalf("read latency should order LSB < CSB < MSB: %v %v %v", lsb/n, csb/n, msb/n)
	}
}

func TestReadLatencyInvalidPageType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid page type should panic")
		}
	}()
	testModel().ReadLatency(Coord{}, NumPageTypes, 0)
}

func TestRBERGrowth(t *testing.T) {
	m := testModel()
	c := Coord{Block: 1, Layer: 10, String: 0}
	r0 := m.RBER(c, 0, 0)
	rPE := m.RBER(c, 3000, 0)
	rRet := m.RBER(c, 0, 6)
	if rPE <= r0 {
		t.Errorf("RBER should grow with P/E: %v vs %v", r0, rPE)
	}
	if rRet <= r0 {
		t.Errorf("RBER should grow with retention: %v vs %v", r0, rRet)
	}
	if r0 <= 0 || rPE > 0.5 {
		t.Errorf("RBER out of physical range: %v %v", r0, rPE)
	}
}

func TestRBERCapped(t *testing.T) {
	m := testModel()
	r := m.RBER(Coord{}, 1000000, 1000)
	if r > 0.5 {
		t.Fatalf("RBER must be capped at 0.5, got %v", r)
	}
}

func TestLatenciesAlwaysPositive(t *testing.T) {
	m := testModel()
	f := func(chip, plane, block, layer, str uint8, pe uint16, nonce uint64) bool {
		c := Coord{
			Chip:   int(chip % 24),
			Plane:  int(plane % 4),
			Block:  int(block),
			Layer:  int(layer) % m.Params().Layers,
			String: int(str) % m.Params().Strings,
		}
		p := m.ProgramLatency(c, int(pe), nonce)
		e := m.EraseLatency(c.Chip, c.Plane, c.Block, int(pe), nonce)
		r := m.ReadLatency(c, PageType(int(str)%int(NumPageTypes)), nonce)
		return p > 0 && e > 0 && r > 0 &&
			!math.IsNaN(p) && !math.IsNaN(e) && !math.IsNaN(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPageTypeString(t *testing.T) {
	if LSB.String() != "LSB" || CSB.String() != "CSB" || MSB.String() != "MSB" {
		t.Fatal("PageType names wrong")
	}
	if PageType(9).String() != "PageType(9)" {
		t.Fatalf("unexpected: %s", PageType(9).String())
	}
}

func BenchmarkProgramLatency(b *testing.B) {
	m := testModel()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.ProgramLatency(Coord{Block: i & 1023, Layer: i % 96, String: i & 3}, 1000, uint64(i))
	}
	_ = sink
}

func BenchmarkEraseLatency(b *testing.B) {
	m := testModel()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.EraseLatency(0, i&3, i&1023, 500, uint64(i))
	}
	_ = sink
}
