package scenario

import (
	"strings"
	"testing"
)

// campaignSpec is DefaultSpec without the tenant phase — the fault campaign
// alone, so the determinism matrix stays fast.
func campaignSpec() *Spec {
	s := DefaultSpec()
	s.Tenants = nil
	return s
}

func runCampaign(t *testing.T, s *Spec, workers int) *Result {
	t.Helper()
	r, err := Run(s, workers)
	if err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	return r
}

func TestCampaignVerdictByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign run")
	}
	s := campaignSpec()
	r1 := runCampaign(t, s, 1)
	t1 := r1.Table()
	if !r1.IntegrityOK() {
		t.Fatalf("integrity failed:\n%s\nfailures: %v", t1, r1.Failures)
	}
	for _, workers := range []int{4, 8} {
		r := runCampaign(t, campaignSpec(), workers)
		if tb := r.Table(); tb != t1 {
			t.Fatalf("verdict differs at workers=%d:\n--- workers=1 ---\n%s--- workers=%d ---\n%s", workers, t1, workers, tb)
		}
	}

	// The campaign must have actually exercised its faults, not vacuously
	// passed: the storm marked sealed blocks, the power cut checkpointed,
	// the kill window skipped write legs and failed reads over.
	if r1.DownSkips == 0 {
		t.Fatalf("kill window skipped no write legs:\n%s", t1)
	}
	if r1.Retries == 0 {
		t.Fatalf("kill window failed no reads over:\n%s", t1)
	}
	details := map[string]string{}
	for _, e := range r1.Events {
		details[e.Label] = e.Detail
	}
	if d := details["bad-blocks@120/b0"]; d == "" || d == "marked=0" {
		t.Fatalf("bad-block storm marked nothing (%q):\n%s", d, t1)
	}
	if d := details["power-cut@420/b1"]; !strings.Contains(d, "checkpoint_bytes=") || strings.Contains(d, "checkpoint_bytes=0") {
		t.Fatalf("power cut wrote no checkpoint (%q):\n%s", d, t1)
	}
	if d := details["restart-backend@560/b0"]; !strings.HasPrefix(d, "healed=") || d == "healed=0" {
		t.Fatalf("restart healed nothing (%q):\n%s", d, t1)
	}
	if r1.Checked == 0 {
		t.Fatal("no reads were verified against the shadow map")
	}
	// Every window (pre-fault and one per event) reports ops.
	if len(r1.Windows) != len(s.Events)+1 {
		t.Fatalf("got %d windows, want %d:\n%s", len(r1.Windows), len(s.Events)+1, t1)
	}
	for _, w := range r1.Windows {
		if w.Ops == 0 || w.P999 <= 0 {
			t.Fatalf("empty fault window %q:\n%s", w.Label, t1)
		}
	}
	if !strings.HasSuffix(t1, "integrity=OK\n") {
		t.Fatalf("verdict table does not end with the integrity line:\n%s", t1)
	}
}

func TestCampaignVerdictStableAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign run")
	}
	// Two independent runs at the same worker count — process-level
	// reproducibility, not just schedule independence.
	t1 := runCampaign(t, campaignSpec(), 4).Table()
	t2 := runCampaign(t, campaignSpec(), 4).Table()
	if t1 != t2 {
		t.Fatalf("same spec, different verdicts:\n--- run 1 ---\n%s--- run 2 ---\n%s", t1, t2)
	}
}

func TestCampaignNoisyNeighborIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("tenant phase runs thousands of ops")
	}
	s := &Spec{
		Name: "tenants", Seed: 7,
		Backends: 1, Replicas: 1, Ops: 1, WorkingSet: 8,
		Tenants: &TenantPhase{NoisyQuota: 2},
	}
	r := runCampaign(t, s, 1)
	tr := r.Tenants
	if tr == nil {
		t.Fatal("no tenant verdict")
	}
	if tr.Mismatches != 0 || tr.Checked == 0 {
		t.Fatalf("tenant integrity: checked=%d mismatches=%d", tr.Checked, tr.Mismatches)
	}
	if tr.QuietSoloP999 <= 0 || tr.QuietSharedP999 <= 0 || tr.NoisySharedP999 <= 0 {
		t.Fatalf("degenerate tenant latencies: %+v", tr)
	}
	// The noisy tenant floods 8x the quiet rate and eats its own queueing;
	// the quota keeps the quiet tenant within 2x of its solo baseline.
	if tr.NoisySharedP999 < tr.QuietSharedP999 {
		t.Fatalf("noisy tenant (%.3f) outran the quiet one (%.3f)", tr.NoisySharedP999, tr.QuietSharedP999)
	}
	if !tr.Isolated() {
		t.Fatalf("quiet tenant not isolated: solo=%.3f shared=%.3f ratio=%.3f",
			tr.QuietSoloP999, tr.QuietSharedP999, tr.Ratio)
	}
	// Tenant phase is part of the determinism contract too.
	r2 := runCampaign(t, s, 1)
	if r.Table() != r2.Table() {
		t.Fatalf("tenant verdict not reproducible:\n--- run 1 ---\n%s--- run 2 ---\n%s", r.Table(), r2.Table())
	}
}

func TestRunRejectsOversizedWorkingSet(t *testing.T) {
	s := &Spec{Seed: 1, Backends: 1, Replicas: 1, Ops: 1, WorkingSet: 1 << 30}
	if _, err := Run(s, 1); err == nil {
		t.Fatal("working set larger than the volume should fail")
	}
}
