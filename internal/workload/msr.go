package workload

import (
	"fmt"
	"io"

	"superfast/internal/ssd"
)

// ParseMSRTrace reads an MSR-Cambridge-style block trace:
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// where Type is "Read" or "Write" (case-insensitive), Offset and Size are in
// bytes, and Timestamp is either a Windows FILETIME (100 ns ticks; values
// above ~1e14) or plain seconds. Each record expands into one request per
// page it covers; byte offsets fold into [0, maxLPN) so traces captured from
// larger disks replay onto the simulated device. Arrival times are rebased
// so the first record arrives at 0 µs. Errors carry the 1-based line number
// of the offending record.
func ParseMSRTrace(r io.Reader, pageSize int, maxLPN int64) ([]ssd.Request, error) {
	p, err := newMSRParser(pageSize, maxLPN)
	if err != nil {
		return nil, err
	}
	if err := scanTrace(r, p.line); err != nil {
		return nil, err
	}
	return p.out, nil
}

// ReplayPrepared replays requests against a device, first writing any page
// that a read would touch before its first write (traces begin mid-life, so
// cold reads need backing data). Returns the completions of the trace
// requests only.
func ReplayPrepared(dev *ssd.Device, reqs []ssd.Request) ([]ssd.Completion, error) {
	seen := make(map[int64]bool)
	for _, req := range reqs {
		switch req.Kind {
		case ssd.OpWrite:
			seen[req.LPN] = true
		case ssd.OpRead:
			if !seen[req.LPN] {
				if _, err := dev.Submit(ssd.Request{Kind: ssd.OpWrite, LPN: req.LPN, Data: fill(req.LPN, 16)}); err != nil {
					return nil, fmt.Errorf("workload: prepare lpn %d: %w", req.LPN, err)
				}
				seen[req.LPN] = true
			}
		}
	}
	out := make([]ssd.Completion, 0, len(reqs))
	for i, req := range reqs {
		c, err := dev.Submit(req)
		if err != nil {
			return out, fmt.Errorf("workload: msr op %d: %w", i, err)
		}
		out = append(out, c)
	}
	return out, nil
}
