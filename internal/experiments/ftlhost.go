package experiments

import (
	"fmt"

	"superfast/internal/flash"
	"superfast/internal/ftl"
	"superfast/internal/pv"
	"superfast/internal/ssd"
	"superfast/internal/stats"
	"superfast/internal/workload"
)

func init() {
	register("ftl-host", runFTLHost)
}

// deviceGeometry shrinks the experiment geometry to a device the FTL
// simulation can churn end-to-end in reasonable time, keeping the lane
// structure (one lane per group member) intact.
func deviceGeometry(cfg Config) (flash.Geometry, pv.Params) {
	g := flash.Geometry{
		Chips:          cfg.LanesPerGroup,
		PlanesPerChip:  1,
		BlocksPerPlane: 24,
		Layers:         24,
		Strings:        cfg.Geometry.Strings,
		PageSize:       cfg.Geometry.PageSize,
		SpareSize:      cfg.Geometry.SpareSize,
	}
	if cfg.Geometry.BlocksPerPlane < g.BlocksPerPlane {
		g.BlocksPerPlane = cfg.Geometry.BlocksPerPlane
	}
	p := cfg.PV
	p.Seed = cfg.Seed
	p.Layers = g.Layers
	p.Strings = g.Strings
	return g, p
}

// runFTLHost is the end-to-end validation of §V-D: the same hot/cold write
// workload runs against three devices that differ only in superblock
// organization (random, sequential, QSTR-MED with function-based
// placement), and the host-visible write latency distribution is compared.
func runFTLHost(cfg Config) (*Result, error) {
	g, p := deviceGeometry(cfg)
	t := &stats.Table{
		Title:   "End-to-end host writes under GC (hot/cold 80/20)",
		Headers: []string{"Organizer", "Mean µs", "P95 µs", "P99 µs", "WAF", "Extra PGM/flush"},
	}
	type row struct {
		name  string
		mean  float64
		extra float64
	}
	var rows []row
	for _, org := range []ftl.Organizer{ftl.RandomOrg, ftl.SequentialOrg, ftl.QSTRMed} {
		arr, err := flash.NewArray(g, pv.New(p), flash.DefaultECC())
		if err != nil {
			return nil, err
		}
		dcfg := ssd.DefaultConfig()
		dcfg.FTL.Organizer = org
		dcfg.FTL.Overprovision = 0.25
		dcfg.FTL.Seed = cfg.Seed
		dev, err := ssd.New(arr, dcfg)
		if err != nil {
			return nil, err
		}
		dev.SetAttribution(cfg.Attr)
		cap := dev.FTL().Capacity()
		// Warm: fill the logical space, then churn with a skewed write mix
		// so GC interleaves with host traffic.
		// Reuse is safe against the serial Device: it copies payloads at
		// submit entry (CopyRecycle), so one scratch buffer serves the run.
		if _, err := workload.Run(dev, &workload.Sequential{N: cap, PageLen: 64, Reuse: true}); err != nil {
			return nil, err
		}
		churn, err := workload.Run(dev, &workload.HotCold{
			Space: cap, Count: 2 * cap, HotFrac: 0.8, HotSpace: 0.2, PageLen: 64, Seed: cfg.Seed + 7, Reuse: true,
		})
		if err != nil {
			return nil, err
		}
		lats := make([]float64, len(churn))
		for i, c := range churn {
			lats[i] = c.Service
		}
		sm := stats.Summarize(lats)
		fst := dev.FTL().Stats()
		extraPerFlush := 0.0
		if fst.Flushes > 0 {
			extraPerFlush = fst.ExtraPgm / float64(fst.Flushes)
		}
		t.AddRow(org.String(), stats.FmtUS(sm.Mean), stats.FmtUS(sm.P95), stats.FmtUS(sm.P99),
			fmt.Sprintf("%.2f", fst.WAF()), stats.FmtUS(extraPerFlush))
		rows = append(rows, row{org.String(), sm.Mean, extraPerFlush})
	}
	text := ""
	if len(rows) == 3 {
		text = fmt.Sprintf("QSTR-MED vs random: extra program latency per flush %s lower, mean host write latency %s lower\n",
			stats.FmtPct(stats.Improvement(rows[0].extra, rows[2].extra)),
			stats.FmtPct(stats.Improvement(rows[0].mean, rows[2].mean)))
	}
	return &Result{ID: "ftl-host", Tables: []*stats.Table{t}, Text: text}, nil
}
