package ssd

import (
	"fmt"
	"sort"
	"sync"

	"superfast/internal/flash"
	"superfast/internal/ftl"
	"superfast/internal/telemetry"
)

// ConcurrentDevice is a thread-safe, event-driven front end over the FTL:
// submissions may come from many goroutines, each request's flash work is
// sharded onto per-chip worker queues (the PerChip queue model generalized
// to a real multi-queue scheduler), adjacent-LPN requests submitted in one
// batch coalesce into super-word-line submissions, and statistics merge
// deterministically — stable arrival order, never completion race order.
//
// Ordering discipline: every submission holds a ticket. The FTL stage
// (mapping, GC, op-journal drain) executes in strict ticket order under one
// lock, then hands the journalled chip operations to the per-chip workers;
// chip-time scheduling and completion bookkeeping run outside the lock.
// Given pre-stamped arrival times and a fixed ticket order (see
// ReserveBatch), results are bit-for-bit independent of how many goroutines
// submit — a depth-16 replay produces exactly the depth-1 completions.
//
// The "0 = now" arrival convention resolves against the latest admitted
// arrival (the deterministic choice under concurrency), not against
// completions as the serial Device's clock does.
type ConcurrentDevice struct {
	f   *ftl.FTL
	cfg Config

	mu     sync.Mutex // serializes the FTL stage and admission state
	admit  *sync.Cond // wakes submitters waiting for their ticket
	issued uint64     // tickets handed out
	next   uint64     // next ticket allowed into the FTL stage
	clock  float64    // latest admitted arrival, µs
	trc    telemetry.Tracer // nil = tracing disabled (read under mu)
	led    *telemetry.Ledger // nil = hop ledger disabled (read under mu)
	// curTrace/curTicket hold the trace context of the request the FTL stage
	// is currently executing, so the blocking-GC observer (which fires from
	// inside WriteHinted) can attribute its page counts. Written and read
	// only under mu.
	curTrace  uint64
	curTicket uint64
	rec    *recState  // nil until AttachRecorder (read under mu)
	// recExtra*, set before AttachRecorder, append caller-owned columns
	// (e.g. the network server's counters) after the device column set.
	recExtraCols []string
	recExtraFn   func(vals []float64)
	// mirrorTill mirrors each chip worker's busy-until watermark: the FTL
	// stage replays the worker scheduling math (jobs arrive in ticket order,
	// start at max(arrival, till)) so the recorder can sample queue depth and
	// chip utilization deterministically without racing the workers.
	mirrorTill []float64
	// till is the always-on variant of the same mirror, maintained from
	// device birth: the GC scheduler reads it to find idle windows. Decisions
	// taken against it (instead of the workers' racy state) happen in strict
	// ticket order, so preemptive GC placement — and therefore every result —
	// stays bit-identical across submitter counts.
	till []float64

	chips []*chipWorker

	statsMu sync.Mutex
	records []latencyRecord // only populated when cfg.RetainLatencies
	counts  Stats           // scalar counters; Latencies are merged from records
	horizon float64         // latest completion observed, µs
	lat     *telemetry.Digest
	pend    map[uint64][]float64 // finished tickets not yet fed to the digest
	drain   uint64               // next ticket the digest will consume
	qdepth  *telemetry.Gauge     // in-flight submissions; nil when unwired

	closeOnce sync.Once
}

// latencyRecord keys one completion for the deterministic stats merge.
type latencyRecord struct {
	arrival float64
	ticket  uint64
	slot    int // position within the ticket's batch
	latency float64
}

// chipJob is one flash operation handed to a chip worker.
type chipJob struct {
	earliest float64 // the op may not start before this (request arrival)
	dur      float64
	reply    chan<- float64 // receives the op's end time; buffered by sender
	kind     byte           // 'r' read, 'p' program, 'e' erase
	gc       bool           // issued inside garbage collection
	seq      uint64         // submission ticket, for trace attribution
	slot     int            // op index within the ticket's batch
}

// ChipStats reports one chip worker's activity.
type ChipStats struct {
	Chip int
	Ops  uint64
	Busy float64 // µs of occupied chip time
	Till float64 // busy-until watermark, µs
}

// chipWorker owns one chip's simulated timeline. It consumes operations in
// dispatch (= ticket) order, so its busy-until schedule is deterministic.
type chipWorker struct {
	ch   chan chipJob
	done chan struct{}

	mu    sync.Mutex
	stats ChipStats
	trc   telemetry.Tracer // nil = tracing disabled
}

func (w *chipWorker) run() {
	defer close(w.done)
	for job := range w.ch {
		w.mu.Lock()
		s := job.earliest
		if w.stats.Till > s {
			s = w.stats.Till
		}
		e := s + job.dur
		w.stats.Till = e
		w.stats.Ops++
		w.stats.Busy += job.dur
		trc := w.trc
		w.mu.Unlock()
		if trc != nil {
			// The span's start/end are deterministic (jobs arrive in ticket
			// order), so the export is too, however the workers interleave.
			trc.Emit(telemetry.Event{
				Ts:    s,
				Dur:   job.dur,
				Track: telemetry.TrackChip(w.stats.Chip),
				Ph:    telemetry.PhaseSpan,
				GC:    job.gc,
				Name:  telemetry.OpName(job.kind),
				Cat:   "flash",
				Seq:   job.seq,
				Slot:  job.slot,
				LPN:   -1,
			})
		}
		job.reply <- e
	}
}

// NewConcurrent builds a thread-safe device over the given flash array and
// starts one worker per chip. Close releases the workers; the Queue field of
// the configuration is ignored (the front end always shards per chip).
func NewConcurrent(arr *flash.Array, cfg Config) (*ConcurrentDevice, error) {
	if cfg.BusMBps <= 0 {
		return nil, fmt.Errorf("ssd: bus bandwidth must be positive, got %v", cfg.BusMBps)
	}
	f, err := ftl.New(arr, cfg.FTL)
	if err != nil {
		return nil, err
	}
	f.EnableOpJournal()
	c := &ConcurrentDevice{
		f:    f,
		cfg:  cfg,
		lat:  telemetry.NewDigest(),
		pend: make(map[uint64][]float64),
		till: make([]float64, arr.Geometry().Chips),
	}
	c.admit = sync.NewCond(&c.mu)
	for chip := 0; chip < arr.Geometry().Chips; chip++ {
		w := &chipWorker{
			ch:    make(chan chipJob, 128),
			done:  make(chan struct{}),
			stats: ChipStats{Chip: chip},
		}
		c.chips = append(c.chips, w)
		go w.run()
	}
	return c, nil
}

// Close stops the chip workers. The device must be idle (no submission in
// flight); submitting after Close panics.
func (c *ConcurrentDevice) Close() {
	c.closeOnce.Do(func() {
		for _, w := range c.chips {
			close(w.ch)
		}
		for _, w := range c.chips {
			<-w.done
		}
	})
}

// FTL exposes the underlying translation layer. Only touch it while no
// submission is in flight — the FTL itself is not thread-safe. Use WithFTL
// to inspect it while traffic is running.
func (c *ConcurrentDevice) FTL() *ftl.FTL { return c.f }

// WithFTL runs fn with the FTL-stage lock held. The FTL is only ever
// mutated inside that critical section, so fn gets a race-free view even
// while submissions are in flight (the network front end's STAT op relies
// on this). fn must not submit to the device — that would deadlock.
func (c *ConcurrentDevice) WithFTL(fn func(*ftl.FTL)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fn(c.f)
}

// PageSize returns the device's page size in bytes.
func (c *ConcurrentDevice) PageSize() int { return c.f.Geometry().PageSize }

// Now returns the simulated clock: the later of the latest admitted arrival
// and the latest completion. Both locks are held together — reading them in
// two separate critical sections would let a submission land between the
// reads and return a clock torn between two different instants.
func (c *ConcurrentDevice) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	t := c.clock
	if c.horizon > t {
		t = c.horizon
	}
	return t
}

// SetTracer attaches (or, with nil, detaches) a tracer recording the device
// pipeline on the simulated clock: one host span per request, an FTL-stage
// instant per coalesced run, and one span per chip operation. Call while no
// submission is in flight — typically after the warm fill, so the trace
// covers only the measured workload.
func (c *ConcurrentDevice) SetTracer(tr telemetry.Tracer) {
	c.mu.Lock()
	c.trc = tr
	c.mu.Unlock()
	for _, w := range c.chips {
		w.mu.Lock()
		w.trc = tr
		w.mu.Unlock()
	}
}

// SetLedger attaches (or, with nil, detaches) a hop ledger recording
// garbage-collection work attributed to traced requests: one HopGC record
// per preemptive GC step (SimUS = the step's flash latency, Pages = pages
// relocated), attributed to the trace that triggered the idle window or debt
// step, plus a zero-duration HopGC marker carrying the page count of any
// blocking collection a traced write tripped (the blocked time itself is in
// that write's Completion.GCTime, which the serving layer records — the
// marker only adds the relocation count the Completion cannot carry).
// Records are emitted under the serialized ticket-order FTL stage, so the
// ledger's sorted contents are identical across submitter counts. Call while
// no submission is in flight.
func (c *ConcurrentDevice) SetLedger(l *telemetry.Ledger) {
	c.mu.Lock()
	c.led = l
	if l == nil {
		c.f.SetGCObserver(nil)
	} else {
		c.f.SetGCObserver(func(ev ftl.GCEvent) {
			// Step events are recorded by gcStepRun, which also knows the
			// schedule slot; only blocking refills are captured here.
			if !ev.Blocking || c.curTrace == 0 {
				return
			}
			l.Record(telemetry.HopRecord{
				Trace: c.curTrace, Hop: telemetry.HopGC, Parent: telemetry.HopNone,
				Seq: c.curTicket, LPN: -1, Pages: ev.Moves, SimTS: -1,
			})
		})
	}
	c.mu.Unlock()
}

// SetAttribution wires (or, with nil, unwires) a straggler attribution table
// into the FTL. The FTL stage runs in strict ticket order, so the table's
// report is byte-identical across worker counts. Call while no submission is
// in flight.
func (c *ConcurrentDevice) SetAttribution(a *telemetry.Attribution) {
	c.mu.Lock()
	c.f.SetAttribution(a)
	c.mu.Unlock()
}

// AttachRecorder wires a flight recorder into the FTL stage: every clock
// advance ticks it, sampling WAF, in-flight depth, the extra-latency EWMA,
// assembly pool levels, and per-chip utilization. The recorder must have been
// built with RecorderColumns for this device's chip count. All sampled state
// is maintained under the serialized ticket-order stage (chip schedules are
// mirrored, not read from the workers), so the recorder's export bytes are
// identical however many goroutines submit. Call while no submission is in
// flight — typically after the warm fill.
func (c *ConcurrentDevice) AttachRecorder(rec *telemetry.Recorder) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rec == nil {
		c.rec = nil
		c.mirrorTill = nil
		return nil
	}
	rs, err := newRecState(rec, len(c.chips), c.f, len(c.recExtraCols), c.recExtraFn)
	if err != nil {
		return err
	}
	// Seed the mirror from the (idle) workers so mid-run attachment — e.g.
	// after the warm fill — continues their schedule instead of restarting
	// the timeline at zero, and align the sampling cursor so the elapsed
	// history is not backfilled.
	c.mirrorTill = make([]float64, len(c.chips))
	for i, st := range c.ChipStats() {
		c.mirrorTill[i] = st.Till
		rs.busy[i] = st.Busy
		if st.Till > rs.hor {
			rs.hor = st.Till
		}
	}
	c.statsMu.Lock()
	if c.horizon > rs.hor {
		rs.hor = c.horizon
	}
	if c.clock > rs.hor {
		rs.hor = c.clock
	}
	c.statsMu.Unlock()
	rs.rec.AlignTo(rs.hor)
	c.rec = rs
	return nil
}

// SetRecorderExtra registers extra flight-recorder columns filled by fn on
// every sample, appended after the device's RecorderColumns set — the
// serving layer wires its connection/in-flight counters in this way. Call
// before AttachRecorder; the recorder must then be built with
// append(RecorderColumns(chips), cols...). Extra columns read live state
// under the recorder lock, so they are excluded from the device columns'
// byte-determinism guarantee.
func (c *ConcurrentDevice) SetRecorderExtra(cols []string, fn func(vals []float64)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recExtraCols = append([]string(nil), cols...)
	c.recExtraFn = fn
}

// FlushRecorder ticks the attached recorder up to the current simulated
// clock, emitting the samples between the last event and now. Call while no
// submission is in flight, after the final batch, before exporting.
func (c *ConcurrentDevice) FlushRecorder() {
	now := c.Now()
	c.mu.Lock()
	if c.rec != nil {
		c.rec.tick(now)
	}
	c.mu.Unlock()
}

// SetMetrics wires (or, with nil, unwires) a telemetry registry: the FTL's
// "ftl." counters, a "ssd.qdepth" gauge tracking in-flight submissions, and
// the streaming "ssd.latency" digest. Call while no submission is in flight;
// wiring a registry swaps in its (fresh) digest, so attaching after the warm
// fill keeps the fill out of the measured distribution.
func (c *ConcurrentDevice) SetMetrics(m *telemetry.Metrics) {
	c.f.SetMetrics(m)
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	if m == nil {
		c.qdepth = nil
		c.lat = telemetry.NewDigest()
		return
	}
	c.qdepth = m.Gauge("ssd.qdepth")
	c.lat = m.Digest("ssd.latency")
}

// LatencyDigest returns the streaming latency summary: moments plus P²
// p50/p95/p99 estimates in O(1) memory. Observations enter in ticket order
// (a reorder buffer holds completions that finish early), so the snapshot is
// identical however many goroutines submitted.
func (c *ConcurrentDevice) LatencyDigest() telemetry.DigestSnapshot {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.lat.Snapshot()
}

// Reserve allocates the next submission ticket. SubmitTicket admits tickets
// strictly in order, so every reserved ticket must eventually be submitted.
// Plain Submit/SubmitBatch reserve internally; use Reserve/ReserveBatch only
// to pin an externally defined order (e.g. trace order) onto concurrent
// submitters, and do not mix the two styles on one device.
func (c *ConcurrentDevice) Reserve() uint64 {
	c.mu.Lock()
	t := c.issued
	c.issued++
	c.mu.Unlock()
	return t
}

// NextTicket returns the ticket the next Reserve would hand out, without
// consuming it. The network server uses it to rebase a client's dense
// 0-based sequence numbers onto a device whose ticket counter has already
// advanced (e.g. past a warm fill).
func (c *ConcurrentDevice) NextTicket() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.issued
}

// ReserveBatch allocates n consecutive tickets and returns the first.
func (c *ConcurrentDevice) ReserveBatch(n int) uint64 {
	c.mu.Lock()
	t := c.issued
	c.issued += uint64(n)
	c.mu.Unlock()
	return t
}

// Submit services one request. Safe for concurrent use; the request enters
// the FTL in ticket (submission) order.
func (c *ConcurrentDevice) Submit(req Request) (Completion, error) {
	return c.SubmitTicket(c.Reserve(), req)
}

// SubmitTicket services one request under a previously reserved ticket,
// blocking until all earlier tickets have entered the FTL stage.
func (c *ConcurrentDevice) SubmitTicket(ticket uint64, req Request) (Completion, error) {
	comps, err := c.submit(ticket, []Request{req})
	if err != nil {
		return Completion{}, err
	}
	return comps[0], nil
}

// SubmitBatch services several requests as one submission. Runs of
// adjacent-LPN writes coalesce into back-to-back super-word-line buffer
// fills (sharing their multi-plane program), and runs of adjacent-LPN reads
// into multi-plane range reads whose cost is the slowest member, not the
// sum. Completions are returned in request order.
func (c *ConcurrentDevice) SubmitBatch(reqs []Request) ([]Completion, error) {
	return c.submit(c.Reserve(), reqs)
}

// SubmitBatchTicket is SubmitBatch under a previously reserved ticket.
func (c *ConcurrentDevice) SubmitBatchTicket(ticket uint64, reqs []Request) ([]Completion, error) {
	return c.submit(ticket, reqs)
}

// run is one coalesced unit of a batch: [first, first+n) of the request
// slice, serviced as a single flash submission.
type run struct {
	first, n int
	arrival  float64   // service start: max member arrival (0 resolved to the clock)
	arrivals []float64 // resolved per-member arrivals
	xfer     float64   // host-bus time of the whole run (or command overhead)
	nops     int
	reply    chan float64
	data     [][]byte  // read payloads per member, nil otherwise
	gcl      []float64 // blocking-GC latency per member write (lazily allocated; nil = all zero)
}

func (c *ConcurrentDevice) submit(ticket uint64, reqs []Request) ([]Completion, error) {
	if g := c.gauge(); g != nil {
		g.Add(1)
		defer g.Add(-1)
	}
	c.mu.Lock()
	for c.next != ticket {
		c.admit.Wait()
	}
	var runs []run
	var err error
	if len(reqs) > 0 {
		runs, err = c.ftlStage(ticket, reqs)
	}
	trc := c.trc
	// The ticket advances even on error (and on an empty batch) so later
	// submitters are never deadlocked behind a failed request.
	c.next = ticket + 1
	c.admit.Broadcast()
	c.mu.Unlock()

	// Completion stage, outside the lock: wait for the chip workers.
	comps := make([]Completion, len(reqs))
	for _, r := range runs {
		end := r.arrival
		for i := 0; i < r.nops; i++ {
			if e := <-r.reply; e > end {
				end = e
			}
		}
		finish := end + r.xfer
		for i := 0; i < r.n; i++ {
			arr := r.arrivals[i]
			var gct float64
			if r.gcl != nil {
				gct = r.gcl[i]
			}
			comps[r.first+i] = Completion{
				Start:   r.arrival,
				Finish:  finish,
				Wait:    r.arrival - arr,
				Service: finish - r.arrival,
				Latency: finish - arr,
				GCTime:  gct,
				Data:    r.data[i],
			}
		}
	}
	if err != nil {
		// The digest drain must still see this ticket, or every later
		// completion would sit in the reorder buffer forever.
		c.statsMu.Lock()
		c.pend[ticket] = nil
		c.feedDigest()
		c.statsMu.Unlock()
		return nil, err
	}
	if trc != nil {
		for _, r := range runs {
			head := reqs[r.first]
			trc.Emit(telemetry.Event{
				Ts: r.arrival, Track: telemetry.TrackFTL, Ph: telemetry.PhaseInstant,
				Name: "ftl-stage", Cat: "ftl", Seq: ticket, Slot: r.first, LPN: head.LPN,
			})
			for i := 0; i < r.n; i++ {
				req := reqs[r.first+i]
				cp := comps[r.first+i]
				trc.Emit(telemetry.Event{
					Ts: r.arrivals[i], Dur: cp.Latency, Track: telemetry.TrackHost,
					Ph: telemetry.PhaseSpan, Name: req.Kind.String(), Cat: "host",
					Seq: ticket, Slot: r.first + i, LPN: req.LPN, TraceID: req.Trace,
				})
			}
		}
	}
	// Latencies of this ticket in slot order: the reorder buffer feeds them
	// to the digest in ticket order, so the streaming quantiles are the same
	// at any submission depth.
	lats := make([]float64, 0, len(reqs))
	c.statsMu.Lock()
	for _, r := range runs {
		for i := 0; i < r.n; i++ {
			cp := comps[r.first+i]
			c.counts.Requests++
			switch reqs[r.first+i].Kind {
			case OpWrite:
				c.counts.Writes++
			case OpRead:
				c.counts.Reads++
			case OpTrim:
				c.counts.Trims++
			}
			if c.cfg.RetainLatencies {
				c.records = append(c.records, latencyRecord{
					arrival: r.arrivals[i], ticket: ticket, slot: r.first + i, latency: cp.Latency,
				})
			}
			lats = append(lats, cp.Latency)
			if cp.Finish > c.horizon {
				c.horizon = cp.Finish
			}
		}
	}
	c.pend[ticket] = lats
	c.feedDigest()
	c.statsMu.Unlock()
	return comps, nil
}

// gauge returns the in-flight gauge under the stats lock.
func (c *ConcurrentDevice) gauge() *telemetry.Gauge {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.qdepth
}

// feedDigest advances the ticket-order drain over the reorder buffer.
// Caller holds c.statsMu.
func (c *ConcurrentDevice) feedDigest() {
	for {
		lats, ok := c.pend[c.drain]
		if !ok {
			return
		}
		delete(c.pend, c.drain)
		c.drain++
		for _, v := range lats {
			c.lat.Observe(v)
		}
	}
}

// maxTill returns the mirrored busy-until horizon across all chips — when
// the device frees up, as predicted in ticket order.
func (c *ConcurrentDevice) maxTill() float64 {
	h := 0.0
	for _, t := range c.till {
		if t > h {
			h = t
		}
	}
	return h
}

// gcStepRun executes one preemptive GC step in the FTL stage and dispatches
// its chip work as a pseudo-run (no completions, replies drained by the
// completion stage). Caller holds c.mu; earliest bounds where the step's
// flash ops may start; trace attributes the step to the request that opened
// the window (0 = untraced). worked is false when GC had nothing to do.
func (c *ConcurrentDevice) gcStepRun(ticket uint64, earliest float64, trace uint64) (run, bool, error) {
	var res ftl.GCStepResult
	ops, err := c.f.CollectOps(func() error {
		var e error
		res, e = c.f.GCStep(c.f.GCStepPages())
		return e
	})
	if c.led != nil && trace != 0 && !res.Idle {
		c.led.Record(telemetry.HopRecord{
			Trace: trace, Hop: telemetry.HopGC, Parent: telemetry.HopNone,
			Seq: ticket, LPN: -1, Pages: res.Moves, SimTS: earliest, SimUS: res.Latency,
		})
	}
	r := run{arrival: earliest, nops: len(ops), reply: make(chan float64, len(ops))}
	for _, op := range ops {
		c.chips[op.Chip].ch <- chipJob{
			earliest: earliest, dur: op.Dur, reply: r.reply,
			kind: op.Kind, gc: op.GC, seq: ticket, slot: -1,
		}
		s := earliest
		if c.till[op.Chip] > s {
			s = c.till[op.Chip]
		}
		c.till[op.Chip] = s + op.Dur
		if c.rec != nil {
			// The step occupies chip time the recorder's utilization columns
			// must see; it is not a request, so the depth heap is untouched.
			s = earliest
			if c.mirrorTill[op.Chip] > s {
				s = c.mirrorTill[op.Chip]
			}
			c.mirrorTill[op.Chip] = s + op.Dur
			c.rec.busy[op.Chip] += op.Dur
		}
	}
	return r, !res.Idle, err
}

// gcIdleSteps runs GC steps in the idle window before arrival — the gap
// between the mirrored device horizon and the next request's start. Host
// work keeps priority: stepping stops once the window is consumed (the last
// step may overshoot; flash ops are not preemptible).
func (c *ConcurrentDevice) gcIdleSteps(ticket uint64, arrival float64, trace uint64) ([]run, error) {
	var runs []run
	for c.maxTill() < arrival && c.f.GCNeeded() {
		r, worked, err := c.gcStepRun(ticket, c.maxTill(), trace)
		runs = append(runs, r)
		if err != nil {
			return runs, err
		}
		if !worked {
			break
		}
	}
	return runs, nil
}

// ftlStage executes a batch against the FTL in run-sized units and
// dispatches the journalled chip work. Caller holds c.mu. On error the runs
// executed so far are returned so their replies can still be drained.
func (c *ConcurrentDevice) ftlStage(ticket uint64, reqs []Request) ([]run, error) {
	var runs []run
	if c.f.GCStepPages() > 0 {
		// Preemptive GC in the idle window before this ticket's work: steps
		// are scheduled against the mirrored chip horizon, in ticket order,
		// so placement is identical however many goroutines submit.
		a0 := reqs[0].Arrival
		if a0 == 0 {
			a0 = c.clock
		}
		gcRuns, err := c.gcIdleSteps(ticket, a0, reqs[0].Trace)
		runs = append(runs, gcRuns...)
		if err != nil {
			return runs, err
		}
	}
	opIdx := 0 // op index across the whole batch, for trace attribution
	for first := 0; first < len(reqs); {
		n := runLen(reqs[first:])
		r := run{
			first:    first,
			n:        n,
			arrivals: make([]float64, n),
			data:     make([][]byte, n),
		}
		for i := 0; i < n; i++ {
			a := reqs[first+i].Arrival
			if a == 0 {
				a = c.clock
			}
			r.arrivals[i] = a
			if a > r.arrival {
				r.arrival = a
			}
		}
		if r.arrival > c.clock {
			c.clock = r.arrival
		}
		if c.rec != nil {
			// Sample any interval boundaries this run's arrival crossed
			// before executing it, so samples hold the pre-event state.
			c.rec.tick(c.clock)
		}
		ops, err := c.f.CollectOps(func() error {
			for i := 0; i < n; i++ {
				req := reqs[first+i]
				c.curTrace, c.curTicket = req.Trace, ticket
				switch req.Kind {
				case OpWrite:
					res, err := c.f.WriteHinted(req.LPN, req.Data, req.Hint)
					if err != nil {
						return err
					}
					if res.GCLatency > 0 {
						if r.gcl == nil {
							r.gcl = make([]float64, n)
						}
						r.gcl[i] = res.GCLatency
					}
					r.xfer += c.transferTime(len(req.Data))
				case OpRead:
					if n > 1 {
						// An adjacent-LPN read run: one multi-plane range
						// read covers every member.
						datas, _, err := c.f.ReadRange(req.LPN, n)
						if err != nil {
							return err
						}
						for j, d := range datas {
							r.data[j] = d
							r.xfer += c.transferTime(len(d))
						}
						return nil
					}
					res, err := c.f.Read(req.LPN)
					if err != nil {
						return err
					}
					r.data[i] = res.Data
					r.xfer += c.transferTime(len(res.Data))
				case OpTrim:
					if err := c.f.Trim(req.LPN); err != nil {
						return err
					}
					r.xfer += 1 // command overhead only
				default:
					return fmt.Errorf("ssd: unknown op kind %v", req.Kind)
				}
			}
			return nil
		})
		r.nops = len(ops)
		r.reply = make(chan float64, len(ops)) // buffered: workers never block
		for _, op := range ops {
			c.chips[op.Chip].ch <- chipJob{
				earliest: r.arrival, dur: op.Dur, reply: r.reply,
				kind: op.Kind, gc: op.GC, seq: ticket, slot: opIdx,
			}
			opIdx++
			s := r.arrival
			if c.till[op.Chip] > s {
				s = c.till[op.Chip]
			}
			c.till[op.Chip] = s + op.Dur
		}
		if c.rec != nil {
			// Mirror the chip workers' scheduling math (ticket-order arrival,
			// start at max(arrival, busy-until)) to predict this run's finish
			// without reading their racy state.
			end := r.arrival
			for _, op := range ops {
				s := r.arrival
				if c.mirrorTill[op.Chip] > s {
					s = c.mirrorTill[op.Chip]
				}
				e := s + op.Dur
				c.mirrorTill[op.Chip] = e
				c.rec.busy[op.Chip] += op.Dur
				if e > end {
					end = e
				}
			}
			c.rec.note(end + r.xfer)
		}
		runs = append(runs, r)
		if err != nil {
			return runs, err
		}
		first += n
	}
	if c.f.GCStepPages() > 0 && c.f.GCNeeded() {
		// Debt steps: closed-loop hosts never leave an idle window, so pay one
		// increment of reclamation per ticket behind the submitted work. Host
		// work keeps strict priority: while the chips run behind the clock
		// (backlogged), no step is taken — unless the FTL reports pressure: a
		// trickle step when the pool is down to the GC reserve row, a small
		// burst when it is empty. Always bounded, so a ticket never schedules
		// a whole collection at once.
		steps := 1
		switch c.f.GCPressure() {
		case 2:
			steps = 4
		case 1:
		default:
			if c.maxTill() > c.clock {
				steps = 0
			}
		}
		for i := 0; i < steps && c.f.GCNeeded(); i++ {
			r, worked, err := c.gcStepRun(ticket, c.clock, reqs[0].Trace)
			runs = append(runs, r)
			if err != nil {
				return runs, err
			}
			if !worked {
				break
			}
		}
	}
	return runs, nil
}

// runLen returns the length of the coalescible run at the head of reqs: a
// maximal sequence of same-kind read or write requests whose LPNs ascend by
// exactly one (writes must also share a hint). Anything else is a singleton.
func runLen(reqs []Request) int {
	head := reqs[0]
	if head.Kind != OpWrite && head.Kind != OpRead {
		return 1
	}
	n := 1
	for n < len(reqs) {
		next := reqs[n]
		if next.Kind != head.Kind || next.LPN != head.LPN+int64(n) {
			break
		}
		if head.Kind == OpWrite && next.Hint != head.Hint {
			break
		}
		n++
	}
	return n
}

func (c *ConcurrentDevice) transferTime(bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / c.cfg.BusMBps // bytes / (MB/s) = µs
}

// Stats returns the merged device statistics. When Config.RetainLatencies
// is set, Latencies are ordered by (arrival, ticket, batch slot) — a stable,
// deterministic merge that does not depend on which worker finished first.
// Otherwise Latencies is nil and the streaming LatencyDigest carries the
// distribution in O(1) memory.
func (c *ConcurrentDevice) Stats() Stats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	recs := append([]latencyRecord(nil), c.records...)
	sort.SliceStable(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.arrival != b.arrival {
			return a.arrival < b.arrival
		}
		if a.ticket != b.ticket {
			return a.ticket < b.ticket
		}
		return a.slot < b.slot
	})
	s := c.counts
	s.Latencies = make([]float64, len(recs))
	for i, r := range recs {
		s.Latencies[i] = r.latency
	}
	return s
}

// ChipStats returns a snapshot of every chip worker's activity, in chip
// order.
func (c *ConcurrentDevice) ChipStats() []ChipStats {
	out := make([]ChipStats, len(c.chips))
	for i, w := range c.chips {
		w.mu.Lock()
		out[i] = w.stats
		w.mu.Unlock()
	}
	return out
}

// FillSequential writes every logical page once, submitting in super-word-
// line-sized adjacent-LPN batches so the fill exercises the coalescing path.
func (c *ConcurrentDevice) FillSequential(payload func(lpn int64) []byte) error {
	batch := c.f.Geometry().Lanes() * flash.PagesPerLWL
	reqs := make([]Request, 0, batch)
	flushBatch := func() error {
		if len(reqs) == 0 {
			return nil
		}
		_, err := c.SubmitBatch(reqs)
		reqs = reqs[:0]
		return err
	}
	for lpn := int64(0); lpn < c.f.Capacity(); lpn++ {
		var data []byte
		if payload != nil {
			data = payload(lpn)
		}
		reqs = append(reqs, Request{Kind: OpWrite, LPN: lpn, Data: data})
		if len(reqs) == batch {
			if err := flushBatch(); err != nil {
				return fmt.Errorf("ssd: fill at lpn %d: %w", lpn, err)
			}
		}
	}
	if err := flushBatch(); err != nil {
		return fmt.Errorf("ssd: fill tail: %w", err)
	}
	return nil
}
