package volume

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"superfast/internal/server"
)

// Proxy serves the block-service wire protocol over a Volume: clients speak
// to it exactly as they would to one ftlserve backend, and it scatters their
// requests across the shard set. STAT answers with the merged cluster
// snapshot (a superset of a single server's), so unmodified clients decode
// it.
type Proxy struct {
	v   *Volume
	cfg ProxyConfig

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	connWG   sync.WaitGroup

	connsNow  atomic.Int64
	connsEver atomic.Uint64
	accepted  atomic.Uint64
	responses atomic.Uint64
	rejected  atomic.Uint64
}

// ProxyConfig parameterizes the proxy.
type ProxyConfig struct {
	// MaxPerConn caps one connection's in-flight requests (default 64),
	// bounding the per-connection response buffer.
	MaxPerConn int
}

// NewProxy wraps a volume. The caller owns the volume's lifetime.
func NewProxy(v *Volume, cfg ProxyConfig) *Proxy {
	if cfg.MaxPerConn <= 0 {
		cfg.MaxPerConn = 64
	}
	return &Proxy{v: v, cfg: cfg, conns: make(map[net.Conn]struct{})}
}

// Volume returns the proxied volume.
func (p *Proxy) Volume() *Volume { return p.v }

// Stats returns the proxy's serving-layer counters (the frontend view; each
// backend keeps its own).
func (p *Proxy) Stats() server.ServerStats {
	return server.ServerStats{
		Conns:     p.connsNow.Load(),
		ConnsEver: p.connsEver.Load(),
		Accepted:  p.accepted.Load(),
		Responses: p.responses.Load(),
		Rejected:  p.rejected.Load(),
	}
}

// Serve accepts connections on ln until Shutdown closes it.
func (p *Proxy) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.draining {
		p.mu.Unlock()
		ln.Close()
		return fmt.Errorf("volume: proxy already shut down")
	}
	p.ln = ln
	p.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			p.mu.Lock()
			draining := p.draining
			p.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		p.startConn(nc)
	}
}

func (p *Proxy) startConn(nc net.Conn) {
	p.mu.Lock()
	if p.draining {
		p.mu.Unlock()
		nc.Close()
		return
	}
	p.conns[nc] = struct{}{}
	p.connWG.Add(1)
	p.mu.Unlock()
	p.connsNow.Add(1)
	p.connsEver.Add(1)
	c := &proxyConn{p: p, nc: nc, out: make(chan server.Response, p.cfg.MaxPerConn+8)}
	c.cond = sync.NewCond(&c.lmu)
	go c.run()
}

func (p *Proxy) forgetConn(nc net.Conn) {
	p.mu.Lock()
	delete(p.conns, nc)
	p.mu.Unlock()
	p.connsNow.Add(-1)
	p.connWG.Done()
}

// Shutdown drains the proxy: stop accepting, stop reading request frames,
// answer everything already read (in-flight requests run to completion,
// later ones get StatusRejected), flush responses, close connections. The
// backends stay up — the caller owns the volume.
func (p *Proxy) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	p.draining = true
	ln := p.ln
	conns := make([]net.Conn, 0, len(p.conns))
	for nc := range p.conns {
		conns = append(conns, nc)
	}
	p.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, nc := range conns {
		nc.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() {
		p.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		p.mu.Lock()
		for nc := range p.conns {
			nc.Close()
		}
		p.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// proxyConn mirrors the server's connection lifecycle: a reader admitting
// frames, a writer encoding responses in completion order, and in-flight
// handler goroutines between them.
type proxyConn struct {
	p   *Proxy
	nc  net.Conn
	out chan server.Response

	lmu      sync.Mutex
	cond     *sync.Cond
	inFlight int

	handlers sync.WaitGroup
}

func (c *proxyConn) run() {
	defer c.p.forgetConn(c.nc)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		c.writer()
	}()
	c.reader()
	c.handlers.Wait()
	close(c.out)
	<-writerDone
	if tc, ok := c.nc.(*net.TCPConn); ok {
		tc.CloseWrite()
		c.nc.SetReadDeadline(time.Now().Add(time.Second))
		buf := make([]byte, 4096)
		for {
			if _, err := c.nc.Read(buf); err != nil {
				break
			}
		}
	}
	c.nc.Close()
}

func (c *proxyConn) reader() {
	p := c.p
	v := p.v
	br := bufio.NewReaderSize(c.nc, 64<<10)
	for {
		f, _, err := server.ReadFrame(br)
		if err != nil {
			return
		}
		p.accepted.Add(1)
		switch f.Op {
		case server.OpPing:
			// Advertise the trace extension like a backend would, so clients
			// stamp trace context toward the proxy too.
			c.respond(server.Response{Status: server.StatusOK, ID: f.ID, Payload: []byte(server.TraceCap)})
		case server.OpStat:
			c.respond(p.statResponse(f.ID))
		case server.OpFlush:
			// Pipeline barrier: this connection's in-flight requests first,
			// then every backend pipeline.
			c.waitIdle()
			if err := v.Flush(); err != nil {
				c.respond(server.Response{Status: server.StatusInternal, ID: f.ID, Payload: []byte(err.Error())})
				continue
			}
			c.respond(server.Response{Status: server.StatusOK, ID: f.ID})
		case server.OpRead, server.OpWrite, server.OpTrim:
			if f.Sequenced() != v.cfg.Sequenced {
				c.respond(server.Response{
					Status: server.StatusBadRequest, ID: f.ID,
					Payload: []byte(fmt.Sprintf("sequenced flag %v but volume sequenced=%v", f.Sequenced(), v.cfg.Sequenced)),
				})
				continue
			}
			p.mu.Lock()
			draining := p.draining
			p.mu.Unlock()
			if draining {
				p.rejected.Add(1)
				// A rejected sequenced ticket still advances the global
				// cursor, or the chain behind it wedges.
				v.SkipSeq(f.Seq)
				c.respond(server.Response{Status: server.StatusRejected, ID: f.ID, Payload: []byte("volume: draining")})
				continue
			}
			c.acquireLocal()
			ca, err := c.startOp(f)
			if err != nil {
				c.releaseLocal()
				p.rejected.Add(1)
				c.respond(server.Response{Status: server.StatusBadRequest, ID: f.ID, Payload: []byte(err.Error())})
				continue
			}
			c.handlers.Add(1)
			go c.finish(f.ID, ca)
		}
	}
}

// startOp maps one wire frame onto the volume. In sequenced mode the call
// blocks until the frame's global ticket is admitted — per-connection seq
// must therefore ascend, exactly as on a sequenced backend. An invalid LPN
// consumes the ticket (the volume advances its cursor either way).
func (c *proxyConn) startOp(f server.Frame) (*Call, error) {
	v := c.p.v
	// Pass the client's trace context through: the volume's HopProxy records
	// then point back at the hop that sent the frame.
	tr := TraceRef{ID: f.Trace, Parent: f.ParentHop}
	switch f.Op {
	case server.OpRead:
		return v.StartRead(f.LPN, f.Seq, f.Arrival, tr)
	case server.OpWrite:
		return v.StartWrite(f.LPN, f.Payload, f.Hint, f.Seq, f.Arrival, tr)
	default:
		return v.StartTrim(f.LPN, f.Seq, f.Arrival, tr)
	}
}

func (c *proxyConn) finish(id uint64, ca *Call) {
	defer c.handlers.Done()
	r, err := ca.Wait()
	if err != nil {
		r = server.Response{Status: server.StatusInternal, Payload: []byte(err.Error())}
	}
	r.ID = id
	c.respond(r)
	c.releaseLocal()
}

func (c *proxyConn) respond(r server.Response) {
	c.p.responses.Add(1)
	c.out <- r
}

func (c *proxyConn) writer() {
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	var buf []byte
	var err error
	for r := range c.out {
		if err != nil {
			continue // drain so handlers never block on a dead connection
		}
		buf, err = server.AppendResponse(buf[:0], r)
		if err != nil {
			continue
		}
		if _, werr := bw.Write(buf); werr != nil {
			err = werr
			continue
		}
		if len(c.out) == 0 {
			if ferr := bw.Flush(); ferr != nil {
				err = ferr
			}
		}
	}
	if err == nil {
		bw.Flush()
	}
}

func (c *proxyConn) acquireLocal() {
	c.lmu.Lock()
	for c.inFlight >= c.p.cfg.MaxPerConn {
		c.cond.Wait()
	}
	c.inFlight++
	c.lmu.Unlock()
}

func (c *proxyConn) releaseLocal() {
	c.lmu.Lock()
	c.inFlight--
	c.cond.Broadcast()
	c.lmu.Unlock()
}

func (c *proxyConn) waitIdle() {
	c.lmu.Lock()
	for c.inFlight > 0 {
		c.cond.Wait()
	}
	c.lmu.Unlock()
}

func (p *Proxy) statResponse(id uint64) server.Response {
	snap := p.v.ClusterStat()
	// The frontend's own serving counters ride in the merged server block's
	// conns fields so `ftlload` probes see this proxy, not the backend sum,
	// for connection-level numbers.
	snap.Server.Conns = p.connsNow.Load()
	snap.Server.ConnsEver = p.connsEver.Load()
	payload, err := json.Marshal(snap)
	if err != nil {
		return server.Response{Status: server.StatusInternal, ID: id, Payload: []byte(err.Error())}
	}
	return server.Response{Status: server.StatusOK, ID: id, Payload: payload}
}
