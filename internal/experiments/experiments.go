// Package experiments reproduces every table and figure of the paper's
// evaluation: Table I (eight directions), Table II (STR-RANK window sizes),
// Table V (extra program/erase latency), Figures 5, 6, 12, 13, 14, 15, and
// the computing/space overhead analyses of §VI, plus ablations of the model
// design choices called out in DESIGN.md.
//
// Run an experiment by id through Run, or list them with IDs. Experiments
// return render-ready tables, series and text.
package experiments

import (
	"fmt"
	"sort"

	"superfast/internal/assembly"
	"superfast/internal/chamber"
	"superfast/internal/flash"
	"superfast/internal/pv"
	"superfast/internal/stats"
	"superfast/internal/telemetry"
)

// Config scales an experiment run.
type Config struct {
	Seed          uint64
	Geometry      flash.Geometry
	PV            pv.Params
	LanesPerGroup int   // lanes organized into one superblock set (paper: 4 chips)
	Groups        int   // number of lane groups to use (0 = all)
	BlocksPerLane int   // blocks characterized per lane (paper: 400 superblocks per cycle)
	Window        int   // window for the windowed directions (paper: 8)
	MedWindow     int   // window for STR-MED / QSTR-MED (paper: 4)
	PESteps       []int // P/E cycle checkpoints (paper: 0..3,000 step 200)
	HistBins      int   // bins for distribution figures
	FastMeasure   bool  // query the model directly instead of replaying flash ops
	// Remeasure scores each strategy's superblocks on an independent second
	// characterization pass instead of the one it organized from. The paper
	// computes both from a single pass (its local-optimal search therefore
	// keeps the selection bias of optimizing over measurement noise), so
	// Remeasure defaults to false; the robustness ablation turns it on.
	Remeasure bool
	// Parallel runs the sweep's (P/E step × lane group) tasks on this many
	// goroutines (0 or 1 = serial). Requires FastMeasure; every task's
	// testbed resumes the jitter stream at the exact offset a serial run
	// would have reached, so parallel and serial sweeps produce
	// byte-identical results regardless of scheduling.
	Parallel int
	// Metrics, when set, receives sweep progress counters ("sweep." prefix)
	// and streaming extra-latency digests. Outcomes merge in serial task
	// order even under Parallel, so the digests are scheduling-independent.
	Metrics *telemetry.Metrics
	// Attr, when set, receives straggler attribution from every device-level
	// experiment: each multi-plane program/erase charges its extra latency
	// (max − min member latency) to the slowest member block.
	Attr *telemetry.Attribution
}

// DefaultConfig returns the full-scale configuration: 24 chips, groups of
// four, 400 superblocks per group, P/E 0..3,000 at step 200 — the paper's
// §VI-A setup. Full-scale runs take minutes; use QuickConfig for tests.
func DefaultConfig() Config {
	g := flash.Geometry{
		Chips:          24,
		PlanesPerChip:  1,
		BlocksPerPlane: 400,
		Layers:         96,
		Strings:        4,
		PageSize:       16 * 1024,
		SpareSize:      2 * 1024,
	}
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	steps := make([]int, 0, 16)
	for pe := 0; pe <= 3000; pe += 200 {
		steps = append(steps, pe)
	}
	return Config{
		Seed:          p.Seed,
		Geometry:      g,
		PV:            p,
		LanesPerGroup: 4,
		BlocksPerLane: 400,
		Window:        8,
		MedWindow:     4,
		PESteps:       steps,
		HistBins:      40,
		FastMeasure:   true,
	}
}

// QuickConfig returns a reduced configuration for unit tests and benchmarks:
// one group of four small chips at P/E 0.
func QuickConfig() Config {
	g := flash.Geometry{
		Chips:          4,
		PlanesPerChip:  1,
		BlocksPerPlane: 64,
		Layers:         24,
		Strings:        4,
		PageSize:       4096,
		SpareSize:      256,
	}
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	return Config{
		Seed:          p.Seed,
		Geometry:      g,
		PV:            p,
		LanesPerGroup: 4,
		Groups:        1,
		BlocksPerLane: 64,
		Window:        4,
		MedWindow:     4,
		PESteps:       []int{0},
		HistBins:      20,
		FastMeasure:   true,
	}
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.PV.Validate(); err != nil {
		return err
	}
	switch {
	case c.PV.Layers != c.Geometry.Layers || c.PV.Strings != c.Geometry.Strings:
		return fmt.Errorf("experiments: PV geometry disagrees with array geometry")
	case c.LanesPerGroup <= 0:
		return fmt.Errorf("experiments: LanesPerGroup must be positive")
	case c.BlocksPerLane <= 0 || c.BlocksPerLane > c.Geometry.BlocksPerPlane:
		return fmt.Errorf("experiments: BlocksPerLane %d out of range (plane has %d)",
			c.BlocksPerLane, c.Geometry.BlocksPerPlane)
	case c.Window <= 0 || c.MedWindow <= 0:
		return fmt.Errorf("experiments: windows must be positive")
	case len(c.PESteps) == 0:
		return fmt.Errorf("experiments: at least one P/E step required")
	case c.HistBins <= 0:
		return fmt.Errorf("experiments: HistBins must be positive")
	}
	return nil
}

func (c Config) newTestbed() (*chamber.Testbed, error) {
	p := c.PV
	p.Seed = c.Seed
	arr, err := flash.NewArray(c.Geometry, pv.New(p), flash.DefaultECC())
	if err != nil {
		return nil, err
	}
	return chamber.New(arr), nil
}

func (c Config) groups() []chamber.LaneGroup {
	groups := chamber.GroupLanes(c.Geometry, c.LanesPerGroup)
	if c.Groups > 0 && c.Groups < len(groups) {
		groups = groups[:c.Groups]
	}
	return groups
}

// Result is the output of one experiment.
type Result struct {
	ID     string
	Tables []*stats.Table
	Series []SeriesBlock
	Text   string // extra pre-rendered output (histograms, notes)
}

// SeriesBlock is a labelled set of series sharing an x axis.
type SeriesBlock struct {
	Title  string
	XLabel string
	Series []stats.Series
}

// String renders the whole result as text.
func (r *Result) String() string {
	out := fmt.Sprintf("== %s ==\n", r.ID)
	for _, t := range r.Tables {
		out += t.String() + "\n"
	}
	for _, sb := range r.Series {
		if sb.Title != "" {
			out += sb.Title + "\n"
		}
		out += stats.RenderSeries(sb.XLabel, sb.Series) + "\n"
	}
	if r.Text != "" {
		out += r.Text
	}
	return out
}

// Runner executes one experiment.
type Runner func(cfg Config) (*Result, error)

var registry = map[string]Runner{}
var registryOrder []string

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
	registryOrder = append(registryOrder, id)
}

// descriptions maps experiment ids to one-line summaries for -list output.
var descriptions = map[string]string{
	"fig5":               "Fig. 5: raw characterization — per-block tBERS and per-word-line tPROG",
	"fig6":               "Fig. 6: extra PGM/ERS latency of random superblock organization",
	"table1":             "Table I: the eight organization directions, improvement vs random",
	"table2":             "Table II: STR-RANK under window sizes 8/6/4/2",
	"table5":             "Table V: extra program and erase latency of the headline schemes",
	"fig12":              "Fig. 12: improvement percentages vs random",
	"fig13":              "Fig. 13: distribution of extra program latency",
	"fig14":              "Fig. 14: per-superblock STR-MED vs QSTR-MED",
	"fig15":              "Fig. 15: extra latency vs P/E cycles",
	"table34":            "Tables III/IV: platform inventory (paper → simulated)",
	"overhead-compute":   "§VI-B2: similarity pair-check counts (99.22% reduction)",
	"overhead-space":     "§VI-D1: Equation 2 metadata footprint",
	"ftl-host":           "§V-D end-to-end: host writes with function-based placement",
	"read-hints":         "§V-D refinement: hot data on fast LSB superpages",
	"sim-throughput":     "§II-B: device program throughput per organizer",
	"retention":          "HTDR bakes: ECC stress and the patrol scrubber",
	"raid-overhead":      "superblock RAID: capacity/WAF cost vs fault survival",
	"ncq":                "queue models: serialized vs per-chip read overlap",
	"gc-policy":          "GC victim policies: greedy vs cost-benefit vs FIFO",
	"gc-preempt":         "blocking vs preemptive partial GC: write tail latency at equal WAF",
	"temperature":        "cross-temperature robustness of the organization",
	"load-sweep":         "open-loop latency-throughput curve under Poisson arrivals",
	"dftl":               "demand-paged mapping: translation-cache hit rate and latency",
	"ablation-quant":     "model ablation: ISPP quantization grid",
	"ablation-erscorr":   "model ablation: erase↔program quality coupling",
	"ablation-remeasure": "methodology ablation: same-pass vs re-measured scoring",
	"ablation-window":    "QSTR-MED candidate window K sweep",
	"ablation-global":    "window-8 local search vs Hungarian global matching (2 lanes)",
}

// IDs returns the registered experiment ids in registration order.
func IDs() []string {
	return append([]string(nil), registryOrder...)
}

// Describe returns the one-line summary of an experiment id.
func Describe(id string) string { return descriptions[id] }

// Run executes the experiment with the given id.
func Run(id string, cfg Config) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		known := IDs()
		sort.Strings(known)
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, known)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return r(cfg)
}

// StrategyOutcome is the per-strategy summary SweepStrategies returns.
type StrategyOutcome struct {
	Name        string
	MeanPgm     float64 // mean extra program latency per superblock, µs
	MeanErs     float64 // mean extra erase latency per superblock, µs
	ExtraPgm    []float64
	ExtraErs    []float64
	PairChecks  int
	Combos      int
	Superblocks int
}

// SweepStrategies runs the shared characterize→assemble→re-measure→score
// harness over the configured lane groups and P/E steps and returns one
// outcome per strategy, in input order. Examples and the calibration tool
// use it directly; the table/figure runners build on the same harness.
func SweepStrategies(cfg Config, strategies []assembly.Assembler) ([]StrategyOutcome, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	aggs, err := sweep(cfg, strategies)
	if err != nil {
		return nil, err
	}
	out := make([]StrategyOutcome, len(strategies))
	for i, s := range strategies {
		a := aggs[s.Name()]
		out[i] = StrategyOutcome{
			Name:        a.name,
			MeanPgm:     a.meanPgm(),
			MeanErs:     a.meanErs(),
			ExtraPgm:    a.pgm,
			ExtraErs:    a.ers,
			PairChecks:  a.pairChecks,
			Combos:      a.combos,
			Superblocks: a.superblocks,
		}
	}
	return out, nil
}

// agg accumulates per-strategy extra latencies across groups and P/E steps.
type agg struct {
	name        string
	pgm         []float64 // extra program latency per superblock
	ers         []float64
	pairChecks  int
	combos      int
	superblocks int
}

func (a *agg) meanPgm() float64 { return mean(a.pgm) }
func (a *agg) meanErs() float64 { return mean(a.ers) }

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// taskOutcome is one strategy's result on one (P/E step, group) task.
type taskOutcome struct {
	pgm         []float64
	ers         []float64
	pairChecks  int
	combos      int
	superblocks int
}

// runTask measures one group at one P/E step and runs every strategy on it.
func runTask(cfg Config, tb *chamber.Testbed, grp chamber.LaneGroup, pe int,
	strategies []assembly.Assembler) ([]taskOutcome, error) {
	blocks := chamber.BlockRange(0, cfg.BlocksPerLane)
	train, err := tb.MeasureGroup(grp, blocks, pe, cfg.FastMeasure)
	if err != nil {
		return nil, err
	}
	test := train
	if cfg.Remeasure {
		test, err = tb.MeasureGroup(grp, blocks, pe, cfg.FastMeasure)
		if err != nil {
			return nil, err
		}
	}
	outs := make([]taskOutcome, len(strategies))
	for i, s := range strategies {
		res, err := s.Assemble(train)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name(), err)
		}
		m, err := assembly.Evaluate(test, res.Superblocks)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name(), err)
		}
		outs[i] = taskOutcome{
			pgm: m.ExtraPgm, ers: m.ExtraErs,
			pairChecks: res.PairChecks, combos: res.Combos,
			superblocks: len(res.Superblocks),
		}
	}
	return outs, nil
}

// sweep characterizes every group at every P/E step, assembles with every
// strategy on the measured profiles, and scores the resulting superblocks —
// by default on the same characterization pass (the paper's methodology),
// or on an independent second pass when cfg.Remeasure is set. With
// cfg.Parallel > 1 (and FastMeasure) the (step × group) tasks run
// concurrently on testbeds whose jitter streams are offset to match the
// serial iteration exactly.
func sweep(cfg Config, strategies []assembly.Assembler) (map[string]*agg, error) {
	groups := cfg.groups()
	if len(groups) == 0 {
		return nil, fmt.Errorf("experiments: geometry yields no lane groups of %d", cfg.LanesPerGroup)
	}
	out := make(map[string]*agg, len(strategies))
	for _, s := range strategies {
		out[s.Name()] = &agg{name: s.Name()}
	}
	merge := func(results [][]taskOutcome) {
		for _, taskOuts := range results {
			for i, s := range strategies {
				a := out[s.Name()]
				to := taskOuts[i]
				a.pgm = append(a.pgm, to.pgm...)
				a.ers = append(a.ers, to.ers...)
				a.pairChecks += to.pairChecks
				a.combos += to.combos
				a.superblocks += to.superblocks
			}
			if m := cfg.Metrics; m != nil {
				m.Counter("sweep.tasks").Inc()
				for i := range strategies {
					to := taskOuts[i]
					m.Counter("sweep.superblocks").Add(uint64(to.superblocks))
					m.Counter("sweep.pair_checks").Add(uint64(to.pairChecks))
					for _, v := range to.pgm {
						m.Digest("sweep.extra_pgm_us").Observe(v)
					}
					for _, v := range to.ers {
						m.Digest("sweep.extra_ers_us").Observe(v)
					}
				}
			}
		}
	}

	if cfg.Parallel > 1 && cfg.FastMeasure {
		// One task per (P/E step × lane group), in the serial iteration
		// order. Each task's testbed starts its jitter stream exactly where
		// a serial run would have it — the task index (dense, never derived
		// from the P/E cycle value) times the draws one task consumes — so
		// a parallel sweep is byte-identical to a serial one regardless of
		// goroutine scheduling.
		passes := 1
		if cfg.Remeasure {
			passes = 2
		}
		drawsPerTask := uint64(passes) * uint64(cfg.LanesPerGroup) * uint64(cfg.BlocksPerLane) *
			uint64(cfg.Geometry.Layers*cfg.Geometry.Strings+1)
		type task struct {
			pe   int
			grp  chamber.LaneGroup
			skip uint64 // jitter draws consumed by the tasks before this one
		}
		var tasks []task
		for _, pe := range cfg.PESteps {
			for _, grp := range groups {
				tasks = append(tasks, task{pe: pe, grp: grp, skip: uint64(len(tasks)) * drawsPerTask})
			}
		}
		results := make([][]taskOutcome, len(tasks))
		errs := make([]error, len(tasks))
		sem := make(chan struct{}, cfg.Parallel)
		done := make(chan int, len(tasks))
		for ti, tk := range tasks {
			ti, tk := ti, tk
			sem <- struct{}{}
			go func() {
				defer func() { <-sem; done <- ti }()
				arr, err := flash.NewArray(cfg.Geometry, pv.New(taskPV(cfg)), flash.DefaultECC())
				if err != nil {
					errs[ti] = err
					return
				}
				tb := chamber.NewOffset(arr, tk.skip)
				results[ti], errs[ti] = runTask(cfg, tb, tk.grp, tk.pe, strategies)
			}()
		}
		for range tasks {
			<-done
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		merge(results)
		return out, nil
	}

	tb, err := cfg.newTestbed()
	if err != nil {
		return nil, err
	}
	for _, pe := range cfg.PESteps {
		if err := tb.CycleAllTo(pe); err != nil {
			return nil, err
		}
		for _, grp := range groups {
			taskOuts, err := runTask(cfg, tb, grp, pe, strategies)
			if err != nil {
				return nil, err
			}
			merge([][]taskOutcome{taskOuts})
		}
	}
	return out, nil
}

// taskPV is the model parameter set a parallel task builds its array from.
func taskPV(cfg Config) pv.Params {
	p := cfg.PV
	p.Seed = cfg.Seed
	return p
}
