package ftl

import (
	"errors"
	"testing"

	"superfast/internal/flash"
	"superfast/internal/prng"
	"superfast/internal/pv"
)

// wornFTL builds an FTL over chips whose blocks wear out after very few
// erases, so bad-block retirement is exercised quickly.
func wornFTL(t testing.TB, endurance float64) *FTL {
	t.Helper()
	g := flash.TestGeometry()
	g.BlocksPerPlane = 12
	g.Layers = 12
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	p.EnduranceBase = endurance
	p.EnduranceSpan = 0.1
	arr, err := flash.NewArray(g, pv.New(p), flash.DefaultECC())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	f, err := New(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestWearOutRetiresBlocksAndSurvives(t *testing.T) {
	f := wornFTL(t, 8)
	// Churn until either the write budget is spent or the dying device
	// legitimately reports that nothing is reclaimable.
	gen := make(map[int64]int)
	capacity := f.Capacity()
	for lpn := int64(0); lpn < capacity; lpn++ {
		if _, err := f.Write(lpn, payload(lpn, 0)); err != nil {
			t.Fatalf("fill lpn %d: %v", lpn, err)
		}
		gen[lpn] = 0
	}
	src := prng.New(17, 0xc4)
	for i := 0; i < int(2*capacity); i++ {
		lpn := int64(src.Intn(int(capacity)))
		if _, err := f.Write(lpn, payload(lpn, gen[lpn]+1)); err != nil {
			if errors.Is(err, ErrDeviceFull) {
				break // the worn-out device ran out of reclaimable space
			}
			t.Fatalf("churn write %d: %v", i, err)
		}
		gen[lpn]++
	}
	st := f.Stats()
	if st.BadBlocks == 0 {
		t.Fatal("endurance-6 blocks should have started failing under churn")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Data written before and after retirement still reads back.
	for lpn := int64(0); lpn < 100; lpn++ {
		r, err := f.Read(lpn)
		if err != nil {
			t.Fatalf("read lpn %d: %v", lpn, err)
		}
		if string(r.Data) != string(payload(lpn, gen[lpn])) {
			t.Fatalf("lpn %d corrupted after wear-out", lpn)
		}
	}
	// Retired blocks are out of circulation.
	g := f.geo
	retired := 0
	for lane := 0; lane < g.Lanes(); lane++ {
		chip, plane := g.LaneChipPlane(lane)
		for b := 0; b < g.BlocksPerPlane; b++ {
			if f.scheme.Retired(flash.BlockAddr{Chip: chip, Plane: plane, Block: b}) {
				retired++
			}
		}
	}
	if uint64(retired) != st.BadBlocks {
		t.Fatalf("retired count %d disagrees with BadBlocks stat %d", retired, st.BadBlocks)
	}
}

func TestHealthyEnduranceNoBadBlocks(t *testing.T) {
	f := newFTL(t, testConfig())
	fillAndChurn(t, f, 1.0, 19)
	if f.Stats().BadBlocks != 0 {
		t.Fatalf("default endurance should survive a short churn, got %d bad blocks", f.Stats().BadBlocks)
	}
}

func TestWearAwareVictimSelectionNarrowsSpread(t *testing.T) {
	// Skewed churn concentrates erases on a few superblocks; the wear
	// penalty should spread them out.
	spread := func(lambda float64) int {
		cfg := testConfig()
		cfg.WearLambda = lambda
		f := newFTL(t, cfg)
		capacity := f.Capacity()
		for lpn := int64(0); lpn < capacity; lpn++ {
			if _, err := f.Write(lpn, payload(lpn, 0)); err != nil {
				t.Fatal(err)
			}
		}
		src := prng.New(23, 0x11)
		hot := capacity / 5
		for i := 0; i < int(3*capacity); i++ {
			lpn := int64(src.Intn(int(hot)))
			if _, err := f.Write(lpn, payload(lpn, i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		w := f.Wear()
		return w.MaxPE - w.MinPE
	}
	greedy := spread(0)
	aware := spread(5)
	if aware > greedy {
		t.Fatalf("wear-aware spread (%d) should not exceed greedy spread (%d)", aware, greedy)
	}
}

func TestPatrolRefreshesAgedPages(t *testing.T) {
	g := flash.TestGeometry()
	g.BlocksPerPlane = 12
	g.Layers = 12
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	p.RBERBase = 4e-5 // errors visible but correctable
	arr, err := flash.NewArray(g, pv.New(p), flash.DefaultECC())
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(arr, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	for lpn := int64(0); lpn < n; lpn++ {
		if _, err := f.Write(lpn, payload(lpn, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	// Age the data far enough that raw error counts approach the hard
	// decode limit, then patrol with a low refresh threshold.
	arr.AddRetention(8)
	next, lat, err := f.Patrol(0, n, 30)
	if err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.PatrolReads == 0 {
		t.Fatal("patrol should have scanned pages")
	}
	if st.Refreshes == 0 {
		t.Fatal("aged pages should have been refreshed")
	}
	if lat <= 0 || next < 0 {
		t.Fatalf("patrol result next=%d lat=%v", next, lat)
	}
	// Refreshed data still reads back correctly and invariants hold.
	for lpn := int64(0); lpn < n; lpn++ {
		r, err := f.Read(lpn)
		if err != nil {
			t.Fatalf("read lpn %d: %v", lpn, err)
		}
		if string(r.Data) != string(payload(lpn, 0)) {
			t.Fatalf("lpn %d corrupted by refresh", lpn)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPatrolSkipsUnmappedAndWraps(t *testing.T) {
	f := newFTL(t, testConfig())
	if _, err := f.Write(5, payload(5, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	// Start past the only mapped page: the scan must wrap around and find it.
	next, _, err := f.Patrol(6, 10, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if f.Stats().PatrolReads != 1 {
		t.Fatalf("PatrolReads = %d, want 1", f.Stats().PatrolReads)
	}
	if f.Stats().Refreshes != 0 {
		t.Fatal("huge threshold should never refresh")
	}
	if next < 0 || next >= f.Capacity() {
		t.Fatalf("next = %d", next)
	}
	// Out-of-range start is clamped.
	if _, _, err := f.Patrol(-5, 1, 1<<30); err != nil {
		t.Fatal(err)
	}
}
