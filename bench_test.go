// Benchmarks: one per paper table and figure, each regenerating its
// experiment on the reduced quick configuration so `go test -bench=.`
// exercises every reproduction path, plus ablation benches for the model
// design choices called out in DESIGN.md. Run the full-scale numbers with
// `go run ./cmd/sbsim -all` (see EXPERIMENTS.md).
package superfast_test

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"superfast/internal/chamber"
	"superfast/internal/core"
	"superfast/internal/experiments"
	"superfast/internal/flash"
	"superfast/internal/ftl"
	"superfast/internal/prng"
	"superfast/internal/profile"
	"superfast/internal/pv"
	"superfast/internal/server"
	"superfast/internal/server/client"
	"superfast/internal/ssd"
	"superfast/internal/stats"
	"superfast/internal/telemetry"
	"superfast/internal/volume"
	"superfast/internal/workload"
)

// benchConfig is the shared reduced configuration. Parallel experiments
// split measurement and simulation across workers on jitter-offset testbeds,
// producing byte-identical tables to a serial run (see
// TestSimThroughputParallelIdentical), so the benchmarks measure the
// parallel wall-clock without changing any result.
func benchConfig() experiments.Config {
	cfg := experiments.QuickConfig()
	cfg.BlocksPerLane = 48
	cfg.Parallel = 8
	return cfg
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res == nil {
			b.Fatal("nil result")
		}
	}
}

func BenchmarkFig5Characterize(b *testing.B)     { runExperiment(b, "fig5") }
func BenchmarkFig6Random(b *testing.B)           { runExperiment(b, "fig6") }
func BenchmarkTable1Directions(b *testing.B)     { runExperiment(b, "table1") }
func BenchmarkTable2Window(b *testing.B)         { runExperiment(b, "table2") }
func BenchmarkTable5Schemes(b *testing.B)        { runExperiment(b, "table5") }
func BenchmarkFig12Improvement(b *testing.B)     { runExperiment(b, "fig12") }
func BenchmarkFig13Distribution(b *testing.B)    { runExperiment(b, "fig13") }
func BenchmarkFig14PerSB(b *testing.B)           { runExperiment(b, "fig14") }
func BenchmarkFig15PECycles(b *testing.B)        { runExperiment(b, "fig15") }
func BenchmarkOverheadCompute(b *testing.B)      { runExperiment(b, "overhead-compute") }
func BenchmarkOverheadSpace(b *testing.B)        { runExperiment(b, "overhead-space") }
func BenchmarkFTLHostWrites(b *testing.B)        { runExperiment(b, "ftl-host") }
func BenchmarkReadHints(b *testing.B)            { runExperiment(b, "read-hints") }
func BenchmarkSimThroughput(b *testing.B)        { runExperiment(b, "sim-throughput") }
func BenchmarkRetention(b *testing.B)            { runExperiment(b, "retention") }
func BenchmarkRAIDOverhead(b *testing.B)         { runExperiment(b, "raid-overhead") }
func BenchmarkNCQ(b *testing.B)                  { runExperiment(b, "ncq") }
func BenchmarkGCPolicy(b *testing.B)             { runExperiment(b, "gc-policy") }
func BenchmarkTemperature(b *testing.B)          { runExperiment(b, "temperature") }
func BenchmarkLoadSweep(b *testing.B)            { runExperiment(b, "load-sweep") }
func BenchmarkDFTL(b *testing.B)                 { runExperiment(b, "dftl") }
func BenchmarkAblationQuantization(b *testing.B) { runExperiment(b, "ablation-quant") }
func BenchmarkAblationErsCorrelation(b *testing.B) {
	runExperiment(b, "ablation-erscorr")
}
func BenchmarkAblationRemeasure(b *testing.B) { runExperiment(b, "ablation-remeasure") }
func BenchmarkAblationWindow(b *testing.B)    { runExperiment(b, "ablation-window") }
func BenchmarkAblationGlobal(b *testing.B)    { runExperiment(b, "ablation-global") }

// BenchmarkQSTRMedAssembleOnly isolates the scheme's per-superblock cost:
// the reference selection, 12 similarity checks, and free-list updates.
func BenchmarkQSTRMedAssembleOnly(b *testing.B) {
	g := flash.TestGeometry()
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr := flash.MustNewArray(g, pv.New(p), flash.DefaultECC())
	tb := chamber.New(arr)
	type seedData struct {
		addr  flash.BlockAddr
		sum   float64
		eigen profile.Eigen
	}
	var seeds []seedData
	for lane := 0; lane < g.Lanes(); lane++ {
		chip, plane := g.LaneChipPlane(lane)
		for blk := 0; blk < g.BlocksPerPlane; blk++ {
			prof := tb.FastProfile(lane, blk, 0)
			seeds = append(seeds, seedData{
				addr:  flash.BlockAddr{Chip: chip, Plane: plane, Block: blk},
				sum:   prof.PgmSum,
				eigen: profile.EigenFromProfile(prof),
			})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		scheme, err := core.NewScheme(g, 4)
		if err != nil {
			b.Fatal(err)
		}
		for _, sd := range seeds {
			scheme.Seed(sd.addr, sd.sum, sd.eigen)
			if err := scheme.AddFree(sd.addr); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		for scheme.FreeCount() > 0 {
			if _, err := scheme.Assemble(core.Fast); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkConcurrentDevice replays a stamped read burst through the
// thread-safe multi-queue front end at several queue depths (plus the
// serialized Device as the depth-0 baseline) and reports the simulated read
// throughput of each — the load-sweep view of the concurrency model.
func BenchmarkConcurrentDevice(b *testing.B) {
	g := flash.TestGeometry()
	g.BlocksPerPlane = 8
	g.Layers = 12
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	cfg := ssd.DefaultConfig()
	cfg.FTL.Overprovision = 0.25
	const burst = 64

	b.Run("serialized", func(b *testing.B) {
		var span float64
		for i := 0; i < b.N; i++ {
			dev, err := ssd.New(flash.MustNewArray(g, pv.New(p), flash.DefaultECC()), cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := dev.FillSequential(nil); err != nil {
				b.Fatal(err)
			}
			base := dev.Now() + 1000
			var finish float64
			for lpn := int64(0); lpn < burst; lpn++ {
				c, err := dev.Submit(ssd.Request{Kind: ssd.OpRead, LPN: lpn, Arrival: base})
				if err != nil {
					b.Fatal(err)
				}
				if c.Finish > finish {
					finish = c.Finish
				}
			}
			span = finish - base
		}
		b.ReportMetric(float64(burst)/span*1e6, "simreads/s")
	})
	for _, depth := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			var span float64
			for i := 0; i < b.N; i++ {
				dev, err := ssd.NewConcurrent(flash.MustNewArray(g, pv.New(p), flash.DefaultECC()), cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := dev.FillSequential(nil); err != nil {
					b.Fatal(err)
				}
				base := dev.Now() + 1000
				reqs := make([]ssd.Request, burst)
				for j := range reqs {
					reqs[j] = ssd.Request{Kind: ssd.OpRead, LPN: int64(j), Arrival: base}
				}
				comps, err := workload.RunConcurrent(dev, reqs, depth)
				if err != nil {
					b.Fatal(err)
				}
				var finish float64
				for _, c := range comps {
					if c.Finish > finish {
						finish = c.Finish
					}
				}
				span = finish - base
				dev.Close()
			}
			b.ReportMetric(float64(burst)/span*1e6, "simreads/s")
		})
	}
}

// BenchmarkServerLoopback drives the TCP block service end to end: a
// pipelining client against a loopback ftl server over the concurrent device,
// closed-loop at several queue depths. The per-op cost includes framing, the
// socket round trip, admission, and the device itself — the wire-protocol
// overhead on top of BenchmarkConcurrentDevice's direct submission path.
func BenchmarkServerLoopback(b *testing.B) {
	g := flash.TestGeometry()
	g.BlocksPerPlane = 12
	g.Layers = 12
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	cfg := ssd.DefaultConfig()
	cfg.FTL.Overprovision = 0.25
	for _, depth := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			dev, err := ssd.NewConcurrent(flash.MustNewArray(g, pv.New(p), flash.DefaultECC()), cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(dev.Close)
			if err := dev.FillSequential(nil); err != nil {
				b.Fatal(err)
			}
			capacity := dev.FTL().Capacity()
			srv := server.New(dev, server.Config{})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(ln)
			b.Cleanup(func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				srv.Shutdown(ctx)
			})
			cl, err := client.Dial(ln.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { cl.Close() })
			b.ReportAllocs()
			b.ResetTimer()
			pending := make([]*client.Call, 0, depth)
			for i := 0; i < b.N; i++ {
				if len(pending) == depth {
					if _, err := pending[0].Wait(); err != nil {
						b.Fatal(err)
					}
					pending = pending[1:]
				}
				call, err := cl.Start(server.Frame{Op: server.OpRead, LPN: int64(i) % capacity})
				if err != nil {
					b.Fatal(err)
				}
				pending = append(pending, call)
			}
			for _, call := range pending {
				if _, err := call.Wait(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVolumeLoopback shows the volume layer's scaling story: the same
// open-loop write burst against 1, 2 and 4 paced loopback backends, striped
// by internal/volume. Pacing makes every backend hold its admission slot for
// the simulated latency of each write (scaled to wall time), so a single
// backend is throughput-bound the way a real device is — and striping the
// space N ways divides the per-backend work, scaling aggregate wops/s
// near-linearly even on one CPU core. The wops/s metric per sub-benchmark is
// the README cluster table; backends4 must be ≥3× backends1.
func BenchmarkVolumeLoopback(b *testing.B) {
	g := flash.TestGeometry()
	g.BlocksPerPlane = 12
	g.Layers = 12
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	cfg := ssd.DefaultConfig()
	cfg.FTL.Overprovision = 0.25
	scfg := server.Config{MaxInFlight: 16, Pace: 0.05}
	const (
		ops   = 2048
		depth = 64
	)
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("backends%d", n), func(b *testing.B) {
			addrs := make([]string, n)
			for i := range addrs {
				dev, err := ssd.NewConcurrent(flash.MustNewArray(g, pv.New(p), flash.DefaultECC()), cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(dev.Close)
				srv := server.New(dev, scfg)
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				go srv.Serve(ln)
				b.Cleanup(func() {
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					defer cancel()
					srv.Shutdown(ctx)
				})
				addrs[i] = ln.Addr().String()
			}
			v, err := volume.Dial(addrs, volume.Config{Stripe: 8})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { v.Close() })
			span := v.Space()
			payload := []byte("vol-bench-write")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pending := make([]*volume.Call, 0, depth)
				for j := 0; j < ops; j++ {
					if len(pending) == depth {
						if _, err := pending[0].Wait(); err != nil {
							b.Fatal(err)
						}
						pending = pending[1:]
					}
					call, err := v.StartWrite(int64(j)%span, payload, ftl.HintNone, 0, 0, volume.TraceRef{})
					if err != nil {
						b.Fatal(err)
					}
					pending = append(pending, call)
				}
				for _, call := range pending {
					if _, err := call.Wait(); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(ops*b.N)/b.Elapsed().Seconds(), "wops/s")
		})
	}
}

// BenchmarkFTLChurn measures steady-state FTL write throughput under GC.
func BenchmarkFTLChurn(b *testing.B) {
	g := flash.TestGeometry()
	g.BlocksPerPlane = 12
	g.Layers = 12
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr := flash.MustNewArray(g, pv.New(p), flash.DefaultECC())
	cfg := ssd.DefaultConfig()
	cfg.FTL.Overprovision = 0.25
	dev, err := ssd.New(arr, cfg)
	if err != nil {
		b.Fatal(err)
	}
	// One payload for the whole churn (the serial Device copies at submit
	// entry). Fill with real payloads and overwrite twice ahead of the
	// timer: payload buffers circulate writes→flash→erase→pool, so the fill
	// seeds the circulation and the warmup passes let it ratchet up to
	// self-sufficiency. The measured loop is the recycled steady state,
	// which TestFTLChurnAllocFree pins at zero allocations per write.
	payload := []byte("bench")
	if err := dev.FillSequential(func(int64) []byte { return payload }); err != nil {
		b.Fatal(err)
	}
	capacity := dev.FTL().Capacity()
	churn := func(i int) {
		if _, err := dev.Submit(ssd.Request{
			Kind: ssd.OpWrite, LPN: int64(i*2654435761) % capacity, Data: payload,
		}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 2*int(capacity); i++ {
		churn(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		churn(i)
	}
}

// BenchmarkGCTailLatency replays the same stamped open-loop overwrite burst
// against a blocking-GC device and a preemptive one (8 pages/step) and
// reports the simulated write-latency tail next to the write amplification.
// The ROADMAP win condition reads directly off the metrics: preemptive mode
// shows a large p999_us reduction at equal waf, because the same collections
// run in the inter-arrival windows instead of inside unlucky host writes.
func BenchmarkGCTailLatency(b *testing.B) {
	g := flash.TestGeometry()
	g.BlocksPerPlane = 48
	g.Layers = 24
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	cfg := ssd.DefaultConfig()
	cfg.FTL.Overprovision = 0.25

	mk := func(b *testing.B, step int) *ssd.Device {
		c := cfg
		c.FTL.GCStepPages = step
		dev, err := ssd.New(flash.MustNewArray(g, pv.New(p), flash.DefaultECC()), c)
		if err != nil {
			b.Fatal(err)
		}
		if err := dev.FillSequential(nil); err != nil {
			b.Fatal(err)
		}
		return dev
	}

	// Calibrate the arrival cadence once on a closed-loop blocking run, then
	// stamp the same uniform overwrite trace for both modes: 3.5× the mean
	// inter-completion gap leaves idle windows without idling the device.
	cal := mk(b, 0)
	capacity := cal.FTL().Capacity()
	ops := 3 * int(capacity)
	lpns := make([]int64, ops)
	src := prng.New(1, 0x6cb)
	for i := range lpns {
		lpns[i] = int64(src.Intn(int(capacity)))
	}
	calStart := cal.Now()
	for _, lpn := range lpns {
		if _, err := cal.Submit(ssd.Request{Kind: ssd.OpWrite, LPN: lpn, Data: []byte("w")}); err != nil {
			b.Fatal(err)
		}
	}
	gap := 3.5 * (cal.Now() - calStart) / float64(ops)

	for _, mode := range []struct {
		name string
		step int
	}{{"blocking", 0}, {"preemptive", 8}} {
		b.Run(mode.name, func(b *testing.B) {
			var sum stats.Summary
			var waf float64
			for i := 0; i < b.N; i++ {
				dev := mk(b, mode.step)
				base := dev.Now() + gap
				lats := make([]float64, 0, ops)
				for j, lpn := range lpns {
					c, err := dev.Submit(ssd.Request{
						Kind: ssd.OpWrite, LPN: lpn, Data: []byte("w"),
						Arrival: base + float64(j)*gap,
					})
					if err != nil {
						b.Fatal(err)
					}
					lats = append(lats, c.Latency)
				}
				sum = stats.Summarize(lats)
				waf = dev.FTL().Stats().WAF()
			}
			b.ReportMetric(sum.P99, "p99_us")
			b.ReportMetric(sum.P999, "p999_us")
			b.ReportMetric(waf, "waf")
		})
	}
}

// BenchmarkTelemetryOverhead compares the device hot path with telemetry
// detached (the nil-sink fast path: one branch per hook site) against a run
// with a tracer and metrics registry attached. The "disabled" flavor is the
// default-configuration cost every simulation pays; it must stay within
// noise of the pre-telemetry front end.
func BenchmarkTelemetryOverhead(b *testing.B) {
	g := flash.TestGeometry()
	g.BlocksPerPlane = 12
	g.Layers = 12
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	cfg := ssd.DefaultConfig()
	cfg.FTL.Overprovision = 0.25
	mk := func(b *testing.B) *ssd.ConcurrentDevice {
		dev, err := ssd.NewConcurrent(flash.MustNewArray(g, pv.New(p), flash.DefaultECC()), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := dev.FillSequential(nil); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(dev.Close)
		return dev
	}
	capacity := int64(0)
	read := func(b *testing.B, dev *ssd.ConcurrentDevice, i int) {
		if _, err := dev.Submit(ssd.Request{Kind: ssd.OpRead, LPN: int64(i) % capacity}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("disabled", func(b *testing.B) {
		dev := mk(b)
		capacity = dev.FTL().Capacity()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			read(b, dev, i)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		dev := mk(b)
		capacity = dev.FTL().Capacity()
		dev.SetTracer(telemetry.NewTrace())
		dev.SetMetrics(telemetry.New())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			read(b, dev, i)
		}
	})
	// The write flavors exercise the sinks the read path never reaches:
	// multi-plane flushes feed the attribution table and the recorder samples
	// on every submission. writes-disabled is the same workload through the
	// nil-sink branches.
	write := func(b *testing.B, dev *ssd.ConcurrentDevice, i int) {
		if _, err := dev.Submit(ssd.Request{
			Kind: ssd.OpWrite, LPN: int64(i*2654435761) % capacity, Data: []byte{byte(i)},
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("writes-disabled", func(b *testing.B) {
		dev := mk(b)
		capacity = dev.FTL().Capacity()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			write(b, dev, i)
		}
	})
	b.Run("writes-full", func(b *testing.B) {
		dev := mk(b)
		capacity = dev.FTL().Capacity()
		dev.SetTracer(telemetry.NewTrace())
		dev.SetMetrics(telemetry.New())
		dev.SetAttribution(telemetry.NewAttribution())
		rec, err := telemetry.NewRecorder(1000, 4096, ssd.RecorderColumns(g.Chips))
		if err != nil {
			b.Fatal(err)
		}
		if err := dev.AttachRecorder(rec); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			write(b, dev, i)
		}
	})
}
