package flash

import (
	"errors"
	"testing"

	"superfast/internal/pv"
)

// wornArray builds an array whose blocks have a tiny endurance so erase
// failures are easy to trigger.
func wornArray(t testing.TB, endurance float64) *Array {
	t.Helper()
	g := TestGeometry()
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	p.EnduranceBase = endurance
	p.EnduranceSpan = 0
	p.EnduranceQuality = 0
	return MustNewArray(g, pv.New(p), DefaultECC())
}

func TestEraseFailsPastEndurance(t *testing.T) {
	a := wornArray(t, 3)
	addr := BlockAddr{Block: 1}
	for i := 0; i < 3; i++ {
		if _, err := a.Erase(addr); err != nil {
			t.Fatalf("erase %d: %v", i, err)
		}
	}
	lat, err := a.Erase(addr)
	if !errors.Is(err, ErrBadBlock) {
		t.Fatalf("4th erase: got %v, want ErrBadBlock", err)
	}
	if lat <= 0 {
		t.Fatal("a failed erase still consumes time")
	}
	if !a.IsBad(addr) {
		t.Fatal("block should be marked bad")
	}
	if a.Counters().EraseFails != 1 {
		t.Fatalf("EraseFails = %d", a.Counters().EraseFails)
	}
}

func TestProgramOnBadBlockFails(t *testing.T) {
	a := wornArray(t, 1000)
	addr := BlockAddr{Block: 2}
	if err := a.MarkBad(addr); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Program(addr, 0, nil); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("got %v, want ErrBadBlock", err)
	}
}

func TestIsBadOnInvalidAddr(t *testing.T) {
	a := wornArray(t, 1000)
	if a.IsBad(BlockAddr{Chip: 99}) {
		t.Fatal("invalid address should not read as bad")
	}
	if err := a.MarkBad(BlockAddr{Chip: 99}); err == nil {
		t.Fatal("MarkBad on invalid address should fail")
	}
}

func TestEraseMultiReportsFailedMembers(t *testing.T) {
	a := wornArray(t, 1000)
	addrs := []BlockAddr{
		{Chip: 0, Plane: 0, Block: 1},
		{Chip: 1, Plane: 0, Block: 1},
		{Chip: 2, Plane: 0, Block: 1},
	}
	if err := a.MarkBad(addrs[1]); err != nil {
		t.Fatal(err)
	}
	res, err := a.EraseMulti(addrs)
	if err != nil {
		t.Fatalf("bad member should not abort: %v", err)
	}
	if len(res.Failed) != 1 || res.Failed[0] != 1 {
		t.Fatalf("Failed = %v, want [1]", res.Failed)
	}
	// The healthy members actually erased.
	if a.NextLWL(addrs[0]) != 0 || a.NextLWL(addrs[2]) != 0 {
		t.Fatal("healthy members should have erased")
	}
}

func TestEnduranceDistribution(t *testing.T) {
	m := pv.New(pv.DefaultParams())
	var sum float64
	low := 0
	const n = 2000
	for b := 0; b < n; b++ {
		e := m.Endurance(0, 0, b)
		sum += float64(e)
		if e < 3000 {
			low++
		}
	}
	mean := sum / n
	base := pv.DefaultParams().EnduranceBase
	if mean < base*0.8 || mean > base*1.3 {
		t.Fatalf("mean endurance = %v, want near %v", mean, base)
	}
	// The paper's evaluation cycles to 3,000; default endurance must keep
	// nearly all blocks alive through it.
	if frac := float64(low) / n; frac > 0.01 {
		t.Fatalf("%.2f%% of blocks die before 3,000 cycles; model too fragile", frac*100)
	}
}

func TestEnduranceQualityCorrelation(t *testing.T) {
	// Slow-program blocks must have lower endurance on average.
	m := pv.New(pv.DefaultParams())
	var slowSum, fastSum float64
	var slowN, fastN int
	for b := 0; b < 3000; b++ {
		e := float64(m.Endurance(0, 0, b))
		if m.BlockPgmOffset(0, 0, b) > 0 {
			slowSum += e
			slowN++
		} else {
			fastSum += e
			fastN++
		}
	}
	if slowSum/float64(slowN) >= fastSum/float64(fastN) {
		t.Fatalf("slow blocks should have lower endurance: slow=%v fast=%v",
			slowSum/float64(slowN), fastSum/float64(fastN))
	}
}
