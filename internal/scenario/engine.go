package scenario

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"superfast/internal/flash"
	"superfast/internal/ftl"
	"superfast/internal/prng"
	"superfast/internal/pv"
	"superfast/internal/server"
	"superfast/internal/ssd"
	"superfast/internal/stats"
	"superfast/internal/telemetry"
	"superfast/internal/volume"
)

// campaignStripe is the placement granularity of the campaign cluster —
// small, so modest working sets still cross many stripe units.
const campaignStripe = 8

// progOp is one precomputed operation of the campaign program. The whole
// program — fill, campaign traffic, heal writes, the final verify sweep —
// is laid out before the first byte hits the wire, so the global sequenced
// ticket of an op is simply its program position.
type progOp struct {
	write    bool
	lpn      int64
	version  uint32 // payload version written, or expected on a read
	campaign int    // campaign op index, -1 for fill/heal/sweep ops
}

// barrier anchors a batch of events at a program position: the engine
// drains every op before pos, applies the events on the quiescent cluster,
// and resumes.
type barrier struct {
	pos    int
	events []*Event
}

// program is the fully precomputed campaign: the op list, the event
// barriers, per-event heal counts, and the campaign-index → program-position
// map the fault-window P99.9 is computed from.
type program struct {
	ops      []progOp
	barriers []barrier
	pos      []int // campaign op index -> program position
	healed   map[*Event]int
	sweep    int // program position of the first verify-sweep op
}

// build lays the program out. Every draw comes from one seeded stream, so
// the program is a pure function of the spec.
func build(s *Spec) *program {
	p := &program{pos: make([]int, s.Ops), healed: make(map[*Event]int)}
	version := make([]uint32, s.WorkingSet)
	for lpn := int64(0); lpn < s.WorkingSet; lpn++ {
		version[lpn] = 1
		p.ops = append(p.ops, progOp{write: true, lpn: lpn, version: 1, campaign: -1})
	}
	src := prng.New(s.Seed, 11)
	ei := 0
	downAt := -1 // backend currently killed, -1 = none
	var dirty map[int64]bool
	fire := func(atOp int) {
		var evs []*Event
		for ei < len(s.Events) && s.Events[ei].AtOp == atOp {
			e := &s.Events[ei]
			evs = append(evs, e)
			ei++
			switch e.Kind {
			case KindKillBackend:
				downAt = e.Backend
				dirty = make(map[int64]bool)
			case KindRestartBackend:
				// Writes skipped the killed leg, so its replicas are stale:
				// heal by rewriting every LPN dirtied in the down window at
				// its current version, full fan-out, in LPN order. The heals
				// consume program positions like any other op.
				lpns := make([]int64, 0, len(dirty))
				for lpn := range dirty {
					lpns = append(lpns, lpn)
				}
				sort.Slice(lpns, func(i, j int) bool { return lpns[i] < lpns[j] })
				if len(evs) > 0 { // append heals after the barrier fires
					defer func(lpns []int64, e *Event) {
						p.healed[e] = len(lpns)
						for _, lpn := range lpns {
							p.ops = append(p.ops, progOp{write: true, lpn: lpn, version: version[lpn], campaign: -1})
						}
					}(lpns, e)
				}
				downAt = -1
				dirty = nil
			}
		}
		if len(evs) > 0 {
			p.barriers = append(p.barriers, barrier{pos: len(p.ops), events: evs})
		}
	}
	for j := 0; j < s.Ops; j++ {
		fire(j)
		write := src.Float64() < s.WriteFrac
		lpn := int64(src.Intn(int(s.WorkingSet)))
		p.pos[j] = len(p.ops)
		if write {
			version[lpn]++
			if downAt >= 0 {
				dirty[lpn] = true
			}
		}
		p.ops = append(p.ops, progOp{write: write, lpn: lpn, version: version[lpn], campaign: j})
	}
	fire(s.Ops)
	// Verify sweep: read back the whole working set so the integrity verdict
	// covers pages the campaign traffic never revisited.
	p.sweep = len(p.ops)
	for lpn := int64(0); lpn < s.WorkingSet; lpn++ {
		p.ops = append(p.ops, progOp{lpn: lpn, version: version[lpn], campaign: -1})
	}
	return p
}

// pagePayload renders the full-page payload of (lpn, version): a
// self-describing header padded with zeros, so a stale or cross-tenant page
// is distinguishable from the expected one, not just "different".
func pagePayload(pageSize int, seed uint64, tenant int, lpn int64, version uint32) []byte {
	p := make([]byte, pageSize)
	copy(p, fmt.Sprintf("sf-%016x-t%d-l%08d-v%08d", seed, tenant, lpn, version))
	return p
}

// cluster is the in-process campaign fixture: N sequenced block services on
// loopback TCP, their device handles for direct fault injection, and one
// sequenced volume over them.
type cluster struct {
	v    *volume.Volume
	devs []*ssd.ConcurrentDevice
	led  *telemetry.Ledger
	stop func()
}

// campaignGeometry returns the per-backend flash layout. One plane per chip
// makes chip == RAID lane, so a whole-chip dropout costs exactly one lane
// per superblock stripe and single parity can always reconstruct it. Blocks
// are small (36 pages, 144-page superblocks) so a modest fill seals
// superblocks on every backend — the pool the bad-block storm draws from.
func campaignGeometry() flash.Geometry {
	g := flash.TestGeometry()
	g.PlanesPerChip = 1
	g.BlocksPerPlane = 24
	g.Layers = 6
	g.Strings = 2
	return g
}

func newCampaignDevice() (*ssd.ConcurrentDevice, error) {
	g := campaignGeometry()
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr := flash.MustNewArray(g, pv.New(p), flash.DefaultECC())
	cfg := ssd.DefaultConfig()
	cfg.FTL.Overprovision = 0.25
	cfg.FTL.RAID = true
	// Preemptive partial GC: reclamation is paid in bounded steps behind the
	// ticket stream (idle windows first) instead of whole collections blocking
	// an unlucky host write — and under tenant shaping, debt behind a
	// quota-deferred ticket rides that tenant's reservation track.
	cfg.FTL.GCStepPages = 4
	return ssd.NewConcurrent(arr, cfg)
}

// startCluster builds the campaign cluster. Everything runs sequenced: the
// volume admits dense global tickets, each backend admits dense
// per-connection tickets, and the devices replay flash work in ticket order
// — the determinism backbone.
func startCluster(s *Spec) (*cluster, error) {
	cl := &cluster{led: telemetry.NewLedger("scenario")}
	var lns []net.Listener
	var srvs []*server.Server
	addrs := make([]string, 0, s.Backends)
	fail := func(err error) (*cluster, error) {
		for _, ln := range lns {
			ln.Close()
		}
		return nil, err
	}
	for i := 0; i < s.Backends; i++ {
		dev, err := newCampaignDevice()
		if err != nil {
			return fail(err)
		}
		srv := server.New(dev, server.Config{Sequenced: true})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		go srv.Serve(ln)
		cl.devs = append(cl.devs, dev)
		srvs = append(srvs, srv)
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	v, err := volume.Dial(addrs, volume.Config{Stripe: campaignStripe, Replicas: s.Replicas, Sequenced: true})
	if err != nil {
		return fail(err)
	}
	v.SetLedger(cl.led)
	cl.v = v
	cl.stop = func() {
		v.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, srv := range srvs {
			srv.Shutdown(ctx)
		}
	}
	return cl, nil
}

// EventReport is one applied event in the verdict: its label plus the
// kind-specific outcome detail (marked block count, power-cut instants,
// heal size). All values are simulated-clock or structural — deterministic.
type EventReport struct {
	Label  string
	Detail string
}

// Window is the latency verdict of one fault window: exact quantiles of the
// host-visible simulated latency of the campaign ops issued while the fault
// was in force.
type Window struct {
	Label string
	Ops   int
	P50   float64
	P999  float64
	Max   float64
}

// Result is the campaign verdict. Every field is a pure function of
// (spec, seed); Table renders it byte-identically across runs and worker
// counts.
type Result struct {
	Spec       *Spec
	ProgramOps int
	Checked    int // reads verified against the shadow map
	Mismatches int
	Failures   []string // first few integrity/protocol failures, for the log
	Windows    []Window
	Events     []EventReport
	DownSkips  uint64
	Retries    uint64
	Tenants    *TenantResult
}

// IntegrityOK reports the data-integrity verdict: every verified read
// (campaign traffic plus the final sweep) matched the shadow map.
func (r *Result) IntegrityOK() bool { return r.Mismatches == 0 && len(r.Failures) == 0 }

func eventLabel(e *Event) string {
	return fmt.Sprintf("%s@%d/b%d", e.Kind, e.AtOp, e.Backend)
}

// applyEvent injects one fault into the quiescent cluster and returns its
// verdict detail line.
func (cl *cluster) applyEvent(e *Event, healed int) (string, error) {
	dev := cl.devs[e.Backend]
	var detail string
	var err error
	switch e.Kind {
	case KindBadBlocks:
		dev.WithFTL(func(ft *ftl.FTL) {
			var blocks []flash.BlockAddr
			blocks, err = ft.MarkBadBlocks(e.Count, e.Seed)
			detail = fmt.Sprintf("marked=%d", len(blocks))
		})
	case KindChipReadErrors:
		dev.WithFTL(func(ft *ftl.FTL) { err = ft.Array().FailNextReads(e.Chip, e.Count) })
		detail = fmt.Sprintf("chip=%d count=%d", e.Chip, e.Count)
	case KindChipDropout:
		dev.WithFTL(func(ft *ftl.FTL) { err = ft.Array().SetChipReadFailure(e.Chip, true) })
		detail = fmt.Sprintf("chip=%d", e.Chip)
	case KindChipRevive:
		dev.WithFTL(func(ft *ftl.FTL) { err = ft.Array().SetChipReadFailure(e.Chip, false) })
		detail = fmt.Sprintf("chip=%d", e.Chip)
	case KindRetentionBake:
		dev.WithFTL(func(ft *ftl.FTL) { ft.Array().AddRetention(e.Units) })
		detail = fmt.Sprintf("units=%.3f", e.Units)
	case KindPowerCut:
		var rep ssd.PowerCycleReport
		rep, err = dev.PowerCycle(e.RecoverUS)
		detail = fmt.Sprintf("cut_at=%.3f recovered_at=%.3f checkpoint_bytes=%d",
			rep.CutAt, rep.RecoveredAt, rep.CheckpointBytes)
	case KindKillBackend:
		err = cl.v.SetBackendDown(e.Backend, true)
		detail = "down"
	case KindRestartBackend:
		err = cl.v.SetBackendDown(e.Backend, false)
		detail = fmt.Sprintf("healed=%d", healed)
	default:
		err = fmt.Errorf("scenario: unknown event kind %q", e.Kind)
	}
	if err != nil {
		return "", fmt.Errorf("scenario: %s: %w", eventLabel(e), err)
	}
	return detail, nil
}

// runState is the shared integrity accounting of the worker pool.
type runState struct {
	mu         sync.Mutex
	checked    int
	mismatches int
	failures   []string
	err        error
}

func (rs *runState) fail(msg string) {
	rs.mu.Lock()
	rs.mismatches++
	if len(rs.failures) < 8 {
		rs.failures = append(rs.failures, msg)
	}
	rs.mu.Unlock()
}

func (rs *runState) abort(err error) {
	rs.mu.Lock()
	if rs.err == nil {
		rs.err = err
	}
	rs.mu.Unlock()
}

// runSegment drives program positions [lo, hi) through the volume with
// `workers` submitters striding the range. The volume's sequenced cursor
// serializes admission in program order regardless of the worker count, so
// the device-side schedule — and every simulated latency — is identical for
// 1 worker or 16.
func runSegment(cl *cluster, s *Spec, ops []progOp, lo, hi, workers int, rs *runState) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for p := lo + w; p < hi; p += workers {
				op := ops[p]
				seq := uint64(p)
				arrival := float64(p) * s.GapUS
				tr := volume.TraceRef{ID: seq + 1, Parent: telemetry.HopNone}
				var ca *volume.Call
				var err error
				if op.write {
					data := pagePayload(cl.v.PageSize(), s.Seed, 0, op.lpn, op.version)
					ca, err = cl.v.StartWrite(op.lpn, data, ftl.HintNone, seq, arrival, tr)
				} else {
					ca, err = cl.v.StartRead(op.lpn, seq, arrival, tr)
				}
				if err != nil {
					rs.abort(fmt.Errorf("scenario: op %d start: %w", p, err))
					return
				}
				r, err := ca.Wait()
				if err != nil {
					rs.abort(fmt.Errorf("scenario: op %d wait: %w", p, err))
					return
				}
				if r.Status != server.StatusOK {
					rs.fail(fmt.Sprintf("op %d (lpn %d): status %v", p, op.lpn, r.Status))
					continue
				}
				if !op.write {
					want := pagePayload(cl.v.PageSize(), s.Seed, 0, op.lpn, op.version)
					rs.mu.Lock()
					rs.checked++
					rs.mu.Unlock()
					if !bytes.Equal(r.Payload, want) {
						rs.fail(fmt.Sprintf("op %d: lpn %d served stale/corrupt data (want v%d)", p, op.lpn, op.version))
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// traceLatency folds the volume's hop ledger into per-trace host-visible
// latency: each HopProxy record carries one replica leg's simulated
// latency, and the op's latency is its slowest leg.
func traceLatency(led *telemetry.Ledger) map[uint64]float64 {
	out := make(map[uint64]float64)
	for _, r := range led.Records() {
		if r.Hop != telemetry.HopProxy || r.Trace == 0 {
			continue
		}
		if r.SimUS > out[r.Trace] {
			out[r.Trace] = r.SimUS
		}
	}
	return out
}

// window computes the exact latency quantiles of the campaign index range
// [from, to).
func (p *program) window(label string, from, to int, lat map[uint64]float64) Window {
	w := Window{Label: label}
	var samples []float64
	for j := from; j < to; j++ {
		if v, ok := lat[uint64(p.pos[j])+1]; ok {
			samples = append(samples, v)
		}
	}
	w.Ops = len(samples)
	if len(samples) == 0 {
		return w
	}
	sort.Float64s(samples)
	w.P50 = stats.Quantile(samples, 0.50)
	w.P999 = stats.Quantile(samples, 0.999)
	w.Max = samples[len(samples)-1]
	return w
}

// Run executes the campaign with the given submitter count and returns the
// verdict. workers only changes wall-clock concurrency, never the verdict:
// the sequenced cluster admits the precomputed program in ticket order
// whatever the submission interleaving.
func Run(s *Spec, workers int) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}
	cl, err := startCluster(s)
	if err != nil {
		return nil, err
	}
	defer cl.stop()
	// Size-check before laying the program out — build allocates
	// proportionally to the working set.
	if space := cl.v.Space(); space < s.WorkingSet {
		return nil, fmt.Errorf("scenario: working set %d exceeds volume space %d", s.WorkingSet, space)
	}
	p := build(s)

	res := &Result{Spec: s, ProgramOps: len(p.ops)}
	rs := &runState{}
	lo := 0
	for _, b := range p.barriers {
		runSegment(cl, s, p.ops, lo, b.pos, workers, rs)
		if rs.err != nil {
			return nil, rs.err
		}
		// The segment's workers have all resolved their Waits, so nothing is
		// in flight; the flush barrier drains whatever the backends still
		// hold, making the cluster quiescent for the fault.
		if err := cl.v.Flush(); err != nil {
			return nil, fmt.Errorf("scenario: flush before %s: %w", eventLabel(b.events[0]), err)
		}
		for _, e := range b.events {
			detail, err := cl.applyEvent(e, p.healed[e])
			if err != nil {
				return nil, err
			}
			res.Events = append(res.Events, EventReport{Label: eventLabel(e), Detail: detail})
		}
		lo = b.pos
	}
	runSegment(cl, s, p.ops, lo, len(p.ops), workers, rs)
	if rs.err != nil {
		return nil, rs.err
	}
	if err := cl.v.Flush(); err != nil {
		return nil, fmt.Errorf("scenario: final flush: %w", err)
	}

	res.Checked = rs.checked
	res.Mismatches = rs.mismatches
	res.Failures = rs.failures
	counters := cl.v.ClusterStat().Volume
	res.DownSkips = counters.DownSkips
	res.Retries = counters.Retries

	lat := traceLatency(cl.led)
	first := s.Ops
	if len(s.Events) > 0 {
		first = s.Events[0].AtOp
	}
	if first > 0 {
		res.Windows = append(res.Windows, p.window("pre-fault", 0, first, lat))
	}
	for i := range s.Events {
		e := &s.Events[i]
		end := s.Ops
		if e.WindowOps > 0 && e.AtOp+e.WindowOps < end {
			end = e.AtOp + e.WindowOps
		} else if e.WindowOps == 0 {
			for j := i + 1; j < len(s.Events); j++ {
				if s.Events[j].AtOp > e.AtOp {
					end = s.Events[j].AtOp
					break
				}
			}
		}
		res.Windows = append(res.Windows, p.window(eventLabel(e), e.AtOp, end, lat))
	}

	if s.Tenants != nil {
		tr, err := runTenants(s)
		if err != nil {
			return nil, err
		}
		res.Tenants = tr
	}
	return res, nil
}
